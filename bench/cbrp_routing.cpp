// Extension bench: packet-level CBRP routing (§5 / [10]) carrying CBR
// flows over each clustering underlay. Where `routing_overhead` analyzes
// snapshots, this runs the actual protocol — RREQ floods on the cluster
// overlay, source-routed data, RERR recovery — and reports what a network
// operator would measure.
//
//   cbrp_routing [--seeds N] [--time S] [--csv PATH] [--fast] [--jobs N]
#include <iostream>

#include "bench_common.h"
#include "routing/cbrp_experiment.h"

int main(int argc, char** argv) {
  using namespace manet;

  bench::Cli cli(argc, argv, "Extension: packet-level CBRP routing with CBR flows over each clustering underlay.");
  const auto cfg = cli.config();
  cli.finish();

  std::cout << "=== CBRP over the cluster structure (670x670 m, MaxSpeed "
            << "20, PT 0, Tx 200 m, 10 flows @ 1 pkt/5 s, " << cfg.sim_time
            << " s, " << cfg.seeds << " seeds) ===\n\n";

  util::Table table({"underlay", "CS", "delivery", "ctrl/delivered pkt",
                     "RREQ tx", "RERR tx", "disc. latency (ms)",
                     "route hops"});
  std::optional<util::CsvWriter> csv;
  if (!cfg.csv_path.empty()) {
    csv.emplace(cfg.csv_path);
    csv->row({"underlay", "cs", "delivery", "ctrl_per_pkt", "rreq", "rerr",
              "latency_ms", "hops"});
  }

  // (algorithm, seed) grid dispatched through the Runner; canonical-order
  // reduction keeps the table identical to the old serial loop.
  const auto algorithms = scenario::paper_algorithms();
  const auto seeds = static_cast<std::size_t>(cfg.seeds);
  const auto runner = cfg.runner();
  const auto runs = runner.map<routing::CbrpExperimentResult>(
      algorithms.size() * seeds, [&](std::size_t idx) {
        const auto& alg = algorithms[idx / seeds];
        const auto k = idx % seeds;
        routing::CbrpExperimentParams params;
        params.scenario = bench::paper_scenario();
        params.scenario.sim_time = cfg.sim_time;
        params.scenario.tx_range = 200.0;
        params.scenario.seed = 1 + static_cast<std::uint64_t>(k);
        params.flows = 10;
        params.data_interval = 5.0;
        return routing::run_cbrp_experiment(params, alg.factory);
      });

  double delivery_mobic = 0.0, delivery_lid = 0.0;
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    const auto& alg = algorithms[a];
    util::RunningStats cs, delivery, ctrl, rreq, rerr, latency, hops;
    for (std::size_t k = 0; k < seeds; ++k) {
      const auto& r = runs[a * seeds + k];
      cs.add(static_cast<double>(r.ch_changes));
      delivery.add(r.delivery_ratio);
      ctrl.add(r.control_per_delivery);
      rreq.add(static_cast<double>(r.stats.rreq_tx));
      rerr.add(static_cast<double>(r.stats.rerr_tx));
      latency.add(r.mean_discovery_latency * 1e3);
      hops.add(r.mean_route_hops);
    }
    (alg.name == "mobic" ? delivery_mobic : delivery_lid) = delivery.mean();
    table.add(alg.name, util::Table::fmt(cs.mean(), 0),
              util::Table::fmt(delivery.mean(), 3),
              util::Table::fmt(ctrl.mean(), 2),
              util::Table::fmt(rreq.mean(), 0),
              util::Table::fmt(rerr.mean(), 0),
              util::Table::fmt(latency.mean(), 1),
              util::Table::fmt(hops.mean(), 2));
    if (csv) {
      csv->row_values(alg.name, cs.mean(), delivery.mean(), ctrl.mean(),
                      rreq.mean(), rerr.mean(), latency.mean(), hops.mean());
    }
  }
  table.print(std::cout);
  std::cout << "\nCS = clusterhead changes in the underlay. The §5 thesis: "
               "a stabler underlay should deliver at least as well with "
               "less control traffic.\n";
  if (delivery_mobic < delivery_lid - 0.1) {
    std::cerr << "CBRP CHECK FAILED: MOBIC underlay delivery collapsed\n";
    return 1;
  }
  return 0;
}
