// Ablation A1: how much of MOBIC's stability gain comes from the Cluster
// Contention Interval versus the mobility metric itself?
//
// Sweeps CCI in {0, 2, 4 (paper), 8} seconds at two transmission ranges,
// with Lowest-ID (LCC) as the reference line.
//
//   ablation_cci [--seeds N] [--time S] [--csv PATH] [--fast]
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace manet;

  util::Flags flags(argc, argv);
  const auto cfg = bench::BenchConfig::from_flags(flags);
  flags.finish();

  const std::vector<double> ccis = {0.0, 2.0, 4.0, 8.0};
  const std::vector<double> ranges = {100.0, 250.0};

  std::cout << "=== Ablation A1: MOBIC's CCI deferral (670x670 m, MaxSpeed "
            << "20, PT 0, " << cfg.sim_time << " s, " << cfg.seeds
            << " seeds) ===\n\n";

  util::Table table({"Tx (m)", "algorithm", "CCI (s)", "CS", "+-"});
  std::optional<util::CsvWriter> csv;
  if (!cfg.csv_path.empty()) {
    csv.emplace(cfg.csv_path);
    csv->row({"tx", "algorithm", "cci", "cs", "ci"});
  }

  bool cci_helps_everywhere = true;
  for (const double tx : ranges) {
    scenario::Scenario s = bench::paper_scenario();
    s.sim_time = cfg.sim_time;
    s.tx_range = tx;

    const auto lid = scenario::aggregate(
        scenario::run_replications(s, scenario::factory_by_name("lowest_id"),
                                   cfg.seeds),
        scenario::field_ch_changes);
    table.add(util::Table::fmt(tx, 0), "lowest_id", "-",
              util::Table::fmt(lid.mean, 1),
              util::Table::fmt(lid.half_width, 1));
    if (csv) {
      csv->row_values(tx, "lowest_id", -1.0, lid.mean, lid.half_width);
    }

    double cs_at_0 = 0.0, cs_at_4 = 0.0;
    for (const double cci : ccis) {
      const auto factory = [cci](cluster::ClusterEventSink* sink) {
        return cluster::mobic_options(sink, cci);
      };
      const auto agg = scenario::aggregate(
          scenario::run_replications(s, factory, cfg.seeds),
          scenario::field_ch_changes);
      if (cci == 0.0) {
        cs_at_0 = agg.mean;
      }
      if (cci == 4.0) {
        cs_at_4 = agg.mean;
      }
      table.add(util::Table::fmt(tx, 0), "mobic", util::Table::fmt(cci, 0),
                util::Table::fmt(agg.mean, 1),
                util::Table::fmt(agg.half_width, 1));
      if (csv) {
        csv->row_values(tx, "mobic", cci, agg.mean, agg.half_width);
      }
    }
    if (cs_at_4 > cs_at_0 * 1.15) {
      cci_helps_everywhere = false;  // paper's default should not hurt
    }
  }
  table.print(std::cout);
  std::cout << "\nCS = clusterhead changes per run.\n"
            << "CCI=0 isolates the metric's contribution; the gap to CCI=4 "
               "is the deferral's contribution.\n";
  std::cout << "Paper default (CCI=4) no worse than CCI=0: "
            << (cci_helps_everywhere ? "yes" : "NO") << "\n";
  return 0;
}
