// Ablation A1: how much of MOBIC's stability gain comes from the Cluster
// Contention Interval versus the mobility metric itself?
//
// Sweeps CCI in {0, 2, 4 (paper), 8} seconds at two transmission ranges,
// with Lowest-ID (LCC) as the reference line. One Runner grid covers the
// whole (Tx x variant x seed) space.
//
//   ablation_cci [--seeds N] [--time S] [--csv PATH] [--fast]
//                [--jobs N] [--progress] [--run-log PATH]
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace manet;

  bench::Cli cli(argc, argv, "Ablation A1: CCI sweep {0, 2, 4, 8} s vs the mobility metric's contribution.");
  const auto cfg = cli.config();
  cli.finish();

  const std::vector<double> ccis = {0.0, 2.0, 4.0, 8.0};
  const std::vector<double> ranges = {100.0, 250.0};

  std::cout << "=== Ablation A1: MOBIC's CCI deferral (670x670 m, MaxSpeed "
            << "20, PT 0, " << cfg.sim_time << " s, " << cfg.seeds
            << " seeds) ===\n\n";

  // One variant per table row family: the Lowest-ID reference plus MOBIC at
  // each CCI. Unique spec names; display columns carried alongside.
  struct Variant {
    std::string display;  // "lowest_id" / "mobic"
    std::string cci_label;
    double cci = -1.0;    // CSV value; -1 for the reference
  };
  scenario::SweepSpec spec;
  spec.base = bench::paper_scenario();
  spec.base.sim_time = cfg.sim_time;
  cfg.apply_obs(spec.base);
  spec.xs = ranges;
  spec.configure = [](scenario::Scenario& s, double tx) { s.tx_range = tx; };
  spec.fields = {{"cs", scenario::field_ch_changes}};
  spec.replications = cfg.seeds;

  std::vector<Variant> variants;
  spec.algorithms.push_back(
      {"lowest_id", scenario::factory_by_name("lowest_id")});
  variants.push_back({"lowest_id", "-", -1.0});
  for (const double cci : ccis) {
    spec.algorithms.push_back(
        {"mobic_cci" + util::Table::fmt(cci, 0),
         [cci](cluster::ClusterEventSink* sink) {
           return cluster::mobic_options(sink, cci);
         }});
    variants.push_back({"mobic", util::Table::fmt(cci, 0), cci});
  }
  // The composite-weight contenders (CCI here is the paper default, 4 s;
  // the CSV carries -1 so these rows never alias a CCI-sweep row).
  spec.algorithms.push_back({"cci", scenario::factory_by_name("cci")});
  variants.push_back({"cci", "-", -1.0});
  spec.algorithms.push_back(
      {"sd_dwca", scenario::factory_by_name("sd_dwca")});
  variants.push_back({"sd_dwca", "-", -1.0});

  const auto result = cfg.runner().run(spec);

  util::Table table({"Tx (m)", "algorithm", "CCI (s)", "CS", "+-"});
  std::optional<util::CsvWriter> csv;
  if (!cfg.csv_path.empty()) {
    csv.emplace(cfg.csv_path);
    csv->row({"tx", "algorithm", "cci", "cs", "ci"});
  }

  bool cci_helps_everywhere = true;
  for (const auto& point : result.points) {
    double cs_at_0 = 0.0, cs_at_4 = 0.0;
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const auto& agg =
          point.algorithms.at(spec.algorithms[v].name).values.at("cs");
      if (variants[v].cci == 0.0) {
        cs_at_0 = agg.mean;
      }
      if (variants[v].cci == 4.0) {
        cs_at_4 = agg.mean;
      }
      table.add(util::Table::fmt(point.x, 0), variants[v].display,
                variants[v].cci_label, util::Table::fmt(agg.mean, 1),
                util::Table::fmt(agg.half_width, 1));
      if (csv) {
        csv->row_values(point.x, variants[v].display, variants[v].cci,
                        agg.mean, agg.half_width);
      }
    }
    if (cs_at_4 > cs_at_0 * 1.15) {
      cci_helps_everywhere = false;  // paper's default should not hurt
    }
  }
  table.print(std::cout);
  std::cout << "\nCS = clusterhead changes per run.\n"
            << "CCI=0 isolates the metric's contribution; the gap to CCI=4 "
               "is the deferral's contribution.\n";
  std::cout << "Paper default (CCI=4) no worse than CCI=0: "
            << (cci_helps_everywhere ? "yes" : "NO") << "\n";
  return 0;
}
