// Shared plumbing for the figure-reproduction benches: standard flags
// (seeds, time, CSV export, parallelism, observability) and a configured
// scenario::Runner. The paper-default scenario and table/CSV reporting
// helpers live in the library (scenario/reporting.h) and are re-exported
// here under manet::bench for the benches' convenience.
#pragma once

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "scenario/reporting.h"
#include "scenario/runner.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/table.h"

namespace manet::bench {

using scenario::argmax_x;
using scenario::default_tx_sweep;
using scenario::paper_scenario;
using scenario::print_comparison;

/// Standard bench flags:
///   --seeds N      replications per (point, algorithm)
///   --time S       simulated seconds
///   --csv PATH     optional CSV export
///   --fast         3 seeds, 300 s — CI-friendly
///   --jobs N       parallel runs (0 = auto: $MANET_JOBS, else hardware);
///                  output is byte-identical for every value of N
///   --progress     live progress line on stderr
///   --run-log PATH JSONL log with one line per finished run
///   --metrics-out PATH  per-run obs::Snapshot JSONL, canonical order
///                       (byte-identical for every --jobs value)
///   --trace-out PATH    Chrome-trace JSON per run; include "{tag}" or
///                       "{seed}" so concurrent runs write distinct files
///   --trace-level L     off | spans | full (default spans when
///                       --trace-out is set)
struct BenchConfig {
  int seeds = 5;
  double sim_time = 900.0;
  std::string csv_path;
  int jobs = 0;
  bool progress = false;
  std::string run_log_path;
  std::string metrics_out;
  std::string trace_out;
  obs::TraceLevel trace_level = obs::TraceLevel::kOff;

  static BenchConfig from_flags(util::Flags& flags) {
    BenchConfig c;
    const bool fast = flags.get_bool("fast", false);
    c.seeds = flags.get_int("seeds", fast ? 3 : 5);
    c.sim_time = flags.get_double("time", fast ? 300.0 : 900.0);
    c.csv_path = flags.get_string("csv", "");
    c.jobs = flags.get_int("jobs", 0);
    c.progress = flags.get_bool("progress", false);
    c.run_log_path = flags.get_string("run-log", "");
    c.metrics_out = flags.get_string("metrics-out", "");
    c.trace_out = flags.get_string("trace-out", "");
    if (flags.has("trace-level")) {
      c.trace_level =
          obs::parse_trace_level(flags.get_string("trace-level", "spans"));
    }
    return c;
  }

  /// Applies the observability flags to the scenario every run clones.
  void apply_obs(scenario::Scenario& s) const {
    s.obs.trace_path = trace_out;
    s.obs.trace = trace_level;
  }

  scenario::RunnerOptions runner_options() const {
    scenario::RunnerOptions options;
    options.jobs = jobs;
    options.progress = progress ? &std::cerr : nullptr;
    options.run_log_path = run_log_path;
    options.metrics_log_path = metrics_out;
    return options;
  }

  scenario::Runner runner() const {
    return scenario::Runner(runner_options());
  }
};

}  // namespace manet::bench
