// Shared plumbing for the figure-reproduction benches: paper-default
// scenario, sweep-table printing (with the MOBIC-vs-baseline gain column the
// paper's text quotes), and CSV export.
#pragma once

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "scenario/experiment.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/table.h"

namespace manet::bench {

/// Table-1 defaults: 50 RWP nodes, 670x670 m, MaxSpeed 20, PT 0, BI 2 s,
/// TP 3 s, CCI 4 s, 900 s.
inline scenario::Scenario paper_scenario() {
  scenario::Scenario s;
  s.n_nodes = 50;
  s.fleet.kind = mobility::ModelKind::kRandomWaypoint;
  s.fleet.field = geom::Rect(670.0, 670.0);
  s.fleet.max_speed = 20.0;
  s.fleet.min_speed = 0.1;
  s.fleet.pause_time = 0.0;
  s.tx_range = 250.0;
  s.sim_time = 900.0;
  s.warmup = 10.0;
  return s;
}

/// Standard bench flags: --seeds N (replications), --time S (sim seconds),
/// --csv PATH (optional export), --fast (3 seeds, 300 s — CI-friendly).
struct BenchConfig {
  int seeds = 5;
  double sim_time = 900.0;
  std::string csv_path;

  static BenchConfig from_flags(util::Flags& flags) {
    BenchConfig c;
    const bool fast = flags.get_bool("fast", false);
    c.seeds = flags.get_int("seeds", fast ? 3 : 5);
    c.sim_time = flags.get_double("time", fast ? 300.0 : 900.0);
    c.csv_path = flags.get_string("csv", "");
    return c;
  }
};

/// Prints a two-algorithm sweep as a paper-style table:
///   x | <alg A> (+-ci) | <alg B> (+-ci) | gain%
/// where gain% = (A - B) / A — positive when B (MOBIC) wins. Also writes
/// CSV when requested. Returns the per-point gains.
inline std::vector<double> print_comparison(
    std::ostream& os, const std::string& x_label,
    const std::vector<scenario::SweepPoint>& series, const std::string& alg_a,
    const std::string& alg_b, const std::string& value_label,
    const std::string& csv_path) {
  util::Table table({x_label, alg_a, "+-", alg_b, "+-",
                     "gain% (" + alg_b + " vs " + alg_a + ")"});
  std::optional<util::CsvWriter> csv;
  if (!csv_path.empty()) {
    csv.emplace(csv_path);
    csv->row({x_label, alg_a, alg_a + "_ci", alg_b, alg_b + "_ci", "gain"});
  }
  std::vector<double> gains;
  for (const auto& p : series) {
    const auto a = p.values.at(alg_a);
    const auto b = p.values.at(alg_b);
    const double gain =
        a.mean > 0.0 ? (a.mean - b.mean) / a.mean * 100.0 : 0.0;
    gains.push_back(gain);
    table.add(util::Table::fmt(p.x, 0), util::Table::fmt(a.mean, 1),
              util::Table::fmt(a.half_width, 1), util::Table::fmt(b.mean, 1),
              util::Table::fmt(b.half_width, 1), util::Table::fmt(gain, 1));
    if (csv) {
      csv->row_values(p.x, a.mean, a.half_width, b.mean, b.half_width, gain);
    }
  }
  table.print(os);
  os << "(" << value_label << "; mean over seeds, +- = 95% CI half-width)\n";
  return gains;
}

/// The transmission-range sweep of Figures 3-5.
inline std::vector<double> default_tx_sweep() {
  return {10.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0, 175.0, 200.0, 225.0,
          250.0};
}

/// x index of the series maximum (for peak-location checks).
inline std::size_t argmax_x(const std::vector<scenario::SweepPoint>& series,
                            const std::string& alg) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < series.size(); ++i) {
    if (series[i].values.at(alg).mean > series[best].values.at(alg).mean) {
      best = i;
    }
  }
  return best;
}

}  // namespace manet::bench
