// Shared plumbing for the figure-reproduction benches: one Cli declaring
// the standard flag set (parallelism, observability, sweep-farm cache /
// resume / workers) exactly once, a BenchConfig holding the parsed values,
// and a configured scenario::Runner. The paper-default scenario and
// table/CSV reporting helpers live in the library (scenario/reporting.h)
// and are re-exported here under manet::bench for the benches' convenience.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "scenario/reporting.h"
#include "scenario/runner.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/table.h"

namespace manet::bench {

using scenario::argmax_x;
using scenario::default_tx_sweep;
using scenario::paper_scenario;
using scenario::print_comparison;

/// Values of the standard bench flags (see Cli below for the flag list).
struct BenchConfig {
  int seeds = 5;
  double sim_time = 900.0;
  std::string csv_path;
  int jobs = 0;
  int sim_jobs = 1;
  bool progress = false;
  std::string run_log_path;
  std::string metrics_out;
  std::string trace_out;
  obs::TraceLevel trace_level = obs::TraceLevel::kOff;
  // Sweep-farm mode (scenario/cache.h, scenario/worker.h).
  std::string cache_dir;
  bool resume = false;
  int resume_verify = -1;
  int workers = 0;
  std::string worker_bin;

  /// Applies the observability flags to the scenario every run clones.
  void apply_obs(scenario::Scenario& s) const;

  scenario::RunnerOptions runner_options() const;
  scenario::Runner runner() const;
};

/// The one command-line front end every bench binary shares.
///
/// Declares the standard flags once — so `--jobs`, `--metrics-out`,
/// `--cache-dir`, `--resume`, `--workers`, ... mean the same thing in every
/// binary — and renders a uniform `--help` page from the synopsis plus any
/// binary-specific `extra_help` rows. Binary-specific flags are read
/// through flags() before finish(); finish() rejects unknown flags.
///
/// Standard flags (parsed when `standard` is true):
///   --seeds N      replications per (point, algorithm)
///   --time S       simulated seconds
///   --fast         CI preset: 3 seeds, 300 s
///   --csv PATH     optional CSV export
///   --jobs N       parallel in-process runs (0 = auto: $MANET_JOBS, else
///                  hardware); output is byte-identical for every value
///   --sim-jobs N   intra-run worker threads for the sharded broadcast
///                  pipeline (1 = serial, 0 = auto: $MANET_SIM_JOBS, else
///                  hardware); bit-identical for every value
///   --progress     live progress line on stderr
///   --run-log PATH JSONL log, one line per finished run (completion order)
///   --metrics-out PATH  per-run obs::Snapshot JSONL, canonical order
///                       (byte-identical for every --jobs value)
///   --trace-out PATH    Chrome-trace JSON per run; include "{tag}" or
///                       "{seed}" so concurrent runs write distinct files
///   --trace-level L     off | spans | full (default spans when
///                       --trace-out is set)
///   --cache-dir DIR     content-addressed result cache: present cells are
///                       served without simulating, computed cells stored;
///                       outputs stay byte-identical
///   --resume            with --cache-dir: byte-verify a sample of the
///                       cache hits against recomputation
///   --resume-verify N   hits to verify (-1 auto = 1/16 of hits, 0 = none)
///   --workers N         run uncached cells on N `manetsim --worker`
///                       subprocesses instead of in-process threads
///   --worker-bin PATH   worker binary ($MANET_WORKER_BIN / auto when
///                       empty)
class Cli {
 public:
  /// Parses argv; on --help prints the rendered page and exits 0.
  /// `extra_help` rows are ("--flag ARG", "description") pairs for
  /// binary-specific flags. `standard`=false (perf_suite) skips the
  /// standard flag set entirely.
  Cli(int argc, const char* const* argv, std::string synopsis,
      std::vector<std::pair<std::string, std::string>> extra_help = {},
      bool standard = true);

  /// Parsed standard flags; only valid when constructed with
  /// standard=true.
  const BenchConfig& config() const { return config_; }

  /// Raw access for binary-specific flags (query before finish()).
  util::Flags& flags() { return flags_; }

  /// Rejects unqueried (unknown/typo) flags. Call after reading every
  /// binary-specific flag.
  void finish() const { flags_.finish(); }

 private:
  util::Flags flags_;
  BenchConfig config_;
};

}  // namespace manet::bench
