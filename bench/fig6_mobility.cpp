// Figure 6: effect of the degree of mobility at Tx = 250 m.
//   (a) always-mobile (PT = 0):  CS vs MaxSpeed in {1, 20, 30} m/s —
//       MOBIC wins by ~50-100 changes;
//   (b) with pauses (PT = 30 s): gains slightly reduced but retained.
//
//   fig6_mobility [--seeds N] [--time S] [--csv PATH] [--fast]
//                 [--jobs N] [--progress] [--run-log PATH]
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace manet;

  bench::Cli cli(argc, argv, "Figure 6: cluster stability vs degree of mobility at Tx = 250 m.");
  const auto cfg = cli.config();
  cli.finish();

  const std::vector<double> speeds = {1.0, 20.0, 30.0};

  const auto runner = cfg.runner();
  const auto run_pt = [&](double pause) {
    scenario::SweepSpec spec;
    spec.base = bench::paper_scenario();
    spec.base.sim_time = cfg.sim_time;
    cfg.apply_obs(spec.base);
    spec.base.tx_range = 250.0;
    spec.base.fleet.pause_time = pause;
    spec.xs = speeds;
    spec.configure = [](scenario::Scenario& s, double v) {
      s.fleet.max_speed = v;
    };
    spec.algorithms = scenario::paper_algorithms();
    spec.fields = {{"cs", scenario::field_ch_changes}};
    spec.replications = cfg.seeds;
    return runner.run(spec).series("cs");
  };

  std::cout << "=== Figure 6: clusterhead changes vs MaxSpeed (Tx 250 m, "
            << "670x670 m, " << cfg.sim_time << " s, " << cfg.seeds
            << " seeds) ===\n\n";

  std::cout << "--- (a) PT = 0 s (always mobile) ---\n";
  const auto a = run_pt(0.0);
  bench::print_comparison(std::cout, "MaxSpeed (m/s)", a, "lowest_id",
                          "mobic", "CS, PT=0",
                          cfg.csv_path.empty() ? "" : cfg.csv_path + ".a.csv");

  std::cout << "\n--- (b) PT = 30 s ---\n";
  const auto b = run_pt(30.0);
  bench::print_comparison(std::cout, "MaxSpeed (m/s)", b, "lowest_id",
                          "mobic", "CS, PT=30",
                          cfg.csv_path.empty() ? "" : cfg.csv_path + ".b.csv");

  // Shape checks: churn grows with speed; MOBIC no worse than Lowest-ID at
  // the mobile end; pauses damp overall churn.
  const auto lid = [](const scenario::SweepPoint& p) {
    return p.values.at("lowest_id").mean;
  };
  const auto mob = [](const scenario::SweepPoint& p) {
    return p.values.at("mobic").mean;
  };
  const bool grows_with_speed = lid(a.back()) > lid(a.front());
  const bool mobic_wins_mobile =
      mob(a[1]) <= lid(a[1]) && mob(a[2]) <= lid(a[2]);
  const bool pauses_damp = lid(b[1]) <= lid(a[1]) * 1.1;
  std::cout << "\nChurn grows with speed: " << (grows_with_speed ? "yes" : "NO")
            << "; MOBIC wins at 20 & 30 m/s (PT=0): "
            << (mobic_wins_mobile ? "yes" : "NO")
            << "; pauses reduce churn: " << (pauses_damp ? "yes" : "NO")
            << "\n";
  if (!grows_with_speed || !mobic_wins_mobile) {
    std::cerr << "FIG6 SHAPE CHECK FAILED\n";
    return 1;
  }
  std::cout << "Shape check: OK\n";
  return 0;
}
