// Ablation A9 — the paper's §5 note that integrating the metric with
// routing "will also affect the update intervals between the Hello
// messages": mobility-adaptive beacon intervals. Nodes in calm
// neighborhoods slow their beacons (less overhead), mobile ones speed up
// (faster reaction). Reports the stability/overhead tradeoff against the
// fixed BI = 2 s baseline.
//
//   ablation_adaptive_bi [--seeds N] [--time S] [--csv PATH] [--fast]
//                        [--jobs N] [--progress] [--run-log PATH]
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace manet;

  bench::Cli cli(argc, argv, "Ablation A9: mobility-adaptive beacon intervals vs the fixed BI = 2 s baseline.");
  const auto cfg = cli.config();
  cli.finish();

  std::cout << "=== Ablation A9: mobility-adaptive beacon interval "
            << "(670x670 m, PT 0, Tx 200 m, " << cfg.sim_time << " s, "
            << cfg.seeds << " seeds) ===\n\n";

  const auto variant_factory = [](bool adaptive) {
    return [adaptive](cluster::ClusterEventSink* sink) {
      auto o = cluster::mobic_options(sink);
      o.adaptive_bi = adaptive;
      o.adaptive_bi_min = 1.0;
      o.adaptive_bi_max = 4.0;
      o.adaptive_bi_ref = 10.0;
      return o;
    };
  };

  scenario::SweepSpec spec;
  spec.base = bench::paper_scenario();
  spec.base.sim_time = cfg.sim_time;
  cfg.apply_obs(spec.base);
  spec.base.tx_range = 200.0;
  spec.xs = {1.0, 20.0};  // MaxSpeed
  spec.configure = [](scenario::Scenario& s, double speed) {
    s.fleet.max_speed = speed;
  };
  spec.algorithms = {{"fixed_bi", variant_factory(false)},
                     {"adaptive_bi", variant_factory(true)}};
  spec.fields = {{"cs", scenario::field_ch_changes},
                 {"beacons", scenario::field_beacons_sent},
                 {"bytes", scenario::field_bytes_sent}};
  spec.replications = cfg.seeds;

  const auto result = cfg.runner().run(spec);

  util::Table table({"MaxSpeed", "variant", "CS", "+-", "beacons sent",
                     "bytes sent"});
  std::optional<util::CsvWriter> csv;
  if (!cfg.csv_path.empty()) {
    csv.emplace(cfg.csv_path);
    csv->row({"speed", "variant", "cs", "ci", "beacons", "bytes"});
  }

  for (const auto& point : result.points) {
    for (const auto& alg : spec.algorithms) {
      const auto& cell = point.algorithms.at(alg.name);
      const auto& cs = cell.values.at("cs");
      const auto& beacons = cell.values.at("beacons");
      const auto& bytes = cell.values.at("bytes");
      table.add(util::Table::fmt(point.x, 0), alg.name,
                util::Table::fmt(cs.mean, 1),
                util::Table::fmt(cs.half_width, 1),
                util::Table::fmt(beacons.mean, 0),
                util::Table::fmt(bytes.mean, 0));
      if (csv) {
        csv->row_values(point.x, alg.name, cs.mean, cs.half_width,
                        beacons.mean, bytes.mean);
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nAt MaxSpeed 1 the adaptive variant should beacon far "
               "less for similar stability; at MaxSpeed 20 it trades some "
               "beacons for faster reaction.\n";
  return 0;
}
