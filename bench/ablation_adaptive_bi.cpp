// Ablation A9 — the paper's §5 note that integrating the metric with
// routing "will also affect the update intervals between the Hello
// messages": mobility-adaptive beacon intervals. Nodes in calm
// neighborhoods slow their beacons (less overhead), mobile ones speed up
// (faster reaction). Reports the stability/overhead tradeoff against the
// fixed BI = 2 s baseline.
//
//   ablation_adaptive_bi [--seeds N] [--time S] [--csv PATH] [--fast]
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace manet;

  util::Flags flags(argc, argv);
  const auto cfg = bench::BenchConfig::from_flags(flags);
  flags.finish();

  std::cout << "=== Ablation A9: mobility-adaptive beacon interval "
            << "(670x670 m, PT 0, Tx 200 m, " << cfg.sim_time << " s, "
            << cfg.seeds << " seeds) ===\n\n";

  util::Table table({"MaxSpeed", "variant", "CS", "+-", "beacons sent",
                     "bytes sent"});
  std::optional<util::CsvWriter> csv;
  if (!cfg.csv_path.empty()) {
    csv.emplace(cfg.csv_path);
    csv->row({"speed", "variant", "cs", "ci", "beacons", "bytes"});
  }

  struct Variant {
    std::string name;
    bool adaptive;
  };
  const std::vector<Variant> variants = {{"fixed_bi", false},
                                         {"adaptive_bi", true}};

  for (const double speed : {1.0, 20.0}) {
    scenario::Scenario s = bench::paper_scenario();
    s.sim_time = cfg.sim_time;
    s.tx_range = 200.0;
    s.fleet.max_speed = speed;
    for (const auto& variant : variants) {
      const bool adaptive = variant.adaptive;
      const auto factory = [adaptive](cluster::ClusterEventSink* sink) {
        auto o = cluster::mobic_options(sink);
        o.adaptive_bi = adaptive;
        o.adaptive_bi_min = 1.0;
        o.adaptive_bi_max = 4.0;
        o.adaptive_bi_ref = 10.0;
        return o;
      };
      const auto runs = scenario::run_replications(s, factory, cfg.seeds);
      const auto cs = scenario::aggregate(runs, scenario::field_ch_changes);
      util::RunningStats beacons, bytes;
      for (const auto& r : runs) {
        beacons.add(static_cast<double>(r.beacons_sent));
        bytes.add(static_cast<double>(r.bytes_sent));
      }
      table.add(util::Table::fmt(speed, 0), variant.name,
                util::Table::fmt(cs.mean, 1),
                util::Table::fmt(cs.half_width, 1),
                util::Table::fmt(beacons.mean(), 0),
                util::Table::fmt(bytes.mean(), 0));
      if (csv) {
        csv->row_values(speed, variant.name, cs.mean, cs.half_width,
                        beacons.mean(), bytes.mean());
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nAt MaxSpeed 1 the adaptive variant should beacon far "
               "less for similar stability; at MaxSpeed 20 it trades some "
               "beacons for faster reaction.\n";
  return 0;
}
