// Ablation A7 — §5's "integrate the mobility metric with a cluster based
// routing protocol": route discovery on top of the cluster structure
// (CBRP-style: only clusterheads and gateways forward RREQs) versus flat
// flooding, under each clustering algorithm.
//
// Reported per algorithm:
//   * control transmissions per discovery (flat vs cluster overlay);
//   * delivery rate of each scheme;
//   * route lifetime: how long the discovered route survives node motion —
//     where clusterhead stability pays off.
//
//   routing_overhead [--seeds N] [--time S] [--csv PATH] [--fast] [--jobs N]
#include <iostream>

#include "bench_common.h"
#include "routing/experiment.h"

int main(int argc, char** argv) {
  using namespace manet;

  bench::Cli cli(argc, argv, "Ablation A7: cluster-overlay route discovery vs flat flooding.");
  const auto cfg = cli.config();
  cli.finish();

  std::cout << "=== Ablation A7: cluster-based route discovery (670x670 m, "
            << "MaxSpeed 20, PT 0, Tx 150 m, " << cfg.sim_time << " s, "
            << cfg.seeds << " seeds) ===\n\n";

  util::Table table({"algorithm", "CS", "tx/discovery (flood)",
                     "tx/discovery (cluster)", "delivery (flood)",
                     "delivery (cluster)", "route life (s, flood)",
                     "route life (s, cluster)", "overlay churn"});
  std::optional<util::CsvWriter> csv;
  if (!cfg.csv_path.empty()) {
    csv.emplace(cfg.csv_path);
    csv->row({"algorithm", "cs", "tx_flood", "tx_cluster", "del_flood",
              "del_cluster", "life_flood", "life_cluster", "overlay_churn"});
  }

  // Fan every (algorithm, seed) run out as an independent job; reduce in
  // canonical order below so the output matches the old serial loop.
  const auto algorithms = scenario::paper_algorithms();
  const auto seeds = static_cast<std::size_t>(cfg.seeds);
  const auto runner = cfg.runner();
  const auto runs = runner.map<routing::RoutingResult>(
      algorithms.size() * seeds, [&](std::size_t idx) {
        const auto& alg = algorithms[idx / seeds];
        const auto k = idx % seeds;
        routing::RoutingExperimentParams params;
        params.scenario = bench::paper_scenario();
        params.scenario.sim_time = cfg.sim_time;
        params.scenario.tx_range = 150.0;
        params.scenario.seed = 1 + static_cast<std::uint64_t>(k);
        return routing::run_routing_experiment(params, alg.factory);
      });

  double overlay_saving_mobic = 0.0;
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    const auto& alg = algorithms[a];
    util::RunningStats cs, txf, txc, delf, delc, lifef, lifec, churn;
    for (std::size_t k = 0; k < seeds; ++k) {
      const auto& r = runs[a * seeds + k];
      cs.add(static_cast<double>(r.ch_changes));
      txf.add(r.mean_tx_flood);
      txc.add(r.mean_tx_cluster);
      delf.add(r.delivery_flood);
      delc.add(r.delivery_cluster);
      lifef.add(r.mean_route_lifetime_flood);
      lifec.add(r.mean_route_lifetime_cluster);
      churn.add(r.overlay_churn);
    }
    if (alg.name == "mobic") {
      overlay_saving_mobic = 1.0 - txc.mean() / txf.mean();
    }
    table.add(alg.name, util::Table::fmt(cs.mean(), 0),
              util::Table::fmt(txf.mean(), 1), util::Table::fmt(txc.mean(), 1),
              util::Table::fmt(delf.mean(), 2),
              util::Table::fmt(delc.mean(), 2),
              util::Table::fmt(lifef.mean(), 1),
              util::Table::fmt(lifec.mean(), 1),
              util::Table::fmt(churn.mean(), 3));
    if (csv) {
      csv->row_values(alg.name, cs.mean(), txf.mean(), txc.mean(),
                      delf.mean(), delc.mean(), lifef.mean(), lifec.mean(),
                      churn.mean());
    }
  }
  table.print(std::cout);
  std::cout << "\nThe cluster overlay cuts RREQ transmissions by "
            << util::Table::fmt(overlay_saving_mobic * 100.0, 1)
            << "% under MOBIC (the flooding-containment argument of §1/§2); "
               "route lifetime under the stabler clusterheads is the §5 "
               "payoff.\n";
  if (overlay_saving_mobic <= 0.0) {
    std::cerr << "ROUTING CHECK FAILED: overlay does not reduce overhead\n";
    return 1;
  }
  return 0;
}
