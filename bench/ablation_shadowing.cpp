// Ablation A5: robustness of the power-ratio metric to fading. The paper's
// channel is ideal free space (footnote 6); here log-normal shadowing with
// per-reception sigma in {0, 2, 4, 6} dB corrupts exactly the quantity
// MOBIC measures (received power), while Lowest-ID's weights (ids) are
// untouched — a worst-case stress for the metric.
//
//   ablation_shadowing [--seeds N] [--time S] [--csv PATH] [--fast]
//                      [--jobs N] [--progress] [--run-log PATH]
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace manet;

  bench::Cli cli(argc, argv, "Ablation A5: log-normal shadowing stress on the power-ratio metric.");
  const auto cfg = cli.config();
  cli.finish();

  const std::vector<double> sigmas = {0.0, 2.0, 4.0, 6.0};

  std::cout << "=== Ablation A5: log-normal shadowing vs the power-ratio "
            << "metric (670x670 m, MaxSpeed 20, PT 0, Tx 200 m, "
            << cfg.sim_time << " s, " << cfg.seeds << " seeds) ===\n\n";

  scenario::SweepSpec spec;
  spec.base = bench::paper_scenario();
  spec.base.sim_time = cfg.sim_time;
  cfg.apply_obs(spec.base);
  spec.base.tx_range = 200.0;
  spec.xs = sigmas;
  spec.configure = [](scenario::Scenario& s, double sigma) {
    if (sigma > 0.0) {
      s.propagation = "shadowing";
      s.pathloss_exponent = 2.0;  // keep the free-space slope; add fading
      s.shadowing_sigma_db = sigma;
    }
  };
  spec.algorithms = scenario::paper_algorithms();
  spec.fields = {{"cs", scenario::field_ch_changes}};
  spec.replications = cfg.seeds;

  const auto result = cfg.runner().run(spec);

  util::Table table({"sigma (dB)", "algorithm", "CS", "+-"});
  std::optional<util::CsvWriter> csv;
  if (!cfg.csv_path.empty()) {
    csv.emplace(cfg.csv_path);
    csv->row({"sigma", "algorithm", "cs", "ci"});
  }

  for (const auto& point : result.points) {
    for (const auto& alg : spec.algorithms) {
      const auto& agg = point.algorithms.at(alg.name).values.at("cs");
      table.add(util::Table::fmt(point.x, 0), alg.name,
                util::Table::fmt(agg.mean, 1),
                util::Table::fmt(agg.half_width, 1));
      if (csv) {
        csv->row_values(point.x, alg.name, agg.mean, agg.half_width);
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nShadowing randomizes both delivery (both algorithms "
               "suffer) and the M samples (only MOBIC's weights suffer); "
               "the interesting quantity is how fast MOBIC's edge erodes "
               "with sigma.\n";
  return 0;
}
