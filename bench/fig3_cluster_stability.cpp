// Figure 3: cluster stability (number of clusterhead changes, CS) vs
// transmission range on the 670 m x 670 m field, MaxSpeed 20 m/s, PT 0.
//
// Paper shape: both curves rise to a peak near Tx ~ 50 m, then fall; MOBIC
// underperforms Lowest-ID at small ranges (sparse neighborhoods make the
// aggregate metric imprecise, §4.2) and wins for Tx >~ 100 m, by up to
// ~33% at 250 m.
//
//   fig3_cluster_stability [--seeds N] [--time S] [--csv PATH] [--fast]
//                          [--jobs N] [--progress] [--run-log PATH]
#include <iostream>

#include "bench_common.h"
#include "util/significance.h"

int main(int argc, char** argv) {
  using namespace manet;

  bench::Cli cli(argc, argv, "Figure 3: clusterhead changes (CS) vs transmission range, 670x670 m field.");
  const auto cfg = cli.config();
  cli.finish();

  scenario::SweepSpec spec;
  spec.base = bench::paper_scenario();
  spec.base.sim_time = cfg.sim_time;
  cfg.apply_obs(spec.base);
  spec.xs = bench::default_tx_sweep();
  spec.configure = [](scenario::Scenario& s, double tx) { s.tx_range = tx; };
  spec.algorithms = scenario::paper_algorithms();
  spec.fields = {{"cs", scenario::field_ch_changes}};
  spec.replications = cfg.seeds;

  std::cout << "=== Figure 3: clusterhead changes vs Tx (670x670 m, "
            << "MaxSpeed 20 m/s, PT 0, " << cfg.sim_time << " s, "
            << cfg.seeds << " seeds) ===\n\n";

  const auto series = cfg.runner().run(spec).series("cs");

  const auto gains = bench::print_comparison(
      std::cout, "Tx (m)", series, "lowest_id", "mobic",
      "CS = clusterhead changes per run", cfg.csv_path);

  // Per-point significance: is MOBIC's CS stochastically smaller?
  // (Mann-Whitney on the per-seed samples; effect = P(mobic < lowest_id).)
  {
    util::Table sig({"Tx (m)", "P(mobic < lowest_id)", "one-sided p"});
    for (const auto& p : series) {
      const auto mw =
          util::mann_whitney(p.raw.at("mobic"), p.raw.at("lowest_id"));
      sig.add(util::Table::fmt(p.x, 0), util::Table::fmt(mw.effect_size, 2),
              util::Table::fmt(mw.p_a_less, 3));
    }
    std::cout << '\n';
    sig.print(std::cout);
  }

  // Shape checks mirrored from the paper's discussion (§4.2).
  const std::size_t peak_lid = bench::argmax_x(series, "lowest_id");
  const double gain_250 = gains.back().value_or(0.0);
  std::cout << "\nLowest-ID churn peaks at Tx = " << series[peak_lid].x
            << " m (paper: ~50 m).\n";
  std::cout << "Gain at Tx = 250 m: "
            << (gains.back() ? util::Table::fmt(gain_250, 1) : "n/a")
            << "% (paper: ~33%).\n";

  // Internal consistency: the peak must not sit at the sweep edges, and
  // MOBIC must win at the largest range.
  const bool peak_interior =
      peak_lid != 0 && peak_lid != series.size() - 1;
  const bool mobic_wins_at_250 = gain_250 > 0.0;
  if (!peak_interior || !mobic_wins_at_250) {
    std::cerr << "FIG3 SHAPE CHECK FAILED: peak_interior=" << peak_interior
              << " mobic_wins_at_250=" << mobic_wins_at_250 << "\n";
    return 1;
  }
  std::cout << "Shape check: OK\n";
  return 0;
}
