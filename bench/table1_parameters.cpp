// Table 1: the simulation parameters, plus a measured characterization of
// the scenarios those parameters generate: ground-truth average degree,
// mean link lifetime, and the geometric aggregate mobility metric of
// Johansson et al. [11] (the related-work baseline of §2.2) — the numbers
// that justify calling MaxSpeed=1 "low" and 30 "high" mobility.
//
//   table1_parameters [--seeds N] [--time S] [--fast] [--csv PATH]
//                     [--jobs N]
#include <iostream>

#include "bench_common.h"
#include "metrics/geometric.h"
#include "mobility/trace.h"

int main(int argc, char** argv) {
  using namespace manet;

  bench::Cli cli(argc, argv, "Table 1: simulation parameters plus measured scenario characterization.");
  auto cfg = cli.config();
  cli.finish();
  // Characterization does not need 900 s to converge.
  const double horizon = std::min(cfg.sim_time, 300.0);

  std::cout << "=== Table 1: simulation parameters (as implemented) ===\n\n";
  util::Table params({"parameter", "meaning", "value"});
  params.add("N", "number of nodes", "50");
  params.add("m x n", "size of the scenario", "670^2, 1000^2 m^2");
  params.add("MaxSpeed", "maximum speed", "1, 20, 30 m/s");
  params.add("Tx", "transmission range", "10 - 250 m");
  params.add("PT", "pause times", "0, 30 s");
  params.add("BI", "broadcast interval", "2.0 s");
  params.add("TP", "timeout period", "3.0 s");
  params.add("CCI", "cluster contention interval", "4.0 s");
  params.add("S", "simulation time", "900 s");
  params.print(std::cout);

  std::cout << "\n=== Measured scenario characterization (" << horizon
            << " s horizon, ground truth at Tx = 250 m) ===\n\n";

  util::Table table({"field (m)", "MaxSpeed", "PT (s)",
                     "geo. mobility [11] (m/s)", "mean degree",
                     "mean link lifetime (s)"});
  std::optional<util::CsvWriter> csv;
  if (!cfg.csv_path.empty()) {
    csv.emplace(cfg.csv_path);
    csv->row({"field", "max_speed", "pause", "geometric_mobility",
              "mean_degree", "link_lifetime"});
  }

  struct Case {
    double side;
    double speed;
    double pause;
  };
  const std::vector<Case> cases = {
      {670.0, 1.0, 0.0},  {670.0, 20.0, 0.0},  {670.0, 30.0, 0.0},
      {670.0, 20.0, 30.0}, {1000.0, 20.0, 0.0},
  };

  // Each characterization case is an independent deterministic job
  // (fixed Rng(1)); the Runner fans them out and returns in case order.
  struct Row {
    double geo = 0.0;
    metrics::LinkStats links;
  };
  const auto runner = cfg.runner();
  const auto rows = runner.map<Row>(cases.size(), [&](std::size_t i) {
    const auto& c = cases[i];
    mobility::FleetParams fp;
    fp.kind = mobility::ModelKind::kRandomWaypoint;
    fp.field = geom::Rect(c.side, c.side);
    fp.duration = horizon;
    fp.max_speed = c.speed;
    fp.pause_time = c.pause;
    auto fleet = mobility::make_fleet(fp, 50, util::Rng(1));
    std::vector<mobility::PiecewiseLinearTrack> tracks;
    tracks.reserve(fleet.size());
    for (auto& m : fleet) {
      tracks.push_back(mobility::record_track(*m, horizon, 1.0));
    }
    Row row;
    row.geo = metrics::geometric_mobility_metric(tracks, horizon, 5.0);
    row.links = metrics::link_stats(tracks, 250.0, horizon, 1.0);
    return row;
  });

  double geo_slow = 0.0, geo_fast = 0.0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    const auto& row = rows[i];
    if (c.side == 670.0 && c.pause == 0.0 && c.speed == 1.0) {
      geo_slow = row.geo;
    }
    if (c.side == 670.0 && c.pause == 0.0 && c.speed == 30.0) {
      geo_fast = row.geo;
    }
    table.add(util::Table::fmt(c.side, 0), util::Table::fmt(c.speed, 0),
              util::Table::fmt(c.pause, 0), util::Table::fmt(row.geo, 2),
              util::Table::fmt(row.links.mean_degree, 1),
              util::Table::fmt(row.links.mean_link_lifetime, 1));
    if (csv) {
      csv->row_values(c.side, c.speed, c.pause, row.geo,
                      row.links.mean_degree, row.links.mean_link_lifetime);
    }
  }
  table.print(std::cout);

  std::cout << "\n([11]'s metric ranks scenarios by aggregate pairwise "
               "relative speed — §2.2; it needs global positions, which is "
               "why MOBIC measures power ratios instead.)\n";

  // Consistency: the geometric metric must rank 30 m/s above 1 m/s.
  if (!(geo_fast > geo_slow * 5.0)) {
    std::cerr << "TABLE1 CHECK FAILED: geometric metric does not separate "
                 "speeds (" << geo_slow << " vs " << geo_fast << ")\n";
    return 1;
  }
  std::cout << "Consistency check: OK\n";
  return 0;
}
