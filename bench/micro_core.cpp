// Ablation A8: google-benchmark micro-benchmarks of the substrate hot paths
// — event queue throughput, spatial grid queries, metric computation,
// clustering decisions, and whole-simulation throughput per simulated
// second.
#include <benchmark/benchmark.h>

#include <atomic>

#include "bench_common.h"
#include "geom/grid_index.h"
#include "metrics/aggregate_mobility.h"
#include "sim/simulator.h"
#include "util/thread_pool.h"

namespace {

using namespace manet;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<double> times(n);
  for (auto& t : times) {
    t = rng.uniform(0.0, 1000.0);
  }
  for (auto _ : state) {
    sim::EventQueue q;
    for (const double t : times) {
      q.push(t, [] {});
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.pop());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1000)->Arg(10000);

void BM_GridIndexQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const geom::Rect field(1000.0, 1000.0);
  util::Rng rng(2);
  std::vector<geom::Vec2> pts(n);
  for (auto& p : pts) {
    p = field.sample(rng);
  }
  geom::GridIndex grid(field, 50.0);
  grid.rebuild(pts);
  std::vector<std::size_t> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    grid.query_radius(pts[i++ % n], 150.0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GridIndexQuery)->Arg(50)->Arg(500)->Arg(5000);

void BM_GridIndexRebuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const geom::Rect field(1000.0, 1000.0);
  util::Rng rng(3);
  std::vector<geom::Vec2> pts(n);
  for (auto& p : pts) {
    p = field.sample(rng);
  }
  geom::GridIndex grid(field, 50.0);
  for (auto _ : state) {
    grid.rebuild(pts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GridIndexRebuild)->Arg(50)->Arg(5000);

void BM_AggregateMobilityUpdate(benchmark::State& state) {
  const auto neighbors = static_cast<net::NodeId>(state.range(0));
  net::NeighborTable table;
  util::Rng rng(4);
  for (net::NodeId i = 0; i < neighbors; ++i) {
    net::HelloPacket p;
    p.sender = i;
    p.seq = 1;
    table.on_hello(0.0, p, rng.uniform(1e-10, 1e-8));
    p.seq = 2;
    table.on_hello(2.0, p, rng.uniform(1e-10, 1e-8));
  }
  metrics::AggregateMobilityEstimator est;
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.update(table, 2.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          neighbors);
}
BENCHMARK(BM_AggregateMobilityUpdate)->Arg(10)->Arg(50)->Arg(200);

void BM_FullScenarioSecond(benchmark::State& state) {
  // Cost of one simulated second of the paper's Figure-3 scenario
  // (50 nodes, Tx = 250 m), MOBIC.
  for (auto _ : state) {
    state.PauseTiming();
    scenario::Scenario s = bench::paper_scenario();
    s.sim_time = static_cast<double>(state.range(0));
    s.warmup = 1.0;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        scenario::run_scenario(s, scenario::factory_by_name("mobic")));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FullScenarioSecond)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_ThreadPoolSubmit(benchmark::State& state) {
  // Dispatch overhead of the work-stealing pool that backs
  // scenario::Runner: submit N trivial jobs, drain, repeat.
  const auto n = static_cast<std::size_t>(state.range(0));
  util::ThreadPool pool;
  std::atomic<std::size_t> done{0};
  for (auto _ : state) {
    done.store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    benchmark::DoNotOptimize(done.load(std::memory_order_relaxed));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ThreadPoolSubmit)->Arg(100)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
