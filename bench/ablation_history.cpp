// Ablation A2 — the paper's §5 future-work idea: "keeping some history
// information about the mobility values may yield more stable metrics and
// ... more stable clusters." EWMA-smooths M across beacon rounds:
//   M <- alpha * M_now + (1 - alpha) * M_prev
// alpha = 1 is the published memoryless metric; smaller alpha = more memory.
//
//   ablation_history [--seeds N] [--time S] [--csv PATH] [--fast]
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace manet;

  util::Flags flags(argc, argv);
  const auto cfg = bench::BenchConfig::from_flags(flags);
  flags.finish();

  const std::vector<double> alphas = {1.0, 0.75, 0.5, 0.25};

  std::cout << "=== Ablation A2: EWMA history on the mobility metric "
            << "(670x670 m, MaxSpeed 20, PT 0, Tx in {100, 250} m, "
            << cfg.sim_time << " s, " << cfg.seeds << " seeds) ===\n\n";

  util::Table table(
      {"Tx (m)", "alpha", "CS", "+-", "reaffiliations", "CH reign (s)"});
  std::optional<util::CsvWriter> csv;
  if (!cfg.csv_path.empty()) {
    csv.emplace(cfg.csv_path);
    csv->row({"tx", "alpha", "cs", "ci", "reaffiliations", "reign"});
  }

  for (const double tx : {100.0, 250.0}) {
    scenario::Scenario s = bench::paper_scenario();
    s.sim_time = cfg.sim_time;
    s.tx_range = tx;
    for (const double alpha : alphas) {
      const auto factory = [alpha](cluster::ClusterEventSink* sink) {
        return cluster::mobic_history_options(alpha, sink);
      };
      const auto runs = scenario::run_replications(s, factory, cfg.seeds);
      const auto cs = scenario::aggregate(runs, scenario::field_ch_changes);
      const auto reaff =
          scenario::aggregate(runs, scenario::field_reaffiliations);
      const auto reign =
          scenario::aggregate(runs, scenario::field_head_lifetime);
      table.add(util::Table::fmt(tx, 0), util::Table::fmt(alpha, 2),
                util::Table::fmt(cs.mean, 1),
                util::Table::fmt(cs.half_width, 1),
                util::Table::fmt(reaff.mean, 0),
                util::Table::fmt(reign.mean, 1));
      if (csv) {
        csv->row_values(tx, alpha, cs.mean, cs.half_width, reaff.mean,
                        reign.mean);
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nalpha = 1.00 is the paper's memoryless metric; smaller "
               "alpha adds history (§5).\n";
  return 0;
}
