// Ablation A2 — the paper's §5 future-work idea: "keeping some history
// information about the mobility values may yield more stable metrics and
// ... more stable clusters." EWMA-smooths M across beacon rounds:
//   M <- alpha * M_now + (1 - alpha) * M_prev
// alpha = 1 is the published memoryless metric; smaller alpha = more memory.
//
//   ablation_history [--seeds N] [--time S] [--csv PATH] [--fast]
//                    [--jobs N] [--progress] [--run-log PATH]
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace manet;

  bench::Cli cli(argc, argv, "Ablation A2: EWMA mobility-history smoothing of the MOBIC metric.");
  const auto cfg = cli.config();
  cli.finish();

  const std::vector<double> alphas = {1.0, 0.75, 0.5, 0.25};

  std::cout << "=== Ablation A2: EWMA history on the mobility metric "
            << "(670x670 m, MaxSpeed 20, PT 0, Tx in {100, 250} m, "
            << cfg.sim_time << " s, " << cfg.seeds << " seeds) ===\n\n";

  scenario::SweepSpec spec;
  spec.base = bench::paper_scenario();
  spec.base.sim_time = cfg.sim_time;
  cfg.apply_obs(spec.base);
  spec.xs = {100.0, 250.0};
  spec.configure = [](scenario::Scenario& s, double tx) { s.tx_range = tx; };
  for (const double alpha : alphas) {
    spec.algorithms.push_back(
        {"alpha_" + util::Table::fmt(alpha, 2),
         [alpha](cluster::ClusterEventSink* sink) {
           return cluster::mobic_history_options(alpha, sink);
         }});
  }
  spec.fields = {{"cs", scenario::field_ch_changes},
                 {"reaff", scenario::field_reaffiliations},
                 {"reign", scenario::field_head_lifetime}};
  spec.replications = cfg.seeds;

  const auto result = cfg.runner().run(spec);

  util::Table table(
      {"Tx (m)", "alpha", "CS", "+-", "reaffiliations", "CH reign (s)"});
  std::optional<util::CsvWriter> csv;
  if (!cfg.csv_path.empty()) {
    csv.emplace(cfg.csv_path);
    csv->row({"tx", "alpha", "cs", "ci", "reaffiliations", "reign"});
  }

  for (const auto& point : result.points) {
    for (std::size_t a = 0; a < alphas.size(); ++a) {
      const auto& cell = point.algorithms.at(spec.algorithms[a].name);
      const auto& cs = cell.values.at("cs");
      const auto& reaff = cell.values.at("reaff");
      const auto& reign = cell.values.at("reign");
      table.add(util::Table::fmt(point.x, 0),
                util::Table::fmt(alphas[a], 2), util::Table::fmt(cs.mean, 1),
                util::Table::fmt(cs.half_width, 1),
                util::Table::fmt(reaff.mean, 0),
                util::Table::fmt(reign.mean, 1));
      if (csv) {
        csv->row_values(point.x, alphas[a], cs.mean, cs.half_width,
                        reaff.mean, reign.mean);
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nalpha = 1.00 is the paper's memoryless metric; smaller "
               "alpha adds history (§5).\n";
  return 0;
}
