// Resilience under churn: MOBIC vs Lowest-ID(LCC) recovery behavior on a
// crash-rate x loss-burst grid (not a paper figure — a robustness probe of
// the reproduction). Every run injects a seed-deterministic fault schedule
// (node crashes with Exp(30 s) downtime, plus optional 8 s radio
// brown-outs) and the convergence monitor reports how fast each algorithm
// heals: mean time from a fault to the next clean Theorem-1 validation
// sample, member-seconds spent orphaned, and disruptions never healed.
//
//   resilience_churn [--seeds N] [--time S] [--csv PATH] [--fast]
//                    [--jobs N] [--progress] [--run-log PATH]
//
// Output is byte-identical for every --jobs value (MRIP reduction).
#include <iostream>

#include "bench_common.h"

namespace {

// Inserts a suffix before the extension: out.csv + "_b0.02" -> out_b0.02.csv.
std::string csv_with_suffix(const std::string& path,
                            const std::string& suffix) {
  if (path.empty()) {
    return path;
  }
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos) {
    return path + suffix;
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace manet;

  bench::Cli cli(argc, argv, "Resilience probe: recovery behavior on a crash-rate x loss-burst fault grid.");
  const auto cfg = cli.config();
  cli.finish();

  // x axis: network-wide crash arrivals per 100 s (integral so the shared
  // comparison table renders it exactly); configure() rescales to /s.
  const std::vector<double> crash_rates = {1.0, 3.0, 6.0};
  const std::vector<double> burst_rates = {0.0, 0.02, 0.05};  // bursts/s

  // Faults stop 60 s before the end so every disruption has a quiet tail
  // to heal in; unrecovered_disruptions then measures real failures to
  // reconverge, not truncation.
  const double fault_begin = 30.0;
  const double fault_end = std::max(fault_begin + 30.0, cfg.sim_time - 60.0);

  std::cout << "=== Resilience: recovery vs crash rate (670x670 m, "
            << "MaxSpeed 20 m/s, faults on [" << fault_begin << ", "
            << fault_end << ") s of " << cfg.sim_time << " s, " << cfg.seeds
            << " seeds) ===\n";

  const scenario::Runner runner = cfg.runner();
  bool consistent = true;

  for (const double burst_rate : burst_rates) {
    scenario::SweepSpec spec;
    spec.base = bench::paper_scenario();
    spec.base.sim_time = cfg.sim_time;
    cfg.apply_obs(spec.base);
    spec.xs = crash_rates;
    spec.configure = [&](scenario::Scenario& s, double crashes_per_100s) {
      s.faults.begin = fault_begin;
      s.faults.end = fault_end;
      s.faults.crash_rate = crashes_per_100s / 100.0;
      s.faults.mean_downtime = 30.0;
      s.faults.loss_burst_rate = burst_rate;
      s.faults.loss_burst_duration = 8.0;
      s.faults.loss_burst_probability = 0.9;
    };
    spec.algorithms = scenario::paper_algorithms();
    spec.fields = {
        {"recovery", scenario::field_mean_recovery},
        {"orphaned", scenario::field_orphaned_member_seconds},
        {"unrecovered", scenario::field_unrecovered},
        {"violation_frac", scenario::field_violation_fraction},
        {"faults",
         [](const scenario::RunResult& r) {
           return static_cast<double>(r.faults_injected);
         }},
        {"cs", scenario::field_ch_changes},
    };
    spec.replications = cfg.seeds;

    std::cout << "\n--- Loss bursts: " << burst_rate
              << " /s (8 s, p=0.9) ---\n\n";
    const scenario::SweepResult result = runner.run(spec);

    std::ostringstream suffix;
    suffix << "_burst" << burst_rate;
    bench::print_comparison(
        std::cout, "crashes/100s", result.series("recovery"), "lowest_id",
        "mobic", "mean time-to-reconverge (s)",
        csv_with_suffix(cfg.csv_path, suffix.str() + "_recovery"));
    std::cout << '\n';
    bench::print_comparison(
        std::cout, "crashes/100s", result.series("orphaned"), "lowest_id",
        "mobic", "orphaned member-seconds",
        csv_with_suffix(cfg.csv_path, suffix.str() + "_orphaned"));
    std::cout << '\n';
    bench::print_comparison(std::cout, "crashes/100s", result.series("cs"),
                            "lowest_id", "mobic",
                            "CS = clusterhead changes per run", "");

    // Consistency: every cell whose schedule should produce faults must
    // actually have injected some, and violation fractions must be sane.
    // Short --time runs shrink the fault window until low crash rates
    // expect <1 arrival; only flag cells where zero faults would be a
    // statistical surprise rather than a plausible Poisson draw.
    const double window = fault_end - fault_begin;
    for (const auto& point : result.points) {
      const double expected_faults =
          (point.x / 100.0 + burst_rate) * window;
      for (const auto& [alg, cell] : point.algorithms) {
        const double faults = cell.values.at("faults").mean;
        const double viol = cell.values.at("violation_frac").mean;
        if (faults <= 0.0 && expected_faults >= 2.0) {
          std::cerr << "RESILIENCE CHECK FAILED: no faults injected at "
                    << "crash rate " << point.x << " (" << alg << ", ~"
                    << expected_faults << " expected)\n";
          consistent = false;
        }
        if (viol < 0.0 || viol > 1.0) {
          std::cerr << "RESILIENCE CHECK FAILED: violation fraction " << viol
                    << " out of range at crash rate " << point.x << " ("
                    << alg << ")\n";
          consistent = false;
        }
      }
    }
  }

  if (!consistent) {
    return 1;
  }
  std::cout << "\nConsistency check: OK\n";
  return 0;
}
