// Ablations A3 + A4: the clustering family tree on one scenario.
//
//   * lowest_id_plain — original eager Lowest-ID [4, 5] (pre-LCC): shows
//     the churn the LCC rule was invented to fix [3];
//   * lowest_id       — Lowest-ID + LCC (the paper's baseline);
//   * max_connectivity — highest-degree clustering [5]: the paper (after
//     [3]) reports it much less stable than Lowest-ID because degree
//     changes with every topology flutter;
//   * mobic           — the paper's contribution.
//
//   ablation_lcc [--seeds N] [--time S] [--csv PATH] [--fast]
//                [--jobs N] [--progress] [--run-log PATH]
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace manet;

  bench::Cli cli(argc, argv, "Ablations A3+A4: Lowest-ID (plain/LCC) vs Max-Connectivity family comparison.");
  const auto cfg = cli.config();
  cli.finish();

  const std::vector<std::string> algorithms = {
      "lowest_id_plain", "max_connectivity", "lowest_id", "mobic",
      "combined"};

  std::cout << "=== Ablations A3/A4: algorithm family on the Figure-3 "
            << "scenario (670x670 m, MaxSpeed 20, PT 0, " << cfg.sim_time
            << " s, " << cfg.seeds << " seeds) ===\n\n";

  scenario::SweepSpec spec;
  spec.base = bench::paper_scenario();
  spec.base.sim_time = cfg.sim_time;
  cfg.apply_obs(spec.base);
  spec.xs = {100.0, 250.0};
  spec.configure = [](scenario::Scenario& s, double tx) { s.tx_range = tx; };
  for (const auto& name : algorithms) {
    spec.algorithms.push_back({name, scenario::factory_by_name(name)});
  }
  spec.fields = {{"cs", scenario::field_ch_changes},
                 {"reaff", scenario::field_reaffiliations},
                 {"clusters", scenario::field_avg_clusters},
                 {"reign", scenario::field_head_lifetime}};
  spec.replications = cfg.seeds;

  const auto result = cfg.runner().run(spec);

  util::Table table({"Tx (m)", "algorithm", "CS", "+-", "reaffiliations",
                     "avg clusters", "CH reign (s)"});
  std::optional<util::CsvWriter> csv;
  if (!cfg.csv_path.empty()) {
    csv.emplace(cfg.csv_path);
    csv->row({"tx", "algorithm", "cs", "ci", "reaffiliations", "clusters",
              "reign"});
  }

  double cs_plain = 0.0, cs_lcc = 0.0, cs_maxconn = 0.0, cs_mobic = 0.0;
  for (const auto& point : result.points) {
    for (const auto& name : algorithms) {
      const auto& cell = point.algorithms.at(name);
      const auto& cs = cell.values.at("cs");
      const auto& reaff = cell.values.at("reaff");
      const auto& clusters = cell.values.at("clusters");
      const auto& reign = cell.values.at("reign");
      if (point.x == 250.0) {
        if (name == "lowest_id_plain") cs_plain = cs.mean;
        if (name == "lowest_id") cs_lcc = cs.mean;
        if (name == "max_connectivity") cs_maxconn = cs.mean;
        if (name == "mobic") cs_mobic = cs.mean;
      }
      table.add(util::Table::fmt(point.x, 0), name,
                util::Table::fmt(cs.mean, 1),
                util::Table::fmt(cs.half_width, 1),
                util::Table::fmt(reaff.mean, 0),
                util::Table::fmt(clusters.mean, 1),
                util::Table::fmt(reign.mean, 1));
      if (csv) {
        csv->row_values(point.x, name, cs.mean, cs.half_width, reaff.mean,
                        clusters.mean, reign.mean);
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nNotes: our 'plain' variant re-elects continuously (not the "
               "batch reclustering of [3]), so its *role* churn can be low "
               "while its member reaffiliation churn is the eager behaviour "
               "LCC damps. Expected from [3]/this paper: max_connectivity "
               "less stable than lowest_id; mobic the most stable.\n";
  (void)cs_plain;
  const bool lid_beats_maxconn = cs_lcc < cs_maxconn;
  const bool mobic_best = cs_mobic <= cs_lcc;
  std::cout << "Lowest-ID beats Max-Connectivity: "
            << (lid_beats_maxconn ? "yes" : "NO")
            << "; MOBIC best: " << (mobic_best ? "yes" : "NO") << "\n";
  if (!lid_beats_maxconn) {
    std::cerr << "ABLATION A3/A4 CHECK FAILED\n";
    return 1;
  }
  return 0;
}
