// Figure 5: effect of node area density — the Figure-3 experiment on a
// 1000 m x 1000 m field (same 50 nodes, same mobility).
//
// Paper observations (§4.3):
//   * more clusterhead changes overall (sparser nodes);
//   * the churn peak shifts right (~50 m -> ~75 m);
//   * the Tx where MOBIC starts to win shifts right (~100 m -> ~140 m);
//   * both shifts scale like sqrt(f), f = (1000/670)^2 ~ 2.22, because the
//     critical cluster-overlap fraction is reached at Tx * sqrt(f).
//
// This bench runs both field sizes and prints the scaling check.
//
//   fig5_density [--seeds N] [--time S] [--csv PATH] [--fast]
//                [--jobs N] [--progress] [--run-log PATH]
#include <cmath>
#include <iostream>

#include "bench_common.h"

namespace {

using Series = std::vector<manet::scenario::MultiSweepPoint>;

double cs_of(const manet::scenario::MultiSweepPoint& p,
             const std::string& alg) {
  return p.values.at(alg).at("cs").mean;
}

// First sweep x where MOBIC's mean drops below Lowest-ID's, searching from
// x_from upward; returns the last x if it never crosses.
double crossover_x(const Series& series, double x_from) {
  for (const auto& p : series) {
    if (p.x < x_from) {
      continue;
    }
    if (cs_of(p, "mobic") < cs_of(p, "lowest_id")) {
      return p.x;
    }
  }
  return series.back().x;
}

// Peak location as the centroid of the points within 90% of the maximum —
// robust against a broad plateau, which is exactly how the density shift
// manifests at finite sweep granularity.
double peak_centroid(const Series& series, const std::string& alg) {
  double max_v = 0.0;
  for (const auto& p : series) {
    max_v = std::max(max_v, cs_of(p, alg));
  }
  double num = 0.0, den = 0.0;
  for (const auto& p : series) {
    const double v = cs_of(p, alg);
    if (v >= 0.9 * max_v) {
      num += p.x * v;
      den += v;
    }
  }
  return den > 0.0 ? num / den : 0.0;
}

// §4.3's overlap fraction Aov/A = C*pi*Tx^2/m^2 - 1 at the sweep point
// nearest `tx`, using the measured cluster count C. The paper's claim: the
// churn peak sits at a *scale-invariant* critical value of this fraction.
double overlap_fraction_at(const Series& series, double tx, double area) {
  const manet::scenario::MultiSweepPoint* best = &series.front();
  for (const auto& p : series) {
    if (std::abs(p.x - tx) < std::abs(best->x - tx)) {
      best = &p;
    }
  }
  const double clusters = best->values.at("lowest_id").at("clusters").mean;
  return clusters * M_PI * best->x * best->x / area - 1.0;
}

// Adapts a MultiSweepPoint series to the print_comparison format for one
// field.
std::vector<manet::scenario::SweepPoint> project(
    const Series& series, const std::string& field) {
  std::vector<manet::scenario::SweepPoint> out;
  for (const auto& p : series) {
    manet::scenario::SweepPoint sp;
    sp.x = p.x;
    for (const auto& [alg, by_field] : p.values) {
      sp.values[alg] = by_field.at(field);
    }
    out.push_back(std::move(sp));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace manet;

  bench::Cli cli(argc, argv, "Figure 5: the Figure-3 experiment on a 1000x1000 m field (node density effect).");
  const auto cfg = cli.config();
  cli.finish();

  // Denser sweep around the expected peak region (35-90 m) than the other
  // figures use, so the peak shift is resolvable.
  const std::vector<double> tx_sweep = {10.0, 25.0, 35.0, 50.0, 60.0, 75.0,
                                        90.0, 100.0, 125.0, 150.0, 175.0,
                                        200.0, 225.0, 250.0};
  const auto runner = cfg.runner();
  const auto run_field = [&](double side) {
    scenario::SweepSpec spec;
    spec.base = bench::paper_scenario();
    spec.base.sim_time = cfg.sim_time;
    cfg.apply_obs(spec.base);
    spec.base.fleet.field = geom::Rect(side, side);
    spec.xs = tx_sweep;
    spec.configure = [](scenario::Scenario& s, double tx) {
      s.tx_range = tx;
    };
    spec.algorithms = scenario::paper_algorithms();
    spec.fields = {{"cs", scenario::field_ch_changes},
                   {"clusters", scenario::field_avg_clusters}};
    spec.replications = cfg.seeds;
    return runner.run(spec).multi();
  };

  std::cout << "=== Figure 5: clusterhead changes vs Tx at two area "
            << "densities (N=50, MaxSpeed 20, PT 0, " << cfg.sim_time
            << " s, " << cfg.seeds << " seeds) ===\n\n";

  std::cout << "--- 670 x 670 m (Figure 3 baseline) ---\n";
  const auto s670 = run_field(670.0);
  bench::print_comparison(std::cout, "Tx (m)", project(s670, "cs"),
                          "lowest_id", "mobic", "CS, 670x670", "");

  std::cout << "\n--- 1000 x 1000 m ---\n";
  const auto s1000 = run_field(1000.0);
  bench::print_comparison(std::cout, "Tx (m)", project(s1000, "cs"),
                          "lowest_id", "mobic", "CS, 1000x1000",
                          cfg.csv_path);

  const double peak670 = peak_centroid(s670, "lowest_id");
  const double peak1000 = peak_centroid(s1000, "lowest_id");
  const double f = (1000.0 * 1000.0) / (670.0 * 670.0);

  std::cout << "\nChurn peak (centroid of the >=90%-of-max region): "
            << util::Table::fmt(peak670, 1) << " m (670^2) vs "
            << util::Table::fmt(peak1000, 1) << " m (1000^2); ratio "
            << util::Table::fmt(peak1000 / peak670, 2)
            << " (paper: ~sqrt(f) = " << util::Table::fmt(std::sqrt(f), 2)
            << ").\n";

  // The paper's tentative explanation: the peak occurs at a critical,
  // scale-invariant cluster-overlap fraction Aov/A = C*pi*Tx^2/area - 1.
  const double ov670 = overlap_fraction_at(s670, peak670, 670.0 * 670.0);
  const double ov1000 =
      overlap_fraction_at(s1000, peak1000, 1000.0 * 1000.0);
  std::cout << "Overlap fraction Aov/A at the peak: "
            << util::Table::fmt(ov670, 2) << " (670^2) vs "
            << util::Table::fmt(ov1000, 2)
            << " (1000^2) — scale-invariant per the paper's model.\n";

  // Total churn comparison at a mid range: sparser field -> more changes.
  const auto mean_at = [](const Series& s, double x) {
    for (const auto& p : s) {
      if (p.x == x) {
        return cs_of(p, "lowest_id");
      }
    }
    return 0.0;
  };
  const bool sparser_churns_more =
      mean_at(s1000, 150.0) > mean_at(s670, 150.0);
  std::cout << "Sparser field churns more at Tx=150: "
            << (sparser_churns_more ? "yes" : "NO") << " (paper: yes).\n";
  std::cout << "MOBIC crossover (first win beyond 50 m): "
            << crossover_x(s670, 50.0) << " m on 670^2 vs "
            << crossover_x(s1000, 50.0) << " m on 1000^2.\n";

  const bool peak_shifted_right = peak1000 > peak670;
  if (!peak_shifted_right || !sparser_churns_more) {
    std::cerr << "FIG5 SHAPE CHECK FAILED\n";
    return 1;
  }
  std::cout << "Shape check: OK\n";
  return 0;
}
