// The CI-gated perf baseline: times the simulator-core hot paths on
// representative workloads and emits BENCH_core.json for the regression
// comparator (scripts/check_bench.py).
//
//   perf_suite [--quick] [--out PATH] [--reps N]
//
// Workloads:
//   event_queue_churn  — raw sim::EventQueue push/cancel/pop churn shaped
//                        like Hello traffic (periodic reschedule + timeout
//                        cancellations)
//   fig3_full_run      — one full paper Figure-3 scenario run (50 nodes,
//                        Tx = 250 m, MOBIC), observability compiled in but
//                        disabled — the uninstrumented reference
//   fig3_obs_run       — the identical run with the metrics registry live
//                        (tracing off); check_bench.py gates the pair's
//                        throughput ratio, keeping counter overhead bounded
//   resilience_slice   — one cell of the PR-2 resilience grid (crashes +
//                        loss bursts, both algorithms; metrics live, so the
//                        fault/convergence hook path is in the gate too)
//   fig3_cached_rerun  — the Figure-3 run executed cold into a fresh result
//                        cache, then re-run warm from it; reports the warm
//                        wall time and the cold/warm speedup ratio, which
//                        check_bench.py gates at >= 10x
//   fig_scale_nN[_sharded] — constant-density scale-up of the Figure-3
//                        scenario at N ∈ {50, 1k, 10k} nodes (field side
//                        grows as 670·sqrt(N/50)), run serially and with
//                        --sim-jobs auto. Each row records its "sim_jobs";
//                        check_bench.py gates the sharded/serial
//                        events_per_sec ratio — an intra-run quantity, so
//                        these rows are deliberately absent from the
//                        checked-in baseline
//
// Each workload reports wall-clock (best of --reps), throughput
// (events/sec and simulated-sec/sec where applicable), heap allocation
// counts from the counting-allocator hook (util/alloc_hook.h — this binary
// links the hook, so counts are real), and process peak RSS.
#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "net/shard_planner.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "sim/simulator.h"
#include "util/alloc_hook.h"
#include "util/assert.h"

namespace {

using namespace manet;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

long peak_rss_kb() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
}

struct WorkloadResult {
  std::string name;
  double wall_ms = 0.0;          // best rep
  std::uint64_t events = 0;      // events executed (or queue ops)
  double sim_s = 0.0;            // simulated seconds covered (0 for micro)
  std::uint64_t allocs = 0;      // heap allocations during the best rep
  long rss_after_kb = 0;
  double cold_warm_ratio = 0.0;  // fig3_cached_rerun only: cold/warm wall
  int sim_jobs = 0;              // fig_scale only: intra-run worker count

  double events_per_sec() const {
    return wall_ms <= 0.0 ? 0.0
                          : static_cast<double>(events) / (wall_ms / 1e3);
  }
  double sim_s_per_s() const {
    return wall_ms <= 0.0 ? 0.0 : sim_s / (wall_ms / 1e3);
  }
  double allocs_per_event() const {
    return events == 0 ? 0.0
                       : static_cast<double>(allocs) /
                             static_cast<double>(events);
  }
};

// Runs `body` `reps` times; keeps the fastest rep's wall/allocs (allocation
// counts are deterministic per rep, so "fastest" does not cherry-pick them).
template <typename Body>
WorkloadResult run_workload(const std::string& name, int reps, Body body) {
  WorkloadResult best;
  best.name = name;
  for (int rep = 0; rep < reps; ++rep) {
    const util::AllocWindow window;
    const double t0 = now_ms();
    const auto [events, sim_s] = body();
    const double wall = now_ms() - t0;
    if (rep == 0 || wall < best.wall_ms) {
      best.wall_ms = wall;
      best.events = events;
      best.sim_s = sim_s;
      best.allocs = window.allocs();
    }
  }
  best.rss_after_kb = peak_rss_kb();
  return best;
}

// Hello-shaped queue churn: every "node" keeps one periodic beacon event and
// one timeout event that is cancelled and re-armed on every beacon —
// the EventQueue op mix (push : cancel+push : pop) of the real simulator.
std::pair<std::uint64_t, double> event_queue_churn(std::uint64_t target_ops) {
  sim::Simulator sim;
  constexpr int kNodes = 50;
  struct Beat {
    sim::EventId timeout = sim::kNoEvent;
    double period = 0.0;
  };
  std::vector<Beat> beats(kNodes);
  std::uint64_t ops = 0;
  // Self-rescheduling beacons with timeout re-arm; stop() when done.
  struct Driver {
    sim::Simulator& sim;
    std::vector<Beat>& beats;
    std::uint64_t& ops;
    std::uint64_t target;
    void beacon(int i) {
      Beat& b = beats[static_cast<std::size_t>(i)];
      if (b.timeout != sim::kNoEvent) {
        sim.cancel(b.timeout);
        ++ops;
      }
      b.timeout = sim.schedule_in(3.0, [] {});
      sim.schedule_in(b.period, [this, i] { beacon(i); });
      ops += 2;
      if (ops >= target) {
        sim.stop();
      }
    }
  } driver{sim, beats, ops, target_ops};
  for (int i = 0; i < kNodes; ++i) {
    beats[static_cast<std::size_t>(i)].period =
        2.0 + 0.001 * static_cast<double>(i);
    sim.schedule_at(0.01 * static_cast<double>(i),
                    [&driver, i] { driver.beacon(i); });
  }
  sim.run();
  return {ops, 0.0};
}

std::pair<std::uint64_t, double> fig3_full_run(double sim_time,
                                               bool obs_metrics) {
  scenario::Scenario s = bench::paper_scenario();
  s.sim_time = sim_time;
  s.obs.metrics = obs_metrics;
  const scenario::RunResult r =
      scenario::run_scenario(s, scenario::factory_by_name("mobic"));
  MANET_CHECK(r.beacons_sent > 0, "empty fig3 run");
  MANET_CHECK(r.metrics.empty() != obs_metrics, "obs config ignored");
  return {r.events_executed, sim_time};
}

std::pair<std::uint64_t, double> resilience_slice(double sim_time) {
  scenario::Scenario s = bench::paper_scenario();
  s.sim_time = sim_time;
  s.faults.begin = 30.0;
  s.faults.end = sim_time - 30.0;
  s.faults.crash_rate = 0.03;
  s.faults.mean_downtime = 30.0;
  s.faults.loss_burst_rate = 0.02;
  s.faults.loss_burst_duration = 8.0;
  s.faults.loss_burst_probability = 0.9;
  std::uint64_t events = 0;
  double sim_s = 0.0;
  for (const char* alg : {"mobic", "lowest_id"}) {
    const scenario::RunResult r =
        scenario::run_scenario(s, scenario::factory_by_name(alg));
    events += r.events_executed;
    sim_s += sim_time;
  }
  return {events, sim_s};
}

// Constant-density scale-up of the Figure-3 scenario: the field side grows
// as 670 * sqrt(n / 50) so mean degree stays at the paper's density while
// the node count (and the per-event broadcast-scan cost) scales. `sim_jobs`
// selects the intra-run sharding width; results are bit-identical across
// widths, so the serial/sharded pair isolates pure scheduling overhead or
// speedup.
std::pair<std::uint64_t, double> fig_scale_run(std::size_t n,
                                               double sim_time,
                                               int sim_jobs) {
  scenario::Scenario s = bench::paper_scenario();
  s.n_nodes = n;
  const double side =
      670.0 * std::sqrt(static_cast<double>(n) / 50.0);
  s.fleet.field = geom::Rect(side, side);
  s.sim_time = sim_time;
  s.warmup = std::min(s.warmup, sim_time / 2.0);
  s.sim_jobs = sim_jobs;
  const scenario::RunResult r =
      scenario::run_scenario(s, scenario::factory_by_name("mobic"));
  MANET_CHECK(r.beacons_sent > 0, "empty fig_scale run");
  return {r.events_executed, sim_time};
}

// Cold run into a fresh cache, then warm re-runs served entirely from it.
// The row's wall_ms is the best warm time; events/sim_s stay 0 so the
// baseline-relative throughput gates skip it — the gated quantity is the
// intra-run cold/warm ratio, which is machine-independent.
WorkloadResult fig3_cached_rerun(double sim_time, int reps) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("manet_perf_cache_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  scenario::Scenario s = bench::paper_scenario();
  s.sim_time = sim_time;
  scenario::RunnerOptions options;
  options.jobs = 1;
  options.cache_dir = dir.string();
  const scenario::OptionsFactory factory =
      scenario::factory_by_name("mobic");

  const double c0 = now_ms();
  const auto cold =
      scenario::Runner(options).replications(s, factory, 1, "mobic");
  const double cold_ms = now_ms() - c0;

  WorkloadResult row;
  row.name = "fig3_cached_rerun";
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = now_ms();
    const auto warm =
        scenario::Runner(options).replications(s, factory, 1, "mobic");
    const double wall = now_ms() - t0;
    MANET_CHECK(warm == cold, "cached rerun diverged from the cold run");
    if (rep == 0 || wall < row.wall_ms) {
      row.wall_ms = wall;
    }
  }
  row.cold_warm_ratio = cold_ms / std::max(row.wall_ms, 1e-6);
  row.rss_after_kb = peak_rss_kb();
  fs::remove_all(dir);
  return row;
}

void write_json(const std::string& path, bool quick,
                const std::vector<WorkloadResult>& results) {
  std::ofstream out(path, std::ios::trunc);
  MANET_CHECK(out.is_open(), "cannot open " << path);
  out << "{\n";
  out << "  \"schema\": \"manet-perf-core/1\",\n";
  out << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
  out << "  \"alloc_hook\": "
      << (util::alloc_hook_active() ? "true" : "false") << ",\n";
  out << "  \"peak_rss_kb\": " << peak_rss_kb() << ",\n";
  out << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& w = results[i];
    out << "    {\"name\": \"" << w.name << "\""
        << ", \"wall_ms\": " << w.wall_ms
        << ", \"events\": " << w.events
        << ", \"events_per_sec\": " << w.events_per_sec()
        << ", \"sim_s\": " << w.sim_s
        << ", \"sim_s_per_s\": " << w.sim_s_per_s()
        << ", \"allocs\": " << w.allocs
        << ", \"allocs_per_event\": " << w.allocs_per_event()
        << ", \"rss_after_kb\": " << w.rss_after_kb;
    if (w.cold_warm_ratio > 0.0) {
      out << ", \"cold_warm_ratio\": " << w.cold_warm_ratio;
    }
    if (w.sim_jobs > 0) {
      out << ", \"sim_jobs\": " << w.sim_jobs;
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli(
      argc, argv,
      "CI-gated perf baseline: times the simulator-core hot paths and "
      "emits BENCH_core.json\nfor scripts/check_bench.py.",
      {{"--quick", "smaller workloads, 2 reps (the CI configuration)"},
       {"--out PATH", "output JSON [BENCH_core.json]"},
       {"--reps N", "best-of repetitions [3; 2 with --quick]"}},
      /*standard=*/false);
  const bool quick = cli.flags().get_bool("quick", false);
  const std::string out_path =
      cli.flags().get_string("out", "BENCH_core.json");
  const int reps = cli.flags().get_int("reps", quick ? 2 : 3);
  cli.finish();
  MANET_CHECK(reps > 0, "reps=" << reps);

  const std::uint64_t churn_ops = quick ? 400'000 : 4'000'000;
  const double fig3_time = quick ? 120.0 : 900.0;
  const double slice_time = quick ? 120.0 : 300.0;

  std::vector<WorkloadResult> results;
  results.push_back(run_workload("event_queue_churn", reps, [&] {
    return event_queue_churn(churn_ops);
  }));
  results.push_back(run_workload("fig3_full_run", reps, [&] {
    return fig3_full_run(fig3_time, /*obs_metrics=*/false);
  }));
  results.push_back(run_workload("fig3_obs_run", reps, [&] {
    return fig3_full_run(fig3_time, /*obs_metrics=*/true);
  }));
  results.push_back(run_workload("resilience_slice", reps, [&] {
    return resilience_slice(slice_time);
  }));
  results.push_back(fig3_cached_rerun(fig3_time, reps));

  // Scale family: serial vs sharded at constant density. One rep each —
  // N = 10k is heavy, and the gated quantity (the intra-run sharded/serial
  // throughput ratio) is robust to single-rep noise.
  const int jmax = net::ShardPlanner::resolve_sim_jobs(0);
  struct ScalePoint {
    std::size_t n;
    double sim_time;
  };
  const std::vector<ScalePoint> scale =
      quick ? std::vector<ScalePoint>{{50, 30.0}, {1'000, 10.0},
                                      {10'000, 3.0}}
            : std::vector<ScalePoint>{{50, 120.0}, {1'000, 30.0},
                                      {10'000, 10.0}};
  for (const ScalePoint& p : scale) {
    const std::string tag = "fig_scale_n" + std::to_string(p.n);
    WorkloadResult serial = run_workload(tag, 1, [&] {
      return fig_scale_run(p.n, p.sim_time, 1);
    });
    serial.sim_jobs = 1;
    results.push_back(serial);
    WorkloadResult sharded = run_workload(tag + "_sharded", 1, [&] {
      return fig_scale_run(p.n, p.sim_time, jmax);
    });
    sharded.sim_jobs = jmax;
    results.push_back(sharded);
  }

  for (const WorkloadResult& w : results) {
    std::cout << w.name << ": " << w.wall_ms << " ms, " << w.events
              << " events (" << w.events_per_sec() << " ev/s";
    if (w.sim_s > 0.0) {
      std::cout << ", " << w.sim_s_per_s() << " sim-s/s";
    }
    std::cout << "), " << w.allocs << " allocs ("
              << w.allocs_per_event() << " per event)\n";
  }
  write_json(out_path, quick, results);
  std::cout << "wrote " << out_path << " (peak RSS " << peak_rss_kb()
            << " KiB)\n";
  return 0;
}
