#include "bench_common.h"

#include <cstdlib>
#include <iostream>

namespace manet::bench {

namespace {

constexpr const char* kStandardHelp =
    "  --seeds N           replications per (point, algorithm) [5]\n"
    "  --time S            simulated seconds per run [900]\n"
    "  --fast              CI preset: 3 seeds, 300 s\n"
    "  --csv PATH          export the result table as CSV\n"
    "  --jobs N            parallel in-process runs (0 = auto: $MANET_JOBS,\n"
    "                      else hardware); output is byte-identical for\n"
    "                      every value\n"
    "  --sim-jobs N        intra-run worker threads for the sharded\n"
    "                      broadcast pipeline (1 = serial, 0 = auto:\n"
    "                      $MANET_SIM_JOBS, else hardware); results are\n"
    "                      bit-identical for every value\n"
    "  --progress          live progress line on stderr\n"
    "  --run-log PATH      JSONL run log, one line per finished run\n"
    "                      (completion order)\n"
    "  --metrics-out PATH  per-run obs::Snapshot JSONL in canonical order\n"
    "                      (byte-identical for every --jobs value)\n"
    "  --trace-out PATH    Chrome-trace JSON per run; include \"{tag}\" or\n"
    "                      \"{seed}\" so concurrent runs write distinct\n"
    "                      files\n"
    "  --trace-level L     off | spans | full (default spans when\n"
    "                      --trace-out is set)\n"
    "\n"
    "sweep-farm mode:\n"
    "  --cache-dir DIR     content-addressed result cache: present cells\n"
    "                      are served without simulating, computed cells\n"
    "                      are stored; outputs stay byte-identical\n"
    "  --resume            with --cache-dir: byte-verify a sample of the\n"
    "                      cache hits against recomputation\n"
    "  --resume-verify N   hits to verify (-1 auto = 1/16 of hits,\n"
    "                      0 = none)\n"
    "  --workers N         run uncached cells on N `manetsim --worker`\n"
    "                      subprocesses instead of in-process threads\n"
    "  --worker-bin PATH   worker binary ($MANET_WORKER_BIN or a manetsim\n"
    "                      next to this executable when empty)\n";

}  // namespace

void BenchConfig::apply_obs(scenario::Scenario& s) const {
  s.obs.trace_path = trace_out;
  s.obs.trace = trace_level;
  s.sim_jobs = sim_jobs;
}

scenario::RunnerOptions BenchConfig::runner_options() const {
  scenario::RunnerOptions options;
  options.jobs = jobs;
  options.progress = progress ? &std::cerr : nullptr;
  options.run_log_path = run_log_path;
  options.metrics_log_path = metrics_out;
  options.cache_dir = cache_dir;
  options.resume = resume;
  options.resume_verify = resume_verify;
  options.workers = workers;
  options.worker_bin = worker_bin;
  return options;
}

scenario::Runner BenchConfig::runner() const {
  return scenario::Runner(runner_options());
}

Cli::Cli(int argc, const char* const* argv, std::string synopsis,
         std::vector<std::pair<std::string, std::string>> extra_help,
         bool standard)
    : flags_(argc, argv) {
  if (flags_.get_bool("help", false)) {
    std::cout << "usage: " << flags_.program() << " [options]\n\n"
              << synopsis << "\n\noptions:\n  --help              this page\n";
    for (const auto& [flag, text] : extra_help) {
      std::cout << "  " << flag;
      if (flag.size() < 18) {
        std::cout << std::string(18 - flag.size(), ' ');
      } else {
        std::cout << "\n                    ";
      }
      std::cout << "  " << text << "\n";
    }
    if (standard) {
      std::cout << kStandardHelp;
    }
    std::exit(0);
  }
  if (!standard) {
    return;
  }
  const bool fast = flags_.get_bool("fast", false);
  config_.seeds = flags_.get_int("seeds", fast ? 3 : 5);
  config_.sim_time = flags_.get_double("time", fast ? 300.0 : 900.0);
  config_.csv_path = flags_.get_string("csv", "");
  config_.jobs = flags_.get_int("jobs", 0);
  config_.sim_jobs = flags_.get_int("sim-jobs", 1);
  config_.progress = flags_.get_bool("progress", false);
  config_.run_log_path = flags_.get_string("run-log", "");
  config_.metrics_out = flags_.get_string("metrics-out", "");
  config_.trace_out = flags_.get_string("trace-out", "");
  if (flags_.has("trace-level")) {
    config_.trace_level =
        obs::parse_trace_level(flags_.get_string("trace-level", "spans"));
  }
  config_.cache_dir = flags_.get_string("cache-dir", "");
  config_.resume = flags_.get_bool("resume", false);
  config_.resume_verify = flags_.get_int("resume-verify", -1);
  config_.workers = flags_.get_int("workers", 0);
  config_.worker_bin = flags_.get_string("worker-bin", "");
}

}  // namespace manet::bench
