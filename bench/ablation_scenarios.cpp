// Ablation A6 — the paper's §5 prediction: "the mobility metric will yield
// better results when mapped to specific scenarios where the relative
// mobility between nodes does not differ significantly. Examples include
// cars traveling on a highway or attendees in a conference hall."
//
// Runs MOBIC vs Lowest-ID under:
//   * random_waypoint — the paper's baseline motion (individual, unstructured)
//   * rpgm            — conference hall: groups moving together
//   * highway         — convoys in lanes, opposite directions crossing
//   * gauss_markov    — smooth individual motion (control)
//
// The categorical scenario axis maps onto the sweep's x as an index.
//
//   ablation_scenarios [--seeds N] [--time S] [--csv PATH] [--fast]
//                      [--jobs N] [--progress] [--run-log PATH]
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace manet;

  bench::Cli cli(argc, argv, "Ablation A6: MOBIC vs Lowest-ID across structured-mobility scenarios.");
  const auto cfg = cli.config();
  cli.finish();

  std::cout << "=== Ablation A6: specialized scenarios (§5), N=50, Tx 150 m, "
            << cfg.sim_time << " s, " << cfg.seeds << " seeds ===\n\n";

  const std::vector<mobility::ModelKind> kinds = {
      mobility::ModelKind::kRandomWaypoint, mobility::ModelKind::kRpgm,
      mobility::ModelKind::kHighway, mobility::ModelKind::kGaussMarkov};

  scenario::SweepSpec spec;
  spec.base = bench::paper_scenario();
  spec.base.sim_time = cfg.sim_time;
  cfg.apply_obs(spec.base);
  spec.base.tx_range = 150.0;
  spec.xs = {0.0, 1.0, 2.0, 3.0};  // index into `kinds`
  spec.configure = [&kinds](scenario::Scenario& s, double x) {
    const auto kind = kinds.at(static_cast<std::size_t>(x));
    s.fleet.kind = kind;
    switch (kind) {
      case mobility::ModelKind::kRpgm:
        // Conference hall: 5 groups of 10, walking-pace groups, tight
        // offsets.
        s.fleet.max_speed = 2.0;
        s.fleet.min_speed = 0.3;
        s.fleet.rpgm_group_size = 10;
        s.fleet.rpgm_offset_radius = 40.0;
        s.fleet.rpgm_offset_speed = 0.8;
        break;
      case mobility::ModelKind::kHighway:
        s.fleet.highway.length = 2000.0;
        s.fleet.highway.lanes_per_direction = 2;
        s.fleet.highway.mean_speed = 25.0;
        s.fleet.highway.speed_stddev = 3.0;
        break;
      case mobility::ModelKind::kGaussMarkov:
        s.fleet.max_speed = 15.0;  // mean speed for GM
        break;
      default:
        break;
    }
  };
  spec.algorithms = scenario::paper_algorithms();
  spec.fields = {{"cs", scenario::field_ch_changes},
                 {"clusters", scenario::field_avg_clusters}};
  spec.replications = cfg.seeds;

  const auto result = cfg.runner().run(spec);

  util::Table table({"scenario", "algorithm", "CS", "+-", "avg clusters"});
  std::optional<util::CsvWriter> csv;
  if (!cfg.csv_path.empty()) {
    csv.emplace(cfg.csv_path);
    csv->row({"scenario", "algorithm", "cs", "ci", "clusters"});
  }

  struct Row {
    mobility::ModelKind kind;
    double gain = 0.0;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const auto& point = result.points[i];
    const auto kind = kinds[i];
    double cs_lid = 0.0, cs_mobic = 0.0;
    for (const auto& alg : spec.algorithms) {
      const auto& cell = point.algorithms.at(alg.name);
      const auto& cs = cell.values.at("cs");
      const auto& clusters = cell.values.at("clusters");
      (alg.name == "mobic" ? cs_mobic : cs_lid) = cs.mean;
      table.add(std::string(mobility::model_kind_name(kind)), alg.name,
                util::Table::fmt(cs.mean, 1),
                util::Table::fmt(cs.half_width, 1),
                util::Table::fmt(clusters.mean, 1));
      if (csv) {
        csv->row_values(std::string(mobility::model_kind_name(kind)),
                        alg.name, cs.mean, cs.half_width, clusters.mean);
      }
    }
    rows.push_back(
        {kind, cs_lid > 0.0 ? (cs_lid - cs_mobic) / cs_lid * 100.0 : 0.0});
  }
  table.print(std::cout);

  std::cout << "\nMOBIC gain over Lowest-ID by scenario:\n";
  for (const auto& r : rows) {
    std::cout << "  " << mobility::model_kind_name(r.kind) << ": "
              << util::Table::fmt(r.gain, 1) << "%\n";
  }
  std::cout << "(§5 predicts structured-mobility scenarios — rpgm, highway — "
               "benefit at least as much as random waypoint.)\n";
  return 0;
}
