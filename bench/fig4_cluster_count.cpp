// Figure 4: average number of clusters vs transmission range (670x670 m).
//
// Paper shape: strictly decreasing in Tx (~35 clusters at Tx 50, ~20 at
// Tx 100, flattening past 125 m as clusters overlap), with Lowest-ID and
// MOBIC nearly indistinguishable — both are local weight-based schemes over
// the same motion.
//
//   fig4_cluster_count [--seeds N] [--time S] [--csv PATH] [--fast]
//                      [--jobs N] [--progress] [--run-log PATH]
#include <cmath>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace manet;

  bench::Cli cli(argc, argv, "Figure 4: average cluster count vs transmission range, 670x670 m field.");
  const auto cfg = cli.config();
  cli.finish();

  scenario::SweepSpec spec;
  spec.base = bench::paper_scenario();
  spec.base.sim_time = cfg.sim_time;
  cfg.apply_obs(spec.base);
  spec.xs = bench::default_tx_sweep();
  spec.configure = [](scenario::Scenario& s, double tx) { s.tx_range = tx; };
  spec.algorithms = scenario::paper_algorithms();
  spec.fields = {{"clusters", scenario::field_avg_clusters}};
  spec.replications = cfg.seeds;

  std::cout << "=== Figure 4: number of clusters vs Tx (670x670 m, "
            << "MaxSpeed 20 m/s, PT 0, " << cfg.sim_time << " s, "
            << cfg.seeds << " seeds) ===\n\n";

  const auto series = cfg.runner().run(spec).series("clusters");

  bench::print_comparison(std::cout, "Tx (m)", series, "lowest_id", "mobic",
                          "time-average number of clusters", cfg.csv_path);

  // Shape checks: monotone decrease (within one cluster of slack for noise)
  // and near-identical algorithms (paper §4.2 observation 2).
  bool monotone = true;
  double worst_alg_gap = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double lid = series[i].values.at("lowest_id").mean;
    const double mob = series[i].values.at("mobic").mean;
    worst_alg_gap =
        std::max(worst_alg_gap, std::abs(lid - mob) / std::max(lid, 1.0));
    if (i > 0 && lid > series[i - 1].values.at("lowest_id").mean + 1.0) {
      monotone = false;
    }
  }
  std::cout << "\nDecreasing in Tx: " << (monotone ? "yes" : "NO")
            << "; max relative gap between algorithms: "
            << util::Table::fmt(worst_alg_gap * 100.0, 1)
            << "% (paper: 'little difference').\n";
  if (!monotone || worst_alg_gap > 0.25) {
    std::cerr << "FIG4 SHAPE CHECK FAILED\n";
    return 1;
  }
  std::cout << "Shape check: OK\n";
  return 0;
}
