// Ablation A11: battery drain as a clustering stressor.
//
// Enables the node energy model (seed-jittered ~60 J batteries, idle draw
// plus per-Hello costs) and compares cluster stability (CS), clusterhead
// tenure fairness (Jain's index over per-node head tenure), and battery
// deaths across Lowest-ID, MOBIC and the two composite-weight protocols
// (CCI, SD_DWCA) over the Figure-3 transmission-range axis. SD_DWCA's
// energy term reads residual charge, so it should spread the clusterhead
// role across nodes (higher fairness) instead of draining one winner.
//
// Rows are byte-identical for every --jobs / --sim-jobs value: energy is
// drained on the serial commit thread and settled deterministically.
//
//   ablation_energy [--seeds N] [--time S] [--csv PATH] [--fast]
//                   [--jobs N] [--progress] [--run-log PATH]
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace manet;

  bench::Cli cli(argc, argv,
                 "Ablation A11: cluster stability and clusterhead-tenure "
                 "fairness under battery drain.");
  const auto cfg = cli.config();
  cli.finish();

  const std::vector<double> ranges = {100.0, 250.0};

  std::cout << "=== Ablation A11: battery drain (670x670 m, MaxSpeed 20, "
            << "PT 0, " << cfg.sim_time << " s, " << cfg.seeds
            << " seeds) ===\n\n";

  scenario::SweepSpec spec;
  spec.base = bench::paper_scenario();
  spec.base.sim_time = cfg.sim_time;
  cfg.apply_obs(spec.base);
  // Batteries sized so the weakest nodes die mid-run: a ~60 J mean with 50%
  // jitter puts the low tail near 30 J against ~0.01 W idle (9 J over the
  // paper's 900 s) plus per-Hello costs that scale with density.
  spec.base.energy.enabled = true;
  spec.base.energy.capacity_j = 60.0;
  spec.base.energy.capacity_jitter = 0.5;
  spec.base.energy.idle_drain_w = 0.01;
  spec.base.energy.hello_tx_cost_j = 0.02;
  spec.base.energy.hello_rx_cost_j = 0.005;
  spec.xs = ranges;
  spec.configure = [](scenario::Scenario& s, double tx) { s.tx_range = tx; };
  spec.fields = {{"cs", scenario::field_ch_changes},
                 {"fairness", scenario::field_head_tenure_fairness},
                 {"deaths", scenario::field_battery_deaths}};
  spec.replications = cfg.seeds;
  spec.algorithms = {{"lowest_id", scenario::factory_by_name("lowest_id")},
                     {"mobic", scenario::factory_by_name("mobic")},
                     {"cci", scenario::factory_by_name("cci")},
                     {"sd_dwca", scenario::factory_by_name("sd_dwca")}};

  const auto result = cfg.runner().run(spec);

  util::Table table(
      {"Tx (m)", "algorithm", "CS", "+-", "fairness", "+-", "deaths"});
  std::optional<util::CsvWriter> csv;
  if (!cfg.csv_path.empty()) {
    csv.emplace(cfg.csv_path);
    csv->row({"tx", "algorithm", "cs", "cs_ci", "fairness", "fairness_ci",
              "deaths"});
  }

  for (const auto& point : result.points) {
    for (const auto& alg : spec.algorithms) {
      const auto& cell = point.algorithms.at(alg.name);
      const auto& cs = cell.values.at("cs");
      const auto& fair = cell.values.at("fairness");
      const auto& deaths = cell.values.at("deaths");
      table.add(util::Table::fmt(point.x, 0), alg.name,
                util::Table::fmt(cs.mean, 1),
                util::Table::fmt(cs.half_width, 1),
                util::Table::fmt(fair.mean, 3),
                util::Table::fmt(fair.half_width, 3),
                util::Table::fmt(deaths.mean, 1));
      if (csv) {
        csv->row_values(point.x, alg.name, cs.mean, cs.half_width,
                        fair.mean, fair.half_width, deaths.mean);
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nCS = clusterhead changes per run; fairness = Jain's index "
               "of per-node head tenure\n(1 = the role rotates evenly, 1/N "
               "= one node serves alone); deaths = batteries\nthat hit zero "
               "during the run (each lands as a kBatteryDepleted fault).\n";
  return 0;
}
