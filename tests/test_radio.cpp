// Propagation models, ns-2 WaveLAN constants, threshold calibration.
#include <cmath>

#include <gtest/gtest.h>

#include "radio/medium.h"
#include "radio/propagation.h"
#include "radio/radio_params.h"
#include "util/assert.h"
#include "util/rng.h"
#include "util/stats.h"

namespace manet::radio {
namespace {

TEST(RadioParamsTest, WaveLanDefaults) {
  const RadioParams r;
  EXPECT_NEAR(r.tx_power_w, 0.28183815, 1e-9);
  EXPECT_NEAR(r.wavelength_m(), 0.328, 0.001);  // 914 MHz
}

TEST(DbHelpersTest, RoundTrips) {
  EXPECT_NEAR(watts_to_dbm(1.0), 30.0, 1e-9);
  EXPECT_NEAR(dbm_to_watts(0.0), 1e-3, 1e-12);
  EXPECT_NEAR(dbm_to_watts(watts_to_dbm(0.123)), 0.123, 1e-12);
  EXPECT_NEAR(ratio_to_db(100.0), 20.0, 1e-9);
  EXPECT_NEAR(db_to_ratio(ratio_to_db(42.0)), 42.0, 1e-9);
}

TEST(FreeSpaceTest, InverseSquareLaw) {
  const FreeSpace fs;
  const RadioParams r;
  const double p100 = fs.rx_power_w(r, 100.0, nullptr);
  const double p200 = fs.rx_power_w(r, 200.0, nullptr);
  EXPECT_NEAR(p100 / p200, 4.0, 1e-9);  // paper's Friis premise
}

TEST(FreeSpaceTest, ZeroDistanceReturnsTxPower) {
  const FreeSpace fs;
  const RadioParams r;
  EXPECT_DOUBLE_EQ(fs.rx_power_w(r, 0.0, nullptr), r.tx_power_w);
}

TEST(FreeSpaceTest, MatchesClosedForm) {
  const FreeSpace fs;
  const RadioParams r;
  const double lambda = r.wavelength_m();
  const double d = 250.0;
  const double expected =
      r.tx_power_w * lambda * lambda /
      (16.0 * M_PI * M_PI * d * d);
  EXPECT_NEAR(fs.rx_power_w(r, d, nullptr), expected, expected * 1e-12);
}

TEST(FreeSpaceTest, MaxRangeInvertsExactly) {
  const FreeSpace fs;
  const RadioParams r;
  const double thresh = fs.rx_power_w(r, 175.0, nullptr);
  EXPECT_NEAR(fs.max_range_m(r, thresh), 175.0, 1e-6);
}

TEST(TwoRayTest, EqualsFriisBelowCrossover) {
  const TwoRayGround tr;
  const FreeSpace fs;
  const RadioParams r;
  const double dc = TwoRayGround::crossover_distance_m(r);
  EXPECT_GT(dc, 50.0);  // ~86 m for 1.5 m antennas at 914 MHz
  EXPECT_LT(dc, 120.0);
  const double d = dc * 0.5;
  EXPECT_DOUBLE_EQ(tr.rx_power_w(r, d, nullptr),
                   fs.rx_power_w(r, d, nullptr));
}

TEST(TwoRayTest, FourthPowerBeyondCrossover) {
  const TwoRayGround tr;
  const RadioParams r;
  const double dc = TwoRayGround::crossover_distance_m(r);
  const double p1 = tr.rx_power_w(r, dc * 2.0, nullptr);
  const double p2 = tr.rx_power_w(r, dc * 4.0, nullptr);
  EXPECT_NEAR(p1 / p2, 16.0, 1e-9);
}

TEST(TwoRayTest, MaxRangeInverts) {
  const TwoRayGround tr;
  const RadioParams r;
  for (const double d : {30.0, 250.0}) {
    const double thresh = tr.rx_power_w(r, d, nullptr);
    EXPECT_NEAR(tr.max_range_m(r, thresh), d, 1e-6);
  }
}

TEST(TwoRayTest, ContinuousAtCrossover) {
  const TwoRayGround tr;
  const RadioParams r;
  const double dc = TwoRayGround::crossover_distance_m(r);
  const double before = tr.rx_power_w(r, dc * 0.999, nullptr);
  const double after = tr.rx_power_w(r, dc * 1.001, nullptr);
  EXPECT_NEAR(before / after, 1.0, 0.02);
}

TEST(LogDistanceTest, ExponentGovernsDecay) {
  const LogDistance ld(3.0, 1.0);
  const RadioParams r;
  const double p10 = ld.rx_power_w(r, 10.0, nullptr);
  const double p100 = ld.rx_power_w(r, 100.0, nullptr);
  EXPECT_NEAR(ratio_to_db(p10 / p100), 30.0, 1e-9);  // 10 * n dB per decade
}

TEST(LogDistanceTest, MaxRangeInverts) {
  const LogDistance ld(2.7, 1.0);
  const RadioParams r;
  const double thresh = ld.rx_power_w(r, 180.0, nullptr);
  EXPECT_NEAR(ld.max_range_m(r, thresh), 180.0, 1e-6);
}

TEST(LogDistanceTest, RejectsBadParams) {
  EXPECT_THROW(LogDistance(0.0, 1.0), util::CheckError);
  EXPECT_THROW(LogDistance(2.0, 0.0), util::CheckError);
}

TEST(ShadowingTest, DeterministicWithoutRng) {
  const LogNormalShadowing sh(2.7, 6.0);
  const LogDistance ld(2.7);
  const RadioParams r;
  EXPECT_DOUBLE_EQ(sh.rx_power_w(r, 120.0, nullptr),
                   ld.rx_power_w(r, 120.0, nullptr));
}

TEST(ShadowingTest, FadingStatistics) {
  const LogNormalShadowing sh(2.7, 6.0);
  const RadioParams r;
  util::Rng rng(5);
  const double median = sh.rx_power_w(r, 120.0, nullptr);
  util::RunningStats db_err;
  for (int i = 0; i < 20000; ++i) {
    const double p = sh.rx_power_w(r, 120.0, &rng);
    db_err.add(ratio_to_db(p / median));
  }
  EXPECT_NEAR(db_err.mean(), 0.0, 0.2);
  EXPECT_NEAR(db_err.stddev_population(), 6.0, 0.2);
}

TEST(ShadowingTest, SigmaZeroIsDeterministic) {
  const LogNormalShadowing sh(2.7, 0.0);
  EXPECT_FALSE(sh.stochastic());
  util::Rng rng(5);
  const RadioParams r;
  EXPECT_DOUBLE_EQ(sh.rx_power_w(r, 50.0, &rng),
                   sh.rx_power_w(r, 50.0, nullptr));
}

TEST(ShadowingTest, MaxRangeHasHeadroom) {
  const LogNormalShadowing sh(2.7, 6.0);
  const RadioParams r;
  const double thresh = sh.rx_power_w(r, 150.0, nullptr);
  EXPECT_GT(sh.max_range_m(r, thresh), 150.0 * 1.5);
}

TEST(PropagationFactoryTest, KnownNames) {
  EXPECT_EQ(make_propagation("free_space")->name(), "free_space");
  EXPECT_EQ(make_propagation("friis")->name(), "free_space");
  EXPECT_EQ(make_propagation("two_ray")->name(), "two_ray_ground");
  EXPECT_EQ(make_propagation("log_distance", 3.0)->name(), "log_distance");
  EXPECT_EQ(make_propagation("shadowing", 2.7, 4.0)->name(),
            "log_normal_shadowing");
  EXPECT_THROW(make_propagation("quantum"), util::CheckError);
}

TEST(MediumTest, ThresholdCalibratedAtNominalRange) {
  const Medium m = make_paper_medium(250.0);
  EXPECT_DOUBLE_EQ(m.nominal_range_m(), 250.0);
  // The receiver at exactly the nominal range sits exactly at threshold.
  EXPECT_DOUBLE_EQ(m.median_rx_power_w(250.0), m.rx_threshold_w());
  EXPECT_NEAR(m.max_delivery_range_m(), 250.0, 1e-6);
}

TEST(MediumTest, DeliveryIsDiskShapedUnderFreeSpace) {
  const Medium m = make_paper_medium(100.0);
  util::Rng rng(1);
  EXPECT_TRUE(m.try_receive(99.9, rng).delivered);
  EXPECT_TRUE(m.try_receive(100.0, rng).delivered);
  EXPECT_FALSE(m.try_receive(100.1, rng).delivered);
}

TEST(MediumTest, ReceivedPowerDropsWithDistance) {
  const Medium m = make_paper_medium(250.0);
  util::Rng rng(1);
  const double p50 = m.try_receive(50.0, rng).rx_power_w;
  const double p150 = m.try_receive(150.0, rng).rx_power_w;
  EXPECT_GT(p50, p150);
  EXPECT_NEAR(p50 / p150, 9.0, 1e-9);
}

TEST(MediumTest, ShadowingMakesEdgeDeliveryProbabilistic) {
  Medium m(std::make_shared<LogNormalShadowing>(2.7, 6.0), RadioParams{},
           150.0);
  util::Rng rng(7);
  int in = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    in += m.try_receive(150.0, rng).delivered ? 1 : 0;
  }
  // At the median range, about half the receptions clear the threshold.
  EXPECT_NEAR(in / static_cast<double>(n), 0.5, 0.05);
}

TEST(MediumTest, RejectsDegenerateRange) {
  EXPECT_THROW(make_paper_medium(0.0), util::CheckError);
}

TEST(MediumTest, NsTwoRxThreshIsNear250mValue) {
  // ns-2's canonical WaveLAN RXThresh (3.652e-10 W) corresponds to ~250 m
  // under *two-ray ground* with these parameters; cross-check our models.
  Medium m(std::make_shared<TwoRayGround>(), RadioParams{}, 250.0);
  EXPECT_NEAR(m.rx_threshold_w(), 3.652e-10, 3.652e-10 * 0.02);
}

}  // namespace
}  // namespace manet::radio
