// ClusterStats event accounting, the role sampler, and the Theorem-1
// validators.
#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "cluster/stats.h"
#include "cluster/validation.h"
#include "helpers.h"

namespace manet::cluster {
namespace {

TEST(ClusterStatsTest, CountsHeadTransitions) {
  ClusterStats stats(0.0);
  stats.on_role_change(1.0, 7, Role::kUndecided, Role::kHead);
  stats.on_role_change(5.0, 7, Role::kHead, Role::kMember);
  stats.on_role_change(6.0, 8, Role::kUndecided, Role::kMember);
  EXPECT_EQ(stats.head_gains(), 1u);
  EXPECT_EQ(stats.head_losses(), 1u);
  EXPECT_EQ(stats.clusterhead_changes(), 2u);
  EXPECT_EQ(stats.role_changes(), 3u);
}

TEST(ClusterStatsTest, WarmupExcludesInitialElection) {
  ClusterStats stats(10.0);
  stats.on_role_change(2.0, 1, Role::kUndecided, Role::kHead);  // warm-up
  stats.on_role_change(12.0, 1, Role::kHead, Role::kMember);
  EXPECT_EQ(stats.head_gains(), 0u);
  EXPECT_EQ(stats.head_losses(), 1u);
  EXPECT_EQ(stats.clusterhead_changes(), 1u);
}

TEST(ClusterStatsTest, ReignLifetimesSpanWarmup) {
  // Lifetimes are measured from the actual election even if it happened
  // during warm-up.
  ClusterStats stats(10.0);
  stats.on_role_change(2.0, 1, Role::kUndecided, Role::kHead);
  stats.on_role_change(52.0, 1, Role::kHead, Role::kMember);
  EXPECT_EQ(stats.head_lifetimes().count(), 1u);
  EXPECT_DOUBLE_EQ(stats.head_lifetimes().mean(), 50.0);
}

TEST(ClusterStatsTest, FinishClosesOpenReigns) {
  ClusterStats stats(0.0);
  stats.on_role_change(100.0, 3, Role::kUndecided, Role::kHead);
  stats.finish(900.0);
  EXPECT_EQ(stats.head_lifetimes().count(), 1u);
  EXPECT_DOUBLE_EQ(stats.head_lifetimes().mean(), 800.0);
  EXPECT_THROW(stats.finish(900.0), util::CheckError);  // double finish
}

TEST(ClusterStatsTest, ReaffiliationRules) {
  ClusterStats stats(0.0);
  // Member switching clusters: counts.
  stats.on_affiliation_change(1.0, 5, 2, 3);
  // Gaining a first head or losing the last: not a reaffiliation.
  stats.on_affiliation_change(2.0, 5, net::kInvalidNode, 2);
  stats.on_affiliation_change(3.0, 5, 2, net::kInvalidNode);
  // Becoming one's own head: not a reaffiliation.
  stats.on_affiliation_change(4.0, 5, 2, 5);
  stats.on_affiliation_change(5.0, 5, 5, 2);
  EXPECT_EQ(stats.reaffiliations(), 1u);
}

TEST(ClusterSamplerTest, CountsRoles) {
  auto world = test::make_static_world(test::figure1_positions(), 100.0,
                                       lowest_id_lcc_options());
  world->run(12.0);
  ClusterSampler sampler(world->sim, world->const_agents());
  sampler.sample_now();
  EXPECT_EQ(sampler.samples(), 1u);
  EXPECT_DOUBLE_EQ(sampler.num_clusters().mean(), 3.0);
  EXPECT_DOUBLE_EQ(sampler.num_gateways().mean(), 2.0);
  EXPECT_DOUBLE_EQ(sampler.num_undecided().mean(), 0.0);
  // 10 nodes in 3 clusters: sizes sum to 10, so the mean is 10/3.
  EXPECT_NEAR(sampler.cluster_sizes().mean(), 10.0 / 3.0, 1e-12);
}

TEST(ClusterSamplerTest, PeriodicSamplingWindow) {
  auto world = test::make_static_world({{0.0, 0.0}, {10.0, 0.0}}, 100.0,
                                       lowest_id_lcc_options());
  ClusterSampler sampler(world->sim, world->const_agents());
  sampler.start(5.0, 1.0, 10.0);
  world->run(30.0);
  EXPECT_EQ(sampler.samples(), 6u);  // t = 5..10 inclusive
}

TEST(ClusterSamplerTest, RejectsBadSetup) {
  sim::Simulator sim;
  EXPECT_THROW(ClusterSampler(sim, {}), util::CheckError);
  EXPECT_THROW(ClusterSampler(sim, {nullptr}), util::CheckError);
}

TEST(ValidationTest, CleanOnConvergedTopology) {
  auto world = test::make_static_world(test::figure1_positions(), 100.0,
                                       mobic_options());
  world->run(16.0);
  const auto report =
      validate_clusters(*world->network, world->const_agents(), 16.0);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.connected_nodes, 10u);
  EXPECT_NE(report.to_string().find("undecided=0"), std::string::npos);
}

TEST(ValidationTest, DetectsAdjacentHeads) {
  // Freeze the protocol immediately after boot (before any decision):
  // every node is undecided -> the validator reports them.
  auto world = test::make_static_world({{0.0, 0.0}, {50.0, 0.0}}, 100.0,
                                       lowest_id_lcc_options());
  world->run(0.5);  // not even one beacon round
  const auto report =
      validate_clusters(*world->network, world->const_agents(), 0.5);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.undecided, 2u);
}

TEST(ValidationTest, SizeMismatchRejected) {
  auto world = test::make_static_world({{0.0, 0.0}, {50.0, 0.0}}, 100.0,
                                       lowest_id_lcc_options());
  std::vector<const WeightedClusterAgent*> wrong = {world->agents[0]};
  EXPECT_THROW(validate_clusters(*world->network, wrong, 1.0),
               util::CheckError);
}

}  // namespace
}  // namespace manet::cluster
