// Sweep-farm worker protocol (scenario/worker.h): frame transport,
// serve_worker request handling, the subprocess farm against the real
// `manetsim --worker` binary, and Runner --workers byte-identity.
//
// CTest exports MANET_WORKER_BIN=<built manetsim>; tests that need the real
// binary skip when it is absent (e.g. a bare ./test_worker_protocol run).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "scenario/cache.h"
#include "scenario/runner.h"
#include "scenario/worker.h"
#include "util/assert.h"

namespace manet::scenario {
namespace {

Scenario small_scenario() {
  Scenario s;
  s.n_nodes = 16;
  s.fleet.field = geom::Rect(300.0, 300.0);
  s.fleet.max_speed = 8.0;
  s.tx_range = 120.0;
  s.sim_time = 60.0;
  s.warmup = 5.0;
  s.seed = 7;
  return s;
}

const char* worker_bin_from_env() { return std::getenv("MANET_WORKER_BIN"); }

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    close_read();
    close_write();
  }
  int read_fd() const { return fds[0]; }
  int write_fd() const { return fds[1]; }
  void close_read() {
    if (fds[0] >= 0) {
      ::close(fds[0]);
      fds[0] = -1;
    }
  }
  void close_write() {
    if (fds[1] >= 0) {
      ::close(fds[1]);
      fds[1] = -1;
    }
  }
};

TEST(FrameTest, RoundTripsPayloads) {
  Pipe pipe;
  for (const std::string& payload :
       {std::string("hello"), std::string(""),
        std::string("binary\0payload\n", 15)}) {
    ASSERT_TRUE(write_frame(pipe.write_fd(), payload));
    std::string back;
    ASSERT_TRUE(read_frame(pipe.read_fd(), &back));
    EXPECT_EQ(back, payload);
  }
}

TEST(FrameTest, CleanEofAtFrameBoundaryReturnsFalse) {
  Pipe pipe;
  pipe.close_write();
  std::string payload;
  EXPECT_FALSE(read_frame(pipe.read_fd(), &payload));
}

TEST(FrameTest, TornFrameThrows) {
  {
    // EOF inside the length header.
    Pipe pipe;
    const char partial[2] = {0x10, 0x00};
    ASSERT_EQ(::write(pipe.write_fd(), partial, sizeof partial),
              static_cast<ssize_t>(sizeof partial));
    pipe.close_write();
    std::string payload;
    EXPECT_THROW(read_frame(pipe.read_fd(), &payload), util::CheckError);
  }
  {
    // EOF inside the payload.
    Pipe pipe;
    const unsigned char header[4] = {8, 0, 0, 0};
    ASSERT_EQ(::write(pipe.write_fd(), header, sizeof header),
              static_cast<ssize_t>(sizeof header));
    ASSERT_EQ(::write(pipe.write_fd(), "abc", 3), 3);
    pipe.close_write();
    std::string payload;
    EXPECT_THROW(read_frame(pipe.read_fd(), &payload), util::CheckError);
  }
}

// serve_worker driven in-process over pipes: the exact loop the `manetsim
// --worker` subprocess runs, minus the fork.
TEST(ServeWorkerTest, RunsCellsAndReportsErrorsInBand) {
  Pipe to_worker;
  Pipe from_worker;
  std::thread worker([&] {
    EXPECT_EQ(serve_worker(to_worker.read_fd(), from_worker.write_fd()), 0);
    from_worker.close_write();
  });

  const Scenario s = small_scenario();
  const std::string request =
      "run\nmobic\n" + canonical_scenario_text(s);
  ASSERT_TRUE(write_frame(to_worker.write_fd(), request));
  std::string response;
  ASSERT_TRUE(read_frame(from_worker.read_fd(), &response));
  ASSERT_EQ(response.rfind("ok\n", 0), 0u) << response.substr(0, 80);
  const RunResult remote = decode_cell(response.substr(3));
  const RunResult local = run_scenario(s, factory_by_name("mobic"));
  EXPECT_TRUE(remote == local);

  // A bad algorithm is a deterministic failure: reported in-band, and the
  // worker stays up for the next request.
  ASSERT_TRUE(write_frame(to_worker.write_fd(),
                          "run\nnonsense\n" + canonical_scenario_text(s)));
  ASSERT_TRUE(read_frame(from_worker.read_fd(), &response));
  EXPECT_EQ(response.rfind("error\n", 0), 0u) << response.substr(0, 80);

  ASSERT_TRUE(write_frame(to_worker.write_fd(), request));
  ASSERT_TRUE(read_frame(from_worker.read_fd(), &response));
  EXPECT_EQ(response.rfind("ok\n", 0), 0u);

  // Closing the request pipe is the clean shutdown signal.
  to_worker.close_write();
  worker.join();
}

TEST(WorkerFarmTest, RunsCellsOnRealWorkers) {
  if (worker_bin_from_env() == nullptr) {
    GTEST_SKIP() << "MANET_WORKER_BIN not set (run under ctest)";
  }
  const std::string bin = resolve_worker_bin("");

  std::vector<WorkerRequest> requests;
  std::vector<RunResult> local;
  for (int k = 0; k < 4; ++k) {
    Scenario s = small_scenario();
    s.seed = static_cast<std::uint64_t>(10 + k);
    requests.push_back({"mobic", canonical_scenario_text(s)});
    local.push_back(run_scenario(s, factory_by_name("mobic")));
  }
  // One deterministic failure mixed in.
  requests.push_back({"nonsense", canonical_scenario_text(small_scenario())});

  const auto outcomes = run_jobs_on_workers(bin, 2, requests);
  ASSERT_EQ(outcomes.size(), requests.size());
  for (int k = 0; k < 4; ++k) {
    const auto& out = outcomes[static_cast<std::size_t>(k)];
    ASSERT_TRUE(out.cell.has_value()) << out.error.value_or("(no error)");
    EXPECT_TRUE(decode_cell(*out.cell) ==
                local[static_cast<std::size_t>(k)]);
  }
  ASSERT_TRUE(outcomes.back().error.has_value());
  EXPECT_FALSE(outcomes.back().cell.has_value());
}

TEST(WorkerFarmTest, RunnerWorkersMatchesInProcessByteExactly) {
  if (worker_bin_from_env() == nullptr) {
    GTEST_SKIP() << "MANET_WORKER_BIN not set (run under ctest)";
  }
  const Scenario s = small_scenario();
  const OptionsFactory factory = factory_by_name("mobic");

  RunnerOptions serial;
  serial.jobs = 1;
  const auto in_process = Runner(serial).replications(s, factory, 3, "mobic");

  RunnerOptions farmed;
  farmed.jobs = 1;
  farmed.workers = 2;  // worker_bin resolved via $MANET_WORKER_BIN
  const auto via_workers =
      Runner(farmed).replications(s, factory, 3, "mobic");
  EXPECT_TRUE(in_process == via_workers);

  // --workers requires algorithm labels that cross the process boundary.
  EXPECT_THROW(Runner(farmed).replications(s, factory, 1, "not-a-name"),
               util::CheckError);
  EXPECT_THROW(Runner(farmed).replications(s, factory, 1),
               util::CheckError);
}

TEST(WorkerFarmTest, MissingWorkerBinaryIsAClearError) {
  EXPECT_THROW(resolve_worker_bin("/nonexistent/manetsim"),
               util::CheckError);

  // Bypassing resolution: exec failure surfaces as a dead worker (exit
  // 127), and the cell errors out after its retry budget — never hangs,
  // never reports success.
  const auto outcomes = run_jobs_on_workers(
      "/nonexistent/manetsim", 1,
      {{"mobic", canonical_scenario_text(Scenario{})}});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].cell.has_value());
  ASSERT_TRUE(outcomes[0].error.has_value());
  EXPECT_NE(outcomes[0].error->find("127"), std::string::npos)
      << *outcomes[0].error;
}

}  // namespace
}  // namespace manet::scenario
