// Sweep-farm result cache (scenario/cache.h): key stability and
// sensitivity, cell round-trips, corruption handling, and the Runner's
// cache / resume semantics.
#include <gtest/gtest.h>
#include <stdlib.h>  // setenv/unsetenv
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "scenario/cache.h"
#include "scenario/runner.h"
#include "util/assert.h"

namespace manet::scenario {
namespace {

namespace fs = std::filesystem;

// Every key test pins the epoch: keys must not depend on how the test
// binary was built.
class CacheKeyTest : public ::testing::Test {
 protected:
  void SetUp() override { setenv("MANET_CACHE_EPOCH", "golden", 1); }
  void TearDown() override { unsetenv("MANET_CACHE_EPOCH"); }
};

Scenario small_scenario() {
  Scenario s;
  s.n_nodes = 16;
  s.fleet.field = geom::Rect(300.0, 300.0);
  s.fleet.max_speed = 8.0;
  s.tx_range = 120.0;
  s.sim_time = 60.0;
  s.warmup = 5.0;
  s.seed = 7;
  return s;
}

// A unique per-test scratch directory under the system temp dir.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() /
                       ("manet_cache_test_" + name + "_" +
                        std::to_string(static_cast<long>(::getpid())));
  fs::remove_all(dir);
  return dir;
}

TEST_F(CacheKeyTest, GoldenKeyIsPinned) {
  // The content address of the default paper Scenario under the pinned
  // epoch. This value changing means every previously cached cell in every
  // farm silently stops matching — that must be a deliberate decision, not
  // a side effect. If the change is intentional (a new Scenario field, a
  // canonical-text change), update the pin and say so in the PR.
  EXPECT_EQ(cache_key(Scenario{}, "mobic"), "c28dd16a39cad454");
}

TEST_F(CacheKeyTest, KeyIsDeterministic) {
  const Scenario s = small_scenario();
  EXPECT_EQ(cache_key(s, "mobic"), cache_key(s, "mobic"));
  // A copy hashes the same — no address- or iteration-order dependence.
  const Scenario copy = s;
  EXPECT_EQ(cache_key(s, "mobic"), cache_key(copy, "mobic"));
}

TEST_F(CacheKeyTest, EverySemanticFieldChangesTheKey) {
  const Scenario base = small_scenario();
  const std::string base_key = cache_key(base, "mobic");

  std::set<std::string> keys{base_key};
  const auto mutated = [&](void (*mutate)(Scenario&)) {
    Scenario s = small_scenario();
    mutate(s);
    return cache_key(s, "mobic");
  };
  const auto expect_distinct = [&](const char* what,
                                   void (*mutate)(Scenario&)) {
    const std::string key = mutated(mutate);
    EXPECT_NE(key, base_key) << what << " did not change the cache key";
    EXPECT_TRUE(keys.insert(key).second)
        << what << " collided with another mutation's key";
  };

  expect_distinct("n_nodes", [](Scenario& s) { s.n_nodes = 17; });
  expect_distinct("tx_range", [](Scenario& s) { s.tx_range = 121.0; });
  expect_distinct("sim_time", [](Scenario& s) { s.sim_time = 61.0; });
  expect_distinct("warmup", [](Scenario& s) { s.warmup = 6.0; });
  expect_distinct("sample_period",
                  [](Scenario& s) { s.sample_period = 2.0; });
  expect_distinct("seed", [](Scenario& s) { s.seed = 8; });
  expect_distinct("propagation",
                  [](Scenario& s) { s.propagation = "two_ray"; });
  expect_distinct("pathloss_exponent",
                  [](Scenario& s) { s.pathloss_exponent = 3.0; });
  expect_distinct("shadowing_sigma_db",
                  [](Scenario& s) { s.shadowing_sigma_db = 6.0; });
  expect_distinct("fleet.kind", [](Scenario& s) {
    s.fleet.kind = mobility::ModelKind::kRandomWalk;
  });
  expect_distinct("fleet.field", [](Scenario& s) {
    s.fleet.field = geom::Rect(301.0, 300.0);
  });
  expect_distinct("fleet.max_speed",
                  [](Scenario& s) { s.fleet.max_speed = 9.0; });
  expect_distinct("fleet.min_speed",
                  [](Scenario& s) { s.fleet.min_speed = 0.2; });
  expect_distinct("fleet.pause_time",
                  [](Scenario& s) { s.fleet.pause_time = 1.0; });
  expect_distinct("net.broadcast_interval",
                  [](Scenario& s) { s.net.broadcast_interval = 2.5; });
  expect_distinct("net.neighbor_timeout",
                  [](Scenario& s) { s.net.neighbor_timeout = 3.5; });
  expect_distinct("net.packet_loss",
                  [](Scenario& s) { s.net.packet_loss = 0.1; });
  expect_distinct("net.collision_window",
                  [](Scenario& s) { s.net.collision_window = 0.001; });
  expect_distinct("net.delivery_delay",
                  [](Scenario& s) { s.net.delivery_delay = 0.001; });
  expect_distinct("faults.crash_rate",
                  [](Scenario& s) { s.faults.crash_rate = 0.05; });
  expect_distinct("faults.partitions",
                  [](Scenario& s) { s.faults.partitions = 1; });
  expect_distinct("faults.extra", [](Scenario& s) {
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kCrash;
    e.at = 10.0;
    e.until = 20.0;
    e.node = 3;
    s.faults.extra.push_back(e);
  });
  expect_distinct("obs.metrics", [](Scenario& s) { s.obs.metrics = false; });
  expect_distinct("obs.trace", [](Scenario& s) {
    s.obs.trace = obs::TraceLevel::kFull;
  });

  // The tiniest representable change to a double is a different cell.
  expect_distinct("tx_range ulp", [](Scenario& s) {
    s.tx_range = std::nextafter(s.tx_range, 1000.0);
  });
}

TEST_F(CacheKeyTest, AlgorithmAndEpochSaltTheKey) {
  const Scenario s = small_scenario();
  const std::string mobic = cache_key(s, "mobic");
  EXPECT_NE(mobic, cache_key(s, "lowest_id"));

  setenv("MANET_CACHE_EPOCH", "golden-2", 1);
  EXPECT_NE(mobic, cache_key(s, "mobic"));
  setenv("MANET_CACHE_EPOCH", "golden", 1);
  EXPECT_EQ(mobic, cache_key(s, "mobic"));
}

TEST_F(CacheKeyTest, PresentationFieldsDoNotChangeTheKey) {
  Scenario s = small_scenario();
  s.obs.trace = obs::TraceLevel::kSpans;  // fix the level explicitly
  const std::string base_key = cache_key(s, "mobic");

  Scenario traced = s;
  traced.obs.trace_path = "trace_{seed}.json";
  traced.obs.tag = "p0_mobic_s7";
  EXPECT_EQ(cache_key(traced, "mobic"), base_key);

  // fleet.duration is synced to sim_time by run_scenario, so it is not
  // part of the cell's identity either.
  Scenario stretched = s;
  stretched.fleet.duration = 1234.5;
  EXPECT_EQ(cache_key(stretched, "mobic"), base_key);

  // But a trace_path on a level-kOff scenario promotes the effective level
  // to kSpans (obs::ObsConfig contract), which *is* semantic: the sampler
  // stays off, yet the promoted level must hash like an explicit kSpans.
  Scenario promoted = small_scenario();
  promoted.obs.trace_path = "t.json";
  EXPECT_EQ(cache_key(promoted, "mobic"), base_key);
}

TEST_F(CacheKeyTest, CanonicalTextRoundTripsBitExactly) {
  Scenario s = small_scenario();
  s.propagation = "shadowing";
  s.fleet.kind = mobility::ModelKind::kGaussMarkov;
  s.faults.crash_rate = 0.03;
  s.faults.partitions = 2;
  fault::FaultEvent e;
  e.kind = fault::FaultKind::kCrash;
  e.at = 12.5;
  e.until = 30.0;
  e.node = 5;
  s.faults.extra.push_back(e);
  s.obs.trace_path = "out_{tag}.json";
  s.obs.tag = "cell-tag";

  const std::string text = canonical_scenario_text(s);
  const Scenario back = decode_canonical_scenario(text);
  EXPECT_EQ(canonical_scenario_text(back), text);
  EXPECT_EQ(back.obs.trace_path, s.obs.trace_path);
  EXPECT_EQ(back.obs.tag, s.obs.tag);
  EXPECT_EQ(cache_key(back, "mobic"), cache_key(s, "mobic"));

  EXPECT_THROW(decode_canonical_scenario("not a scenario"),
               util::CheckError);
}

TEST(CellCodecTest, RoundTripsBitExactly) {
  Scenario s = small_scenario();
  s.faults.begin = 10.0;
  s.faults.end = 50.0;
  s.faults.crash_rate = 0.05;  // populate the fault/recovery fields
  const RunResult r = run_scenario(s, factory_by_name("mobic"));
  ASSERT_FALSE(r.metrics.empty());  // counters + histograms in the cell

  const std::string cell = encode_cell(r);
  const RunResult back = decode_cell(cell);
  EXPECT_TRUE(back == r);
  EXPECT_EQ(encode_cell(back), cell);
}

TEST(CellCodecTest, RejectsTamperedOrTruncatedCells) {
  const RunResult r =
      run_scenario(small_scenario(), factory_by_name("mobic"));
  const std::string cell = encode_cell(r);

  EXPECT_THROW(decode_cell(""), util::CheckError);
  EXPECT_THROW(decode_cell("manet-cell/1\n"), util::CheckError);
  EXPECT_THROW(decode_cell(cell.substr(0, cell.size() / 2)),
               util::CheckError);
  std::string flipped = cell;
  flipped[cell.size() / 3] ^= 1;
  EXPECT_THROW(decode_cell(flipped), util::CheckError);
}

TEST(ResultCacheTest, CorruptCellReadsAsMissNeverAsResult) {
  const fs::path dir = scratch_dir("corrupt");
  const Scenario s = small_scenario();
  const std::string filename = cache_cell_filename(s, "mobic");
  const RunResult r = run_scenario(s, factory_by_name("mobic"));
  {
    ResultCache cache(dir.string());
    EXPECT_FALSE(cache.load(filename).has_value());
    cache.store(filename, r);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().stores, 1u);
    ASSERT_TRUE(cache.load(filename).has_value());
    EXPECT_TRUE(*cache.load(filename) == r);
  }
  // Flip one byte on disk: the next load must detect it and recompute.
  {
    std::ifstream in(dir / filename, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes[bytes.size() / 2] ^= 1;
    std::ofstream out(dir / filename, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  ResultCache cache(dir.string());
  EXPECT_FALSE(cache.load(filename).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  fs::remove_all(dir);
}

TEST(RunnerCacheTest, SecondRunIsServedFromCacheByteIdentically) {
  const fs::path dir = scratch_dir("runner");
  const Scenario s = small_scenario();
  const OptionsFactory factory = factory_by_name("mobic");

  RunnerOptions options;
  options.jobs = 1;
  options.cache_dir = dir.string();

  const Runner cold(options);
  const auto first = cold.replications(s, factory, 3, "mobic");
  EXPECT_EQ(cold.cache_stats().misses, 3u);
  EXPECT_EQ(cold.cache_stats().stores, 3u);
  EXPECT_EQ(cold.cache_stats().hits, 0u);

  // A fresh Runner (fresh process stand-in) must hit every cell and
  // reproduce the results bit-exactly.
  const Runner warm(options);
  const auto second = warm.replications(s, factory, 3, "mobic");
  EXPECT_EQ(warm.cache_stats().hits, 3u);
  EXPECT_EQ(warm.cache_stats().misses, 0u);
  EXPECT_TRUE(first == second);

  // Unlabeled runs are not cacheable and bypass the cache entirely.
  const Runner unlabeled(options);
  const auto bare = unlabeled.replications(s, factory, 1);
  EXPECT_EQ(unlabeled.cache_stats().hits, 0u);
  EXPECT_EQ(unlabeled.cache_stats().misses, 0u);
  EXPECT_TRUE(bare[0] == first[0]);
  fs::remove_all(dir);
}

TEST(RunnerCacheTest, CacheContentsIndependentOfJobs) {
  const fs::path dir1 = scratch_dir("jobs1");
  const fs::path dir4 = scratch_dir("jobs4");
  const Scenario s = small_scenario();
  const OptionsFactory factory = factory_by_name("mobic");

  RunnerOptions o1;
  o1.jobs = 1;
  o1.cache_dir = dir1.string();
  RunnerOptions o4 = o1;
  o4.jobs = 4;
  o4.cache_dir = dir4.string();
  const auto r1 = Runner(o1).replications(s, factory, 4, "mobic");
  const auto r4 = Runner(o4).replications(s, factory, 4, "mobic");
  EXPECT_TRUE(r1 == r4);

  // Same cells, same names, same bytes — and every cell carries its .meta
  // provenance sidecar (what --scrub-cache repair recomputes from).
  std::set<std::string> names1, names4;
  for (const auto& entry : fs::directory_iterator(dir1)) {
    names1.insert(entry.path().filename().string());
  }
  for (const auto& entry : fs::directory_iterator(dir4)) {
    names4.insert(entry.path().filename().string());
  }
  ASSERT_EQ(names1, names4);
  ASSERT_EQ(names1.size(), 8u);  // 4 cells + 4 .meta sidecars
  std::size_t metas = 0;
  for (const std::string& name : names1) {
    if (name.size() > 5 && name.compare(name.size() - 5, 5, ".meta") == 0) {
      ++metas;
      EXPECT_TRUE(names1.count(name.substr(0, name.size() - 5)))
          << "orphan sidecar " << name;
    }
  }
  EXPECT_EQ(metas, 4u);
  for (const std::string& name : names1) {
    std::ifstream a(dir1 / name, std::ios::binary);
    std::ifstream b(dir4 / name, std::ios::binary);
    const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                              std::istreambuf_iterator<char>());
    const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                              std::istreambuf_iterator<char>());
    EXPECT_EQ(bytes_a, bytes_b) << name;
  }
  fs::remove_all(dir1);
  fs::remove_all(dir4);
}

TEST(RunnerCacheTest, ResumeVerifiesHitsAndCatchesForgedCells) {
  const fs::path dir = scratch_dir("resume");
  const Scenario s = small_scenario();
  const OptionsFactory factory = factory_by_name("mobic");

  RunnerOptions options;
  options.jobs = 1;
  options.cache_dir = dir.string();
  Runner(options).replications(s, factory, 2, "mobic");

  // Honest resume: hits verified, results identical.
  options.resume = true;
  options.resume_verify = 2;
  const Runner resumed(options);
  const auto again = resumed.replications(s, factory, 2, "mobic");
  EXPECT_EQ(resumed.cache_stats().hits, 2u);
  EXPECT_EQ(resumed.cache_stats().verified, 2u);

  // Forge a cell that *decodes cleanly* (digest recomputed over altered
  // values). A plain load cannot tell — only --resume's byte-comparison
  // against recomputation can, and must.
  const std::string filename = cache_cell_filename(s, "mobic");
  RunResult forged = decode_cell([&] {
    std::ifstream in(dir / filename, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }());
  forged.ch_changes += 1;
  {
    std::ofstream out(dir / filename, std::ios::binary | std::ios::trunc);
    out << encode_cell(forged);
  }
  // The mismatch diagnostic must name the cell and the first differing
  // field — that is what makes quarantine verdicts debuggable.
  try {
    Runner(options).replications(s, factory, 2, "mobic");
    FAIL() << "forged cell passed resume verification";
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(filename), std::string::npos) << what;
    EXPECT_NE(what.find("ch_changes"), std::string::npos) << what;
  }
  fs::remove_all(dir);
}

TEST(ScrubCacheTest, QuarantinesCorruptCellsAndRepairsFromMeta) {
  const fs::path dir = scratch_dir("scrub");
  const Scenario s = small_scenario();
  const OptionsFactory factory = factory_by_name("mobic");
  RunnerOptions options;
  options.jobs = 1;
  options.cache_dir = dir.string();
  Runner(options).replications(s, factory, 2, "mobic");

  const auto read_bytes = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  const std::string victim = cache_cell_filename(s, "mobic");
  const std::string victim_bytes = read_bytes(dir / victim);
  ASSERT_FALSE(victim_bytes.empty());

  // Truncate one cell (torn write) and drop a stray temp file (killed
  // sweep leftover).
  {
    std::ofstream out(dir / victim, std::ios::binary | std::ios::trunc);
    out << victim_bytes.substr(0, victim_bytes.size() / 2);
  }
  {
    std::ofstream out(dir / ".tmp-99-junk", std::ios::binary);
    out << "half a cell";
  }

  // Verify-only pass: corruption is quarantined, never silently kept.
  const ScrubReport report = scrub_cache(dir.string(), /*repair=*/false);
  EXPECT_EQ(report.scanned, 2u);
  EXPECT_EQ(report.ok, 1u);
  EXPECT_EQ(report.corrupt, 1u);
  EXPECT_EQ(report.repaired, 0u);
  EXPECT_EQ(report.stray_tmp, 1u);
  EXPECT_FALSE(fs::exists(dir / victim));
  EXPECT_TRUE(fs::exists(dir / "quarantine" / victim));
  EXPECT_TRUE(fs::exists(dir / "quarantine" / ".tmp-99-junk"));
  // The provenance sidecar stays behind for a later repair pass.
  EXPECT_TRUE(fs::exists(dir / (victim + ".meta")));

  // Repair pass: corrupt the other cell, then recompute it from its .meta
  // sidecar — the repaired cell is byte-identical to the original.
  Scenario s2 = s;
  s2.seed = s.seed + 1;
  const std::string victim2 = cache_cell_filename(s2, "mobic");
  const std::string victim2_bytes = read_bytes(dir / victim2);
  ASSERT_FALSE(victim2_bytes.empty());
  {
    std::ofstream out(dir / victim2, std::ios::binary | std::ios::trunc);
    out << "manet-cell/1\nch_changes = garbage\n";
  }
  const ScrubReport repair = scrub_cache(dir.string(), /*repair=*/true);
  EXPECT_EQ(repair.corrupt, 1u);
  EXPECT_EQ(repair.repaired, 1u);
  EXPECT_EQ(repair.unrepairable, 0u);
  EXPECT_EQ(read_bytes(dir / victim2), victim2_bytes);

  // A clean cache scrubs clean.
  const ScrubReport clean = scrub_cache(dir.string(), /*repair=*/true);
  EXPECT_EQ(clean.corrupt, 0u);
  EXPECT_EQ(clean.ok, clean.scanned);
  fs::remove_all(dir);
}

TEST(ScrubCacheTest, FirstCellDifferenceNamesTheField) {
  EXPECT_EQ(first_cell_difference("a = 1\nb = 2\n", "a = 1\nb = 2\n"), "");
  const std::string diff =
      first_cell_difference("a = 1\nb = 2\n", "a = 1\nb = 3\n");
  EXPECT_NE(diff.find("field 'b'"), std::string::npos) << diff;
  EXPECT_NE(diff.find("'b = 2'"), std::string::npos) << diff;
  EXPECT_NE(diff.find("'b = 3'"), std::string::npos) << diff;
  const std::string trunc = first_cell_difference("a = 1\nb = 2\n", "a = 1\n");
  EXPECT_NE(trunc.find("record ended"), std::string::npos) << trunc;
}

}  // namespace
}  // namespace manet::scenario
