// CSV writer, table printer, flags parser and string helpers.
#include <gtest/gtest.h>

#include "util/assert.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

namespace manet::util {
namespace {

TEST(CsvEscapeTest, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("12.5"), "12.5");
}

TEST(CsvEscapeTest, QuotesSpecials) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterTest, InMemoryRows) {
  CsvWriter w;
  w.row({"a", "b,c"});
  w.row_values("x", 1, 2.5);
  EXPECT_EQ(w.rows_written(), 2u);
  EXPECT_EQ(w.str(), "a,\"b,c\"\nx,1,2.5\n");
}

TEST(CsvWriterTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/manet_csv_test.csv";
  {
    CsvWriter w(path);
    w.row({"h1", "h2"});
    w.row_values(10, 20);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h1,h2");
  std::getline(in, line);
  EXPECT_EQ(line, "10,20");
}

TEST(CsvWriterTest, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/foo.csv"), CheckError);
}

TEST(TableTest, AlignsAndFormats) {
  Table t({"name", "value"});
  t.add("alpha", 1);
  t.add("b", 22.5);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.50"), std::string::npos);  // default 2 decimals
  EXPECT_NE(s.find("-----"), std::string::npos);  // separator line
}

TEST(TableTest, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
  EXPECT_THROW(Table({}), CheckError);
}

TEST(TableTest, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 3), "3.142");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(FlagsTest, ParsesAllSyntaxes) {
  // Positionals come before flags: a bare token after "--name" is taken as
  // that flag's value.
  const char* argv[] = {"prog", "pos1", "--a", "1", "--b=xyz", "--flag"};
  Flags f(6, argv);
  EXPECT_EQ(f.get_int("a", 0), 1);
  EXPECT_EQ(f.get_string("b", ""), "xyz");
  EXPECT_TRUE(f.get_bool("flag", false));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos1");
  f.finish();
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags f(1, argv);
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(f.has("missing"));
  f.finish();
}

TEST(FlagsTest, TrailingBareFlagIsBoolean) {
  const char* argv[] = {"prog", "--verbose"};
  Flags f(2, argv);
  EXPECT_TRUE(f.get_bool("verbose", false));
  f.finish();
}

TEST(FlagsTest, RejectsMalformedValues) {
  const char* argv[] = {"prog", "--n", "abc"};
  Flags f(3, argv);
  EXPECT_THROW(f.get_int("n", 0), CheckError);
}

TEST(FlagsTest, FinishRejectsUnknownFlags) {
  const char* argv[] = {"prog", "--typo", "1"};
  Flags f(3, argv);
  EXPECT_THROW(f.finish(), CheckError);
}

TEST(FlagsTest, BoolParsing) {
  const char* argv[] = {"prog", "--x", "off", "--y", "1"};
  Flags f(5, argv);
  EXPECT_FALSE(f.get_bool("x", true));
  EXPECT_TRUE(f.get_bool("y", false));
  const char* bad[] = {"prog", "--z", "maybe"};
  Flags g(3, bad);
  EXPECT_THROW(g.get_bool("z", false), CheckError);
}

TEST(StringsTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, ToLowerAndStartsWith) {
  EXPECT_EQ(to_lower("MoBiC"), "mobic");
  EXPECT_TRUE(starts_with("mobic_history:0.5", "mobic_history:"));
  EXPECT_FALSE(starts_with("mobic", "mobic_history"));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringsTest, ParseDoubleList) {
  const auto v = parse_double_list("10, 25.5 ,50");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 10.0);
  EXPECT_DOUBLE_EQ(v[1], 25.5);
  EXPECT_DOUBLE_EQ(v[2], 50.0);
  EXPECT_THROW(parse_double_list("1,,2"), CheckError);
  EXPECT_THROW(parse_double_list("1,x"), CheckError);
}

}  // namespace
}  // namespace manet::util
