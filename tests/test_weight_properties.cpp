// Property-test suite for the election core (cluster/weight.h,
// cluster/composite.h).
//
// The whole distributed election rests on three algebraic facts:
//   1. operator<=> on Weight is a strict total order over NaN-free vectors
//      (antisymmetry, transitivity, trichotomy) — Theorem 1's premise;
//   2. the Pareto frontier marked by pareto_frontier() equals the
//      brute-force dominance definition, and filtering through it never
//      changes the lexicographic winner;
//   3. the tie-break chain is exercised level by level: equal prefixes fall
//      through to the next component and finally to the node id.
// Each property is fuzzed over thousands of seed-deterministic random
// vectors rather than hand-picked examples.
#include <algorithm>
#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/composite.h"
#include "cluster/weight.h"
#include "util/rng.h"

namespace manet::cluster {
namespace {

// Draws a random weight with up to kMaxComponents components. Components
// are drawn from a small discrete set so equal prefixes (the interesting
// tie-break cases) actually occur, in quantity, instead of never.
Weight fuzz_weight(util::Rng& rng) {
  Weight w;
  w.id = static_cast<net::NodeId>(rng.index(8));
  const auto n =
      static_cast<std::size_t>(1 + rng.index(Weight::kMaxComponents));
  w.v[0] = static_cast<double>(rng.index(4)) * 0.25;
  for (std::size_t i = 1; i < n; ++i) {
    w.push(static_cast<double>(rng.index(4)) * 0.25);
  }
  return w;
}

std::vector<Weight> fuzz_candidates(util::Rng& rng, std::size_t n) {
  std::vector<Weight> c;
  c.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.push_back(fuzz_weight(rng));
  }
  return c;
}

// Brute-force oracle for the frontier definition: i survives iff no other
// candidate dominates it.
std::vector<std::uint8_t> brute_force_frontier(
    const std::vector<Weight>& candidates) {
  std::vector<std::uint8_t> on(candidates.size(), 1);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (i != j && pareto_dominates(candidates[j], candidates[i])) {
        on[i] = 0;
        break;
      }
    }
  }
  return on;
}

TEST(WeightOrder, TrichotomyOverFuzzedPairs) {
  util::Rng rng(2026);
  for (int trial = 0; trial < 20000; ++trial) {
    const Weight a = fuzz_weight(rng);
    const Weight b = fuzz_weight(rng);
    const auto ab = a <=> b;
    // NaN-free weights are always ordered...
    ASSERT_TRUE(ab != std::partial_ordering::unordered);
    // ...and exactly one of <, ==, > holds, with == agreeing with the
    // comparison (padded slots are semantic, so equivalence means equal
    // padded vector + equal id).
    const int lt = ab < 0 ? 1 : 0;
    const int eq = ab == 0 ? 1 : 0;
    const int gt = ab > 0 ? 1 : 0;
    ASSERT_EQ(lt + eq + gt, 1);
    ASSERT_EQ(eq == 1, a.v == b.v && a.id == b.id);
  }
}

TEST(WeightOrder, AntisymmetryOverFuzzedPairs) {
  util::Rng rng(2027);
  for (int trial = 0; trial < 20000; ++trial) {
    const Weight a = fuzz_weight(rng);
    const Weight b = fuzz_weight(rng);
    const auto ab = a <=> b;
    const auto ba = b <=> a;
    if (ab < 0) {
      ASSERT_TRUE(ba > 0);
    } else if (ab > 0) {
      ASSERT_TRUE(ba < 0);
    } else {
      ASSERT_TRUE(ba == 0);
    }
  }
}

TEST(WeightOrder, TransitivityOverFuzzedTriples) {
  util::Rng rng(2028);
  for (int trial = 0; trial < 20000; ++trial) {
    const Weight a = fuzz_weight(rng);
    const Weight b = fuzz_weight(rng);
    const Weight c = fuzz_weight(rng);
    if (a <=> b <= 0 && b <=> c <= 0) {
      ASSERT_TRUE(a <=> c <= 0)
          << "a<=b and b<=c but a>c at trial " << trial;
    }
  }
}

// std::sort over the order must agree with repeated lex_min_index
// extraction — the sort-based and scan-based views of "the minimum" are the
// same function.
TEST(WeightOrder, SortAndScanAgreeOnTheMinimum) {
  util::Rng rng(2029);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto candidates =
        fuzz_candidates(rng, 1 + rng.index(24));
    std::vector<Weight> sorted = candidates;
    std::sort(sorted.begin(), sorted.end(),
              [](const Weight& a, const Weight& b) { return a < b; });
    const std::size_t min_index = lex_min_index(candidates);
    ASSERT_TRUE(candidates[min_index] <=> sorted.front() == 0);
  }
}

TEST(ParetoFrontier, MatchesBruteForceOracle) {
  util::Rng rng(2030);
  std::vector<std::uint8_t> frontier;
  for (int trial = 0; trial < 2000; ++trial) {
    const auto candidates =
        fuzz_candidates(rng, 1 + rng.index(24));
    pareto_frontier(candidates, frontier);
    const auto oracle = brute_force_frontier(candidates);
    ASSERT_EQ(frontier.size(), oracle.size());
    for (std::size_t i = 0; i < oracle.size(); ++i) {
      ASSERT_EQ(frontier[i] != 0, oracle[i] != 0)
          << "frontier mark " << i << " diverges at trial " << trial;
    }
    // The frontier is never empty: the lexicographic minimum cannot be
    // dominated.
    ASSERT_TRUE(std::any_of(frontier.begin(), frontier.end(),
                            [](std::uint8_t f) { return f != 0; }));
  }
}

// The load-bearing equivalence (see composite.h): filtering candidates to
// the frontier never changes the elected minimum, so the agent's
// frontier-then-scan election equals a plain full scan.
TEST(ParetoFrontier, FilterNeverChangesTheWinner) {
  util::Rng rng(2031);
  std::vector<std::uint8_t> frontier;
  std::vector<Weight> surviving;
  for (int trial = 0; trial < 2000; ++trial) {
    const auto candidates =
        fuzz_candidates(rng, 1 + rng.index(24));
    const Weight& direct = candidates[lex_min_index(candidates)];
    pareto_frontier(candidates, frontier);
    surviving.clear();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (frontier[i] != 0) {
        surviving.push_back(candidates[i]);
      }
    }
    ASSERT_FALSE(surviving.empty());
    const Weight& filtered = surviving[lex_min_index(surviving)];
    ASSERT_TRUE(filtered <=> direct == 0)
        << "frontier filter moved the winner at trial " << trial;
    // And the winner itself is marked as frontier.
    ASSERT_NE(frontier[lex_min_index(candidates)], 0);
  }
}

// Dominance never points against the lexicographic order: if a dominates b
// then a < b (same components everywhere except strictly better somewhere).
TEST(ParetoFrontier, DominanceImpliesLexPrecedence) {
  util::Rng rng(2032);
  for (int trial = 0; trial < 20000; ++trial) {
    const Weight a = fuzz_weight(rng);
    const Weight b = fuzz_weight(rng);
    if (pareto_dominates(a, b)) {
      ASSERT_TRUE(a <=> b < 0);
      ASSERT_FALSE(pareto_dominates(b, a));
    }
  }
}

// Tie-break chain, level by level: weights equal through level k resolve at
// level k+1; fully equal vectors resolve by node id.
TEST(TieBreak, EqualPrefixesFallThroughToLaterLevels) {
  util::Rng rng(2033);
  for (int trial = 0; trial < 5000; ++trial) {
    Weight a = fuzz_weight(rng);
    Weight b = a;  // identical vector and id: equivalent
    ASSERT_TRUE(a <=> b == 0);

    // Perturb one level; every earlier level is an equal prefix, so the
    // comparison must resolve exactly at the perturbed level.
    const auto level =
        static_cast<std::size_t>(rng.index(Weight::kMaxComponents));
    b.v[level] = a.v[level] + 1.0;
    ASSERT_TRUE(a <=> b < 0);
    b.v[level] = a.v[level] - 1.0;
    ASSERT_TRUE(a <=> b > 0);
  }
}

TEST(TieBreak, FullyEqualVectorsResolveByNodeId) {
  util::Rng rng(2034);
  for (int trial = 0; trial < 5000; ++trial) {
    Weight a = fuzz_weight(rng);
    Weight b = a;
    a.id = 3;
    b.id = 7;
    ASSERT_TRUE(a <=> b < 0);
    ASSERT_TRUE(b <=> a > 0);
    b.id = 3;
    ASSERT_TRUE(a <=> b == 0);
  }
}

// The padding contract behind "scalar protocols order bit-identically":
// a scalar weight and the same metric with explicit zero extras are
// equivalent, so the padded comparison is exactly the legacy {metric, id}.
TEST(TieBreak, PaddedZerosEqualTheScalarWeight) {
  util::Rng rng(2035);
  for (int trial = 0; trial < 5000; ++trial) {
    const double metric = rng.uniform() * 10.0 - 5.0;
    const auto id = static_cast<net::NodeId>(rng.index(50));
    const Weight scalar{metric, id};
    Weight padded{metric, id};
    padded.push(0.0);
    padded.push(0.0);
    padded.push(0.0);
    ASSERT_TRUE(scalar <=> padded == 0);
    ASSERT_EQ(scalar, padded);
    // A nonzero extra breaks the tie *after* the metric...
    Weight heavier{metric, id};
    heavier.push(0.5);
    ASSERT_TRUE(scalar <=> heavier < 0);
    // ...but never overrides an earlier level.
    const Weight better{metric - 1.0, id + 1};
    ASSERT_TRUE(better <=> heavier < 0);
  }
}

// push() past capacity is a silent no-op, never memory corruption.
TEST(TieBreak, PushPastCapacityIsIgnored) {
  Weight w{1.0, 0};
  w.push(2.0);
  w.push(3.0);
  w.push(4.0);
  const Weight full = w;
  w.push(99.0);
  ASSERT_EQ(w, full);
  ASSERT_EQ(w.n, Weight::kMaxComponents);
}

}  // namespace
}  // namespace manet::cluster
