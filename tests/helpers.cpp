#include "helpers.h"

#include <algorithm>

#include "mobility/mobility_model.h"

namespace manet::test {

std::unique_ptr<StaticWorld> make_static_world(
    const std::vector<geom::Vec2>& positions, double range,
    cluster::ClusterOptions options, std::uint64_t seed) {
  auto world = std::make_unique<StaticWorld>();

  double w = 1.0;
  double h = 1.0;
  for (const auto p : positions) {
    w = std::max(w, p.x + 1.0);
    h = std::max(h, p.y + 1.0);
  }

  util::Rng root(seed);
  world->network = std::make_unique<net::Network>(
      world->sim, radio::make_paper_medium(range), geom::Rect(w, h),
      net::NetworkParams{}, root.substream("network"));

  options.sink = &world->stats;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    auto node = std::make_unique<net::Node>(
        static_cast<net::NodeId>(i),
        std::make_unique<mobility::StaticModel>(positions[i]),
        root.substream("node", i));
    auto agent = std::make_unique<cluster::WeightedClusterAgent>(options);
    world->agents.push_back(agent.get());
    node->set_agent(std::move(agent));
    world->network->add_node(std::move(node));
  }
  world->network->start();
  return world;
}

std::vector<geom::Vec2> figure1_positions() {
  // Range 100 m. Three clusters: {0: 2, 3, 8}, {1: 5, 8, 9}, {4: 6, 7, 9};
  // 8 bridges clusters 0/1 and 9 bridges 1/4. All coordinates shifted +100
  // to stay on the positive quadrant.
  return {
      {100.0, 100.0},  // 0: head of cluster A
      {280.0, 100.0},  // 1: head of cluster B
      {160.0, 160.0},  // 2: member of A
      {100.0, 180.0},  // 3: member of A
      {460.0, 100.0},  // 4: head of cluster C
      {300.0, 160.0},  // 5: member of B
      {520.0, 150.0},  // 6: member of C
      {510.0, 40.0},   // 7: member of C
      {190.0, 100.0},  // 8: gateway A/B
      {370.0, 100.0},  // 9: gateway B/C
  };
}

}  // namespace manet::test
