// Fault-model tests: schedule generation determinism and bounds, injector
// crash/recover semantics and timeline replay, window-fault drop
// probabilities, and the BI/TP neighbor-expiry boundary under loss bursts.
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "fault/fault.h"
#include "fault/injector.h"
#include "mobility/mobility_model.h"
#include "net/network.h"
#include "radio/medium.h"
#include "scenario/scenario.h"
#include "sim/simulator.h"
#include "util/assert.h"
#include "util/rng.h"

namespace manet {
namespace {

fault::ScheduleSpec mixed_spec() {
  fault::ScheduleSpec spec;
  spec.begin = 10.0;
  spec.end = 100.0;
  spec.crash_rate = 0.05;
  spec.mean_downtime = 20.0;
  spec.churn_rate = 0.02;
  spec.loss_burst_rate = 0.05;
  spec.jam_rate = 0.02;
  spec.partitions = 2;
  spec.partition_duration = 15.0;
  return spec;
}

TEST(FaultScheduleTest, SameSeedYieldsIdenticalSchedule) {
  const geom::Rect field(670.0, 670.0);
  const auto a = fault::make_schedule(mixed_spec(), 30, field, util::Rng(7));
  const auto b = fault::make_schedule(mixed_spec(), 30, field, util::Rng(7));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.events, b.events);
}

TEST(FaultScheduleTest, DifferentSeedsYieldDifferentSchedules) {
  const geom::Rect field(670.0, 670.0);
  const auto a = fault::make_schedule(mixed_spec(), 30, field, util::Rng(7));
  const auto b = fault::make_schedule(mixed_spec(), 30, field, util::Rng(8));
  EXPECT_NE(a.events, b.events);
}

TEST(FaultScheduleTest, EventsRespectWindowAndNodeBounds) {
  const geom::Rect field(670.0, 670.0);
  const auto s = fault::make_schedule(mixed_spec(), 30, field, util::Rng(3));
  ASSERT_FALSE(s.empty());
  bool saw_point = false;
  bool saw_window = false;
  for (const auto& e : s.events) {
    EXPECT_GE(e.at, 10.0);
    EXPECT_LT(e.at, 100.0);
    if (fault::is_window(e.kind)) {
      saw_window = true;
      EXPECT_GT(e.until, e.at);
    } else {
      saw_point = true;
      EXPECT_LT(e.node, 30u);
    }
  }
  EXPECT_TRUE(saw_point);
  EXPECT_TRUE(saw_window);
}

TEST(FaultScheduleTest, RecoveriesPairWithOutages) {
  const geom::Rect field(670.0, 670.0);
  fault::ScheduleSpec spec;
  spec.begin = 0.0;
  spec.end = 400.0;
  spec.crash_rate = 0.03;
  spec.mean_downtime = 25.0;
  const auto s = fault::make_schedule(spec, 10, field, util::Rng(11));
  // Every recover must be preceded by a crash of the same node, and no
  // node crashes twice without recovering in between.
  std::vector<int> down(10, 0);
  for (const auto& e : s.events) {
    if (e.kind == fault::FaultKind::kCrash) {
      EXPECT_EQ(down[e.node], 0) << "node " << e.node << " crashed twice";
      down[e.node] = 1;
    } else if (e.kind == fault::FaultKind::kRecover) {
      EXPECT_EQ(down[e.node], 1) << "orphan recovery of node " << e.node;
      down[e.node] = 0;
    }
  }
}

TEST(FaultScheduleTest, ValidateRejectsMalformedEvents) {
  fault::Schedule s;
  s.add({.kind = fault::FaultKind::kCrash, .at = 1.0, .node = 10});
  EXPECT_THROW(s.validate(5), util::CheckError);  // node out of range

  fault::Schedule empty_window;
  empty_window.add({.kind = fault::FaultKind::kLossBurst, .at = 5.0,
                    .until = 5.0});
  EXPECT_THROW(empty_window.validate(5), util::CheckError);

  fault::Schedule bad_p;
  bad_p.add({.kind = fault::FaultKind::kJam,
             .at = 1.0,
             .until = 2.0,
             .probability = 1.5,
             .radius = 10.0});
  EXPECT_THROW(bad_p.validate(5), util::CheckError);
}

// ---------------------------------------------------------------------------
// Injector tests on a hand-built two-node static network (no beacon jitter,
// so every timing below is exact).
// ---------------------------------------------------------------------------

constexpr double kBI = 2.0;  // NetworkParams defaults (paper Table 1)
constexpr double kTP = 3.0;

struct TwoNodeWorld {
  sim::Simulator sim;
  std::unique_ptr<net::Network> network;

  net::Node& node(net::NodeId id) { return network->node(id); }
  void run_until(double t) { sim.run_until(t); }
};

std::unique_ptr<TwoNodeWorld> make_two_node_world(std::uint64_t seed) {
  auto w = std::make_unique<TwoNodeWorld>();
  net::NetworkParams params;
  params.per_beacon_jitter = 0.0;
  util::Rng root(seed);
  w->network = std::make_unique<net::Network>(
      w->sim, radio::make_paper_medium(100.0), geom::Rect(400.0, 200.0),
      params, root.substream("network"));
  const std::vector<geom::Vec2> positions = {{50.0, 50.0}, {120.0, 50.0}};
  for (std::size_t i = 0; i < positions.size(); ++i) {
    auto node = std::make_unique<net::Node>(
        static_cast<net::NodeId>(i),
        std::make_unique<mobility::StaticModel>(positions[i]),
        root.substream("node", i));
    node->set_agent(std::make_unique<cluster::WeightedClusterAgent>(
        cluster::lowest_id_lcc_options()));
    w->network->add_node(std::move(node));
  }
  w->network->start();
  return w;
}

/// Replicates Network::start()'s phase draws: node i's first beacon time.
std::vector<double> beacon_phases(std::uint64_t seed, std::size_t n) {
  util::Rng phase_rng = util::Rng(seed).substream("network").substream(
      "phase");
  std::vector<double> phases;
  phases.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    phases.push_back(phase_rng.uniform(0.0, kBI));
  }
  return phases;
}

/// Time from a node-1 beacon to the next node-0 beacon (node 0 purges its
/// table at its own beacon ticks).
double purge_offset(std::uint64_t seed) {
  const auto p = beacon_phases(seed, 2);
  return std::fmod(p[0] - p[1] + kBI, kBI);
}

/// A seed whose purge offset lies in [lo, hi] — away from the expiry
/// boundary so the assertions below are robust to the delivery delay.
std::uint64_t find_seed_with_offset(double lo, double hi) {
  for (std::uint64_t seed = 1; seed < 500; ++seed) {
    const double d = purge_offset(seed);
    if (d >= lo && d <= hi) {
      return seed;
    }
  }
  ADD_FAILURE() << "no seed with purge offset in [" << lo << ", " << hi
                << "]";
  return 0;
}

TEST(FaultInjectorTest, CrashAndRecoverFlipNodeLiveness) {
  auto w = make_two_node_world(42);
  fault::Schedule s;
  s.add({.kind = fault::FaultKind::kCrash, .at = 5.0, .node = 1});
  s.add({.kind = fault::FaultKind::kRecover, .at = 12.0, .node = 1});
  fault::Injector injector(*w->network, s);
  injector.arm();

  w->run_until(4.0);
  EXPECT_TRUE(w->node(1).alive());
  w->run_until(6.0);
  EXPECT_FALSE(w->node(1).alive());
  // The survivor expires the dead neighbor: the latest possible purge tick
  // over a TP gap is last_heard (<= 5) + TP + BI < 11.
  w->run_until(11.5);
  EXPECT_FALSE(w->node(0).table().contains(1));
  w->run_until(12.5);
  EXPECT_TRUE(w->node(1).alive());
  // And re-learns it after it recovers and beacons again.
  w->run_until(12.0 + 2.0 * kBI + 0.5);
  EXPECT_TRUE(w->node(0).table().contains(1));

  ASSERT_EQ(injector.timeline().size(), 2u);
  EXPECT_EQ(injector.timeline()[0].event.kind, fault::FaultKind::kCrash);
  EXPECT_TRUE(injector.timeline()[0].applied);
  EXPECT_EQ(injector.timeline()[1].event.kind, fault::FaultKind::kRecover);
  EXPECT_TRUE(injector.timeline()[1].applied);
}

TEST(FaultInjectorTest, PartitionDropsOnlyCrossBoundaryLinks) {
  auto w = make_two_node_world(42);
  fault::Schedule s;
  s.add({.kind = fault::FaultKind::kPartition,
         .at = 1.0,
         .until = 5.0,
         .vertical = true,
         .boundary = 100.0});
  fault::Injector injector(*w->network, s);
  injector.arm();

  w->run_until(2.0);
  const net::LinkContext crossing{0, 1, 2.0, {50.0, 50.0}, {120.0, 50.0}};
  const net::LinkContext same_side{0, 1, 2.0, {50.0, 50.0}, {80.0, 50.0}};
  EXPECT_DOUBLE_EQ(injector.drop_probability(crossing), 1.0);
  EXPECT_DOUBLE_EQ(injector.drop_probability(same_side), 0.0);

  w->run_until(6.0);
  EXPECT_DOUBLE_EQ(injector.drop_probability(crossing), 0.0);
}

TEST(FaultInjectorTest, JamSuppressesReceiversInsideZoneOnly) {
  auto w = make_two_node_world(42);
  fault::Schedule s;
  s.add({.kind = fault::FaultKind::kJam,
         .at = 1.0,
         .until = 5.0,
         .probability = 1.0,
         .center = {120.0, 50.0},
         .radius = 30.0});
  fault::Injector injector(*w->network, s);
  injector.arm();

  w->run_until(2.0);
  const net::LinkContext into_zone{0, 1, 2.0, {50.0, 50.0}, {120.0, 50.0}};
  const net::LinkContext out_of_zone{1, 0, 2.0, {120.0, 50.0}, {50.0, 50.0}};
  EXPECT_DOUBLE_EQ(injector.drop_probability(into_zone), 1.0);
  // Receiver-side model: the jammed node can still transmit outwards.
  EXPECT_DOUBLE_EQ(injector.drop_probability(out_of_zone), 0.0);
}

TEST(FaultInjectorTest, OverlappingBurstsComposeAsSurvivalProduct) {
  auto w = make_two_node_world(42);
  fault::Schedule s;
  s.add({.kind = fault::FaultKind::kLossBurst,
         .at = 1.0,
         .until = 5.0,
         .node = 0,
         .probability = 0.5});
  s.add({.kind = fault::FaultKind::kLossBurst,
         .at = 1.0,
         .until = 5.0,
         .node = 1,
         .probability = 0.5});
  fault::Injector injector(*w->network, s);
  injector.arm();

  w->run_until(2.0);
  const net::LinkContext link{0, 1, 2.0, {50.0, 50.0}, {120.0, 50.0}};
  EXPECT_DOUBLE_EQ(injector.drop_probability(link), 0.75);
}

// ---------------------------------------------------------------------------
// The BI = 2 s / TP = 3 s expiry boundary (paper Table 1): a single lost
// beacon opens a 4 s reception gap, but the receiver only purges at its own
// beacon ticks — with a purge offset below 1 s the entry survives. Losing
// two consecutive beacons always expires the neighbor.
// ---------------------------------------------------------------------------

TEST(LossBurstExpiryTest, SingleLostBeaconDoesNotExpireNeighbor) {
  const std::uint64_t seed = find_seed_with_offset(0.2, 0.8);
  auto w = make_two_node_world(seed);
  const double tb = beacon_phases(seed, 2)[1] + 4.0 * kBI;  // a node-1 beacon

  fault::Schedule s;
  s.add({.kind = fault::FaultKind::kLossBurst,
         .at = tb - 0.05,
         .until = tb + 0.05,
         .node = 1,
         .peer = 0,
         .probability = 1.0});
  fault::Injector injector(*w->network, s);
  injector.arm();

  w->run_until(tb - 0.5);
  ASSERT_TRUE(w->node(0).table().contains(1));

  // Through the lost beacon, the purge ticks at tb+d and tb+2+d (d < 1, so
  // neither sees a gap over TP), and the re-heard beacon at tb+2.
  w->run_until(tb + 1.5);
  EXPECT_TRUE(w->node(0).table().contains(1))
      << "single lost beacon must not expire the neighbor (offset "
      << purge_offset(seed) << " s)";
  w->run_until(tb + 3.0);
  EXPECT_TRUE(w->node(0).table().contains(1));
}

TEST(LossBurstExpiryTest, TwoLostBeaconsExpireNeighbor) {
  const std::uint64_t seed = find_seed_with_offset(0.2, 0.8);
  auto w = make_two_node_world(seed);
  const double tb = beacon_phases(seed, 2)[1] + 4.0 * kBI;

  fault::Schedule s;
  s.add({.kind = fault::FaultKind::kLossBurst,
         .at = tb - 0.05,
         .until = tb + kBI + 0.05,  // covers the beacons at tb and tb+2
         .node = 1,
         .peer = 0,
         .probability = 1.0});
  fault::Injector injector(*w->network, s);
  injector.arm();

  w->run_until(tb - 0.5);
  ASSERT_TRUE(w->node(0).table().contains(1));

  // Last heard at tb-2; the purge at tb+2+d sees a gap of 4+d > TP.
  w->run_until(tb + 3.5);
  EXPECT_FALSE(w->node(0).table().contains(1))
      << "a two-beacon burst must expire the neighbor (offset "
      << purge_offset(seed) << " s)";

  // The next delivered beacon (tb+4) re-learns it.
  w->run_until(tb + 5.0);
  EXPECT_TRUE(w->node(0).table().contains(1));
}

// ---------------------------------------------------------------------------
// End-to-end replay: the same seeded scenario produces the same fault
// timeline and the same measurements, twice.
// ---------------------------------------------------------------------------

scenario::Scenario faulted_scenario(std::uint64_t seed) {
  scenario::Scenario s;
  s.n_nodes = 15;
  s.sim_time = 80.0;
  s.seed = seed;
  s.faults.crash_rate = 0.05;
  s.faults.mean_downtime = 15.0;
  s.faults.loss_burst_rate = 0.05;
  s.faults.jam_rate = 0.02;
  s.faults.partitions = 1;
  s.faults.partition_duration = 10.0;
  return s;
}

TEST(FaultReplayTest, SameSeedReplaysIdenticalTimelineAndStats) {
  const auto factory = scenario::factory_by_name("mobic");
  const auto a = scenario::run_scenario(faulted_scenario(5), factory);
  const auto b = scenario::run_scenario(faulted_scenario(5), factory);

  EXPECT_GT(a.faults_injected, 0u);
  EXPECT_EQ(a.fault_timeline, b.fault_timeline);
  EXPECT_EQ(a.ch_changes, b.ch_changes);
  EXPECT_EQ(a.reaffiliations, b.reaffiliations);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_DOUBLE_EQ(a.mean_recovery_s, b.mean_recovery_s);
  EXPECT_DOUBLE_EQ(a.orphaned_member_seconds, b.orphaned_member_seconds);
  EXPECT_EQ(a.violation_samples, b.violation_samples);

  const auto c = scenario::run_scenario(faulted_scenario(6), factory);
  EXPECT_NE(a.fault_timeline, c.fault_timeline);
}

// ---------------------------------------------------------------------------
// Moot activations: a fault that changes nothing (crashing an already-dead
// node) lands on the timeline with applied=false, but must NOT be reported
// to observers. The convergence monitor used to book a disruption for such
// phantom faults and then wait forever for a recovery that could not happen,
// inflating faults_injected and unrecovered_disruptions.
// ---------------------------------------------------------------------------

TEST(MootFaultTest, DuplicateCrashIsCountedMootAndNotReported) {
  scenario::Scenario s;
  s.n_nodes = 15;
  s.sim_time = 120.0;
  s.seed = 9;
  // A fully manual timeline: crash node 0 at t=20, crash it *again* at t=25
  // (moot — it is already down), recover it at t=60.
  s.faults.begin = 10.0;
  s.faults.end = 110.0;
  s.faults.extra = {
      {.kind = fault::FaultKind::kCrash, .at = 20.0, .node = 0},
      {.kind = fault::FaultKind::kCrash, .at = 25.0, .node = 0},
      {.kind = fault::FaultKind::kRecover, .at = 60.0, .node = 0},
  };
  const auto r =
      scenario::run_scenario(s, scenario::factory_by_name("mobic"));

  // All three activations are on the timeline, the duplicate marked moot.
  ASSERT_EQ(r.fault_timeline.size(), 3u);
  // The monitor only hears about the two applied faults — no phantom
  // disruption for the moot duplicate.
  EXPECT_EQ(r.faults_injected, 2u);
#if MANET_OBS_ENABLED
  EXPECT_EQ(r.metrics.counter_or("fault.activated"), 2u);
  EXPECT_EQ(r.metrics.counter_or("fault.moot"), 1u);
#endif
}

}  // namespace
}  // namespace manet
