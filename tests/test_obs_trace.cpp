// Tests for the Chrome-trace sink: the emitted JSON must be well-formed
// (checked with a small in-test parser, not string matching), timestamps
// must be monotonic, metadata must lead the stream, and a traced scenario
// run must produce per-node clusterhead-tenure tracks — deterministically,
// byte for byte, across repeated runs.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "scenario/scenario.h"
#include "util/assert.h"

namespace manet {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser: enough of RFC 8259 to validate trace output and walk
// it. Throws std::runtime_error on malformed input, so a syntax error in the
// sink's hand-rolled serialization fails the test with a position message.
struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;  // insertion order

  const Json* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
  const Json& at(const std::string& key) const {
    const Json* v = find(key);
    if (v == nullptr) {
      throw std::runtime_error("missing key: " + key);
    }
    return *v;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON error at byte " + std::to_string(pos_) +
                             ": " + what);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end");
    }
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        Json v;
        v.type = Json::Type::kString;
        v.str = string();
        return v;
      }
      case 't':
      case 'f':
        return boolean();
      case 'n':
        literal("null");
        return Json{};
      default:
        return number();
    }
  }

  void literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      fail("bad literal, expected " + word);
    }
    pos_ += word.size();
  }

  Json boolean() {
    Json v;
    v.type = Json::Type::kBool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
      v.boolean = false;
    }
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            out.push_back(esc);
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          default:
            fail("unsupported escape");
        }
      } else {
        out.push_back(c);
      }
    }
    ++pos_;  // closing quote
    return out;
  }

  Json number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a number");
    }
    Json v;
    v.type = Json::Type::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  Json array() {
    expect('[');
    Json v;
    v.type = Json::Type::kArray;
    skip_ws();
    if (consume(']')) {
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (consume(']')) {
        return v;
      }
      expect(',');
    }
  }

  Json object() {
    expect('{');
    Json v;
    v.type = Json::Type::kObject;
    skip_ws();
    if (consume('}')) {
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (consume('}')) {
        return v;
      }
      expect(',');
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string sink_json(const obs::TraceSink& sink) {
  std::ostringstream out;
  sink.write_json(out);
  return out.str();
}

Json parse_trace(const std::string& text) {
  Json doc = JsonParser(text).parse();
  EXPECT_EQ(doc.type, Json::Type::kObject);
  EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");
  EXPECT_EQ(doc.at("traceEvents").type, Json::Type::kArray);
  return doc;
}

// Splits the traceEvents array into leading metadata ("M") and the rest;
// asserts no metadata appears after the first real event.
std::pair<std::vector<const Json*>, std::vector<const Json*>> split_events(
    const Json& doc) {
  std::vector<const Json*> meta;
  std::vector<const Json*> events;
  for (const Json& e : doc.at("traceEvents").array) {
    if (e.at("ph").str == "M") {
      EXPECT_TRUE(events.empty()) << "metadata after a non-metadata event";
      meta.push_back(&e);
    } else {
      events.push_back(&e);
    }
  }
  return {meta, events};
}

// ---------------------------------------------------------------------------

TEST(TraceLevel, ParseAndNameRoundTrip) {
  using obs::TraceLevel;
  EXPECT_EQ(obs::parse_trace_level("off"), TraceLevel::kOff);
  EXPECT_EQ(obs::parse_trace_level("spans"), TraceLevel::kSpans);
  EXPECT_EQ(obs::parse_trace_level("full"), TraceLevel::kFull);
  for (const auto level :
       {TraceLevel::kOff, TraceLevel::kSpans, TraceLevel::kFull}) {
    EXPECT_EQ(obs::parse_trace_level(obs::trace_level_name(level)), level);
  }
  EXPECT_THROW(obs::parse_trace_level("verbose"), util::CheckError);
}

TEST(TraceSink, OffLevelRecordsNothing) {
  obs::TraceSink sink(obs::TraceLevel::kOff);
  EXPECT_FALSE(sink.enabled());
  sink.complete(0, 0, "span", 0.0, 1.0);
  sink.instant(1, 2, "mark", 0.5);
  sink.counter("depth", 0.5, 3.0);
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSink, CounterTracksRequireFullLevel) {
  obs::TraceSink spans(obs::TraceLevel::kSpans);
  spans.counter("depth", 0.5, 3.0);
  EXPECT_EQ(spans.size(), 0u);
  obs::TraceSink full(obs::TraceLevel::kFull);
  full.counter("depth", 0.5, 3.0);
  EXPECT_EQ(full.size(), 1u);
}

TEST(TraceSink, JsonIsWellFormedSortedAndTyped) {
  obs::TraceSink sink(obs::TraceLevel::kFull);
  // Emitted deliberately out of time order; write_json must sort.
  sink.complete(obs::TraceSink::kNodePid, 3, "head", 5.0, 9.0, "score", 42);
  sink.instant(obs::TraceSink::kNodePid, 1, "crash", 2.0);
  sink.counter("depth", 1.0, 17.0);
  sink.complete(obs::TraceSink::kRunPid, 0, "warmup", 0.0, 10.0);

  const Json doc = parse_trace(sink_json(sink));
  const auto [meta, events] = split_events(doc);
  ASSERT_EQ(events.size(), 4u);

  // Monotonic non-decreasing timestamps after the metadata block.
  double last_ts = -1.0;
  for (const Json* e : events) {
    const double ts = e->at("ts").number;
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
  }

  // Per-phase shape: "X" carries dur, "i" carries scope, "C" carries value.
  EXPECT_EQ(events[0]->at("name").str, "warmup");
  EXPECT_EQ(events[0]->at("ph").str, "X");
  EXPECT_DOUBLE_EQ(events[0]->at("dur").number, 10.0 * 1e6);
  EXPECT_EQ(events[1]->at("name").str, "depth");
  EXPECT_EQ(events[1]->at("ph").str, "C");
  EXPECT_DOUBLE_EQ(events[1]->at("args").at("value").number, 17.0);
  EXPECT_EQ(events[2]->at("name").str, "crash");
  EXPECT_EQ(events[2]->at("ph").str, "i");
  EXPECT_EQ(events[2]->at("s").str, "t");
  EXPECT_EQ(events[3]->at("name").str, "head");
  EXPECT_DOUBLE_EQ(events[3]->at("ts").number, 5.0 * 1e6);
  EXPECT_DOUBLE_EQ(events[3]->at("args").at("score").number, 42.0);

  // Metadata names the run process and every node thread that appeared.
  bool named_run = false;
  bool named_node3 = false;
  for (const Json* m : meta) {
    if (m->at("name").str == "process_name" &&
        m->at("pid").number == obs::TraceSink::kRunPid) {
      named_run = m->at("args").at("name").str == "run";
    }
    if (m->at("name").str == "thread_name" && m->at("tid").number == 3.0) {
      named_node3 = m->at("args").at("name").str == "node 3";
    }
  }
  EXPECT_TRUE(named_run);
  EXPECT_TRUE(named_node3);
}

TEST(TraceSink, SameTimestampKeepsEmissionOrder) {
  obs::TraceSink sink(obs::TraceLevel::kSpans);
  sink.instant(0, 0, "first", 1.0);
  sink.instant(0, 0, "second", 1.0);
  sink.instant(0, 0, "third", 1.0);
  const Json doc = parse_trace(sink_json(sink));
  const auto [meta, events] = split_events(doc);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0]->at("name").str, "first");
  EXPECT_EQ(events[1]->at("name").str, "second");
  EXPECT_EQ(events[2]->at("name").str, "third");
}

// ---------------------------------------------------------------------------
// Scenario-level: a traced run writes a loadable file with per-node
// clusterhead-tenure spans, and does so byte-identically on every run.

scenario::Scenario traced_scenario(const std::string& trace_path) {
  scenario::Scenario s;
  s.n_nodes = 20;
  s.fleet.field = geom::Rect(400.0, 400.0);
  s.fleet.max_speed = 10.0;
  s.tx_range = 120.0;
  s.sim_time = 120.0;
  s.warmup = 10.0;
  s.seed = 3;
  s.obs.trace = obs::TraceLevel::kSpans;
  s.obs.trace_path = trace_path;
  return s;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ScenarioTrace, EmitsPerNodeTenureTracksAndPhases) {
  const std::string path = testing::TempDir() + "obs_trace_run.json";
  const auto r = scenario::run_scenario(traced_scenario(path),
                                        scenario::factory_by_name("mobic"));
  const Json doc = parse_trace(read_file(path));
  const auto [meta, events] = split_events(doc);

  std::size_t head_spans = 0;
  std::size_t open_at_end = 0;  // tenure spans still running at sim end
  std::map<int, std::size_t> per_node;
  bool saw_warmup = false;
  bool saw_measurement = false;
  double last_ts = -1.0;
  for (const Json* e : events) {
    const double ts = e->at("ts").number;
    EXPECT_GE(ts, last_ts) << "timestamps must be monotonic";
    last_ts = ts;
    const std::string& name = e->at("name").str;
    const int pid = static_cast<int>(e->at("pid").number);
    if (name == "head") {
      EXPECT_EQ(pid, obs::TraceSink::kNodePid);
      EXPECT_EQ(e->at("ph").str, "X");
      ++head_spans;
      ++per_node[static_cast<int>(e->at("tid").number)];
      const double end_s = (ts + e->at("dur").number) / 1e6;
      EXPECT_LE(end_s, 120.0 + 1e-6);
      if (end_s >= 120.0 - 1e-6) {
        ++open_at_end;
      }
    } else if (name == "warmup") {
      EXPECT_EQ(pid, obs::TraceSink::kRunPid);
      saw_warmup = true;
    } else if (name == "measurement") {
      EXPECT_EQ(pid, obs::TraceSink::kRunPid);
      EXPECT_DOUBLE_EQ(
          e->at("args").at("events").number,
          static_cast<double>(r.events_executed));
      saw_measurement = true;
    }
  }
  EXPECT_TRUE(saw_warmup);
  EXPECT_TRUE(saw_measurement);
  // A 20-node run always elects clusterheads, and the standing heads'
  // reigns are closed at sim end, so their spans reach exactly t_end.
  EXPECT_GT(head_spans, 0u);
  EXPECT_GE(per_node.size(), 2u) << "tenure spans from at least two nodes";
  EXPECT_EQ(open_at_end, r.final_heads);

  // The node threads that carried spans are named in the metadata.
  std::size_t thread_names = 0;
  for (const Json* m : meta) {
    thread_names += m->at("name").str == "thread_name" ? 1 : 0;
  }
  EXPECT_GE(thread_names, per_node.size());
}

TEST(ScenarioTrace, OutputIsByteStableAcrossRuns) {
  const std::string path_a = testing::TempDir() + "obs_trace_rep_a.json";
  const std::string path_b = testing::TempDir() + "obs_trace_rep_b.json";
  scenario::run_scenario(traced_scenario(path_a),
                         scenario::factory_by_name("mobic"));
  scenario::run_scenario(traced_scenario(path_b),
                         scenario::factory_by_name("mobic"));
  const std::string a = read_file(path_a);
  const std::string b = read_file(path_b);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "same-seed traces must be byte-identical";
}

TEST(ScenarioTrace, ExpandsSeedAndTagPlaceholders) {
  const std::string tmpl = testing::TempDir() + "obs_trace_{tag}_s{seed}.json";
  scenario::Scenario s = traced_scenario(tmpl);
  s.obs.tag = "unit";
  scenario::run_scenario(s, scenario::factory_by_name("mobic"));
  const std::string expanded = testing::TempDir() + "obs_trace_unit_s3.json";
  std::ifstream in(expanded);
  EXPECT_TRUE(in.is_open()) << expanded;
}

TEST(ScenarioTrace, FullLevelAddsCounterTracksAndSamplerEvents) {
  const std::string spans_path = testing::TempDir() + "obs_trace_spans.json";
  const std::string full_path = testing::TempDir() + "obs_trace_full.json";
  const auto spans_run = scenario::run_scenario(
      traced_scenario(spans_path), scenario::factory_by_name("mobic"));
  scenario::Scenario full = traced_scenario(full_path);
  full.obs.trace = obs::TraceLevel::kFull;
  full.obs.counter_sample_period = 5.0;
  const auto full_run =
      scenario::run_scenario(full, scenario::factory_by_name("mobic"));

  // The kFull sampler is the one obs feature that schedules simulator
  // events: 120 s / 5 s period = 25 ticks (t = 0 included).
  EXPECT_EQ(full_run.events_executed, spans_run.events_executed + 25);

  const Json doc = parse_trace(read_file(full_path));
  std::map<std::string, std::size_t> counter_tracks;
  for (const Json& e : doc.at("traceEvents").array) {
    if (e.at("ph").str == "C") {
      ++counter_tracks[e.at("name").str];
    }
  }
  EXPECT_EQ(counter_tracks["event_queue.depth"], 25u);
  EXPECT_EQ(counter_tracks["hello.delivered"], 25u);
  EXPECT_EQ(counter_tracks["clusterheads"], 25u);

  // No counter tracks at kSpans.
  const Json spans_doc = parse_trace(read_file(spans_path));
  for (const Json& e : spans_doc.at("traceEvents").array) {
    EXPECT_NE(e.at("ph").str, "C");
  }
}

}  // namespace
}  // namespace manet
