// MOBIC-specific dynamics: metric-driven elections, the LCC member rule,
// and the Cluster Contention Interval, exercised with trace-driven motion.
#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "helpers.h"
#include "mobility/trace.h"

namespace manet::cluster {
namespace {

// World with trace-driven nodes and per-node cluster options.
struct TraceWorld {
  sim::Simulator sim;
  std::unique_ptr<net::Network> network;
  std::vector<WeightedClusterAgent*> agents;
  ClusterStats stats{0.0};
};

std::unique_ptr<TraceWorld> make_trace_world(
    const std::vector<mobility::PiecewiseLinearTrack>& tracks, double range,
    ClusterOptions options, geom::Rect field = geom::Rect(2000.0, 2000.0)) {
  auto world = std::make_unique<TraceWorld>();
  util::Rng root(11);
  net::NetworkParams params;
  params.per_beacon_jitter = 0.001;
  world->network = std::make_unique<net::Network>(
      world->sim, radio::make_paper_medium(range), field, params,
      root.substream("net"));
  options.sink = &world->stats;
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    auto node = std::make_unique<net::Node>(
        static_cast<net::NodeId>(i),
        std::make_unique<mobility::TraceModel>(tracks[i]),
        root.substream("node", i));
    auto agent = std::make_unique<WeightedClusterAgent>(options);
    world->agents.push_back(agent.get());
    node->set_agent(std::move(agent));
    world->network->add_node(std::move(node));
  }
  world->network->start();
  return world;
}

mobility::PiecewiseLinearTrack track_of(
    std::initializer_list<std::pair<double, geom::Vec2>> points) {
  mobility::PiecewiseLinearTrack t;
  for (const auto& [time, pos] : points) {
    t.append(time, pos);
  }
  return t;
}

mobility::PiecewiseLinearTrack static_at(geom::Vec2 p, double until = 1e4) {
  return track_of({{0.0, p}, {until, p}});
}

TEST(MobicDynamicsTest, MobileNodeDoesNotBecomeHeadDespiteLowId) {
  // Node 0 (lowest id!) oscillates rapidly within range of a static trio
  // 1,2,3. Lowest-ID would crown node 0; MOBIC must not, because node 0's
  // power ratios swing every beacon while 1-3 are mutually static.
  std::vector<mobility::PiecewiseLinearTrack> tracks;
  mobility::PiecewiseLinearTrack zigzag;
  for (int k = 0; k <= 100; ++k) {
    // 10 s period triangle between x=900 and x=1100 -> +-20 m/s
    zigzag.append(5.0 * k, {k % 2 == 0 ? 900.0 : 1100.0, 1000.0});
  }
  tracks.push_back(zigzag);
  tracks.push_back(static_at({1000.0, 1060.0}));
  tracks.push_back(static_at({1000.0, 1120.0}));
  tracks.push_back(static_at({940.0, 1060.0}));

  auto world = make_trace_world(tracks, 250.0, mobic_options());
  world->sim.run_until(60.0);
  EXPECT_NE(world->agents[0]->role(), Role::kHead)
      << "fast node must not head a static neighborhood";
  // The static trio elected one of themselves...
  int head = -1;
  for (int i = 1; i <= 3; ++i) {
    if (world->agents[i]->role() == Role::kHead) {
      EXPECT_EQ(head, -1) << "two heads in one neighborhood";
      head = i;
    }
  }
  ASSERT_NE(head, -1);
  // ...namely one with a lower aggregate mobility than the zigzagger, whose
  // own M clearly registers the motion.
  EXPECT_GT(world->agents[0]->metric(), 1.0);
  EXPECT_LT(world->agents[head]->metric(), world->agents[0]->metric());
}

TEST(MobicDynamicsTest, LowestIdWouldCrownTheMobileNode) {
  // Same topology under Lowest-ID: node 0 wins on id despite its motion —
  // the exact pathology §3 opens with.
  std::vector<mobility::PiecewiseLinearTrack> tracks;
  mobility::PiecewiseLinearTrack zigzag;
  for (int k = 0; k <= 100; ++k) {
    zigzag.append(5.0 * k, {k % 2 == 0 ? 900.0 : 1100.0, 1000.0});
  }
  tracks.push_back(zigzag);
  tracks.push_back(static_at({1000.0, 1060.0}));
  tracks.push_back(static_at({1000.0, 1120.0}));
  tracks.push_back(static_at({940.0, 1060.0}));

  auto world = make_trace_world(tracks, 250.0, lowest_id_lcc_options());
  world->sim.run_until(60.0);
  EXPECT_EQ(world->agents[0]->role(), Role::kHead);
}

TEST(MobicDynamicsTest, LccRuleMemberPassingThroughDoesNotRecluster) {
  // Two adjacent clusters whose coverage areas overlap (heads 160 m apart,
  // range 100 m, so the heads do not hear each other). A member of cluster
  // A drifts into cluster B's range *while staying in range of its own
  // head*, then returns. LCC (§3.2, 4th bullet): no reclustering.
  std::vector<mobility::PiecewiseLinearTrack> tracks;
  tracks.push_back(static_at({200.0, 200.0}));  // 0: head A
  tracks.push_back(track_of({{0.0, {260.0, 200.0}},
                             {30.0, {260.0, 200.0}},
                             {60.0, {290.0, 200.0}},  // inside B's range now
                             {90.0, {260.0, 200.0}},
                             {1000.0, {260.0, 200.0}}}));  // 1: wanderer
  tracks.push_back(static_at({360.0, 200.0}));  // 2: head B
  tracks.push_back(static_at({420.0, 200.0}));  // 3: member B

  auto world = make_trace_world(tracks, 100.0, mobic_options(),
                                geom::Rect(1000.0, 500.0));
  world->sim.run_until(20.0);
  ASSERT_EQ(world->agents[0]->role(), Role::kHead);
  ASSERT_EQ(world->agents[2]->role(), Role::kHead);
  ASSERT_EQ(world->agents[1]->cluster_head(), 0u);
  const auto role_changes_before = world->stats.role_changes();

  world->sim.run_until(120.0);
  // No role changed anywhere: the wanderer stayed a member of head 0, and
  // neither head was deposed.
  EXPECT_EQ(world->agents[0]->role(), Role::kHead);
  EXPECT_EQ(world->agents[2]->role(), Role::kHead);
  EXPECT_EQ(world->agents[1]->cluster_head(), 0u);
  EXPECT_EQ(world->stats.role_changes(), role_changes_before)
      << "member transit must not trigger reclustering (LCC)";
}

TEST(MobicDynamicsTest, CciFiltersIncidentalHeadContact) {
  // Two single-node clusters pass within range for ~2 s (< CCI = 4 s):
  // with MOBIC neither head resigns; with CCI = 0 one of them does.
  const auto build_tracks = [] {
    std::vector<mobility::PiecewiseLinearTrack> tracks;
    tracks.push_back(static_at({500.0, 500.0}));  // head 0
    // Head 1 sweeps past: inside 100 m of node 0 only around t ~ 50 s.
    tracks.push_back(track_of({{0.0, {500.0, 2500.0}},
                               {100.0, {500.0, -1500.0}}}));  // 40 m/s
    return tracks;
  };

  // 40 m/s: within 100 m for |y-500|<100 -> t in [47.5, 52.5], 5 s...
  // use 60 m/s to keep the contact under the CCI. Rebuild with speed 60:
  std::vector<mobility::PiecewiseLinearTrack> fast;
  fast.push_back(static_at({500.0, 500.0}));
  fast.push_back(track_of({{0.0, {500.0, 3500.0}},
                           {100.0, {500.0, -2500.0}}}));  // 60 m/s
  {
    // CCI = 8 s: the ~3.3 s geometric contact plus the one-beacon
    // detection lag stays safely under the interval, so nobody resigns.
    // (At the paper's CCI = 4 s this exact contact is borderline: beacon
    // phasing decides whether the rival still looks fresh when the timer
    // matures — an artifact any beacon-driven implementation shares.)
    auto world = make_trace_world(fast, 100.0, mobic_options(nullptr, 8.0),
                                  geom::Rect(1000.0, 4000.0));
    world->sim.run_until(40.0);
    ASSERT_EQ(world->agents[0]->role(), Role::kHead);
    ASSERT_EQ(world->agents[1]->role(), Role::kHead);
    const auto losses_before = world->stats.head_losses();
    world->sim.run_until(80.0);
    EXPECT_EQ(world->stats.head_losses(), losses_before)
        << "a ~3 s contact must be ignored under CCI = 8 s";
    EXPECT_EQ(world->agents[0]->role(), Role::kHead);
    EXPECT_EQ(world->agents[1]->role(), Role::kHead);
  }
  {
    // Ablation in miniature: CCI = 0 resolves the same contact.
    auto world = make_trace_world(fast, 100.0, mobic_options(nullptr, 0.0),
                                  geom::Rect(1000.0, 4000.0));
    world->sim.run_until(40.0);
    const auto losses_before = world->stats.head_losses();
    world->sim.run_until(80.0);
    EXPECT_GT(world->stats.head_losses(), losses_before)
        << "with CCI = 0 the contact must trigger a resignation";
  }

  (void)build_tracks;
}

TEST(MobicDynamicsTest, SustainedHeadContactResolvesByLowerMobility) {
  // Two heads converge and then stay in range: after CCI the one with the
  // higher aggregate mobility must resign (§3.2 last bullet). Node 0 (low
  // id!) keeps moving around its spot; node 1 is perfectly static — MOBIC
  // must keep node 1 and depose node 0, the opposite of the id tie-break.
  std::vector<mobility::PiecewiseLinearTrack> tracks;
  // Node 0 jitters around (450, 500) after arriving at t = 30.
  mobility::PiecewiseLinearTrack jitter;
  jitter.append(0.0, {100.0, 500.0});
  jitter.append(30.0, {450.0, 500.0});
  for (int k = 1; k <= 200; ++k) {
    jitter.append(30.0 + 2.5 * k,
                  {k % 2 == 0 ? 450.0 : 480.0, 500.0});  // 12 m/s wobble
  }
  tracks.push_back(jitter);
  tracks.push_back(static_at({520.0, 500.0}));  // node 1: static head
  // Give each head a static companion so M comparisons have samples and
  // the clusters are non-trivial.
  mobility::PiecewiseLinearTrack comp0;  // follows node 0's approach
  comp0.append(0.0, {60.0, 500.0});
  comp0.append(30.0, {410.0, 540.0});
  comp0.append(1000.0, {410.0, 540.0});
  tracks.push_back(comp0);
  tracks.push_back(static_at({560.0, 540.0}));  // companion of node 1

  auto world = make_trace_world(tracks, 100.0, mobic_options(),
                                geom::Rect(1000.0, 1000.0));
  // Before contact: two clusters with heads 0 and 1.
  world->sim.run_until(25.0);
  EXPECT_EQ(world->agents[0]->role(), Role::kHead);
  EXPECT_EQ(world->agents[1]->role(), Role::kHead);
  // After sustained contact (> CCI) the wobbling node 0 must yield.
  world->sim.run_until(80.0);
  EXPECT_EQ(world->agents[1]->role(), Role::kHead)
      << "static node must retain headship";
  EXPECT_NE(world->agents[0]->role(), Role::kHead)
      << "mobile node must resign after CCI despite its lower id";
}

TEST(MobicDynamicsTest, EqualMetricsFallBackToLowestId) {
  // All static (every M = 0): two heads brought into contact resolve by id.
  std::vector<mobility::PiecewiseLinearTrack> tracks;
  tracks.push_back(track_of({{0.0, {100.0, 100.0}},
                             {20.0, {100.0, 100.0}},
                             {40.0, {260.0, 100.0}},
                             {1000.0, {260.0, 100.0}}}));  // 1 moves to 0? no:
  // index 0 is the mover (ends near node 1).
  tracks.push_back(static_at({340.0, 100.0}));

  auto world = make_trace_world(tracks, 100.0, mobic_options(),
                                geom::Rect(600.0, 300.0));
  world->sim.run_until(20.0);
  EXPECT_EQ(world->agents[0]->role(), Role::kHead);
  EXPECT_EQ(world->agents[1]->role(), Role::kHead);
  world->sim.run_until(120.0);  // in range (80 m) once 0 arrives; M decays
                                // to ~0 for both after 0 stops
  // Ties at M ~ 0 resolve by id: node 0 keeps the role, node 1 resigns.
  EXPECT_EQ(world->agents[0]->role(), Role::kHead);
  EXPECT_EQ(world->agents[1]->role(), Role::kMember);
  EXPECT_EQ(world->agents[1]->cluster_head(), 0u);
}

TEST(MobicDynamicsTest, AdaptiveBeaconIntervalTracksMobility) {
  // §5 extension: a node in a static neighborhood relaxes its beacon rate;
  // a node in a churning neighborhood speeds up.
  ClusterOptions opts = mobic_options();
  opts.adaptive_bi = true;
  opts.adaptive_bi_min = 1.0;
  opts.adaptive_bi_max = 4.0;
  opts.adaptive_bi_ref = 5.0;

  std::vector<mobility::PiecewiseLinearTrack> calm;
  calm.push_back(static_at({100.0, 100.0}));
  calm.push_back(static_at({150.0, 100.0}));
  auto world = make_trace_world(calm, 250.0, opts, geom::Rect(400, 400));
  world->sim.run_until(30.0);
  // Static pair: M = 0 -> period drifts to the slow end, which is clamped
  // to 0.8 * TP = 2.4 s (beaconing slower than the neighbor timeout would
  // flap the tables).
  EXPECT_NEAR(world->network->node(0).beacon_period(), 2.4, 0.01);

  std::vector<mobility::PiecewiseLinearTrack> busy;
  busy.push_back(static_at({500.0, 500.0}));
  mobility::PiecewiseLinearTrack osc;
  for (int k = 0; k <= 300; ++k) {
    osc.append(2.0 * k, {k % 2 == 0 ? 450.0 : 650.0, 500.0});
  }
  busy.push_back(osc);
  auto world2 = make_trace_world(busy, 250.0, opts, geom::Rect(1000, 1000));
  world2->sim.run_until(30.0);
  // Strictly faster than the calm clamp of 2.4 s.
  EXPECT_LT(world2->network->node(0).beacon_period(), 2.2);
}

}  // namespace
}  // namespace manet::cluster
