// Metamorphic / differential tests for the observability counters: every
// metric with an independent oracle in the simulator must agree with it
// exactly. cluster::ObsClusterSink deliberately shares no code with
// cluster::ClusterStats, and the net hooks count at the delivery branch
// points, so each identity below cross-checks two independent
// implementations of the same quantity.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/hooks.h"
#include "scenario/runner.h"
#include "util/assert.h"

namespace manet {
namespace {

#if MANET_OBS_ENABLED
#define MANET_REQUIRE_OBS() (void)0
#else
#define MANET_REQUIRE_OBS() GTEST_SKIP() << "built with MANET_OBS=OFF"
#endif

// Shadowing propagation plus a base packet-loss rate exercises all three
// delivery outcomes (delivered / dropped.fading / dropped.loss).
scenario::Scenario lossy_scenario() {
  scenario::Scenario s;
  s.n_nodes = 20;
  s.fleet.field = geom::Rect(400.0, 400.0);
  s.fleet.max_speed = 10.0;
  s.tx_range = 120.0;
  s.sim_time = 120.0;
  s.warmup = 10.0;
  s.seed = 3;
  s.propagation = "shadowing";
  s.shadowing_sigma_db = 6.0;
  s.net.packet_loss = 0.1;
  return s;
}

scenario::Scenario faulted_scenario() {
  scenario::Scenario s = lossy_scenario();
  s.propagation = "free_space";
  s.net.packet_loss = 0.0;
  s.faults.begin = 20.0;
  s.faults.end = 100.0;
  s.faults.crash_rate = 0.05;
  s.faults.mean_downtime = 20.0;
  s.faults.loss_burst_rate = 0.03;
  s.faults.loss_burst_duration = 8.0;
  s.faults.loss_burst_probability = 0.9;
  return s;
}

TEST(ObsDifferential, HelloDeliveryConservation) {
  MANET_REQUIRE_OBS();
  const auto r = scenario::run_scenario(lossy_scenario(),
                                        scenario::factory_by_name("mobic"));
  ASSERT_FALSE(r.metrics.empty());
  const auto sent = r.metrics.counter_or("hello.sent");
  const auto delivered = r.metrics.counter_or("hello.delivered");
  const auto fading = r.metrics.counter_or("hello.dropped.fading");
  const auto loss = r.metrics.counter_or("hello.dropped.loss");
  EXPECT_GT(sent, 0u);
  EXPECT_GT(fading, 0u) << "shadowing at sigma 6 dB must drop something";
  EXPECT_GT(loss, 0u) << "10% base loss must drop something";
  // Every in-range delivery attempt resolves to exactly one outcome.
  EXPECT_EQ(sent, delivered + fading + loss);
  // The hooks and NetworkStats count at the same branch points.
  EXPECT_EQ(delivered, r.hellos_delivered);
  EXPECT_EQ(r.metrics.counter_or("beacon.sent"), r.beacons_sent);
  // Collisions are receiver-side, after delivery: not part of the identity,
  // but bounded by it.
  EXPECT_LE(r.metrics.counter_or("hello.dropped.collision"), delivered);
}

TEST(ObsDifferential, ClusterheadConservationAndCsReplica) {
  MANET_REQUIRE_OBS();
  for (const char* alg : {"mobic", "lowest_id"}) {
    const auto r = scenario::run_scenario(lossy_scenario(),
                                          scenario::factory_by_name(alg));
    ASSERT_FALSE(r.metrics.empty());
    const auto elected = r.metrics.counter_or("ch.elected");
    const auto resigned = r.metrics.counter_or("ch.resigned");
    EXPECT_GT(elected, 0u) << alg;
    EXPECT_GE(elected, resigned) << alg;
    // All-time conservation: every reign that did not end is still standing.
    EXPECT_EQ(elected - resigned, r.final_heads) << alg;
    // The warmup-gated replicas must match ClusterStats one for one.
    EXPECT_EQ(r.metrics.counter_or("ch.changed"), r.ch_changes) << alg;
    EXPECT_EQ(r.metrics.counter_or("reaffiliation"), r.reaffiliations)
        << alg;
    // Every ended reign left one tenure sample; censored reigns (standing at
    // sim end) are sampled too, so the histogram holds all elections.
    const auto* tenure = r.metrics.histogram("ch.tenure");
    ASSERT_NE(tenure, nullptr) << alg;
    std::uint64_t tenure_samples = 0;
    for (const auto c : tenure->counts) {
      tenure_samples += c;
    }
    EXPECT_EQ(tenure_samples, elected) << alg;
  }
}

TEST(ObsDifferential, FaultCountersMatchInjectorTimeline) {
  MANET_REQUIRE_OBS();
  const auto r = scenario::run_scenario(faulted_scenario(),
                                        scenario::factory_by_name("mobic"));
  ASSERT_FALSE(r.metrics.empty());
  const auto activated = r.metrics.counter_or("fault.activated");
  const auto moot = r.metrics.counter_or("fault.moot");
  EXPECT_GT(activated, 0u);
  // The timeline records every activation, applied or moot.
  EXPECT_EQ(activated + moot, r.fault_timeline.size());
  // The convergence monitor is only notified of applied faults.
  EXPECT_EQ(activated, r.faults_injected);
  // Windows can at most all expire (some may still be open at sim end).
  EXPECT_LE(r.metrics.counter_or("fault.window_expired"), activated);
}

TEST(ObsDifferential, QueueDepthHistogramCoversTheRun) {
  MANET_REQUIRE_OBS();
  const auto r = scenario::run_scenario(lossy_scenario(),
                                        scenario::factory_by_name("mobic"));
  const auto* depth = r.metrics.histogram("event_queue.depth");
  ASSERT_NE(depth, nullptr);
  std::uint64_t samples = 0;
  for (const auto c : depth->counts) {
    samples += c;
  }
  // One sample every kQueueDepthSamplePeriod-th executed event.
  EXPECT_EQ(samples,
            r.events_executed / obs::SimHooks::kQueueDepthSamplePeriod);
}

// Tight batteries on a fault-free substrate: deaths are guaranteed, and
// every fault in the timeline can only come from the energy model.
scenario::Scenario energy_scenario() {
  scenario::Scenario s = lossy_scenario();
  s.propagation = "free_space";
  s.net.packet_loss = 0.0;
  s.energy.enabled = true;
  s.energy.capacity_j = 3.0;
  s.energy.capacity_jitter = 0.5;
  s.energy.idle_drain_w = 0.005;
  s.energy.hello_tx_cost_j = 0.02;
  s.energy.hello_rx_cost_j = 0.005;
  return s;
}

// Per-node conservation (drain == initial - residual) is checked live,
// mid-simulation, through the network's energy model; the totals identity
// is re-checked on the RunResult after settle_all closed the books.
TEST(ObsDifferential, EnergyDrainConservation) {
  MANET_REQUIRE_OBS();
  bool checked = false;
  const auto r = scenario::run_scenario(
      energy_scenario(), scenario::factory_by_name("sd_dwca"),
      [&checked](scenario::LiveContext& ctx) {
        ctx.sim.schedule_at(100.0, [&ctx, &checked] {
          const net::EnergyModel* e = ctx.network.energy();
          ASSERT_NE(e, nullptr);
          for (std::size_t i = 0; i < e->size(); ++i) {
            const auto node = static_cast<net::NodeId>(i);
            EXPECT_NEAR(e->drained_j(node),
                        e->initial_j(node) - e->residual_j(node), 1e-9)
                << "node " << i;
            EXPECT_GE(e->residual_j(node), 0.0) << "node " << i;
          }
          checked = true;
        });
      });
  EXPECT_TRUE(checked);
  EXPECT_GT(r.energy_initial_j, 0.0);
  EXPECT_GT(r.energy_drained_j, 0.0);
  EXPECT_NEAR(r.energy_drained_j, r.energy_initial_j - r.energy_residual_j,
              1e-6);
  EXPECT_GT(r.metrics.counter_or("energy.drain"), 0u);
}

TEST(ObsDifferential, BatteryDeathsLandExactlyOnceInTheTimeline) {
  MANET_REQUIRE_OBS();
  const auto r = scenario::run_scenario(energy_scenario(),
                                        scenario::factory_by_name("mobic"));
  std::vector<int> per_node(energy_scenario().n_nodes, 0);
  std::uint64_t deaths = 0;
  double last_at = 0.0;
  for (const auto& e : r.fault_timeline) {
    // Fault-free substrate: the energy model is the only fault source.
    ASSERT_EQ(e.kind, fault::FaultKind::kBatteryDepleted);
    ASSERT_LT(e.node, per_node.size());
    ++per_node[e.node];
    ++deaths;
    // Depletions are injected at drain time, so the timeline is in
    // simulation order.
    EXPECT_GE(e.at, last_at);
    last_at = e.at;
  }
  EXPECT_GT(deaths, 0u) << "no battery died: the checks above are vacuous";
  EXPECT_EQ(deaths, r.battery_deaths);
  for (std::size_t i = 0; i < per_node.size(); ++i) {
    EXPECT_LE(per_node[i], 1) << "node " << i << " depleted twice";
  }
  // The obs replica and the convergence monitor both saw every death (a
  // depletion always kills a live node, so none is moot).
  EXPECT_EQ(r.metrics.counter_or("energy.depleted"), r.battery_deaths);
  EXPECT_EQ(r.metrics.counter_or("fault.activated"), r.battery_deaths);
  EXPECT_EQ(r.metrics.counter_or("fault.moot"), 0u);
  EXPECT_EQ(r.faults_injected, r.battery_deaths);
}

TEST(ObsDifferential, EnergyRunsBitIdenticalAcrossJobs) {
  MANET_REQUIRE_OBS();
  scenario::RunnerOptions serial;
  serial.jobs = 1;
  scenario::RunnerOptions parallel;
  parallel.jobs = 8;
  const auto a = scenario::Runner(serial).replications(
      energy_scenario(), scenario::factory_by_name("sd_dwca"), 3);
  const auto b = scenario::Runner(parallel).replications(
      energy_scenario(), scenario::factory_by_name("sd_dwca"), 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GT(a[i].battery_deaths, 0u) << "replicate " << i;
    // Defaulted operator==: every field, energy accounting and fault
    // timeline included, must match bit for bit.
    EXPECT_TRUE(a[i] == b[i]) << "replicate " << i << " diverged";
  }
}

// The MRIP reduction: identical snapshots and an identical metrics JSONL for
// any worker count.
scenario::SweepSpec diff_spec() {
  scenario::SweepSpec spec;
  spec.base = lossy_scenario();
  spec.base.sim_time = 60.0;
  spec.xs = {80.0, 120.0};
  spec.configure = [](scenario::Scenario& s, double tx) { s.tx_range = tx; };
  spec.algorithms = scenario::paper_algorithms();
  spec.fields = {{"cs", scenario::field_ch_changes}};
  spec.replications = 2;
  return spec;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ObsDifferential, MetricsLogByteIdenticalAcrossJobs) {
  MANET_REQUIRE_OBS();
  std::string logs[2];
  const int jobs[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    scenario::RunnerOptions options;
    options.jobs = jobs[i];
    options.metrics_log_path = testing::TempDir() + "obs_metrics_j" +
                               std::to_string(jobs[i]) + ".jsonl";
    scenario::Runner runner(options);
    runner.run(diff_spec());
    logs[i] = read_file(options.metrics_log_path);
  }
  EXPECT_FALSE(logs[0].empty());
  EXPECT_EQ(logs[0], logs[1])
      << "metrics JSONL differs between --jobs 1 and --jobs 8";
  // 2 points x 2 algorithms x 2 replicates, one line each.
  EXPECT_EQ(static_cast<int>(
                std::count(logs[0].begin(), logs[0].end(), '\n')),
            8);
}

TEST(ObsDifferential, SnapshotsEqualAcrossJobs) {
  MANET_REQUIRE_OBS();
  scenario::RunnerOptions serial;
  serial.jobs = 1;
  scenario::RunnerOptions parallel;
  parallel.jobs = 8;
  const auto a = scenario::Runner(serial).replications(
      lossy_scenario(), scenario::factory_by_name("mobic"), 3);
  const auto b = scenario::Runner(parallel).replications(
      lossy_scenario(), scenario::factory_by_name("mobic"), 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FALSE(a[i].metrics.empty());
    EXPECT_EQ(a[i].metrics, b[i].metrics) << "replicate " << i;
  }
  // Different seeds must actually produce different counter streams (the
  // equality above is not vacuous).
  EXPECT_NE(a[0].metrics, a[1].metrics);
}

TEST(ObsDifferential, DisablingMetricsLeavesTheRunUntouched) {
  scenario::Scenario on = lossy_scenario();
  scenario::Scenario off = lossy_scenario();
  off.obs.metrics = false;
  const auto r_on =
      scenario::run_scenario(on, scenario::factory_by_name("mobic"));
  const auto r_off =
      scenario::run_scenario(off, scenario::factory_by_name("mobic"));
  EXPECT_TRUE(r_off.metrics.empty());
  // Metrics draw no RNG and schedule no events: the run is bit-identical.
  EXPECT_EQ(r_on.events_executed, r_off.events_executed);
  EXPECT_EQ(r_on.ch_changes, r_off.ch_changes);
  EXPECT_EQ(r_on.hellos_delivered, r_off.hellos_delivered);
  EXPECT_EQ(r_on.final_heads, r_off.final_heads);
}

}  // namespace
}  // namespace manet
