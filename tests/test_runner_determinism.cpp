// The Runner's core contract: output is bit-for-bit identical to a serial
// run regardless of thread count, exceptions surface deterministically, and
// the observability side channels (progress meter, run log, on_run hook)
// see every run. This test is also the tier-1 TSan workload (see
// MANET_SANITIZE in the top-level CMakeLists).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>

#include "scenario/runner.h"
#include "util/assert.h"
#include "util/progress.h"

namespace manet::scenario {
namespace {

SweepSpec small_spec() {
  SweepSpec spec;
  spec.base.n_nodes = 15;
  spec.base.fleet.field = geom::Rect(300.0, 300.0);
  spec.base.fleet.max_speed = 10.0;
  spec.base.tx_range = 100.0;
  spec.base.sim_time = 60.0;
  spec.base.warmup = 5.0;
  spec.base.seed = 3;
  spec.xs = {80.0, 150.0};
  spec.configure = [](Scenario& s, double tx) { s.tx_range = tx; };
  spec.algorithms = paper_algorithms();
  spec.fields = {{"cs", field_ch_changes},
                 {"clusters", field_avg_clusters}};
  spec.replications = 3;
  return spec;
}

SweepResult run_with_jobs(int jobs) {
  RunnerOptions opts;
  opts.jobs = jobs;
  return Runner(opts).run(small_spec());
}

void expect_identical(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.field_names, b.field_names);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points[i].x, b.points[i].x);
    ASSERT_EQ(a.points[i].algorithms.size(), b.points[i].algorithms.size());
    for (const auto& [name, cell] : a.points[i].algorithms) {
      ASSERT_TRUE(b.points[i].algorithms.count(name));
      const auto& other = b.points[i].algorithms.at(name);
      for (const auto& [field, agg] : cell.values) {
        EXPECT_DOUBLE_EQ(agg.mean, other.values.at(field).mean);
        EXPECT_DOUBLE_EQ(agg.half_width, other.values.at(field).half_width);
        EXPECT_EQ(agg.n, other.values.at(field).n);
      }
      // Raw per-seed samples must match *including ordering* — the reducer
      // works in canonical (point, algorithm, seed) order, never
      // completion order.
      for (const auto& [field, samples] : cell.raw) {
        EXPECT_EQ(samples, other.raw.at(field));
      }
    }
  }
}

TEST(RunnerDeterminismTest, IdenticalAcrossJobCounts) {
  const auto serial = run_with_jobs(1);
  expect_identical(serial, run_with_jobs(2));
  expect_identical(serial, run_with_jobs(8));
}

TEST(RunnerDeterminismTest, ReplicationsMatchSerialRuns) {
  auto s = small_spec().base;
  RunnerOptions opts;
  opts.jobs = 4;
  const auto parallel =
      Runner(opts).replications(s, factory_by_name("mobic"), 3);
  ASSERT_EQ(parallel.size(), 3u);
  for (int k = 0; k < 3; ++k) {
    auto one = s;
    one.seed = s.seed + static_cast<std::uint64_t>(k);
    const auto serial = run_scenario(one, factory_by_name("mobic"));
    EXPECT_EQ(parallel[static_cast<std::size_t>(k)].ch_changes,
              serial.ch_changes);
    EXPECT_EQ(parallel[static_cast<std::size_t>(k)].hellos_delivered,
              serial.hellos_delivered);
    EXPECT_DOUBLE_EQ(parallel[static_cast<std::size_t>(k)].avg_clusters,
                     serial.avg_clusters);
  }
}

TEST(RunnerDeterminismTest, RunMatrixFollowsInputOrder) {
  const auto spec = small_spec();
  RunnerOptions opts;
  opts.jobs = 4;
  const Runner runner(opts);
  const auto matrix = runner.run_matrix(spec.base, spec.algorithms, 2);
  ASSERT_EQ(matrix.size(), spec.algorithms.size());
  for (std::size_t a = 0; a < matrix.size(); ++a) {
    ASSERT_EQ(matrix[a].size(), 2u);
    const auto serial =
        runner.replications(spec.base, spec.algorithms[a].factory, 2);
    for (std::size_t k = 0; k < 2; ++k) {
      EXPECT_EQ(matrix[a][k].ch_changes, serial[k].ch_changes);
    }
  }
}

TEST(RunnerDeterminismTest, ExceptionsSurfaceDeterministically) {
  auto spec = small_spec();
  spec.algorithms.push_back(
      {"broken", [](cluster::ClusterEventSink*) -> cluster::ClusterOptions {
         throw std::runtime_error("factory exploded");
       }});
  for (const int jobs : {1, 4}) {
    RunnerOptions opts;
    opts.jobs = jobs;
    EXPECT_THROW(Runner(opts).run(spec), std::runtime_error) << jobs;
  }
}

TEST(RunnerDeterminismTest, ValidatesSpec) {
  const Runner runner;
  auto no_xs = small_spec();
  no_xs.xs.clear();
  EXPECT_THROW(runner.run(no_xs), util::CheckError);
  auto no_algs = small_spec();
  no_algs.algorithms.clear();
  EXPECT_THROW(runner.run(no_algs), util::CheckError);
  auto no_fields = small_spec();
  no_fields.fields.clear();
  EXPECT_THROW(runner.run(no_fields), util::CheckError);
  auto no_reps = small_spec();
  no_reps.replications = 0;
  EXPECT_THROW(runner.run(no_reps), util::CheckError);
  auto dup = small_spec();
  dup.algorithms.push_back(dup.algorithms.front());
  EXPECT_THROW(runner.run(dup), util::CheckError);
}

TEST(RunnerDeterminismTest, OnRunHookSeesEveryRun) {
  auto spec = small_spec();
  std::set<std::tuple<std::size_t, std::string, int>> seen;
  std::set<std::uint64_t> seeds;
  RunnerOptions opts;
  opts.jobs = 4;
  opts.on_run = [&](const RunRecord& rec) {
    ASSERT_NE(rec.result, nullptr);
    EXPECT_GE(rec.wall_seconds, 0.0);
    EXPECT_EQ(rec.seed,
              spec.base.seed + static_cast<std::uint64_t>(rec.replicate));
    seen.insert({rec.point_index, rec.algorithm, rec.replicate});
    seeds.insert(rec.seed);
  };
  Runner(opts).run(spec);
  EXPECT_EQ(seen.size(), spec.xs.size() * spec.algorithms.size() *
                             static_cast<std::size_t>(spec.replications));
  EXPECT_EQ(seeds.size(), static_cast<std::size_t>(spec.replications));
}

TEST(RunnerDeterminismTest, RunLogHasOneLinePerRun) {
  const std::string path = "runner_determinism_run_log.jsonl";
  std::remove(path.c_str());
  const auto spec = small_spec();
  {
    RunnerOptions opts;
    opts.jobs = 4;
    opts.run_log_path = path;
    Runner(opts).run(spec);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    // Cheap JSONL shape check.
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"algorithm\""), std::string::npos);
    EXPECT_NE(line.find("\"seed\""), std::string::npos);
    EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
  }
  EXPECT_EQ(lines, spec.xs.size() * spec.algorithms.size() *
                       static_cast<std::size_t>(spec.replications));
  std::remove(path.c_str());
}

TEST(RunnerDeterminismTest, RunLogRecordsErrorStatus) {
  const std::string path = "runner_determinism_error_log.jsonl";
  std::remove(path.c_str());
  auto spec = small_spec();
  spec.algorithms.push_back(
      {"broken", [](cluster::ClusterEventSink*) -> cluster::ClusterOptions {
         throw std::runtime_error("factory exploded");
       }});
  {
    // jobs=1 executes in canonical order, so the real algorithms of the
    // first point log "ok" lines before the appended broken one aborts.
    RunnerOptions opts;
    opts.jobs = 1;
    opts.run_log_path = path;
    EXPECT_THROW(Runner(opts).run(spec), std::runtime_error);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::size_t ok = 0;
  std::size_t error = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.find("\"status\":\"error\"") != std::string::npos) {
      ++error;
      EXPECT_NE(line.find("\"algorithm\":\"broken\""), std::string::npos);
      EXPECT_NE(line.find("factory exploded"), std::string::npos);
    } else {
      EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
      ++ok;
    }
  }
  EXPECT_GT(error, 0u);
  EXPECT_GT(ok, 0u);
  std::remove(path.c_str());
}

TEST(RunnerDeterminismTest, ResolveJobsPrecedence) {
  // Explicit request wins.
  EXPECT_EQ(Runner::resolve_jobs(4), 4);
  // Then $MANET_JOBS...
  ::setenv("MANET_JOBS", "3", 1);
  EXPECT_EQ(Runner::resolve_jobs(0), 3);
  EXPECT_EQ(Runner::resolve_jobs(2), 2);  // explicit still wins
  // ...garbage and non-positive values fall through to hardware.
  ::setenv("MANET_JOBS", "zero", 1);
  EXPECT_GE(Runner::resolve_jobs(0), 1);
  ::setenv("MANET_JOBS", "-2", 1);
  EXPECT_GE(Runner::resolve_jobs(0), 1);
  ::unsetenv("MANET_JOBS");
  EXPECT_GE(Runner::resolve_jobs(0), 1);
}

TEST(RunnerDeterminismTest, RunnerReportsResolvedJobs) {
  RunnerOptions opts;
  opts.jobs = 5;
  EXPECT_EQ(Runner(opts).jobs(), 5);
}

TEST(ProgressMeterTest, CountsRunsAndThroughput) {
  util::ProgressMeter meter;
  meter.start(4);
  meter.record_run(60.0, 0.5);
  meter.record_run(60.0, 1.5);
  const auto snap = meter.snapshot();
  EXPECT_EQ(snap.completed, 2u);
  EXPECT_EQ(snap.total, 4u);
  EXPECT_DOUBLE_EQ(snap.sim_seconds, 120.0);
  EXPECT_DOUBLE_EQ(snap.run_wall_s, 2.0);
  EXPECT_DOUBLE_EQ(snap.mean_run_wall_s(), 1.0);
  EXPECT_GE(snap.wall_elapsed_s, 0.0);
  if (snap.wall_elapsed_s > 0.0) {
    EXPECT_GT(snap.sim_rate(), 0.0);
  }
}

}  // namespace
}  // namespace manet::scenario
