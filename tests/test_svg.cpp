#include "util/svg.h"

#include <fstream>

#include <gtest/gtest.h>

#include "util/assert.h"

namespace manet::util {
namespace {

TEST(SvgTest, DocumentSkeleton) {
  SvgDocument svg(200.0, 100.0);
  const std::string s = svg.to_string();
  EXPECT_NE(s.find("<?xml"), std::string::npos);
  EXPECT_NE(s.find("width=\"200\""), std::string::npos);
  EXPECT_NE(s.find("height=\"100\""), std::string::npos);
  EXPECT_NE(s.find("</svg>"), std::string::npos);
  EXPECT_EQ(svg.elements(), 0u);
}

TEST(SvgTest, Elements) {
  SvgDocument svg(100.0, 100.0);
  svg.add_circle(10, 20, 5, "red");
  svg.add_rect(0, 0, 50, 50, "blue", "black", 2);
  svg.add_line(0, 0, 100, 100, "#333", 1.5, 0.5);
  svg.add_text(5, 95, "head", 10);
  svg.add_circle_outline(50, 50, 30, "green");
  EXPECT_EQ(svg.elements(), 5u);
  const std::string s = svg.to_string();
  EXPECT_NE(s.find("<circle cx=\"10\" cy=\"20\" r=\"5\" fill=\"red\""),
            std::string::npos);
  EXPECT_NE(s.find("<rect"), std::string::npos);
  EXPECT_NE(s.find("stroke-opacity=\"0.5\""), std::string::npos);
  EXPECT_NE(s.find(">head</text>"), std::string::npos);
  EXPECT_NE(s.find("stroke-dasharray"), std::string::npos);
}

TEST(SvgTest, EscapesText) {
  SvgDocument svg(10.0, 10.0);
  svg.add_text(0, 0, "a<b & c>d", 8);
  const std::string s = svg.to_string();
  EXPECT_NE(s.find("a&lt;b &amp; c&gt;d"), std::string::npos);
  EXPECT_EQ(s.find("a<b"), std::string::npos);
}

TEST(SvgTest, PaletteCyclesDeterministically) {
  EXPECT_EQ(SvgDocument::palette(0), SvgDocument::palette(12));
  EXPECT_NE(SvgDocument::palette(0), SvgDocument::palette(1));
  EXPECT_FALSE(SvgDocument::palette(5).empty());
}

TEST(SvgTest, SaveAndRejects) {
  SvgDocument svg(10.0, 10.0);
  svg.add_circle(5, 5, 2, "red");
  const std::string path = testing::TempDir() + "/manet_test.svg";
  svg.save(path);
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open());
  EXPECT_THROW(svg.save("/nonexistent-dir/x.svg"), CheckError);
  EXPECT_THROW(SvgDocument(0.0, 10.0), CheckError);
}

}  // namespace
}  // namespace manet::util
