// Random Waypoint — the paper's mobility model — plus the LegBasedModel
// contract.
#include <cmath>

#include <gtest/gtest.h>

#include "mobility/random_waypoint.h"
#include "util/assert.h"
#include "util/rng.h"

namespace manet::mobility {
namespace {

RandomWaypointParams paper_params(double max_speed = 20.0,
                                  double pause = 0.0) {
  RandomWaypointParams p;
  p.field = geom::Rect(670.0, 670.0);
  p.max_speed = max_speed;
  p.min_speed = 0.1;
  p.pause_time = pause;
  return p;
}

TEST(RandomWaypointTest, StaysInsideField) {
  RandomWaypoint m(paper_params(), util::Rng(1));
  for (double t = 0.0; t <= 900.0; t += 0.5) {
    EXPECT_TRUE(geom::Rect(670.0, 670.0).contains(m.position(t)))
        << "t=" << t;
  }
}

TEST(RandomWaypointTest, SpeedNeverExceedsMax) {
  RandomWaypoint m(paper_params(20.0), util::Rng(2));
  for (double t = 0.0; t <= 300.0; t += 0.25) {
    EXPECT_LE(m.velocity(t).norm(), 20.0 + 1e-9) << "t=" << t;
  }
}

TEST(RandomWaypointTest, DisplacementConsistentWithVelocity) {
  RandomWaypoint m(paper_params(), util::Rng(3));
  double t = 0.0;
  while (t < 100.0) {
    const geom::Vec2 p0 = m.position(t);
    const geom::Vec2 v = m.velocity(t);
    const double dt = 0.01;
    const geom::Vec2 p1 = m.position(t + dt);
    // Within one leg, displacement == velocity * dt; across a leg boundary
    // the velocity changed, so allow max_speed * dt slack.
    EXPECT_LE(geom::distance(p1, p0), 20.0 * dt + 1e-9);
    EXPECT_LE(geom::distance(p1, p0 + v * dt), 2.0 * 20.0 * dt);
    t += 1.0;
  }
}

TEST(RandomWaypointTest, DeterministicPerSeed) {
  RandomWaypoint a(paper_params(), util::Rng(7));
  RandomWaypoint b(paper_params(), util::Rng(7));
  for (double t = 0.0; t <= 200.0; t += 1.0) {
    EXPECT_EQ(a.position(t), b.position(t));
  }
}

TEST(RandomWaypointTest, DifferentSeedsDiverge) {
  RandomWaypoint a(paper_params(), util::Rng(7));
  RandomWaypoint b(paper_params(), util::Rng(8));
  EXPECT_NE(a.position(0.0), b.position(0.0));
}

TEST(RandomWaypointTest, PauseProducesStationaryIntervals) {
  // With pause >> travel time (slow field crossing at 20 m/s, pause 30 s)
  // there must be instants with zero velocity.
  RandomWaypoint m(paper_params(20.0, 30.0), util::Rng(5));
  int paused_samples = 0;
  for (double t = 0.0; t <= 900.0; t += 1.0) {
    if (m.velocity(t).norm() == 0.0) {
      ++paused_samples;
    }
  }
  EXPECT_GT(paused_samples, 30);  // at least one full pause observed
}

TEST(RandomWaypointTest, NoPauseMeansAlwaysMoving) {
  RandomWaypoint m(paper_params(20.0, 0.0), util::Rng(6));
  for (double t = 0.0; t <= 300.0; t += 1.0) {
    EXPECT_GT(m.velocity(t).norm(), 0.0) << "t=" << t;
  }
}

TEST(RandomWaypointTest, InitialPositionIsUniformDraw) {
  // Many seeds: initial positions should cover the field reasonably.
  double min_x = 1e9, max_x = -1e9;
  for (int s = 0; s < 50; ++s) {
    RandomWaypoint m(paper_params(), util::Rng(static_cast<std::uint64_t>(s)));
    const auto p = m.initial_position();
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    EXPECT_EQ(m.position(0.0), p);
  }
  EXPECT_LT(min_x, 200.0);
  EXPECT_GT(max_x, 470.0);
}

TEST(RandomWaypointTest, RejectsBadParams) {
  auto p = paper_params();
  p.max_speed = 0.0;
  EXPECT_THROW(RandomWaypoint(p, util::Rng(1)), util::CheckError);
  p = paper_params();
  p.min_speed = 0.0;
  EXPECT_THROW(RandomWaypoint(p, util::Rng(1)), util::CheckError);
  p = paper_params();
  p.min_speed = 30.0;  // > max
  EXPECT_THROW(RandomWaypoint(p, util::Rng(1)), util::CheckError);
  p = paper_params();
  p.pause_time = -1.0;
  EXPECT_THROW(RandomWaypoint(p, util::Rng(1)), util::CheckError);
}

TEST(RandomWaypointTest, LongHorizonRemainsStable) {
  RandomWaypoint m(paper_params(1.0), util::Rng(10));  // slow: many queries/leg
  geom::Vec2 last = m.position(0.0);
  for (double t = 0.0; t <= 3600.0; t += 10.0) {
    const auto p = m.position(t);
    EXPECT_TRUE(geom::Rect(670.0, 670.0).contains(p));
    EXPECT_LE(geom::distance(p, last), 1.0 * 10.0 + 1e-6);
    last = p;
  }
}

}  // namespace
}  // namespace manet::mobility
