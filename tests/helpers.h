// Shared test fixtures: hand-built static networks with attached clustering
// agents, so protocol tests can assert on exact topologies.
#pragma once

#include <memory>
#include <vector>

#include "cluster/agent.h"
#include "cluster/stats.h"
#include "geom/vec2.h"
#include "net/network.h"
#include "radio/medium.h"
#include "sim/simulator.h"

namespace manet::test {

/// A complete static-topology simulation: nodes at fixed positions, free
/// space radio calibrated to `range`, one clustering agent per node.
struct StaticWorld {
  sim::Simulator sim;
  std::unique_ptr<net::Network> network;
  std::vector<cluster::WeightedClusterAgent*> agents;
  cluster::ClusterStats stats{0.0};

  /// Runs `seconds` of simulated time.
  void run(double seconds) { sim.run_until(sim.now() + seconds); }

  const cluster::WeightedClusterAgent& agent(net::NodeId id) const {
    return *agents.at(id);
  }
  std::vector<const cluster::WeightedClusterAgent*> const_agents() const {
    return {agents.begin(), agents.end()};
  }

  /// Ids currently in Cluster_Head state.
  std::vector<net::NodeId> heads() const {
    std::vector<net::NodeId> out;
    for (std::size_t i = 0; i < agents.size(); ++i) {
      if (agents[i]->role() == cluster::Role::kHead) {
        out.push_back(static_cast<net::NodeId>(i));
      }
    }
    return out;
  }
};

/// Builds a StaticWorld. `options` is cloned per node with the world's
/// stats collector injected as sink. Positions must be non-negative.
std::unique_ptr<StaticWorld> make_static_world(
    const std::vector<geom::Vec2>& positions, double range,
    cluster::ClusterOptions options, std::uint64_t seed = 42);

/// The 10-node topology of the paper's Figure 1 shape: three Lowest-ID
/// clusters with heads {0, 1, 4} and gateways {8, 9} at range 100 m.
std::vector<geom::Vec2> figure1_positions();

}  // namespace manet::test
