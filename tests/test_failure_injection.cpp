// Failure injection: clusterhead crashes, mass failures, recovery, heavy
// packet loss — the clustering protocol must heal without manual resets.
#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "cluster/validation.h"
#include "helpers.h"

namespace manet::cluster {
namespace {

using test::figure1_positions;
using test::make_static_world;

TEST(FailureInjectionTest, DeadClusterheadIsReplaced) {
  auto world = make_static_world(figure1_positions(), 100.0,
                                 lowest_id_lcc_options());
  world->run(12.0);
  ASSERT_EQ(world->heads(), (std::vector<net::NodeId>{0, 1, 4}));

  // Kill head 0. Its members (2, 3, and possibly 8) must re-elect within a
  // few beacon rounds: the new head of that area is node 2 (lowest alive).
  world->network->node(0).fail();
  world->run(20.0);
  EXPECT_EQ(world->agent(2).role(), Role::kHead);
  EXPECT_EQ(world->agent(3).role(), Role::kMember);
  EXPECT_EQ(world->agent(3).cluster_head(), 2u);
  // Node 8 re-homed to a surviving head (1 or the new 2).
  EXPECT_EQ(world->agent(8).role(), Role::kMember);
  const auto h8 = world->agent(8).cluster_head();
  EXPECT_TRUE(h8 == 1u || h8 == 2u) << "head=" << h8;
}

TEST(FailureInjectionTest, RecoveredHeadRejoinsWithoutDisruption) {
  auto world = make_static_world(figure1_positions(), 100.0,
                                 lowest_id_lcc_options());
  world->run(12.0);
  world->network->node(0).fail();
  world->run(20.0);
  ASSERT_EQ(world->agent(2).role(), Role::kHead);

  // Node 0 comes back: it joins the standing cluster structure (its table
  // was cleared by the outage and it hears head 2) — the LCC rule means no
  // takeover happens even though 0 has the lowest id.
  world->network->node(0).recover();
  world->run(20.0);
  EXPECT_TRUE(world->network->node(0).alive());
  EXPECT_EQ(world->agent(0).role(), Role::kMember);
  EXPECT_EQ(world->agent(0).cluster_head(), 2u);
  EXPECT_EQ(world->agent(2).role(), Role::kHead);
}

TEST(FailureInjectionTest, MassFailureLeavesSurvivorsConsistent) {
  auto world = make_static_world(figure1_positions(), 100.0,
                                 mobic_options());
  world->run(16.0);
  // Kill over half the network, including two heads.
  for (const net::NodeId id : {0u, 1u, 3u, 5u, 6u, 9u}) {
    world->network->node(id).fail();
  }
  world->run(30.0);
  // Survivors: 2, 4, 7, 8. All decided, and the Theorem-1 invariants hold
  // among the living.
  std::vector<net::NodeId> alive = {2, 4, 7, 8};
  for (const auto id : alive) {
    EXPECT_NE(world->agent(id).role(), Role::kUndecided) << "node " << id;
    if (world->agent(id).role() == Role::kMember) {
      const auto head = world->agent(id).cluster_head();
      EXPECT_TRUE(world->network->node(head).alive())
          << "node " << id << " affiliated to dead head " << head;
    }
  }
}

TEST(FailureInjectionTest, HeavyPacketLossStillConverges) {
  // 30% independent loss: neighbor entries flap, M samples are often
  // excluded (the successive-pair rule), yet clustering must still settle.
  sim::Simulator sim;
  util::Rng root(21);
  net::NetworkParams params;
  params.packet_loss = 0.3;
  net::Network network(sim, radio::make_paper_medium(100.0),
                       geom::Rect(600.0, 400.0), params,
                       root.substream("net"));
  ClusterStats stats(0.0);
  auto options = mobic_options(&stats);
  std::vector<const WeightedClusterAgent*> agents;
  const auto positions = figure1_positions();
  for (std::size_t i = 0; i < positions.size(); ++i) {
    auto node = std::make_unique<net::Node>(
        static_cast<net::NodeId>(i),
        std::make_unique<mobility::StaticModel>(positions[i]),
        root.substream("node", i));
    auto agent = std::make_unique<WeightedClusterAgent>(options);
    agents.push_back(agent.get());
    node->set_agent(std::move(agent));
    network.add_node(std::move(node));
  }
  network.start();
  sim.run_until(120.0);
  std::size_t undecided = 0;
  for (const auto* a : agents) {
    undecided += a->role() == Role::kUndecided ? 1 : 0;
  }
  EXPECT_EQ(undecided, 0u);
  // Losses actually happened.
  EXPECT_GT(network.stats().hellos_lost, 100u);
}

TEST(FailureInjectionTest, CollisionWindowDegradesButDoesNotWedge) {
  // A (too large) collision window destroys many hellos; the protocol must
  // still elect heads everywhere.
  sim::Simulator sim;
  util::Rng root(22);
  net::NetworkParams params;
  params.collision_window = 0.05;  // 50 ms — hundreds of times realistic
  net::Network network(sim, radio::make_paper_medium(120.0),
                       geom::Rect(600.0, 400.0), params,
                       root.substream("net"));
  std::vector<const WeightedClusterAgent*> agents;
  const auto positions = figure1_positions();
  for (std::size_t i = 0; i < positions.size(); ++i) {
    auto node = std::make_unique<net::Node>(
        static_cast<net::NodeId>(i),
        std::make_unique<mobility::StaticModel>(positions[i]),
        root.substream("node", i));
    auto agent =
        std::make_unique<WeightedClusterAgent>(lowest_id_lcc_options());
    agents.push_back(agent.get());
    node->set_agent(std::move(agent));
    network.add_node(std::move(node));
  }
  network.start();
  sim.run_until(120.0);
  for (const auto* a : agents) {
    EXPECT_NE(a->role(), Role::kUndecided);
  }
}

}  // namespace
}  // namespace manet::cluster
