// The paper's mobility metrics (eqs. 1 and 2) and the geometric baseline.
#include <cmath>

#include <gtest/gtest.h>

#include "metrics/aggregate_mobility.h"
#include "metrics/geometric.h"
#include "metrics/relative_mobility.h"
#include "util/assert.h"

namespace manet::metrics {
namespace {

net::HelloPacket hello(net::NodeId sender, std::uint32_t seq) {
  net::HelloPacket p;
  p.sender = sender;
  p.seq = seq;
  return p;
}

TEST(RelativeMobilityTest, Equation1Values) {
  // Power ratio 10x -> +10 dB; 0.1x -> -10 dB; equal -> 0.
  EXPECT_NEAR(relative_mobility_db(1e-8, 1e-9), 10.0, 1e-12);
  EXPECT_NEAR(relative_mobility_db(1e-9, 1e-8), -10.0, 1e-12);
  EXPECT_DOUBLE_EQ(relative_mobility_db(5e-9, 5e-9), 0.0);
}

TEST(RelativeMobilityTest, SignConvention) {
  // Approaching (power grows) -> positive; receding -> negative (§3.1).
  EXPECT_GT(relative_mobility_db(2e-9, 1e-9), 0.0);
  EXPECT_LT(relative_mobility_db(1e-9, 2e-9), 0.0);
}

TEST(RelativeMobilityTest, FriisDistanceForm) {
  // Under free space Pr ∝ d^-2, so M_rel = 20*log10(d_old/d_new):
  // halving the distance gives +6.02 dB.
  const double p_old = 1.0 / (100.0 * 100.0);
  const double p_new = 1.0 / (50.0 * 50.0);
  EXPECT_NEAR(relative_mobility_db(p_new, p_old), 20.0 * std::log10(2.0),
              1e-12);
}

TEST(RelativeMobilityTest, InvariantUnderPowerScaling) {
  // The metric is a *ratio*, so it is independent of transmit power,
  // antenna gains and any multiplicative channel constant — the property
  // that makes it deployable without calibration (§3.1). Parameterized
  // sweep over scales.
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double a = rng.uniform(1e-12, 1e-6);
    const double b = rng.uniform(1e-12, 1e-6);
    const double k = rng.uniform(1e-3, 1e3);
    EXPECT_NEAR(relative_mobility_db(k * a, k * b),
                relative_mobility_db(a, b), 1e-9);
  }
}

TEST(RelativeMobilityTest, AntisymmetricInSwap) {
  // Swapping old/new flips the sign: receding is the mirror of
  // approaching.
  util::Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const double a = rng.uniform(1e-12, 1e-6);
    const double b = rng.uniform(1e-12, 1e-6);
    EXPECT_NEAR(relative_mobility_db(a, b), -relative_mobility_db(b, a),
                1e-9);
  }
}

TEST(RelativeMobilityTest, RejectsNonPositivePowers) {
  EXPECT_THROW(relative_mobility_db(0.0, 1e-9), util::CheckError);
  EXPECT_THROW(relative_mobility_db(1e-9, -1.0), util::CheckError);
}

TEST(CollectTest, RequiresSuccessivePair) {
  net::NeighborTable t;
  t.on_hello(0.0, hello(1, 1), 1e-9);  // only one reception
  EXPECT_TRUE(collect_relative_mobility(t, 2.0, 3.0, 3.0).empty());

  t.on_hello(2.0, hello(1, 2), 2e-9);
  const auto samples = collect_relative_mobility(t, 2.0, 3.0, 3.0);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_NEAR(samples[0], 10.0 * std::log10(2.0), 1e-12);
}

TEST(CollectTest, ExcludesNodesThatSkippedABeacon) {
  net::NeighborTable t;
  t.on_hello(0.0, hello(1, 1), 1e-9);
  t.on_hello(4.0, hello(1, 3), 2e-9);  // 4 s gap > max_gap 3 s
  EXPECT_TRUE(collect_relative_mobility(t, 4.0, 3.0, 3.0).empty());
}

TEST(CollectTest, ExcludesDepartedNeighbors) {
  net::NeighborTable t;
  t.on_hello(0.0, hello(1, 1), 1e-9);
  t.on_hello(2.0, hello(1, 2), 2e-9);
  // Last heard 5 s ago at now=7 with timeout 3 -> gone.
  EXPECT_TRUE(collect_relative_mobility(t, 7.0, 3.0, 3.0).empty());
}

TEST(CollectTest, OneSamplePerEligibleNeighborSortedById) {
  net::NeighborTable t;
  for (const net::NodeId id : {5u, 2u, 9u}) {
    t.on_hello(0.0, hello(id, 1), 1e-9);
    t.on_hello(2.0, hello(id, 2),
               id == 2 ? 4e-9 : 1e-9);  // node 2 approaches, others static
  }
  const auto samples = collect_relative_mobility(t, 2.0, 3.0, 3.0);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_NEAR(samples[0], 10.0 * std::log10(4.0), 1e-12);  // id 2 first
  EXPECT_DOUBLE_EQ(samples[1], 0.0);
  EXPECT_DOUBLE_EQ(samples[2], 0.0);
}

TEST(AggregateTest, Equation2IsVar0) {
  const std::vector<double> samples = {3.0, -3.0, 0.0};
  EXPECT_DOUBLE_EQ(aggregate_mobility(samples), 6.0);
  EXPECT_DOUBLE_EQ(aggregate_mobility({}), 0.0);
}

TEST(AggregateTest, StaticNeighborhoodScoresZero) {
  const std::vector<double> samples = {0.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(aggregate_mobility(samples), 0.0);
}

TEST(EstimatorTest, InitialValueIsZero) {
  AggregateMobilityEstimator est;
  EXPECT_DOUBLE_EQ(est.value(), 0.0);  // the paper's initial M
}

TEST(EstimatorTest, MemorylessTracksCurrentRound) {
  AggregateMobilityEstimator est;  // alpha = 1 by default
  net::NeighborTable t;
  t.on_hello(0.0, hello(1, 1), 1e-9);
  t.on_hello(2.0, hello(1, 2), 1e-8);  // +10 dB
  EXPECT_NEAR(est.update(t, 2.0), 100.0, 1e-9);
  EXPECT_EQ(est.last_sample_count(), 1u);

  t.on_hello(4.0, hello(1, 3), 1e-8);  // now static: 0 dB
  EXPECT_DOUBLE_EQ(est.update(t, 4.0), 0.0);
}

TEST(EstimatorTest, EwmaSmoothsHistory) {
  AggregateMobilityConfig cfg;
  cfg.ewma_alpha = 0.5;
  AggregateMobilityEstimator est(cfg);
  net::NeighborTable t;
  t.on_hello(0.0, hello(1, 1), 1e-9);
  t.on_hello(2.0, hello(1, 2), 1e-8);   // M_now = 100
  EXPECT_NEAR(est.update(t, 2.0), 100.0, 1e-9);  // first sample seeds
  t.on_hello(4.0, hello(1, 3), 1e-8);   // M_now = 0
  EXPECT_NEAR(est.update(t, 4.0), 50.0, 1e-9);   // 0.5*0 + 0.5*100
  t.on_hello(6.0, hello(1, 4), 1e-8);
  EXPECT_NEAR(est.update(t, 6.0), 25.0, 1e-9);
}

TEST(EstimatorTest, HoldOnEmptyKeepsLastValue) {
  AggregateMobilityEstimator est;
  net::NeighborTable t;
  t.on_hello(0.0, hello(1, 1), 1e-9);
  t.on_hello(2.0, hello(1, 2), 1e-8);
  est.update(t, 2.0);
  // Neighbor gone: no eligible samples, estimate holds.
  EXPECT_NEAR(est.update(t, 20.0), 100.0, 1e-9);
  EXPECT_EQ(est.last_sample_count(), 0u);
}

TEST(EstimatorTest, ResetOnEmptyWhenConfigured) {
  AggregateMobilityConfig cfg;
  cfg.hold_on_empty = false;
  AggregateMobilityEstimator est(cfg);
  net::NeighborTable t;
  t.on_hello(0.0, hello(1, 1), 1e-9);
  t.on_hello(2.0, hello(1, 2), 1e-8);
  est.update(t, 2.0);
  EXPECT_DOUBLE_EQ(est.update(t, 20.0), 0.0);
}

TEST(EstimatorTest, ResetClearsState) {
  AggregateMobilityEstimator est;
  net::NeighborTable t;
  t.on_hello(0.0, hello(1, 1), 1e-9);
  t.on_hello(2.0, hello(1, 2), 1e-8);
  est.update(t, 2.0);
  est.reset();
  EXPECT_DOUBLE_EQ(est.value(), 0.0);
}

TEST(EstimatorTest, RejectsBadConfig) {
  AggregateMobilityConfig cfg;
  cfg.ewma_alpha = 0.0;
  EXPECT_THROW(AggregateMobilityEstimator{cfg}, util::CheckError);
  cfg = {};
  cfg.ewma_alpha = 1.5;
  EXPECT_THROW(AggregateMobilityEstimator{cfg}, util::CheckError);
}

// --- Geometric baseline ----------------------------------------------------

mobility::PiecewiseLinearTrack line_track(geom::Vec2 from, geom::Vec2 v,
                                          double duration) {
  mobility::PiecewiseLinearTrack t;
  t.append(0.0, from);
  t.append(duration, from + v * duration);
  return t;
}

TEST(GeometricTest, PairwiseRelativeSpeed) {
  const auto a = line_track({0.0, 0.0}, {10.0, 0.0}, 100.0);
  const auto b = line_track({50.0, 0.0}, {-10.0, 0.0}, 100.0);
  EXPECT_NEAR(pairwise_relative_speed(a, b, 50.0), 20.0, 1e-12);
}

TEST(GeometricTest, ParallelMotionScoresZero) {
  const auto a = line_track({0.0, 0.0}, {7.0, 3.0}, 100.0);
  const auto b = line_track({10.0, 10.0}, {7.0, 3.0}, 100.0);
  std::vector<mobility::PiecewiseLinearTrack> tracks = {a, b};
  EXPECT_NEAR(geometric_mobility_metric(tracks, 90.0, 1.0), 0.0, 1e-12);
}

TEST(GeometricTest, MetricAveragesOverPairs) {
  const auto a = line_track({0.0, 0.0}, {10.0, 0.0}, 100.0);
  const auto b = line_track({0.0, 10.0}, {10.0, 0.0}, 100.0);   // rel 0 to a
  const auto c = line_track({0.0, 20.0}, {-10.0, 0.0}, 100.0);  // rel 20
  std::vector<mobility::PiecewiseLinearTrack> tracks = {a, b, c};
  // Pairs: (a,b)=0, (a,c)=20, (b,c)=20 -> mean 40/3.
  EXPECT_NEAR(geometric_mobility_metric(tracks, 90.0, 1.0), 40.0 / 3.0,
              1e-9);
}

TEST(GeometricTest, RequiresTwoTracks) {
  std::vector<mobility::PiecewiseLinearTrack> one(1);
  EXPECT_THROW(geometric_mobility_metric(one, 10.0, 1.0), util::CheckError);
}

TEST(LinkStatsTest, CountsLinkEpisodes) {
  // b crosses a's 100 m disk: link up while |x_b - x_a| <= 100.
  const auto a = line_track({500.0, 0.0}, {0.0, 0.0}, 100.0);
  const auto b = line_track({0.0, 0.0}, {10.0, 0.0}, 100.0);
  std::vector<mobility::PiecewiseLinearTrack> tracks = {a, b};
  const auto s = link_stats(tracks, 100.0, 100.0, 1.0);
  // Link comes up at t=40 and the run ends at 100 with it still up
  // (b at x=1000? no: b reaches 1000 at t=100 -> |1000-500|=500, so the
  // link breaks at t=60 when b passes 600). Up-window: [40, 60].
  EXPECT_EQ(s.links_observed, 1u);
  EXPECT_EQ(s.link_changes, 2u);  // one up + one down transition
  EXPECT_NEAR(s.mean_link_lifetime, 21.0, 1.5);  // ~[40,61) sampled at 1 s
  EXPECT_GT(s.mean_degree, 0.0);
  EXPECT_LT(s.mean_degree, 1.0);
}

TEST(LinkStatsTest, StaticPairInRangeForever) {
  const auto a = line_track({0.0, 0.0}, {0.0, 0.0}, 50.0);
  const auto b = line_track({10.0, 0.0}, {0.0, 0.0}, 50.0);
  std::vector<mobility::PiecewiseLinearTrack> tracks = {a, b};
  const auto s = link_stats(tracks, 100.0, 50.0, 1.0);
  EXPECT_EQ(s.links_observed, 1u);
  EXPECT_EQ(s.link_changes, 0u);
  EXPECT_NEAR(s.mean_link_lifetime, 50.0, 1e-9);
  EXPECT_NEAR(s.mean_degree, 1.0, 1e-9);
}

TEST(LinkStatsTest, FewerThanTwoTracksIsEmpty) {
  std::vector<mobility::PiecewiseLinearTrack> one(1);
  one[0].append(0.0, {0.0, 0.0});
  const auto s = link_stats(one, 100.0, 10.0, 1.0);
  EXPECT_EQ(s.links_observed, 0u);
}

}  // namespace
}  // namespace manet::metrics
