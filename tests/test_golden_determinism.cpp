// Golden determinism guard for the simulator core.
//
// Runs a fixed-seed Figure-3-style sweep and a resilience-churn slice
// through the parallel Runner with a JSONL run log, canonicalizes the log
// (wall-clock stripped, lines sorted — completion order is scheduling-
// dependent under jobs > 1) and hashes it. The hashes must be
//   (a) identical for --jobs 1 and --jobs 8, and
//   (b) equal to the golden constants below, which were recorded from the
//       pre-slab-queue implementation — any change to event ordering, RNG
//       draw sequences, or delivery semantics shows up here.
//
// If a hash changes, that is bit-visible behavior drift: do not rebaseline
// without understanding exactly which contract moved.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/reporting.h"
#include "scenario/runner.h"
#include "util/rng.h"

namespace manet {
namespace {

// Golden hashes recorded from the seed implementation (priority_queue +
// unordered_set + per-receiver delivery events); see file comment.
constexpr std::uint64_t kFig3GoldenHash = 0x84e98c714541ed06ULL;
constexpr std::uint64_t kChurnGoldenHash = 0x2cbb627caae77921ULL;
// Composite-weight protocols (CCI, SD_DWCA) under the battery model:
// covers the utility-vector election path, energy drains/depletions and
// the kBatteryDepleted injection path in one slice.
constexpr std::uint64_t kCompositeEnergyGoldenHash = 0x072460f7e161b7c0ULL;

std::string temp_log_path(const std::string& tag) {
  return testing::TempDir() + "golden_" + tag + ".jsonl";
}

// Removes the volatile wall-clock field from one JSONL record.
std::string strip_wall(const std::string& line) {
  std::string out;
  out.reserve(line.size());
  std::size_t i = 0;
  while (i < line.size()) {
    if (line.compare(i, 9, "\"wall_s\":") == 0) {
      i += 9;
      while (i < line.size() && line[i] != ',' && line[i] != '}') {
        ++i;
      }
      if (i < line.size() && line[i] == ',') {
        ++i;  // drop the trailing comma too
      }
      continue;
    }
    out.push_back(line[i]);
    ++i;
  }
  return out;
}

std::uint64_t canonical_log_hash(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(strip_wall(line));
  }
  EXPECT_FALSE(lines.empty()) << path;
  std::sort(lines.begin(), lines.end());
  std::string canon;
  for (const std::string& l : lines) {
    canon += l;
    canon.push_back('\n');
  }
  return util::hash_name(canon);
}

scenario::SweepSpec fig3_spec() {
  scenario::SweepSpec spec;
  spec.base = scenario::paper_scenario();
  spec.base.sim_time = 60.0;
  spec.xs = {100.0, 250.0};
  spec.configure = [](scenario::Scenario& s, double tx) { s.tx_range = tx; };
  spec.algorithms = scenario::paper_algorithms();
  spec.fields = {{"cs", scenario::field_ch_changes}};
  spec.replications = 2;
  return spec;
}

scenario::SweepSpec churn_spec() {
  scenario::SweepSpec spec;
  spec.base = scenario::paper_scenario();
  spec.base.sim_time = 120.0;
  spec.xs = {1.0, 3.0};
  spec.configure = [](scenario::Scenario& s, double crashes_per_100s) {
    s.faults.begin = 30.0;
    s.faults.end = 90.0;
    s.faults.crash_rate = crashes_per_100s / 100.0;
    s.faults.mean_downtime = 30.0;
    s.faults.loss_burst_rate = 0.02;
    s.faults.loss_burst_duration = 8.0;
    s.faults.loss_burst_probability = 0.9;
  };
  spec.algorithms = scenario::paper_algorithms();
  spec.fields = {{"recovery", scenario::field_mean_recovery},
                 {"cs", scenario::field_ch_changes}};
  spec.replications = 2;
  return spec;
}

scenario::SweepSpec composite_energy_spec() {
  scenario::SweepSpec spec;
  spec.base = scenario::paper_scenario();
  spec.base.sim_time = 60.0;
  // Tight batteries so depletions (and their injected faults) happen inside
  // the 60 s slice at the dense point.
  spec.base.energy.enabled = true;
  spec.base.energy.capacity_j = 4.0;
  spec.base.energy.capacity_jitter = 0.5;
  spec.base.energy.idle_drain_w = 0.01;
  spec.base.energy.hello_tx_cost_j = 0.02;
  spec.base.energy.hello_rx_cost_j = 0.005;
  spec.xs = {100.0, 250.0};
  spec.configure = [](scenario::Scenario& s, double tx) { s.tx_range = tx; };
  spec.algorithms = {{"cci", scenario::factory_by_name("cci")},
                     {"sd_dwca", scenario::factory_by_name("sd_dwca")}};
  spec.fields = {{"cs", scenario::field_ch_changes},
                 {"deaths", scenario::field_battery_deaths}};
  spec.replications = 2;
  return spec;
}

// Runs `spec` with the given jobs count, logging to a JSONL file; returns
// the canonical hash of the log.
std::uint64_t run_and_hash(const scenario::SweepSpec& spec, int jobs,
                           const std::string& tag) {
  scenario::RunnerOptions options;
  options.jobs = jobs;
  options.run_log_path = temp_log_path(tag);
  scenario::Runner runner(options);
  const scenario::SweepResult result = runner.run(spec);
  EXPECT_EQ(result.points.size(), spec.xs.size());
  return canonical_log_hash(options.run_log_path);
}

TEST(GoldenDeterminism, Fig3RunLogStableAcrossJobsAndRefactors) {
  const std::uint64_t h1 = run_and_hash(fig3_spec(), 1, "fig3_j1");
  const std::uint64_t h8 = run_and_hash(fig3_spec(), 8, "fig3_j8");
  EXPECT_EQ(h1, h8) << "fig3 run log differs between --jobs 1 and --jobs 8";
  EXPECT_EQ(h1, kFig3GoldenHash)
      << "fig3 golden hash moved: actual 0x" << std::hex << h1;
}

TEST(GoldenDeterminism, ResilienceChurnRunLogStableAcrossJobsAndRefactors) {
  const std::uint64_t h1 = run_and_hash(churn_spec(), 1, "churn_j1");
  const std::uint64_t h8 = run_and_hash(churn_spec(), 8, "churn_j8");
  EXPECT_EQ(h1, h8) << "churn run log differs between --jobs 1 and --jobs 8";
  EXPECT_EQ(h1, kChurnGoldenHash)
      << "churn golden hash moved: actual 0x" << std::hex << h1;
}

TEST(GoldenDeterminism, CompositeEnergyRunLogStableAcrossJobsAndRefactors) {
  const std::uint64_t h1 = run_and_hash(composite_energy_spec(), 1, "ce_j1");
  const std::uint64_t h8 = run_and_hash(composite_energy_spec(), 8, "ce_j8");
  EXPECT_EQ(h1, h8)
      << "composite/energy run log differs between --jobs 1 and --jobs 8";
  EXPECT_EQ(h1, kCompositeEnergyGoldenHash)
      << "composite/energy golden hash moved: actual 0x" << std::hex << h1;
}

// Same-seed scenarios must also be bit-identical when run twice in one
// process (no hidden global state in the core).
TEST(GoldenDeterminism, RepeatedRunsShareOneHash) {
  const std::uint64_t a = run_and_hash(fig3_spec(), 1, "fig3_rep_a");
  const std::uint64_t b = run_and_hash(fig3_spec(), 1, "fig3_rep_b");
  EXPECT_EQ(a, b);
}

// The jobs-invariance property must hold for ANY base seed, not just the
// golden one. Default is a cheap 2-seed smoke; the nightly CI sweep sets
// MANET_GOLDEN_SEEDS=16.
TEST(GoldenDeterminism, SeedSweepStaysJobsInvariant) {
  const char* env = std::getenv("MANET_GOLDEN_SEEDS");
  const int requested = env == nullptr ? 0 : std::atoi(env);
  const int seeds = requested > 0 ? requested : 2;
  for (int k = 0; k < seeds; ++k) {
    scenario::SweepSpec spec = fig3_spec();
    spec.base.seed = 1000 + 17 * static_cast<std::uint64_t>(k);
    spec.base.sim_time = 30.0;
    const std::string tag = "sweep_s" + std::to_string(k);
    const std::uint64_t h1 = run_and_hash(spec, 1, tag + "_j1");
    const std::uint64_t h8 = run_and_hash(spec, 8, tag + "_j8");
    EXPECT_EQ(h1, h8) << "run log differs across jobs at base seed "
                      << spec.base.seed;
  }
}

// Same sweep over the energy-enabled composite spec: battery-depletion
// timing and the Pareto-filtered elections must stay jobs-invariant at any
// base seed, not just the golden one (nightly widens to 16 seeds).
TEST(GoldenDeterminism, EnergyCompositeSeedSweepStaysJobsInvariant) {
  const char* env = std::getenv("MANET_GOLDEN_SEEDS");
  const int requested = env == nullptr ? 0 : std::atoi(env);
  const int seeds = requested > 0 ? requested : 2;
  for (int k = 0; k < seeds; ++k) {
    scenario::SweepSpec spec = composite_energy_spec();
    spec.base.seed = 4000 + 17 * static_cast<std::uint64_t>(k);
    spec.base.sim_time = 30.0;
    const std::string tag = "ce_sweep_s" + std::to_string(k);
    const std::uint64_t h1 = run_and_hash(spec, 1, tag + "_j1");
    const std::uint64_t h8 = run_and_hash(spec, 8, tag + "_j8");
    EXPECT_EQ(h1, h8) << "energy run log differs across jobs at base seed "
                      << spec.base.seed;
  }
}

}  // namespace
}  // namespace manet
