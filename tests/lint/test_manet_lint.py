#!/usr/bin/env python3
"""Self-tests for scripts/lint/manet_lint.py.

Driven by ctest (see tests/CMakeLists.txt) with python3 + unittest only —
no pytest dependency. Three layers:

  1. Fixture tree (tests/lint/fixtures/tree): known-bad files must fire the
     expected rule at the expected site, known-clean files must stay silent,
     suppression and allowlist boundaries behave exactly as documented.
     The bad_agent_prefix fixture replicates the pre-fix
     src/cluster/agent.cpp contention loops, proving the tree as it stood
     before the determinism fixes would have failed the unordered-iter rule.
     The thread-role fixtures seed an indirect cross-TU worker->RNG chain
     (must be detected with the full call chain), a justified suppression,
     and a role-agnostic barrier (must stay silent).
  2. The real repository: `manet_lint.py --werror src` must pass clean.
  3. Suppression budget: the number of `manet-lint: allow(...)` comments
     under src/ is pinned to the current count so it can only shrink (raise
     the pin only with a justification in the PR).
"""

import os
import re
import subprocess
import sys
import unittest

TEST_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.abspath(os.path.join(TEST_DIR, "..", ".."))
LINTER = os.path.join(REPO_ROOT, "scripts", "lint", "manet_lint.py")
FIXTURE_ROOT = os.path.join(TEST_DIR, "fixtures", "tree")

# The suppression budget: every entry must carry a one-line justification.
# This pin can only go DOWN; raising it requires a documented decision.
# History: 2 -> 1 when the beacon fallback path in net/node.cpp moved to a
# pooled HelloPacket and no longer needed its hot-path suppression.
# History: 1 -> 0 when InplaceEvent's heap fallback for oversized captures
# became a static_assert (every event callback now provably fits inline).
MAX_SUPPRESSIONS_IN_SRC = 0


def run_lint(*args):
    """Runs the linter; returns (exit_code, stdout_lines, stderr)."""
    proc = subprocess.run(
        [sys.executable, LINTER, *args],
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout.splitlines(), proc.stderr


def findings_of(lines):
    """Parses `path:line: [rule] message` records."""
    out = []
    pat = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>[\w-]+)\] "
                     r"(?P<msg>.*)$")
    for line in lines:
        m = pat.match(line)
        if m:
            out.append((m.group("path"), int(m.group("line")),
                        m.group("rule")))
    return out


class FixtureTreeTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        code, lines, _ = run_lint("--root", FIXTURE_ROOT, "src")
        cls.exit_code = code
        cls.findings = findings_of(lines)
        cls.by_file = {}
        for path, line, rule in cls.findings:
            cls.by_file.setdefault(path, []).append((line, rule))

    def rules_in(self, path):
        return [r for _, r in self.by_file.get(path, [])]

    def test_regression_prefix_agent_pattern_fails(self):
        # The miniature of pre-fix agent.cpp: iterator-erase loop + two
        # range-fors over the unordered member declared in the HEADER.
        rules = self.rules_in("src/cluster/bad_agent_prefix.cpp")
        self.assertEqual(rules, ["unordered-iter"] * 3,
                         f"expected 3 unordered-iter findings, got "
                         f"{self.by_file.get('src/cluster/bad_agent_prefix.cpp')}")
        lines = [l for l, _ in
                 self.by_file["src/cluster/bad_agent_prefix.cpp"]]
        self.assertIn(12, lines)  # for (auto it = contention_.begin(); ...
        self.assertIn(23, lines)  # winner scan range-for
        self.assertIn(29, lines)  # trace range-for

    def test_alias_declarations_resolve(self):
        self.assertEqual(self.rules_in("src/cluster/bad_alias_iter.cpp"),
                         ["unordered-iter"])

    def test_wall_clock_fires_and_ignores_comments_strings_members(self):
        hits = self.by_file.get("src/mobility/bad_wallclock.cpp", [])
        self.assertEqual([r for _, r in hits], ["wall-clock"] * 3)

    def test_global_rng_fires(self):
        self.assertEqual(self.rules_in("src/mobility/bad_rng.cpp"),
                         ["global-rng"] * 3)

    def test_io_discipline_fires_only_on_direct_streams(self):
        self.assertEqual(self.rules_in("src/routing/bad_io.cpp"),
                         ["io-discipline"] * 3)

    def test_hot_path_fires_but_not_on_placement_new(self):
        self.assertEqual(sorted(self.rules_in("src/sim/bad_hotpath.cpp")),
                         ["hot-path"] * 3)

    def test_clean_files_are_silent(self):
        for clean in ("src/cluster/clean_sorted.cpp",
                      "src/net/clean_hotpath.cpp"):
            self.assertEqual(self.by_file.get(clean, []), [],
                             f"{clean} should be finding-free")

    def test_allowlist_boundaries(self):
        # Inside the allowlists: silent.
        for allowed in ("src/util/progress_meter.cpp",
                        "src/scenario/runner_extra.cpp",
                        "src/util/rng_seeder.cpp"):
            self.assertEqual(self.by_file.get(allowed, []), [],
                             f"{allowed} is allowlisted")
        # One directory over: still banned.
        self.assertEqual(
            self.rules_in("src/scenario/bad_timeline_clock.cpp"),
            ["wall-clock"])

    def test_justified_suppressions_silence(self):
        self.assertEqual(self.by_file.get("src/sim/suppressed_ok.cpp", []),
                         [])

    def test_thread_role_detects_indirect_cross_tu_chain(self):
        # Worker-safe root (net/) -> unannotated helper defined in another
        # TU (geom/) -> commit-only RNG draw (util/). Anchored at the
        # root's call site.
        hits = self.by_file.get("src/net/bad_worker_scan.cpp", [])
        self.assertEqual(hits, [(14, "thread-role")],
                         f"expected the seeded violation, got {hits}")
        # The helper and the sink TUs themselves are not blamed.
        self.assertEqual(self.by_file.get("src/geom/jitter_helper.cpp", []),
                         [])
        self.assertEqual(self.by_file.get("src/util/mini_rng.h", []), [])

    def test_thread_role_prints_full_call_chain(self):
        _, lines, _ = run_lint("--root", FIXTURE_ROOT, "--rule",
                               "thread-role", "src")
        chain = [l for l in lines if "bad_worker_scan.cpp" in l]
        self.assertEqual(len(chain), 1, lines)
        # Every hop appears, in order, with its call site.
        self.assertIn("worker-safe 'net::scan_density'", chain[0])
        self.assertIn("net::scan_density -> geom::jitter_offset "
                      "(called at src/net/bad_worker_scan.cpp:14) "
                      "-> Rng::uniform "
                      "(called at src/geom/jitter_helper.cpp:8)", chain[0])

    def test_thread_role_justified_suppression_silences(self):
        self.assertEqual(
            self.by_file.get("src/net/suppressed_worker.cpp", []), [])

    def test_thread_role_agnostic_barrier_stops_the_walk(self):
        # The serial fallback behind a MANET_ROLE_AGNOSTIC dispatcher calls
        # commit-only code, but the audited barrier must not be traversed.
        self.assertEqual(
            self.by_file.get("src/sim/agnostic_fallback.cpp", []), [])

    def test_unjustified_suppressions_are_findings_and_do_not_silence(self):
        rules = sorted(self.rules_in("src/sim/suppressed_nojust.cpp"))
        self.assertEqual(rules,
                         ["hot-path", "hot-path",
                          "suppression", "suppression"])

    def test_exit_codes(self):
        code_plain, _, _ = run_lint("--root", FIXTURE_ROOT, "src")
        self.assertEqual(code_plain, 0, "findings without --werror: exit 0")
        code_werror, _, _ = run_lint("--root", FIXTURE_ROOT, "--werror",
                                     "src")
        self.assertEqual(code_werror, 2, "findings with --werror: exit 2")

    def test_single_rule_filter(self):
        _, lines, _ = run_lint("--root", FIXTURE_ROOT, "--rule",
                               "wall-clock", "src")
        rules = {r for _, _, r in findings_of(lines)}
        self.assertEqual(rules, {"wall-clock"})


class RealTreeTest(unittest.TestCase):
    def test_repository_src_is_lint_clean(self):
        code, lines, err = run_lint("--root", REPO_ROOT, "--werror", "src")
        self.assertEqual(code, 0,
                         "src/ must stay manet-lint clean:\n" +
                         "\n".join(lines) + err)

    def test_suppression_budget_can_only_shrink(self):
        code, lines, err = run_lint(
            "--root", REPO_ROOT, "--count-suppressions",
            "--max-suppressions", str(MAX_SUPPRESSIONS_IN_SRC), "src")
        self.assertEqual(code, 0, err)
        total = [l for l in lines if l.startswith("total: ")]
        self.assertEqual(len(total), 1, lines)
        count = int(total[0].split()[1])
        self.assertLessEqual(
            count, MAX_SUPPRESSIONS_IN_SRC,
            f"suppression count grew to {count}; the budget "
            f"({MAX_SUPPRESSIONS_IN_SRC}) only shrinks — fix the code "
            "instead, or justify raising the pin in your PR")
        # Every suppression must carry a justification (the linter enforces
        # the syntax; this asserts none slipped into the count regardless).
        for line in lines:
            if line.startswith("total:"):
                continue
            self.assertRegex(line, r"allow\([\w-]+\): \S",
                             f"unjustified suppression: {line}")

    def test_list_rules_names_every_contract(self):
        code, lines, _ = run_lint("--list-rules")
        self.assertEqual(code, 0)
        text = "\n".join(lines)
        for rule in ("wall-clock", "global-rng", "unordered-iter",
                     "hot-path", "io-discipline", "thread-role"):
            self.assertIn(rule, text)

    def test_unknown_rule_name_is_a_hard_error(self):
        code, _, err = run_lint("--rule", "no-such-rule", "src")
        self.assertEqual(code, 2)
        self.assertIn("unknown rule", err)


if __name__ == "__main__":
    unittest.main(verbosity=2)
