// Fixture: miniature of util/rng.h — a draw that advances the
// deterministic replay-ordered stream, so it is commit-thread-only.
#pragma once

#define MANET_COMMIT_ONLY
#define MANET_WORKER_SAFE
#define MANET_ROLE_AGNOSTIC

namespace manet::util {

class Rng {
 public:
  double uniform() MANET_COMMIT_ONLY;
};

}  // namespace manet::util
