// Fixture: allowlist boundary — src/util/rng* is the one place allowed to
// touch std::random_device (e.g. a documented opt-in entropy seeder).
// Zero findings expected.
#include <random>

namespace fixture {

unsigned hardware_entropy() {
  std::random_device rd;
  return rd();
}

}  // namespace fixture
