// Fixture: allowlist boundary — src/util/progress* may read the host clock
// (a progress meter is ABOUT wall time) and util/ may write to stderr.
// Zero findings expected.
#include <chrono>
#include <iostream>

namespace fixture {

void tick_progress(int done, int total) {
  static const auto t0 = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::cerr << "\r[" << done << "/" << total << "] " << elapsed << "s";
}

}  // namespace fixture
