// Fixture: allocation-prone constructs inside a zero-alloc-loop file
// (anything under src/sim/). Placement new must NOT fire.
#include <functional>
#include <memory>
#include <new>

namespace fixture {

struct Packet {
  double payload[4];
};

struct Loop {
  std::function<void()> callback;  // finding: std::function

  void fire() {
    auto owned = std::make_shared<Packet>();  // finding: make_shared
    Packet* raw = new Packet();               // finding: naked new
    alignas(Packet) unsigned char buf[sizeof(Packet)];
    Packet* placed = ::new (static_cast<void*>(buf)) Packet();  // ok
    placed->~Packet();
    delete raw;
    (void)owned;
  }
};

}  // namespace fixture
