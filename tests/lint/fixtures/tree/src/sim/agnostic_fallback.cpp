// Fixture: false-positive guard — the role-agnostic barrier. The serial
// fallback calls a commit-only effect, but the dispatcher is annotated
// MANET_ROLE_AGNOSTIC (manually audited: the branch is only taken on the
// commit thread, when no planner exists), so the walk from the worker-safe
// root must stop at it and the file must stay silent.
#include "util/mini_rng.h"

namespace manet::sim {

void commit_side_effect(util::Rng& rng) MANET_COMMIT_ONLY;

// Audited: the commit-only branch is only reachable when `serial` is true,
// and every caller passing true is the commit thread (planner == nullptr
// fallback).
void maybe_commit(util::Rng& rng, bool serial) MANET_ROLE_AGNOSTIC {
  if (serial) {
    commit_side_effect(rng);
  }
}

double worker_probe(util::Rng& rng) MANET_WORKER_SAFE {
  maybe_commit(rng, false);
  return 0.0;
}

}  // namespace manet::sim
