// Fixture: a correctly justified suppression silences the finding — both
// the line-above form and the same-line form.
#include <memory>

namespace fixture {

struct Big {
  double a[64];
};

void rare_path() {
  // manet-lint: allow(hot-path): setup-time only, never in the event loop
  auto owned = std::make_shared<Big>();
  auto second = std::make_shared<Big>();  // manet-lint: allow(hot-path): ditto, boot path
  (void)owned;
  (void)second;
}

}  // namespace fixture
