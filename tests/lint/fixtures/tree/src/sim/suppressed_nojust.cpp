// Fixture: a suppression WITHOUT a justification is itself a finding, and
// it does NOT silence the finding underneath — the allow() only takes
// effect once the author says why. Unknown rule names likewise.
#include <memory>

namespace fixture {

struct Big {
  double a[64];
};

void lazy_suppression() {
  // manet-lint: allow(hot-path):
  auto owned = std::make_shared<Big>();
  // manet-lint: allow(no-such-rule): misspelled rule names are findings too
  auto other = std::make_shared<Big>();
  (void)owned;
  (void)other;
}

}  // namespace fixture
