// Fixture: allowlist boundary, negative side — the allowlist covers
// src/scenario/runner*, NOT the rest of src/scenario/. A host-clock read
// here must still fire.
#include <chrono>

namespace fixture {

double timeline_drift() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())  // finding
      .count();
}

}  // namespace fixture
