// Fixture: allowlist boundary — src/scenario/runner* times runs with the
// host clock (observability, not simulation state). Zero findings expected.
#include <chrono>

namespace fixture {

double run_wall_seconds() {
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace fixture
