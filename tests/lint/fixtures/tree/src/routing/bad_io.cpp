// Fixture: direct stdout/stderr writes outside util/.
#include <cstdio>
#include <iostream>
#include <ostream>

namespace fixture {

void chatty(double progress) {
  std::cout << "progress: " << progress << "\n";  // finding
  std::cerr << "warn\n";                          // finding
  printf("%.2f\n", progress);                     // finding
}

// Writing to a stream the CALLER passed in is the sanctioned idiom.
void report(std::ostream& out, double progress) {
  out << "progress: " << progress << "\n";  // no finding
}

}  // namespace fixture
