// REGRESSION FIXTURE: a faithful miniature of the pre-fix
// src/cluster/agent.cpp contention bookkeeping (iterator-erase loop plus two
// range-fors over an unordered_map member). The lint self-test asserts the
// unordered-iter rule fires on all three sites — i.e. the tree as it stood
// before this pass would NOT have lint-passed.
#include "bad_agent_prefix.h"

namespace fixture {

void Agent::decide(double now) {
  contention_.try_emplace(7, now);
  for (auto it = contention_.begin(); it != contention_.end();) {  // LINE 12
    if (it->second < now - 4.0) {
      it = contention_.erase(it);
    } else {
      ++it;
    }
  }
}

void Agent::resolve(double now) {
  const int* winner = nullptr;
  for (const auto& [id, since] : contention_) {  // LINE 23
    if (now - since > 4.0 && (winner == nullptr || id < *winner)) {
      winner = &id;
    }
  }
  if (winner != nullptr) {
    for (const auto& [id, since] : contention_) {  // LINE 29
      (void)id;
      (void)since;
    }
  }
}

}  // namespace fixture
