// Fixture: unordered container hidden behind a `using` alias — the
// declaration collector must see through one level of aliasing.
#include <string>
#include <unordered_map>

namespace fixture {

using SizeMap = std::unordered_map<int, std::size_t>;

std::size_t total(const SizeMap& unused) {
  (void)unused;
  SizeMap sizes;
  sizes[3] = 1;
  std::size_t n = 0;
  for (const auto& [head, count] : sizes) {  // hash-order iteration
    (void)head;
    n += count;
  }
  return n;
}

}  // namespace fixture
