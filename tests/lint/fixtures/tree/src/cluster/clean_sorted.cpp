// Fixture: the POST-fix idiom — sorted flat vector, std::map, and an
// unordered container used only for membership lookups (never iterated).
// Must produce zero findings.
#include <algorithm>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace fixture {

double sum_sorted(const std::vector<std::pair<int, double>>& reigns,
                  const std::map<int, double>& weights,
                  const std::unordered_set<int>& alive) {
  double total = 0.0;
  for (const auto& [node, since] : reigns) {
    if (alive.count(node) > 0) {  // lookup, not iteration: fine
      total += since;
    }
  }
  for (const auto& [node, w] : weights) {  // std::map: ordered, fine
    total += w;
  }
  return total;
}

}  // namespace fixture
