// Fixture header: the unordered member is DECLARED here but iterated in
// bad_agent_prefix.cpp — proves the linter resolves declarations across
// files, exactly like the real contention_ member lived in agent.h.
#pragma once

#include <unordered_map>

namespace fixture {

class Agent {
 public:
  void decide(double now);
  void resolve(double now);

 private:
  std::unordered_map<int, double> contention_;
};

}  // namespace fixture
