// Fixture: the unannotated middle hop of a cross-TU chain — worker code in
// net/ reaches this helper, which draws from the commit-only stream.
#include "util/mini_rng.h"

namespace manet::geom {

double jitter_offset(util::Rng& rng) {
  return rng.uniform() - 0.5;
}

}  // namespace manet::geom
