// Fixture: the seeded violation the thread-role rule must catch — a
// worker-safe root reaching a commit-only RNG draw through an unannotated
// helper defined in ANOTHER translation unit (geom/jitter_helper.cpp).
// The finding must print the full call chain.
#include "util/mini_rng.h"

namespace manet::geom {
double jitter_offset(util::Rng& rng);
}

namespace manet::net {

double scan_density(util::Rng& rng) MANET_WORKER_SAFE {
  const double jitter = geom::jitter_offset(rng);
  return jitter * 2.0;
}

}  // namespace manet::net
