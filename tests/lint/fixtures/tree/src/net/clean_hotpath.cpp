// Fixture: a clean zero-alloc-loop file — make_unique at setup time,
// pooled reuse, sorted flat iteration. Zero findings expected.
#include <memory>
#include <utility>
#include <vector>

namespace fixture {

struct Entry {
  int id = 0;
  double weight = 0.0;
};

class Table {
 public:
  explicit Table(std::size_t capacity) { entries_.reserve(capacity); }

  // Setup-time ownership transfer: make_unique is fine (the runtime
  // zero-alloc guard, not the linter, polices steady-state allocation).
  static std::unique_ptr<Table> make(std::size_t capacity) {
    return std::make_unique<Table>(capacity);
  }

  double total() const {
    double sum = 0.0;
    for (const Entry& e : entries_) {  // sorted flat vector: fine
      sum += e.weight;
    }
    return sum;
  }

 private:
  std::vector<Entry> entries_;  // ascending by id
};

}  // namespace fixture
