// Fixture: a justified suppression on the worker-root's call site silences
// the thread-role finding — the chain anchors where it starts, so the
// suppression lives next to the decision it documents.
#include "util/mini_rng.h"

namespace manet::net {

double probe_once(util::Rng& rng) MANET_COMMIT_ONLY {
  return rng.uniform();
}

double calibration_scan(util::Rng& rng) MANET_WORKER_SAFE {
  // manet-lint: allow(thread-role): boot-time calibration, runs before the pool spawns
  return probe_once(rng);
}

}  // namespace manet::net
