// Fixture: global / nondeterministic randomness in simulation code.
#include <cstdlib>
#include <random>

namespace fixture {

double hostile_draw() {
  std::random_device rd;                               // finding
  std::srand(rd());                                    // finding (srand)
  return static_cast<double>(std::rand()) / RAND_MAX;  // finding (rand)
}

// A member named rand() is not the global: no finding.
struct Table {
  int rand() const { return 4; }
};

int member_rand_ok(const Table& t) { return t.rand(); }

}  // namespace fixture
