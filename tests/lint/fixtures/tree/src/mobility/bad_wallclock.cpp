// Fixture: host-clock reads in simulation code. Both the chrono clock and
// the C `time()` call must fire wall-clock findings; mentions inside
// comments ("steady_clock") and strings must NOT.
#include <chrono>
#include <ctime>
#include <string>

namespace fixture {

double jitter_seed() {
  const auto t0 = std::chrono::steady_clock::now();  // finding
  const std::time_t wall = std::time(nullptr);       // finding
  const std::string label = "uses steady_clock";     // string: no finding
  (void)label;
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now() - t0)  // finding
             .count() +
         static_cast<double>(wall);
}

// A member called time() is legitimate — e.g. event.time() accessors.
struct Event {
  double time() const { return when_; }
  double when_ = 0.0;
};

double member_time_ok(const Event& e) { return e.time(); }

}  // namespace fixture
