// Neighbor tables, hello delivery, network integration on fixed topologies.
#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "helpers.h"
#include "metrics/relative_mobility.h"
#include "mobility/mobility_model.h"
#include "net/neighbor_table.h"
#include "net/network.h"
#include "util/assert.h"

namespace manet::net {
namespace {

HelloPacket hello(NodeId sender, std::uint32_t seq = 1, double weight = 0.0,
                  AdvertRole role = AdvertRole::kUndecided,
                  NodeId head = kInvalidNode) {
  HelloPacket p;
  p.sender = sender;
  p.seq = seq;
  p.weight = weight;
  p.role = role;
  p.cluster_head = head;
  return p;
}

TEST(HelloPacketTest, SerializedBytesIncludesMobilityField) {
  HelloPacket p = hello(1);
  const std::size_t base = p.serialized_bytes();
  p.neighbors = {2, 3, 4};
  EXPECT_EQ(p.serialized_bytes(), base + 12);
  // The paper: "byte overhead of the hello packets is increased by 8 bytes
  // only" — the M field.
  EXPECT_GE(base, 8u);
}

TEST(NeighborTableTest, RecordsSuccessiveReceptions) {
  NeighborTable t;
  t.on_hello(0.0, hello(3, 1), 1e-9);
  const NeighborEntry* e = t.find(3);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->has_prev);
  EXPECT_DOUBLE_EQ(e->last_rx_w, 1e-9);

  t.on_hello(2.0, hello(3, 2), 2e-9);
  e = t.find(3);
  EXPECT_TRUE(e->has_prev);
  EXPECT_DOUBLE_EQ(e->prev_rx_w, 1e-9);
  EXPECT_DOUBLE_EQ(e->last_rx_w, 2e-9);
  EXPECT_TRUE(e->has_successive_pair(3.0));
}

TEST(NeighborTableTest, GapExceedingMaxIsNotSuccessive) {
  NeighborTable t;
  t.on_hello(0.0, hello(3, 1), 1e-9);
  t.on_hello(4.0, hello(3, 3), 2e-9);  // missed a beacon: 4 s gap
  EXPECT_FALSE(t.find(3)->has_successive_pair(3.0));
  EXPECT_TRUE(t.find(3)->has_successive_pair(5.0));
}

TEST(NeighborTableTest, StoresAdvertisedState) {
  NeighborTable t;
  auto p = hello(7, 1, 12.5, AdvertRole::kHead, 7);
  p.neighbors = {1, 2, 3, 4};
  t.on_hello(1.0, p, 1e-9);
  const auto* e = t.find(7);
  EXPECT_DOUBLE_EQ(e->weight, 12.5);
  EXPECT_EQ(e->role, AdvertRole::kHead);
  EXPECT_EQ(e->cluster_head, 7u);
  EXPECT_EQ(e->degree, 4u);
}

TEST(NeighborTableTest, PurgeDropsStaleEntries) {
  NeighborTable t;
  t.on_hello(0.0, hello(1), 1e-9);
  t.on_hello(5.0, hello(2), 1e-9);
  EXPECT_EQ(t.purge(6.0, 3.0), 1u);  // node 1 last heard 6 s ago
  EXPECT_FALSE(t.contains(1));
  EXPECT_TRUE(t.contains(2));
}

TEST(NeighborTableTest, IdsAreSorted) {
  NeighborTable t;
  for (const NodeId id : {9u, 2u, 5u, 1u}) {
    t.on_hello(0.0, hello(id), 1e-9);
  }
  EXPECT_EQ(t.ids(), (std::vector<NodeId>{1, 2, 5, 9}));
  const auto entries = t.entries_by_id();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries.front()->id, 1u);
  EXPECT_EQ(entries.back()->id, 9u);
}

TEST(NeighborTableTest, EraseAndRejects) {
  NeighborTable t;
  t.on_hello(0.0, hello(1), 1e-9);
  EXPECT_TRUE(t.erase(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_THROW(t.on_hello(0.0, hello(kInvalidNode), 1e-9), util::CheckError);
  EXPECT_THROW(t.on_hello(0.0, hello(1), 0.0), util::CheckError);
}

// --- Network integration on a static pair --------------------------------

TEST(NetworkTest, NodesWithinRangeHearEachOther) {
  auto world = test::make_static_world(
      {{100.0, 100.0}, {150.0, 100.0}},  // 50 m apart
      100.0, cluster::lowest_id_lcc_options());
  world->run(10.0);
  auto& network = *world->network;
  EXPECT_TRUE(network.node(0).table().contains(1));
  EXPECT_TRUE(network.node(1).table().contains(0));
  EXPECT_GT(network.stats().hellos_delivered, 8u);
  EXPECT_DOUBLE_EQ(network.stats().mean_degree(), 1.0);
}

TEST(NetworkTest, NodesOutOfRangeDoNot) {
  auto world = test::make_static_world(
      {{100.0, 100.0}, {350.0, 100.0}},  // 250 m apart, range 100
      100.0, cluster::lowest_id_lcc_options());
  world->run(10.0);
  EXPECT_FALSE(world->network->node(0).table().contains(1));
  EXPECT_EQ(world->network->stats().hellos_delivered, 0u);
}

TEST(NetworkTest, ReceivedPowerMatchesFriis) {
  auto world = test::make_static_world(
      {{100.0, 100.0}, {180.0, 100.0}},  // 80 m
      200.0, cluster::lowest_id_lcc_options());
  world->run(6.0);
  const auto* e = world->network->node(1).table().find(0);
  ASSERT_NE(e, nullptr);
  EXPECT_NEAR(e->last_rx_w, world->network->medium().median_rx_power_w(80.0),
              1e-18);
  // Static topology: successive powers identical -> relative mobility 0.
  ASSERT_TRUE(e->has_successive_pair(3.0));
  EXPECT_DOUBLE_EQ(
      metrics::relative_mobility_db(e->last_rx_w, e->prev_rx_w), 0.0);
}

TEST(NetworkTest, TrueAdjacencyMatchesGeometry) {
  auto world = test::make_static_world(
      {{0.0, 0.0}, {90.0, 0.0}, {220.0, 0.0}}, 100.0,
      cluster::lowest_id_lcc_options());
  const auto adj = world->network->true_adjacency(0.0);
  EXPECT_EQ(adj[0], (std::vector<NodeId>{1}));
  EXPECT_EQ(adj[1], (std::vector<NodeId>{0}));  // 1-2 are 130 m apart
  EXPECT_TRUE(adj[2].empty());
  EXPECT_NEAR(world->network->distance(0, 1, 0.0), 90.0, 1e-12);
}

TEST(NetworkTest, FailedNodeIsSilentAndDeaf) {
  auto world = test::make_static_world(
      {{0.0, 0.0}, {50.0, 0.0}}, 100.0, cluster::lowest_id_lcc_options());
  world->run(6.0);
  EXPECT_TRUE(world->network->node(1).table().contains(0));

  world->network->node(0).fail();
  EXPECT_FALSE(world->network->node(0).alive());
  const auto heard_before = world->network->node(0).hellos_received();
  world->run(10.0);
  // Node 1 purged the dead neighbor; node 0 heard nothing while down.
  EXPECT_FALSE(world->network->node(1).table().contains(0));
  EXPECT_EQ(world->network->node(0).hellos_received(), heard_before);

  world->network->node(0).recover();
  world->run(10.0);
  EXPECT_TRUE(world->network->node(1).table().contains(0));
  EXPECT_GT(world->network->node(0).hellos_received(), heard_before);
}

TEST(NetworkTest, PacketLossReducesDeliveries) {
  sim::Simulator sim;
  util::Rng root(3);
  net::NetworkParams params;
  params.packet_loss = 0.5;
  net::Network network(sim, radio::make_paper_medium(100.0),
                       geom::Rect(200.0, 200.0), params,
                       root.substream("net"));
  for (NodeId i = 0; i < 2; ++i) {
    auto node = std::make_unique<Node>(
        i,
        std::make_unique<mobility::StaticModel>(
            geom::Vec2{50.0 + 20.0 * i, 50.0}),
        root.substream("node", i));
    node->set_agent(std::make_unique<cluster::WeightedClusterAgent>(
        cluster::lowest_id_lcc_options()));
    network.add_node(std::move(node));
  }
  network.start();
  sim.run_until(200.0);
  const auto& s = network.stats();
  const double loss_rate =
      static_cast<double>(s.hellos_lost) /
      static_cast<double>(s.hellos_lost + s.hellos_delivered);
  EXPECT_NEAR(loss_rate, 0.5, 0.12);
}

TEST(NetworkTest, CollisionWindowDestroysOverlappingArrivals) {
  // Three senders around one receiver with an (absurdly large) 1 s
  // collision window: only arrivals spaced > 1 s apart survive.
  sim::Simulator sim;
  util::Rng root(9);
  net::NetworkParams params;
  params.collision_window = 1.0;
  params.per_beacon_jitter = 0.2;
  net::Network network(sim, radio::make_paper_medium(100.0),
                       geom::Rect(300.0, 300.0), params,
                       root.substream("net"));
  const std::vector<geom::Vec2> pos = {
      {150.0, 150.0}, {150.0, 100.0}, {100.0, 150.0}, {200.0, 150.0}};
  for (NodeId i = 0; i < 4; ++i) {
    auto node = std::make_unique<Node>(
        i, std::make_unique<mobility::StaticModel>(pos[i]),
        root.substream("node", i));
    node->set_agent(std::make_unique<cluster::WeightedClusterAgent>(
        cluster::lowest_id_lcc_options()));
    network.add_node(std::move(node));
  }
  network.start();
  sim.run_until(100.0);
  EXPECT_GT(network.stats().hellos_collided, 10u);
  // With the window off, the same setup never collides.
  EXPECT_GT(network.stats().hellos_delivered,
            network.stats().hellos_collided);
}

TEST(NetworkTest, NoCollisionsWithIdealMac) {
  auto world = test::make_static_world(
      {{0.0, 0.0}, {30.0, 0.0}, {60.0, 0.0}}, 100.0,
      cluster::lowest_id_lcc_options());
  world->run(50.0);
  EXPECT_EQ(world->network->stats().hellos_collided, 0u);
}

TEST(NetworkTest, BeaconCadenceMatchesBroadcastInterval) {
  auto world = test::make_static_world(
      {{0.0, 0.0}, {50.0, 0.0}}, 100.0, cluster::lowest_id_lcc_options());
  world->run(20.0);
  // BI = 2 s: each node sends ~10 beacons in 20 s (plus the phase offset).
  for (NodeId i = 0; i < 2; ++i) {
    EXPECT_NEAR(world->network->node(i).beacons_sent(), 10.0, 1.0);
  }
  EXPECT_EQ(world->network->stats().beacons_sent,
            world->network->node(0).beacons_sent() +
                world->network->node(1).beacons_sent());
  EXPECT_GT(world->network->stats().bytes_sent, 0u);
}

TEST(NetworkTest, RejectsBadConfig) {
  sim::Simulator sim;
  util::Rng rng(1);
  net::NetworkParams bad;
  bad.broadcast_interval = 0.0;
  EXPECT_THROW(net::Network(sim, radio::make_paper_medium(100.0),
                            geom::Rect(10.0, 10.0), bad, rng),
               util::CheckError);
  net::NetworkParams params;
  net::Network network(sim, radio::make_paper_medium(100.0),
                       geom::Rect(10.0, 10.0), params, rng);
  // Node ids must be dense starting at 0.
  auto node = std::make_unique<Node>(
      5, std::make_unique<mobility::StaticModel>(geom::Vec2{1.0, 1.0}),
      rng.substream("n"));
  EXPECT_THROW(network.add_node(std::move(node)), util::CheckError);
  EXPECT_THROW(network.start(), util::CheckError);  // no nodes
}

TEST(NetworkTest, DeterministicAcrossRuns) {
  const auto run_once = [] {
    auto world = test::make_static_world(
        {{10.0, 10.0}, {60.0, 10.0}, {110.0, 10.0}}, 80.0,
        cluster::mobic_options(), 99);
    world->run(30.0);
    return world->network->stats().hellos_delivered;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace manet::net
