// Randomized EventQueue stress test against a reference model.
//
// The model is deliberately naive: a vector of {time, seq, id, live}
// records, popped by linear scan with (time, seq) ordering. The real queue
// (generation-tagged slab + 4-ary heap) must agree with it on every
// observable: pop order (including FIFO ties), pending()/size(), cancel
// results, and the lifetime counters. Slot recycling means handle reuse is
// constant under churn, so stale-handle (ABA) behavior is exercised heavily:
// cancelling or querying an id whose slot has been recycled must be a no-op.
#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "util/rng.h"

namespace manet::sim {
namespace {

struct ModelEvent {
  Time time = 0.0;
  std::uint64_t seq = 0;  // insertion order, FIFO tiebreak
  int payload = 0;
  bool live = true;
};

class ReferenceModel {
 public:
  std::size_t push(Time t, int payload) {
    events_.push_back({t, next_seq_++, payload, true});
    return events_.size() - 1;  // model handle: index into events_
  }

  bool cancel(std::size_t h) {
    if (h >= events_.size() || !events_[h].live) {
      return false;
    }
    events_[h].live = false;
    ++cancelled_;
    return true;
  }

  bool pending(std::size_t h) const {
    return h < events_.size() && events_[h].live;
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& e : events_) {
      n += e.live ? 1 : 0;
    }
    return n;
  }

  // Pops the earliest live event by (time, seq); returns its payload.
  int pop() {
    std::size_t best = events_.size();
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (!events_[i].live) {
        continue;
      }
      if (best == events_.size() ||
          events_[i].time < events_[best].time ||
          (events_[i].time == events_[best].time &&
           events_[i].seq < events_[best].seq)) {
        best = i;
      }
    }
    EXPECT_LT(best, events_.size()) << "model pop on empty";
    events_[best].live = false;
    return events_[best].payload;
  }

  Time next_time() const {
    std::size_t best = events_.size();
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (!events_[i].live) {
        continue;
      }
      if (best == events_.size() || events_[i].time < events_[best].time ||
          (events_[i].time == events_[best].time &&
           events_[i].seq < events_[best].seq)) {
        best = i;
      }
    }
    return events_[best].time;
  }

  std::uint64_t scheduled() const { return next_seq_; }
  std::uint64_t cancelled() const { return cancelled_; }

 private:
  std::vector<ModelEvent> events_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t cancelled_ = 0;
};

// One randomized episode: interleaved push/cancel/pop, checked op by op.
void run_episode(std::uint64_t seed, int ops, double time_range,
                 int distinct_times) {
  util::Rng rng(seed);
  EventQueue queue;
  ReferenceModel model;

  struct LivePair {
    EventId real;
    std::size_t model;
  };
  std::vector<LivePair> handles;       // possibly stale — kept on purpose
  std::vector<int> popped_real;
  std::vector<int> popped_model;
  int next_payload = 0;

  for (int op = 0; op < ops; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.5) {
      // Push. Times are drawn from a small set so FIFO ties are common.
      const double t =
          time_range *
          static_cast<double>(rng.uniform_int(0, distinct_times - 1)) /
          static_cast<double>(distinct_times);
      const int payload = next_payload++;
      const EventId real = queue.push(t, [] {});
      const std::size_t m = model.push(t, payload);
      // Payload equality is checked through pop order; remember the pair.
      handles.push_back({real, m});
      ASSERT_TRUE(queue.pending(real));
    } else if (dice < 0.75) {
      // Cancel a handle — current or stale (exercises slot reuse / ABA).
      if (!handles.empty()) {
        const std::size_t pick = rng.index(handles.size());
        const bool r = queue.cancel(handles[pick].real);
        const bool m = model.cancel(handles[pick].model);
        ASSERT_EQ(r, m) << "cancel disagreement at op " << op;
        ASSERT_FALSE(queue.pending(handles[pick].real));
      }
    } else {
      // Pop.
      ASSERT_EQ(queue.empty(), model.size() == 0);
      if (!queue.empty()) {
        ASSERT_DOUBLE_EQ(queue.next_time(), model.next_time());
        const auto fired = queue.pop();
        // Identify the popped real event through the model's pop: queue and
        // model must agree on *which* event fired, which we check by
        // popping both and comparing the event's scheduled time plus the
        // FIFO position encoded in the payload sequence below.
        popped_model.push_back(model.pop());
        popped_real.push_back(-1);  // placeholder, patched via handle scan
        // Find which handle this id belonged to (ids are unique).
        for (const auto& h : handles) {
          if (h.real == fired.id) {
            popped_real.back() = static_cast<int>(h.model);
            break;
          }
        }
        ASSERT_NE(popped_real.back(), -1) << "unknown id popped";
        ASSERT_FALSE(queue.pending(fired.id));
        ASSERT_FALSE(queue.cancel(fired.id)) << "cancel-after-fire must fail";
      }
    }
    ASSERT_EQ(queue.size(), model.size()) << "size drift at op " << op;
  }

  // Drain both completely; order must match exactly.
  while (!queue.empty()) {
    const auto fired = queue.pop();
    popped_model.push_back(model.pop());
    popped_real.push_back(-1);
    for (const auto& h : handles) {
      if (h.real == fired.id) {
        popped_real.back() = static_cast<int>(h.model);
        break;
      }
    }
  }
  ASSERT_EQ(model.size(), 0u);

  // The model handle doubles as its payload index: model.pop() returned
  // payloads in model order, and popped_real recorded which model event the
  // real queue popped at each step. They must be the same sequence.
  ASSERT_EQ(popped_real.size(), popped_model.size());
  for (std::size_t i = 0; i < popped_real.size(); ++i) {
    EXPECT_EQ(popped_real[i], popped_model[i])
        << "pop order diverged at pop " << i;
  }

  EXPECT_EQ(queue.total_scheduled(), model.scheduled());
  EXPECT_EQ(queue.total_cancelled(), model.cancelled());
}

TEST(EventQueueStress, RandomizedAgainstReferenceModel) {
  // Several mixes: tie-heavy (few distinct times), cancel-heavy reuse
  // (small episodes repeated), and a long episode.
  run_episode(/*seed=*/1, /*ops=*/4000, /*time_range=*/10.0,
              /*distinct_times=*/5);
  run_episode(/*seed=*/2, /*ops=*/4000, /*time_range=*/1000.0,
              /*distinct_times=*/997);
  run_episode(/*seed=*/3, /*ops=*/20000, /*time_range=*/50.0,
              /*distinct_times=*/25);
}

TEST(EventQueueStress, SameSeedReplaysIdentically) {
  // Two queues driven by identical op sequences must pop identical id
  // sequences (handles are deterministic, not address-dependent).
  for (const std::uint64_t seed : {7ULL, 8ULL}) {
    util::Rng rng_a(seed);
    util::Rng rng_b(seed);
    EventQueue a;
    EventQueue b;
    std::vector<EventId> ids_a;
    std::vector<EventId> ids_b;
    std::vector<EventId> popped_a;
    std::vector<EventId> popped_b;
    const auto drive = [](util::Rng& rng, EventQueue& q,
                          std::vector<EventId>& ids,
                          std::vector<EventId>& popped) {
      for (int op = 0; op < 3000; ++op) {
        const double dice = rng.uniform();
        if (dice < 0.55) {
          ids.push_back(q.push(rng.uniform(0.0, 100.0), [] {}));
        } else if (dice < 0.8) {
          if (!ids.empty()) {
            q.cancel(ids[rng.index(ids.size())]);
          }
        } else if (!q.empty()) {
          popped.push_back(q.pop().id);
        }
      }
    };
    drive(rng_a, a, ids_a, popped_a);
    drive(rng_b, b, ids_b, popped_b);
    EXPECT_EQ(ids_a, ids_b);
    EXPECT_EQ(popped_a, popped_b);
  }
}

TEST(EventQueueStress, HandleChurnStaysBounded) {
  // Steady-state churn must recycle storage: after warm-up, size() stays
  // flat while millions of (push, pop) cycles stream through. This guards
  // the slab free list (and, pre-slab, the lazy-deletion compaction).
  EventQueue q;
  util::Rng rng(99);
  double now = 0.0;
  std::deque<EventId> live;
  for (int i = 0; i < 64; ++i) {
    live.push_back(q.push(now + rng.uniform(0.0, 4.0), [] {}));
  }
  for (int cycle = 0; cycle < 200000; ++cycle) {
    const auto fired = q.pop();
    now = fired.time;
    // Cancel one survivor now and then, then top the queue back up.
    if (cycle % 7 == 0 && !live.empty()) {
      // The oldest handle may already have fired; only replace the event if
      // the cancel actually removed one.
      if (q.cancel(live.front())) {
        live.push_back(q.push(now + rng.uniform(0.0, 4.0), [] {}));
      }
      live.pop_front();
    }
    live.push_back(q.push(now + rng.uniform(0.0, 4.0), [] {}));
    while (live.size() > 128) {
      live.pop_front();
    }
    ASSERT_LE(q.size(), 160u);
  }
}

}  // namespace
}  // namespace manet::sim
