// Random walk, random direction, Gauss-Markov, static, and the factory.
#include <gtest/gtest.h>

#include "mobility/factory.h"
#include "mobility/gauss_markov.h"
#include "mobility/random_walk.h"
#include "util/assert.h"

namespace manet::mobility {
namespace {

const geom::Rect kField(500.0, 400.0);

TEST(StaticModelTest, NeverMoves) {
  StaticModel m({10.0, 20.0});
  EXPECT_EQ(m.position(0.0), (geom::Vec2{10.0, 20.0}));
  EXPECT_EQ(m.position(1e6), (geom::Vec2{10.0, 20.0}));
  EXPECT_EQ(m.velocity(5.0), (geom::Vec2{0.0, 0.0}));
}

TEST(RandomWalkTest, StaysInsideAndBounded) {
  RandomWalkParams p{kField, 1.0, 15.0, 10.0};
  RandomWalk m(p, util::Rng(1));
  for (double t = 0.0; t <= 600.0; t += 0.5) {
    EXPECT_TRUE(kField.contains(m.position(t))) << "t=" << t;
    const double v = m.velocity(t).norm();
    EXPECT_LE(v, 15.0 + 1e-9);
    EXPECT_GE(v, 1.0 - 1e-9);  // walk never pauses
  }
}

TEST(RandomWalkTest, ChangesHeadingAcrossEpochs) {
  RandomWalkParams p{kField, 5.0, 5.0, 5.0};  // fixed speed, 5 s epochs
  RandomWalk m(p, util::Rng(2));
  const geom::Vec2 v0 = m.velocity(1.0);
  // After several epochs the heading is different with overwhelming
  // probability.
  const geom::Vec2 v5 = m.velocity(31.0);
  EXPECT_GT((v0 - v5).norm(), 1e-6);
}

TEST(RandomWalkTest, Deterministic) {
  RandomWalkParams p{kField, 1.0, 10.0, 8.0};
  RandomWalk a(p, util::Rng(3)), b(p, util::Rng(3));
  for (double t = 0.0; t <= 120.0; t += 3.0) {
    EXPECT_EQ(a.position(t), b.position(t));
  }
}

TEST(RandomDirectionTest, TravelsToBoundary) {
  RandomDirectionParams p{kField, 2.0, 10.0, 0.0};
  RandomDirection m(p, util::Rng(4));
  // Over a long run the node must repeatedly touch the field boundary.
  int boundary_visits = 0;
  for (double t = 0.0; t <= 600.0; t += 0.5) {
    const auto pos = m.position(t);
    EXPECT_TRUE(kField.contains(pos));
    const bool on_edge = pos.x < 1.0 || pos.y < 1.0 ||
                         pos.x > kField.width - 1.0 ||
                         pos.y > kField.height - 1.0;
    if (on_edge) {
      ++boundary_visits;
    }
  }
  EXPECT_GT(boundary_visits, 3);
}

TEST(RandomDirectionTest, PausesAtBoundary) {
  RandomDirectionParams p{kField, 2.0, 2.0, 20.0};  // long pauses
  RandomDirection m(p, util::Rng(5));
  int paused = 0;
  for (double t = 0.0; t <= 600.0; t += 1.0) {
    if (m.velocity(t).norm() == 0.0) {
      ++paused;
    }
  }
  EXPECT_GT(paused, 20);
}

TEST(GaussMarkovTest, StaysInsideField) {
  GaussMarkovParams p{kField, 10.0, 0.85, 3.0, 1.0};
  GaussMarkov m(p, util::Rng(6));
  for (double t = 0.0; t <= 900.0; t += 0.5) {
    EXPECT_TRUE(kField.contains(m.position(t))) << "t=" << t;
  }
}

TEST(GaussMarkovTest, VelocityIsTemporallyCorrelated) {
  // With alpha close to 1, consecutive velocities are similar; compare the
  // 1-step velocity autocorrelation against an IID (alpha=0) process.
  const auto autocorr = [](double alpha, std::uint64_t seed) {
    GaussMarkovParams p{geom::Rect(1e5, 1e5), 0.0, alpha, 5.0, 1.0};
    GaussMarkov m(p, util::Rng(seed));
    double num = 0.0, den = 0.0;
    geom::Vec2 prev = m.velocity(0.5);
    for (int k = 1; k < 400; ++k) {
      const geom::Vec2 v = m.velocity(k + 0.5);
      num += prev.dot(v);
      den += prev.norm_sq();
      prev = v;
    }
    return num / den;
  };
  EXPECT_GT(autocorr(0.9, 7), 0.6);
  EXPECT_LT(std::abs(autocorr(0.0, 7)), 0.35);
}

TEST(GaussMarkovTest, RejectsBadAlpha) {
  GaussMarkovParams p{kField, 10.0, 1.0, 3.0, 1.0};
  EXPECT_THROW(GaussMarkov(p, util::Rng(1)), util::CheckError);
}

TEST(FactoryTest, ParsesModelNames) {
  EXPECT_EQ(parse_model_kind("rwp"), ModelKind::kRandomWaypoint);
  EXPECT_EQ(parse_model_kind("Random_Waypoint"), ModelKind::kRandomWaypoint);
  EXPECT_EQ(parse_model_kind("static"), ModelKind::kStatic);
  EXPECT_EQ(parse_model_kind("walk"), ModelKind::kRandomWalk);
  EXPECT_EQ(parse_model_kind("direction"), ModelKind::kRandomDirection);
  EXPECT_EQ(parse_model_kind("gm"), ModelKind::kGaussMarkov);
  EXPECT_EQ(parse_model_kind("rpgm"), ModelKind::kRpgm);
  EXPECT_EQ(parse_model_kind("highway"), ModelKind::kHighway);
  EXPECT_THROW(parse_model_kind("teleport"), util::CheckError);
}

TEST(FactoryTest, NamesRoundTrip) {
  for (const auto kind :
       {ModelKind::kStatic, ModelKind::kRandomWaypoint, ModelKind::kRandomWalk,
        ModelKind::kRandomDirection, ModelKind::kGaussMarkov, ModelKind::kRpgm,
        ModelKind::kHighway}) {
    EXPECT_EQ(parse_model_kind(model_kind_name(kind)), kind);
  }
}

class FleetBounds : public ::testing::TestWithParam<ModelKind> {};

TEST_P(FleetBounds, AllModelsStayInTheirField) {
  FleetParams p;
  p.kind = GetParam();
  p.field = kField;
  p.duration = 200.0;
  p.max_speed = 15.0;
  const geom::Rect field = fleet_field(p);
  auto fleet = make_fleet(p, 12, util::Rng(11));
  ASSERT_EQ(fleet.size(), 12u);
  for (auto& m : fleet) {
    for (double t = 0.0; t <= 200.0; t += 2.0) {
      const auto pos = m->position(t);
      EXPECT_TRUE(field.contains(pos))
          << model_kind_name(p.kind) << " t=" << t << " pos=(" << pos.x
          << "," << pos.y << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, FleetBounds,
    ::testing::Values(ModelKind::kStatic, ModelKind::kRandomWaypoint,
                      ModelKind::kRandomWalk, ModelKind::kRandomDirection,
                      ModelKind::kGaussMarkov, ModelKind::kRpgm,
                      ModelKind::kHighway),
    [](const auto& param_info) {
      return std::string(model_kind_name(param_info.param));
    });

TEST(FactoryTest, FleetIsDeterministic) {
  FleetParams p;
  p.kind = ModelKind::kRandomWaypoint;
  p.field = kField;
  auto a = make_fleet(p, 5, util::Rng(9));
  auto b = make_fleet(p, 5, util::Rng(9));
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a[i]->position(100.0), b[i]->position(100.0));
  }
}

TEST(FactoryTest, NodesGetDistinctStreams) {
  FleetParams p;
  p.kind = ModelKind::kRandomWaypoint;
  p.field = kField;
  auto fleet = make_fleet(p, 3, util::Rng(9));
  EXPECT_NE(fleet[0]->position(0.0), fleet[1]->position(0.0));
  EXPECT_NE(fleet[1]->position(0.0), fleet[2]->position(0.0));
}

}  // namespace
}  // namespace manet::mobility
