#include "util/rng.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace manet::util {
namespace {

TEST(Mix64Test, AvalanchesAndIsDeterministic) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  // Neighboring inputs should differ in many bits (weak avalanche check).
  const std::uint64_t d = mix64(100) ^ mix64(101);
  EXPECT_GT(__builtin_popcountll(d), 16);
}

TEST(HashNameTest, DistinguishesNames) {
  EXPECT_EQ(hash_name("mobility"), hash_name("mobility"));
  EXPECT_NE(hash_name("mobility"), hash_name("channel"));
  EXPECT_NE(hash_name(""), hash_name("a"));
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, SubstreamsAreIndependentOfDrawOrder) {
  // Deriving a substream must not consume parent state.
  Rng a(42);
  Rng sub1 = a.substream("x");
  const double first = a.uniform();
  Rng b(42);
  const double first_b = b.uniform();
  Rng sub2 = b.substream("x");
  EXPECT_DOUBLE_EQ(first, first_b);
  EXPECT_DOUBLE_EQ(sub1.uniform(), sub2.uniform());
}

TEST(RngTest, NamedSubstreamsDiffer) {
  Rng root(1);
  Rng a = root.substream("alpha");
  Rng b = root.substream("beta");
  EXPECT_NE(a.uniform(), b.uniform());
}

TEST(RngTest, KeyedSubstreamsDiffer) {
  Rng root(1);
  Rng a = root.substream("node", 0);
  Rng b = root.substream("node", 1);
  EXPECT_NE(a.uniform(), b.uniform());
  Rng a2 = root.substream("node", 0);
  EXPECT_DOUBLE_EQ(a2.uniform(), root.substream("node", 0).uniform());
}

TEST(RngTest, UniformRanges) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(5.0, 6.5);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.5);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit in 500 draws
}

TEST(RngTest, NormalMoments) {
  Rng rng(9);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential_mean(3.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.03);
  // Degenerate probabilities are exact.
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(RngTest, IndexCoversRange) {
  Rng rng(17);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto k = rng.index(4);
    EXPECT_LT(k, 4u);
    seen.insert(k);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(23);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) {
    v[i] = i;
  }
  const auto before = v;
  rng.shuffle(v);
  EXPECT_NE(v, before);  // astronomically unlikely to be identity
}

}  // namespace
}  // namespace manet::util
