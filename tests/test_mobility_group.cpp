// RPGM group mobility and the highway model — the paper's §5 "specialized
// scenarios" where relative mobility within a group/convoy is low.
#include <map>

#include <gtest/gtest.h>

#include "mobility/highway.h"
#include "mobility/rpgm.h"
#include "util/assert.h"

namespace manet::mobility {
namespace {

RpgmParams conference_params() {
  RpgmParams p;
  p.field = geom::Rect(670.0, 670.0);
  p.duration = 300.0;
  p.center_max_speed = 10.0;
  p.center_min_speed = 0.5;
  p.offset_radius = 25.0;
  p.offset_speed = 1.0;
  return p;
}

TEST(RpgmTest, MembersStayNearCenter) {
  const auto p = conference_params();
  auto group = std::make_shared<const RpgmGroup>(p, util::Rng(1));
  RpgmMember member(group, util::Rng(2));
  for (double t = 0.0; t <= 300.0; t += 1.0) {
    const double d = geom::distance(member.position(t), group->center(t));
    // Offset radius, plus slack for the field clamp near walls.
    EXPECT_LE(d, p.offset_radius + 1e-6) << "t=" << t;
  }
}

TEST(RpgmTest, MembersStayInField) {
  const auto p = conference_params();
  auto members = make_rpgm_group(p, 8, util::Rng(3));
  for (auto& m : members) {
    for (double t = 0.0; t <= 300.0; t += 2.0) {
      EXPECT_TRUE(p.field.contains(m->position(t)));
    }
  }
}

TEST(RpgmTest, IntraGroupRelativeSpeedIsLow) {
  // The defining property: members of one group move together, so their
  // relative speed is far below the group's absolute speed.
  const auto p = conference_params();
  auto members = make_rpgm_group(p, 4, util::Rng(4));
  double max_rel = 0.0;
  for (double t = 1.0; t <= 300.0; t += 1.0) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        max_rel = std::max(
            max_rel,
            (members[i]->velocity(t) - members[j]->velocity(t)).norm());
      }
    }
  }
  // Relative speed bounded by twice the offset speed (plus clamp effects),
  // while the group itself travels up to 10 m/s.
  EXPECT_LE(max_rel, 4.0 * p.offset_speed + 0.5);
}

TEST(RpgmTest, GroupCenterCoversDuration) {
  const auto p = conference_params();
  RpgmGroup group(p, util::Rng(5));
  EXPECT_GE(group.track().end_time(), p.duration);
  EXPECT_TRUE(p.field.contains(group.center(0.0)));
  EXPECT_TRUE(p.field.contains(group.center(p.duration)));
}

TEST(RpgmTest, CentersDifferAcrossGroups) {
  const auto p = conference_params();
  RpgmGroup a(p, util::Rng(6).substream("g", 0));
  RpgmGroup b(p, util::Rng(6).substream("g", 1));
  EXPECT_NE(a.center(0.0), b.center(0.0));
}

HighwayParams highway_params() {
  HighwayParams p;
  p.length = 2000.0;
  p.lanes_per_direction = 2;
  p.mean_speed = 25.0;
  p.speed_stddev = 2.0;
  return p;
}

TEST(HighwayTest, VehiclesKeepTheirLane) {
  const auto p = highway_params();
  HighwayVehicle v(p, 1, util::Rng(1));
  const double y = v.lane_y();
  for (double t = 0.0; t <= 120.0; t += 0.5) {
    EXPECT_DOUBLE_EQ(v.position(t).y, y);
  }
}

TEST(HighwayTest, DirectionMatchesLane) {
  const auto p = highway_params();
  HighwayVehicle fwd(p, 0, util::Rng(2));
  HighwayVehicle rev(p, 2, util::Rng(3));
  EXPECT_EQ(fwd.direction(), 1);
  EXPECT_EQ(rev.direction(), -1);
  // Net displacement over a stretch follows the lane direction (modulo
  // re-entry at the segment end, so test a short window mid-segment).
  double x0 = fwd.position(10.0).x;
  double x1 = fwd.position(11.0).x;
  if (x1 > x0) {  // not wrapped within this second
    EXPECT_GT(x1, x0);
  }
  for (double t = 0.0; t <= 60.0; t += 1.0) {
    const double x = rev.position(t).x;
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, p.length);
  }
}

TEST(HighwayTest, StaysOnSegment) {
  const auto p = highway_params();
  auto fleet = make_highway(p, 10, util::Rng(4));
  const geom::Rect field = highway_field(p);
  for (auto& v : fleet) {
    for (double t = 0.0; t <= 300.0; t += 1.0) {
      EXPECT_TRUE(field.contains(v->position(t)));
    }
  }
}

TEST(HighwayTest, SameDirectionConvoyHasLowRelativeSpeed) {
  const auto p = highway_params();
  HighwayVehicle a(p, 0, util::Rng(5));
  HighwayVehicle b(p, 1, util::Rng(6));   // same direction
  HighwayVehicle c(p, 2, util::Rng(7));   // opposite direction
  double rel_same = 0.0, rel_opp = 0.0;
  int n = 0;
  for (double t = 1.0; t <= 120.0; t += 1.0) {
    rel_same += (a.velocity(t) - b.velocity(t)).norm();
    rel_opp += (a.velocity(t) - c.velocity(t)).norm();
    ++n;
  }
  rel_same /= n;
  rel_opp /= n;
  EXPECT_LT(rel_same, 15.0);
  EXPECT_GT(rel_opp, 2.0 * p.mean_speed - 15.0);
  EXPECT_GT(rel_opp, rel_same);
}

TEST(HighwayTest, RoundRobinLaneAssignment) {
  const auto p = highway_params();  // 4 lanes
  auto fleet = make_highway(p, 8, util::Rng(8));
  // Every lane y-offset appears exactly twice among 8 vehicles.
  std::map<double, int> lanes;
  for (auto& v : fleet) {
    lanes[v->position(0.0).y]++;
  }
  EXPECT_EQ(lanes.size(), 4u);
  for (const auto& [_, count] : lanes) {
    EXPECT_EQ(count, 2);
  }
}

TEST(HighwayTest, RejectsBadLane) {
  const auto p = highway_params();
  EXPECT_THROW(HighwayVehicle(p, 4, util::Rng(1)), util::CheckError);
  EXPECT_THROW(HighwayVehicle(p, -1, util::Rng(1)), util::CheckError);
}

}  // namespace
}  // namespace manet::mobility
