// Intra-run sharding determinism guard (net::ShardPlanner).
//
// The planner's contract is that Scenario::sim_jobs changes wall time only:
// for ANY worker count the run is bit-identical to the serial path, because
// workers only precompute pure broadcast scans and every side effect (RNG
// draws, stats, hooks, event scheduling) replays on the commit thread in
// exact serial order. These tests pin that contract with RunResult's
// bit-exact operator== across sim_jobs ∈ {1, 2, 8} on the paper Figure-3
// setup, a resilience-churn slice, a stochastic (shadowing) medium, and a
// randomized cross-shard stress mix; plus a direct planner-engagement check
// so a silent fallback-to-serial cannot fake a pass.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "mobility/factory.h"
#include "net/network.h"
#include "net/shard_planner.h"
#include "radio/medium.h"
#include "scenario/reporting.h"
#include "scenario/scenario.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace manet {
namespace {

scenario::RunResult run_with_jobs(scenario::Scenario s, int jobs) {
  s.sim_jobs = jobs;
  return scenario::run_scenario(s, scenario::factory_by_name("mobic"));
}

// Runs `s` serially and with 2 and 8 workers; every result must be
// bit-identical (RunResult::operator== is defaulted member-wise equality,
// including doubles, counters, fault timelines and the obs snapshot).
void expect_jobs_invariant(const scenario::Scenario& s, const char* what) {
  const scenario::RunResult serial = run_with_jobs(s, 1);
  for (const int jobs : {2, 8}) {
    const scenario::RunResult sharded = run_with_jobs(s, jobs);
    EXPECT_TRUE(serial == sharded)
        << what << ": sim_jobs=" << jobs << " diverged from serial"
        << " (ch_changes " << serial.ch_changes << " vs "
        << sharded.ch_changes << ", hellos " << serial.hellos_delivered
        << " vs " << sharded.hellos_delivered << ", events "
        << serial.events_executed << " vs " << sharded.events_executed
        << ")";
  }
}

TEST(ShardedDeterminism, Fig3BitIdenticalAcrossSimJobs) {
  scenario::Scenario s = scenario::paper_scenario();
  s.sim_time = 60.0;
  for (const double tx : {100.0, 250.0}) {
    s.tx_range = tx;
    expect_jobs_invariant(s, "fig3");
  }
}

TEST(ShardedDeterminism, ResilienceChurnBitIdenticalAcrossSimJobs) {
  scenario::Scenario s = scenario::paper_scenario();
  s.sim_time = 120.0;
  s.faults.begin = 30.0;
  s.faults.end = 90.0;
  s.faults.crash_rate = 0.03;
  s.faults.mean_downtime = 30.0;
  s.faults.loss_burst_rate = 0.02;
  s.faults.loss_burst_duration = 8.0;
  s.faults.loss_burst_probability = 0.9;
  expect_jobs_invariant(s, "resilience-churn");
}

// Stochastic media draw per-candidate fading at commit time (workers only
// precompute distances), which is the other half of the replay contract.
TEST(ShardedDeterminism, ShadowingMediumBitIdenticalAcrossSimJobs) {
  scenario::Scenario s = scenario::paper_scenario();
  s.sim_time = 45.0;
  s.propagation = "shadowing";
  s.shadowing_sigma_db = 6.0;
  expect_jobs_invariant(s, "shadowing");
}

// Randomized stress: varied seeds, fields, densities, mobility models and
// fault mixes, so cross-shard deliveries and epoch bumps (grid refreshes,
// crash/recover liveness barriers) land in many interleavings.
TEST(ShardedDeterminism, RandomizedCrossShardStress) {
  const mobility::ModelKind kinds[] = {
      mobility::ModelKind::kRandomWaypoint, mobility::ModelKind::kRandomWalk,
      mobility::ModelKind::kGaussMarkov, mobility::ModelKind::kManhattan};
  for (int k = 0; k < 4; ++k) {
    scenario::Scenario s = scenario::paper_scenario();
    s.seed = 9000 + 31 * static_cast<std::uint64_t>(k);
    s.sim_time = 30.0;
    s.n_nodes = 40 + 15 * static_cast<std::size_t>(k);
    s.fleet.kind = kinds[k];
    s.fleet.field = geom::Rect(500.0 + 170.0 * k, 500.0 + 170.0 * k);
    s.fleet.max_speed = 10.0 + 5.0 * k;
    s.tx_range = 150.0 + 50.0 * (k % 2);
    s.propagation = (k % 2 == 0) ? "free_space" : "shadowing";
    if (k >= 2) {
      s.faults.begin = 10.0;
      s.faults.end = 25.0;
      s.faults.crash_rate = 0.05;
      s.faults.mean_downtime = 8.0;
    }
    SCOPED_TRACE("stress case " + std::to_string(k));
    expect_jobs_invariant(s, "stress");
  }
}

// Battery drains are charged on the commit thread and depletions are
// injected at drain time, so the energy model is sim_jobs-invariant by
// construction; the composite (Pareto-filtered) elections ride along. The
// tight batteries guarantee real mid-run deaths, so the equality below
// covers the kBatteryDepleted injection path, not just quiet drains.
TEST(ShardedDeterminism, EnergyCompositeBitIdenticalAcrossSimJobs) {
  scenario::Scenario s = scenario::paper_scenario();
  s.sim_time = 60.0;
  s.energy.enabled = true;
  s.energy.capacity_j = 4.0;
  s.energy.capacity_jitter = 0.5;
  s.energy.idle_drain_w = 0.01;
  s.energy.hello_tx_cost_j = 0.02;
  s.energy.hello_rx_cost_j = 0.005;
  for (const char* alg : {"cci", "sd_dwca"}) {
    const auto factory = scenario::factory_by_name(alg);
    scenario::Scenario serial_s = s;
    serial_s.sim_jobs = 1;
    const scenario::RunResult serial =
        scenario::run_scenario(serial_s, factory);
    EXPECT_GT(serial.battery_deaths, 0u)
        << alg << ": no battery died — the invariance check is vacuous";
    for (const int jobs : {2, 8}) {
      scenario::Scenario sharded_s = s;
      sharded_s.sim_jobs = jobs;
      const scenario::RunResult sharded =
          scenario::run_scenario(sharded_s, factory);
      EXPECT_TRUE(serial == sharded)
          << alg << ": sim_jobs=" << jobs << " diverged from serial"
          << " (deaths " << serial.battery_deaths << " vs "
          << sharded.battery_deaths << ", drained " << serial.energy_drained_j
          << " vs " << sharded.energy_drained_j << ")";
    }
  }
}

// Unsupported fleets (RPGM members are not leg-based) must silently fall
// back to serial and stay bit-identical rather than crash or diverge.
TEST(ShardedDeterminism, UnsupportedModelFallsBackToSerial) {
  scenario::Scenario s = scenario::paper_scenario();
  s.sim_time = 30.0;
  s.fleet.kind = mobility::ModelKind::kRpgm;
  expect_jobs_invariant(s, "rpgm-fallback");
}

// Engagement guard: build the planner directly and prove the sharded path
// really speculates and commits scans — otherwise every test above could
// pass vacuously via the serial fallback.
TEST(ShardedDeterminism, PlannerSpeculatesAndCommits) {
  sim::Simulator sim;
  util::Rng root(7);
  mobility::FleetParams fleet;
  fleet.duration = 40.0;
  net::Network network(sim, radio::make_paper_medium(250.0), fleet.field,
                       net::NetworkParams{}, root.substream("network"));
  network.add_fleet(mobility::make_fleet(fleet, 30,
                                         root.substream("mobility")));
  ASSERT_TRUE(net::ShardPlanner::supported(network));
  util::ThreadPool pool(2);
  net::ShardPlanner planner(network, pool);
  network.enable_sharding(&planner);
  for (auto& node : network.nodes()) {
    node->set_agent(std::make_unique<cluster::WeightedClusterAgent>(
        cluster::mobic_options()));
  }
  network.start();
  sim.run_until(20.0);
  planner.shutdown();
  EXPECT_GT(planner.speculated(), 0u) << "no scans were ever speculated";
  EXPECT_GT(planner.committed(), 0u) << "no speculated scan was consumed";
  // Most beacons should ride the speculative path at this scale. Not all:
  // a grid refresh between speculation and fire time bumps the epoch and
  // invalidates the in-flight job (one per ~0.5 s refresh interval).
  EXPECT_GE(planner.committed() * 3, network.stats().beacons_sent * 2)
      << "committed " << planner.committed() << " of "
      << network.stats().beacons_sent << " beacons";
}

}  // namespace
}  // namespace manet
