// Route discovery algorithms on crafted graphs, and the full routing
// experiment driver.
#include <gtest/gtest.h>

#include "routing/discovery.h"
#include "routing/experiment.h"
#include "util/assert.h"

namespace manet::routing {
namespace {

// Line graph 0-1-2-3-4.
Adjacency line5() {
  Adjacency adj(5);
  for (net::NodeId i = 0; i + 1 < 5; ++i) {
    adj[i].push_back(i + 1);
    adj[i + 1].push_back(i);
  }
  return adj;
}

std::vector<NodeClusterState> all_heads(std::size_t n) {
  std::vector<NodeClusterState> s(n);
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = {cluster::Role::kHead, static_cast<net::NodeId>(i), false};
  }
  return s;
}

TEST(FloodDiscoveryTest, FindsShortestPathOnLine) {
  const auto adj = line5();
  const auto r = flood_discovery(adj, 0, 4);
  EXPECT_TRUE(r.reached);
  EXPECT_EQ(r.route_hops, 4u);
  EXPECT_EQ(r.path, (std::vector<net::NodeId>{0, 1, 2, 3, 4}));
  // Nodes 0..3 each broadcast once before 4 is reached.
  EXPECT_EQ(r.control_transmissions, 4u);
}

TEST(FloodDiscoveryTest, UnreachableDestination) {
  Adjacency adj(4);
  adj[0].push_back(1);
  adj[1].push_back(0);  // {0,1} component; {2,3} isolated
  const auto r = flood_discovery(adj, 0, 3);
  EXPECT_FALSE(r.reached);
  EXPECT_EQ(r.route_hops, 0u);
  EXPECT_TRUE(r.path.empty());
  EXPECT_EQ(r.control_transmissions, 2u);  // 0 and 1 both flooded
}

TEST(FloodDiscoveryTest, AdjacentNodes) {
  const auto adj = line5();
  const auto r = flood_discovery(adj, 2, 3);
  EXPECT_TRUE(r.reached);
  EXPECT_EQ(r.route_hops, 1u);
  EXPECT_EQ(r.control_transmissions, 1u);  // only the source broadcast
}

TEST(FloodDiscoveryTest, RejectsBadEndpoints) {
  const auto adj = line5();
  EXPECT_THROW(flood_discovery(adj, 0, 0), util::CheckError);
  EXPECT_THROW(flood_discovery(adj, 0, 9), util::CheckError);
}

TEST(ClusterDiscoveryTest, OnlyOverlayForwards) {
  // Line 0-1-2-3-4 where 1 and 3 are ordinary members (silent) and 2 is a
  // head. A route from 0 to 4 exists physically but the overlay cannot
  // relay past silent nodes: 0 broadcasts, 1 receives but does not
  // forward -> 2 never hears the RREQ.
  const auto adj = line5();
  std::vector<NodeClusterState> state(5);
  state[0] = {cluster::Role::kMember, 2, false};
  state[1] = {cluster::Role::kMember, 2, false};  // silent
  state[2] = {cluster::Role::kHead, 2, false};
  state[3] = {cluster::Role::kMember, 2, false};  // silent
  state[4] = {cluster::Role::kMember, 2, false};
  const auto r = cluster_discovery(adj, state, 0, 4);
  EXPECT_FALSE(r.reached);
  EXPECT_EQ(r.control_transmissions, 1u);  // only the source

  // Promote 1 and 3 to gateways: the overlay now spans the line.
  state[1].gateway = true;
  state[3].gateway = true;
  const auto r2 = cluster_discovery(adj, state, 0, 4);
  EXPECT_TRUE(r2.reached);
  EXPECT_EQ(r2.route_hops, 4u);
  EXPECT_EQ(r2.control_transmissions, 4u);
}

TEST(ClusterDiscoveryTest, OverhearsDestinationWithoutForwarding) {
  // dst adjacent to a forwarding head is found even though dst itself is
  // an ordinary member.
  Adjacency adj(3);
  adj[0] = {1};
  adj[1] = {0, 2};
  adj[2] = {1};
  std::vector<NodeClusterState> state(3);
  state[0] = {cluster::Role::kMember, 1, false};
  state[1] = {cluster::Role::kHead, 1, false};
  state[2] = {cluster::Role::kMember, 1, false};
  const auto r = cluster_discovery(adj, state, 0, 2);
  EXPECT_TRUE(r.reached);
  EXPECT_EQ(r.route_hops, 2u);
}

TEST(ClusterDiscoveryTest, OverheadNeverExceedsFlood) {
  // On any graph where every node forwards, the overlay (a subset of
  // forwarders) spends at most as many transmissions.
  const auto adj = line5();
  const auto flood = flood_discovery(adj, 0, 4);
  const auto overlay = cluster_discovery(adj, all_heads(5), 0, 4);
  EXPECT_TRUE(overlay.reached);
  EXPECT_LE(overlay.control_transmissions, flood.control_transmissions);
}

TEST(ClusterDiscoveryTest, RejectsStateSizeMismatch) {
  const auto adj = line5();
  EXPECT_THROW(cluster_discovery(adj, all_heads(3), 0, 4),
               util::CheckError);
}

TEST(ShortestPathTest, HopCounts) {
  const auto adj = line5();
  EXPECT_EQ(shortest_path_hops(adj, 0, 0), 0u);
  EXPECT_EQ(shortest_path_hops(adj, 0, 3), 3u);
  Adjacency split(2);
  EXPECT_EQ(shortest_path_hops(split, 0, 1), 0u);  // unreachable
}

TEST(RoutingExperimentTest, ProducesCoherentStatistics) {
  RoutingExperimentParams params;
  params.scenario.n_nodes = 25;
  params.scenario.fleet.field = geom::Rect(400.0, 400.0);
  params.scenario.fleet.max_speed = 10.0;
  params.scenario.tx_range = 150.0;
  params.scenario.sim_time = 120.0;
  params.sample_period = 10.0;
  params.discoveries_per_sample = 3;

  const auto r = run_routing_experiment(
      params, scenario::factory_by_name("mobic"));
  EXPECT_GT(r.attempts, 0u);
  // Dense-ish 25-node field: most discoveries succeed.
  EXPECT_GT(r.delivery_flood, 0.5);
  EXPECT_GT(r.delivery_cluster, 0.3);
  EXPECT_GE(r.delivery_flood, r.delivery_cluster - 1e-9);
  // The overlay never transmits more than the flood.
  EXPECT_LE(r.mean_tx_cluster, r.mean_tx_flood + 1e-9);
  // Stretch >= 1 by construction (flood finds shortest paths).
  if (r.mean_stretch > 0.0) {
    EXPECT_GE(r.mean_stretch, 1.0 - 1e-9);
  }
  EXPECT_GT(r.mean_route_lifetime_flood, 0.0);
  EXPECT_GT(r.mean_route_lifetime_cluster, 0.0);
  // Overlay churn is a fraction of nodes per sample.
  EXPECT_GE(r.overlay_churn, 0.0);
  EXPECT_LE(r.overlay_churn, 1.0);
}

TEST(RoutingExperimentTest, DeterministicPerSeed) {
  RoutingExperimentParams params;
  params.scenario.n_nodes = 15;
  params.scenario.fleet.field = geom::Rect(300.0, 300.0);
  params.scenario.tx_range = 120.0;
  params.scenario.sim_time = 60.0;
  params.sample_period = 15.0;

  const auto a = run_routing_experiment(
      params, scenario::factory_by_name("lowest_id"));
  const auto b = run_routing_experiment(
      params, scenario::factory_by_name("lowest_id"));
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_DOUBLE_EQ(a.mean_tx_flood, b.mean_tx_flood);
  EXPECT_DOUBLE_EQ(a.mean_route_lifetime_cluster,
                   b.mean_route_lifetime_cluster);
  EXPECT_EQ(a.ch_changes, b.ch_changes);
}

}  // namespace
}  // namespace manet::routing
