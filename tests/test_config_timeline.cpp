// Scenario config files and the timeline recorder.
#include <sstream>

#include <gtest/gtest.h>

#include "scenario/config.h"
#include "scenario/timeline.h"
#include "util/assert.h"

namespace manet::scenario {
namespace {

TEST(ConfigTest, ParsesAllKeys) {
  std::stringstream ss(R"(
    # a comment
    n_nodes = 30
    field = 500x400
    mobility = highway
    max_speed = 12.5   # trailing comment
    pause_time = 30
    tx_range = 175
    sim_time = 600
    broadcast_interval = 1.5
    neighbor_timeout = 2.5
    packet_loss = 0.1
    collision_window = 0.001
    propagation = shadowing
    shadowing_sigma_db = 5
    seed = 42
    warmup = 20
  )");
  const Scenario s = read_config(ss);
  EXPECT_EQ(s.n_nodes, 30u);
  EXPECT_DOUBLE_EQ(s.fleet.field.width, 500.0);
  EXPECT_DOUBLE_EQ(s.fleet.field.height, 400.0);
  EXPECT_EQ(s.fleet.kind, mobility::ModelKind::kHighway);
  EXPECT_DOUBLE_EQ(s.fleet.max_speed, 12.5);
  EXPECT_DOUBLE_EQ(s.fleet.pause_time, 30.0);
  EXPECT_DOUBLE_EQ(s.tx_range, 175.0);
  EXPECT_DOUBLE_EQ(s.sim_time, 600.0);
  EXPECT_DOUBLE_EQ(s.net.broadcast_interval, 1.5);
  EXPECT_DOUBLE_EQ(s.net.neighbor_timeout, 2.5);
  EXPECT_DOUBLE_EQ(s.net.packet_loss, 0.1);
  EXPECT_DOUBLE_EQ(s.net.collision_window, 0.001);
  EXPECT_EQ(s.propagation, "shadowing");
  EXPECT_DOUBLE_EQ(s.shadowing_sigma_db, 5.0);
  EXPECT_EQ(s.seed, 42u);
  EXPECT_DOUBLE_EQ(s.warmup, 20.0);
}

TEST(ConfigTest, SquareFieldShorthand) {
  std::stringstream ss("field = 1000\n");
  const Scenario s = read_config(ss);
  EXPECT_DOUBLE_EQ(s.fleet.field.width, 1000.0);
  EXPECT_DOUBLE_EQ(s.fleet.field.height, 1000.0);
}

TEST(ConfigTest, DefaultsSurviveEmptyConfig) {
  std::stringstream ss("\n# nothing\n");
  const Scenario s = read_config(ss);
  const Scenario d;
  EXPECT_EQ(s.n_nodes, d.n_nodes);
  EXPECT_DOUBLE_EQ(s.tx_range, d.tx_range);
  EXPECT_DOUBLE_EQ(s.net.broadcast_interval, d.net.broadcast_interval);
}

TEST(ConfigTest, RejectsMalformedInput) {
  {
    std::stringstream ss("n_nodes 50\n");  // missing '='
    EXPECT_THROW(read_config(ss), util::CheckError);
  }
  {
    std::stringstream ss("made_up_key = 1\n");
    EXPECT_THROW(read_config(ss), util::CheckError);
  }
  {
    std::stringstream ss("tx_range = many\n");
    EXPECT_THROW(read_config(ss), util::CheckError);
  }
  {
    std::stringstream ss("tx_range =\n");
    EXPECT_THROW(read_config(ss), util::CheckError);
  }
  EXPECT_THROW(read_config_file("/no/such/file.conf"), util::CheckError);
}

TEST(ConfigTest, WriteReadRoundTrip) {
  Scenario s;
  s.n_nodes = 77;
  s.fleet.kind = mobility::ModelKind::kRpgm;
  s.fleet.field = geom::Rect(123.0, 456.0);
  s.fleet.max_speed = 3.25;
  s.fleet.rpgm_group_size = 7;
  s.tx_range = 87.5;
  s.sim_time = 333.0;
  s.net.packet_loss = 0.05;
  s.propagation = "two_ray";
  s.seed = 99;

  std::stringstream ss;
  write_config(ss, s);
  const Scenario parsed = read_config(ss);
  EXPECT_EQ(parsed.n_nodes, s.n_nodes);
  EXPECT_EQ(parsed.fleet.kind, s.fleet.kind);
  EXPECT_DOUBLE_EQ(parsed.fleet.field.width, s.fleet.field.width);
  EXPECT_DOUBLE_EQ(parsed.fleet.field.height, s.fleet.field.height);
  EXPECT_DOUBLE_EQ(parsed.fleet.max_speed, s.fleet.max_speed);
  EXPECT_EQ(parsed.fleet.rpgm_group_size, s.fleet.rpgm_group_size);
  EXPECT_DOUBLE_EQ(parsed.tx_range, s.tx_range);
  EXPECT_DOUBLE_EQ(parsed.sim_time, s.sim_time);
  EXPECT_DOUBLE_EQ(parsed.net.packet_loss, s.net.packet_loss);
  EXPECT_EQ(parsed.propagation, s.propagation);
  EXPECT_EQ(parsed.seed, s.seed);
}

TEST(ConfigTest, ParsedConfigRunsIdenticallyToStruct) {
  Scenario s;
  s.n_nodes = 15;
  s.fleet.field = geom::Rect(300.0, 300.0);
  s.tx_range = 120.0;
  s.sim_time = 60.0;
  std::stringstream ss;
  write_config(ss, s);
  const Scenario parsed = read_config(ss);
  const auto a = run_scenario(s, factory_by_name("mobic"));
  const auto b = run_scenario(parsed, factory_by_name("mobic"));
  EXPECT_EQ(a.ch_changes, b.ch_changes);
  EXPECT_EQ(a.hellos_delivered, b.hellos_delivered);
}

TEST(TimelineTest, RecordsEventsAndSnapshots) {
  Scenario s;
  s.n_nodes = 12;
  s.fleet.field = geom::Rect(300.0, 300.0);
  s.fleet.max_speed = 10.0;
  s.tx_range = 120.0;
  s.sim_time = 60.0;

  TimelineRecorder recorder;
  const auto on_start = [&](LiveContext& ctx) {
    recorder.schedule_snapshots(ctx, 10.0, s.sim_time);
  };
  run_scenario(s, factory_by_name("mobic"), on_start, &recorder);

  // 7 snapshot instants (0..60 step 10) x 12 nodes.
  EXPECT_EQ(recorder.snapshots().size(), 7u * 12u);
  EXPECT_FALSE(recorder.role_events().empty());
  EXPECT_FALSE(recorder.affiliation_events().empty());

  // Events are time-ordered.
  for (std::size_t i = 1; i < recorder.role_events().size(); ++i) {
    EXPECT_LE(recorder.role_events()[i - 1].t, recorder.role_events()[i].t);
  }
  // At t = 0 everyone is undecided; by the end everyone is decided.
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(recorder.snapshots()[i].role, cluster::Role::kUndecided);
  }
  const auto& last = recorder.snapshots().back();
  EXPECT_DOUBLE_EQ(last.t, 60.0);
  // head_at reconstructs affiliation from snapshots.
  EXPECT_EQ(recorder.head_at(60.0, last.node), last.head);
  EXPECT_EQ(recorder.head_at(-1.0, 0), net::kInvalidNode);
}

TEST(TimelineTest, CsvExports) {
  Scenario s;
  s.n_nodes = 6;
  s.fleet.field = geom::Rect(200.0, 200.0);
  s.tx_range = 100.0;
  s.sim_time = 30.0;

  TimelineRecorder recorder;
  run_scenario(
      s, factory_by_name("lowest_id"),
      [&](LiveContext& ctx) { recorder.schedule_snapshots(ctx, 15.0, 30.0); },
      &recorder);

  std::stringstream events;
  recorder.write_events_csv(events);
  std::string header;
  std::getline(events, header);
  EXPECT_EQ(header, "t,node,kind,from,to");
  // The merged log contains both kinds.
  const std::string body = events.str();
  EXPECT_NE(body.find(",role,"), std::string::npos);
  EXPECT_NE(body.find(",affiliation,"), std::string::npos);

  std::stringstream snaps;
  recorder.write_snapshots_csv(snaps);
  std::getline(snaps, header);
  EXPECT_EQ(header, "t,node,x,y,role,head,gateway,metric");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(snaps, line)) {
    ++rows;
  }
  EXPECT_EQ(rows, 3u * 6u);
}

TEST(TimelineTest, StatsUnaffectedByExtraSink) {
  Scenario s;
  s.n_nodes = 10;
  s.fleet.field = geom::Rect(300.0, 300.0);
  s.tx_range = 120.0;
  s.sim_time = 60.0;
  const auto plain = run_scenario(s, factory_by_name("mobic"));
  TimelineRecorder recorder;
  const auto with_sink =
      run_scenario(s, factory_by_name("mobic"), nullptr, &recorder);
  EXPECT_EQ(plain.ch_changes, with_sink.ch_changes);
  EXPECT_EQ(plain.reaffiliations, with_sink.reaffiliations);
}

}  // namespace
}  // namespace manet::scenario
