// Property-based tests of Theorem 1 (paper §3.2): for every algorithm in
// the weight-based family, on random static topologies of varying density,
// the converged clustering satisfies
//   (a) every node is decided,
//   (b) clusters have diameter <= 2 hops (every member hears its head),
//   (c) no two clusterheads are within range of each other,
// and the clusterhead set is exactly the expected one for Lowest-ID
// (computed by an independent reference implementation).
#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "cluster/validation.h"
#include "helpers.h"
#include "mobility/trace.h"
#include "util/rng.h"

namespace manet::cluster {
namespace {

std::vector<geom::Vec2> random_positions(std::uint64_t seed, std::size_t n,
                                         double side) {
  util::Rng rng(seed);
  const geom::Rect field(side, side);
  std::vector<geom::Vec2> out(n);
  for (auto& p : out) {
    p = field.sample(rng);
  }
  return out;
}

// Reference Lowest-ID head set: greedy over ascending ids — a node becomes
// a head iff no smaller-id node within range is already a head and it is
// not "covered"... precisely: process ids ascending; a node is a head iff
// no head among its in-range smaller-id nodes.
std::vector<bool> reference_lowest_id_heads(
    const std::vector<geom::Vec2>& pos, double range) {
  std::vector<bool> head(pos.size(), false);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    bool covered = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (head[j] && geom::distance(pos[i], pos[j]) <= range) {
        covered = true;
        break;
      }
    }
    head[i] = !covered;
  }
  return head;
}

struct Params {
  std::uint64_t seed;
  std::size_t n;
  double side;
  double range;
};

class TheoremOne : public ::testing::TestWithParam<Params> {};

TEST_P(TheoremOne, HoldsForAllAlgorithms) {
  const auto p = GetParam();
  const auto positions = random_positions(p.seed, p.n, p.side);

  const std::vector<std::pair<std::string, ClusterOptions>> algorithms = {
      {"lowest_id", lowest_id_lcc_options()},
      {"mobic", mobic_options()},
      {"max_connectivity", max_connectivity_options()},
      {"plain", lowest_id_plain_options()},
  };
  for (const auto& [name, options] : algorithms) {
    auto world = test::make_static_world(positions, p.range, options,
                                         p.seed ^ 0xABCD);
    // Convergence is O(network diameter) beacon rounds; be generous.
    world->run(40.0);
    const auto report =
        validate_clusters(*world->network, world->const_agents(), 40.0);
    EXPECT_TRUE(report.clean())
        << name << " on seed=" << p.seed << " n=" << p.n
        << " range=" << p.range << ": " << report.to_string();
  }
}

TEST_P(TheoremOne, LowestIdMatchesReferenceHeadSet) {
  const auto p = GetParam();
  const auto positions = random_positions(p.seed, p.n, p.side);
  const auto expected = reference_lowest_id_heads(positions, p.range);

  auto world = test::make_static_world(positions, p.range,
                                       lowest_id_lcc_options(), p.seed);
  world->run(40.0);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    EXPECT_EQ(world->agents[i]->role() == Role::kHead, expected[i])
        << "node " << i << " seed=" << p.seed << " n=" << p.n
        << " range=" << p.range;
  }
}

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  return "seed" + std::to_string(info.param.seed) + "_n" +
         std::to_string(info.param.n) + "_r" +
         std::to_string(static_cast<int>(info.param.range));
}

INSTANTIATE_TEST_SUITE_P(
    RandomTopologies, TheoremOne,
    ::testing::Values(
        // Sparse to dense, small to larger, across seeds.
        Params{1, 10, 400.0, 80.0}, Params{2, 10, 400.0, 150.0},
        Params{3, 20, 500.0, 100.0}, Params{4, 20, 500.0, 250.0},
        Params{5, 30, 670.0, 60.0}, Params{6, 30, 670.0, 120.0},
        Params{7, 40, 670.0, 200.0}, Params{8, 50, 670.0, 100.0},
        Params{9, 50, 1000.0, 150.0}, Params{10, 15, 300.0, 300.0}),
    param_name);

// Dynamic-scenario safety property: Theorem 1's "no two heads in range"
// may be transiently violated while nodes move (contention is deferred by
// CCI), but must be restored once motion stops.
TEST(TheoremOneDynamic, QuiescenceRestoresInvariants) {
  // Nodes move for 60 s, then freeze (trace clamps to the last position).
  util::Rng rng(77);
  const geom::Rect field(500.0, 500.0);
  std::vector<mobility::PiecewiseLinearTrack> tracks;
  for (int i = 0; i < 20; ++i) {
    mobility::PiecewiseLinearTrack t;
    geom::Vec2 p = field.sample(rng);
    t.append(0.0, p);
    for (double time = 10.0; time <= 60.0; time += 10.0) {
      p = field.sample(rng);
      t.append(time, p);
    }
    tracks.push_back(std::move(t));
  }

  sim::Simulator sim;
  util::Rng root(78);
  net::Network network(sim, radio::make_paper_medium(150.0), field,
                       net::NetworkParams{}, root.substream("net"));
  std::vector<const WeightedClusterAgent*> agents;
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    auto node = std::make_unique<net::Node>(
        static_cast<net::NodeId>(i),
        std::make_unique<mobility::TraceModel>(tracks[i]),
        root.substream("node", i));
    auto agent =
        std::make_unique<WeightedClusterAgent>(mobic_options());
    agents.push_back(agent.get());
    node->set_agent(std::move(agent));
    network.add_node(std::move(node));
  }
  network.start();
  // Long after quiescence (M decays to 0 and contentions resolve):
  sim.run_until(150.0);
  const auto report = validate_clusters(network, agents, 150.0);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

}  // namespace
}  // namespace manet::cluster
