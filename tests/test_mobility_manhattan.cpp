// Manhattan-grid mobility.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "mobility/factory.h"
#include "mobility/manhattan.h"
#include "util/assert.h"

namespace manet::mobility {
namespace {

ManhattanParams city() {
  ManhattanParams p;
  p.field = geom::Rect(600.0, 400.0);
  p.block_size = 100.0;
  p.min_speed = 5.0;
  p.max_speed = 15.0;
  p.turn_probability = 0.5;
  return p;
}

bool on_street(geom::Vec2 pos, double block) {
  const auto near_grid = [block](double v) {
    const double r = std::fmod(v, block);
    return r < 1e-6 || block - r < 1e-6;
  };
  return near_grid(pos.x) || near_grid(pos.y);
}

TEST(ManhattanTest, StaysOnStreets) {
  Manhattan m(city(), util::Rng(1));
  for (double t = 0.0; t <= 600.0; t += 0.25) {
    const auto pos = m.position(t);
    EXPECT_TRUE(on_street(pos, 100.0))
        << "t=" << t << " pos=(" << pos.x << "," << pos.y << ")";
    EXPECT_TRUE(city().field.contains(pos));
  }
}

TEST(ManhattanTest, MovesAxisAligned) {
  Manhattan m(city(), util::Rng(2));
  for (double t = 0.5; t <= 300.0; t += 1.0) {
    const auto v = m.velocity(t);
    // One component zero, the other within the speed band.
    const double speed = v.norm();
    EXPECT_GE(speed, 5.0 - 1e-9);
    EXPECT_LE(speed, 15.0 + 1e-9);
    EXPECT_LT(std::min(std::abs(v.x), std::abs(v.y)), 1e-9);
  }
}

TEST(ManhattanTest, StreetCounts) {
  Manhattan m(city(), util::Rng(3));
  EXPECT_EQ(m.streets_x(), 7);  // x = 0, 100, ..., 600
  EXPECT_EQ(m.streets_y(), 5);  // y = 0, 100, ..., 400
}

TEST(ManhattanTest, EventuallyTurns) {
  Manhattan m(city(), util::Rng(4));
  std::set<int> axes;
  for (double t = 0.5; t <= 300.0; t += 1.0) {
    const auto v = m.velocity(t);
    axes.insert(std::abs(v.x) > std::abs(v.y) ? 0 : 1);
  }
  EXPECT_EQ(axes.size(), 2u) << "node never turned in 300 s";
}

TEST(ManhattanTest, ZeroTurnProbabilityTurnsOnlyAtBoundary) {
  auto p = city();
  p.turn_probability = 0.0;
  Manhattan m(p, util::Rng(5));
  bool was_horizontal = false;
  bool first = true;
  for (double t = 0.05; t <= 400.0; t += 0.1) {
    const auto v = m.velocity(t);
    const bool horizontal = std::abs(v.x) > std::abs(v.y);
    if (!first && horizontal != was_horizontal) {
      // A turn just happened; it must have been forced by a field edge.
      const auto pos = m.position(t);
      const double edge_dist =
          std::min(std::min(pos.x, p.field.width - pos.x),
                   std::min(pos.y, p.field.height - pos.y));
      EXPECT_LT(edge_dist, 2.0) << "spontaneous turn at t=" << t << " ("
                                << pos.x << "," << pos.y << ")";
    }
    was_horizontal = horizontal;
    first = false;
  }
}

TEST(ManhattanTest, Deterministic) {
  Manhattan a(city(), util::Rng(6));
  Manhattan b(city(), util::Rng(6));
  for (double t = 0.0; t <= 120.0; t += 3.0) {
    EXPECT_EQ(a.position(t), b.position(t));
  }
}

TEST(ManhattanTest, RejectsBadParams) {
  auto p = city();
  p.block_size = 0.0;
  EXPECT_THROW(Manhattan(p, util::Rng(1)), util::CheckError);
  p = city();
  p.block_size = 1000.0;  // bigger than the field
  EXPECT_THROW(Manhattan(p, util::Rng(1)), util::CheckError);
  p = city();
  p.turn_probability = 1.5;
  EXPECT_THROW(Manhattan(p, util::Rng(1)), util::CheckError);
}

TEST(ManhattanTest, FactoryIntegration) {
  EXPECT_EQ(parse_model_kind("manhattan"), ModelKind::kManhattan);
  EXPECT_EQ(model_kind_name(ModelKind::kManhattan), "manhattan");
  FleetParams fp;
  fp.kind = ModelKind::kManhattan;
  fp.field = geom::Rect(600.0, 400.0);
  fp.min_speed = 5.0;
  fp.max_speed = 15.0;
  auto fleet = make_fleet(fp, 8, util::Rng(7));
  ASSERT_EQ(fleet.size(), 8u);
  for (auto& m : fleet) {
    for (double t = 0.0; t <= 100.0; t += 5.0) {
      EXPECT_TRUE(fp.field.contains(m->position(t)));
    }
  }
}

}  // namespace
}  // namespace manet::mobility
