// Scenario runner and experiment harness: determinism, replication,
// aggregation, and configuration plumbing.
#include <gtest/gtest.h>

#include "scenario/runner.h"
#include "util/assert.h"

namespace manet::scenario {
namespace {

Scenario small_scenario() {
  Scenario s;
  s.n_nodes = 20;
  s.fleet.field = geom::Rect(400.0, 400.0);
  s.fleet.max_speed = 10.0;
  s.tx_range = 120.0;
  s.sim_time = 120.0;
  s.warmup = 10.0;
  s.seed = 3;
  return s;
}

TEST(RunScenarioTest, SameSeedIsBitwiseRepeatable) {
  const auto s = small_scenario();
  const auto a = run_scenario(s, factory_by_name("mobic"));
  const auto b = run_scenario(s, factory_by_name("mobic"));
  EXPECT_EQ(a.ch_changes, b.ch_changes);
  EXPECT_EQ(a.reaffiliations, b.reaffiliations);
  EXPECT_DOUBLE_EQ(a.avg_clusters, b.avg_clusters);
  EXPECT_DOUBLE_EQ(a.mean_degree, b.mean_degree);
  EXPECT_EQ(a.beacons_sent, b.beacons_sent);
  EXPECT_EQ(a.hellos_delivered, b.hellos_delivered);
}

TEST(RunScenarioTest, DifferentSeedsDiffer) {
  auto s = small_scenario();
  const auto a = run_scenario(s, factory_by_name("mobic"));
  s.seed = 4;
  const auto b = run_scenario(s, factory_by_name("mobic"));
  EXPECT_NE(a.hellos_delivered, b.hellos_delivered);
}

TEST(RunScenarioTest, ProducesSaneAggregates) {
  const auto s = small_scenario();
  const auto r = run_scenario(s, factory_by_name("lowest_id"));
  // 20 nodes beaconing every 2 s for 120 s: ~1200 beacons.
  EXPECT_NEAR(static_cast<double>(r.beacons_sent), 1200.0, 40.0);
  EXPECT_GT(r.hellos_delivered, r.beacons_sent);  // multiple receivers each
  EXPECT_GT(r.bytes_sent, r.beacons_sent * 15);   // hello >= 15 B + payload
  EXPECT_GT(r.avg_clusters, 1.0);
  EXPECT_LT(r.avg_clusters, 20.0);
  EXPECT_GT(r.avg_cluster_size, 1.0);
  EXPECT_GT(r.mean_degree, 0.5);
  EXPECT_GT(r.mean_head_lifetime, 0.0);
  EXPECT_LT(r.avg_undecided, 2.0);
}

TEST(RunScenarioTest, HonorsPropagationChoice) {
  auto s = small_scenario();
  s.propagation = "shadowing";
  s.shadowing_sigma_db = 6.0;
  const auto shadowed = run_scenario(s, factory_by_name("mobic"));
  s.propagation = "free_space";
  const auto clean = run_scenario(s, factory_by_name("mobic"));
  // Shadowing must change the delivery pattern.
  EXPECT_NE(shadowed.hellos_delivered, clean.hellos_delivered);
}

TEST(RunScenarioTest, RejectsBadConfigs) {
  auto s = small_scenario();
  s.n_nodes = 1;
  EXPECT_THROW(run_scenario(s, factory_by_name("mobic")), util::CheckError);
  s = small_scenario();
  s.sim_time = 5.0;  // <= warmup
  EXPECT_THROW(run_scenario(s, factory_by_name("mobic")), util::CheckError);
  EXPECT_THROW(factory_by_name("nonsense")(nullptr), util::CheckError);
}

TEST(RunScenarioTest, OnStartHookRuns) {
  const auto s = small_scenario();
  int hook_calls = 0;
  std::size_t network_size = 0;
  run_scenario(s, factory_by_name("mobic"), [&](LiveContext& ctx) {
    ++hook_calls;
    network_size = ctx.network.size();
    EXPECT_DOUBLE_EQ(ctx.sim.now(), 0.0);
  });
  EXPECT_EQ(hook_calls, 1);
  EXPECT_EQ(network_size, 20u);
}

TEST(ReplicationTest, VariesSeedsOnly) {
  const Runner runner;
  const auto runs =
      runner.replications(small_scenario(), factory_by_name("mobic"), 3);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_NE(runs[0].hellos_delivered, runs[1].hellos_delivered);
  // Re-running reproduces the set exactly.
  const auto again =
      runner.replications(small_scenario(), factory_by_name("mobic"), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(runs[i].ch_changes, again[i].ch_changes);
  }
  EXPECT_THROW(runner.replications(small_scenario(),
                                   factory_by_name("mobic"), 0),
               util::CheckError);
}

TEST(AggregateTest, ComputesMeanCi) {
  std::vector<RunResult> runs(3);
  runs[0].ch_changes = 10;
  runs[1].ch_changes = 20;
  runs[2].ch_changes = 30;
  const auto agg = aggregate(runs, field_ch_changes);
  EXPECT_DOUBLE_EQ(agg.mean, 20.0);
  EXPECT_EQ(agg.n, 3u);
  EXPECT_GT(agg.half_width, 0.0);
}

TEST(SweepTest, RunsGridAndLabelsPoints) {
  SweepSpec spec;
  spec.base = small_scenario();
  spec.base.sim_time = 60.0;
  spec.xs = {80.0, 160.0};
  spec.configure = [](Scenario& s, double tx) { s.tx_range = tx; };
  spec.algorithms = paper_algorithms();
  spec.fields = {{"clusters", field_avg_clusters}};
  spec.replications = 2;
  const auto series = Runner().run(spec).series("clusters");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].x, 80.0);
  EXPECT_DOUBLE_EQ(series[1].x, 160.0);
  for (const auto& p : series) {
    EXPECT_TRUE(p.values.count("mobic"));
    EXPECT_TRUE(p.values.count("lowest_id"));
  }
  // Bigger range -> fewer clusters, for both algorithms.
  EXPECT_LT(series[1].values.at("mobic").mean,
            series[0].values.at("mobic").mean);
  auto empty = spec;
  empty.xs.clear();
  EXPECT_THROW(Runner().run(empty), util::CheckError);
}

TEST(FieldFnTest, Accessors) {
  RunResult r;
  r.ch_changes = 5;
  r.avg_clusters = 7.5;
  r.reaffiliations = 11;
  r.mean_head_lifetime = 42.0;
  r.mean_degree = 3.25;
  r.beacons_sent = 17;
  r.bytes_sent = 1234;
  EXPECT_DOUBLE_EQ(field_ch_changes(r), 5.0);
  EXPECT_DOUBLE_EQ(field_avg_clusters(r), 7.5);
  EXPECT_DOUBLE_EQ(field_reaffiliations(r), 11.0);
  EXPECT_DOUBLE_EQ(field_head_lifetime(r), 42.0);
  EXPECT_DOUBLE_EQ(field_mean_degree(r), 3.25);
  EXPECT_DOUBLE_EQ(field_beacons_sent(r), 17.0);
  EXPECT_DOUBLE_EQ(field_bytes_sent(r), 1234.0);
}

}  // namespace
}  // namespace manet::scenario
