// Discrete-event engine: queue ordering, cancellation, simulator semantics,
// timers.
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "util/assert.h"

namespace manet::sim {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) {
    q.pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SimultaneousEventsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.pop().fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, CancelPending) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.pending(id));
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.pending(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.cancel(id));  // double cancel is a no-op
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelledEventsAreSkipped) {
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(1); });
  const EventId id = q.push(2.0, [&] { order.push_back(2); });
  q.push(3.0, [&] { order.push_back(3); });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  q.pop().fn();
  EXPECT_DOUBLE_EQ(q.next_time(), 3.0);  // 2.0 was cancelled
  q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, Counters) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.cancel(a);
  EXPECT_EQ(q.total_scheduled(), 2u);
  EXPECT_EQ(q.total_cancelled(), 1u);
}

TEST(EventQueueTest, RejectsNullHandlerAndEmptyPop) {
  EventQueue q;
  EXPECT_THROW(q.push(0.0, nullptr), util::CheckError);
  EXPECT_THROW(q.pop(), util::CheckError);
  EXPECT_THROW(q.next_time(), util::CheckError);
}

TEST(SimulatorTest, NowAdvancesWithEvents) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(5.0, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(SimulatorTest, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_in(3.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(SimulatorTest, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), util::CheckError);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), util::CheckError);
}

TEST(SimulatorTest, RunUntilAdvancesClockPastLastEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(100.0, [&] { ++fired; });
  sim.run_until(50.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 50.0);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(100.0);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventAtExactBoundaryRuns) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(10.0, [&] { fired = true; });
  sim.run_until(10.0);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  // A fresh run resumes from where it stopped.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, StepExecutesOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(PeriodicTimerTest, FiresAtFixedCadence) {
  Simulator sim;
  std::vector<Time> fires;
  PeriodicTimer timer(sim, [&] { fires.push_back(sim.now()); });
  timer.start(1.0, 2.0);
  sim.run_until(7.5);
  ASSERT_EQ(fires.size(), 4u);
  EXPECT_DOUBLE_EQ(fires[0], 1.0);
  EXPECT_DOUBLE_EQ(fires[3], 7.0);
}

TEST(PeriodicTimerTest, StopPreventsFurtherFires) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, [&] { ++fires; });
  timer.start(1.0, 1.0);
  sim.run_until(2.5);
  timer.stop();
  EXPECT_FALSE(timer.running());
  sim.run_until(10.0);
  EXPECT_EQ(fires, 2);
}

TEST(PeriodicTimerTest, SetPeriodTakesEffectNextFire) {
  Simulator sim;
  std::vector<Time> fires;
  PeriodicTimer timer(sim, [&] { fires.push_back(sim.now()); });
  timer.start(1.0, 1.0);
  sim.schedule_at(1.5, [&] { timer.set_period(3.0); });
  sim.run_until(8.0);
  // Fires at 1 (then rescheduled +1 -> 2 before set_period applies? No:
  // set_period at 1.5 changes the *next* reschedule; the event at 2.0 was
  // already scheduled, so: 1, 2, then every 3: 5, 8.
  ASSERT_EQ(fires.size(), 4u);
  EXPECT_DOUBLE_EQ(fires[1], 2.0);
  EXPECT_DOUBLE_EQ(fires[2], 5.0);
  EXPECT_DOUBLE_EQ(fires[3], 8.0);
}

TEST(PeriodicTimerTest, CallbackCanStopTimer) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, [&] {
    if (++fires == 3) {
      timer.stop();
    }
  });
  timer.start(1.0, 1.0);
  sim.run();
  EXPECT_EQ(fires, 3);
}

TEST(OneShotTimerTest, FiresOnce) {
  Simulator sim;
  int fires = 0;
  OneShotTimer timer(sim, [&] { ++fires; });
  timer.arm(2.0);
  EXPECT_TRUE(timer.armed());
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(timer.armed());
}

TEST(OneShotTimerTest, RearmReplacesPending) {
  Simulator sim;
  std::vector<Time> fires;
  OneShotTimer timer(sim, [&] { fires.push_back(sim.now()); });
  timer.arm(2.0);
  sim.schedule_at(1.0, [&] { timer.arm(5.0); });  // replaces the 2.0 expiry
  sim.run();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_DOUBLE_EQ(fires[0], 6.0);
}

TEST(OneShotTimerTest, CancelIsIdempotent) {
  Simulator sim;
  int fires = 0;
  OneShotTimer timer(sim, [&] { ++fires; });
  timer.arm(1.0);
  timer.cancel();
  timer.cancel();
  sim.run();
  EXPECT_EQ(fires, 0);
}

}  // namespace
}  // namespace manet::sim
