// PiecewiseLinearTrack, trace recording/replay and CSV round-trip.
#include <sstream>

#include <gtest/gtest.h>

#include "mobility/random_waypoint.h"
#include "mobility/trace.h"
#include "mobility/track.h"
#include "util/assert.h"

namespace manet::mobility {
namespace {

TEST(TrackTest, InterpolatesLinearly) {
  PiecewiseLinearTrack t;
  t.append(0.0, {0.0, 0.0});
  t.append(10.0, {100.0, 0.0});
  t.append(20.0, {100.0, 50.0});
  EXPECT_EQ(t.position(0.0), (geom::Vec2{0.0, 0.0}));
  EXPECT_EQ(t.position(5.0), (geom::Vec2{50.0, 0.0}));
  EXPECT_EQ(t.position(10.0), (geom::Vec2{100.0, 0.0}));
  EXPECT_EQ(t.position(15.0), (geom::Vec2{100.0, 25.0}));
  EXPECT_EQ(t.position(20.0), (geom::Vec2{100.0, 50.0}));
}

TEST(TrackTest, ClampsOutsideSpan) {
  PiecewiseLinearTrack t;
  t.append(1.0, {5.0, 5.0});
  t.append(2.0, {6.0, 6.0});
  EXPECT_EQ(t.position(0.0), (geom::Vec2{5.0, 5.0}));
  EXPECT_EQ(t.position(99.0), (geom::Vec2{6.0, 6.0}));
  EXPECT_EQ(t.velocity(0.0), (geom::Vec2{0.0, 0.0}));
  EXPECT_EQ(t.velocity(99.0), (geom::Vec2{0.0, 0.0}));
}

TEST(TrackTest, VelocityPerSegment) {
  PiecewiseLinearTrack t;
  t.append(0.0, {0.0, 0.0});
  t.append(10.0, {100.0, 0.0});
  t.append(30.0, {100.0, 100.0});
  EXPECT_EQ(t.velocity(5.0), (geom::Vec2{10.0, 0.0}));
  EXPECT_EQ(t.velocity(20.0), (geom::Vec2{0.0, 5.0}));
}

TEST(TrackTest, SupportsArbitraryQueryOrder) {
  // Unlike LegBasedModel, tracks allow going back in time (needed by the
  // shared RPGM center and post-hoc route analysis).
  PiecewiseLinearTrack t;
  t.append(0.0, {0.0, 0.0});
  t.append(10.0, {10.0, 0.0});
  EXPECT_EQ(t.position(9.0), (geom::Vec2{9.0, 0.0}));
  EXPECT_EQ(t.position(1.0), (geom::Vec2{1.0, 0.0}));
  EXPECT_EQ(t.position(8.0), (geom::Vec2{8.0, 0.0}));
}

TEST(TrackTest, RejectsMisuse) {
  PiecewiseLinearTrack t;
  EXPECT_THROW(t.position(0.0), util::CheckError);
  t.append(5.0, {0.0, 0.0});
  EXPECT_THROW(t.append(5.0, {1.0, 1.0}), util::CheckError);  // not increasing
  EXPECT_THROW(t.append(4.0, {1.0, 1.0}), util::CheckError);
}

TEST(RecordTrackTest, MatchesSourceModel) {
  RandomWaypointParams p;
  p.field = geom::Rect(300.0, 300.0);
  p.max_speed = 10.0;
  RandomWaypoint source(p, util::Rng(3));
  RandomWaypoint reference(p, util::Rng(3));

  const auto track = record_track(source, 120.0, 0.5);
  EXPECT_DOUBLE_EQ(track.begin_time(), 0.0);
  EXPECT_DOUBLE_EQ(track.end_time(), 120.0);
  // At sample instants the track is exact; between them the linear
  // interpolation of a piecewise-linear motion is also near-exact away from
  // waypoint turns.
  for (double t = 0.0; t <= 120.0; t += 0.5) {
    EXPECT_LE(geom::distance(track.position(t), reference.position(t)), 1e-9);
  }
}

TEST(TraceModelTest, ReplaysTrack) {
  PiecewiseLinearTrack t;
  t.append(0.0, {0.0, 0.0});
  t.append(10.0, {10.0, 10.0});
  TraceModel model(std::move(t));
  EXPECT_EQ(model.position(5.0), (geom::Vec2{5.0, 5.0}));
  EXPECT_NEAR(model.velocity(5.0).x, 1.0, 1e-12);
}

TEST(TraceModelTest, RejectsEmptyTrack) {
  EXPECT_THROW(TraceModel(PiecewiseLinearTrack{}), util::CheckError);
}

TEST(TraceCsvTest, RoundTrips) {
  std::vector<PiecewiseLinearTrack> tracks(2);
  tracks[0].append(0.0, {1.5, 2.5});
  tracks[0].append(1.0, {3.5, 4.5});
  tracks[1].append(0.0, {9.0, 8.0});

  std::stringstream ss;
  write_traces_csv(ss, tracks);
  const auto parsed = read_traces_csv(ss);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].size(), 2u);
  EXPECT_EQ(parsed[1].size(), 1u);
  EXPECT_EQ(parsed[0].position(0.5), (geom::Vec2{2.5, 3.5}));
  EXPECT_EQ(parsed[1].position(0.0), (geom::Vec2{9.0, 8.0}));
}

TEST(TraceCsvTest, RejectsMalformedInput) {
  {
    std::stringstream ss("bogus header\n");
    EXPECT_THROW(read_traces_csv(ss), util::CheckError);
  }
  {
    std::stringstream ss("node,t,x,y\n0,1,2\n");  // missing field
    EXPECT_THROW(read_traces_csv(ss), util::CheckError);
  }
  {
    std::stringstream ss("node,t,x,y\n0,zero,2,3\n");  // bad number
    EXPECT_THROW(read_traces_csv(ss), util::CheckError);
  }
}

TEST(TraceCsvTest, SkipsBlankLines) {
  std::stringstream ss("node,t,x,y\n\n0,0,1,1\n\n0,1,2,2\n");
  const auto parsed = read_traces_csv(ss);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].size(), 2u);
}

}  // namespace
}  // namespace manet::mobility
