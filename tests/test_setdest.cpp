// ns-2 setdest scenario import/export.
#include <sstream>

#include <gtest/gtest.h>

#include "mobility/random_waypoint.h"
#include "mobility/setdest.h"
#include "mobility/trace.h"
#include "util/assert.h"

namespace manet::mobility {
namespace {

TEST(SetdestReadTest, ParsesCanonicalScript) {
  std::stringstream ss(R"(
# a comment
$node_(0) set X_ 10.0
$node_(0) set Y_ 20.0
$node_(0) set Z_ 0.0
$node_(1) set X_ 0.0
$node_(1) set Y_ 0.0
$ns_ at 0.0 "$node_(1) setdest 100.0 0.0 10.0"
$ns_ at 5.0 "$node_(0) setdest 10.0 120.0 20.0"
)");
  const auto tracks = read_setdest(ss, 60.0);
  ASSERT_EQ(tracks.size(), 2u);

  // Node 0 sits still, then moves 100 m north at 20 m/s starting t=5.
  EXPECT_EQ(tracks[0].position(0.0), (geom::Vec2{10.0, 20.0}));
  EXPECT_EQ(tracks[0].position(5.0), (geom::Vec2{10.0, 20.0}));
  EXPECT_EQ(tracks[0].position(7.5), (geom::Vec2{10.0, 70.0}));
  EXPECT_EQ(tracks[0].position(10.0), (geom::Vec2{10.0, 120.0}));
  EXPECT_EQ(tracks[0].position(60.0), (geom::Vec2{10.0, 120.0}));

  // Node 1 crosses to x=100 at 10 m/s, arriving at t=10.
  EXPECT_EQ(tracks[1].position(5.0), (geom::Vec2{50.0, 0.0}));
  EXPECT_EQ(tracks[1].position(10.0), (geom::Vec2{100.0, 0.0}));
}

TEST(SetdestReadTest, MidFlightRedirection) {
  // Redirect at t=5 while the node is halfway: the new leg starts from the
  // in-flight position, exactly like the ns-2 mobile node.
  std::stringstream ss(R"(
$node_(0) set X_ 0.0
$node_(0) set Y_ 0.0
$ns_ at 0.0 "$node_(0) setdest 100.0 0.0 10.0"
$ns_ at 5.0 "$node_(0) setdest 50.0 40.0 10.0"
)");
  const auto tracks = read_setdest(ss, 30.0);
  EXPECT_EQ(tracks[0].position(5.0), (geom::Vec2{50.0, 0.0}));
  // From (50,0) to (50,40) is 40 m at 10 m/s -> arrive t=9.
  EXPECT_EQ(tracks[0].position(9.0), (geom::Vec2{50.0, 40.0}));
  EXPECT_EQ(tracks[0].position(7.0), (geom::Vec2{50.0, 20.0}));
}

TEST(SetdestReadTest, LegTruncatedAtDuration) {
  std::stringstream ss(R"(
$node_(0) set X_ 0.0
$node_(0) set Y_ 0.0
$ns_ at 0.0 "$node_(0) setdest 1000.0 0.0 10.0"
)");
  const auto tracks = read_setdest(ss, 20.0);  // arrival would be t=100
  EXPECT_DOUBLE_EQ(tracks[0].end_time(), 20.0);
  EXPECT_EQ(tracks[0].position(20.0), (geom::Vec2{200.0, 0.0}));
}

TEST(SetdestReadTest, SpeedZeroMeansStay) {
  std::stringstream ss(R"(
$node_(0) set X_ 5.0
$node_(0) set Y_ 5.0
$ns_ at 1.0 "$node_(0) setdest 50.0 50.0 0.0"
)");
  const auto tracks = read_setdest(ss, 10.0);
  EXPECT_EQ(tracks[0].position(10.0), (geom::Vec2{5.0, 5.0}));
}

TEST(SetdestReadTest, RejectsMalformedScripts) {
  {
    std::stringstream ss("$node_(0) set X_ 1\n");  // missing Y_
    EXPECT_THROW(read_setdest(ss, 10.0), util::CheckError);
  }
  {
    std::stringstream ss(
        "$node_(1) set X_ 1\n$node_(1) set Y_ 1\n");  // skips node 0
    EXPECT_THROW(read_setdest(ss, 10.0), util::CheckError);
  }
  {
    std::stringstream ss("walk north\n");
    EXPECT_THROW(read_setdest(ss, 10.0), util::CheckError);
  }
  {
    std::stringstream ss(
        "$node_(0) set X_ 1\n$node_(0) set Y_ 1\n"
        "$ns_ at -1 \"$node_(0) setdest 1 1 1\"\n");
    EXPECT_THROW(read_setdest(ss, 10.0), util::CheckError);
  }
  {
    std::stringstream ss("");
    EXPECT_THROW(read_setdest(ss, 10.0), util::CheckError);
  }
}

TEST(SetdestRoundTripTest, ExportedScriptReimportsExactly) {
  // Record a real random-waypoint motion, export, re-import, compare.
  RandomWaypointParams p;
  p.field = geom::Rect(300.0, 300.0);
  p.max_speed = 15.0;
  p.pause_time = 5.0;
  std::vector<PiecewiseLinearTrack> tracks;
  for (int i = 0; i < 3; ++i) {
    RandomWaypoint model(p, util::Rng(static_cast<std::uint64_t>(i)));
    tracks.push_back(record_track(model, 120.0, 1.0));
  }

  std::stringstream ss;
  write_setdest(ss, tracks);
  const auto parsed = read_setdest(ss, 120.0);
  ASSERT_EQ(parsed.size(), tracks.size());
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    for (double t = 0.0; t <= 120.0; t += 2.5) {
      EXPECT_LE(geom::distance(parsed[i].position(t),
                               tracks[i].position(t)),
                1e-6)
          << "node " << i << " t=" << t;
    }
  }
}

TEST(SetdestWriteTest, PausesProduceNoSetdest) {
  PiecewiseLinearTrack t;
  t.append(0.0, {1.0, 1.0});
  t.append(10.0, {1.0, 1.0});   // pause
  t.append(20.0, {11.0, 1.0});  // then move
  std::stringstream ss;
  write_setdest(ss, {t});
  const std::string s = ss.str();
  // Exactly one setdest statement (the move), none for the pause.
  std::size_t count = 0;
  for (std::size_t pos = s.find("setdest"); pos != std::string::npos;
       pos = s.find("setdest", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace manet::mobility
