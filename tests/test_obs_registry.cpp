// Unit tests for the metrics half of the observability layer: counter and
// histogram semantics (including the "le" boundary contract), registry
// handle identity, snapshot determinism, merge algebra, and cross-thread
// aggregation under the real ThreadPool.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/assert.h"
#include "util/thread_pool.h"

namespace manet::obs {
namespace {

// Value-observing tests are meaningless when the layer is compiled out
// (inc()/record() are no-ops); structural contracts (bounds validation,
// handle identity, JSON/merge shape) still hold and stay unguarded.
#if MANET_OBS_ENABLED
#define MANET_REQUIRE_OBS() (void)0
#else
#define MANET_REQUIRE_OBS() GTEST_SKIP() << "built with MANET_OBS=OFF"
#endif

TEST(Counter, StartsAtZeroAndAccumulates) {
  MANET_REQUIRE_OBS();
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Histogram, RequiresStrictlyIncreasingBounds) {
  EXPECT_THROW(Histogram({}), util::CheckError);
  EXPECT_THROW(Histogram({1.0, 1.0}), util::CheckError);
  EXPECT_THROW(Histogram({2.0, 1.0}), util::CheckError);
}

// The boundary contract: bucket i is (bounds[i-1], bounds[i]] — a sample
// exactly equal to a bound belongs to that bound's bucket, never the next.
// This is the Prometheus "le" convention; an off-by-one here silently
// shifts every distribution by one bucket.
TEST(Histogram, BoundaryValuesLandInTheLeBucket) {
  MANET_REQUIRE_OBS();
  Histogram h({1.0, 2.0, 4.0});
  h.record(1.0);  // == bounds[0] -> bucket 0
  h.record(2.0);  // == bounds[1] -> bucket 1
  h.record(4.0);  // == bounds[2] -> bucket 2
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 0u);
}

TEST(Histogram, UnderflowOverflowAndInterior) {
  MANET_REQUIRE_OBS();
  Histogram h({1.0, 2.0, 4.0});
  h.record(-3.0);   // below every bound -> bucket 0
  h.record(1.5);    // (1, 2] -> bucket 1
  h.record(4.0001);  // above bounds.back() -> overflow
  h.record(1e9);    // far overflow
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 0u);
  EXPECT_EQ(h.counts()[3], 2u);
  EXPECT_EQ(h.total_count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), -3.0 + 1.5 + 4.0001 + 1e9);
}

TEST(Registry, HandlesAreStableAndSharedByName) {
  Registry r;
  Counter* a = r.counter("hello.sent");
  Counter* b = r.counter("hello.sent");
  EXPECT_EQ(a, b);  // same name, same cell
  // Registration growth must not move existing handles.
  for (int i = 0; i < 100; ++i) {
    r.counter("c" + std::to_string(i));
  }
  EXPECT_EQ(r.counter("hello.sent"), a);
#if MANET_OBS_ENABLED
  a->inc(3);
  EXPECT_EQ(b->value(), 3u);
#endif
}

TEST(Registry, HistogramReregistrationMustMatchBounds) {
  Registry r;
  Histogram* h = r.histogram("queue", {1.0, 2.0});
  EXPECT_EQ(r.histogram("queue", {1.0, 2.0}), h);
  EXPECT_THROW(r.histogram("queue", {1.0, 3.0}), util::CheckError);
}

TEST(Snapshot, SortedByNameAndQueryable) {
  MANET_REQUIRE_OBS();
  Registry r;
  r.counter("zeta")->inc(1);
  r.counter("alpha")->inc(2);
  r.histogram("hist.b", {1.0})->record(0.5);
  r.histogram("hist.a", {1.0})->record(2.5);
  const Snapshot s = r.snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].name, "alpha");
  EXPECT_EQ(s.counters[1].name, "zeta");
  ASSERT_EQ(s.histograms.size(), 2u);
  EXPECT_EQ(s.histograms[0].name, "hist.a");
  EXPECT_EQ(s.histograms[1].name, "hist.b");
  EXPECT_EQ(s.counter_or("alpha"), 2u);
  EXPECT_EQ(s.counter_or("missing", 7u), 7u);
  ASSERT_NE(s.histogram("hist.a"), nullptr);
  EXPECT_EQ(s.histogram("hist.a")->counts.back(), 1u);
  EXPECT_EQ(s.histogram("missing"), nullptr);
}

TEST(Snapshot, MergeSumsCountersByNameUnion) {
  MANET_REQUIRE_OBS();
  Registry r1;
  r1.counter("a")->inc(1);
  r1.counter("b")->inc(10);
  Registry r2;
  r2.counter("b")->inc(5);
  r2.counter("c")->inc(100);
  Snapshot s = r1.snapshot();
  s.merge(r2.snapshot());
  EXPECT_EQ(s.counter_or("a"), 1u);
  EXPECT_EQ(s.counter_or("b"), 15u);
  EXPECT_EQ(s.counter_or("c"), 100u);
  ASSERT_EQ(s.counters.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      s.counters.begin(), s.counters.end(),
      [](const auto& x, const auto& y) { return x.name < y.name; }));
}

TEST(Snapshot, MergeAddsHistogramsBucketwise) {
  MANET_REQUIRE_OBS();
  Registry r1;
  r1.histogram("h", {1.0, 2.0})->record(0.5);
  Registry r2;
  r2.histogram("h", {1.0, 2.0})->record(1.5);
  r2.histogram("h", {1.0, 2.0})->record(9.0);
  Snapshot s = r1.snapshot();
  s.merge(r2.snapshot());
  const auto* h = s.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->counts, (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_DOUBLE_EQ(h->sum, 0.5 + 1.5 + 9.0);

  Registry r3;
  r3.histogram("h", {1.0, 3.0});  // different bounds: not mergeable
  EXPECT_THROW(s.merge(r3.snapshot()), util::CheckError);
}

TEST(Snapshot, MergeIsOrderIndependent) {
  Registry a;
  a.counter("x")->inc(1);
  a.histogram("h", {1.0})->record(0.5);
  Registry b;
  b.counter("y")->inc(2);
  Registry c;
  c.counter("x")->inc(4);
  c.histogram("h", {1.0})->record(2.0);

  Snapshot abc = a.snapshot();
  abc.merge(b.snapshot());
  abc.merge(c.snapshot());
  Snapshot cba = c.snapshot();
  cba.merge(b.snapshot());
  cba.merge(a.snapshot());
  EXPECT_EQ(abc, cba);
  EXPECT_EQ(abc.to_json(), cba.to_json());
}

TEST(Snapshot, JsonShape) {
  MANET_REQUIRE_OBS();
  Registry r;
  r.counter("hello.sent")->inc(12);
  r.histogram("depth", {1.0, 2.0})->record(1.5);
  const std::string json = r.snapshot().to_json();
  EXPECT_EQ(json,
            "{\"counters\":{\"hello.sent\":12},"
            "\"histograms\":{\"depth\":{\"bounds\":[1,2],"
            "\"counts\":[0,1,0],\"sum\":1.5}}}");
}

// The MRIP aggregation model: one registry per worker, merged by value.
// Whatever order the workers finish in, the merged snapshot must equal the
// serial result — this is the property the Runner's canonical-order
// reduction relies on.
TEST(Registry, ThreadPoolAggregationIsDeterministic) {
  MANET_REQUIRE_OBS();
  constexpr int kWorkers = 8;
  constexpr int kIncsPerWorker = 10'000;
  std::vector<Registry> registries(kWorkers);
  util::ThreadPool pool(4);
  std::vector<std::future<void>> futures;
  futures.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    futures.push_back(pool.async([&registries, w] {
      Registry& r = registries[static_cast<std::size_t>(w)];
      Counter* c = r.counter("events");
      Histogram* h = r.histogram("value", {0.25, 0.5, 0.75});
      for (int i = 0; i < kIncsPerWorker; ++i) {
        c->inc();
        h->record(static_cast<double>(i % 100) / 100.0);
      }
    }));
  }
  for (auto& f : futures) {
    f.get();
  }
  Snapshot merged;
  for (const Registry& r : registries) {
    merged.merge(r.snapshot());
  }
  EXPECT_EQ(merged.counter_or("events"),
            static_cast<std::uint64_t>(kWorkers) * kIncsPerWorker);
  const auto* h = merged.histogram("value");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->counts.size(), 4u);
  std::uint64_t total = 0;
  for (const auto cnt : h->counts) {
    total += cnt;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kWorkers) * kIncsPerWorker);
}

// Registration allocates; updates must not. The allocation-free property is
// asserted with the counting allocator in test_zero_alloc.cpp; here we only
// pin that the inline fast path behaves after many updates.
TEST(Registry, UpdateFastPathCompilesInline) {
  MANET_REQUIRE_OBS();
  Registry r;
  Counter* c = r.counter("x");
  Histogram* h = r.histogram("y", {1.0});
  for (int i = 0; i < 1000; ++i) {
    c->inc();
    h->record(0.5);
  }
  EXPECT_EQ(c->value(), 1000u);
  EXPECT_EQ(h->total_count(), 1000u);
}

}  // namespace
}  // namespace manet::obs
