#include <gtest/gtest.h>

#include "geom/grid_index.h"
#include "geom/rect.h"
#include "geom/vec2.h"
#include "util/assert.h"
#include "util/rng.h"

namespace manet::geom {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(a / 2.0, (Vec2{0.5, 1.0}));
  Vec2 c = a;
  c += b;
  EXPECT_EQ(c, a + b);
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(Vec2Test, NormsAndDot) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(v.dot({1.0, 0.0}), 3.0);
  const Vec2 u = v.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-12);
  EXPECT_EQ((Vec2{}.normalized()), (Vec2{0.0, 0.0}));
}

TEST(Vec2Test, DistanceAndLerp) {
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({1.0, 1.0}, {2.0, 2.0}), 2.0);
  EXPECT_EQ(lerp({0.0, 0.0}, {10.0, 20.0}, 0.5), (Vec2{5.0, 10.0}));
  EXPECT_EQ(lerp({0.0, 0.0}, {10.0, 20.0}, 0.0), (Vec2{0.0, 0.0}));
  EXPECT_EQ(lerp({0.0, 0.0}, {10.0, 20.0}, 1.0), (Vec2{10.0, 20.0}));
}

TEST(RectTest, ContainsAndClamp) {
  const Rect r(100.0, 50.0);
  EXPECT_TRUE(r.contains({0.0, 0.0}));
  EXPECT_TRUE(r.contains({100.0, 50.0}));
  EXPECT_FALSE(r.contains({100.1, 10.0}));
  EXPECT_FALSE(r.contains({-0.1, 10.0}));
  EXPECT_EQ(r.clamp({-5.0, 60.0}), (Vec2{0.0, 50.0}));
  EXPECT_EQ(r.clamp({50.0, 25.0}), (Vec2{50.0, 25.0}));
  EXPECT_DOUBLE_EQ(r.area(), 5000.0);
}

TEST(RectTest, RejectsDegenerate) {
  EXPECT_THROW(Rect(0.0, 10.0), util::CheckError);
  EXPECT_THROW(Rect(10.0, -1.0), util::CheckError);
}

TEST(RectTest, SampleStaysInside) {
  const Rect r(670.0, 1000.0);
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(r.contains(r.sample(rng)));
  }
}

TEST(RectTest, ReflectFoldsBackInside) {
  const Rect r(100.0, 100.0);
  Vec2 dir{1.0, 0.0};
  // 130 -> mirrored at the right wall to 70, direction flipped.
  const Vec2 p = r.reflect({130.0, 50.0}, dir);
  EXPECT_NEAR(p.x, 70.0, 1e-12);
  EXPECT_DOUBLE_EQ(p.y, 50.0);
  EXPECT_DOUBLE_EQ(dir.x, -1.0);
}

TEST(RectTest, ReflectEvenFoldKeepsDirection) {
  const Rect r(100.0, 100.0);
  Vec2 dir{1.0, 0.0};
  // 230 = 2*100 + 30: two wall crossings -> back to 30 moving forward.
  const Vec2 p = r.reflect({230.0, 10.0}, dir);
  EXPECT_NEAR(p.x, 30.0, 1e-12);
  EXPECT_DOUBLE_EQ(dir.x, 1.0);
}

TEST(RectTest, ReflectNegativeCoordinate) {
  const Rect r(100.0, 100.0);
  Vec2 dir{-1.0, -1.0};
  const Vec2 p = r.reflect({-20.0, -30.0}, dir);
  EXPECT_NEAR(p.x, 20.0, 1e-12);
  EXPECT_NEAR(p.y, 30.0, 1e-12);
  EXPECT_DOUBLE_EQ(dir.x, 1.0);
  EXPECT_DOUBLE_EQ(dir.y, 1.0);
}

TEST(GridIndexTest, EmptyIndex) {
  GridIndex g(Rect(100.0, 100.0), 10.0);
  g.rebuild({});
  EXPECT_EQ(g.size(), 0u);
  EXPECT_TRUE(g.query_radius({50.0, 50.0}, 100.0).empty());
}

TEST(GridIndexTest, FindsExactMatches) {
  GridIndex g(Rect(100.0, 100.0), 10.0);
  const std::vector<Vec2> pts = {{10.0, 10.0}, {50.0, 50.0}, {90.0, 90.0}};
  g.rebuild(pts);
  const auto near = g.query_radius({12.0, 10.0}, 5.0);
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0], 0u);
  const auto all = g.query_radius({50.0, 50.0}, 100.0);
  EXPECT_EQ(all.size(), 3u);
}

TEST(GridIndexTest, RadiusIsInclusive) {
  GridIndex g(Rect(100.0, 100.0), 10.0);
  g.rebuild(std::vector<Vec2>{{0.0, 0.0}, {10.0, 0.0}});
  const auto hits = g.query_radius({0.0, 0.0}, 10.0);
  EXPECT_EQ(hits.size(), 2u);
}

TEST(GridIndexTest, HandlesPointsOutsideField) {
  GridIndex g(Rect(100.0, 100.0), 10.0);
  // Points beyond the field are binned at the edge but matched exactly.
  g.rebuild(std::vector<Vec2>{{150.0, 50.0}, {50.0, 50.0}});
  const auto hits = g.query_radius({149.0, 50.0}, 2.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
}

class GridVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(GridVsBruteForce, MatchesReference) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Rect field(670.0, 670.0);
  std::vector<Vec2> pts;
  const int n = 1 + static_cast<int>(rng.index(200));
  for (int i = 0; i < n; ++i) {
    pts.push_back(field.sample(rng));
  }
  GridIndex g(field, 40.0);
  g.rebuild(pts);
  for (int q = 0; q < 20; ++q) {
    const Vec2 center = field.sample(rng);
    const double radius = rng.uniform(0.0, 300.0);
    auto got = g.query_radius(center, radius);
    auto want = GridIndex::brute_force(pts, center, radius);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "n=" << n << " r=" << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, GridVsBruteForce,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace manet::geom
