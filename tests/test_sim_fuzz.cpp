// Randomized stress tests of the event queue against a simple reference
// model, determinism under interleaved schedule/cancel workloads, and a
// chaos fuzz: full simulations under randomized (but fixed-seed) fault
// schedules with structural invariants checked every beacon round.
#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/agent.h"
#include "scenario/scenario.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace manet::sim {
namespace {

class EventQueueFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EventQueueFuzz, MatchesReferenceModel) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  EventQueue q;
  // Reference: multimap time -> payload, id -> iterator for cancellation.
  std::multimap<std::pair<Time, EventId>, int> reference;
  std::map<EventId, decltype(reference)::iterator> live;
  std::vector<int> popped_q, popped_ref;
  int payload = 0;

  for (int step = 0; step < 3000; ++step) {
    const double op = rng.uniform();
    if (op < 0.55) {
      // push
      const Time t = rng.uniform(0.0, 100.0);
      const int p = payload++;
      const EventId id = q.push(t, [&popped_q, p] { popped_q.push_back(p); });
      live[id] = reference.emplace(std::make_pair(t, id), p);
    } else if (op < 0.75 && !live.empty()) {
      // cancel a random live event
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.index(live.size())));
      EXPECT_TRUE(q.cancel(it->first));
      reference.erase(it->second);
      live.erase(it);
    } else if (op < 0.8) {
      // cancel a bogus / stale id
      EXPECT_FALSE(q.cancel(payload + 100000u));
    } else if (!q.empty()) {
      // pop
      ASSERT_FALSE(reference.empty());
      EXPECT_DOUBLE_EQ(q.next_time(), reference.begin()->first.first);
      auto fired = q.pop();
      fired.fn();
      popped_ref.push_back(reference.begin()->second);
      live.erase(reference.begin()->first.second);
      reference.erase(reference.begin());
      EXPECT_EQ(popped_q.back(), popped_ref.back());
    }
    ASSERT_EQ(q.size(), reference.size());
  }
  // Drain.
  while (!q.empty()) {
    auto fired = q.pop();
    fired.fn();
    popped_ref.push_back(reference.begin()->second);
    reference.erase(reference.begin());
  }
  EXPECT_EQ(popped_q, popped_ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz, ::testing::Range(1, 6));

TEST(SimulatorFuzzTest, SelfSchedulingChainsAreDeterministic) {
  const auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    util::Rng rng(seed);
    std::vector<double> fire_times;
    // A self-perpetuating cascade: each event schedules 0-2 children with
    // random delays and occasionally cancels a pending sibling.
    std::vector<EventId> pending;
    std::function<void()> spawn = [&] {
      fire_times.push_back(sim.now());
      if (fire_times.size() > 2000) {
        return;
      }
      const int children = static_cast<int>(rng.index(3));
      for (int c = 0; c < children; ++c) {
        pending.push_back(sim.schedule_in(rng.uniform(0.0, 5.0), spawn));
      }
      if (!pending.empty() && rng.bernoulli(0.2)) {
        sim.cancel(pending[rng.index(pending.size())]);
      }
    };
    sim.schedule_at(0.0, spawn);
    sim.schedule_at(1.0, spawn);
    sim.schedule_at(2.0, spawn);
    sim.run_until(500.0);
    return fire_times;
  };
  const auto a = run_once(7);
  const auto b = run_once(7);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 3u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
}

TEST(SimulatorFuzzTest, HeavyCancellationKeepsQueueConsistent) {
  Simulator sim;
  util::Rng rng(13);
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sim.schedule_at(rng.uniform(0.0, 10.0), [&] { ++fired; }));
  }
  // Cancel 600 distinct random events.
  rng.shuffle(ids);
  int cancelled = 0;
  for (int i = 0; i < 600; ++i) {
    cancelled += sim.cancel(ids[i]) ? 1 : 0;
  }
  EXPECT_EQ(cancelled, 600);
  EXPECT_EQ(sim.pending_events(), 400u);
  sim.run();
  EXPECT_EQ(fired, 400);
}

// ---------------------------------------------------------------------------
// Chaos fuzz: whole simulations under randomized fault workloads. Each
// parameter seeds both the scenario and the workload intensities, so every
// failure is replayable. An in-simulation probe checks structural agent
// invariants every beacon round; the run must neither throw nor violate
// them, and a repeat run must be bit-identical.
// ---------------------------------------------------------------------------

class ChaosFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ChaosFuzz, RandomFaultWorkloadsKeepStructuralInvariants) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  util::Rng knobs(seed * 7919 + 17);

  scenario::Scenario s;
  s.n_nodes = 12 + knobs.index(10);  // 12-21 nodes
  s.sim_time = 90.0;
  s.seed = seed;
  s.faults.crash_rate = knobs.uniform(0.0, 0.08);
  s.faults.mean_downtime = knobs.uniform(5.0, 25.0);
  s.faults.churn_rate = knobs.uniform(0.0, 0.04);
  s.faults.loss_burst_rate = knobs.uniform(0.0, 0.08);
  s.faults.loss_burst_probability = knobs.uniform(0.5, 1.0);
  s.faults.jam_rate = knobs.uniform(0.0, 0.03);
  s.faults.partitions = static_cast<int>(knobs.index(3));
  // Quiet tail: the last 20 s are fault-free so the clustering can heal.
  s.faults.begin = s.warmup;
  s.faults.end = s.sim_time - 20.0;

  // Self-rescheduling beacon-round probe. Both the tick functor and the
  // LiveContext it captures outlive run_scenario (the context lives for the
  // whole run; the functor lives at test scope), so plain reference
  // captures are safe and nothing leaks.
  std::uint64_t invariant_checks = 0;
  std::function<void()> tick;
  const std::function<void(scenario::LiveContext&)> probe =
      [&tick, &invariant_checks](scenario::LiveContext& ctx) {
        tick = [&ctx, &tick, &invariant_checks] {
          for (std::size_t i = 0; i < ctx.agents.size(); ++i) {
            if (!ctx.network.node(static_cast<net::NodeId>(i)).alive()) {
              continue;
            }
            const auto* a = ctx.agents[i];
            switch (a->role()) {
              case cluster::Role::kUndecided:
                break;
              case cluster::Role::kHead:
                ASSERT_EQ(a->cluster_head(), static_cast<net::NodeId>(i))
                    << "head " << i << " affiliated elsewhere";
                break;
              case cluster::Role::kMember:
                ASSERT_NE(a->cluster_head(), net::kInvalidNode)
                    << "member " << i << " without a head";
                ASSERT_LT(a->cluster_head(), ctx.agents.size());
                break;
            }
          }
          ++invariant_checks;
          ctx.sim.schedule_in(2.0, tick);
        };
        ctx.sim.schedule_at(10.0, tick);
      };

  const auto factory = scenario::factory_by_name(
      knobs.bernoulli(0.5) ? "mobic" : "lowest_id");
  const auto a = scenario::run_scenario(s, factory, probe);
  EXPECT_GT(invariant_checks, 30u);

  // Replay determinism: the identical scenario (without the probe, which
  // only reads state) must reproduce the fault timeline and every metric.
  const auto b = scenario::run_scenario(s, factory);
  EXPECT_EQ(a.fault_timeline, b.fault_timeline);
  EXPECT_EQ(a.ch_changes, b.ch_changes);
  EXPECT_EQ(a.reaffiliations, b.reaffiliations);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.violation_samples, b.violation_samples);
  EXPECT_DOUBLE_EQ(a.orphaned_member_seconds, b.orphaned_member_seconds);
  EXPECT_EQ(a.final_validation.dead_nodes, b.final_validation.dead_nodes);
}

// Seed count is tunable from the environment so the nightly CI sweep can
// widen the net (MANET_FUZZ_SEEDS=16) without slowing the default run.
int fuzz_seed_count() {
  const char* env = std::getenv("MANET_FUZZ_SEEDS");
  const int n = env == nullptr ? 0 : std::atoi(env);
  return n > 0 ? n : 6;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosFuzz,
                         ::testing::Range(1, 1 + fuzz_seed_count()));

}  // namespace
}  // namespace manet::sim
