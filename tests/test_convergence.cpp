// ConvergenceMonitor tests: a clusterhead crash on the Figure-1 static
// topology must register a disruption, accumulate orphaned member-seconds
// while the survivors re-elect, and record one recovery when the Theorem-1
// validators come back clean; a fault-free run must record nothing.
#include <gtest/gtest.h>

#include "cluster/convergence.h"
#include "cluster/presets.h"
#include "cluster/validation.h"
#include "helpers.h"
#include "scenario/scenario.h"
#include "util/assert.h"

namespace manet {
namespace {

TEST(ConvergenceMonitorTest, HeadCrashRecordsDisruptionAndRecovery) {
  auto w = test::make_static_world(test::figure1_positions(), 100.0,
                                   cluster::lowest_id_lcc_options());
  w->run(10.0);  // initial election settles
  ASSERT_EQ(w->agent(0).role(), cluster::Role::kHead);

  cluster::ConvergenceMonitor monitor(w->sim, *w->network,
                                      w->const_agents());
  monitor.start(10.25, 0.5, 60.0);
  w->run(2.0);  // a few clean samples first

  w->network->node(0).fail();
  monitor.note_fault(w->sim.now());
  w->run(30.0);  // survivors re-elect and settle

  const auto s = monitor.finish(w->sim.now());
  EXPECT_EQ(s.faults_observed, 1u);
  EXPECT_GT(s.samples, 10u);
  EXPECT_GT(s.violation_samples, 0u);
  ASSERT_EQ(s.recovery.count(), 1u);
  EXPECT_GT(s.recovery.mean(), 0.0);
  EXPECT_LT(s.recovery.mean(), 30.0);
  EXPECT_GT(s.orphaned_member_seconds, 0.0);
  EXPECT_EQ(s.unrecovered_disruptions, 0u);

  // Alive-aware validation: the dead head is excluded, the survivors are
  // clean again.
  const auto report = cluster::validate_clusters(
      *w->network, w->const_agents(), w->sim.now());
  EXPECT_EQ(report.dead_nodes, 1u);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(ConvergenceMonitorTest, CleanRunRecordsNoDisruption) {
  auto w = test::make_static_world(test::figure1_positions(), 100.0,
                                   cluster::lowest_id_lcc_options());
  w->run(10.0);
  cluster::ConvergenceMonitor monitor(w->sim, *w->network,
                                      w->const_agents());
  monitor.start(10.25, 0.5, 40.0);
  w->run(25.0);

  const auto s = monitor.finish(w->sim.now());
  EXPECT_EQ(s.faults_observed, 0u);
  EXPECT_GT(s.samples, 10u);
  EXPECT_EQ(s.violation_samples, 0u);
  EXPECT_EQ(s.recovery.count(), 0u);
  EXPECT_DOUBLE_EQ(s.orphaned_member_seconds, 0.0);
  EXPECT_EQ(s.unrecovered_disruptions, 0u);
}

TEST(ConvergenceMonitorTest, RejectsNonPositivePeriod) {
  auto w = test::make_static_world(test::figure1_positions(), 100.0,
                                   cluster::lowest_id_lcc_options());
  cluster::ConvergenceMonitor monitor(w->sim, *w->network,
                                      w->const_agents());
  EXPECT_THROW(monitor.start(1.0, 0.0, 10.0), util::CheckError);
}

TEST(ConvergenceScenarioTest, FaultFreeRunHasZeroResilienceFields) {
  scenario::Scenario s;
  s.n_nodes = 10;
  s.sim_time = 40.0;
  const auto r =
      scenario::run_scenario(s, scenario::factory_by_name("lowest_id"));
  EXPECT_EQ(r.faults_injected, 0u);
  EXPECT_EQ(r.recoveries, 0u);
  EXPECT_DOUBLE_EQ(r.mean_recovery_s, 0.0);
  EXPECT_DOUBLE_EQ(r.orphaned_member_seconds, 0.0);
  EXPECT_EQ(r.convergence_samples, 0u);
  EXPECT_TRUE(r.fault_timeline.empty());
}

TEST(ConvergenceScenarioTest, FaultedRunPopulatesResilienceFields) {
  scenario::Scenario s;
  s.n_nodes = 15;
  s.sim_time = 80.0;
  s.faults.crash_rate = 0.05;
  s.faults.mean_downtime = 15.0;
  const auto r =
      scenario::run_scenario(s, scenario::factory_by_name("lowest_id"));
  EXPECT_GT(r.faults_injected, 0u);
  EXPECT_GT(r.convergence_samples, 0u);
  EXPECT_EQ(r.fault_timeline.size(), r.faults_injected);
}

}  // namespace
}  // namespace manet
