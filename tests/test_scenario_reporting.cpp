// The paper-style reporting helpers that moved out of bench/bench_common.h:
// Table-1 scenario defaults, the Figures 3-5 x axis, peak location, and the
// comparison table — including the n/a path for a zero baseline, where the
// old code printed a misleading 0% gain.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "scenario/reporting.h"

namespace manet::scenario {
namespace {

SweepPoint make_point(double x, double mean_a, double mean_b) {
  SweepPoint p;
  p.x = x;
  p.values["lowest_id"] = {mean_a, 1.0, 5};
  p.values["mobic"] = {mean_b, 1.0, 5};
  return p;
}

TEST(ReportingTest, PaperScenarioMatchesTableOne) {
  const auto s = paper_scenario();
  EXPECT_EQ(s.n_nodes, 50u);
  EXPECT_DOUBLE_EQ(s.fleet.field.width, 670.0);
  EXPECT_DOUBLE_EQ(s.fleet.field.height, 670.0);
  EXPECT_DOUBLE_EQ(s.fleet.max_speed, 20.0);
  EXPECT_DOUBLE_EQ(s.fleet.pause_time, 0.0);
  EXPECT_DOUBLE_EQ(s.sim_time, 900.0);
  EXPECT_DOUBLE_EQ(s.net.broadcast_interval, 2.0);
  EXPECT_DOUBLE_EQ(s.net.neighbor_timeout, 3.0);
}

TEST(ReportingTest, DefaultTxSweepCoversFigureAxis) {
  const auto xs = default_tx_sweep();
  ASSERT_EQ(xs.size(), 11u);
  EXPECT_DOUBLE_EQ(xs.front(), 10.0);
  EXPECT_DOUBLE_EQ(xs.back(), 250.0);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    EXPECT_GT(xs[i], xs[i - 1]);
  }
}

TEST(ReportingTest, ArgmaxFindsThePeak) {
  std::vector<SweepPoint> series = {make_point(10.0, 5.0, 1.0),
                                    make_point(50.0, 9.0, 2.0),
                                    make_point(100.0, 3.0, 8.0)};
  EXPECT_EQ(argmax_x(series, "lowest_id"), 1u);
  EXPECT_EQ(argmax_x(series, "mobic"), 2u);
}

TEST(ReportingTest, PrintComparisonComputesGains) {
  const std::vector<SweepPoint> series = {make_point(100.0, 20.0, 15.0),
                                          make_point(250.0, 10.0, 4.0)};
  std::ostringstream os;
  const auto gains = print_comparison(os, "Tx (m)", series, "lowest_id",
                                      "mobic", "CS", "");
  ASSERT_EQ(gains.size(), 2u);
  ASSERT_TRUE(gains[0].has_value());
  ASSERT_TRUE(gains[1].has_value());
  EXPECT_NEAR(*gains[0], 25.0, 1e-9);
  EXPECT_NEAR(*gains[1], 60.0, 1e-9);
  EXPECT_NE(os.str().find("lowest_id"), std::string::npos);
  EXPECT_NE(os.str().find("25.0"), std::string::npos);
}

TEST(ReportingTest, PrintComparisonZeroBaselineIsNa) {
  // Baseline mean 0 at x = 10 (a disconnected scattering can produce this):
  // the gain is undefined, not 0%.
  const std::vector<SweepPoint> series = {make_point(10.0, 0.0, 0.0),
                                          make_point(250.0, 10.0, 5.0)};
  const std::string csv = "reporting_test_gain.csv";
  std::remove(csv.c_str());
  std::ostringstream os;
  const auto gains =
      print_comparison(os, "Tx (m)", series, "lowest_id", "mobic", "CS", csv);
  ASSERT_EQ(gains.size(), 2u);
  EXPECT_FALSE(gains[0].has_value());
  ASSERT_TRUE(gains[1].has_value());
  EXPECT_NEAR(*gains[1], 50.0, 1e-9);
  EXPECT_NE(os.str().find("n/a"), std::string::npos);

  // The CSV mirrors it as an *empty* cell, not a fake number.
  std::ifstream in(csv);
  ASSERT_TRUE(in.good());
  std::string header, row0, row1;
  std::getline(in, header);
  std::getline(in, row0);
  std::getline(in, row1);
  EXPECT_EQ(row0.back(), ',');                        // trailing empty cell
  EXPECT_NE(row1.back(), ',');                        // real gain present
  EXPECT_NE(row1.find("50"), std::string::npos);
  std::remove(csv.c_str());
}

}  // namespace
}  // namespace manet::scenario
