// Clustering on fixed topologies: the paper's Figure-1 structure, isolated
// nodes, chains, and the DCA / Max-Connectivity variants.
#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "cluster/validation.h"
#include "helpers.h"

namespace manet::cluster {
namespace {

using test::figure1_positions;
using test::make_static_world;

TEST(LowestIdStaticTest, Figure1Topology) {
  auto world = make_static_world(figure1_positions(), 100.0,
                                 lowest_id_lcc_options());
  world->run(12.0);  // several beacon rounds: convergence is O(diameter)

  // Paper Figure 1 structure: three clusters, heads = the lowest ids that
  // hear no lower id, gateways bridging adjacent clusters.
  EXPECT_EQ(world->heads(), (std::vector<net::NodeId>{0, 1, 4}));
  EXPECT_EQ(world->agent(2).cluster_head(), 0u);
  EXPECT_EQ(world->agent(3).cluster_head(), 0u);
  EXPECT_EQ(world->agent(5).cluster_head(), 1u);
  EXPECT_EQ(world->agent(6).cluster_head(), 4u);
  EXPECT_EQ(world->agent(7).cluster_head(), 4u);
  // 8 hears heads 0 and 1 -> gateway; LCC keeps whichever it joined first.
  EXPECT_TRUE(world->agent(8).is_gateway());
  EXPECT_TRUE(world->agent(8).cluster_head() == 0u ||
              world->agent(8).cluster_head() == 1u);
  // 9 hears heads 1 and 4 -> gateway.
  EXPECT_TRUE(world->agent(9).is_gateway());
  EXPECT_TRUE(world->agent(9).cluster_head() == 1u ||
              world->agent(9).cluster_head() == 4u);
  // Non-gateway members are not flagged.
  EXPECT_FALSE(world->agent(2).is_gateway());

  const auto report =
      validate_clusters(*world->network, world->const_agents(), 12.0);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(MobicStaticTest, Figure1TopologyMatchesLowestId) {
  // All nodes static -> every M = 0 -> MOBIC's augmented weight degrades to
  // the ID tie-break, reproducing the Lowest-ID result exactly.
  auto world =
      make_static_world(figure1_positions(), 100.0, mobic_options());
  world->run(16.0);  // CCI adds settling time
  EXPECT_EQ(world->heads(), (std::vector<net::NodeId>{0, 1, 4}));
  for (const auto* agent : world->agents) {
    EXPECT_DOUBLE_EQ(agent->metric(), 0.0);
  }
  const auto report =
      validate_clusters(*world->network, world->const_agents(), 16.0);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(LowestIdStaticTest, IsolatedNodesBecomeTheirOwnHeads) {
  auto world = make_static_world(
      {{0.0, 0.0}, {500.0, 0.0}, {1000.0, 0.0}}, 100.0,
      lowest_id_lcc_options());
  world->run(8.0);
  EXPECT_EQ(world->heads(), (std::vector<net::NodeId>{0, 1, 2}));
}

TEST(LowestIdStaticTest, SingleClusterWhenAllInRange) {
  auto world = make_static_world(
      {{0.0, 0.0}, {30.0, 0.0}, {0.0, 30.0}, {30.0, 30.0}}, 100.0,
      lowest_id_lcc_options());
  world->run(8.0);
  EXPECT_EQ(world->heads(), (std::vector<net::NodeId>{0}));
  for (net::NodeId i = 1; i <= 3; ++i) {
    EXPECT_EQ(world->agent(i).role(), Role::kMember);
    EXPECT_EQ(world->agent(i).cluster_head(), 0u);
  }
}

TEST(LowestIdStaticTest, ChainAlternatesHeads) {
  // 5 nodes in a line, 80 m spacing, range 100: only adjacent pairs hear
  // each other. Lowest-ID: 0 heads {0,1}; 2 heads {2,3}; 4 heads itself.
  std::vector<geom::Vec2> line;
  for (int i = 0; i < 5; ++i) {
    line.push_back({80.0 * i, 0.0});
  }
  auto world = make_static_world(line, 100.0, lowest_id_lcc_options());
  world->run(12.0);
  EXPECT_EQ(world->heads(), (std::vector<net::NodeId>{0, 2, 4}));
  EXPECT_EQ(world->agent(1).cluster_head(), 0u);
  EXPECT_EQ(world->agent(3).cluster_head(), 2u);
  const auto report =
      validate_clusters(*world->network, world->const_agents(), 12.0);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(LowestIdStaticTest, HighIdHubDefersToPeripheralLowIds) {
  // Star: center (id 3) hears 0, 1, 2 (which only hear the center).
  // 0, 1, 2 are heads (no lower undecided neighbor); 3 joins the best: 0.
  auto world = make_static_world(
      {{0.0, 100.0}, {200.0, 100.0}, {100.0, 0.0}, {100.0, 90.0}}, 110.0,
      lowest_id_lcc_options());
  world->run(12.0);
  // Distances from center (100,90): to 0 = ~100.5, 1 = ~100.5, 2 = 90.
  // Range 110 covers all three; peripheral nodes are ~200 apart.
  EXPECT_EQ(world->agent(3).role(), Role::kMember);
  EXPECT_EQ(world->agent(3).cluster_head(), 0u);
  EXPECT_EQ(world->heads(), (std::vector<net::NodeId>{0, 1, 2}));
}

TEST(MaxConnectivityStaticTest, HighestDegreeWins) {
  // Same star: the center (id 3) has degree 3; the others degree 1.
  // Max-connectivity elects the center despite its high id.
  auto world = make_static_world(
      {{0.0, 100.0}, {200.0, 100.0}, {100.0, 0.0}, {100.0, 90.0}}, 110.0,
      max_connectivity_options());
  world->run(20.0);
  EXPECT_EQ(world->agent(3).role(), Role::kHead);
  for (net::NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(world->agent(i).role(), Role::kMember) << "node " << i;
    EXPECT_EQ(world->agent(i).cluster_head(), 3u);
  }
}

TEST(DcaStaticTest, StaticWeightsDriveElection) {
  // Two nodes in range; the higher id has the lower DCA weight and must win.
  ClusterOptions low = dca_options(1.0);
  ClusterOptions high = dca_options(9.0);

  sim::Simulator sim;
  util::Rng root(5);
  net::Network network(sim, radio::make_paper_medium(100.0),
                       geom::Rect(200.0, 200.0), net::NetworkParams{},
                       root.substream("net"));
  std::vector<WeightedClusterAgent*> agents;
  for (net::NodeId i = 0; i < 2; ++i) {
    auto node = std::make_unique<net::Node>(
        i,
        std::make_unique<mobility::StaticModel>(
            geom::Vec2{50.0 + 40.0 * i, 50.0}),
        root.substream("node", i));
    auto agent =
        std::make_unique<WeightedClusterAgent>(i == 0 ? high : low);
    agents.push_back(agent.get());
    node->set_agent(std::move(agent));
    network.add_node(std::move(node));
  }
  network.start();
  sim.run_until(10.0);
  EXPECT_EQ(agents[1]->role(), Role::kHead);  // weight 1.0 beats 9.0
  EXPECT_EQ(agents[0]->role(), Role::kMember);
  EXPECT_EQ(agents[0]->cluster_head(), 1u);
}

TEST(PlainLowestIdStaticTest, ConvergesOnStaticTopology) {
  // Without mobility the eager variant settles to the same answer as LCC.
  auto world = make_static_world(figure1_positions(), 100.0,
                                 lowest_id_plain_options());
  world->run(12.0);
  EXPECT_EQ(world->heads(), (std::vector<net::NodeId>{0, 1, 4}));
}

TEST(StaticTest, EveryNodeEndsDecided) {
  auto world = make_static_world(figure1_positions(), 100.0,
                                 lowest_id_lcc_options());
  world->run(12.0);
  for (const auto* a : world->agents) {
    EXPECT_NE(a->role(), Role::kUndecided);
  }
}

TEST(StaticTest, AgentsCountDecisions) {
  auto world = make_static_world({{0.0, 0.0}, {10.0, 0.0}}, 100.0,
                                 lowest_id_lcc_options());
  world->run(10.0);
  // One decision per beacon; BI = 2 s over 10 s -> ~5.
  EXPECT_NEAR(world->agent(0).decisions(), 5.0, 1.0);
}

}  // namespace
}  // namespace manet::cluster
