// The work-stealing thread pool behind scenario::Runner: completion,
// futures, exception plumbing, nested submission, and shutdown drain.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace manet::util {
namespace {

TEST(ThreadPoolTest, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  ThreadPool automatic(0);
  EXPECT_GE(automatic.size(), 1u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, AsyncDeliversResultsByIndex) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.async([i] { return i * i; }));
  }
  // Futures identify jobs regardless of which worker ran them when.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, AsyncPropagatesExceptions) {
  ThreadPool pool(2);
  auto ok = pool.async([] { return 7; });
  auto bad = pool.async([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  auto after = pool.async([] { return 1; });
  EXPECT_EQ(after.get(), 1);
}

TEST(ThreadPoolTest, WorkersCanSubmitNestedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&pool, &count] {
      count.fetch_add(1, std::memory_order_relaxed);
      pool.submit(
          [&count] { count.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 40);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit(
          [&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool must run everything already submitted
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // nothing queued: must not hang
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  pool.wait_idle();  // idempotent
  EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace manet::util
