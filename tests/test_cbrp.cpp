// Packet-level CBRP routing over the cluster structure.
#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "mobility/trace.h"
#include "routing/cbrp.h"
#include "routing/cbrp_experiment.h"
#include "util/assert.h"

namespace manet::routing {
namespace {

// Static line of 5 nodes, 80 m spacing, range 100: 0-1-2-3-4. Lowest-ID
// clustering: heads {0, 2, 4}, members 1 (gw of 0/2), 3 (gw of 2/4).
struct CbrpWorld {
  sim::Simulator sim;
  std::unique_ptr<net::Network> network;
  std::vector<CbrpAgent*> agents;
  CbrpStats stats;
};

std::unique_ptr<CbrpWorld> make_line_world(std::size_t n, double spacing,
                                           double range,
                                           std::uint64_t seed = 31) {
  auto world = std::make_unique<CbrpWorld>();
  util::Rng root(seed);
  world->network = std::make_unique<net::Network>(
      world->sim, radio::make_paper_medium(range),
      geom::Rect(spacing * static_cast<double>(n) + 10.0, 50.0),
      net::NetworkParams{}, root.substream("net"));
  for (std::size_t i = 0; i < n; ++i) {
    auto node = std::make_unique<net::Node>(
        static_cast<net::NodeId>(i),
        std::make_unique<mobility::StaticModel>(
            geom::Vec2{5.0 + spacing * static_cast<double>(i), 25.0}),
        root.substream("node", i));
    CbrpOptions o;
    o.clustering = cluster::lowest_id_lcc_options();
    o.stats = &world->stats;
    auto agent = std::make_unique<CbrpAgent>(o);
    world->agents.push_back(agent.get());
    node->set_agent(std::move(agent));
    world->network->add_node(std::move(node));
  }
  world->network->start();
  return world;
}

TEST(CbrpTest, DiscoversAndDeliversAlongTheLine) {
  auto world = make_line_world(5, 80.0, 100.0);
  world->sim.run_until(14.0);  // let clusters form
  ASSERT_EQ(world->agents[0]->clustering().role(), cluster::Role::kHead);

  world->agents[0]->send_data(world->network->node(0), 4, 512);
  world->sim.run_until(15.0);  // discovery + delivery are sub-second

  EXPECT_EQ(world->stats.discoveries_started, 1u);
  EXPECT_EQ(world->stats.discoveries_succeeded, 1u);
  EXPECT_EQ(world->stats.data_sent, 1u);
  EXPECT_EQ(world->stats.data_delivered, 1u);
  EXPECT_EQ(world->stats.data_dropped, 0u);
  // The only path is the 4-hop line.
  const auto route = world->agents[0]->cached_route(4);
  EXPECT_EQ(route, (std::vector<net::NodeId>{0, 1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(world->stats.route_hops.mean(), 4.0);
  EXPECT_GT(world->stats.discovery_latency.mean(), 0.0);
  EXPECT_LT(world->stats.discovery_latency.mean(), 0.1);
}

TEST(CbrpTest, CachedRouteSkipsRediscovery) {
  auto world = make_line_world(5, 80.0, 100.0);
  world->sim.run_until(14.0);
  world->agents[0]->send_data(world->network->node(0), 4, 100);
  world->sim.run_until(15.0);
  ASSERT_EQ(world->stats.discoveries_started, 1u);
  // Second packet uses the cache: no new discovery, one more delivery.
  world->agents[0]->send_data(world->network->node(0), 4, 100);
  world->sim.run_until(16.0);
  EXPECT_EQ(world->stats.discoveries_started, 1u);
  EXPECT_EQ(world->stats.data_delivered, 2u);
}

TEST(CbrpTest, SilentMembersDoNotRelayRreq) {
  // Two-hop line with the middle node an ordinary member (not a gateway):
  // 3 nodes, spacing 80, range 100: heads {0, 2}? No — 0-1-2 with 0-2 out
  // of range: lowest-ID gives head 0, member 1, head 2; 1 hears both
  // heads -> gateway, so it DOES relay. To get a silent middle node, use
  // 4 nodes where node 1 is a plain member of head 0 and node 3 is out of
  // everyone's range: instead verify the overlay property directly: the
  // RREQ flood transmission count equals the number of overlay nodes
  // traversed, not all nodes.
  auto world = make_line_world(5, 80.0, 100.0);
  world->sim.run_until(14.0);
  world->agents[0]->send_data(world->network->node(0), 4, 64);
  world->sim.run_until(15.0);
  // Overlay on the line: origin 0 + gateway 1 + head 2 + gateway 3
  // (+ target 4 answers, never relays). Hence exactly 4 RREQ broadcasts.
  EXPECT_EQ(world->stats.rreq_tx, 4u);
  // RREP walks the 4 hops back.
  EXPECT_EQ(world->stats.rrep_tx, 4u);
}

TEST(CbrpTest, UnreachableTargetFailsGracefully) {
  auto world = make_line_world(5, 80.0, 100.0);
  // Disconnect the tail: kill node 3 so 4 is unreachable.
  world->sim.run_until(14.0);
  world->network->node(3).fail();
  world->sim.run_until(20.0);
  world->agents[0]->send_data(world->network->node(0), 4, 64);
  world->sim.run_until(25.0);
  EXPECT_EQ(world->stats.discoveries_started, 1u);
  EXPECT_EQ(world->stats.discoveries_succeeded, 0u);
  EXPECT_EQ(world->stats.data_delivered, 0u);
}

TEST(CbrpTest, BrokenRouteTriggersRerrAndRediscovery) {
  // Use a mobile last hop: node 4 walks out of node 3's range after the
  // route forms, then the next data packet dies at hop 3 -> RERR -> origin
  // invalidates -> rediscovery fails (4 gone).
  auto world = std::make_unique<CbrpWorld>();
  util::Rng root(33);
  world->network = std::make_unique<net::Network>(
      world->sim, radio::make_paper_medium(100.0), geom::Rect(900.0, 50.0),
      net::NetworkParams{}, root.substream("net"));
  const auto line_pos = [](int i) {
    return geom::Vec2{5.0 + 80.0 * i, 25.0};
  };
  for (std::size_t i = 0; i < 5; ++i) {
    std::unique_ptr<mobility::MobilityModel> model;
    if (i == 4) {
      mobility::PiecewiseLinearTrack t;
      t.append(0.0, line_pos(4));
      t.append(20.0, line_pos(4));
      t.append(40.0, {860.0, 25.0});  // far away
      t.append(1000.0, {860.0, 25.0});
      model = std::make_unique<mobility::TraceModel>(std::move(t));
    } else {
      model = std::make_unique<mobility::StaticModel>(line_pos(static_cast<int>(i)));
    }
    auto node = std::make_unique<net::Node>(
        static_cast<net::NodeId>(i), std::move(model),
        root.substream("node", i));
    CbrpOptions o;
    o.clustering = cluster::lowest_id_lcc_options();
    o.stats = &world->stats;
    auto agent = std::make_unique<CbrpAgent>(o);
    world->agents.push_back(agent.get());
    node->set_agent(std::move(agent));
    world->network->add_node(std::move(node));
  }
  world->network->start();

  world->sim.run_until(14.0);
  world->agents[0]->send_data(world->network->node(0), 4, 64);
  world->sim.run_until(15.0);
  ASSERT_EQ(world->stats.data_delivered, 1u);
  ASSERT_FALSE(world->agents[0]->cached_route(4).empty());

  // After node 4 left (t > ~45), the cached route is stale.
  world->sim.run_until(60.0);
  world->agents[0]->send_data(world->network->node(0), 4, 64);
  world->sim.run_until(62.0);
  EXPECT_EQ(world->stats.data_dropped, 1u);
  EXPECT_GT(world->stats.rerr_tx, 0u);
  EXPECT_TRUE(world->agents[0]->cached_route(4).empty())
      << "RERR must invalidate the origin's cache";
}

TEST(CbrpExperimentTest, RunsEndToEndWithSaneNumbers) {
  CbrpExperimentParams params;
  params.scenario.n_nodes = 25;
  params.scenario.fleet.field = geom::Rect(400.0, 400.0);
  params.scenario.fleet.max_speed = 5.0;
  params.scenario.tx_range = 150.0;
  params.scenario.sim_time = 120.0;
  params.flows = 5;
  params.data_interval = 5.0;

  const auto r = run_cbrp_experiment(
      params, scenario::factory_by_name("mobic"));
  EXPECT_GT(r.stats.data_sent, 50u);
  EXPECT_GT(r.delivery_ratio, 0.6);
  EXPECT_GT(r.stats.discoveries_succeeded, 0u);
  EXPECT_GT(r.mean_route_hops, 0.9);
  EXPECT_LT(r.mean_discovery_latency, 1.0);
}

TEST(CbrpExperimentTest, Deterministic) {
  CbrpExperimentParams params;
  params.scenario.n_nodes = 15;
  params.scenario.fleet.field = geom::Rect(300.0, 300.0);
  params.scenario.tx_range = 120.0;
  params.scenario.sim_time = 60.0;
  params.flows = 3;
  const auto a =
      run_cbrp_experiment(params, scenario::factory_by_name("lowest_id"));
  const auto b =
      run_cbrp_experiment(params, scenario::factory_by_name("lowest_id"));
  EXPECT_EQ(a.stats.data_delivered, b.stats.data_delivered);
  EXPECT_EQ(a.stats.rreq_tx, b.stats.rreq_tx);
  EXPECT_EQ(a.ch_changes, b.ch_changes);
}

}  // namespace
}  // namespace manet::routing
