#include "util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/assert.h"

namespace manet::util {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance_population(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance_sample(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance_population(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance_sample(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance_population(), 4.0);  // classic textbook set
  EXPECT_NEAR(s.variance_sample(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.stddev_population(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance_population(), all.variance_population(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Var0Test, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(var0({}), 0.0);
}

TEST(Var0Test, IsMeanOfSquares) {
  // The paper's eq. (2): var0 = E[x^2], *not* centered at the mean.
  const std::vector<double> xs = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(var0(xs), (9.0 + 16.0) / 2.0);
}

TEST(Var0Test, DiffersFromCenteredVariance) {
  // Identical samples: centered variance is 0 but var0 is x^2 — a node whose
  // neighbors all recede at the same rate is still mobile.
  const std::vector<double> xs = {-2.0, -2.0, -2.0};
  EXPECT_DOUBLE_EQ(var0(xs), 4.0);
  RunningStats s;
  for (const double x : xs) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.variance_population(), 0.0);
}

TEST(Var0Test, ZeroSamplesGiveZero) {
  const std::vector<double> xs = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(var0(xs), 0.0);
}

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  const std::vector<double> xs = {1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
}

TEST(PercentileTest, MedianAndExtremes) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
}

TEST(PercentileTest, Interpolates) {
  std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 7.5);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
}

TEST(PercentileTest, RejectsEmptyAndBadPct) {
  EXPECT_THROW(percentile({}, 50.0), CheckError);
  EXPECT_THROW(percentile({1.0}, -1.0), CheckError);
  EXPECT_THROW(percentile({1.0}, 101.0), CheckError);
}

TEST(MeanCiTest, EmptyAndSingle) {
  EXPECT_EQ(mean_ci95({}).n, 0u);
  const std::vector<double> one = {4.0};
  const auto ci = mean_ci95(one);
  EXPECT_DOUBLE_EQ(ci.mean, 4.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(MeanCiTest, KnownTwoSample) {
  // n=2, mean 1, sample sd sqrt(2); t(df=1) = 12.706.
  const std::vector<double> xs = {0.0, 2.0};
  const auto ci = mean_ci95(xs);
  EXPECT_DOUBLE_EQ(ci.mean, 1.0);
  EXPECT_NEAR(ci.half_width, 12.706 * std::sqrt(2.0) / std::sqrt(2.0), 1e-9);
}

TEST(MeanCiTest, ShrinksWithSamples) {
  std::vector<double> small, large;
  for (int i = 0; i < 5; ++i) {
    small.push_back(i % 2 == 0 ? 1.0 : -1.0);
  }
  for (int i = 0; i < 500; ++i) {
    large.push_back(i % 2 == 0 ? 1.0 : -1.0);
  }
  EXPECT_GT(mean_ci95(small).half_width, mean_ci95(large).half_width);
}

TEST(TimeWeightedMeanTest, PiecewiseConstant) {
  TimeWeightedMean twm;
  twm.set(0.0, 10.0);  // 10 for 2 s
  twm.set(2.0, 0.0);   // 0 for 8 s
  twm.finish(10.0);
  EXPECT_DOUBLE_EQ(twm.average(), 2.0);
  EXPECT_DOUBLE_EQ(twm.duration(), 10.0);
}

TEST(TimeWeightedMeanTest, RepeatedSetsAtSameTime) {
  TimeWeightedMean twm;
  twm.set(0.0, 1.0);
  twm.set(0.0, 5.0);  // instantaneous override
  twm.finish(1.0);
  EXPECT_DOUBLE_EQ(twm.average(), 5.0);
}

TEST(TimeWeightedMeanTest, DegenerateSpan) {
  TimeWeightedMean twm;
  twm.set(3.0, 7.0);
  twm.finish(3.0);
  EXPECT_DOUBLE_EQ(twm.average(), 7.0);
}

TEST(TimeWeightedMeanTest, RejectsMisuse) {
  TimeWeightedMean twm;
  EXPECT_THROW(twm.finish(1.0), CheckError);
  twm.set(5.0, 1.0);
  EXPECT_THROW(twm.set(4.0, 1.0), CheckError);  // time regression
  twm.finish(6.0);
  EXPECT_THROW(twm.set(7.0, 1.0), CheckError);  // set after finish
  EXPECT_THROW(twm.finish(8.0), CheckError);    // double finish
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps into bin 0
  h.add(0.5);    // bin 0
  h.add(3.0);    // bin 1
  h.add(9.99);   // bin 4
  h.add(10.0);   // clamps into bin 4
  h.add(100.0);  // clamps into bin 4
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 0u);
  EXPECT_EQ(h.bin_count(4), 3u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), CheckError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckError);
}

TEST(HistogramTest, ToStringRendersAllBins) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string s = h.to_string(10);
  EXPECT_NE(s.find("[0, 1)"), std::string::npos);
  EXPECT_NE(s.find("[1, 2)"), std::string::npos);
}

}  // namespace
}  // namespace manet::util
