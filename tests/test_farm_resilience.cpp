// Sweep-farm self-healing (scenario/worker.h, DESIGN.md §7) against the
// real `manetsim --worker` binary, with faults injected through the seeded
// $MANET_FARM_CHAOS harness: hung workers are deadline-killed, garbage
// speakers are respawned with backoff, poison cells are quarantined with an
// in-process verdict, and a collapsed pool degrades to in-process execution
// — in every case the sweep completes with output byte-identical to a
// clean serial run.
//
// CTest exports MANET_WORKER_BIN=<built manetsim>; every test here needs
// the real binary and skips without it.
#include <gtest/gtest.h>
#include <stdlib.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "scenario/cache.h"
#include "scenario/runner.h"
#include "scenario/worker.h"
#include "util/assert.h"

namespace manet::scenario {
namespace {

Scenario small_scenario() {
  Scenario s;
  s.n_nodes = 16;
  s.fleet.field = geom::Rect(300.0, 300.0);
  s.fleet.max_speed = 8.0;
  s.tx_range = 120.0;
  s.sim_time = 60.0;
  s.warmup = 5.0;
  s.seed = 7;
  return s;
}

bool have_worker_bin() { return ::getenv("MANET_WORKER_BIN") != nullptr; }

// Scoped environment overrides: chaos and $MANET_FARM_* knobs leak into
// the worker subprocesses (and Runner's apply_env) via the environment, so
// every test restores the previous state on exit.
class EnvGuard {
 public:
  explicit EnvGuard(
      std::initializer_list<std::pair<const char*, const char*>> vars) {
    for (const auto& [key, value] : vars) {
      const char* old = ::getenv(key);
      saved_.emplace_back(key, old != nullptr
                                   ? std::optional<std::string>(old)
                                   : std::nullopt);
      ::setenv(key, value, 1);
    }
  }
  ~EnvGuard() {
    for (auto it = saved_.rbegin(); it != saved_.rend(); ++it) {
      if (it->second.has_value()) {
        ::setenv(it->first.c_str(), it->second->c_str(), 1);
      } else {
        ::unsetenv(it->first.c_str());
      }
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
};

std::vector<WorkerRequest> make_requests(int count) {
  std::vector<WorkerRequest> requests;
  for (int k = 0; k < count; ++k) {
    Scenario s = small_scenario();
    s.seed = static_cast<std::uint64_t>(30 + k);
    requests.push_back({"mobic", canonical_scenario_text(s)});
  }
  return requests;
}

// A worker that never answers is reaped by the per-cell deadline
// (SIGTERM→SIGKILL) and the cell retried; once the attempt budget runs out
// it is quarantined instead of hanging the sweep forever.
TEST(FarmResilienceTest, HungWorkerIsDeadlineKilledAndQuarantined) {
  if (!have_worker_bin()) {
    GTEST_SKIP() << "MANET_WORKER_BIN not set (run under ctest)";
  }
  const EnvGuard env({{"MANET_FARM_CHAOS", "seed=5,hang=1,hang_s=600"}});

  FarmOptions farm;
  farm.max_attempts = 2;
  farm.initial_deadline_s = 0.25;
  farm.min_deadline_s = 0.05;
  farm.term_grace_s = 0.1;
  farm.backoff_base_ms = 1.0;
  farm.backoff_max_ms = 4.0;

  FarmStats stats;
  const auto outcomes = run_jobs_on_workers(
      resolve_worker_bin(""), 1, make_requests(1), {}, farm, &stats);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].cell.has_value());
  EXPECT_TRUE(outcomes[0].quarantined);
  ASSERT_TRUE(outcomes[0].error.has_value());
  EXPECT_NE(outcomes[0].error->find("deadline overrun"), std::string::npos)
      << *outcomes[0].error;
  EXPECT_EQ(stats.deadline_kills, 2u);
  EXPECT_EQ(stats.transport_failures, 2u);
  EXPECT_EQ(stats.quarantined_cells, 1u);
  EXPECT_GE(stats.respawns, 1u);
}

// A worker that answers with well-formed frames carrying a non-protocol
// payload is killed and respawned with backoff; the afflicted cells burn
// their attempt budget (the chaos fate is payload-keyed, so every retry
// meets the same garbage) and end up quarantined — never reported as
// success, never aborting the farm.
TEST(FarmResilienceTest, GarbageFramesRespawnWithBackoffThenQuarantine) {
  if (!have_worker_bin()) {
    GTEST_SKIP() << "MANET_WORKER_BIN not set (run under ctest)";
  }
  const EnvGuard env({{"MANET_FARM_CHAOS", "seed=5,garbage=1"}});

  FarmOptions farm;
  farm.max_attempts = 3;
  farm.backoff_base_ms = 2.0;
  farm.backoff_max_ms = 8.0;

  FarmStats stats;
  const auto outcomes = run_jobs_on_workers(
      resolve_worker_bin(""), 2, make_requests(2), {}, farm, &stats);
  ASSERT_EQ(outcomes.size(), 2u);
  for (const WorkerOutcome& out : outcomes) {
    EXPECT_FALSE(out.cell.has_value());
    EXPECT_TRUE(out.quarantined);
    ASSERT_TRUE(out.error.has_value());
    EXPECT_NE(out.error->find("transport failure"), std::string::npos)
        << *out.error;
  }
  EXPECT_EQ(stats.transport_failures, 6u);  // 2 cells x 3 attempts
  EXPECT_EQ(stats.quarantined_cells, 2u);
  EXPECT_GE(stats.respawns, 1u);
  EXPECT_GE(stats.backoff_waits, 1u);
  EXPECT_EQ(stats.deadline_kills, 0u);
}

// Runner-level quarantine: a sweep whose every cell is poisoned at the
// transport layer still completes, each cell re-executed in-process for a
// definitive verdict — and the results are byte-identical to a clean
// serial run. The run log records structured "quarantined" rows plus the
// end-of-sweep farm_summary.
TEST(FarmResilienceTest, QuarantinedCellsGetInProcessVerdict) {
  if (!have_worker_bin()) {
    GTEST_SKIP() << "MANET_WORKER_BIN not set (run under ctest)";
  }
  const std::string run_log =
      ::testing::TempDir() + "farm_quarantine_run_log.jsonl";
  const EnvGuard env({{"MANET_FARM_CHAOS", "seed=5,garbage=1"},
                      {"MANET_FARM_MAX_ATTEMPTS", "2"},
                      {"MANET_FARM_MAX_RESPAWNS", "50"},
                      {"MANET_FARM_BACKOFF_MS", "1"},
                      {"MANET_FARM_BACKOFF_MAX_MS", "4"}});

  const Scenario s = small_scenario();
  const OptionsFactory factory = factory_by_name("mobic");

  RunnerOptions serial;
  serial.jobs = 1;
  const auto clean = Runner(serial).replications(s, factory, 3, "mobic");

  RunnerOptions farmed;
  farmed.jobs = 1;
  farmed.workers = 2;
  farmed.run_log_path = run_log;
  std::vector<std::string> statuses;
  farmed.on_run = [&](const RunRecord& record) {
    statuses.push_back(record.status);
    EXPECT_NE(record.error.find("transport failure"), std::string::npos)
        << record.error;
  };
  const Runner runner(farmed);
  const auto healed = runner.replications(s, factory, 3, "mobic");

  EXPECT_TRUE(clean == healed);
  EXPECT_EQ(statuses, std::vector<std::string>(3, "quarantined"));
  EXPECT_EQ(runner.farm_stats().quarantined_cells, 3u);
  EXPECT_FALSE(runner.farm_stats().pool_collapsed);

  std::ifstream in(run_log);
  std::stringstream log;
  log << in.rdbuf();
  EXPECT_NE(log.str().find("\"status\":\"quarantined\""), std::string::npos);
  EXPECT_NE(log.str().find("\"farm_summary\""), std::string::npos);
  EXPECT_NE(log.str().find("farm.quarantined_cells"), std::string::npos);
  ::remove(run_log.c_str());
}

// Graceful degradation: every request kills its worker mid-frame and the
// respawn budget is zero, so the pool collapses with nothing executed. The
// Runner drains every cell in-process ("degraded") and the output stays
// byte-identical to a clean --jobs 1 run.
TEST(FarmResilienceTest, PoolCollapseDegradesToInProcessExecution) {
  if (!have_worker_bin()) {
    GTEST_SKIP() << "MANET_WORKER_BIN not set (run under ctest)";
  }
  const EnvGuard env({{"MANET_FARM_CHAOS", "seed=5,exit=1"},
                      {"MANET_FARM_MAX_RESPAWNS", "0"},
                      {"MANET_FARM_BACKOFF_MS", "1"},
                      {"MANET_FARM_BACKOFF_MAX_MS", "4"}});

  const Scenario s = small_scenario();
  const OptionsFactory factory = factory_by_name("mobic");

  RunnerOptions serial;
  serial.jobs = 1;
  const auto clean = Runner(serial).replications(s, factory, 3, "mobic");

  RunnerOptions farmed;
  farmed.jobs = 1;
  farmed.workers = 2;
  std::vector<std::string> statuses;
  farmed.on_run = [&](const RunRecord& record) {
    statuses.push_back(record.status);
  };
  const Runner runner(farmed);
  const auto degraded = runner.replications(s, factory, 3, "mobic");

  EXPECT_TRUE(clean == degraded);
  ASSERT_EQ(statuses.size(), 3u);
  for (const std::string& status : statuses) {
    EXPECT_EQ(status, "degraded");
  }
  EXPECT_TRUE(runner.farm_stats().pool_collapsed);
  EXPECT_EQ(runner.farm_stats().degraded_cells, 3u);
  EXPECT_GE(runner.farm_stats().transport_failures, 1u);
}

// The chaos fate is keyed on (seed, request payload) only: the same cell
// draws the same fate on any worker slot and any scheduling, which is what
// makes chaos runs reproducible and farm healing scheduling-independent.
TEST(FarmResilienceTest, ChaosFateIsSchedulingIndependent) {
  if (!have_worker_bin()) {
    GTEST_SKIP() << "MANET_WORKER_BIN not set (run under ctest)";
  }
  // At garbage=0.5 with this seed, some cells pass and some are poisoned;
  // both pool shapes must agree exactly on which.
  const EnvGuard env({{"MANET_FARM_CHAOS", "seed=11,garbage=0.5"}});

  FarmOptions farm;
  farm.max_attempts = 2;
  farm.backoff_base_ms = 1.0;
  farm.backoff_max_ms = 4.0;

  const auto requests = make_requests(6);
  const auto one = run_jobs_on_workers(resolve_worker_bin(""), 1, requests,
                                       {}, farm, nullptr);
  const auto four = run_jobs_on_workers(resolve_worker_bin(""), 4, requests,
                                        {}, farm, nullptr);
  ASSERT_EQ(one.size(), four.size());
  bool any_ok = false;
  bool any_poisoned = false;
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].cell.has_value(), four[i].cell.has_value()) << i;
    EXPECT_EQ(one[i].quarantined, four[i].quarantined) << i;
    if (one[i].cell.has_value()) {
      EXPECT_EQ(*one[i].cell, *four[i].cell) << i;
      any_ok = true;
    }
    any_poisoned = any_poisoned || one[i].quarantined;
  }
  EXPECT_TRUE(any_ok) << "chaos seed poisoned every cell; pick another";
  EXPECT_TRUE(any_poisoned) << "chaos seed poisoned no cell; pick another";
}

}  // namespace
}  // namespace manet::scenario
