// The WCA-style combined weight (extension): blends the paper's mobility
// metric with a degree-fitness term.
#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "helpers.h"
#include "scenario/runner.h"

namespace manet::cluster {
namespace {

TEST(CombinedWeightTest, PresetConfiguration) {
  const auto o = combined_options(2.0, 0.5, 6.0);
  EXPECT_EQ(o.kind, WeightKind::kCombined);
  EXPECT_DOUBLE_EQ(o.combined_mobility_weight, 2.0);
  EXPECT_DOUBLE_EQ(o.combined_degree_weight, 0.5);
  EXPECT_DOUBLE_EQ(o.combined_ideal_degree, 6.0);
  EXPECT_TRUE(o.lcc);
  EXPECT_EQ(options_by_name("combined").kind, WeightKind::kCombined);
  EXPECT_EQ(options_by_name("wca").kind, WeightKind::kCombined);
}

TEST(CombinedWeightTest, DegreeTermElectsTheBestConnectedStaticNode) {
  // Static star with ideal_degree = 3: the hub (degree 3) has penalty 0,
  // peripherals (degree 1) have penalty 2 — the hub wins despite id 3,
  // mirroring Max-Connectivity, but through the combined weight.
  auto options = combined_options(1.0, 1.0, 3.0);
  auto world = test::make_static_world(
      {{0.0, 100.0}, {200.0, 100.0}, {100.0, 0.0}, {100.0, 90.0}}, 110.0,
      options);
  world->run(20.0);
  EXPECT_EQ(world->agent(3).role(), Role::kHead);
  for (net::NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(world->agent(i).cluster_head(), 3u);
  }
}

TEST(CombinedWeightTest, ZeroDegreeWeightReducesToMobic) {
  // With the degree term off, the combined metric equals M: on a static
  // topology all metrics are ~0 and ids break ties like MOBIC.
  auto options = combined_options(1.0, 0.0, 8.0);
  auto world = test::make_static_world(test::figure1_positions(), 100.0,
                                       options);
  world->run(16.0);
  EXPECT_EQ(world->heads(), (std::vector<net::NodeId>{0, 1, 4}));
}

TEST(CombinedWeightTest, MetricIsAdvertisedAndCompared) {
  auto options = combined_options(1.0, 1.0, 2.0);
  auto world = test::make_static_world(
      {{0.0, 0.0}, {50.0, 0.0}, {100.0, 0.0}}, 120.0, options);
  world->run(10.0);
  // Chain of 3 within 120 m partially: node 1 hears both others
  // (degree 2, penalty 0); 0 and 2 hear... 0-2 distance is 100 < 120, so
  // all pairwise connected: everyone degree 2, penalty 0 -> tie -> id 0.
  EXPECT_EQ(world->heads(), (std::vector<net::NodeId>{0}));
  EXPECT_DOUBLE_EQ(world->agent(0).metric(), 0.0);
}

TEST(CombinedWeightTest, RunsInFullScenario) {
  scenario::Scenario s;
  s.n_nodes = 25;
  s.fleet.field = geom::Rect(400.0, 400.0);
  s.fleet.max_speed = 10.0;
  s.tx_range = 120.0;
  s.sim_time = 120.0;
  const auto r = scenario::run_scenario(
      s, scenario::factory_by_name("combined"));
  EXPECT_GT(r.avg_clusters, 1.0);
  EXPECT_EQ(r.final_validation.undecided, 0u);
}

TEST(SweepFieldsTest, AggregatesMultipleFieldsFromSameRuns) {
  scenario::SweepSpec spec;
  spec.base.n_nodes = 15;
  spec.base.fleet.field = geom::Rect(300.0, 300.0);
  spec.base.tx_range = 100.0;
  spec.base.sim_time = 60.0;
  spec.xs = {80.0, 150.0};
  spec.configure = [](scenario::Scenario& s, double tx) { s.tx_range = tx; };
  spec.algorithms = scenario::paper_algorithms();
  spec.fields = {{"cs", scenario::field_ch_changes},
                 {"clusters", scenario::field_avg_clusters}};
  spec.replications = 2;
  const auto result = scenario::Runner().run(spec);

  const auto series = result.multi();
  ASSERT_EQ(series.size(), 2u);
  for (const auto& p : series) {
    for (const auto& alg : {"lowest_id", "mobic"}) {
      ASSERT_TRUE(p.values.count(alg));
      EXPECT_TRUE(p.values.at(alg).count("cs"));
      EXPECT_TRUE(p.values.at(alg).count("clusters"));
    }
  }
  // Clusters shrink with range, consistent with the single-field view.
  EXPECT_LT(series[1].values.at("mobic").at("clusters").mean,
            series[0].values.at("mobic").at("clusters").mean);
  // The single-field projection of the same SweepResult agrees exactly —
  // both views come from the same runs.
  const auto single = result.series("clusters");
  ASSERT_EQ(single.size(), 2u);
  EXPECT_DOUBLE_EQ(single[0].values.at("mobic").mean,
                   series[0].values.at("mobic").at("clusters").mean);
  EXPECT_DOUBLE_EQ(single[0].values.at("mobic").half_width,
                   series[0].values.at("mobic").at("clusters").half_width);
}

}  // namespace
}  // namespace manet::cluster
