// Paper-level integration tests: scaled-down versions of the evaluation
// (shorter runs, fewer seeds) asserting the qualitative claims of §4 hold
// end to end. The full-fidelity versions live in bench/.
#include <gtest/gtest.h>

#include "scenario/runner.h"

namespace manet::scenario {
namespace {

Scenario paper_base(double tx, double sim_time = 300.0) {
  Scenario s;
  s.n_nodes = 50;
  s.fleet.kind = mobility::ModelKind::kRandomWaypoint;
  s.fleet.field = geom::Rect(670.0, 670.0);
  s.fleet.max_speed = 20.0;
  s.fleet.pause_time = 0.0;
  s.tx_range = tx;
  s.sim_time = sim_time;
  s.warmup = 10.0;
  return s;
}

double mean_cs(const Scenario& s, const std::string& alg, int seeds) {
  return aggregate(Runner().replications(s, factory_by_name(alg), seeds),
                   field_ch_changes)
      .mean;
}

TEST(PaperIntegrationTest, MobicBeatsLowestIdAtHighRange) {
  // The headline claim (Figure 3 / abstract): at Tx = 250 m MOBIC yields
  // fewer clusterhead changes.
  const auto s = paper_base(250.0);
  const double lid = mean_cs(s, "lowest_id", 3);
  const double mobic = mean_cs(s, "mobic", 3);
  EXPECT_LT(mobic, lid) << "lid=" << lid << " mobic=" << mobic;
}

TEST(PaperIntegrationTest, ChurnPeaksAtModerateRange) {
  // §4.2: CS rises from Tx = 10, peaks near 50, falls by 250.
  const double cs10 = mean_cs(paper_base(10.0), "lowest_id", 2);
  const double cs50 = mean_cs(paper_base(50.0), "lowest_id", 2);
  const double cs250 = mean_cs(paper_base(250.0), "lowest_id", 2);
  EXPECT_GT(cs50, cs10);
  EXPECT_GT(cs50, cs250);
}

TEST(PaperIntegrationTest, ClusterCountDecreasesWithRange) {
  // Figure 4, both algorithms.
  for (const auto& alg : {"lowest_id", "mobic"}) {
    const auto clusters = [&](double tx) {
      return aggregate(Runner().replications(paper_base(tx),
                                             factory_by_name(alg), 2),
                       field_avg_clusters)
          .mean;
    };
    const double c50 = clusters(50.0);
    const double c100 = clusters(100.0);
    const double c250 = clusters(250.0);
    EXPECT_GT(c50, c100) << alg;
    EXPECT_GT(c100, c250) << alg;
  }
}

TEST(PaperIntegrationTest, SparserFieldChurnsMore) {
  // §4.3 (Figure 5): same nodes on 1000^2 -> more clusterhead changes at a
  // mid-range Tx.
  auto dense = paper_base(150.0);
  auto sparse = paper_base(150.0);
  sparse.fleet.field = geom::Rect(1000.0, 1000.0);
  EXPECT_GT(mean_cs(sparse, "lowest_id", 2), mean_cs(dense, "lowest_id", 2));
}

TEST(PaperIntegrationTest, FasterNodesChurnMore) {
  // Figure 6 x-axis direction: MaxSpeed 1 -> 30 raises CS.
  auto slow = paper_base(250.0);
  slow.fleet.max_speed = 1.0;
  auto fast = paper_base(250.0);
  fast.fleet.max_speed = 30.0;
  EXPECT_GT(mean_cs(fast, "lowest_id", 2), mean_cs(slow, "lowest_id", 2));
  EXPECT_GT(mean_cs(fast, "mobic", 2), mean_cs(slow, "mobic", 2));
}

TEST(PaperIntegrationTest, PausesReduceChurn) {
  // Figure 6(b): PT = 30 s scenarios are calmer than PT = 0. The effect is
  // strongest where churn itself is high (moderate range), so test there.
  auto moving = paper_base(150.0);
  auto pausing = paper_base(150.0);
  pausing.fleet.pause_time = 30.0;
  EXPECT_LT(mean_cs(pausing, "lowest_id", 3),
            mean_cs(moving, "lowest_id", 3));
}

TEST(PaperIntegrationTest, HelloOverheadMatchesEightBytesPerBeacon) {
  // §4.1: stamping M onto the hello adds exactly 8 bytes per beacon.
  const auto s = paper_base(100.0, 120.0);
  const auto r = run_scenario(s, factory_by_name("mobic"));
  // serialized_bytes = 15 fixed + 4*neighbors + 8 (M). Check the M share:
  const double per_beacon =
      static_cast<double>(r.bytes_sent) / static_cast<double>(r.beacons_sent);
  EXPECT_GE(per_beacon, 23.0);  // 15 + 8 with no neighbors
  net::HelloPacket empty;
  net::HelloPacket one;
  one.neighbors = {1};
  EXPECT_EQ(one.serialized_bytes() - empty.serialized_bytes(), 4u);
}

TEST(PaperIntegrationTest, TheoremOneHoldsAtQuietEnd) {
  // After 300 s the (dynamic) invariant violations are confined to
  // transient contention; undecided nodes should be absent.
  const auto s = paper_base(150.0);
  const auto r = run_scenario(s, factory_by_name("mobic"));
  EXPECT_EQ(r.final_validation.undecided, 0u);
  EXPECT_EQ(r.final_validation.members_of_non_head, 0u);
}

}  // namespace
}  // namespace manet::scenario
