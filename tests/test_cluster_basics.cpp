// Weight total order, role conversions, presets.
#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "cluster/types.h"
#include "cluster/weight.h"
#include "util/assert.h"

namespace manet::cluster {
namespace {

TEST(WeightTest, LexicographicOrder) {
  // Metric dominates...
  EXPECT_LT((Weight{1.0, 99}), (Weight{2.0, 0}));
  // ...and the id breaks ties (the paper's augmented weight {M, ID}).
  EXPECT_LT((Weight{1.0, 3}), (Weight{1.0, 4}));
  EXPECT_EQ((Weight{1.0, 3}), (Weight{1.0, 3}));
}

TEST(WeightTest, TotalOrderOnDistinctIds) {
  // With distinct ids no two weights compare equal, whatever the metrics —
  // the premise of Theorem 1.
  const Weight a{5.0, 1};
  const Weight b{5.0, 2};
  EXPECT_TRUE(a < b || b < a);
  EXPECT_NE(a, b);
}

TEST(RoleTest, AdvertRoundTrip) {
  for (const Role r : {Role::kUndecided, Role::kHead, Role::kMember}) {
    EXPECT_EQ(from_advert(to_advert(r)), r);
  }
  EXPECT_EQ(role_name(Role::kHead), "head");
  EXPECT_EQ(role_name(Role::kUndecided), "undecided");
  EXPECT_EQ(role_name(Role::kMember), "member");
}

TEST(PresetsTest, MobicConfiguration) {
  const auto o = mobic_options(nullptr, 4.0);
  EXPECT_EQ(o.kind, WeightKind::kMobility);
  EXPECT_TRUE(o.lcc);
  EXPECT_DOUBLE_EQ(o.cci, 4.0);
  EXPECT_DOUBLE_EQ(o.mobility.ewma_alpha, 1.0);  // memoryless, as published
}

TEST(PresetsTest, LowestIdConfigurations) {
  const auto lcc = lowest_id_lcc_options();
  EXPECT_EQ(lcc.kind, WeightKind::kLowestId);
  EXPECT_TRUE(lcc.lcc);
  EXPECT_DOUBLE_EQ(lcc.cci, 0.0);
  const auto plain = lowest_id_plain_options();
  EXPECT_FALSE(plain.lcc);
}

TEST(PresetsTest, HistoryVariant) {
  const auto o = mobic_history_options(0.3);
  EXPECT_DOUBLE_EQ(o.mobility.ewma_alpha, 0.3);
  EXPECT_EQ(o.kind, WeightKind::kMobility);
}

TEST(PresetsTest, ByNameLookups) {
  EXPECT_EQ(options_by_name("mobic").kind, WeightKind::kMobility);
  EXPECT_EQ(options_by_name("MOBIC").kind, WeightKind::kMobility);
  EXPECT_EQ(options_by_name("lowest_id").kind, WeightKind::kLowestId);
  EXPECT_TRUE(options_by_name("lowest_id").lcc);
  EXPECT_FALSE(options_by_name("lowest_id_plain").lcc);
  EXPECT_EQ(options_by_name("max_connectivity").kind,
            WeightKind::kMaxConnectivity);
  EXPECT_DOUBLE_EQ(options_by_name("mobic_history:0.25").mobility.ewma_alpha,
                   0.25);
  EXPECT_THROW(options_by_name("zeus"), util::CheckError);
  EXPECT_THROW(options_by_name("mobic_history:2.0"), util::CheckError);
}

TEST(PresetsTest, WeightKindNames) {
  EXPECT_EQ(weight_kind_name(WeightKind::kMobility), "mobic");
  EXPECT_EQ(weight_kind_name(WeightKind::kLowestId), "lowest_id");
  EXPECT_EQ(weight_kind_name(WeightKind::kMaxConnectivity),
            "max_connectivity");
  EXPECT_EQ(weight_kind_name(WeightKind::kStaticWeight), "dca_static");
}

TEST(AgentTest, RejectsBadOptions) {
  ClusterOptions o = mobic_options();
  o.cci = -1.0;
  EXPECT_THROW(WeightedClusterAgent{o}, util::CheckError);
  o = mobic_options();
  o.adaptive_bi = true;
  o.adaptive_bi_min = 5.0;
  o.adaptive_bi_max = 1.0;
  EXPECT_THROW(WeightedClusterAgent{o}, util::CheckError);
}

}  // namespace
}  // namespace manet::cluster
