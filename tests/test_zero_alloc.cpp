// Zero-allocation guarantees for the simulator hot path, asserted with the
// counting allocator hook (util/alloc_hook.cpp is compiled into this
// binary — see tests/CMakeLists.txt).
//
// The contract after the slab-queue overhaul:
//   * steady-state EventQueue churn (push / cancel / pop of small
//     callbacks) performs no heap allocations at all;
//   * the steady-state Hello delivery loop (beacon -> broadcast -> batched
//     delivery -> neighbor table update) performs no heap allocations once
//     every pool and table has warmed up;
//   * a full paper scenario (clustering agents included) stays within a
//     small allocations-per-event budget — the residue is rare protocol
//     bookkeeping (clusterhead contention maps), not per-event traffic.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "cluster/validation.h"
#include "fault/injector.h"
#include "helpers.h"
#include "mobility/factory.h"
#include "net/network.h"
#include "obs/hooks.h"
#include "obs/metrics.h"
#include "radio/medium.h"
#include "scenario/reporting.h"
#include "scenario/scenario.h"
#include "sim/simulator.h"
#include "util/alloc_hook.h"
#include "util/rng.h"

namespace manet {
namespace {

// A protocol that advertises nothing: isolates the substrate (beacons,
// batched delivery, neighbor tables) from clustering allocations.
class NullAgent final : public net::Agent {
 public:
  void on_beacon(net::Node&, net::HelloPacket&) override {}
};

TEST(ZeroAlloc, HookIsLinked) {
  ASSERT_TRUE(util::alloc_hook_active());
  // Sanity: the hook actually observes allocations.
  const util::AllocWindow window;
  auto p = std::make_unique<int>(42);
  EXPECT_GE(window.allocs(), 1u);
  EXPECT_EQ(*p, 42);
}

TEST(ZeroAlloc, EventQueueSteadyStateChurn) {
  sim::EventQueue q;
  util::Rng rng(11);
  // Warm-up: run the exact op mix of the measured loop below until the
  // slab, free list, heap (including its lazy-dead headroom), and every
  // vector capacity reach their steady-state high-water mark.
  for (int i = 0; i < 256; ++i) {
    q.push(rng.uniform(0.0, 100.0), [] {});
  }
  const auto churn = [&q](int cycles) {
    for (int cycle = 0; cycle < cycles; ++cycle) {
      const auto fired = q.pop();
      const double horizon = fired.time + 10.0;
      const sim::EventId id = q.push(horizon, [] {});
      if (cycle % 3 == 0) {
        q.cancel(id);
        q.push(horizon + 0.5, [] {});
      }
    }
  };
  churn(2000);

  const util::AllocWindow window;
  churn(50000);
  EXPECT_EQ(window.allocs(), 0u)
      << "event queue churn allocated on the steady-state path";
}

TEST(ZeroAlloc, HelloDeliverySteadyState) {
  sim::Simulator sim;
  util::Rng root(77);
  const geom::Rect field(670.0, 670.0);
  radio::Medium medium(radio::make_propagation("free_space", 2.7, 4.0),
                       radio::RadioParams{}, 250.0);
  net::NetworkParams params;  // defaults: BI 2 s, delivery delay 0.5 ms
  net::Network network(sim, std::move(medium), field, params,
                       root.substream("network"));

  mobility::FleetParams fleet;
  fleet.duration = 300.0;
  network.add_fleet(mobility::make_fleet(fleet, 50, root.substream("mob")));
  for (auto& node : network.nodes()) {
    node->set_agent(std::make_unique<NullAgent>());
  }
  network.start();

  // Warm-up: tables fill, delivery pools and scratch buffers reach their
  // steady-state capacity.
  sim.run_until(40.0);

  const util::AllocWindow window;
  sim.run_until(120.0);
  EXPECT_EQ(window.allocs(), 0u)
      << "Hello delivery allocated on the steady-state path";
  EXPECT_GT(network.stats().hellos_delivered, 10000u);
}

// The observability contract: with the metrics registry live (counters and
// the queue-depth histogram hooked into the simulator and the network), the
// steady-state delivery loop must STILL be allocation-free — registration
// allocates at setup, updates never do.
TEST(ZeroAlloc, ObsInstrumentedHelloDeliverySteadyState) {
  sim::Simulator sim;
  util::Rng root(77);
  const geom::Rect field(670.0, 670.0);
  radio::Medium medium(radio::make_propagation("free_space", 2.7, 4.0),
                       radio::RadioParams{}, 250.0);
  net::NetworkParams params;
  net::Network network(sim, std::move(medium), field, params,
                       root.substream("network"));

  obs::Registry registry;
  obs::SimHooks sim_hooks;
  sim_hooks.queue_depth = registry.histogram(
      "event_queue.depth", {8.0, 64.0, 512.0, 2048.0});
  obs::NetHooks net_hooks;
  net_hooks.beacon_sent = registry.counter("beacon.sent");
  net_hooks.hello_sent = registry.counter("hello.sent");
  net_hooks.hello_delivered = registry.counter("hello.delivered");
  net_hooks.hello_dropped_fading = registry.counter("hello.dropped.fading");
  net_hooks.hello_dropped_loss = registry.counter("hello.dropped.loss");
  net_hooks.hello_dropped_collision =
      registry.counter("hello.dropped.collision");
  net_hooks.neighbor_timeout = registry.counter("neighbor.timeout");
  net_hooks.msg_sent = registry.counter("msg.sent");
  net_hooks.msg_delivered = registry.counter("msg.delivered");
  sim.set_hooks(&sim_hooks);
  network.set_hooks(&net_hooks);

  mobility::FleetParams fleet;
  fleet.duration = 300.0;
  network.add_fleet(mobility::make_fleet(fleet, 50, root.substream("mob")));
  for (auto& node : network.nodes()) {
    node->set_agent(std::make_unique<NullAgent>());
  }
  network.start();
  sim.run_until(40.0);

  const util::AllocWindow window;
  sim.run_until(120.0);
  EXPECT_EQ(window.allocs(), 0u)
      << "metrics updates allocated on the steady-state path";
#if MANET_OBS_ENABLED
  // The instrumentation was actually exercised, not just linked.
  EXPECT_GT(net_hooks.hello_delivered->value(), 10000u);
  EXPECT_EQ(net_hooks.hello_delivered->value(),
            network.stats().hellos_delivered);
  EXPECT_GT(sim_hooks.queue_depth->total_count(), 0u);
#endif
}

// The energy model sizes every per-node vector at construction and the
// drain path is plain arithmetic plus counter bumps, so battery accounting
// on the delivery loop — hello TX/RX drains with idle settlement, hooks
// live — must be exactly allocation-free in steady state.
TEST(ZeroAlloc, EnergyDrainSteadyState) {
  sim::Simulator sim;
  util::Rng root(77);
  const geom::Rect field(670.0, 670.0);
  radio::Medium medium(radio::make_propagation("free_space", 2.7, 4.0),
                       radio::RadioParams{}, 250.0);
  net::NetworkParams params;
  net::Network network(sim, std::move(medium), field, params,
                       root.substream("network"));

  obs::Registry registry;
  obs::EnergyHooks hooks;
  hooks.depleted = registry.counter("energy.depleted");
  hooks.drains = registry.counter("energy.drain");
  hooks.residual_ratio =
      registry.histogram("energy.residual_ratio", {0.25, 0.5, 0.75, 1.0});

  net::EnergyParams eparams;
  eparams.enabled = true;
  // Batteries deep enough that nothing depletes: this pin measures the
  // drain/settle path itself, not the crash machinery behind a death.
  eparams.capacity_j = 1e6;
  eparams.idle_drain_w = 0.01;
  eparams.hello_tx_cost_j = 0.02;
  eparams.hello_rx_cost_j = 0.005;
  net::EnergyModel energy(eparams, 50, root.substream("energy"));
  energy.set_hooks(&hooks);
  network.set_energy(&energy);

  mobility::FleetParams fleet;
  fleet.duration = 300.0;
  network.add_fleet(mobility::make_fleet(fleet, 50, root.substream("mob")));
  for (auto& node : network.nodes()) {
    node->set_agent(std::make_unique<NullAgent>());
  }
  network.start();
  sim.run_until(40.0);

  const util::AllocWindow window;
  sim.run_until(120.0);
  EXPECT_EQ(window.allocs(), 0u)
      << "battery drains allocated on the steady-state path";
#if MANET_OBS_ENABLED
  EXPECT_GT(hooks.drains->value(), 10000u);
#endif
  EXPECT_GT(energy.total_drained_j(), 0.0);
  EXPECT_EQ(energy.deaths(), 0u);
}

// The fault injector pre-sizes its timeline and active-window set at
// construction (worst case: every window open at once), so executing the
// schedule — window activations, expiries, and the per-delivery
// drop_probability() walk — allocates nothing once the substrate has warmed
// up.
TEST(ZeroAlloc, FaultInjectorSteadyState) {
  sim::Simulator sim;
  util::Rng root(77);
  const geom::Rect field(670.0, 670.0);
  radio::Medium medium(radio::make_propagation("free_space", 2.7, 4.0),
                       radio::RadioParams{}, 250.0);
  net::NetworkParams params;
  net::Network network(sim, std::move(medium), field, params,
                       root.substream("network"));

  mobility::FleetParams fleet;
  fleet.duration = 300.0;
  network.add_fleet(mobility::make_fleet(fleet, 50, root.substream("mob")));
  for (auto& node : network.nodes()) {
    node->set_agent(std::make_unique<NullAgent>());
  }

  // Two identical rounds of a dense overlapping window workload — per-node
  // loss bursts plus a jam zone, several active at once. Round one is
  // warm-up: faulty traffic shifts the delivery-batch concurrency
  // high-water mark, and the substrate pools must reach it before the
  // measured round.
  fault::Schedule schedule;
  for (const double base : {45.0, 145.0}) {
    for (int i = 0; i < 12; ++i) {
      fault::FaultEvent burst;
      burst.kind = fault::FaultKind::kLossBurst;
      burst.at = base + 5.0 * i;
      burst.until = burst.at + 12.0;
      burst.node = static_cast<net::NodeId>(i * 4);
      burst.probability = 0.8;
      schedule.add(burst);
    }
    fault::FaultEvent jam;
    jam.kind = fault::FaultKind::kJam;
    jam.at = base + 15.0;
    jam.until = base + 55.0;
    jam.center = geom::Vec2{335.0, 335.0};
    jam.radius = 200.0;
    jam.probability = 0.9;
    schedule.add(jam);
  }

  fault::Injector injector(network, std::move(schedule));
  injector.arm();
  network.start();

  // Warm-up covers the whole first fault round (last window closes at
  // t=116); the second, identical round runs inside the measured window.
  sim.run_until(140.0);
  ASSERT_EQ(injector.timeline().size(), 13u);

  const util::AllocWindow window;
  sim.run_until(220.0);
  EXPECT_EQ(window.allocs(), 0u)
      << "fault injection allocated on the steady-state path";
  EXPECT_EQ(injector.timeline().size(), 26u);
  EXPECT_EQ(injector.active_windows(), 0u);
  EXPECT_GT(network.stats().hellos_lost, 0u);
}

// Ground-truth validation through a warmed AdjacencyScratch is strictly
// allocation-free — the convergence monitor calls it once per sample, so
// this is the contract that keeps resilience runs heap-quiet.
TEST(ZeroAlloc, ValidationScratchSteadyState) {
  auto world = test::make_static_world(test::figure1_positions(), 100.0,
                                       cluster::mobic_options());
  world->run(12.0);
  const auto agents = world->const_agents();

  net::Network::AdjacencyScratch scratch;
  const cluster::ValidationReport warm =
      cluster::validate_clusters(*world->network, agents, 12.0, scratch);
  // The scratch overload must agree with the allocating one exactly.
  const cluster::ValidationReport reference =
      cluster::validate_clusters(*world->network, agents, 12.0);
  ASSERT_TRUE(warm == reference);

  const util::AllocWindow window;
  for (int i = 0; i < 200; ++i) {
    const cluster::ValidationReport rep = cluster::validate_clusters(
        *world->network, agents, 12.0 + 0.01 * i, scratch);
    EXPECT_TRUE(rep == warm);
  }
  EXPECT_EQ(window.allocs(), 0u)
      << "scratch-based validation allocated after warm-up";
}

// A full resilience run (crash/recover churn + loss bursts, convergence
// monitor sampling every second) must stay within the same tiny per-event
// budget as the fault-free scenario — before the validation scratch this
// path ran at ~3.7 allocations per event.
TEST(ZeroAlloc, ResilienceScenarioAllocBudget) {
  scenario::Scenario s = scenario::paper_scenario();
  s.sim_time = 120.0;
  s.faults.begin = 30.0;
  s.faults.end = 90.0;
  s.faults.crash_rate = 0.03;
  s.faults.mean_downtime = 30.0;
  s.faults.loss_burst_rate = 0.02;
  s.faults.loss_burst_duration = 8.0;
  s.faults.loss_burst_probability = 0.9;
  const util::AllocWindow window;
  const scenario::RunResult r =
      scenario::run_scenario(s, scenario::factory_by_name("mobic"));
  ASSERT_GT(r.events_executed, 0u);
  ASSERT_GT(r.faults_injected, 0u);
  ASSERT_GT(r.convergence_samples, 0u);
  const double per_event = static_cast<double>(window.allocs()) /
                           static_cast<double>(r.events_executed);
  EXPECT_LT(per_event, 0.25)
      << "resilience allocations per simulator event regressed: "
      << per_event;
}

// Composite-weight elections (Pareto scratches reserved at attach, extras
// riding pre-sized Hello fields) plus live battery drain and mid-run
// depletions must fit the same per-event budget as the scalar protocols.
TEST(ZeroAlloc, CompositeEnergyScenarioAllocBudget) {
  scenario::Scenario s = scenario::paper_scenario();
  s.sim_time = 120.0;
  s.energy.enabled = true;
  s.energy.capacity_j = 6.0;
  s.energy.capacity_jitter = 0.5;
  s.energy.idle_drain_w = 0.01;
  s.energy.hello_tx_cost_j = 0.02;
  s.energy.hello_rx_cost_j = 0.005;
  for (const char* alg : {"cci", "sd_dwca"}) {
    const util::AllocWindow window;
    const scenario::RunResult r =
        scenario::run_scenario(s, scenario::factory_by_name(alg));
    ASSERT_GT(r.events_executed, 0u) << alg;
    ASSERT_GT(r.battery_deaths, 0u)
        << alg << ": no battery died — the budget below skips the "
                  "depletion path";
    const double per_event = static_cast<double>(window.allocs()) /
                             static_cast<double>(r.events_executed);
    EXPECT_LT(per_event, 0.25)
        << alg << " allocations per simulator event regressed: " << per_event;
  }
}

TEST(ZeroAlloc, FullScenarioAllocBudget) {
  // With clustering agents attached the loop is not allocation-free (rare
  // contention bookkeeping, stats samples), but the per-event budget must
  // stay tiny. Pre-overhaul this ratio was > 1.5 allocations per event.
  scenario::Scenario s = scenario::paper_scenario();
  s.sim_time = 120.0;
  const util::AllocWindow window;
  const scenario::RunResult r =
      scenario::run_scenario(s, scenario::factory_by_name("mobic"));
  ASSERT_GT(r.events_executed, 0u);
  const double per_event = static_cast<double>(window.allocs()) /
                           static_cast<double>(r.events_executed);
  EXPECT_LT(per_event, 0.25)
      << "allocations per simulator event regressed: " << per_event;
}

}  // namespace
}  // namespace manet
