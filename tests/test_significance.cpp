#include "util/significance.h"

#include <gtest/gtest.h>

#include "util/assert.h"
#include "util/stats.h"

namespace manet::util {
namespace {

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(normal_cdf(5.0), 1.0, 1e-6);
}

TEST(MannWhitneyTest, ClearlySeparatedSamples) {
  const std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> b = {11, 12, 13, 14, 15, 16, 17, 18};
  const auto r = mann_whitney(a, b);
  EXPECT_DOUBLE_EQ(r.u, 0.0);              // no a outranks any b
  EXPECT_NEAR(r.effect_size, 1.0, 1e-12);  // P(a < b) = 1
  EXPECT_LT(r.p_a_less, 0.01);
  EXPECT_LT(r.p_two_sided, 0.02);
}

TEST(MannWhitneyTest, IdenticalDistributions) {
  const std::vector<double> a = {1, 3, 5, 7, 9, 11};
  const std::vector<double> b = {2, 4, 6, 8, 10, 12};
  const auto r = mann_whitney(a, b);
  EXPECT_NEAR(r.effect_size, 0.5, 0.1);
  EXPECT_GT(r.p_two_sided, 0.5);
}

TEST(MannWhitneyTest, AllTied) {
  const std::vector<double> a = {5, 5, 5};
  const std::vector<double> b = {5, 5, 5};
  const auto r = mann_whitney(a, b);
  EXPECT_DOUBLE_EQ(r.p_two_sided, 1.0);
  EXPECT_DOUBLE_EQ(r.effect_size, 0.5);
}

TEST(MannWhitneyTest, HandlesTiesWithMidranks) {
  const std::vector<double> a = {1, 2, 2, 3};
  const std::vector<double> b = {2, 3, 3, 4};
  const auto r = mann_whitney(a, b);
  // A tends smaller; effect size > 0.5 and finite z.
  EXPECT_GT(r.effect_size, 0.5);
  EXPECT_LT(r.p_a_less, 0.5);
  EXPECT_TRUE(std::isfinite(r.z));
}

TEST(MannWhitneyTest, SymmetryInSwap) {
  const std::vector<double> a = {3, 1, 4, 1, 5};
  const std::vector<double> b = {9, 2, 6, 5, 3};
  const auto ab = mann_whitney(a, b);
  const auto ba = mann_whitney(b, a);
  EXPECT_NEAR(ab.effect_size, 1.0 - ba.effect_size, 1e-12);
  EXPECT_NEAR(ab.p_two_sided, ba.p_two_sided, 1e-9);
}

TEST(MannWhitneyTest, RejectsEmpty) {
  const std::vector<double> a = {1.0};
  EXPECT_THROW(mann_whitney({}, a), CheckError);
  EXPECT_THROW(mann_whitney(a, {}), CheckError);
}

TEST(BootstrapTest, MeanCiCoversTruthOnGaussianData) {
  Rng rng(5);
  std::vector<double> sample(60);
  for (auto& v : sample) {
    v = rng.normal(10.0, 2.0);
  }
  const auto ci = bootstrap_ci(
      sample, [](std::span<const double> s) { return mean(s); }, 0.95, 1000);
  EXPECT_NEAR(ci.point, 10.0, 1.0);
  EXPECT_LT(ci.lo, ci.point);
  EXPECT_GT(ci.hi, ci.point);
  EXPECT_LT(ci.lo, 10.0);
  EXPECT_GT(ci.hi, 10.0);
  // Width of a 95% CI on the mean of n=60, sd=2: ~ 2*1.96*2/sqrt(60) ~ 1.0.
  EXPECT_NEAR(ci.hi - ci.lo, 1.0, 0.5);
}

TEST(BootstrapTest, WorksForNonSmoothStatistics) {
  std::vector<double> sample = {1, 2, 3, 4, 5, 6, 7, 8, 9, 100};
  const auto ci = bootstrap_ci(
      sample,
      [](std::span<const double> s) {
        std::vector<double> v(s.begin(), s.end());
        return percentile(v, 50.0);
      },
      0.9, 500);
  EXPECT_GE(ci.lo, 1.0);
  EXPECT_LE(ci.hi, 100.0);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
}

TEST(BootstrapTest, DeterministicPerSeed) {
  std::vector<double> sample = {1, 2, 3, 4, 5};
  const auto stat = [](std::span<const double> s) { return mean(s); };
  const auto a = bootstrap_ci(sample, stat, 0.95, 200, 7);
  const auto b = bootstrap_ci(sample, stat, 0.95, 200, 7);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(BootstrapTest, RejectsBadArgs) {
  const auto stat = [](std::span<const double> s) { return mean(s); };
  EXPECT_THROW(bootstrap_ci({}, stat), CheckError);
  const std::vector<double> one = {1.0};
  EXPECT_THROW(bootstrap_ci(one, stat, 1.5), CheckError);
  EXPECT_THROW(bootstrap_ci(one, stat, 0.95, 1), CheckError);
}

}  // namespace
}  // namespace manet::util
