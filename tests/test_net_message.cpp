// The generic protocol-message facility (net::Message / Network::send).
#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "helpers.h"
#include "net/network.h"
#include "util/assert.h"

namespace manet::net {
namespace {

// Agent that records received messages and otherwise clusters normally.
class RecordingAgent final : public Agent {
 public:
  void on_beacon(Node&, HelloPacket&) override {}
  void on_message(Node&, const Message& msg) override {
    received.push_back(msg);
  }
  std::vector<Message> received;
};

struct MessageWorld {
  sim::Simulator sim;
  std::unique_ptr<Network> network;
  std::vector<RecordingAgent*> agents;
};

std::unique_ptr<MessageWorld> make_world(
    const std::vector<geom::Vec2>& positions, double range,
    NetworkParams params = {}) {
  auto world = std::make_unique<MessageWorld>();
  util::Rng root(17);
  double w = 1.0, h = 1.0;
  for (const auto p : positions) {
    w = std::max(w, p.x + 1.0);
    h = std::max(h, p.y + 1.0);
  }
  world->network = std::make_unique<Network>(
      world->sim, radio::make_paper_medium(range), geom::Rect(w, h), params,
      root.substream("net"));
  for (std::size_t i = 0; i < positions.size(); ++i) {
    auto node = std::make_unique<Node>(
        static_cast<NodeId>(i),
        std::make_unique<mobility::StaticModel>(positions[i]),
        root.substream("node", i));
    auto agent = std::make_unique<RecordingAgent>();
    world->agents.push_back(agent.get());
    node->set_agent(std::move(agent));
    world->network->add_node(std::move(node));
  }
  world->network->start();
  return world;
}

Message text_message(NodeId dst, int kind = 7) {
  Message msg;
  msg.dst = dst;
  msg.kind = kind;
  msg.body = std::make_shared<const std::string>("payload");
  msg.bytes = 42;
  return msg;
}

TEST(NetworkSendTest, BroadcastReachesAllInRange) {
  auto world =
      make_world({{0.0, 0.0}, {50.0, 0.0}, {90.0, 0.0}, {300.0, 0.0}},
                 100.0);
  const std::size_t delivered = world->network->send(
      world->network->node(0), text_message(kInvalidNode));
  EXPECT_EQ(delivered, 2u);  // nodes 1 and 2; node 3 out of range
  world->sim.run_until(0.1);
  EXPECT_EQ(world->agents[1]->received.size(), 1u);
  EXPECT_EQ(world->agents[2]->received.size(), 1u);
  EXPECT_TRUE(world->agents[3]->received.empty());
  // Receivers see the sender and the payload.
  const auto& msg = world->agents[1]->received.front();
  EXPECT_EQ(msg.src, 0u);
  EXPECT_EQ(msg.kind, 7);
  EXPECT_EQ(*static_cast<const std::string*>(msg.body.get()), "payload");
}

TEST(NetworkSendTest, UnicastActsAsLinkLayerAck) {
  auto world = make_world({{0.0, 0.0}, {50.0, 0.0}, {300.0, 0.0}}, 100.0);
  EXPECT_EQ(world->network->send(world->network->node(0), text_message(1)),
            1u);
  EXPECT_EQ(world->network->send(world->network->node(0), text_message(2)),
            0u);  // out of range
  world->sim.run_until(0.1);
  EXPECT_EQ(world->agents[1]->received.size(), 1u);
  EXPECT_TRUE(world->agents[2]->received.empty());
}

TEST(NetworkSendTest, UnicastToDeadNodeFails) {
  auto world = make_world({{0.0, 0.0}, {50.0, 0.0}}, 100.0);
  world->network->node(1).fail();
  EXPECT_EQ(world->network->send(world->network->node(0), text_message(1)),
            0u);
}

TEST(NetworkSendTest, RejectsBadDestinations) {
  auto world = make_world({{0.0, 0.0}, {50.0, 0.0}}, 100.0);
  EXPECT_THROW(
      world->network->send(world->network->node(0), text_message(9)),
      util::CheckError);
  EXPECT_THROW(
      world->network->send(world->network->node(0), text_message(0)),
      util::CheckError);  // to self
}

TEST(NetworkSendTest, AccountsBytesAndCounts) {
  auto world = make_world({{0.0, 0.0}, {50.0, 0.0}}, 100.0);
  world->network->send(world->network->node(0), text_message(1));
  world->network->send(world->network->node(0),
                       text_message(kInvalidNode));
  const auto& s = world->network->stats();
  EXPECT_EQ(s.messages_sent, 2u);
  EXPECT_EQ(s.messages_delivered, 2u);
  EXPECT_EQ(s.message_bytes, 84u);
}

TEST(NetworkSendTest, PacketLossDropsUnicasts) {
  NetworkParams params;
  params.packet_loss = 1.0;  // everything lost
  auto world = make_world({{0.0, 0.0}, {50.0, 0.0}}, 100.0, params);
  EXPECT_EQ(world->network->send(world->network->node(0), text_message(1)),
            0u);
}

TEST(NetworkSendTest, DeliveryIsDelayed) {
  auto world = make_world({{0.0, 0.0}, {50.0, 0.0}}, 100.0);
  world->network->send(world->network->node(0), text_message(1));
  // Before the delivery delay elapses the agent has not seen it.
  EXPECT_TRUE(world->agents[1]->received.empty());
  world->sim.run_until(0.001);  // default delay is 0.5 ms
  EXPECT_EQ(world->agents[1]->received.size(), 1u);
}

}  // namespace
}  // namespace manet::net
