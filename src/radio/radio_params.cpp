#include "radio/radio_params.h"

#include <cmath>

namespace manet::radio {

double RadioParams::wavelength_m() const {
  return kSpeedOfLight / frequency_hz;
}

double watts_to_dbm(double watts) { return 10.0 * std::log10(watts * 1e3); }

double dbm_to_watts(double dbm) { return std::pow(10.0, dbm / 10.0) * 1e-3; }

double ratio_to_db(double ratio) { return 10.0 * std::log10(ratio); }

double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

}  // namespace manet::radio
