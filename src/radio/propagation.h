// Radio propagation models. The paper's ideal setting is Friis free space
// (§3.1, footnote 6: "we do not consider the effects of multipath ... fading");
// two-ray ground is the ns-2 default the CMU extensions shipped; log-distance
// and log-normal shadowing back the robustness ablation (A5 in DESIGN.md).
//
// All models return *received power in watts* given the deterministic path
// and, for stochastic models, a per-reception fading draw from the supplied
// RNG (pass nullptr for the deterministic mean — used for calibration).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "radio/radio_params.h"
#include "util/rng.h"
#include "util/thread_role.h"

namespace manet::radio {

class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  /// Received power (watts) at `distance_m` for the given radio. `fading`
  /// supplies the stochastic component; nullptr yields the deterministic
  /// median path loss. distance 0 returns the transmit power.
  //
  // Thread role is decided by the argument, not the function: the RNG draw
  // happens only when `fading` is non-null, and every non-null caller is
  // itself commit-only (Medium::try_receive). Worker-side callers
  // (Medium::median_rx_power_w) pass nullptr, so the audited contract is
  // role-agnostic rather than commit-only.
  virtual double rx_power_w(const RadioParams& radio, double distance_m,
                            util::Rng* fading) const MANET_ROLE_AGNOSTIC = 0;

  /// True if rx_power_w uses the fading RNG.
  virtual bool stochastic() const { return false; }

  /// Distance beyond which delivery above `threshold_w` is (virtually)
  /// impossible; channels use it to bound neighbor queries. For
  /// deterministic monotone models this inverts the path loss exactly; for
  /// shadowing it adds ~3.5 sigma of headroom.
  virtual double max_range_m(const RadioParams& radio,
                             double threshold_w) const = 0;

  virtual std::string_view name() const = 0;
};

/// Friis free-space: Pr = Pt Gt Gr lambda^2 / ((4 pi d)^2 L).
class FreeSpace final : public PropagationModel {
 public:
  double rx_power_w(const RadioParams& radio, double distance_m,
                    util::Rng* fading) const override;
  double max_range_m(const RadioParams& radio,
                     double threshold_w) const override;
  std::string_view name() const override { return "free_space"; }
};

/// Two-ray ground reflection: Friis below the crossover distance
/// dc = 4 pi ht hr / lambda, then Pr = Pt Gt Gr ht^2 hr^2 / (d^4 L).
class TwoRayGround final : public PropagationModel {
 public:
  double rx_power_w(const RadioParams& radio, double distance_m,
                    util::Rng* fading) const override;
  double max_range_m(const RadioParams& radio,
                     double threshold_w) const override;
  std::string_view name() const override { return "two_ray_ground"; }

  static double crossover_distance_m(const RadioParams& radio);
};

/// Log-distance path loss: free space to d0, then exponent `n`:
/// Pr(d) = Pr(d0) * (d0/d)^n.
class LogDistance final : public PropagationModel {
 public:
  explicit LogDistance(double exponent = 2.7, double reference_m = 1.0);

  double rx_power_w(const RadioParams& radio, double distance_m,
                    util::Rng* fading) const override;
  double max_range_m(const RadioParams& radio,
                     double threshold_w) const override;
  std::string_view name() const override { return "log_distance"; }

  double exponent() const { return exponent_; }

 private:
  double exponent_;
  double reference_m_;
};

/// Log-normal shadowing on top of log-distance: each reception adds a
/// zero-mean Gaussian (in dB) of the given sigma. Per-reception independent
/// draws — a pessimistic (memoryless) fading assumption, which is exactly
/// the stress the A5 ablation wants to put on the power-ratio metric.
class LogNormalShadowing final : public PropagationModel {
 public:
  LogNormalShadowing(double exponent, double sigma_db,
                     double reference_m = 1.0);

  // See the base declaration: the draw is guarded by `fading != nullptr`,
  // and non-null callers are commit-only by annotation.
  double rx_power_w(const RadioParams& radio, double distance_m,
                    util::Rng* fading) const MANET_ROLE_AGNOSTIC override;
  bool stochastic() const override { return sigma_db_ > 0.0; }
  double max_range_m(const RadioParams& radio,
                     double threshold_w) const override;
  std::string_view name() const override { return "log_normal_shadowing"; }

  double sigma_db() const { return sigma_db_; }

 private:
  LogDistance base_;
  double sigma_db_;
};

/// Factory from a name ("free_space", "two_ray", "log_distance",
/// "shadowing"); sigma/exponent apply where meaningful.
std::unique_ptr<PropagationModel> make_propagation(std::string_view name,
                                                   double exponent = 2.7,
                                                   double sigma_db = 4.0);

}  // namespace manet::radio
