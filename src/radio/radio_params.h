// Physical radio parameters. Defaults are the ns-2 / CMU wireless-extension
// 914 MHz Lucent WaveLAN card constants the paper's simulations used, so the
// received-power values feeding the MOBIC metric are the same magnitudes the
// authors measured.
#pragma once

namespace manet::radio {

struct RadioParams {
  double tx_power_w = 0.28183815;  // ns-2 default transmit power (24.5 dBm)
  double frequency_hz = 914e6;     // WaveLAN carrier
  double antenna_gain_tx = 1.0;    // Gt
  double antenna_gain_rx = 1.0;    // Gr
  double system_loss = 1.0;        // L >= 1
  double antenna_height_m = 1.5;   // ht = hr, used by two-ray ground

  /// Carrier wavelength (meters).
  double wavelength_m() const;
};

/// Speed of light, m/s.
inline constexpr double kSpeedOfLight = 299792458.0;

/// dBm/dB helpers.
double watts_to_dbm(double watts);
double dbm_to_watts(double dbm);
double ratio_to_db(double ratio);
double db_to_ratio(double db);

}  // namespace manet::radio
