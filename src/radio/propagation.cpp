#include "radio/propagation.h"

#include <cmath>
#include <numbers>

#include "util/assert.h"
#include "util/strings.h"

namespace manet::radio {

namespace {

constexpr double kFourPi = 4.0 * std::numbers::pi;

double friis(const RadioParams& r, double d) {
  MANET_ASSERT(d >= 0.0, "distance=" << d);
  if (d <= 0.0) {
    return r.tx_power_w;
  }
  const double lambda = r.wavelength_m();
  const double denom = kFourPi * d;
  return r.tx_power_w * r.antenna_gain_tx * r.antenna_gain_rx * lambda *
         lambda / (denom * denom * r.system_loss);
}

// Inverts friis() for distance: d = lambda/(4 pi) * sqrt(Pt Gt Gr / (Pr L)).
double friis_inverse(const RadioParams& r, double rx_w) {
  MANET_CHECK(rx_w > 0.0, "threshold must be positive");
  const double lambda = r.wavelength_m();
  return lambda / kFourPi *
         std::sqrt(r.tx_power_w * r.antenna_gain_tx * r.antenna_gain_rx /
                   (rx_w * r.system_loss));
}

}  // namespace

double FreeSpace::rx_power_w(const RadioParams& radio, double distance_m,
                             util::Rng*) const {
  return friis(radio, distance_m);
}

double FreeSpace::max_range_m(const RadioParams& radio,
                              double threshold_w) const {
  return friis_inverse(radio, threshold_w);
}

double TwoRayGround::crossover_distance_m(const RadioParams& radio) {
  const double h = radio.antenna_height_m;
  return kFourPi * h * h / radio.wavelength_m();
}

double TwoRayGround::rx_power_w(const RadioParams& radio, double distance_m,
                                util::Rng*) const {
  const double dc = crossover_distance_m(radio);
  if (distance_m <= dc) {
    return friis(radio, distance_m);
  }
  const double h = radio.antenna_height_m;
  const double d2 = distance_m * distance_m;
  return radio.tx_power_w * radio.antenna_gain_tx * radio.antenna_gain_rx *
         h * h * h * h / (d2 * d2 * radio.system_loss);
}

double TwoRayGround::max_range_m(const RadioParams& radio,
                                 double threshold_w) const {
  MANET_CHECK(threshold_w > 0.0);
  const double dc = crossover_distance_m(radio);
  const double d_friis = friis_inverse(radio, threshold_w);
  if (d_friis <= dc) {
    return d_friis;
  }
  const double h = radio.antenna_height_m;
  return std::pow(radio.tx_power_w * radio.antenna_gain_tx *
                      radio.antenna_gain_rx * h * h * h * h /
                      (threshold_w * radio.system_loss),
                  0.25);
}

LogDistance::LogDistance(double exponent, double reference_m)
    : exponent_(exponent), reference_m_(reference_m) {
  MANET_CHECK(exponent > 0.0, "path-loss exponent=" << exponent);
  MANET_CHECK(reference_m > 0.0, "reference distance=" << reference_m);
}

double LogDistance::rx_power_w(const RadioParams& radio, double distance_m,
                               util::Rng*) const {
  if (distance_m <= 0.0) {
    return radio.tx_power_w;
  }
  const double pr_ref = friis(radio, reference_m_);
  if (distance_m <= reference_m_) {
    // Free space inside the reference distance.
    return friis(radio, distance_m);
  }
  return pr_ref * std::pow(reference_m_ / distance_m, exponent_);
}

double LogDistance::max_range_m(const RadioParams& radio,
                                double threshold_w) const {
  MANET_CHECK(threshold_w > 0.0);
  const double pr_ref = friis(radio, reference_m_);
  if (threshold_w >= pr_ref) {
    return std::min(reference_m_, friis_inverse(radio, threshold_w));
  }
  return reference_m_ * std::pow(pr_ref / threshold_w, 1.0 / exponent_);
}

LogNormalShadowing::LogNormalShadowing(double exponent, double sigma_db,
                                       double reference_m)
    : base_(exponent, reference_m), sigma_db_(sigma_db) {
  MANET_CHECK(sigma_db >= 0.0, "sigma_db=" << sigma_db);
}

double LogNormalShadowing::rx_power_w(const RadioParams& radio,
                                      double distance_m,
                                      util::Rng* fading) const {
  const double median = base_.rx_power_w(radio, distance_m, nullptr);
  if (fading == nullptr || sigma_db_ <= 0.0) {
    return median;
  }
  return median * db_to_ratio(fading->normal(0.0, sigma_db_));
}

double LogNormalShadowing::max_range_m(const RadioParams& radio,
                                       double threshold_w) const {
  // Headroom: a +3.5 sigma fade still delivering at the threshold.
  const double boosted = threshold_w / db_to_ratio(3.5 * sigma_db_);
  return base_.max_range_m(radio, boosted);
}

std::unique_ptr<PropagationModel> make_propagation(std::string_view name,
                                                   double exponent,
                                                   double sigma_db) {
  const std::string n = util::to_lower(name);
  if (n == "free_space" || n == "friis") {
    return std::make_unique<FreeSpace>();
  }
  if (n == "two_ray" || n == "two_ray_ground") {
    return std::make_unique<TwoRayGround>();
  }
  if (n == "log_distance") {
    return std::make_unique<LogDistance>(exponent);
  }
  if (n == "shadowing" || n == "log_normal_shadowing") {
    return std::make_unique<LogNormalShadowing>(exponent, sigma_db);
  }
  MANET_CHECK(false, "unknown propagation model: " << name);
  return nullptr;  // unreachable
}

}  // namespace manet::radio
