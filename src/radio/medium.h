// The radio medium: a propagation model + radio parameters + a reception
// threshold calibrated so the nominal transmission range matches the
// scenario's Tx parameter (the quantity the paper sweeps 10–250 m).
//
// This mirrors how ns-2 experiments set RXThresh_ for a desired range.
#pragma once

#include <memory>

#include "radio/propagation.h"
#include "radio/radio_params.h"
#include "util/rng.h"
#include "util/thread_role.h"

namespace manet::radio {

class Medium {
 public:
  /// Calibrates the reception threshold so that a node at exactly
  /// `nominal_range_m` receives at threshold power under the deterministic
  /// (median) path loss.
  Medium(std::shared_ptr<const PropagationModel> propagation,
         const RadioParams& radio, double nominal_range_m);

  const PropagationModel& propagation() const { return *propagation_; }
  const RadioParams& radio() const { return radio_; }
  double nominal_range_m() const { return nominal_range_m_; }
  double rx_threshold_w() const { return rx_threshold_w_; }

  /// Deterministic (median) received power at a distance.
  // Pure query; shard-planner workers call it for deterministic media.
  double median_rx_power_w(double distance_m) const MANET_WORKER_SAFE {
    return propagation_->rx_power_w(radio_, distance_m, nullptr);
  }

  /// One reception attempt: samples fading (if any) and applies the
  /// threshold. Returns the received power, or nullopt if below threshold.
  struct Reception {
    bool delivered = false;
    double rx_power_w = 0.0;
  };
  // Draws from `fading` — a commit-only effect even though the medium
  // itself is const.
  Reception try_receive(double distance_m, util::Rng& fading) const
      MANET_COMMIT_ONLY;

  /// Upper bound on any successful reception distance; channels use it to
  /// bound spatial queries.
  double max_delivery_range_m() const { return max_range_m_; }

 private:
  std::shared_ptr<const PropagationModel> propagation_;
  RadioParams radio_;
  double nominal_range_m_;
  double rx_threshold_w_;
  double max_range_m_;
};

/// Convenience: free-space medium with ns-2 WaveLAN defaults — the paper's
/// configuration.
Medium make_paper_medium(double nominal_range_m);

}  // namespace manet::radio
