#include "radio/medium.h"

#include "util/assert.h"

namespace manet::radio {

Medium::Medium(std::shared_ptr<const PropagationModel> propagation,
               const RadioParams& radio, double nominal_range_m)
    : propagation_(std::move(propagation)),
      radio_(radio),
      nominal_range_m_(nominal_range_m) {
  MANET_CHECK(propagation_ != nullptr);
  MANET_CHECK(nominal_range_m > 0.0, "range=" << nominal_range_m);
  rx_threshold_w_ = propagation_->rx_power_w(radio_, nominal_range_m, nullptr);
  MANET_CHECK(rx_threshold_w_ > 0.0 && rx_threshold_w_ < radio_.tx_power_w,
              "degenerate threshold " << rx_threshold_w_);
  max_range_m_ = propagation_->max_range_m(radio_, rx_threshold_w_);
  MANET_CHECK(max_range_m_ >= nominal_range_m * 0.999,
              "max range " << max_range_m_ << " below nominal range");
}

Medium::Reception Medium::try_receive(double distance_m,
                                      util::Rng& fading) const {
  Reception r;
  r.rx_power_w = propagation_->rx_power_w(radio_, distance_m, &fading);
  r.delivered = r.rx_power_w >= rx_threshold_w_;
  return r;
}

Medium make_paper_medium(double nominal_range_m) {
  return Medium(std::make_shared<FreeSpace>(), RadioParams{},
                nominal_range_m);
}

}  // namespace manet::radio
