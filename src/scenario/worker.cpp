#include "scenario/worker.h"

#include <errno.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "scenario/cache.h"
#include "scenario/scenario.h"
#include "util/assert.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/thread_role.h"

namespace manet::scenario {

namespace {

constexpr std::size_t kMaxFrame = 256u << 20;  // sanity bound, not a limit

void ignore_sigpipe_once() {
  // A worker dying between our write() calls must surface as EPIPE, not
  // kill the whole sweep.
  static std::once_flag flag;
  std::call_once(flag, [] { std::signal(SIGPIPE, SIG_IGN); });
}

/// "ok\n<cell>" / "error\n<what>" -> outcome; nullopt on a malformed
/// response (treated as a transport failure by the farm).
std::optional<WorkerOutcome> parse_response(const std::string& payload) {
  WorkerOutcome out;
  if (payload.rfind("ok\n", 0) == 0) {
    out.cell = payload.substr(3);
    return out;
  }
  if (payload.rfind("error\n", 0) == 0) {
    out.error = payload.substr(6);
    return out;
  }
  return std::nullopt;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != v && std::isfinite(parsed)) ? parsed : fallback;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  return end != v ? static_cast<std::uint64_t>(parsed) : fallback;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  return static_cast<std::size_t>(
      env_u64(name, static_cast<std::uint64_t>(fallback)));
}

/// $MANET_FARM_CHAOS — the farm-level analogue of fault::Schedule. A
/// comma-separated "key=value" list: seed=N plus per-fault probabilities
/// hang=P (sleep hang_s before answering), exit=P (write a partial frame
/// header and _exit mid-frame), garbage=P (well-formed frame, non-protocol
/// payload), slow=P (sleep slow_ms before the response). Each request's
/// fate is drawn from Rng(seed ^ fnv(request)), so it depends only on the
/// cell and the chaos seed — never on which worker got it or when.
struct ChaosSpec {
  bool enabled = false;
  std::uint64_t seed = 1;
  double hang = 0.0;
  double exit_p = 0.0;
  double garbage = 0.0;
  double slow = 0.0;
  double hang_s = 3600.0;
  double slow_ms = 50.0;
};

ChaosSpec chaos_from_env() {
  ChaosSpec spec;
  const char* env = std::getenv("MANET_FARM_CHAOS");
  if (env == nullptr || *env == '\0') {
    return spec;
  }
  spec.enabled = true;
  std::string_view rest(env);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      continue;
    }
    const std::string_view key = item.substr(0, eq);
    const std::string value(item.substr(eq + 1));
    char* end = nullptr;
    if (key == "seed") {
      spec.seed = std::strtoull(value.c_str(), &end, 10);
    } else if (key == "hang") {
      spec.hang = std::strtod(value.c_str(), &end);
    } else if (key == "exit") {
      spec.exit_p = std::strtod(value.c_str(), &end);
    } else if (key == "garbage") {
      spec.garbage = std::strtod(value.c_str(), &end);
    } else if (key == "slow") {
      spec.slow = std::strtod(value.c_str(), &end);
    } else if (key == "hang_s") {
      spec.hang_s = std::strtod(value.c_str(), &end);
    } else if (key == "slow_ms") {
      spec.slow_ms = std::strtod(value.c_str(), &end);
    }
  }
  return spec;
}

/// The four chaos draws for one request, in a fixed order so enabling one
/// fault never shifts another's draw.
struct ChaosFate {
  bool hang = false;
  bool exit_midframe = false;
  bool garbage = false;
  bool slow = false;
};

// Role-agnostic: the fate stream is a private, request-keyed Rng consumed
// to completion inside this call, and the draws affect only process fate in
// the chaos harness — never a replay-visible simulation stream.
ChaosFate chaos_fate(const ChaosSpec& spec,
                     const std::string& request) MANET_ROLE_AGNOSTIC {
  ChaosFate fate;
  util::Rng rng(util::mix64(spec.seed) ^ util::Fnv64::hash(request));
  fate.hang = rng.uniform() < spec.hang;
  fate.exit_midframe = rng.uniform() < spec.exit_p;
  fate.garbage = rng.uniform() < spec.garbage;
  fate.slow = rng.uniform() < spec.slow;
  return fate;
}

}  // namespace

bool read_frame(int fd, std::string* payload) {
  switch (read_frame_deadline(fd, payload, nullptr)) {
    case FrameStatus::kOk:
      return true;
    case FrameStatus::kEof:
      return false;
    case FrameStatus::kTorn:
    case FrameStatus::kTimeout:  // unreachable without a deadline
      break;
  }
  MANET_CHECK(false, "torn frame (peer died mid-frame)");
  return false;  // unreachable
}

FrameStatus read_frame_deadline(int fd, std::string* payload,
                                const util::IoDeadline* deadline) {
  unsigned char header[4];
  switch (util::read_exact(fd, reinterpret_cast<char*>(header), 4,
                           deadline)) {
    case util::IoStatus::kOk:
      break;
    case util::IoStatus::kEof:
      return FrameStatus::kEof;
    case util::IoStatus::kTimeout:
      return FrameStatus::kTimeout;
    case util::IoStatus::kTorn:
    case util::IoStatus::kError:
      return FrameStatus::kTorn;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            (static_cast<std::uint32_t>(header[1]) << 8) |
                            (static_cast<std::uint32_t>(header[2]) << 16) |
                            (static_cast<std::uint32_t>(header[3]) << 24);
  if (len > kMaxFrame) {
    return FrameStatus::kTorn;  // absurd length: garbage on the wire
  }
  payload->resize(len);
  if (len == 0) {
    return FrameStatus::kOk;
  }
  switch (util::read_exact(fd, payload->data(), len, deadline)) {
    case util::IoStatus::kOk:
      return FrameStatus::kOk;
    case util::IoStatus::kTimeout:
      return FrameStatus::kTimeout;
    default:
      return FrameStatus::kTorn;
  }
}

bool write_frame(int fd, std::string_view payload) {
  MANET_CHECK(payload.size() <= kMaxFrame,
              "absurd frame length " << payload.size());
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>(len & 0xff),
      static_cast<unsigned char>((len >> 8) & 0xff),
      static_cast<unsigned char>((len >> 16) & 0xff),
      static_cast<unsigned char>((len >> 24) & 0xff),
  };
  if (!util::write_all(fd, reinterpret_cast<const char*>(header), 4)) {
    return false;
  }
  return payload.empty() ||
         util::write_all(fd, payload.data(), payload.size());
}

int serve_worker(int in_fd, int out_fd) {
  ignore_sigpipe_once();
  const ChaosSpec chaos = chaos_from_env();
  std::string request;
  for (;;) {
    try {
      if (!read_frame(in_fd, &request)) {
        return 0;  // clean EOF: parent closed our stdin
      }
    } catch (const util::CheckError&) {
      return 1;
    }
    ChaosFate fate;
    if (chaos.enabled) {
      fate = chaos_fate(chaos, request);
      if (fate.hang) {
        // A wedged worker: the parent's per-cell deadline must reap us.
        std::this_thread::sleep_for(
            std::chrono::duration<double>(chaos.hang_s));
      }
      if (fate.exit_midframe) {
        const char partial[2] = {0x7f, 0x00};
        (void)util::write_all(out_fd, partial, 2);
        _exit(3);
      }
    }
    std::string response;
    try {
      MANET_CHECK(request.rfind("run\n", 0) == 0,
                  "bad worker request verb");
      const std::size_t alg_end = request.find('\n', 4);
      MANET_CHECK(alg_end != std::string::npos,
                  "bad worker request framing");
      const std::string algorithm = request.substr(4, alg_end - 4);
      const Scenario scenario =
          decode_canonical_scenario(request.substr(alg_end + 1));
      const RunResult result =
          run_scenario(scenario, factory_by_name(algorithm));
      response = "ok\n" + encode_cell(result);
    } catch (const std::exception& e) {
      response = std::string("error\n") + e.what();
    }
    if (chaos.enabled) {
      if (fate.garbage) {
        response = "chaos\ninjected garbage frame";
      }
      if (fate.slow) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(chaos.slow_ms / 1000.0));
      }
    }
    if (!write_frame(out_fd, response)) {
      return 1;  // parent is gone
    }
  }
}

FarmOptions& FarmOptions::apply_env() {
  max_attempts = env_size("MANET_FARM_MAX_ATTEMPTS", max_attempts);
  max_respawns = env_size("MANET_FARM_MAX_RESPAWNS", max_respawns);
  initial_deadline_s = env_double("MANET_FARM_DEADLINE_S",
                                  initial_deadline_s);
  deadline_factor = env_double("MANET_FARM_DEADLINE_FACTOR",
                               deadline_factor);
  min_deadline_s = env_double("MANET_FARM_MIN_DEADLINE_S", min_deadline_s);
  term_grace_s = env_double("MANET_FARM_GRACE_S", term_grace_s);
  backoff_base_ms = env_double("MANET_FARM_BACKOFF_MS", backoff_base_ms);
  backoff_max_ms = env_double("MANET_FARM_BACKOFF_MAX_MS", backoff_max_ms);
  seed = env_u64("MANET_FARM_SEED", seed);
  if (max_attempts == 0) {
    max_attempts = 1;
  }
  return *this;
}

obs::Snapshot FarmStats::to_snapshot() const {
  obs::Snapshot snap;
  // Alphabetical by name — the sorted-by-name invariant of obs::Snapshot.
  snap.counters.push_back({"farm.backoff_waits", backoff_waits});
  snap.counters.push_back({"farm.deadline_kills", deadline_kills});
  snap.counters.push_back({"farm.degraded", degraded_cells});
  snap.counters.push_back({"farm.pool_collapsed", pool_collapsed ? 1u : 0u});
  snap.counters.push_back({"farm.quarantined_cells", quarantined_cells});
  snap.counters.push_back({"farm.respawns", respawns});
  snap.counters.push_back({"farm.transport_failures", transport_failures});
  return snap;
}

void FarmStats::merge(const FarmStats& other) {
  respawns += other.respawns;
  deadline_kills += other.deadline_kills;
  transport_failures += other.transport_failures;
  quarantined_cells += other.quarantined_cells;
  backoff_waits += other.backoff_waits;
  degraded_cells += other.degraded_cells;
  pool_collapsed = pool_collapsed || other.pool_collapsed;
}

namespace {

// See the call site: a fresh substream keyed by (slot, respawn) is drawn
// once and discarded, so concurrent client threads never share an engine.
double backoff_jitter(const util::Rng& root, std::size_t slot,
                      std::size_t slot_respawns) MANET_ROLE_AGNOSTIC {
  return root
      .substream("slot", (static_cast<std::uint64_t>(slot) << 32) ^
                             slot_respawns)
      .uniform(0.5, 1.5);
}

}  // namespace

std::vector<WorkerOutcome> run_jobs_on_workers(
    const std::string& worker_bin, std::size_t workers,
    const std::vector<WorkerRequest>& requests,
    const WorkerCallbacks& callbacks, const FarmOptions& farm,
    FarmStats* stats) {
  MANET_CHECK(workers > 0, "need at least one worker");
  MANET_CHECK(farm.max_attempts > 0, "farm.max_attempts must be positive");
  ignore_sigpipe_once();

  std::vector<WorkerOutcome> outcomes(requests.size());
  FarmStats local_stats;
  if (requests.empty()) {
    if (stats != nullptr) {
      stats->merge(local_stats);
    }
    return outcomes;
  }
  workers = std::min(workers, requests.size());

  // Spawned on the calling thread so pipe/fork failures throw before any
  // client thread starts. An exec failure (bad binary path) is only
  // visible later, as the child exiting 127 — the retry budget turns that
  // into a per-cell quarantine rather than a hang.
  std::vector<util::Subprocess> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.push_back(util::Subprocess::spawn({worker_bin, "--worker"}));
  }

  std::atomic<std::size_t> next{0};
  std::mutex mu;  // guards retry_queue, attempts, the cost estimate, stats
  std::vector<std::size_t> retry_queue;
  std::vector<std::size_t> attempts(requests.size(), 0);
  std::size_t completed = 0;   // cells with a measured wall time
  double total_wall_s = 0.0;

  auto fetch = [&]() -> std::optional<std::size_t> {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (!retry_queue.empty()) {
        const std::size_t i = retry_queue.back();
        retry_queue.pop_back();
        return i;
      }
    }
    const std::size_t i = next.fetch_add(1);
    if (i < requests.size()) {
      return i;
    }
    return std::nullopt;
  };

  // Per-cell deadline: a generous multiple of the mean completed cell wall
  // time, so one estimate adapts to grids of any size — and a floor, so a
  // farm of sub-millisecond cells never reaps a worker over scheduler
  // noise. Before any completion only the configured initial bound exists.
  auto cell_deadline_s = [&]() {
    std::lock_guard<std::mutex> lock(mu);
    if (completed == 0) {
      return farm.initial_deadline_s;
    }
    return std::max(farm.min_deadline_s,
                    farm.deadline_factor * (total_wall_s /
                                            static_cast<double>(completed)));
  };

  const util::Rng jitter_root = util::Rng(farm.seed).substream("farm-backoff");

  auto client = [&](std::size_t slot) {
    util::Subprocess& proc = pool[slot];
    std::size_t slot_respawns = 0;
    std::size_t consecutive_failures = 0;
    for (;;) {
      if (callbacks.should_abort && callbacks.should_abort()) {
        break;
      }
      const auto job = fetch();
      if (!job.has_value()) {
        break;
      }
      const std::size_t i = *job;
      std::size_t my_attempt = 0;
      {
        std::lock_guard<std::mutex> lock(mu);
        my_attempt = ++attempts[i];
      }
      if (callbacks.on_dispatch) {
        callbacks.on_dispatch(i);
      }
      const std::string request = "run\n" + requests[i].algorithm + "\n" +
                                  requests[i].scenario_text;
      const auto t0 = std::chrono::steady_clock::now();
      std::string payload;
      FrameStatus status = FrameStatus::kTorn;
      if (write_frame(proc.stdin_fd(), request)) {
        const util::IoDeadline deadline =
            util::deadline_after(cell_deadline_s());
        status = read_frame_deadline(proc.stdout_fd(), &payload, &deadline);
      }
      std::optional<WorkerOutcome> parsed;
      if (status == FrameStatus::kOk) {
        parsed = parse_response(payload);
      }
      if (parsed.has_value()) {
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        {
          std::lock_guard<std::mutex> lock(mu);
          ++completed;
          total_wall_s += wall;
        }
        consecutive_failures = 0;
        outcomes[i] = std::move(*parsed);
        if (callbacks.on_response) {
          callbacks.on_response(i, outcomes[i]);
        }
        continue;
      }

      // Attempt failed: wedged (deadline), dead mid-cell (crash, kill,
      // exec failure), or speaking garbage. Reap the worker — gracefully
      // on a deadline overrun, hard otherwise — then retry or quarantine.
      const bool timed_out = status == FrameStatus::kTimeout;
      int code;
      if (timed_out) {
        code = proc.terminate_then_kill(farm.term_grace_s);
      } else {
        proc.kill_hard();
        code = proc.wait();
      }
      const char* kind = timed_out ? "deadline overrun" : "transport failure";
      bool give_up = false;
      {
        std::lock_guard<std::mutex> lock(mu);
        local_stats.transport_failures += 1;
        if (timed_out) {
          local_stats.deadline_kills += 1;
        }
        if (my_attempt >= farm.max_attempts) {
          give_up = true;
          local_stats.quarantined_cells += 1;
        } else {
          retry_queue.push_back(i);
        }
      }
      ++consecutive_failures;
      if (give_up) {
        outcomes[i].error = std::string(kind) +
                            " (worker exit status " + std::to_string(code) +
                            ") after " + std::to_string(my_attempt) +
                            " attempts on this cell";
        outcomes[i].quarantined = true;
        if (callbacks.on_response) {
          callbacks.on_response(i, outcomes[i]);
        }
      }

      // Respawn within the slot budget, backing off exponentially in the
      // run of consecutive failures with deterministic seed-derived jitter
      // (substream keyed by slot and respawn count — reproducible, and
      // never synchronized across slots).
      if (slot_respawns >= farm.max_respawns) {
        break;  // slot retires; surviving slots drain the queue
      }
      const double exponent =
          static_cast<double>(std::min<std::size_t>(consecutive_failures, 20));
      const double base_ms = std::min(
          farm.backoff_max_ms,
          farm.backoff_base_ms * std::exp2(exponent - 1.0));
      // Thread-private temporary substream; the draw shapes only retry
      // timing, not results, so the backoff path may run on client
      // threads (role-agnostic helper below).
      const double jitter = backoff_jitter(jitter_root, slot, slot_respawns);
      const double delay_ms = base_ms * jitter;
      if (delay_ms >= 1.0) {
        {
          std::lock_guard<std::mutex> lock(mu);
          local_stats.backoff_waits += 1;
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
      try {
        proc = util::Subprocess::spawn({worker_bin, "--worker"});
      } catch (const util::CheckError&) {
        // This client is done; a requeued cell stays in retry_queue for
        // the surviving workers (the caller degrades if none survive).
        break;
      }
      ++slot_respawns;
      {
        std::lock_guard<std::mutex> lock(mu);
        local_stats.respawns += 1;
      }
    }
    proc.close_stdin();
    proc.wait();
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back(client, w);
  }
  for (std::thread& t : threads) {
    t.join();
  }

  // Never-executed cells after every thread exited mean the pool collapsed
  // (unless the caller aborted) — the caller drains them in-process.
  const bool aborted = callbacks.should_abort && callbacks.should_abort();
  if (!aborted) {
    for (const WorkerOutcome& out : outcomes) {
      if (!out.cell.has_value() && !out.error.has_value()) {
        local_stats.pool_collapsed = true;
        break;
      }
    }
  }
  if (stats != nullptr) {
    stats->merge(local_stats);
  }
  return outcomes;
}

std::string resolve_worker_bin(const std::string& requested) {
  std::vector<std::string> candidates;
  if (!requested.empty()) {
    candidates.push_back(requested);
  } else {
    if (const char* env = std::getenv("MANET_WORKER_BIN");
        env != nullptr && *env != '\0') {
      candidates.push_back(env);
    } else {
      char buf[4096];
      const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
      if (n > 0) {
        std::string self(buf, static_cast<std::size_t>(n));
        const std::size_t slash = self.rfind('/');
        const std::string dir =
            slash == std::string::npos ? "." : self.substr(0, slash);
        candidates.push_back(dir + "/manetsim");
        candidates.push_back(dir + "/../examples/manetsim");
      }
    }
  }
  std::string tried;
  for (const std::string& c : candidates) {
    if (::access(c.c_str(), X_OK) == 0) {
      return c;
    }
    tried += (tried.empty() ? "" : ", ") + c;
  }
  MANET_CHECK(false,
              "no executable worker binary found (tried: "
                  << (tried.empty() ? "nothing" : tried)
                  << "); pass --worker-bin or set $MANET_WORKER_BIN");
  return {};  // unreachable
}

}  // namespace manet::scenario
