#include "scenario/worker.h"

#include <errno.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <mutex>
#include <thread>

#include "scenario/cache.h"
#include "scenario/scenario.h"
#include "util/assert.h"
#include "util/subprocess.h"

namespace manet::scenario {

namespace {

constexpr std::size_t kMaxAttempts = 3;
constexpr std::size_t kMaxFrame = 256u << 20;  // sanity bound, not a limit

bool read_exact(int fd, char* buf, std::size_t n, bool* clean_eof) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0 && errno == EINTR) {
      continue;
    }
    if (r <= 0) {
      if (clean_eof != nullptr) {
        *clean_eof = (r == 0 && got == 0);
      }
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_all(int fd, const char* buf, std::size_t n) {
  std::size_t put = 0;
  while (put < n) {
    const ssize_t w = ::write(fd, buf + put, n - put);
    if (w < 0 && errno == EINTR) {
      continue;
    }
    if (w <= 0) {
      return false;
    }
    put += static_cast<std::size_t>(w);
  }
  return true;
}

void ignore_sigpipe_once() {
  // A worker dying between our write() calls must surface as EPIPE, not
  // kill the whole sweep.
  static std::once_flag flag;
  std::call_once(flag, [] { std::signal(SIGPIPE, SIG_IGN); });
}

/// "ok\n<cell>" / "error\n<what>" -> outcome; nullopt on a malformed
/// response (treated as a transport failure by the farm).
std::optional<WorkerOutcome> parse_response(const std::string& payload) {
  WorkerOutcome out;
  if (payload.rfind("ok\n", 0) == 0) {
    out.cell = payload.substr(3);
    return out;
  }
  if (payload.rfind("error\n", 0) == 0) {
    out.error = payload.substr(6);
    return out;
  }
  return std::nullopt;
}

}  // namespace

bool read_frame(int fd, std::string* payload) {
  unsigned char header[4];
  bool clean_eof = false;
  if (!read_exact(fd, reinterpret_cast<char*>(header), 4, &clean_eof)) {
    MANET_CHECK(clean_eof, "torn frame header (peer died mid-frame)");
    return false;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            (static_cast<std::uint32_t>(header[1]) << 8) |
                            (static_cast<std::uint32_t>(header[2]) << 16) |
                            (static_cast<std::uint32_t>(header[3]) << 24);
  MANET_CHECK(len <= kMaxFrame, "absurd frame length " << len);
  payload->resize(len);
  if (len > 0 && !read_exact(fd, payload->data(), len, nullptr)) {
    MANET_CHECK(false, "torn frame payload (peer died mid-frame)");
  }
  return true;
}

bool write_frame(int fd, std::string_view payload) {
  MANET_CHECK(payload.size() <= kMaxFrame,
              "absurd frame length " << payload.size());
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>(len & 0xff),
      static_cast<unsigned char>((len >> 8) & 0xff),
      static_cast<unsigned char>((len >> 16) & 0xff),
      static_cast<unsigned char>((len >> 24) & 0xff),
  };
  if (!write_all(fd, reinterpret_cast<const char*>(header), 4)) {
    return false;
  }
  return payload.empty() || write_all(fd, payload.data(), payload.size());
}

int serve_worker(int in_fd, int out_fd) {
  ignore_sigpipe_once();
  std::string request;
  for (;;) {
    try {
      if (!read_frame(in_fd, &request)) {
        return 0;  // clean EOF: parent closed our stdin
      }
    } catch (const util::CheckError&) {
      return 1;
    }
    std::string response;
    try {
      MANET_CHECK(request.rfind("run\n", 0) == 0,
                  "bad worker request verb");
      const std::size_t alg_end = request.find('\n', 4);
      MANET_CHECK(alg_end != std::string::npos,
                  "bad worker request framing");
      const std::string algorithm = request.substr(4, alg_end - 4);
      const Scenario scenario =
          decode_canonical_scenario(request.substr(alg_end + 1));
      const RunResult result =
          run_scenario(scenario, factory_by_name(algorithm));
      response = "ok\n" + encode_cell(result);
    } catch (const std::exception& e) {
      response = std::string("error\n") + e.what();
    }
    if (!write_frame(out_fd, response)) {
      return 1;  // parent is gone
    }
  }
}

std::vector<WorkerOutcome> run_jobs_on_workers(
    const std::string& worker_bin, std::size_t workers,
    const std::vector<WorkerRequest>& requests,
    const WorkerCallbacks& callbacks) {
  MANET_CHECK(workers > 0, "need at least one worker");
  ignore_sigpipe_once();

  std::vector<WorkerOutcome> outcomes(requests.size());
  if (requests.empty()) {
    return outcomes;
  }
  workers = std::min(workers, requests.size());

  // Spawned on the calling thread so pipe/fork failures throw before any
  // client thread starts. An exec failure (bad binary path) is only
  // visible later, as the child exiting 127 — the retry budget turns that
  // into a per-cell error rather than a hang.
  std::vector<util::Subprocess> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.push_back(
        util::Subprocess::spawn({worker_bin, "--worker"}));
  }

  std::atomic<std::size_t> next{0};
  std::mutex mu;  // guards retry_queue + attempts
  std::vector<std::size_t> retry_queue;
  std::vector<std::size_t> attempts(requests.size(), 0);

  auto fetch = [&]() -> std::optional<std::size_t> {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (!retry_queue.empty()) {
        const std::size_t i = retry_queue.back();
        retry_queue.pop_back();
        return i;
      }
    }
    const std::size_t i = next.fetch_add(1);
    if (i < requests.size()) {
      return i;
    }
    return std::nullopt;
  };

  auto client = [&](std::size_t slot) {
    util::Subprocess& proc = pool[slot];
    for (;;) {
      if (callbacks.should_abort && callbacks.should_abort()) {
        break;
      }
      const auto job = fetch();
      if (!job.has_value()) {
        break;
      }
      const std::size_t i = *job;
      {
        std::lock_guard<std::mutex> lock(mu);
        ++attempts[i];
      }
      if (callbacks.on_dispatch) {
        callbacks.on_dispatch(i);
      }
      const std::string request =
          "run\n" + requests[i].algorithm + "\n" + requests[i].scenario_text;
      std::string payload;
      bool transport_ok = write_frame(proc.stdin_fd(), request);
      if (transport_ok) {
        try {
          transport_ok = read_frame(proc.stdout_fd(), &payload);
        } catch (const util::CheckError&) {
          transport_ok = false;
        }
      }
      std::optional<WorkerOutcome> parsed;
      if (transport_ok) {
        parsed = parse_response(payload);
      }
      if (parsed.has_value()) {
        outcomes[i] = std::move(*parsed);
        if (callbacks.on_response) {
          callbacks.on_response(i, outcomes[i]);
        }
        continue;
      }
      // The worker died mid-cell (crash, kill, exec failure) or spoke
      // garbage: replace it and retry the cell within budget.
      const int code = (proc.kill_hard(), proc.wait());
      bool give_up = false;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (attempts[i] >= kMaxAttempts) {
          give_up = true;
        } else {
          retry_queue.push_back(i);
        }
      }
      if (give_up) {
        outcomes[i].error = "worker process failed (exit status " +
                            std::to_string(code) + ") after " +
                            std::to_string(kMaxAttempts) +
                            " attempts on this cell";
        if (callbacks.on_response) {
          callbacks.on_response(i, outcomes[i]);
        }
      }
      try {
        proc = util::Subprocess::spawn({worker_bin, "--worker"});
      } catch (const util::CheckError&) {
        // This client is done; a requeued cell stays in retry_queue for
        // the surviving workers (the caller flags it if none survive).
        break;
      }
    }
    proc.close_stdin();
    proc.wait();
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back(client, w);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  return outcomes;
}

std::string resolve_worker_bin(const std::string& requested) {
  std::vector<std::string> candidates;
  if (!requested.empty()) {
    candidates.push_back(requested);
  } else {
    if (const char* env = std::getenv("MANET_WORKER_BIN");
        env != nullptr && *env != '\0') {
      candidates.push_back(env);
    } else {
      char buf[4096];
      const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
      if (n > 0) {
        std::string self(buf, static_cast<std::size_t>(n));
        const std::size_t slash = self.rfind('/');
        const std::string dir =
            slash == std::string::npos ? "." : self.substr(0, slash);
        candidates.push_back(dir + "/manetsim");
        candidates.push_back(dir + "/../examples/manetsim");
      }
    }
  }
  std::string tried;
  for (const std::string& c : candidates) {
    if (::access(c.c_str(), X_OK) == 0) {
      return c;
    }
    tried += (tried.empty() ? "" : ", ") + c;
  }
  MANET_CHECK(false,
              "no executable worker binary found (tried: "
                  << (tried.empty() ? "nothing" : tried)
                  << "); pass --worker-bin or set $MANET_WORKER_BIN");
  return {};  // unreachable
}

}  // namespace manet::scenario
