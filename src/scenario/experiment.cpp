#include "scenario/experiment.h"

#include "util/assert.h"

namespace manet::scenario {

std::vector<RunResult> run_replications(Scenario scenario,
                                        const OptionsFactory& factory,
                                        int replications) {
  MANET_CHECK(replications > 0, "replications=" << replications);
  std::vector<RunResult> runs;
  runs.reserve(static_cast<std::size_t>(replications));
  const std::uint64_t base_seed = scenario.seed;
  for (int k = 0; k < replications; ++k) {
    scenario.seed = base_seed + static_cast<std::uint64_t>(k);
    runs.push_back(run_scenario(scenario, factory));
  }
  return runs;
}

util::MeanCI aggregate(const std::vector<RunResult>& runs,
                       const FieldFn& field) {
  std::vector<double> values;
  values.reserve(runs.size());
  for (const auto& r : runs) {
    values.push_back(field(r));
  }
  return util::mean_ci95(values);
}

double field_ch_changes(const RunResult& r) {
  return static_cast<double>(r.ch_changes);
}
double field_avg_clusters(const RunResult& r) { return r.avg_clusters; }
double field_reaffiliations(const RunResult& r) {
  return static_cast<double>(r.reaffiliations);
}
double field_head_lifetime(const RunResult& r) {
  return r.mean_head_lifetime;
}
double field_mean_degree(const RunResult& r) { return r.mean_degree; }

std::vector<AlgorithmSpec> paper_algorithms() {
  return {
      {"lowest_id", factory_by_name("lowest_id")},
      {"mobic", factory_by_name("mobic")},
  };
}

std::vector<SweepPoint> sweep(
    const Scenario& base, const std::vector<double>& xs,
    const std::function<void(Scenario&, double)>& configure,
    const std::vector<AlgorithmSpec>& algorithms, const FieldFn& field,
    int replications) {
  MANET_CHECK(!xs.empty(), "empty sweep");
  MANET_CHECK(!algorithms.empty(), "no algorithms");
  std::vector<SweepPoint> series;
  series.reserve(xs.size());
  for (const double x : xs) {
    SweepPoint point;
    point.x = x;
    Scenario s = base;
    configure(s, x);
    for (const auto& alg : algorithms) {
      const auto runs = run_replications(s, alg.factory, replications);
      point.values[alg.name] = aggregate(runs, field);
      auto& raw = point.raw[alg.name];
      raw.reserve(runs.size());
      for (const auto& r : runs) {
        raw.push_back(field(r));
      }
    }
    series.push_back(std::move(point));
  }
  return series;
}

std::vector<MultiSweepPoint> sweep_fields(
    const Scenario& base, const std::vector<double>& xs,
    const std::function<void(Scenario&, double)>& configure,
    const std::vector<AlgorithmSpec>& algorithms,
    const std::vector<std::pair<std::string, FieldFn>>& fields,
    int replications) {
  MANET_CHECK(!xs.empty(), "empty sweep");
  MANET_CHECK(!algorithms.empty(), "no algorithms");
  MANET_CHECK(!fields.empty(), "no fields");
  std::vector<MultiSweepPoint> series;
  series.reserve(xs.size());
  for (const double x : xs) {
    MultiSweepPoint point;
    point.x = x;
    Scenario s = base;
    configure(s, x);
    for (const auto& alg : algorithms) {
      const auto runs = run_replications(s, alg.factory, replications);
      for (const auto& [name, field] : fields) {
        point.values[alg.name][name] = aggregate(runs, field);
      }
    }
    series.push_back(std::move(point));
  }
  return series;
}

}  // namespace manet::scenario
