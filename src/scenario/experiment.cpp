#include "scenario/experiment.h"

namespace manet::scenario {

util::MeanCI aggregate(const std::vector<RunResult>& runs,
                       const FieldFn& field) {
  std::vector<double> values;
  values.reserve(runs.size());
  for (const auto& r : runs) {
    values.push_back(field(r));
  }
  return util::mean_ci95(values);
}

double field_ch_changes(const RunResult& r) {
  return static_cast<double>(r.ch_changes);
}
double field_avg_clusters(const RunResult& r) { return r.avg_clusters; }
double field_reaffiliations(const RunResult& r) {
  return static_cast<double>(r.reaffiliations);
}
double field_head_lifetime(const RunResult& r) {
  return r.mean_head_lifetime;
}
double field_mean_degree(const RunResult& r) { return r.mean_degree; }
double field_beacons_sent(const RunResult& r) {
  return static_cast<double>(r.beacons_sent);
}
double field_bytes_sent(const RunResult& r) {
  return static_cast<double>(r.bytes_sent);
}
double field_mean_recovery(const RunResult& r) { return r.mean_recovery_s; }
double field_max_recovery(const RunResult& r) { return r.max_recovery_s; }
double field_orphaned_member_seconds(const RunResult& r) {
  return r.orphaned_member_seconds;
}
double field_unrecovered(const RunResult& r) {
  return static_cast<double>(r.unrecovered_disruptions);
}
double field_violation_fraction(const RunResult& r) {
  return r.convergence_samples == 0
             ? 0.0
             : static_cast<double>(r.violation_samples) /
                   static_cast<double>(r.convergence_samples);
}
double field_battery_deaths(const RunResult& r) {
  return static_cast<double>(r.battery_deaths);
}
double field_energy_drained(const RunResult& r) {
  return r.energy_drained_j;
}
double field_head_tenure_fairness(const RunResult& r) {
  return r.head_tenure_fairness;
}

std::vector<AlgorithmSpec> paper_algorithms() {
  return {
      {"lowest_id", factory_by_name("lowest_id")},
      {"mobic", factory_by_name("mobic")},
  };
}

}  // namespace manet::scenario
