// Timeline recording: captures the full clustering dynamics of a run for
// post-hoc analysis and visualization — the ns-2 nam-trace equivalent.
//
//   * every role-change and affiliation-change event (from the agent sink);
//   * periodic whole-network snapshots: position, role, clusterhead,
//     gateway flag and metric value per node.
//
// Both streams export as CSV (plotable with any tool); the snapshots also
// answer questions like "who was the clusterhead of node 7 at t = 312?"
// without re-running the simulation.
#pragma once

#include <iosfwd>
#include <vector>

#include "cluster/events.h"
#include "scenario/scenario.h"

namespace manet::scenario {

class TimelineRecorder final : public cluster::ClusterEventSink {
 public:
  struct RoleEvent {
    sim::Time t = 0.0;
    net::NodeId node = net::kInvalidNode;
    cluster::Role old_role = cluster::Role::kUndecided;
    cluster::Role new_role = cluster::Role::kUndecided;
  };
  struct AffiliationEvent {
    sim::Time t = 0.0;
    net::NodeId node = net::kInvalidNode;
    net::NodeId old_head = net::kInvalidNode;
    net::NodeId new_head = net::kInvalidNode;
  };
  struct SnapshotRow {
    sim::Time t = 0.0;
    net::NodeId node = net::kInvalidNode;
    geom::Vec2 pos;
    cluster::Role role = cluster::Role::kUndecided;
    net::NodeId head = net::kInvalidNode;
    bool gateway = false;
    double metric = 0.0;
  };

  // ClusterEventSink:
  void on_role_change(sim::Time t, net::NodeId node, cluster::Role old_role,
                      cluster::Role new_role) override;
  void on_affiliation_change(sim::Time t, net::NodeId node,
                             net::NodeId old_head,
                             net::NodeId new_head) override;

  /// Schedules snapshots every `period` seconds over [0, until] on the live
  /// simulation (call from a run_scenario on_start hook).
  void schedule_snapshots(LiveContext& ctx, double period, double until);

  /// Takes one snapshot immediately.
  void snapshot(LiveContext& ctx);

  const std::vector<RoleEvent>& role_events() const { return role_events_; }
  const std::vector<AffiliationEvent>& affiliation_events() const {
    return affiliation_events_;
  }
  const std::vector<SnapshotRow>& snapshots() const { return snapshots_; }

  /// Cluster membership of each node at the last snapshot <= t;
  /// kInvalidNode if never snapshotted or node unaffiliated.
  net::NodeId head_at(sim::Time t, net::NodeId node) const;

  void write_events_csv(std::ostream& os) const;
  void write_snapshots_csv(std::ostream& os) const;

 private:
  std::vector<RoleEvent> role_events_;
  std::vector<AffiliationEvent> affiliation_events_;
  std::vector<SnapshotRow> snapshots_;
  std::size_t nodes_per_snapshot_ = 0;
};

}  // namespace manet::scenario
