// Scenario (de)serialization as simple `key = value` config files — the
// ns-2 Tcl-script equivalent for this simulator: lets an experiment be
// described in a file, versioned, and rerun bit-identically.
//
//   # figure3 point
//   n_nodes = 50
//   field = 670x670
//   mobility = random_waypoint
//   max_speed = 20
//   tx_range = 250
//   sim_time = 900
//   seed = 1
//
// Unknown keys are an error (catches typos); omitted keys keep the Table-1
// defaults.
#pragma once

#include <iosfwd>
#include <string>

#include "scenario/scenario.h"

namespace manet::scenario {

/// Parses a config stream into a Scenario. Throws CheckError with the line
/// number on malformed input or unknown keys.
Scenario read_config(std::istream& is);

/// Convenience: parse from a file path.
Scenario read_config_file(const std::string& path);

/// Writes every setting (including defaults) in read_config() syntax.
void write_config(std::ostream& os, const Scenario& s);

}  // namespace manet::scenario
