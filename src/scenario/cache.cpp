#include "scenario/cache.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/trace.h"
#include "util/assert.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/strings.h"

// The build-stamped code-version salt; the CMake cache variable
// MANET_CACHE_EPOCH feeds this definition.
#ifndef MANET_CACHE_EPOCH
#define MANET_CACHE_EPOCH "dev"
#endif

namespace manet::scenario {

namespace {

// --- primitive renderings ---------------------------------------------------
// Doubles travel as their IEEE-754 bit pattern in hex: exact round-trip,
// byte-stable across platforms and locales (hexfloat %a is neither).

std::string dbits(double d) {
  return util::hex64(std::bit_cast<std::uint64_t>(d));
}

double parse_dbits(std::string_view v) {
  MANET_CHECK(v.size() == 16, "bad double field '" << v << "'");
  std::uint64_t bits = 0;
  for (const char c : v) {
    bits <<= 4;
    if (c >= '0' && c <= '9') {
      bits |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      bits |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      MANET_CHECK(false, "bad double field '" << v << "'");
    }
  }
  return std::bit_cast<double>(bits);
}

std::uint64_t parse_u64(std::string_view v) {
  const std::string s(v);
  char* end = nullptr;
  const unsigned long long x = std::strtoull(s.c_str(), &end, 10);
  MANET_CHECK(end == s.c_str() + s.size() && !s.empty(),
              "bad integer field '" << s << "'");
  return static_cast<std::uint64_t>(x);
}

long parse_long(std::string_view v) {
  const std::string s(v);
  char* end = nullptr;
  const long x = std::strtol(s.c_str(), &end, 10);
  MANET_CHECK(end == s.c_str() + s.size() && !s.empty(),
              "bad integer field '" << s << "'");
  return x;
}

// --- line-record scaffolding ------------------------------------------------
// Both the canonical scenario text and the cell record are strict "key =
// value" lines in a fixed order; any deviation is a parse error (and thus,
// for cells, corruption).

void put(std::ostream& os, std::string_view key, std::string_view value) {
  os << key << " = " << value << '\n';
}

void put_u(std::ostream& os, std::string_view key, std::uint64_t v) {
  os << key << " = " << v << '\n';
}

void put_d(std::ostream& os, std::string_view key, double v) {
  os << key << " = " << dbits(v) << '\n';
}

class LineReader {
 public:
  explicit LineReader(const std::string& text) : in_(text) {}

  /// Next "key = value" line; throws unless the key matches.
  std::string expect(std::string_view key) {
    auto value = next(key);
    MANET_CHECK(value.has_value(),
                "record truncated before key '" << key << "'");
    return *value;
  }

  /// Like expect(), but returns nullopt (and consumes nothing) when the
  /// next line carries a different key or the record ended.
  std::optional<std::string> take(std::string_view key) {
    if (!peeked_) {
      if (!std::getline(in_, line_)) {
        ended_ = true;
      }
      peeked_ = true;
    }
    if (ended_) {
      return std::nullopt;
    }
    const auto sep = line_.find(" = ");
    if (sep == std::string::npos || line_.substr(0, sep) != key) {
      return std::nullopt;
    }
    peeked_ = false;
    return line_.substr(sep + 3);
  }

  double expect_d(std::string_view key) { return parse_dbits(expect(key)); }
  std::uint64_t expect_u(std::string_view key) {
    return parse_u64(expect(key));
  }

 private:
  std::optional<std::string> next(std::string_view key) {
    auto v = take(key);
    if (!v.has_value() && !ended_) {
      MANET_CHECK(false, "expected key '" << key << "', got line '"
                                          << line_ << "'");
    }
    return v;
  }

  std::istringstream in_;
  std::string line_;
  bool peeked_ = false;
  bool ended_ = false;
};

// --- fault events -----------------------------------------------------------

std::string encode_fault_event(const fault::FaultEvent& e) {
  std::ostringstream os;
  os << static_cast<int>(e.kind) << ' ' << dbits(e.at) << ' '
     << dbits(e.until) << ' ' << e.node << ' ' << e.peer << ' '
     << dbits(e.probability) << ' ' << dbits(e.center.x) << ' '
     << dbits(e.center.y) << ' ' << dbits(e.radius) << ' '
     << (e.vertical ? 1 : 0) << ' ' << dbits(e.boundary);
  return os.str();
}

fault::FaultEvent decode_fault_event(const std::string& value) {
  const auto f = util::split(value, ' ');
  MANET_CHECK(f.size() == 11, "bad fault event '" << value << "'");
  const long kind = parse_long(f[0]);
  MANET_CHECK(
      kind >= 0 &&
          kind <= static_cast<long>(fault::FaultKind::kBatteryDepleted),
      "bad fault kind " << kind);
  fault::FaultEvent e;
  e.kind = static_cast<fault::FaultKind>(kind);
  e.at = parse_dbits(f[1]);
  e.until = parse_dbits(f[2]);
  e.node = static_cast<net::NodeId>(parse_u64(f[3]));
  e.peer = static_cast<net::NodeId>(parse_u64(f[4]));
  e.probability = parse_dbits(f[5]);
  e.center = {parse_dbits(f[6]), parse_dbits(f[7])};
  e.radius = parse_dbits(f[8]);
  e.vertical = parse_u64(f[9]) != 0;
  e.boundary = parse_dbits(f[10]);
  return e;
}

std::string sanitize_for_filename(std::string_view s) {
  std::string out;
  out.reserve(std::min<std::size_t>(s.size(), 32));
  for (const char c : s.substr(0, 32)) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? "run" : out;
}

}  // namespace

std::string cache_epoch() {
  if (const char* env = std::getenv("MANET_CACHE_EPOCH")) {
    if (*env != '\0') {
      return env;
    }
  }
  return MANET_CACHE_EPOCH;
}

std::string canonical_scenario_text(const Scenario& s) {
  std::ostringstream os;
  os << "manet-scenario/1\n";
  put_u(os, "n_nodes", s.n_nodes);
  put_u(os, "seed", s.seed);
  put_d(os, "tx_range", s.tx_range);
  put_d(os, "sim_time", s.sim_time);
  put_d(os, "warmup", s.warmup);
  put_d(os, "sample_period", s.sample_period);
  put(os, "propagation", s.propagation);
  put_d(os, "pathloss_exponent", s.pathloss_exponent);
  put_d(os, "shadowing_sigma_db", s.shadowing_sigma_db);
  put(os, "mobility", mobility::model_kind_name(s.fleet.kind));
  put(os, "field", dbits(s.fleet.field.width) + " " +
                       dbits(s.fleet.field.height));
  put_d(os, "max_speed", s.fleet.max_speed);
  put_d(os, "min_speed", s.fleet.min_speed);
  put_d(os, "pause_time", s.fleet.pause_time);
  put_d(os, "walk_epoch", s.fleet.walk_epoch);
  put_d(os, "gm_alpha", s.fleet.gm_alpha);
  put_d(os, "gm_sigma", s.fleet.gm_sigma);
  put_u(os, "rpgm_group_size", s.fleet.rpgm_group_size);
  put_d(os, "rpgm_offset_radius", s.fleet.rpgm_offset_radius);
  put_d(os, "rpgm_offset_speed", s.fleet.rpgm_offset_speed);
  {
    const mobility::HighwayParams& h = s.fleet.highway;
    std::ostringstream v;
    v << dbits(h.length) << ' ' << dbits(h.lane_width) << ' '
      << h.lanes_per_direction << ' ' << dbits(h.mean_speed) << ' '
      << dbits(h.speed_stddev) << ' ' << dbits(h.jitter_sigma) << ' '
      << dbits(h.jitter_alpha) << ' ' << dbits(h.update_step);
    put(os, "highway", v.str());
  }
  {
    const mobility::ManhattanParams& m = s.fleet.manhattan;
    std::ostringstream v;
    v << dbits(m.field.width) << ' ' << dbits(m.field.height) << ' '
      << dbits(m.block_size) << ' ' << dbits(m.min_speed) << ' '
      << dbits(m.max_speed) << ' ' << dbits(m.turn_probability) << ' '
      << dbits(m.speed_epoch);
    put(os, "manhattan", v.str());
  }
  {
    const net::NetworkParams& n = s.net;
    std::ostringstream v;
    v << dbits(n.broadcast_interval) << ' ' << dbits(n.neighbor_timeout)
      << ' ' << dbits(n.per_beacon_jitter) << ' ' << dbits(n.packet_loss)
      << ' ' << dbits(n.collision_window) << ' ' << dbits(n.delivery_delay)
      << ' ' << dbits(n.speed_bound) << ' ' << dbits(n.grid_refresh);
    put(os, "net", v.str());
  }
  // The energy line exists only when the battery model is on: a disabled
  // model is physically identical to a pre-energy build, so its key (and
  // the golden cache-key pin) must not move.
  if (s.energy.enabled) {
    const net::EnergyParams& e = s.energy;
    std::ostringstream v;
    v << dbits(e.capacity_j) << ' ' << dbits(e.capacity_jitter) << ' '
      << dbits(e.idle_drain_w) << ' ' << dbits(e.hello_tx_cost_j) << ' '
      << dbits(e.hello_rx_cost_j) << ' ' << dbits(e.msg_tx_cost_j) << ' '
      << dbits(e.msg_rx_cost_j);
    put(os, "energy", v.str());
  }
  {
    const fault::ScheduleSpec& f = s.faults;
    std::ostringstream v;
    v << dbits(f.begin) << ' ' << dbits(f.end) << ' '
      << dbits(f.crash_rate) << ' ' << dbits(f.mean_downtime) << ' '
      << dbits(f.churn_rate) << ' ' << dbits(f.mean_absence) << ' '
      << dbits(f.loss_burst_rate) << ' ' << dbits(f.loss_burst_duration)
      << ' ' << dbits(f.loss_burst_probability) << ' ' << dbits(f.jam_rate)
      << ' ' << dbits(f.jam_duration) << ' ' << dbits(f.jam_radius) << ' '
      << dbits(f.jam_probability) << ' ' << f.partitions << ' '
      << dbits(f.partition_duration);
    put(os, "faults", v.str());
  }
  put_u(os, "fault_extra_count", s.faults.extra.size());
  for (const fault::FaultEvent& e : s.faults.extra) {
    put(os, "fault_extra", encode_fault_event(e));
  }
  put_u(os, "obs_metrics", s.obs.metrics ? 1 : 0);
  put(os, "obs_trace", obs::trace_level_name(s.obs.trace));
  put_d(os, "obs_counter_sample_period", s.obs.counter_sample_period);
  if (!s.obs.trace_path.empty()) {
    put(os, "obs_trace_path", s.obs.trace_path);
  }
  if (!s.obs.tag.empty()) {
    put(os, "obs_tag", s.obs.tag);
  }
  // Scenario::sim_jobs is deliberately NOT encoded: the sharded scan
  // pipeline is bit-identical to the serial run for every worker count, so
  // a cell computed at any --sim-jobs must hit for all of them (and the
  // golden cache-key pin in test_result_cache stays valid).
  return os.str();
}

Scenario decode_canonical_scenario(const std::string& text) {
  const std::string header = "manet-scenario/1\n";
  MANET_CHECK(text.rfind(header, 0) == 0,
              "not a canonical scenario record");
  LineReader body(text.substr(header.size()));
  Scenario s;
  s.n_nodes = static_cast<std::size_t>(body.expect_u("n_nodes"));
  s.seed = body.expect_u("seed");
  s.tx_range = body.expect_d("tx_range");
  s.sim_time = body.expect_d("sim_time");
  s.warmup = body.expect_d("warmup");
  s.sample_period = body.expect_d("sample_period");
  s.propagation = body.expect("propagation");
  s.pathloss_exponent = body.expect_d("pathloss_exponent");
  s.shadowing_sigma_db = body.expect_d("shadowing_sigma_db");
  s.fleet.kind = mobility::parse_model_kind(body.expect("mobility"));
  {
    const auto f = util::split(body.expect("field"), ' ');
    MANET_CHECK(f.size() == 2, "bad field line");
    s.fleet.field = geom::Rect(parse_dbits(f[0]), parse_dbits(f[1]));
  }
  s.fleet.max_speed = body.expect_d("max_speed");
  s.fleet.min_speed = body.expect_d("min_speed");
  s.fleet.pause_time = body.expect_d("pause_time");
  s.fleet.walk_epoch = body.expect_d("walk_epoch");
  s.fleet.gm_alpha = body.expect_d("gm_alpha");
  s.fleet.gm_sigma = body.expect_d("gm_sigma");
  s.fleet.rpgm_group_size =
      static_cast<std::size_t>(body.expect_u("rpgm_group_size"));
  s.fleet.rpgm_offset_radius = body.expect_d("rpgm_offset_radius");
  s.fleet.rpgm_offset_speed = body.expect_d("rpgm_offset_speed");
  {
    const auto f = util::split(body.expect("highway"), ' ');
    MANET_CHECK(f.size() == 8, "bad highway line");
    mobility::HighwayParams& h = s.fleet.highway;
    h.length = parse_dbits(f[0]);
    h.lane_width = parse_dbits(f[1]);
    h.lanes_per_direction = static_cast<int>(parse_long(f[2]));
    h.mean_speed = parse_dbits(f[3]);
    h.speed_stddev = parse_dbits(f[4]);
    h.jitter_sigma = parse_dbits(f[5]);
    h.jitter_alpha = parse_dbits(f[6]);
    h.update_step = parse_dbits(f[7]);
  }
  {
    const auto f = util::split(body.expect("manhattan"), ' ');
    MANET_CHECK(f.size() == 7, "bad manhattan line");
    mobility::ManhattanParams& m = s.fleet.manhattan;
    m.field = geom::Rect(parse_dbits(f[0]), parse_dbits(f[1]));
    m.block_size = parse_dbits(f[2]);
    m.min_speed = parse_dbits(f[3]);
    m.max_speed = parse_dbits(f[4]);
    m.turn_probability = parse_dbits(f[5]);
    m.speed_epoch = parse_dbits(f[6]);
  }
  {
    const auto f = util::split(body.expect("net"), ' ');
    MANET_CHECK(f.size() == 8, "bad net line");
    net::NetworkParams& n = s.net;
    n.broadcast_interval = parse_dbits(f[0]);
    n.neighbor_timeout = parse_dbits(f[1]);
    n.per_beacon_jitter = parse_dbits(f[2]);
    n.packet_loss = parse_dbits(f[3]);
    n.collision_window = parse_dbits(f[4]);
    n.delivery_delay = parse_dbits(f[5]);
    n.speed_bound = parse_dbits(f[6]);
    n.grid_refresh = parse_dbits(f[7]);
  }
  if (auto v = body.take("energy")) {
    const auto f = util::split(*v, ' ');
    MANET_CHECK(f.size() == 7, "bad energy line");
    net::EnergyParams& e = s.energy;
    e.enabled = true;
    e.capacity_j = parse_dbits(f[0]);
    e.capacity_jitter = parse_dbits(f[1]);
    e.idle_drain_w = parse_dbits(f[2]);
    e.hello_tx_cost_j = parse_dbits(f[3]);
    e.hello_rx_cost_j = parse_dbits(f[4]);
    e.msg_tx_cost_j = parse_dbits(f[5]);
    e.msg_rx_cost_j = parse_dbits(f[6]);
  }
  {
    const auto f = util::split(body.expect("faults"), ' ');
    MANET_CHECK(f.size() == 15, "bad faults line");
    fault::ScheduleSpec& fs = s.faults;
    fs.begin = parse_dbits(f[0]);
    fs.end = parse_dbits(f[1]);
    fs.crash_rate = parse_dbits(f[2]);
    fs.mean_downtime = parse_dbits(f[3]);
    fs.churn_rate = parse_dbits(f[4]);
    fs.mean_absence = parse_dbits(f[5]);
    fs.loss_burst_rate = parse_dbits(f[6]);
    fs.loss_burst_duration = parse_dbits(f[7]);
    fs.loss_burst_probability = parse_dbits(f[8]);
    fs.jam_rate = parse_dbits(f[9]);
    fs.jam_duration = parse_dbits(f[10]);
    fs.jam_radius = parse_dbits(f[11]);
    fs.jam_probability = parse_dbits(f[12]);
    fs.partitions = static_cast<int>(parse_long(f[13]));
    fs.partition_duration = parse_dbits(f[14]);
  }
  const std::uint64_t extras = body.expect_u("fault_extra_count");
  s.faults.extra.reserve(extras);
  for (std::uint64_t i = 0; i < extras; ++i) {
    s.faults.extra.push_back(decode_fault_event(body.expect("fault_extra")));
  }
  s.obs.metrics = body.expect_u("obs_metrics") != 0;
  s.obs.trace = obs::parse_trace_level(body.expect("obs_trace"));
  s.obs.counter_sample_period = body.expect_d("obs_counter_sample_period");
  if (auto v = body.take("obs_trace_path")) {
    s.obs.trace_path = *v;
  }
  if (auto v = body.take("obs_tag")) {
    s.obs.tag = *v;
  }
  return s;
}

std::string cache_key(const Scenario& s, const std::string& algorithm) {
  // Identity excludes presentation-only fields: where a trace is written
  // (and under which tag) never changes the result bytes. The effective
  // trace *level* stays in — kFull schedules sampler events, which moves
  // events_executed.
  Scenario keyed = s;
  if (keyed.obs.trace == obs::TraceLevel::kOff &&
      !keyed.obs.trace_path.empty()) {
    keyed.obs.trace = obs::TraceLevel::kSpans;  // run_scenario's promotion
  }
  keyed.obs.trace_path.clear();
  keyed.obs.tag.clear();
  util::Fnv64 h;
  h.update("manet-cache-key/1\n");
  h.update("epoch = " + cache_epoch() + "\n");
  h.update("algorithm = " + algorithm + "\n");
  h.update(canonical_scenario_text(keyed));
  return util::hex64(h.digest());
}

std::string cache_cell_filename(const Scenario& s,
                                const std::string& algorithm) {
  return sanitize_for_filename(algorithm) + "-s" + std::to_string(s.seed) +
         "-" + cache_key(s, algorithm) + ".cell";
}

std::string encode_cell(const RunResult& r) {
  std::ostringstream os;
  os << "manet-cell/1\n";
  put_u(os, "ch_changes", r.ch_changes);
  put_u(os, "head_gains", r.head_gains);
  put_u(os, "head_losses", r.head_losses);
  put_u(os, "reaffiliations", r.reaffiliations);
  put_d(os, "mean_head_lifetime", r.mean_head_lifetime);
  put_d(os, "avg_clusters", r.avg_clusters);
  put_d(os, "avg_gateways", r.avg_gateways);
  put_d(os, "avg_undecided", r.avg_undecided);
  put_d(os, "avg_cluster_size", r.avg_cluster_size);
  put_d(os, "mean_degree", r.mean_degree);
  put_u(os, "beacons_sent", r.beacons_sent);
  put_u(os, "hellos_delivered", r.hellos_delivered);
  put_u(os, "bytes_sent", r.bytes_sent);
  put_u(os, "events_executed", r.events_executed);
  {
    const cluster::ValidationReport& v = r.final_validation;
    std::ostringstream vv;
    vv << v.undecided << ' ' << v.head_pairs_in_range << ' '
       << v.members_beyond_head_range << ' ' << v.members_of_non_head << ' '
       << v.connected_nodes << ' ' << v.dead_nodes;
    put(os, "validation", vv.str());
  }
  put_u(os, "faults_injected", r.faults_injected);
  put_u(os, "recoveries", r.recoveries);
  put_d(os, "mean_recovery_s", r.mean_recovery_s);
  put_d(os, "max_recovery_s", r.max_recovery_s);
  put_u(os, "unrecovered_disruptions", r.unrecovered_disruptions);
  put_d(os, "orphaned_member_seconds", r.orphaned_member_seconds);
  put_u(os, "convergence_samples", r.convergence_samples);
  put_u(os, "violation_samples", r.violation_samples);
  put_u(os, "final_heads", r.final_heads);
  put_d(os, "energy_initial_j", r.energy_initial_j);
  put_d(os, "energy_residual_j", r.energy_residual_j);
  put_d(os, "energy_drained_j", r.energy_drained_j);
  put_u(os, "battery_deaths", r.battery_deaths);
  put_d(os, "head_tenure_fairness", r.head_tenure_fairness);
  put_u(os, "fault_count", r.fault_timeline.size());
  for (const fault::FaultEvent& e : r.fault_timeline) {
    put(os, "fault", encode_fault_event(e));
  }
  put_u(os, "counter_count", r.metrics.counters.size());
  for (const auto& c : r.metrics.counters) {
    MANET_CHECK(c.name.find_first_of(" \n") == std::string::npos,
                "counter name '" << c.name << "' not cell-serializable");
    put(os, "counter", c.name + " " + std::to_string(c.value));
  }
  put_u(os, "histogram_count", r.metrics.histograms.size());
  for (const auto& hg : r.metrics.histograms) {
    MANET_CHECK(hg.name.find_first_of(" \n") == std::string::npos,
                "histogram name '" << hg.name << "' not cell-serializable");
    MANET_CHECK(hg.counts.size() == hg.bounds.size() + 1,
                "histogram '" << hg.name << "' bucket shape");
    std::ostringstream v;
    v << hg.name << ' ' << hg.bounds.size();
    for (const double b : hg.bounds) {
      v << ' ' << dbits(b);
    }
    for (const std::uint64_t c : hg.counts) {
      v << ' ' << c;
    }
    v << ' ' << dbits(hg.sum);
    put(os, "histogram", v.str());
  }
  const std::string body = os.str();
  return body + "digest = " + util::hex64(util::Fnv64::hash(body)) + "\n";
}

RunResult decode_cell(const std::string& text) {
  // Integrity first: the trailing digest covers every byte above it.
  const std::string marker = "digest = ";
  const std::size_t pos = text.rfind(marker);
  MANET_CHECK(pos != std::string::npos && pos > 0 && text[pos - 1] == '\n',
              "cell record has no digest line");
  const std::string body = text.substr(0, pos);
  std::string stated = text.substr(pos + marker.size());
  if (!stated.empty() && stated.back() == '\n') {
    stated.pop_back();
  }
  MANET_CHECK(stated == util::hex64(util::Fnv64::hash(body)),
              "cell digest mismatch (truncated or edited cell)");
  MANET_CHECK(body.rfind("manet-cell/1\n", 0) == 0,
              "not a cell record");

  LineReader r(body.substr(std::string("manet-cell/1\n").size()));
  RunResult res;
  res.ch_changes = r.expect_u("ch_changes");
  res.head_gains = r.expect_u("head_gains");
  res.head_losses = r.expect_u("head_losses");
  res.reaffiliations = r.expect_u("reaffiliations");
  res.mean_head_lifetime = r.expect_d("mean_head_lifetime");
  res.avg_clusters = r.expect_d("avg_clusters");
  res.avg_gateways = r.expect_d("avg_gateways");
  res.avg_undecided = r.expect_d("avg_undecided");
  res.avg_cluster_size = r.expect_d("avg_cluster_size");
  res.mean_degree = r.expect_d("mean_degree");
  res.beacons_sent = r.expect_u("beacons_sent");
  res.hellos_delivered = r.expect_u("hellos_delivered");
  res.bytes_sent = r.expect_u("bytes_sent");
  res.events_executed = r.expect_u("events_executed");
  {
    const auto f = util::split(r.expect("validation"), ' ');
    MANET_CHECK(f.size() == 6, "bad validation line");
    cluster::ValidationReport& v = res.final_validation;
    v.undecided = static_cast<std::size_t>(parse_u64(f[0]));
    v.head_pairs_in_range = static_cast<std::size_t>(parse_u64(f[1]));
    v.members_beyond_head_range = static_cast<std::size_t>(parse_u64(f[2]));
    v.members_of_non_head = static_cast<std::size_t>(parse_u64(f[3]));
    v.connected_nodes = static_cast<std::size_t>(parse_u64(f[4]));
    v.dead_nodes = static_cast<std::size_t>(parse_u64(f[5]));
  }
  res.faults_injected = r.expect_u("faults_injected");
  res.recoveries = r.expect_u("recoveries");
  res.mean_recovery_s = r.expect_d("mean_recovery_s");
  res.max_recovery_s = r.expect_d("max_recovery_s");
  res.unrecovered_disruptions = r.expect_u("unrecovered_disruptions");
  res.orphaned_member_seconds = r.expect_d("orphaned_member_seconds");
  res.convergence_samples = r.expect_u("convergence_samples");
  res.violation_samples = r.expect_u("violation_samples");
  res.final_heads = r.expect_u("final_heads");
  res.energy_initial_j = r.expect_d("energy_initial_j");
  res.energy_residual_j = r.expect_d("energy_residual_j");
  res.energy_drained_j = r.expect_d("energy_drained_j");
  res.battery_deaths = r.expect_u("battery_deaths");
  res.head_tenure_fairness = r.expect_d("head_tenure_fairness");
  const std::uint64_t faults = r.expect_u("fault_count");
  res.fault_timeline.reserve(faults);
  for (std::uint64_t i = 0; i < faults; ++i) {
    res.fault_timeline.push_back(decode_fault_event(r.expect("fault")));
  }
  const std::uint64_t counters = r.expect_u("counter_count");
  res.metrics.counters.reserve(counters);
  for (std::uint64_t i = 0; i < counters; ++i) {
    const std::string v = r.expect("counter");
    const auto sp = v.rfind(' ');
    MANET_CHECK(sp != std::string::npos && sp > 0, "bad counter line");
    obs::Snapshot::CounterCell cell;
    cell.name = v.substr(0, sp);
    cell.value = parse_u64(v.substr(sp + 1));
    res.metrics.counters.push_back(std::move(cell));
  }
  const std::uint64_t histograms = r.expect_u("histogram_count");
  res.metrics.histograms.reserve(histograms);
  for (std::uint64_t i = 0; i < histograms; ++i) {
    const auto f = util::split(r.expect("histogram"), ' ');
    MANET_CHECK(f.size() >= 3, "bad histogram line");
    obs::Snapshot::HistogramCell cell;
    cell.name = f[0];
    const std::uint64_t nb = parse_u64(f[1]);
    MANET_CHECK(f.size() == 2 + nb + (nb + 1) + 1,
                "bad histogram line for '" << cell.name << "'");
    cell.bounds.reserve(nb);
    for (std::uint64_t b = 0; b < nb; ++b) {
      cell.bounds.push_back(parse_dbits(f[2 + b]));
    }
    cell.counts.reserve(nb + 1);
    for (std::uint64_t c = 0; c <= nb; ++c) {
      cell.counts.push_back(parse_u64(f[2 + nb + c]));
    }
    cell.sum = parse_dbits(f.back());
    res.metrics.histograms.push_back(std::move(cell));
  }
  return res;
}

std::string first_cell_difference(const std::string& fresh,
                                  const std::string& cached) {
  std::istringstream fin(fresh);
  std::istringstream cin_(cached);
  std::string fline;
  std::string cline;
  for (std::size_t lineno = 1;; ++lineno) {
    const bool fok = static_cast<bool>(std::getline(fin, fline));
    const bool cok = static_cast<bool>(std::getline(cin_, cline));
    if (!fok && !cok) {
      return {};  // byte-identical (modulo a trailing newline, which both
                  // encoders always emit)
    }
    if (fok && cok && fline == cline) {
      continue;
    }
    // Name the field when the diverging line is a "key = value" line.
    const std::string& named = fok ? fline : cline;
    const std::size_t sep = named.find(" = ");
    std::ostringstream os;
    if (sep != std::string::npos) {
      os << "field '" << named.substr(0, sep) << "' (line " << lineno
         << "): ";
    } else {
      os << "line " << lineno << ": ";
    }
    os << "recomputed "
       << (fok ? "'" + fline + "'" : "<record ended>") << " vs cached "
       << (cok ? "'" + cline + "'" : "<record ended>");
    return os.str();
  }
}

std::string encode_cell_meta(const std::string& algorithm,
                             const std::string& scenario_text) {
  MANET_CHECK(algorithm.find('\n') == std::string::npos,
              "algorithm label not meta-serializable");
  return "manet-cell-meta/1\nalgorithm = " + algorithm + "\n" +
         scenario_text;
}

CellMeta decode_cell_meta(const std::string& text) {
  const std::string header = "manet-cell-meta/1\n";
  MANET_CHECK(text.rfind(header, 0) == 0, "not a cell meta record");
  const std::string marker = "algorithm = ";
  MANET_CHECK(text.compare(header.size(), marker.size(), marker) == 0,
              "cell meta record has no algorithm line");
  const std::size_t alg_begin = header.size() + marker.size();
  const std::size_t alg_end = text.find('\n', alg_begin);
  MANET_CHECK(alg_end != std::string::npos, "truncated cell meta record");
  CellMeta meta;
  meta.algorithm = text.substr(alg_begin, alg_end - alg_begin);
  meta.scenario_text = text.substr(alg_end + 1);
  // Round-trip the scenario now so a torn sidecar fails here, at the
  // decode boundary, not later inside a repair run.
  (void)decode_canonical_scenario(meta.scenario_text);
  return meta;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  MANET_CHECK(!dir_.empty(), "empty cache directory");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  MANET_CHECK(!ec, "cannot create cache directory " << dir_ << ": "
                                                    << ec.message());
}

std::string ResultCache::path_for(const std::string& filename) const {
  return dir_ + "/" + filename;
}

std::optional<RunResult> ResultCache::load(const std::string& filename,
                                           std::string* raw_text) {
  const std::string path = path_for(filename);
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  try {
    RunResult result = decode_cell(text);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.hits;
    }
    if (raw_text != nullptr) {
      *raw_text = std::move(text);
    }
    return result;
  } catch (const util::CheckError& e) {
    // Truncated, edited, or written by an incompatible build without an
    // epoch bump: never reused — recomputed and overwritten.
    MANET_LOG(Warn) << "corrupt cache cell " << path << ": " << e.what()
                    << " (recomputing)";
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.corrupt;
    return std::nullopt;
  }
}

void ResultCache::store(const std::string& filename, const RunResult& result,
                        const std::string& meta_text) {
  const std::string cell = encode_cell(result);
  const auto publish = [&](const std::string& name,
                           const std::string& bytes) {
    std::string tmp;
    {
      std::lock_guard<std::mutex> lock(mu_);
      tmp = dir_ + "/.tmp-" + std::to_string(tmp_seq_++) + "-" + name;
    }
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      MANET_CHECK(out.is_open(), "cannot write cache cell " << tmp);
      out << bytes;
    }
    // rename() within one directory is atomic: readers see the old cell,
    // no cell, or the complete new cell — never a torn write.
    std::error_code ec;
    std::filesystem::rename(tmp, path_for(name), ec);
    MANET_CHECK(!ec, "cannot publish cache cell " << path_for(name) << ": "
                                                  << ec.message());
  };
  publish(filename, cell);
  if (!meta_text.empty()) {
    publish(filename + ".meta", meta_text);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.stores;
}

void ResultCache::note_verified() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.verified;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

namespace {

std::string read_file_or_empty(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in.is_open()) {
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Moves `from` under quarantine_dir, replacing any previous quarantined
/// copy of the same name (a re-scrub must not fail on its own leftovers).
void move_to_quarantine(const std::filesystem::path& from,
                        const std::filesystem::path& quarantine_dir) {
  std::error_code ec;
  std::filesystem::create_directories(quarantine_dir, ec);
  MANET_CHECK(!ec, "cannot create " << quarantine_dir.string() << ": "
                                    << ec.message());
  const std::filesystem::path to = quarantine_dir / from.filename();
  std::filesystem::remove(to, ec);
  ec.clear();
  std::filesystem::rename(from, to, ec);
  MANET_CHECK(!ec, "cannot quarantine " << from.string() << ": "
                                        << ec.message());
}

}  // namespace

ScrubReport scrub_cache(const std::string& dir, bool repair,
                        std::ostream* log) {
  namespace fs = std::filesystem;
  MANET_CHECK(fs::is_directory(dir),
              "--scrub-cache: " << dir << " is not a directory");
  const fs::path root(dir);
  const fs::path quarantine = root / "quarantine";

  // Sorted filename order: deterministic reports and deterministic
  // repair-recompute order no matter what readdir() returns.
  std::vector<std::string> cells;
  std::vector<std::string> strays;
  for (const auto& entry : fs::directory_iterator(root)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string name = entry.path().filename().string();
    if (name.rfind(".tmp-", 0) == 0) {
      strays.push_back(name);
    } else if (name.size() > 5 &&
               name.compare(name.size() - 5, 5, ".cell") == 0) {
      cells.push_back(name);
    }
  }
  std::sort(cells.begin(), cells.end());
  std::sort(strays.begin(), strays.end());

  ScrubReport report;
  for (const std::string& name : strays) {
    move_to_quarantine(root / name, quarantine);
    ++report.stray_tmp;
    if (log != nullptr) {
      *log << "scrub: quarantined stray temp file " << name << "\n";
    }
  }
  for (const std::string& name : cells) {
    ++report.scanned;
    const fs::path cell_path = root / name;
    std::string why;
    try {
      (void)decode_cell(read_file_or_empty(cell_path));
      ++report.ok;
      continue;
    } catch (const util::CheckError& e) {
      why = e.what();
    }
    ++report.corrupt;
    if (log != nullptr) {
      *log << "scrub: corrupt cell " << name << ": " << why << "\n";
    }
    move_to_quarantine(cell_path, quarantine);
    if (!repair) {
      continue;  // the .meta sidecar (if any) stays in place so a later
                 // --scrub-repair pass can still recompute the cell
    }
    // Repair path: the .meta sidecar carries the cell's inputs; recompute
    // and publish under the *canonical* filename for the current epoch
    // (identical to `name` unless the corrupt cell came from another
    // epoch — then the recompute fills today's key and the stale name
    // stays quarantined).
    const fs::path meta_path = root / (name + ".meta");
    bool repaired = false;
    if (fs::exists(meta_path)) {
      try {
        const CellMeta meta = decode_cell_meta(read_file_or_empty(meta_path));
        const Scenario scenario =
            decode_canonical_scenario(meta.scenario_text);
        const RunResult fresh =
            run_scenario(scenario, factory_by_name(meta.algorithm));
        ResultCache cache(dir);
        cache.store(cache_cell_filename(scenario, meta.algorithm), fresh,
                    encode_cell_meta(meta.algorithm, meta.scenario_text));
        repaired = true;
      } catch (const util::CheckError& e) {
        if (log != nullptr) {
          *log << "scrub: cannot repair " << name << ": " << e.what()
               << "\n";
        }
      }
    }
    if (repaired) {
      ++report.repaired;
      if (log != nullptr) {
        *log << "scrub: repaired " << name << " by recompute\n";
      }
    } else {
      ++report.unrepairable;
    }
  }
  if (log != nullptr) {
    *log << "scrub: " << report.scanned << " cells, " << report.ok
         << " ok, " << report.corrupt << " corrupt, " << report.repaired
         << " repaired, " << report.unrepairable << " unrepairable, "
         << report.stray_tmp << " stray temp files\n";
  }
  return report;
}

}  // namespace manet::scenario
