// The sweep farm's multi-process dispatch: `manetsim --worker` subprocesses
// executing cells shipped over a length-prefixed stdin/stdout queue.
//
// Wire protocol (all frames: u32 little-endian payload length + payload):
//
//   request   "run\n<algorithm>\n<canonical scenario text>"
//   response  "ok\n<cell record>"        (scenario/cache.h encode_cell)
//             "error\n<what() text>"     (the run threw; worker stays up)
//
// Closing the worker's stdin is the clean-shutdown signal; it exits 0. The
// scenario travels as canonical_scenario_text() and the result comes back
// as a digest-carrying cell record, so the wire format *is* the cache
// format — one serialization to test, and a worker response can be stored
// into the cache byte-for-byte.
//
// Determinism: a worker runs the same single-threaded run_scenario() as
// in-process dispatch on a bit-identical Scenario, so responses are
// byte-identical to local computation. The farm assigns cells to workers
// dynamically (racy by design) but the caller reduces results in canonical
// job order, so final output is independent of --workers and scheduling.
//
// Self-healing (the farm failure state machine; DESIGN.md §7):
//   * every response read carries a per-cell deadline derived from a
//     running estimate of cell cost — a wedged worker (hung child, stalled
//     pipe, half-written frame) is SIGTERM→SIGKILLed and its cell retried,
//     never a hung sweep;
//   * workers that die or speak garbage are respawned with exponential
//     backoff and deterministic, seed-derived jitter;
//   * a cell that exhausts its attempt budget is *quarantined*: reported
//     with WorkerOutcome::quarantined so the caller can re-execute it
//     in-process for a definitive verdict instead of aborting the grid;
//   * a worker slot that exhausts its respawn budget retires; if every
//     slot retires with cells left (pool collapse), those cells come back
//     never-executed and the caller degrades to in-process execution.
//
// Chaos harness: the test-only MANET_FARM_CHAOS environment knob (read by
// serve_worker, mirroring the PR-2 fault::Injector discipline one layer up)
// injects worker hangs, garbage frames, mid-frame exits, and slow writes.
// Each request's fate is drawn from a seeded RNG keyed on the payload
// bytes, so it is deterministic and scheduling-independent: the same cell
// meets the same faults on any worker, and the farm must heal around them.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/subprocess.h"

namespace manet::scenario {

/// One frame: u32 LE length, then that many payload bytes. Reads/writes
/// loop over short transfers and EINTR (util/subprocess.h). read_frame
/// returns false on clean EOF at a frame boundary and throws CheckError on
/// a torn frame; write_frame returns false when the peer is gone (EPIPE /
/// closed fd).
bool read_frame(int fd, std::string* payload);
bool write_frame(int fd, std::string_view payload);

/// Deadline-aware frame read for the farm's watchdog: like read_frame but
/// never throws — a torn frame is a status, and an expired deadline
/// surfaces as kTimeout instead of blocking forever.
enum class FrameStatus { kOk, kEof, kTimeout, kTorn };
FrameStatus read_frame_deadline(int fd, std::string* payload,
                                const util::IoDeadline* deadline);

/// Serves requests from `in_fd` until EOF (the shutdown signal). Returns
/// the process exit code: 0 after a clean EOF, 1 when the transport broke.
/// Run errors are reported in-band ("error\n...") and do not end the loop.
/// Honors $MANET_FARM_CHAOS (test-only fault injection; see file comment).
int serve_worker(int in_fd, int out_fd);

/// A cell to dispatch: the request frame is built from these.
struct WorkerRequest {
  std::string algorithm;
  std::string scenario_text;  // canonical_scenario_text() of the cell
};

/// Result of one cell: exactly one of `cell` (the "ok" payload — a cache
/// cell record) or `error` is set. `quarantined` marks a cell whose farm
/// attempt budget ran out (error describes the last failure); the caller
/// should re-execute it in-process for a definitive verdict. Both optionals
/// unset means the cell was never executed (abort, or the whole pool died).
struct WorkerOutcome {
  std::optional<std::string> cell;
  std::optional<std::string> error;
  bool quarantined = false;
};

/// Farm tuning knobs. Every field has a conservative default; apply_env()
/// layers $MANET_FARM_* overrides on top (used by tests and CI chaos legs
/// to shrink deadlines and backoff to fractions of a second).
struct FarmOptions {
  /// Attempts per cell before it is quarantined.
  std::size_t max_attempts = 3;                // $MANET_FARM_MAX_ATTEMPTS
  /// Respawns per worker slot before the slot retires.
  std::size_t max_respawns = 16;               // $MANET_FARM_MAX_RESPAWNS
  /// Per-cell response deadline before any cell has completed (seconds).
  double initial_deadline_s = 300.0;           // $MANET_FARM_DEADLINE_S
  /// Once cells have completed: deadline = max(min_deadline_s,
  /// deadline_factor * mean completed cell wall time).
  double deadline_factor = 8.0;                // $MANET_FARM_DEADLINE_FACTOR
  double min_deadline_s = 10.0;                // $MANET_FARM_MIN_DEADLINE_S
  /// SIGTERM → SIGKILL escalation grace on a deadline kill (seconds).
  double term_grace_s = 2.0;                   // $MANET_FARM_GRACE_S
  /// Respawn backoff: base * 2^respawn, jittered by a deterministic
  /// multiplier in [0.5, 1.5) drawn from `seed`, capped at backoff_max_ms.
  double backoff_base_ms = 50.0;               // $MANET_FARM_BACKOFF_MS
  double backoff_max_ms = 2000.0;              // $MANET_FARM_BACKOFF_MAX_MS
  /// Seed of the backoff-jitter substreams (deterministic per slot and
  /// respawn count; never consumes simulation RNG).
  std::uint64_t seed = 0x6d616e6574;           // $MANET_FARM_SEED

  /// Applies $MANET_FARM_* overrides in place and returns *this.
  FarmOptions& apply_env();
};

/// What the farm did to stay alive — the farm-health side of a sweep.
struct FarmStats {
  std::size_t respawns = 0;           // worker processes replaced
  std::size_t deadline_kills = 0;     // wedged workers reaped by watchdog
  std::size_t transport_failures = 0; // failed attempts (crash/garbage/kill)
  std::size_t quarantined_cells = 0;  // attempt budget exhausted
  std::size_t backoff_waits = 0;      // respawns that slept first
  std::size_t degraded_cells = 0;     // drained in-process after collapse
                                      // (filled by the Runner, not the farm)
  bool pool_collapsed = false;        // every slot retired with cells left

  /// The farm counters as an obs snapshot ("farm.respawns",
  /// "farm.deadline_kills", "farm.quarantined_cells", "farm.degraded", ...).
  obs::Snapshot to_snapshot() const;

  void merge(const FarmStats& other);
};

/// Farm observer hooks; any may be empty. on_dispatch/on_response fire on
/// the farm's client threads (one per worker), keyed by request index; a
/// given index is only ever touched by one thread at a time, but different
/// indices fire concurrently — shared state in the hooks needs locking.
struct WorkerCallbacks {
  std::function<void(std::size_t)> on_dispatch;
  std::function<void(std::size_t, const WorkerOutcome&)> on_response;
  std::function<bool()> should_abort;  // polled between cells
};

/// Runs every request on a pool of `workers` subprocesses (each spawned as
/// `worker_bin --worker`), healing around failures per `farm` (deadline
/// kills, backoff respawns, quarantine). Returns outcomes indexed like
/// `requests`; `stats`, when non-null, receives the farm-health counters.
/// Throws CheckError when the worker binary cannot be spawned at all.
std::vector<WorkerOutcome> run_jobs_on_workers(
    const std::string& worker_bin, std::size_t workers,
    const std::vector<WorkerRequest>& requests,
    const WorkerCallbacks& callbacks = {},
    const FarmOptions& farm = FarmOptions{},
    FarmStats* stats = nullptr);

/// Resolves the worker binary path: `requested` when non-empty, else
/// $MANET_WORKER_BIN, else a sibling "manetsim" of the current executable,
/// else "../examples/manetsim" relative to it. Throws CheckError with the
/// tried candidates when none is executable.
std::string resolve_worker_bin(const std::string& requested);

}  // namespace manet::scenario
