// The sweep farm's multi-process dispatch: `manetsim --worker` subprocesses
// executing cells shipped over a length-prefixed stdin/stdout queue.
//
// Wire protocol (all frames: u32 little-endian payload length + payload):
//
//   request   "run\n<algorithm>\n<canonical scenario text>"
//   response  "ok\n<cell record>"        (scenario/cache.h encode_cell)
//             "error\n<what() text>"     (the run threw; worker stays up)
//
// Closing the worker's stdin is the clean-shutdown signal; it exits 0. The
// scenario travels as canonical_scenario_text() and the result comes back
// as a digest-carrying cell record, so the wire format *is* the cache
// format — one serialization to test, and a worker response can be stored
// into the cache byte-for-byte.
//
// Determinism: a worker runs the same single-threaded run_scenario() as
// in-process dispatch on a bit-identical Scenario, so responses are
// byte-identical to local computation. The farm assigns cells to workers
// dynamically (racy by design) but the caller reduces results in canonical
// job order, so final output is independent of --workers and scheduling.
//
// Crash handling: a worker that dies mid-cell (EOF / write failure) is
// respawned and the cell retried on another worker, up to a small attempt
// budget; a cell that *reports* an error (deterministic failure) is not
// retried — rerunning a deterministic failure yields the same failure.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace manet::scenario {

/// One frame: u32 LE length, then that many payload bytes. Reads/writes
/// loop over short transfers and EINTR. read_frame returns false on clean
/// EOF at a frame boundary and throws CheckError on a torn frame;
/// write_frame returns false when the peer is gone (EPIPE / closed fd).
bool read_frame(int fd, std::string* payload);
bool write_frame(int fd, std::string_view payload);

/// Serves requests from `in_fd` until EOF (the shutdown signal). Returns
/// the process exit code: 0 after a clean EOF, 1 when the transport broke.
/// Run errors are reported in-band ("error\n...") and do not end the loop.
int serve_worker(int in_fd, int out_fd);

/// A cell to dispatch: the request frame is built from these.
struct WorkerRequest {
  std::string algorithm;
  std::string scenario_text;  // canonical_scenario_text() of the cell
};

/// Result of one cell: exactly one of `cell` (the "ok" payload — a cache
/// cell record) or `error` is set. `error` is set both for deterministic
/// in-band failures and for cells whose retry budget ran out. Both unset
/// means the cell was never executed (abort, or the whole pool died).
struct WorkerOutcome {
  std::optional<std::string> cell;
  std::optional<std::string> error;
};

/// Farm observer hooks; any may be empty. on_dispatch/on_response fire on
/// the farm's client threads (one per worker), keyed by request index; a
/// given index is only ever touched by one thread at a time, but different
/// indices fire concurrently — shared state in the hooks needs locking.
struct WorkerCallbacks {
  std::function<void(std::size_t)> on_dispatch;
  std::function<void(std::size_t, const WorkerOutcome&)> on_response;
  std::function<bool()> should_abort;  // polled between cells
};

/// Runs every request on a pool of `workers` subprocesses (each spawned as
/// `worker_bin --worker`), retrying transport-failed cells on respawned
/// workers. Returns outcomes indexed like `requests`. Throws CheckError
/// when the worker binary cannot be spawned at all.
std::vector<WorkerOutcome> run_jobs_on_workers(
    const std::string& worker_bin, std::size_t workers,
    const std::vector<WorkerRequest>& requests,
    const WorkerCallbacks& callbacks = {});

/// Resolves the worker binary path: `requested` when non-empty, else
/// $MANET_WORKER_BIN, else a sibling "manetsim" of the current executable,
/// else "../examples/manetsim" relative to it. Throws CheckError with the
/// tried candidates when none is executable.
std::string resolve_worker_bin(const std::string& requested);

}  // namespace manet::scenario
