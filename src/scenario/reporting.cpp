#include "scenario/reporting.h"

#include <ostream>

#include "util/csv.h"
#include "util/table.h"

namespace manet::scenario {

Scenario paper_scenario() {
  Scenario s;
  s.n_nodes = 50;
  s.fleet.kind = mobility::ModelKind::kRandomWaypoint;
  s.fleet.field = geom::Rect(670.0, 670.0);
  s.fleet.max_speed = 20.0;
  s.fleet.min_speed = 0.1;
  s.fleet.pause_time = 0.0;
  s.tx_range = 250.0;
  s.sim_time = 900.0;
  s.warmup = 10.0;
  return s;
}

std::vector<double> default_tx_sweep() {
  return {10.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0, 175.0, 200.0, 225.0,
          250.0};
}

std::vector<std::optional<double>> print_comparison(
    std::ostream& os, const std::string& x_label,
    const std::vector<SweepPoint>& series, const std::string& alg_a,
    const std::string& alg_b, const std::string& value_label,
    const std::string& csv_path) {
  util::Table table({x_label, alg_a, "+-", alg_b, "+-",
                     "gain% (" + alg_b + " vs " + alg_a + ")"});
  std::optional<util::CsvWriter> csv;
  if (!csv_path.empty()) {
    csv.emplace(csv_path);
    csv->row({x_label, alg_a, alg_a + "_ci", alg_b, alg_b + "_ci", "gain"});
  }
  std::vector<std::optional<double>> gains;
  gains.reserve(series.size());
  for (const auto& p : series) {
    const auto a = p.values.at(alg_a);
    const auto b = p.values.at(alg_b);
    // A non-positive baseline mean admits no meaningful relative gain;
    // reporting would previously claim a misleading 0.
    const std::optional<double> gain =
        a.mean > 0.0 ? std::optional<double>((a.mean - b.mean) / a.mean *
                                             100.0)
                     : std::nullopt;
    gains.push_back(gain);
    table.add(util::Table::fmt(p.x, 0), util::Table::fmt(a.mean, 1),
              util::Table::fmt(a.half_width, 1), util::Table::fmt(b.mean, 1),
              util::Table::fmt(b.half_width, 1),
              gain ? util::Table::fmt(*gain, 1) : "n/a");
    if (csv) {
      csv->row_values(p.x, a.mean, a.half_width, b.mean, b.half_width,
                      gain ? util::CsvWriter::number(*gain) : "");
    }
  }
  table.print(os);
  os << "(" << value_label << "; mean over seeds, +- = 95% CI half-width)\n";
  return gains;
}

std::size_t argmax_x(const std::vector<SweepPoint>& series,
                     const std::string& alg) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < series.size(); ++i) {
    if (series[i].values.at(alg).mean > series[best].values.at(alg).mean) {
      best = i;
    }
  }
  return best;
}

}  // namespace manet::scenario
