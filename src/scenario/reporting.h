// Paper-style reporting helpers shared by the figure benches and the
// manetsim CLI: the Table-1 default scenario, the two-algorithm comparison
// table (with the MOBIC-vs-baseline gain column the paper's text quotes),
// the Figures 3-5 transmission-range axis, and series peak location.
// Formerly inline in bench/bench_common.h; now compiled once here so they
// are unit-testable and usable outside bench/.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "scenario/experiment.h"

namespace manet::scenario {

/// Table-1 defaults: 50 RWP nodes, 670x670 m, MaxSpeed 20, PT 0, BI 2 s,
/// TP 3 s, CCI 4 s, 900 s.
Scenario paper_scenario();

/// The transmission-range sweep of Figures 3-5.
std::vector<double> default_tx_sweep();

/// Prints a two-algorithm sweep as a paper-style table:
///   x | <alg A> (+-ci) | <alg B> (+-ci) | gain%
/// where gain% = (A - B) / A — positive when B (MOBIC) wins. Also writes
/// CSV when `csv_path` is non-empty. Returns the per-point gains; a point
/// whose baseline mean is <= 0 has no meaningful gain and yields
/// std::nullopt (printed as "n/a", empty CSV cell).
std::vector<std::optional<double>> print_comparison(
    std::ostream& os, const std::string& x_label,
    const std::vector<SweepPoint>& series, const std::string& alg_a,
    const std::string& alg_b, const std::string& value_label,
    const std::string& csv_path);

/// x index of the series maximum (for peak-location checks).
std::size_t argmax_x(const std::vector<SweepPoint>& series,
                     const std::string& alg);

}  // namespace manet::scenario
