// Content-addressed result cache for sweep grids (the "sweep farm").
//
// Every (Scenario, algorithm) cell of a grid has a stable identity:
//
//   key = fnv64( "manet-cache-key/1", cache epoch, algorithm id,
//                canonical scenario text )
//
// The canonical text enumerates *every* semantically relevant Scenario
// field — mobility, network, propagation, fault workload, observability
// level, seed — with doubles rendered as exact IEEE-754 bit patterns, so
// two configs hash equal iff they simulate identically. Presentation-only
// fields (obs trace_path / tag, fleet.duration which run_scenario syncs to
// sim_time) are excluded: they change side outputs, never results.
//
// The cache epoch is the code-version salt: a build-stamped string
// (-DMANET_CACHE_EPOCH=..., CMake cache variable MANET_CACHE_EPOCH,
// overridable at runtime via $MANET_CACHE_EPOCH). Bump it whenever
// simulation semantics change without a Scenario field changing; every old
// cell then misses instead of serving stale results.
//
// A cell file stores the complete RunResult — including the obs::Snapshot
// and the fault timeline — as a line-oriented text record ending in an
// FNV-1a digest of everything above it. Loads verify the digest and the
// full parse; any mismatch (truncation, edits, partial writes) counts as
// corruption and falls back to recomputation, never silent reuse. Stores
// write to a temp file and rename() so concurrent writers and killed sweeps
// can leave no half-written cell behind.
//
// Soundness rests on the determinism contract (DESIGN.md): a run is a pure
// function of the canonical text + code version, which is exactly what the
// key hashes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>

#include "scenario/scenario.h"

namespace manet::scenario {

/// The active code-version salt: $MANET_CACHE_EPOCH when set and non-empty,
/// else the build-stamped MANET_CACHE_EPOCH compile definition.
std::string cache_epoch();

/// Exact, complete, machine-oriented serialization of a Scenario (doubles
/// as bit patterns; excludes fleet.duration). obs trace_path / tag are
/// included when set — the worker wire format needs them — but cache_key()
/// strips them first. decode_canonical_scenario() round-trips bit-exactly.
std::string canonical_scenario_text(const Scenario& s);
Scenario decode_canonical_scenario(const std::string& text);

/// The content address of one (scenario, algorithm) cell, as 16 hex chars.
/// Deterministic across processes and --jobs values; distinct for any
/// semantic field change, seed change, or epoch bump.
std::string cache_key(const Scenario& s, const std::string& algorithm);

/// Cell file name under the cache dir: "<alg>-s<seed>-<key>.cell" (the
/// algorithm prefix is sanitized and cosmetic; identity is the key).
std::string cache_cell_filename(const Scenario& s,
                                const std::string& algorithm);

/// Serializes a RunResult as a cell record (trailing integrity digest).
std::string encode_cell(const RunResult& result);
/// Parses and digest-checks a cell record; throws CheckError on any
/// malformation. decode(encode(r)) == r, bit-exact.
RunResult decode_cell(const std::string& text);

/// Human-readable description of the first line where two line-oriented
/// records (cell or canonical-scenario text) diverge, naming the "key =
/// value" field when one is present — the diagnostic behind --resume-verify
/// mismatches and scrub reports. Empty string when the records are
/// byte-identical.
std::string first_cell_difference(const std::string& fresh,
                                  const std::string& cached);

/// Provenance sidecar of a cell ("<cell filename>.meta"): the algorithm
/// label and the exact canonical scenario text the cell was computed from.
/// Cells are pure outputs and do not embed their inputs, so this sidecar is
/// what makes scrub_cache() able to *repair* a corrupt cell by recompute.
std::string encode_cell_meta(const std::string& algorithm,
                             const std::string& scenario_text);
/// Parses a meta sidecar; throws CheckError on malformation.
struct CellMeta {
  std::string algorithm;
  std::string scenario_text;
};
CellMeta decode_cell_meta(const std::string& text);

/// Lookup / store counters of one Runner::execute pass (also exposed via
/// Runner::cache_stats() for tests and tooling).
struct CacheStats {
  std::size_t hits = 0;      // cells served from the cache
  std::size_t misses = 0;    // absent cells (computed and stored)
  std::size_t stores = 0;    // cells written
  std::size_t corrupt = 0;   // digest/parse failures -> recomputed
  std::size_t verified = 0;  // --resume byte-verifications that passed
};

class ResultCache {
 public:
  /// Opens (creating if needed) the cache directory. Throws CheckError when
  /// the directory cannot be created.
  explicit ResultCache(std::string dir);

  const std::string& dir() const { return dir_; }
  std::string path_for(const std::string& filename) const;

  /// Loads and fully verifies a cell. A digest or parse failure logs a
  /// warning, counts as corruption and reads as a miss — the caller
  /// recomputes and overwrites. When `raw_text` is non-null it receives the
  /// verified on-disk bytes (for --resume byte-verification).
  std::optional<RunResult> load(const std::string& filename,
                                std::string* raw_text = nullptr);

  /// Atomically writes a cell (temp file + rename). When `meta_text` is
  /// non-empty, a "<filename>.meta" provenance sidecar (encode_cell_meta
  /// output) is published the same way, enabling scrub repair. Thread-safe.
  void store(const std::string& filename, const RunResult& result,
             const std::string& meta_text = {});

  void note_verified();
  CacheStats stats() const;

 private:
  std::string dir_;
  mutable std::mutex mu_;
  CacheStats stats_;
  unsigned tmp_seq_ = 0;
};

/// Outcome of one scrub_cache() pass over a cache directory.
struct ScrubReport {
  std::size_t scanned = 0;       // .cell files examined
  std::size_t ok = 0;            // digest + parse verified
  std::size_t corrupt = 0;       // failed verification -> quarantine/
  std::size_t repaired = 0;      // recomputed from a .meta sidecar
  std::size_t unrepairable = 0;  // corrupt with no usable sidecar
  std::size_t stray_tmp = 0;     // leftover .tmp-* files -> quarantine/
};

/// Integrity sweep over a cache directory: digest-verifies every *.cell
/// file (in sorted filename order, so reports are deterministic), moves
/// each corrupt cell — and any stray .tmp-* leftover from a killed sweep —
/// into a "quarantine/" subdirectory alongside its sidecar. With `repair`,
/// a quarantined cell whose .meta sidecar survives is recomputed from its
/// recorded scenario and re-published under its canonical filename.
/// Progress lines go to `log` when non-null. Throws CheckError when `dir`
/// is not a directory.
ScrubReport scrub_cache(const std::string& dir, bool repair,
                        std::ostream* log = nullptr);

}  // namespace manet::scenario
