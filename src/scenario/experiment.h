// Experiment vocabulary shared by the sweep runner and the figure benches:
// result-field accessors, per-field aggregation with 95% confidence
// intervals, algorithm specs, and the paper-style series types. The grid
// execution itself lives in scenario/runner.h (scenario::Runner).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "util/stats.h"

namespace manet::scenario {

/// Extracts a field from a RunResult (for aggregation).
using FieldFn = std::function<double(const RunResult&)>;

/// Mean and 95% CI of a field across runs.
util::MeanCI aggregate(const std::vector<RunResult>& runs,
                       const FieldFn& field);

/// Common fields.
double field_ch_changes(const RunResult& r);
double field_avg_clusters(const RunResult& r);
double field_reaffiliations(const RunResult& r);
double field_head_lifetime(const RunResult& r);
double field_mean_degree(const RunResult& r);
double field_beacons_sent(const RunResult& r);
double field_bytes_sent(const RunResult& r);

/// Resilience fields (meaningful only on fault-injection runs).
double field_mean_recovery(const RunResult& r);
double field_max_recovery(const RunResult& r);
double field_orphaned_member_seconds(const RunResult& r);
double field_unrecovered(const RunResult& r);
/// Fraction of convergence samples that violated an invariant (0 when the
/// monitor never ran).
double field_violation_fraction(const RunResult& r);

/// Energy fields (meaningful only on battery-model runs, except fairness
/// which is computed for every run).
double field_battery_deaths(const RunResult& r);
double field_energy_drained(const RunResult& r);
/// Jain's fairness of per-node clusterhead tenure (RunResult doc).
double field_head_tenure_fairness(const RunResult& r);

/// One named clustering configuration in a comparison.
struct AlgorithmSpec {
  std::string name;          // label in tables/CSV
  OptionsFactory factory;
};

/// The paper's two contenders.
std::vector<AlgorithmSpec> paper_algorithms();

/// A point of an x-swept comparison series (e.g. Tx on the x axis).
struct SweepPoint {
  double x = 0.0;
  /// algorithm name -> aggregated value.
  std::map<std::string, util::MeanCI> values;
  /// algorithm name -> the per-seed samples behind the aggregate (for
  /// significance testing).
  std::map<std::string, std::vector<double>> raw;
};

/// The multi-field analogue of SweepPoint.
struct MultiSweepPoint {
  double x = 0.0;
  /// values[algorithm][field name] -> aggregate.
  std::map<std::string, std::map<std::string, util::MeanCI>> values;
};

}  // namespace manet::scenario
