// Scenario description + single-run driver. A Scenario is the complete
// recipe for one simulation run (Table 1 of the paper plus the mobility and
// propagation configuration); run_scenario() executes it for one clustering
// configuration and returns the measured metrics.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/presets.h"
#include "cluster/stats.h"
#include "cluster/validation.h"
#include "fault/fault.h"
#include "mobility/factory.h"
#include "net/energy.h"
#include "net/network.h"
#include "obs/config.h"
#include "obs/metrics.h"

namespace manet::scenario {

struct Scenario {
  std::size_t n_nodes = 50;           // N (paper: 50)
  double tx_range = 250.0;            // Tx, meters (paper sweeps 10-250)
  double sim_time = 900.0;            // S, seconds (paper: 900)

  /// Mobility configuration; fleet.field is the m x n scenario area
  /// (paper: 670^2 and 1000^2) and fleet.duration is kept in sync with
  /// sim_time by run_scenario().
  mobility::FleetParams fleet{};

  /// Hello-protocol timing: BI = 2.0 s, TP = 3.0 s (paper defaults).
  net::NetworkParams net{};

  /// Propagation: "free_space" (paper), "two_ray", "log_distance",
  /// "shadowing".
  std::string propagation = "free_space";
  double pathloss_exponent = 2.7;   // log-distance / shadowing models
  double shadowing_sigma_db = 4.0;  // shadowing model

  std::uint64_t seed = 1;

  /// Measurement warm-up: clusterhead changes before this time (the initial
  /// election) are not counted, and role sampling starts here.
  double warmup = 10.0;
  /// Role-distribution sampling period.
  double sample_period = 1.0;

  /// Fault workload (crashes, churn, loss bursts, jamming, partitions).
  /// Empty (the default) runs fault-free and is bit-identical to a build
  /// without the fault subsystem. When set, run_scenario() compiles it with
  /// the run seed's "faults" substream, arms a fault::Injector and attaches
  /// a cluster::ConvergenceMonitor; a [begin, end) of [0, 0) defaults to
  /// [warmup, sim_time).
  fault::ScheduleSpec faults{};

  /// Battery model (disabled by default — a disabled model is bit-identical
  /// to a build without the energy subsystem and stays out of the
  /// result-cache key). When enabled, run_scenario() draws per-node
  /// capacities from the run seed's "energy" substream, wires a
  /// net::EnergyModel into the network and the agents, and feeds battery
  /// depletions to the fault injector as kBatteryDepleted point faults.
  net::EnergyParams energy{};

  /// Observability: metrics (default on — consumes no RNG, schedules no
  /// events, so it cannot perturb the run) and tracing (default off; at
  /// TraceLevel::kFull the periodic counter sampler *does* add simulator
  /// events, visible in events_executed). See obs::ObsConfig.
  obs::ObsConfig obs{};

  /// Intra-run worker threads for the sharded broadcast-scan pipeline
  /// (net::ShardPlanner). 1 = serial (default); N > 1 = N workers; 0 =
  /// auto ($MANET_SIM_JOBS, else hardware concurrency). Results are
  /// bit-identical for every value — the planner only parallelizes pure
  /// speculative scans and replays all side effects in serial order — so
  /// this knob is deliberately excluded from the result-cache key
  /// (scenario/cache.cpp). Runs whose mobility models cannot be unrolled
  /// into legs (group/trace models) silently fall back to serial.
  int sim_jobs = 1;
};

/// Everything a run measures; aggregated across seeds by the experiment
/// harness.
struct RunResult {
  // Stability (paper metric CS) and its decomposition.
  std::uint64_t ch_changes = 0;
  std::uint64_t head_gains = 0;
  std::uint64_t head_losses = 0;
  std::uint64_t reaffiliations = 0;
  double mean_head_lifetime = 0.0;  // s

  // Role-distribution averages over the measurement window.
  double avg_clusters = 0.0;  // paper Figure 4 quantity
  double avg_gateways = 0.0;
  double avg_undecided = 0.0;
  double avg_cluster_size = 0.0;

  // Substrate statistics.
  double mean_degree = 0.0;  // delivered receptions per beacon
  std::uint64_t beacons_sent = 0;
  std::uint64_t hellos_delivered = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t events_executed = 0;  // simulator events fired over the run

  // Invariant check at simulation end (ground truth).
  cluster::ValidationReport final_validation;

  // Resilience metrics (all zero on fault-free runs). A "disruption" spans
  // from the first fault observed while the clustering is clean to the first
  // clean convergence sample afterwards.
  std::uint64_t faults_injected = 0;
  std::uint64_t recoveries = 0;
  double mean_recovery_s = 0.0;
  double max_recovery_s = 0.0;
  std::uint64_t unrecovered_disruptions = 0;
  double orphaned_member_seconds = 0.0;
  std::uint64_t convergence_samples = 0;
  std::uint64_t violation_samples = 0;
  /// The injected timeline, in activation order (echoed to the run log).
  std::vector<fault::FaultEvent> fault_timeline;

  /// Clusterheads standing at sim end (ground truth for the obs identity
  /// ch.elected - ch.resigned == final_heads).
  std::uint64_t final_heads = 0;

  // Energy-model results (all zero when Scenario::energy is disabled).
  double energy_initial_j = 0.0;   // summed initial capacity
  double energy_residual_j = 0.0;  // summed residual at end of run
  double energy_drained_j = 0.0;   // summed per-node drain accounting
  std::uint64_t battery_deaths = 0;  // kBatteryDepleted faults injected

  /// Jain's fairness index of per-node cumulative clusterhead tenure over
  /// all N nodes: (sum x)^2 / (N * sum x^2), 1.0 = every node served
  /// equally, 1/N = one node served alone, 0.0 = nobody ever served.
  /// Computed on every run (it is derived bookkeeping, not a new RNG draw).
  double head_tenure_fairness = 0.0;
  /// Observability snapshot; empty when Scenario::obs.metrics is off.
  obs::Snapshot metrics;

  /// Bit-exact equality — the result-cache round-trip contract
  /// (decode_cell(encode_cell(r)) == r) and --resume verification rest on
  /// this.
  bool operator==(const RunResult&) const = default;
};

/// Builds the cluster options for a run; receives the per-run stats sink.
using OptionsFactory =
    std::function<cluster::ClusterOptions(cluster::ClusterEventSink*)>;

/// Factory from an algorithm name (see cluster::options_by_name).
OptionsFactory factory_by_name(const std::string& name);

/// Access to the live simulation, handed to a hook right after the network
/// starts: lets callers schedule custom in-simulation sampling (the routing
/// experiments use this).
struct LiveContext {
  sim::Simulator& sim;
  net::Network& network;
  const std::vector<const cluster::WeightedClusterAgent*>& agents;
};

/// Executes one full simulation of `scenario` with every node running the
/// clustering configuration produced by `factory`. `on_start`, if given, is
/// invoked once before the clock runs; `extra_sink`, if given, receives the
/// clustering events alongside the internal stats collector (e.g. a
/// TimelineRecorder).
RunResult run_scenario(
    const Scenario& scenario, const OptionsFactory& factory,
    const std::function<void(LiveContext&)>& on_start = nullptr,
    cluster::ClusterEventSink* extra_sink = nullptr);

}  // namespace manet::scenario
