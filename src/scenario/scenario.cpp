#include "scenario/scenario.h"

#include <fstream>
#include <memory>

#include "cluster/convergence.h"
#include "cluster/obs_sink.h"
#include "fault/injector.h"
#include "net/shard_planner.h"
#include "obs/trace.h"
#include "radio/medium.h"
#include "sim/simulator.h"
#include "util/assert.h"
#include "util/thread_pool.h"
#include "util/thread_role.h"

namespace manet::scenario {

namespace {

/// All observability state of one run, built only when the scenario asks
/// for any of it. Handle resolution (registry lookups, string hashing)
/// happens here, once, at setup; the hook structs hold plain pointers.
struct ObsBundle {
  obs::Registry registry;
  obs::TraceSink trace;
  obs::SimHooks sim_hooks;
  obs::NetHooks net_hooks;
  obs::AgentHooks agent_hooks;
  obs::FaultHooks fault_hooks;
  obs::EnergyHooks energy_hooks;
  cluster::ObsClusterSink cluster_sink;
  /// Owns the kFull counter-sampler closure so the recurring event can
  /// reschedule itself without a shared_ptr cycle.
  std::function<void()> sampler_tick;

  ObsBundle(const obs::ObsConfig& cfg, double warmup, double cascade_window,
            bool energy_enabled)
      : trace(cfg.trace == obs::TraceLevel::kOff && !cfg.trace_path.empty()
                  ? obs::TraceLevel::kSpans
                  : cfg.trace),
        cluster_sink(registry, warmup, cascade_window,
                     trace.enabled() ? &trace : nullptr) {
    obs::TraceSink* t = trace.enabled() ? &trace : nullptr;
    sim_hooks.queue_depth = registry.histogram(
        "event_queue.depth",
        {8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0});
    net_hooks.beacon_sent = registry.counter("beacon.sent");
    net_hooks.hello_sent = registry.counter("hello.sent");
    net_hooks.hello_delivered = registry.counter("hello.delivered");
    net_hooks.hello_dropped_fading = registry.counter("hello.dropped.fading");
    net_hooks.hello_dropped_loss = registry.counter("hello.dropped.loss");
    net_hooks.hello_dropped_collision =
        registry.counter("hello.dropped.collision");
    net_hooks.neighbor_timeout = registry.counter("neighbor.timeout");
    net_hooks.msg_sent = registry.counter("msg.sent");
    net_hooks.msg_delivered = registry.counter("msg.delivered");
    agent_hooks.cci_deferral = registry.counter("cci.deferral");
    agent_hooks.cci_resolved = registry.counter("cci.resolved");
    agent_hooks.trace = t;
    fault_hooks.activated = registry.counter("fault.activated");
    fault_hooks.moot = registry.counter("fault.moot");
    fault_hooks.window_expired = registry.counter("fault.window_expired");
    fault_hooks.trace = t;
    // Energy instruments exist only when the scenario enables the battery
    // model, so energy-free snapshots stay byte-identical to older builds.
    if (energy_enabled) {
      energy_hooks.depleted = registry.counter("energy.depleted");
      energy_hooks.drains = registry.counter("energy.drain");
      energy_hooks.residual_ratio = registry.histogram(
          "energy.residual_ratio",
          {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0});
    }
  }
};

std::string expand_placeholder(std::string s, const std::string& key,
                               const std::string& value) {
  for (std::size_t pos = s.find(key); pos != std::string::npos;
       pos = s.find(key, pos + value.size())) {
    s.replace(pos, key.size(), value);
  }
  return s;
}

std::string expand_trace_path(const std::string& path, std::uint64_t seed,
                              const std::string& tag) {
  std::string s = expand_placeholder(path, "{seed}", std::to_string(seed));
  return expand_placeholder(s, "{tag}", tag);
}

}  // namespace

OptionsFactory factory_by_name(const std::string& name) {
  return [name](cluster::ClusterEventSink* sink) {
    return cluster::options_by_name(name, sink);
  };
}

RunResult run_scenario(const Scenario& scenario,
                       const OptionsFactory& factory,
                       const std::function<void(LiveContext&)>& on_start,
                       cluster::ClusterEventSink* extra_sink) {
  MANET_CHECK(scenario.n_nodes >= 2, "need at least two nodes");
  MANET_CHECK(scenario.tx_range > 0.0);
  MANET_CHECK(scenario.sim_time > scenario.warmup,
              "sim_time must exceed warmup");

  // This thread owns the simulator for the whole run: it is the run's
  // commit thread (see util/thread_role.h). Everything below — setup
  // draws, the event loop, post-run validators — runs under the role.
  util::CommitRoleScope commit_scope;

  sim::Simulator sim;
  util::Rng root(scenario.seed);

  // Radio medium calibrated for the scenario's nominal range.
  radio::Medium medium(
      radio::make_propagation(scenario.propagation,
                              scenario.pathloss_exponent,
                              scenario.shadowing_sigma_db),
      radio::RadioParams{}, scenario.tx_range);

  // Mobility fleet; keep the horizon and field coherent with the scenario.
  mobility::FleetParams fleet = scenario.fleet;
  fleet.duration = scenario.sim_time;
  const geom::Rect field = mobility::fleet_field(fleet);

  net::NetworkParams net_params = scenario.net;
  net_params.speed_bound =
      std::max(net_params.speed_bound, fleet.max_speed * 2.0);

  net::Network network(sim, std::move(medium), field, net_params,
                       root.substream("network"));
  network.add_fleet(
      mobility::make_fleet(fleet, scenario.n_nodes,
                           root.substream("mobility")));

  // Intra-run parallelism: a shard planner speculating broadcast scans on
  // a worker pool. Results are bit-identical to the serial path for any
  // worker count (the planner replays all side effects in serial order),
  // so this changes wall time only. Declared pool-before-planner: the
  // planner's destructor drains the pool.
  std::unique_ptr<util::ThreadPool> sim_pool;
  std::unique_ptr<net::ShardPlanner> planner;
  const int sim_jobs = net::ShardPlanner::resolve_sim_jobs(scenario.sim_jobs);
  if (sim_jobs > 1 && net::ShardPlanner::supported(network)) {
    sim_pool = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(sim_jobs));
    planner = std::make_unique<net::ShardPlanner>(network, *sim_pool);
    network.enable_sharding(planner.get());
  }

  // Battery model — created only when enabled so energy-free runs draw no
  // "energy" substream and stay bit-identical to pre-energy builds.
  std::unique_ptr<net::EnergyModel> energy;
  if (scenario.energy.enabled) {
    energy = std::make_unique<net::EnergyModel>(
        scenario.energy, scenario.n_nodes, root.substream("energy"));
    network.set_energy(energy.get());
  }

  std::unique_ptr<ObsBundle> bundle;
  if (scenario.obs.any()) {
    bundle = std::make_unique<ObsBundle>(
        scenario.obs, scenario.warmup,
        net_params.broadcast_interval * 1.25, energy != nullptr);
    bundle->cluster_sink.reserve_nodes(scenario.n_nodes);
    bundle->trace.reserve(1024);
    sim.set_hooks(&bundle->sim_hooks);
    network.set_hooks(&bundle->net_hooks);
  }

  cluster::ClusterStats stats(scenario.warmup);
  stats.reserve_nodes(scenario.n_nodes);
  cluster::FanoutClusterEventSink fanout(
      {&stats, extra_sink,
       bundle == nullptr ? nullptr : &bundle->cluster_sink});
  cluster::ClusterEventSink* sink =
      extra_sink == nullptr && bundle == nullptr
          ? static_cast<cluster::ClusterEventSink*>(&stats)
          : &fanout;
  std::vector<const cluster::WeightedClusterAgent*> agents;
  agents.reserve(scenario.n_nodes);
  for (auto& node : network.nodes()) {
    cluster::ClusterOptions opts = factory(sink);
    if (bundle != nullptr) {
      opts.obs = &bundle->agent_hooks;
    }
    opts.energy = energy.get();
    auto agent = std::make_unique<cluster::WeightedClusterAgent>(opts);
    agents.push_back(agent.get());
    node->set_agent(std::move(agent));
  }

  cluster::ClusterSampler sampler(sim, agents);
  sampler.start(scenario.warmup, scenario.sample_period, scenario.sim_time);

  // The fault machinery is only instantiated when the scenario asks for it:
  // a fault-free run draws no "faults" substream, registers no loss layer
  // and schedules no monitor ticks, so its event trace and RNG consumption
  // are bit-identical to pre-fault-subsystem builds.
  std::unique_ptr<fault::Injector> injector;
  std::unique_ptr<cluster::ConvergenceMonitor> monitor;
  if (!scenario.faults.empty() || energy != nullptr) {
    fault::Schedule schedule;  // stays empty on energy-only runs: no
                               // "faults" substream is drawn for them
    if (!scenario.faults.empty()) {
      fault::ScheduleSpec fault_spec = scenario.faults;
      if (fault_spec.begin == 0.0 && fault_spec.end == 0.0) {
        fault_spec.begin = scenario.warmup;
        fault_spec.end = scenario.sim_time;
      }
      schedule = fault::make_schedule(fault_spec, scenario.n_nodes, field,
                                      root.substream("faults"));
    }
    injector = std::make_unique<fault::Injector>(network, std::move(schedule));
    monitor = std::make_unique<cluster::ConvergenceMonitor>(sim, network,
                                                            agents);
    injector->set_on_fault([mon = monitor.get()](const fault::FaultEvent& e) {
      MANET_ASSERT_COMMIT_ROLE();  // fired from fault activations (events)
      mon->note_fault(e.at);
    });
    if (bundle != nullptr) {
      injector->set_hooks(&bundle->fault_hooks);
    }
    if (energy != nullptr) {
      // Battery deaths reach the injector mid-drain; reserving one timeline
      // slot per node keeps inject_now() off the allocator.
      injector->reserve_external(scenario.n_nodes);
      energy->set_on_depleted(
          [](void* ctx, net::NodeId node, sim::Time t) {
            MANET_ASSERT_COMMIT_ROLE();
            fault::FaultEvent e;
            e.kind = fault::FaultKind::kBatteryDepleted;
            e.at = t;
            e.node = node;
            static_cast<fault::Injector*>(ctx)->inject_now(e);
          },
          injector.get());
      if (bundle != nullptr) {
        energy->set_hooks(&bundle->energy_hooks);
      }
    }
    injector->arm();
    monitor->start(scenario.warmup, scenario.sample_period,
                   scenario.sim_time);
  }

  network.start();
  // Full-level tracing samples a few counter tracks on a fixed period.
  // This is the one observability feature that schedules simulator events
  // (and thus moves events_executed); it is gated on the opt-in kFull.
  if (bundle != nullptr && bundle->trace.full()) {
    const double period = std::max(scenario.obs.counter_sample_period, 1e-3);
    bundle->sampler_tick = [&sim, &network, &agents, b = bundle.get(),
                            period, end = scenario.sim_time] {
      MANET_ASSERT_COMMIT_ROLE();
      const sim::Time now = sim.now();
      b->trace.counter("event_queue.depth", now,
                       static_cast<double>(sim.pending_events()));
      b->trace.counter("hello.delivered", now,
                       static_cast<double>(
                           b->net_hooks.hello_delivered->value()));
      std::size_t heads = 0;
      for (const auto* a : agents) {
        heads += a->role() == cluster::Role::kHead ? 1 : 0;
      }
      b->trace.counter("clusterheads", now, static_cast<double>(heads));
      if (now + period <= end) {
        sim.schedule_in(period, b->sampler_tick);
      }
    };
    sim.schedule_at(0.0, bundle->sampler_tick);
  }
  // The context must outlive the whole run, not just the hook call: hooks
  // routinely schedule events that capture it by reference and fire from
  // run_until (timeline recorder, routing probes, test instrumentation).
  LiveContext ctx{sim, network, agents};
  if (on_start != nullptr) {
    on_start(ctx);
  }
  sim.run_until(scenario.sim_time);
  if (planner != nullptr) {
    // Drain speculation before validators touch nodes and mobility state.
    planner->shutdown();
  }
  stats.finish(scenario.sim_time);
  if (bundle != nullptr) {
    bundle->cluster_sink.finish(scenario.sim_time);
  }

  RunResult result;
  result.ch_changes = stats.clusterhead_changes();
  result.head_gains = stats.head_gains();
  result.head_losses = stats.head_losses();
  result.reaffiliations = stats.reaffiliations();
  result.mean_head_lifetime = stats.head_lifetimes().mean();
  result.avg_clusters = sampler.num_clusters().mean();
  result.avg_gateways = sampler.num_gateways().mean();
  result.avg_undecided = sampler.num_undecided().mean();
  result.avg_cluster_size = sampler.cluster_sizes().mean();
  result.mean_degree = network.stats().mean_degree();
  result.beacons_sent = network.stats().beacons_sent;
  result.hellos_delivered = network.stats().hellos_delivered;
  result.bytes_sent = network.stats().bytes_sent;
  result.events_executed = sim.events_executed();
  result.final_validation =
      cluster::validate_clusters(network, agents, scenario.sim_time);
  if (monitor != nullptr) {
    const cluster::ConvergenceMonitor::Summary s =
        monitor->finish(scenario.sim_time);
    result.faults_injected = s.faults_observed;
    result.recoveries = s.recovery.count();
    result.mean_recovery_s = s.recovery.mean();
    result.max_recovery_s = s.recovery.empty() ? 0.0 : s.recovery.max();
    result.unrecovered_disruptions = s.unrecovered_disruptions;
    result.orphaned_member_seconds = s.orphaned_member_seconds;
    result.convergence_samples = s.samples;
    result.violation_samples = s.violation_samples;
  }
  if (injector != nullptr) {
    result.fault_timeline.reserve(injector->timeline().size());
    for (const auto& applied : injector->timeline()) {
      result.fault_timeline.push_back(applied.event);
    }
  }
  for (const auto* a : agents) {
    result.final_heads += a->role() == cluster::Role::kHead ? 1 : 0;
  }
  if (energy != nullptr) {
    energy->settle_all(scenario.sim_time);
    result.energy_initial_j = energy->total_initial_j();
    result.energy_residual_j = energy->total_residual_j();
    result.energy_drained_j = energy->total_drained_j();
    result.battery_deaths = energy->deaths();
  }
  {
    // Jain's fairness of per-node head tenure over all N nodes; nodes that
    // never served count as zeros (they shrink the index), so a rotation
    // protocol that shares the role scores higher than a single long reign.
    double sum = 0.0;
    double sum_sq = 0.0;
    for (const auto& [node, tenure] : stats.head_tenure()) {
      sum += tenure;
      sum_sq += tenure * tenure;
    }
    result.head_tenure_fairness =
        sum_sq > 0.0
            ? (sum * sum) / (static_cast<double>(scenario.n_nodes) * sum_sq)
            : 0.0;
  }
  if (bundle != nullptr) {
    if (bundle->trace.enabled()) {
      bundle->trace.complete(obs::TraceSink::kRunPid, 0, "warmup", 0.0,
                             scenario.warmup);
      bundle->trace.complete(obs::TraceSink::kRunPid, 0, "measurement",
                             scenario.warmup, scenario.sim_time, "events",
                             static_cast<std::int64_t>(sim.events_executed()));
      if (!scenario.obs.trace_path.empty()) {
        const std::string path = expand_trace_path(
            scenario.obs.trace_path, scenario.seed, scenario.obs.tag);
        std::ofstream out(path, std::ios::binary);
        MANET_CHECK(out.is_open(), "cannot write trace to " << path);
        bundle->trace.write_json(out);
      }
    }
    if (scenario.obs.metrics) {
      result.metrics = bundle->registry.snapshot();
    }
  }
  return result;
}

}  // namespace manet::scenario
