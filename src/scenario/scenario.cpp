#include "scenario/scenario.h"

#include <memory>

#include "cluster/convergence.h"
#include "fault/injector.h"
#include "radio/medium.h"
#include "sim/simulator.h"
#include "util/assert.h"

namespace manet::scenario {

OptionsFactory factory_by_name(const std::string& name) {
  return [name](cluster::ClusterEventSink* sink) {
    return cluster::options_by_name(name, sink);
  };
}

RunResult run_scenario(const Scenario& scenario,
                       const OptionsFactory& factory,
                       const std::function<void(LiveContext&)>& on_start,
                       cluster::ClusterEventSink* extra_sink) {
  MANET_CHECK(scenario.n_nodes >= 2, "need at least two nodes");
  MANET_CHECK(scenario.tx_range > 0.0);
  MANET_CHECK(scenario.sim_time > scenario.warmup,
              "sim_time must exceed warmup");

  sim::Simulator sim;
  util::Rng root(scenario.seed);

  // Radio medium calibrated for the scenario's nominal range.
  radio::Medium medium(
      radio::make_propagation(scenario.propagation,
                              scenario.pathloss_exponent,
                              scenario.shadowing_sigma_db),
      radio::RadioParams{}, scenario.tx_range);

  // Mobility fleet; keep the horizon and field coherent with the scenario.
  mobility::FleetParams fleet = scenario.fleet;
  fleet.duration = scenario.sim_time;
  const geom::Rect field = mobility::fleet_field(fleet);

  net::NetworkParams net_params = scenario.net;
  net_params.speed_bound =
      std::max(net_params.speed_bound, fleet.max_speed * 2.0);

  net::Network network(sim, std::move(medium), field, net_params,
                       root.substream("network"));
  network.add_fleet(
      mobility::make_fleet(fleet, scenario.n_nodes,
                           root.substream("mobility")));

  cluster::ClusterStats stats(scenario.warmup);
  cluster::FanoutClusterEventSink fanout({&stats, extra_sink});
  cluster::ClusterEventSink* sink =
      extra_sink == nullptr ? static_cast<cluster::ClusterEventSink*>(&stats)
                            : &fanout;
  std::vector<const cluster::WeightedClusterAgent*> agents;
  agents.reserve(scenario.n_nodes);
  for (auto& node : network.nodes()) {
    auto agent =
        std::make_unique<cluster::WeightedClusterAgent>(factory(sink));
    agents.push_back(agent.get());
    node->set_agent(std::move(agent));
  }

  cluster::ClusterSampler sampler(sim, agents);
  sampler.start(scenario.warmup, scenario.sample_period, scenario.sim_time);

  // The fault machinery is only instantiated when the scenario asks for it:
  // a fault-free run draws no "faults" substream, registers no loss layer
  // and schedules no monitor ticks, so its event trace and RNG consumption
  // are bit-identical to pre-fault-subsystem builds.
  std::unique_ptr<fault::Injector> injector;
  std::unique_ptr<cluster::ConvergenceMonitor> monitor;
  if (!scenario.faults.empty()) {
    fault::ScheduleSpec fault_spec = scenario.faults;
    if (fault_spec.begin == 0.0 && fault_spec.end == 0.0) {
      fault_spec.begin = scenario.warmup;
      fault_spec.end = scenario.sim_time;
    }
    injector = std::make_unique<fault::Injector>(
        network, fault::make_schedule(fault_spec, scenario.n_nodes, field,
                                      root.substream("faults")));
    monitor = std::make_unique<cluster::ConvergenceMonitor>(sim, network,
                                                            agents);
    injector->set_on_fault([mon = monitor.get()](const fault::FaultEvent& e) {
      mon->note_fault(e.at);
    });
    injector->arm();
    monitor->start(scenario.warmup, scenario.sample_period,
                   scenario.sim_time);
  }

  network.start();
  // The context must outlive the whole run, not just the hook call: hooks
  // routinely schedule events that capture it by reference and fire from
  // run_until (timeline recorder, routing probes, test instrumentation).
  LiveContext ctx{sim, network, agents};
  if (on_start != nullptr) {
    on_start(ctx);
  }
  sim.run_until(scenario.sim_time);
  stats.finish(scenario.sim_time);

  RunResult result;
  result.ch_changes = stats.clusterhead_changes();
  result.head_gains = stats.head_gains();
  result.head_losses = stats.head_losses();
  result.reaffiliations = stats.reaffiliations();
  result.mean_head_lifetime = stats.head_lifetimes().mean();
  result.avg_clusters = sampler.num_clusters().mean();
  result.avg_gateways = sampler.num_gateways().mean();
  result.avg_undecided = sampler.num_undecided().mean();
  result.avg_cluster_size = sampler.cluster_sizes().mean();
  result.mean_degree = network.stats().mean_degree();
  result.beacons_sent = network.stats().beacons_sent;
  result.hellos_delivered = network.stats().hellos_delivered;
  result.bytes_sent = network.stats().bytes_sent;
  result.events_executed = sim.events_executed();
  result.final_validation =
      cluster::validate_clusters(network, agents, scenario.sim_time);
  if (monitor != nullptr) {
    const cluster::ConvergenceMonitor::Summary s =
        monitor->finish(scenario.sim_time);
    result.faults_injected = s.faults_observed;
    result.recoveries = s.recovery.count();
    result.mean_recovery_s = s.recovery.mean();
    result.max_recovery_s = s.recovery.empty() ? 0.0 : s.recovery.max();
    result.unrecovered_disruptions = s.unrecovered_disruptions;
    result.orphaned_member_seconds = s.orphaned_member_seconds;
    result.convergence_samples = s.samples;
    result.violation_samples = s.violation_samples;
  }
  if (injector != nullptr) {
    result.fault_timeline.reserve(injector->timeline().size());
    for (const auto& applied : injector->timeline()) {
      result.fault_timeline.push_back(applied.event);
    }
  }
  return result;
}

}  // namespace manet::scenario
