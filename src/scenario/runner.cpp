#include "scenario/runner.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <future>
#include <mutex>
#include <ostream>
#include <thread>

#include "fault/fault.h"
#include "scenario/worker.h"
#include "util/assert.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace manet::scenario {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
      }
      out.push_back(c);
    }
  }
  return out;
}

std::string describe_exception(const std::exception_ptr& ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

// Serialized observability side of a grid execution: progress line, JSONL
// run log, user hook. Worker threads report here through finish_run().
class Reporter {
 public:
  Reporter(const RunnerOptions& options, std::size_t total)
      : options_(options) {
    meter_.start(total);
    if (!options_.run_log_path.empty()) {
      log_.open(options_.run_log_path, std::ios::trunc);
      MANET_CHECK(log_.is_open(),
                  "cannot open run log " << options_.run_log_path);
    }
  }

  void finish_run(const RunRecord* record, double sim_seconds,
                  double wall_seconds) {
    meter_.record_run(sim_seconds, wall_seconds);
    if (options_.progress == nullptr && options_.on_run == nullptr &&
        !log_.is_open()) {
      return;
    }
    std::lock_guard<std::mutex> lock(io_mu_);
    if (log_.is_open() && record != nullptr) {
      const RunResult& r = *record->result;
      log_ << "{\"point\":" << record->point_index << ",\"x\":" << record->x
           << ",\"algorithm\":\"" << json_escape(record->algorithm)
           << "\",\"replicate\":" << record->replicate
           << ",\"seed\":" << record->seed << ",\"status\":\""
           << json_escape(record->status) << "\"";
      if (!record->error.empty()) {
        // e.g. a quarantined cell whose verdict run succeeded: the row
        // carries both the result and what the farm saw.
        log_ << ",\"error\":\"" << json_escape(record->error) << "\"";
      }
      log_ << ",\"wall_s\":" << wall_seconds << ",\"sim_s\":" << sim_seconds
           << ",\"ch_changes\":" << r.ch_changes
           << ",\"reaffiliations\":" << r.reaffiliations
           << ",\"avg_clusters\":" << r.avg_clusters
           << ",\"mean_degree\":" << r.mean_degree;
      if (!r.fault_timeline.empty()) {
        log_ << ",\"faults_injected\":" << r.faults_injected
             << ",\"recoveries\":" << r.recoveries
             << ",\"mean_recovery_s\":" << r.mean_recovery_s
             << ",\"max_recovery_s\":" << r.max_recovery_s
             << ",\"unrecovered\":" << r.unrecovered_disruptions
             << ",\"orphaned_member_s\":" << r.orphaned_member_seconds
             << ",\"violation_samples\":" << r.violation_samples
             << ",\"faults\":[";
        for (std::size_t i = 0; i < r.fault_timeline.size(); ++i) {
          if (i > 0) {
            log_ << ",";
          }
          log_ << fault::to_json(r.fault_timeline[i]);
        }
        log_ << "]";
      }
      log_ << "}\n";
    }
    if (options_.on_run != nullptr && record != nullptr) {
      options_.on_run(*record);
    }
    if (options_.progress != nullptr) {
      const auto s = meter_.snapshot();
      *options_.progress << "\r[" << s.completed << "/" << s.total << "] "
                         << s.sim_rate() << " sim-s/s, mean run "
                         << s.mean_run_wall_s() << " s" << std::flush;
      printed_ = true;
    }
  }

  /// A run that produced no result: still counted for progress, logged
  /// with the record's status ("error", or "quarantined" for a cell whose
  /// in-process verdict re-run also aborted). Errors are rethrown by the
  /// Runner; quarantined rows are terminal — the grid completes around
  /// them, so this line *is* the cell's report.
  void finish_error(const RunRecord& record, double wall_seconds) {
    meter_.record_run(0.0, wall_seconds);
    std::lock_guard<std::mutex> lock(io_mu_);
    if (log_.is_open()) {
      log_ << "{\"point\":" << record.point_index << ",\"x\":" << record.x
           << ",\"algorithm\":\"" << json_escape(record.algorithm)
           << "\",\"replicate\":" << record.replicate
           << ",\"seed\":" << record.seed << ",\"status\":\""
           << json_escape(record.status) << "\""
           << ",\"wall_s\":" << wall_seconds << ",\"error\":\""
           << json_escape(record.error) << "\"}\n";
    }
  }

  /// End-of-sweep farm-health summary: one structured run-log line plus a
  /// human-readable line on the progress stream. Only called when the
  /// sweep actually ran on workers.
  void farm_summary(const FarmStats& stats) {
    std::lock_guard<std::mutex> lock(io_mu_);
    if (log_.is_open()) {
      log_ << "{\"farm_summary\":" << stats.to_snapshot().to_json()
           << "}\n";
    }
    if (options_.progress != nullptr) {
      if (printed_) {
        *options_.progress << "\n";
        printed_ = false;
      }
      *options_.progress << "farm: " << stats.respawns << " respawns, "
                         << stats.deadline_kills << " deadline kills, "
                         << stats.quarantined_cells << " quarantined, "
                         << stats.degraded_cells << " degraded"
                         << (stats.pool_collapsed ? " (pool collapsed)"
                                                  : "")
                         << std::endl;
    }
  }

  ~Reporter() {
    if (printed_) {
      *options_.progress << "\n";
    }
  }

 private:
  const RunnerOptions& options_;
  util::ProgressMeter meter_;
  std::mutex io_mu_;
  std::ofstream log_;
  bool printed_ = false;
};

}  // namespace

struct Runner::Job {
  std::size_t point_index = 0;
  double x = 0.0;
  std::string algorithm;
  int replicate = 0;
  Scenario scenario;                     // configured, seed already set
  const OptionsFactory* factory = nullptr;
  RunResult result;
  double wall_seconds = 0.0;
};

Runner::Runner(RunnerOptions options) : options_(std::move(options)) {
  jobs_ = resolve_jobs(options_.jobs);
  if (jobs_ > 1) {
    pool_ = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(jobs_));
  }
}

Runner::~Runner() = default;

int Runner::resolve_jobs(int requested) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("MANET_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void Runner::for_each(std::size_t count,
                      const std::function<void(std::size_t)>& fn) const {
  if (count == 0) {
    return;
  }
  Reporter reporter(options_, count);
  std::vector<std::exception_ptr> errors(count);
  std::atomic<bool> abort{false};
  const auto guarded = [&](std::size_t i) {
    if (abort.load(std::memory_order_relaxed)) {
      return;  // a sibling already failed; don't start new work
    }
    try {
      const auto t0 = std::chrono::steady_clock::now();
      fn(i);
      reporter.finish_run(nullptr, 0.0, seconds_since(t0));
    } catch (...) {
      errors[i] = std::current_exception();
      abort.store(true, std::memory_order_relaxed);
    }
  };
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < count; ++i) {
      guarded(i);
    }
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      futures.push_back(pool_->async([&guarded, i] { guarded(i); }));
    }
    for (auto& f : futures) {
      f.get();
    }
  }
  // Canonical error order: the lowest failing index wins, so the exception a
  // caller sees does not depend on scheduling.
  for (std::size_t i = 0; i < count; ++i) {
    if (errors[i] != nullptr) {
      std::rethrow_exception(errors[i]);
    }
  }
}

void Runner::execute(std::vector<Job>& jobs) const {
  cache_stats_ = CacheStats{};
  farm_stats_ = FarmStats{};
  if (jobs.empty()) {
    return;
  }
  Reporter reporter(options_, jobs.size());
  std::vector<std::exception_ptr> errors(jobs.size());
  std::atomic<bool> abort{false};

  // Default per-run trace tag: lets one sweep write distinct trace files
  // through the {tag} placeholder of ObsConfig::trace_path. Done up front
  // (serially) so the cache and the worker wire see the final Scenario.
  for (Job& job : jobs) {
    if (job.scenario.obs.tag.empty()) {
      job.scenario.obs.tag = "p" + std::to_string(job.point_index) + "_" +
                             job.algorithm + "_s" +
                             std::to_string(job.scenario.seed);
    }
  }

  const auto make_record = [](const Job& job) {
    RunRecord record;
    record.point_index = job.point_index;
    record.x = job.x;
    record.algorithm = job.algorithm;
    record.replicate = job.replicate;
    record.seed = job.scenario.seed;
    return record;
  };

  // Cache lookup phase: serial, on this thread (cheap — one small file
  // read per cell), so hit reporting and MANET_LOG stay single-threaded.
  // A run is cacheable only when its algorithm label is non-empty; the
  // label names the configuration in the cache key.
  std::unique_ptr<ResultCache> cache;
  std::vector<std::string> filenames;    // per job; empty = not cacheable
  std::vector<char> cached;              // per job; 1 = served from cache
  std::vector<std::string> cached_text;  // on-disk bytes of each hit
  if (!options_.cache_dir.empty()) {
    cache = std::make_unique<ResultCache>(options_.cache_dir);
    filenames.resize(jobs.size());
    cached.assign(jobs.size(), 0);
    cached_text.resize(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      Job& job = jobs[i];
      if (job.algorithm.empty()) {
        continue;
      }
      filenames[i] = cache_cell_filename(job.scenario, job.algorithm);
      if (auto hit = cache->load(filenames[i], &cached_text[i])) {
        job.result = std::move(*hit);
        job.wall_seconds = 0.0;
        cached[i] = 1;
        RunRecord record = make_record(job);
        record.status = "cached";
        record.result = &job.result;
        reporter.finish_run(&record, 0.0, 0.0);
      }
    }
  }

  std::vector<std::size_t> pending;
  pending.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (cached.empty() || cached[i] == 0) {
      pending.push_back(i);
    }
  }

  const auto store_cell = [&](std::size_t i) {
    if (cache != nullptr && !filenames[i].empty()) {
      const Job& job = jobs[i];
      cache->store(filenames[i], job.result,
                   encode_cell_meta(job.algorithm,
                                    canonical_scenario_text(job.scenario)));
    }
  };

  const auto guarded = [&](std::size_t i, const char* status = "ok") {
    if (abort.load(std::memory_order_relaxed)) {
      return;
    }
    Job& job = jobs[i];
    RunRecord record = make_record(job);
    record.status = status;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      job.result = run_scenario(job.scenario, *job.factory);
      job.wall_seconds = seconds_since(t0);
      record.wall_seconds = job.wall_seconds;
      record.result = &job.result;
      reporter.finish_run(&record, job.scenario.sim_time, job.wall_seconds);
      store_cell(i);
    } catch (...) {
      errors[i] = std::current_exception();
      abort.store(true, std::memory_order_relaxed);
      record.status = "error";
      record.error = describe_exception(errors[i]);
      record.wall_seconds = seconds_since(t0);
      reporter.finish_error(record, record.wall_seconds);
    }
  };

  if (options_.workers > 0 && !pending.empty()) {
    // Multi-process dispatch: ship each pending cell to a worker
    // subprocess as (algorithm name, canonical scenario text); the reply
    // is a cache cell record, decoded — and stored — on arrival. Cells
    // are *assigned* to workers racily, but results land by index and the
    // reduction below stays canonical, so output bytes are independent of
    // the worker count and scheduling.
    for (const std::size_t i : pending) {
      MANET_CHECK(cluster::is_known_algorithm(jobs[i].algorithm),
                  "--workers requires algorithms nameable across a process "
                  "boundary; '"
                      << jobs[i].algorithm
                      << "' is not known to cluster::options_by_name");
    }
    const std::string worker_bin = resolve_worker_bin(options_.worker_bin);
    std::vector<WorkerRequest> requests(pending.size());
    std::vector<std::chrono::steady_clock::time_point> starts(
        pending.size());
    for (std::size_t k = 0; k < pending.size(); ++k) {
      const Job& job = jobs[pending[k]];
      requests[k] = {job.algorithm,
                     canonical_scenario_text(job.scenario)};
    }
    FarmOptions farm = options_.farm;
    farm.apply_env();
    WorkerCallbacks callbacks;
    callbacks.on_dispatch = [&](std::size_t k) {
      starts[k] = std::chrono::steady_clock::now();
    };
    callbacks.should_abort = [&] {
      return abort.load(std::memory_order_relaxed);
    };
    // On-response handles successes only. Failures — quarantined cells,
    // in-band deterministic errors, undecodable "ok" payloads — are
    // resolved after the farm drains, serially and in canonical order, by
    // an in-process verdict re-run; a collapsed pool's never-executed
    // cells degrade to in-process execution. Either way the grid
    // completes, and every result still lands by index, so the reduction
    // below stays canonical.
    std::vector<std::string> decode_errors(pending.size());
    callbacks.on_response = [&](std::size_t k, const WorkerOutcome& out) {
      if (!out.cell.has_value()) {
        return;  // resolved by the post-drain quarantine pass
      }
      const std::size_t i = pending[k];
      Job& job = jobs[i];
      const double wall = seconds_since(starts[k]);
      try {
        job.result = decode_cell(*out.cell);
      } catch (const util::CheckError& e) {
        decode_errors[k] = e.what();  // quarantine candidate
        return;
      }
      RunRecord record = make_record(job);
      job.wall_seconds = wall;
      record.wall_seconds = wall;
      record.result = &job.result;
      reporter.finish_run(&record, job.scenario.sim_time, wall);
      store_cell(i);
    };
    const auto outcomes = run_jobs_on_workers(
        worker_bin, static_cast<std::size_t>(options_.workers), requests,
        callbacks, farm, &farm_stats_);

    std::vector<std::size_t> drain;  // pool-collapse leftovers
    for (std::size_t k = 0; k < outcomes.size(); ++k) {
      const std::size_t i = pending[k];
      const WorkerOutcome& out = outcomes[k];
      if (out.cell.has_value() && decode_errors[k].empty()) {
        continue;  // success, already reported and stored
      }
      if (!out.cell.has_value() && !out.error.has_value()) {
        drain.push_back(i);  // never executed: the pool collapsed
        continue;
      }
      // Quarantine: the farm gave up on this cell (attempt budget), the
      // worker reported a deterministic failure in-band, or the "ok"
      // payload would not decode. Re-execute once in-process for a
      // definitive verdict; the cell's run-log row is status=quarantined
      // either way, and the grid never fails on it.
      const std::string farm_error =
          out.cell.has_value()
              ? "undecodable worker response: " + decode_errors[k]
              : *out.error;
      if (!out.quarantined) {
        farm_stats_.quarantined_cells += 1;  // budget cases counted by farm
      }
      Job& job = jobs[i];
      RunRecord record = make_record(job);
      record.status = "quarantined";
      record.error = farm_error;
      const auto t0 = std::chrono::steady_clock::now();
      try {
        job.result = run_scenario(job.scenario, *job.factory);
        job.wall_seconds = seconds_since(t0);
        record.wall_seconds = job.wall_seconds;
        record.result = &job.result;
        reporter.finish_run(&record, job.scenario.sim_time,
                            job.wall_seconds);
        store_cell(i);
      } catch (...) {
        record.error = farm_error + "; in-process verdict: " +
                       describe_exception(std::current_exception());
        record.wall_seconds = seconds_since(t0);
        reporter.finish_error(record, record.wall_seconds);
      }
    }

    if (!drain.empty()) {
      farm_stats_.degraded_cells += drain.size();
      if (pool_ == nullptr) {
        for (const std::size_t i : drain) {
          guarded(i, "degraded");
        }
      } else {
        std::vector<std::future<void>> futures;
        futures.reserve(drain.size());
        for (const std::size_t i : drain) {
          futures.push_back(
              pool_->async([&guarded, i] { guarded(i, "degraded"); }));
        }
        for (auto& f : futures) {
          f.get();
        }
      }
    }
    reporter.farm_summary(farm_stats_);
  } else if (pool_ == nullptr) {
    for (const std::size_t i : pending) {
      guarded(i);
    }
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(pending.size());
    for (const std::size_t i : pending) {
      futures.push_back(pool_->async([&guarded, i] { guarded(i); }));
    }
    for (auto& f : futures) {
      f.get();
    }
  }

  // --resume byte-verification: re-simulate a sample of the cache hits and
  // compare against the exact on-disk bytes. Catches a stale cache whose
  // epoch was not bumped, cells from a diverged build, or hand edits that
  // kept the digest consistent.
  if (cache != nullptr && options_.resume && options_.resume_verify != 0 &&
      !abort.load(std::memory_order_relaxed)) {
    std::vector<std::size_t> hits;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (cached[i] != 0) {
        hits.push_back(i);
      }
    }
    if (!hits.empty()) {
      const std::size_t want =
          options_.resume_verify < 0
              ? std::max<std::size_t>(1, hits.size() / 16)
              : std::min<std::size_t>(
                    static_cast<std::size_t>(options_.resume_verify),
                    hits.size());
      for (std::size_t v = 0; v < want; ++v) {
        const std::size_t i = hits[v * hits.size() / want];
        const RunResult fresh =
            run_scenario(jobs[i].scenario, *jobs[i].factory);
        const std::string fresh_text = encode_cell(fresh);
        MANET_CHECK(fresh_text == cached_text[i],
                    "resume verification failed: cached cell "
                        << filenames[i]
                        << " is not byte-identical to recomputation — "
                        << first_cell_difference(fresh_text, cached_text[i])
                        << " (stale cache epoch or diverged build?)");
        cache->note_verified();
      }
    }
  }
  if (cache != nullptr) {
    cache_stats_ = cache->stats();
  }
  // The metrics log is written after the grid drains, in job (canonical)
  // order: byte-identical output for any worker count, unlike the
  // completion-ordered run log.
  if (!options_.metrics_log_path.empty()) {
    std::ofstream mlog(options_.metrics_log_path, std::ios::trunc);
    MANET_CHECK(mlog.is_open(),
                "cannot open metrics log " << options_.metrics_log_path);
    for (const Job& job : jobs) {
      if (job.result.metrics.empty()) {
        continue;  // errored run, or Scenario::obs.metrics off
      }
      mlog << "{\"point\":" << job.point_index << ",\"x\":" << job.x
           << ",\"algorithm\":\"" << json_escape(job.algorithm)
           << "\",\"replicate\":" << job.replicate
           << ",\"seed\":" << job.scenario.seed
           << ",\"final_heads\":" << job.result.final_heads
           << ",\"metrics\":" << job.result.metrics.to_json() << "}\n";
    }
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (errors[i] != nullptr) {
      std::rethrow_exception(errors[i]);
    }
  }
}

SweepResult Runner::run(const SweepSpec& spec) const {
  MANET_CHECK(!spec.xs.empty(), "empty sweep");
  MANET_CHECK(!spec.algorithms.empty(), "no algorithms");
  MANET_CHECK(!spec.fields.empty(), "no fields");
  MANET_CHECK(spec.replications > 0,
              "replications=" << spec.replications);
  for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
    for (std::size_t b = a + 1; b < spec.algorithms.size(); ++b) {
      MANET_CHECK(spec.algorithms[a].name != spec.algorithms[b].name,
                  "duplicate algorithm name " << spec.algorithms[a].name);
    }
  }

  // Specialize every sweep point serially on this thread, so `configure`
  // needs no thread safety; jobs then only vary the seed.
  std::vector<Scenario> configured;
  configured.reserve(spec.xs.size());
  for (const double x : spec.xs) {
    Scenario s = spec.base;
    if (spec.configure != nullptr) {
      spec.configure(s, x);
    }
    configured.push_back(std::move(s));
  }

  const auto reps = static_cast<std::size_t>(spec.replications);
  std::vector<Job> jobs;
  jobs.reserve(spec.xs.size() * spec.algorithms.size() * reps);
  for (std::size_t p = 0; p < spec.xs.size(); ++p) {
    for (const auto& alg : spec.algorithms) {
      for (std::size_t k = 0; k < reps; ++k) {
        Job job;
        job.point_index = p;
        job.x = spec.xs[p];
        job.algorithm = alg.name;
        job.replicate = static_cast<int>(k);
        job.scenario = configured[p];
        job.scenario.seed = spec.base.seed + static_cast<std::uint64_t>(k);
        job.factory = &alg.factory;
        jobs.push_back(std::move(job));
      }
    }
  }
  execute(jobs);

  // Reduce in canonical (point, algorithm, seed) order — the job list is
  // already laid out that way, so aggregation arithmetic is identical to a
  // serial run no matter which thread produced each result.
  SweepResult result;
  result.field_names.reserve(spec.fields.size());
  for (const auto& [name, fn] : spec.fields) {
    (void)fn;
    result.field_names.push_back(name);
  }
  result.points.resize(spec.xs.size());
  std::size_t j = 0;
  for (std::size_t p = 0; p < spec.xs.size(); ++p) {
    auto& point = result.points[p];
    point.x = spec.xs[p];
    for (const auto& alg : spec.algorithms) {
      auto& cell = point.algorithms[alg.name];
      const std::size_t first = j;
      j += reps;
      for (const auto& [name, field] : spec.fields) {
        auto& raw = cell.raw[name];
        raw.reserve(reps);
        for (std::size_t k = 0; k < reps; ++k) {
          raw.push_back(field(jobs[first + k].result));
        }
        cell.values[name] = util::mean_ci95(raw);
      }
    }
  }
  return result;
}

std::vector<RunResult> Runner::replications(const Scenario& scenario,
                                            const OptionsFactory& factory,
                                            int replications,
                                            const std::string& label) const {
  MANET_CHECK(replications > 0, "replications=" << replications);
  const auto reps = static_cast<std::size_t>(replications);
  std::vector<Job> jobs(reps);
  for (std::size_t k = 0; k < reps; ++k) {
    Job& job = jobs[k];
    job.algorithm = label;
    job.replicate = static_cast<int>(k);
    job.scenario = scenario;
    job.scenario.seed = scenario.seed + static_cast<std::uint64_t>(k);
    job.factory = &factory;
  }
  execute(jobs);
  std::vector<RunResult> results;
  results.reserve(reps);
  for (auto& job : jobs) {
    results.push_back(std::move(job.result));
  }
  return results;
}

std::vector<std::vector<RunResult>> Runner::run_matrix(
    const Scenario& scenario, const std::vector<AlgorithmSpec>& algorithms,
    int replications) const {
  MANET_CHECK(!algorithms.empty(), "no algorithms");
  MANET_CHECK(replications > 0, "replications=" << replications);
  const auto reps = static_cast<std::size_t>(replications);
  std::vector<Job> jobs;
  jobs.reserve(algorithms.size() * reps);
  for (const auto& alg : algorithms) {
    for (std::size_t k = 0; k < reps; ++k) {
      Job job;
      job.algorithm = alg.name;
      job.replicate = static_cast<int>(k);
      job.scenario = scenario;
      job.scenario.seed = scenario.seed + static_cast<std::uint64_t>(k);
      job.factory = &alg.factory;
      jobs.push_back(std::move(job));
    }
  }
  execute(jobs);
  std::vector<std::vector<RunResult>> results(algorithms.size());
  std::size_t j = 0;
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    results[a].reserve(reps);
    for (std::size_t k = 0; k < reps; ++k) {
      results[a].push_back(std::move(jobs[j++].result));
    }
  }
  return results;
}

std::vector<SweepPoint> SweepResult::series(const std::string& field) const {
  std::vector<SweepPoint> out;
  out.reserve(points.size());
  for (const auto& p : points) {
    SweepPoint sp;
    sp.x = p.x;
    for (const auto& [alg, cell] : p.algorithms) {
      sp.values[alg] = cell.values.at(field);
      sp.raw[alg] = cell.raw.at(field);
    }
    out.push_back(std::move(sp));
  }
  return out;
}

std::vector<MultiSweepPoint> SweepResult::multi() const {
  std::vector<MultiSweepPoint> out;
  out.reserve(points.size());
  for (const auto& p : points) {
    MultiSweepPoint mp;
    mp.x = p.x;
    for (const auto& [alg, cell] : p.algorithms) {
      mp.values[alg] = cell.values;
    }
    out.push_back(std::move(mp));
  }
  return out;
}

}  // namespace manet::scenario
