#include "scenario/timeline.h"

#include <algorithm>
#include <ostream>

#include "util/assert.h"

namespace manet::scenario {

void TimelineRecorder::on_role_change(sim::Time t, net::NodeId node,
                                      cluster::Role old_role,
                                      cluster::Role new_role) {
  role_events_.push_back({t, node, old_role, new_role});
}

void TimelineRecorder::on_affiliation_change(sim::Time t, net::NodeId node,
                                             net::NodeId old_head,
                                             net::NodeId new_head) {
  affiliation_events_.push_back({t, node, old_head, new_head});
}

void TimelineRecorder::snapshot(LiveContext& ctx) {
  const sim::Time now = ctx.sim.now();
  nodes_per_snapshot_ = ctx.network.size();
  for (std::size_t i = 0; i < ctx.network.size(); ++i) {
    const auto* agent = ctx.agents[i];
    SnapshotRow row;
    row.t = now;
    row.node = static_cast<net::NodeId>(i);
    row.pos = ctx.network.node(row.node).position(now);
    row.role = agent->role();
    row.head = agent->cluster_head();
    row.gateway = agent->is_gateway();
    row.metric = agent->metric();
    snapshots_.push_back(row);
  }
}

void TimelineRecorder::schedule_snapshots(LiveContext& ctx, double period,
                                          double until) {
  MANET_CHECK(period > 0.0, "snapshot period=" << period);
  for (double t = 0.0; t <= until + 1e-9; t += period) {
    ctx.sim.schedule_at(t, [this, &ctx] {
      MANET_ASSERT_COMMIT_ROLE();
      snapshot(ctx);
    });
  }
}

net::NodeId TimelineRecorder::head_at(sim::Time t, net::NodeId node) const {
  // Snapshots are appended in time order, nodes_per_snapshot_ rows each.
  net::NodeId head = net::kInvalidNode;
  for (const auto& row : snapshots_) {
    if (row.t > t) {
      break;
    }
    if (row.node == node) {
      head = row.head;
    }
  }
  return head;
}

void TimelineRecorder::write_events_csv(std::ostream& os) const {
  os << "t,node,kind,from,to\n";
  os.precision(12);
  // Merge the two event streams in time order for a single readable log.
  std::size_t ri = 0, ai = 0;
  const auto emit_role = [&](const RoleEvent& e) {
    os << e.t << ',' << e.node << ",role," << cluster::role_name(e.old_role)
       << ',' << cluster::role_name(e.new_role) << '\n';
  };
  const auto emit_affil = [&](const AffiliationEvent& e) {
    const auto name = [](net::NodeId id) {
      return id == net::kInvalidNode ? std::string("-")
                                     : std::to_string(id);
    };
    os << e.t << ',' << e.node << ",affiliation," << name(e.old_head) << ','
       << name(e.new_head) << '\n';
  };
  while (ri < role_events_.size() || ai < affiliation_events_.size()) {
    const bool take_role =
        ai >= affiliation_events_.size() ||
        (ri < role_events_.size() &&
         role_events_[ri].t <= affiliation_events_[ai].t);
    if (take_role) {
      emit_role(role_events_[ri++]);
    } else {
      emit_affil(affiliation_events_[ai++]);
    }
  }
}

void TimelineRecorder::write_snapshots_csv(std::ostream& os) const {
  os << "t,node,x,y,role,head,gateway,metric\n";
  os.precision(12);
  for (const auto& row : snapshots_) {
    os << row.t << ',' << row.node << ',' << row.pos.x << ',' << row.pos.y
       << ',' << cluster::role_name(row.role) << ',';
    if (row.head == net::kInvalidNode) {
      os << '-';
    } else {
      os << row.head;
    }
    os << ',' << (row.gateway ? 1 : 0) << ',' << row.metric << '\n';
  }
}

}  // namespace manet::scenario
