#include "scenario/config.h"

#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/assert.h"
#include "util/strings.h"

namespace manet::scenario {

namespace {

double parse_number(const std::string& value, int line_no) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  MANET_CHECK(end == value.c_str() + value.size(),
              "config line " << line_no << ": not a number: '" << value
                             << "'");
  return v;
}

// "670x670" or "670" (square).
geom::Rect parse_field(const std::string& value, int line_no) {
  const auto x = value.find('x');
  if (x == std::string::npos) {
    const double side = parse_number(value, line_no);
    return geom::Rect(side, side);
  }
  return geom::Rect(parse_number(value.substr(0, x), line_no),
                    parse_number(value.substr(x + 1), line_no));
}

}  // namespace

Scenario read_config(std::istream& is) {
  Scenario s;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and whitespace.
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.erase(hash);
    }
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) {
      continue;
    }
    const auto eq = trimmed.find('=');
    MANET_CHECK(eq != std::string::npos,
                "config line " << line_no << ": expected 'key = value'");
    const std::string key =
        util::to_lower(util::trim(trimmed.substr(0, eq)));
    const std::string value{util::trim(trimmed.substr(eq + 1))};
    MANET_CHECK(!value.empty(), "config line " << line_no << ": empty value");

    const auto num = [&] { return parse_number(value, line_no); };
    if (key == "n_nodes") {
      s.n_nodes = static_cast<std::size_t>(num());
    } else if (key == "field") {
      s.fleet.field = parse_field(value, line_no);
    } else if (key == "mobility") {
      s.fleet.kind = mobility::parse_model_kind(value);
    } else if (key == "max_speed") {
      s.fleet.max_speed = num();
    } else if (key == "min_speed") {
      s.fleet.min_speed = num();
    } else if (key == "pause_time") {
      s.fleet.pause_time = num();
    } else if (key == "walk_epoch") {
      s.fleet.walk_epoch = num();
    } else if (key == "gm_alpha") {
      s.fleet.gm_alpha = num();
    } else if (key == "gm_sigma") {
      s.fleet.gm_sigma = num();
    } else if (key == "rpgm_group_size") {
      s.fleet.rpgm_group_size = static_cast<std::size_t>(num());
    } else if (key == "rpgm_offset_radius") {
      s.fleet.rpgm_offset_radius = num();
    } else if (key == "rpgm_offset_speed") {
      s.fleet.rpgm_offset_speed = num();
    } else if (key == "highway_length") {
      s.fleet.highway.length = num();
    } else if (key == "highway_lanes_per_direction") {
      s.fleet.highway.lanes_per_direction = static_cast<int>(num());
    } else if (key == "highway_mean_speed") {
      s.fleet.highway.mean_speed = num();
    } else if (key == "highway_speed_stddev") {
      s.fleet.highway.speed_stddev = num();
    } else if (key == "tx_range") {
      s.tx_range = num();
    } else if (key == "sim_time") {
      s.sim_time = num();
    } else if (key == "broadcast_interval") {
      s.net.broadcast_interval = num();
    } else if (key == "neighbor_timeout") {
      s.net.neighbor_timeout = num();
    } else if (key == "packet_loss") {
      s.net.packet_loss = num();
    } else if (key == "collision_window") {
      s.net.collision_window = num();
    } else if (key == "propagation") {
      s.propagation = value;
    } else if (key == "pathloss_exponent") {
      s.pathloss_exponent = num();
    } else if (key == "shadowing_sigma_db") {
      s.shadowing_sigma_db = num();
    } else if (key == "energy") {
      s.energy.enabled = num() != 0.0;
    } else if (key == "energy_capacity_j") {
      s.energy.capacity_j = num();
    } else if (key == "energy_capacity_jitter") {
      s.energy.capacity_jitter = num();
    } else if (key == "energy_idle_drain_w") {
      s.energy.idle_drain_w = num();
    } else if (key == "energy_hello_tx_cost_j") {
      s.energy.hello_tx_cost_j = num();
    } else if (key == "energy_hello_rx_cost_j") {
      s.energy.hello_rx_cost_j = num();
    } else if (key == "energy_msg_tx_cost_j") {
      s.energy.msg_tx_cost_j = num();
    } else if (key == "energy_msg_rx_cost_j") {
      s.energy.msg_rx_cost_j = num();
    } else if (key == "seed") {
      s.seed = static_cast<std::uint64_t>(num());
    } else if (key == "warmup") {
      s.warmup = num();
    } else if (key == "sample_period") {
      s.sample_period = num();
    } else {
      MANET_CHECK(false,
                  "config line " << line_no << ": unknown key '" << key
                                 << "'");
    }
  }
  return s;
}

Scenario read_config_file(const std::string& path) {
  std::ifstream in(path);
  MANET_CHECK(in.is_open(), "cannot open config file: " << path);
  return read_config(in);
}

void write_config(std::ostream& os, const Scenario& s) {
  os.precision(12);
  os << "# MANET clustering scenario (MOBIC reproduction)\n"
     << "n_nodes = " << s.n_nodes << '\n'
     << "field = " << s.fleet.field.width << 'x' << s.fleet.field.height
     << '\n'
     << "mobility = " << mobility::model_kind_name(s.fleet.kind) << '\n'
     << "max_speed = " << s.fleet.max_speed << '\n'
     << "min_speed = " << s.fleet.min_speed << '\n'
     << "pause_time = " << s.fleet.pause_time << '\n'
     << "walk_epoch = " << s.fleet.walk_epoch << '\n'
     << "gm_alpha = " << s.fleet.gm_alpha << '\n'
     << "gm_sigma = " << s.fleet.gm_sigma << '\n'
     << "rpgm_group_size = " << s.fleet.rpgm_group_size << '\n'
     << "rpgm_offset_radius = " << s.fleet.rpgm_offset_radius << '\n'
     << "rpgm_offset_speed = " << s.fleet.rpgm_offset_speed << '\n'
     << "highway_length = " << s.fleet.highway.length << '\n'
     << "highway_lanes_per_direction = "
     << s.fleet.highway.lanes_per_direction << '\n'
     << "highway_mean_speed = " << s.fleet.highway.mean_speed << '\n'
     << "highway_speed_stddev = " << s.fleet.highway.speed_stddev << '\n'
     << "tx_range = " << s.tx_range << '\n'
     << "sim_time = " << s.sim_time << '\n'
     << "broadcast_interval = " << s.net.broadcast_interval << '\n'
     << "neighbor_timeout = " << s.net.neighbor_timeout << '\n'
     << "packet_loss = " << s.net.packet_loss << '\n'
     << "collision_window = " << s.net.collision_window << '\n'
     << "propagation = " << s.propagation << '\n'
     << "pathloss_exponent = " << s.pathloss_exponent << '\n'
     << "shadowing_sigma_db = " << s.shadowing_sigma_db << '\n'
     << "seed = " << s.seed << '\n'
     << "warmup = " << s.warmup << '\n'
     << "sample_period = " << s.sample_period << '\n';
  // Battery keys only appear on energy scenarios so pre-energy configs stay
  // byte-identical (and round-trip through read_config unchanged).
  if (s.energy.enabled) {
    os << "energy = 1\n"
       << "energy_capacity_j = " << s.energy.capacity_j << '\n'
       << "energy_capacity_jitter = " << s.energy.capacity_jitter << '\n'
       << "energy_idle_drain_w = " << s.energy.idle_drain_w << '\n'
       << "energy_hello_tx_cost_j = " << s.energy.hello_tx_cost_j << '\n'
       << "energy_hello_rx_cost_j = " << s.energy.hello_rx_cost_j << '\n'
       << "energy_msg_tx_cost_j = " << s.energy.msg_tx_cost_j << '\n'
       << "energy_msg_rx_cost_j = " << s.energy.msg_rx_cost_j << '\n';
  }
}

}  // namespace manet::scenario
