// The experiment runner: one declarative SweepSpec describing a
// (point x algorithm x seed) grid, executed by a Runner that fans every run
// out to a work-stealing thread pool and reduces results in canonical
// (point, algorithm, seed) order — output is bit-for-bit identical to a
// serial run regardless of thread count (MRIP: each DES run stays
// single-threaded and deterministic; only independent replications execute
// concurrently).
//
//   SweepSpec spec;
//   spec.base = paper_scenario();
//   spec.xs = default_tx_sweep();
//   spec.configure = [](Scenario& s, double tx) { s.tx_range = tx; };
//   spec.algorithms = paper_algorithms();
//   spec.fields = {{"cs", field_ch_changes}};
//   spec.replications = 5;
//   const SweepResult result = Runner(options).run(spec);
//   const auto series = result.series("cs");
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "scenario/cache.h"
#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "scenario/worker.h"
#include "util/progress.h"

namespace manet::util {
class ThreadPool;
}

namespace manet::scenario {

/// A full experiment grid: for every x in `xs`, `configure` specializes a
/// copy of `base`, then every algorithm runs `replications` seeds
/// (seed = base.seed + k) and every field is aggregated from the same runs.
struct SweepSpec {
  Scenario base;
  std::vector<double> xs;
  /// Called once per sweep point, on the caller's thread, before any run.
  std::function<void(Scenario&, double)> configure;
  std::vector<AlgorithmSpec> algorithms;
  std::vector<std::pair<std::string, FieldFn>> fields;
  int replications = 5;
};

/// One finished run, as seen by observability hooks and the JSONL run log.
struct RunRecord {
  std::size_t point_index = 0;
  double x = 0.0;
  std::string algorithm;
  int replicate = 0;        // seed offset k
  std::uint64_t seed = 0;   // the actual per-run seed
  double wall_seconds = 0.0;
  /// "ok"; "cached" when served from the result cache (wall_seconds 0);
  /// "error" when the run threw (the exception is still rethrown to the
  /// caller after the grid drains; the log line is observability);
  /// "degraded" when the worker pool collapsed and the cell was drained
  /// in-process; "quarantined" when the cell exhausted the farm's attempt
  /// budget — the row then reflects the in-process verdict re-run (result
  /// fields when the verdict succeeded, an error when it aborted; either
  /// way the grid completes instead of failing).
  std::string status = "ok";
  std::string error;                  // what() of a failed run
  const RunResult* result = nullptr;  // valid only during the callback
};

struct RunnerOptions {
  /// Worker threads. 0 = auto: $MANET_JOBS if set, else the hardware
  /// concurrency. 1 runs inline on the calling thread (no pool).
  int jobs = 0;
  /// When set, a live one-line progress report (runs completed, sim-s/s
  /// throughput, mean per-run wall time) is rewritten on this stream as runs
  /// finish. Point it at stderr so stdout tables/CSV stay byte-identical.
  std::ostream* progress = nullptr;
  /// When non-empty, one JSON object per finished run is appended here
  /// (JSONL), in completion order — an observability log, not an output.
  std::string run_log_path;
  /// When non-empty, one JSON object per finished run — identity fields
  /// plus the full obs::Snapshot — is written here (JSONL) after the grid
  /// drains, in canonical (point, algorithm, seed) order. Unlike the run
  /// log, the byte stream is identical for any `jobs` value. Runs with
  /// Scenario::obs.metrics disabled are skipped.
  std::string metrics_log_path;
  /// Optional per-run hook, invoked serially (under a lock) as runs finish.
  /// Completion order is nondeterministic under jobs > 1.
  std::function<void(const RunRecord&)> on_run;

  // --- sweep-farm mode (scenario/cache.h, scenario/worker.h) ---

  /// When non-empty, a content-addressed result cache rooted here is
  /// consulted before dispatch (hits are served without simulating,
  /// status="cached") and every computed cell is stored into it. Only runs
  /// with a non-empty algorithm label are cacheable — the label is the
  /// algorithm's identity in the cache key, so it must uniquely name the
  /// configuration. Results are byte-identical with or without a cache.
  std::string cache_dir;
  /// Checkpoint/resume mode (needs cache_dir): after the grid drains, a
  /// sample of the cache hits is re-simulated and byte-compared against
  /// the on-disk cells — cheap insurance that the resumed state matches
  /// what this build computes. Throws CheckError on any mismatch.
  bool resume = false;
  /// Resume verification sample size: -1 = auto (1/16 of the hits, at
  /// least one), 0 = skip verification, N = verify min(N, hits) cells.
  int resume_verify = -1;
  /// > 0: dispatch uncached cells to this many worker subprocesses
  /// (`manetsim --worker`) instead of in-process threads. Requires every
  /// algorithm label to be nameable (cluster::is_known_algorithm) so it
  /// can cross the process boundary. Reduction stays canonical: output is
  /// byte-identical for any workers/jobs combination.
  int workers = 0;
  /// Worker binary; empty = auto ($MANET_WORKER_BIN, then a manetsim next
  /// to the current executable). See worker.h resolve_worker_bin().
  std::string worker_bin;
  /// Farm self-healing knobs (deadlines, backoff, attempt budgets).
  /// $MANET_FARM_* environment overrides are applied on top at execution
  /// time, so CI and tests can tune a farm they cannot construct.
  FarmOptions farm;
};

/// Aggregated sweep results in canonical order, with per-seed raw samples.
struct SweepResult {
  /// One (x, algorithm) cell: per-field aggregate + per-seed samples.
  struct Cell {
    std::map<std::string, util::MeanCI> values;           // field -> mean/CI
    std::map<std::string, std::vector<double>> raw;       // field -> samples
  };
  struct Point {
    double x = 0.0;
    std::map<std::string, Cell> algorithms;               // name -> cell
  };

  std::vector<std::string> field_names;  // spec order
  std::vector<Point> points;             // xs order

  /// Projects one field as the classic single-field series (values + raw).
  std::vector<SweepPoint> series(const std::string& field) const;
  /// Projects every field as the classic multi-field series.
  std::vector<MultiSweepPoint> multi() const;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = {});
  ~Runner();

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  /// The resolved worker count this Runner executes with.
  int jobs() const { return jobs_; }

  /// Runs the full grid and reduces in canonical order.
  SweepResult run(const SweepSpec& spec) const;

  /// `replications` seeds of `scenario` (seed = scenario.seed + k),
  /// results in seed order.
  std::vector<RunResult> replications(const Scenario& scenario,
                                      const OptionsFactory& factory,
                                      int replications,
                                      const std::string& label = "") const;

  /// Every (algorithm, seed) combination of one scenario, concurrently;
  /// result[a][k] follows the input order.
  std::vector<std::vector<RunResult>> run_matrix(
      const Scenario& scenario, const std::vector<AlgorithmSpec>& algorithms,
      int replications) const;

  /// Low-level escape hatch: executes fn(0..count-1) on the pool. `fn` must
  /// be thread-safe; if any call throws, the exception of the lowest failing
  /// index is rethrown after the remaining started jobs finish. Reduce by
  /// index, never by completion order, to stay deterministic.
  void for_each(std::size_t count,
                const std::function<void(std::size_t)>& fn) const;

  /// Typed convenience over for_each(): results in index order.
  template <typename T>
  std::vector<T> map(std::size_t count,
                     const std::function<T(std::size_t)>& fn) const {
    std::vector<T> results(count);
    for_each(count, [&](std::size_t i) { results[i] = fn(i); });
    return results;
  }

  /// Resolves a jobs request: explicit value > $MANET_JOBS > hardware.
  static int resolve_jobs(int requested);

  /// Cache counters of the most recent grid execution (all zero when
  /// RunnerOptions::cache_dir is empty).
  CacheStats cache_stats() const { return cache_stats_; }

  /// Farm-health counters of the most recent grid execution (all zero when
  /// RunnerOptions::workers is 0): respawns, deadline kills, quarantined
  /// cells, degraded in-process drains. Also summarized at end of sweep on
  /// the progress stream and as a "farm_summary" run-log line.
  FarmStats farm_stats() const { return farm_stats_; }

 private:
  struct Job;  // one (point, algorithm, seed) cell of a grid

  // Executes jobs (filling Job::result/wall_seconds), driving progress,
  // the run log, and the on_run hook.
  void execute(std::vector<Job>& jobs) const;

  RunnerOptions options_;
  int jobs_ = 1;
  std::unique_ptr<util::ThreadPool> pool_;  // null when jobs_ == 1
  mutable CacheStats cache_stats_;
  mutable FarmStats farm_stats_;
};

}  // namespace manet::scenario
