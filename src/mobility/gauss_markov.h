// Gauss–Markov mobility: velocity evolves as a discretized
// Ornstein–Uhlenbeck process, giving temporally correlated motion — smoother
// than random walk, used in robustness ablations.
//
//   v[n+1] = a * v[n] + (1 - a) * v_mean + sigma * sqrt(1 - a^2) * w[n]
//
// per axis, with reflection at the field boundary (the mean heading flips
// with the bounce so nodes do not hug walls).
#pragma once

#include "mobility/mobility_model.h"
#include "util/rng.h"
#include "util/thread_role.h"

namespace manet::mobility {

struct GaussMarkovParams {
  geom::Rect field;
  double mean_speed = 10.0;   // m/s; magnitude of the long-run velocity
  double alpha = 0.85;        // memory in [0, 1): 0 = IID, ->1 = straight line
  double sigma = 3.0;         // m/s; randomness scale
  double step = 1.0;          // s between velocity updates
};

class GaussMarkov final : public LegBasedModel {
 public:
  GaussMarkov(const GaussMarkovParams& params, util::Rng rng);

 protected:
  Leg next_leg(const Leg& prev) MANET_COMMIT_ONLY override;

 private:
  Leg step_leg(sim::Time t_begin, geom::Vec2 from);

  GaussMarkovParams params_;
  util::Rng rng_;
  geom::Vec2 v_;       // current velocity
  geom::Vec2 v_mean_;  // long-run mean velocity (heading flips on bounce)
};

}  // namespace manet::mobility
