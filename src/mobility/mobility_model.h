// Mobility model interface.
//
// Models are sampled lazily by the simulator: position(t) may be called with
// any non-decreasing sequence of times (repeats allowed). This lets waypoint
// models generate their itinerary on demand from a per-node RNG substream,
// which keeps runs reproducible regardless of how often they are sampled.
//
// Sharded runs (net::ShardPlanner) additionally sample positions from worker
// threads. Models themselves NEVER run on workers: the planner unrolls the
// itinerary ahead of time — on the simulation thread, at an epoch barrier —
// into flat structure-of-arrays leg tables via unroll_to()/copy_legs(), and
// workers interpolate those copies with arithmetic bit-identical to
// position(). A model that cannot express its motion as straight-line legs
// (group/trace models) reports supports_unroll() == false and the whole run
// falls back to serial execution.
#pragma once

#include <memory>
#include <vector>

#include "geom/rect.h"
#include "geom/vec2.h"
#include "sim/event_queue.h"
#include "util/thread_role.h"

namespace manet::mobility {

/// One straight-line constant-speed motion segment as exported to shard
/// planners; `from == to` models a pause.
struct MotionLeg {
  sim::Time t_begin = 0.0;
  sim::Time t_end = 0.0;
  geom::Vec2 from;
  geom::Vec2 to;
};

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Node position at time `t` (seconds). Query times must be
  /// non-decreasing across calls.
  // position()/velocity()/unroll_to() advance the model's leg window
  // and RNG substream — commit-only (workers interpolate the planner's
  // SoA copies instead; see file comment). copy_legs() is const and
  // role-free.
  virtual geom::Vec2 position(sim::Time t) MANET_COMMIT_ONLY = 0;

  /// Instantaneous velocity at time `t` (m/s). Same monotonicity contract;
  /// typically called right after position(t).
  virtual geom::Vec2 velocity(sim::Time t) MANET_COMMIT_ONLY = 0;

  /// True when the itinerary can be unrolled into MotionLegs for
  /// worker-side sampling (see file comment). Default: no.
  virtual bool supports_unroll() const { return false; }

  /// Extends the generated itinerary to cover at least [now, horizon].
  /// Only called when supports_unroll(); advances any lazy generation (and
  /// its RNG substream) ahead of the sampled time — legal because leg
  /// generation draws only from the model's private stream.
  virtual void unroll_to(sim::Time horizon) MANET_COMMIT_ONLY;

  /// Appends every leg overlapping [from, to] to `out`. Requires a prior
  /// unroll_to(to); does not advance generation.
  virtual void copy_legs(sim::Time from, sim::Time to,
                         std::vector<MotionLeg>& out) const;
};

/// A node that never moves.
class StaticModel final : public MobilityModel {
 public:
  explicit StaticModel(geom::Vec2 pos) : pos_(pos) {}

  geom::Vec2 position(sim::Time) MANET_COMMIT_ONLY override { return pos_; }
  geom::Vec2 velocity(sim::Time) MANET_COMMIT_ONLY override { return {}; }

  bool supports_unroll() const override { return true; }
  void unroll_to(sim::Time) MANET_COMMIT_ONLY override {}
  void copy_legs(sim::Time from, sim::Time to,
                 std::vector<MotionLeg>& out) const override {
    out.push_back({from, to, pos_, pos_});
  }

 private:
  geom::Vec2 pos_;
};

/// Base for models whose motion decomposes into straight-line legs
/// (random waypoint, random walk, random direction, highway...). Subclasses
/// implement next_leg() to extend the itinerary; the base interpolates.
///
/// The itinerary is kept as a sliding window of legs: serial queries trim
/// it to the current leg (vector capacity reused, so the steady-state path
/// stays allocation-free), while unroll_to() grows it ahead for shard
/// planners without disturbing the interpolation arithmetic.
class LegBasedModel : public MobilityModel {
 public:
  geom::Vec2 position(sim::Time t) MANET_COMMIT_ONLY final;
  geom::Vec2 velocity(sim::Time t) MANET_COMMIT_ONLY final;

  bool supports_unroll() const final { return true; }
  void unroll_to(sim::Time horizon) MANET_COMMIT_ONLY final;
  void copy_legs(sim::Time from, sim::Time to,
                 std::vector<MotionLeg>& out) const final;

 protected:
  /// Subclass-facing alias predating MotionLeg; same layout, same meaning.
  using Leg = MotionLeg;

  /// Produces the leg that starts where `prev` ended, at time prev.t_end.
  /// Must return a leg with t_end > t_begin (use a tiny pause if needed).
  virtual Leg next_leg(const Leg& prev) MANET_COMMIT_ONLY = 0;

  /// Subclass constructors seed the itinerary with the initial leg.
  void set_initial_leg(Leg leg) MANET_COMMIT_ONLY;

 private:
  /// Advances to (and returns) the leg containing `t`, generating and
  /// trimming as needed.
  const Leg& locate(sim::Time t) MANET_COMMIT_ONLY;
  void generate_next() MANET_COMMIT_ONLY;

  std::vector<Leg> window_;  // legs [cur_ ..] are current-or-future
  std::size_t cur_ = 0;
  bool initialized_ = false;
};

}  // namespace manet::mobility
