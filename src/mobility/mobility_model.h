// Mobility model interface.
//
// Models are sampled lazily by the simulator: position(t) may be called with
// any non-decreasing sequence of times (repeats allowed). This lets waypoint
// models generate their itinerary on demand from a per-node RNG substream,
// which keeps runs reproducible regardless of how often they are sampled.
#pragma once

#include <memory>

#include "geom/rect.h"
#include "geom/vec2.h"
#include "sim/event_queue.h"

namespace manet::mobility {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Node position at time `t` (seconds). Query times must be
  /// non-decreasing across calls.
  virtual geom::Vec2 position(sim::Time t) = 0;

  /// Instantaneous velocity at time `t` (m/s). Same monotonicity contract;
  /// typically called right after position(t).
  virtual geom::Vec2 velocity(sim::Time t) = 0;
};

/// A node that never moves.
class StaticModel final : public MobilityModel {
 public:
  explicit StaticModel(geom::Vec2 pos) : pos_(pos) {}

  geom::Vec2 position(sim::Time) override { return pos_; }
  geom::Vec2 velocity(sim::Time) override { return {}; }

 private:
  geom::Vec2 pos_;
};

/// Base for models whose motion decomposes into straight-line legs
/// (random waypoint, random walk, random direction, highway...). Subclasses
/// implement next_leg() to extend the itinerary; the base interpolates.
class LegBasedModel : public MobilityModel {
 public:
  geom::Vec2 position(sim::Time t) final;
  geom::Vec2 velocity(sim::Time t) final;

 protected:
  /// One straight-line constant-speed segment; `from == to` models a pause.
  struct Leg {
    sim::Time t_begin = 0.0;
    sim::Time t_end = 0.0;
    geom::Vec2 from;
    geom::Vec2 to;
  };

  /// Produces the leg that starts where `prev` ended, at time prev.t_end.
  /// Must return a leg with t_end > t_begin (use a tiny pause if needed).
  virtual Leg next_leg(const Leg& prev) = 0;

  /// Subclass constructors seed the itinerary with the initial leg.
  void set_initial_leg(Leg leg);

 private:
  void advance_to(sim::Time t);

  Leg current_{};
  bool initialized_ = false;
};

}  // namespace manet::mobility
