// Random Walk and Random Direction models (standard MANET baselines; used by
// robustness tests and the scenario-characterization bench).
//
// Random Walk: pick a uniform heading and speed, walk for `epoch` seconds,
// reflecting off the field boundary, then redraw.
//
// Random Direction: walk to the boundary, pause, redraw heading inward.
#pragma once

#include "mobility/mobility_model.h"
#include "util/rng.h"
#include "util/thread_role.h"

namespace manet::mobility {

struct RandomWalkParams {
  geom::Rect field;
  double min_speed = 0.1;  // m/s
  double max_speed = 20.0;
  double epoch = 10.0;     // s per heading
};

class RandomWalk final : public LegBasedModel {
 public:
  RandomWalk(const RandomWalkParams& params, util::Rng rng);

 protected:
  Leg next_leg(const Leg& prev) MANET_COMMIT_ONLY override;

 private:
  /// Builds one straight leg from `from` lasting up to the epoch remainder,
  /// truncated at the first boundary hit (where the heading reflects).
  Leg make_leg(sim::Time t_begin, geom::Vec2 from);

  RandomWalkParams params_;
  util::Rng rng_;
  geom::Vec2 dir_;          // unit heading
  double speed_ = 0.0;      // m/s
  double epoch_left_ = 0.0; // s remaining on the current heading
};

struct RandomDirectionParams {
  geom::Rect field;
  double min_speed = 0.1;
  double max_speed = 20.0;
  double pause_time = 0.0;  // pause at the boundary
};

class RandomDirection final : public LegBasedModel {
 public:
  RandomDirection(const RandomDirectionParams& params, util::Rng rng);

 protected:
  Leg next_leg(const Leg& prev) MANET_COMMIT_ONLY override;

 private:
  Leg travel_to_boundary(sim::Time t_begin, geom::Vec2 from);

  RandomDirectionParams params_;
  util::Rng rng_;
  bool last_was_travel_ = false;
};

}  // namespace manet::mobility
