#include "mobility/setdest.h"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <map>
#include <ostream>
#include <string>

#include "util/assert.h"
#include "util/strings.h"

namespace manet::mobility {

namespace {

struct SetdestEvent {
  double t = 0.0;
  geom::Vec2 dest;
  double speed = 0.0;
};

struct NodeScript {
  bool has_x = false;
  bool has_y = false;
  geom::Vec2 initial;
  std::vector<SetdestEvent> events;
};

// Parses "$node_(12)" -> 12; returns npos-equivalent via bool.
bool parse_node_index(std::string_view token, std::size_t& out) {
  if (!util::starts_with(token, "$node_(")) {
    return false;
  }
  const auto close = token.find(')');
  if (close == std::string_view::npos) {
    return false;
  }
  const std::string num(token.substr(7, close - 7));
  char* end = nullptr;
  const long v = std::strtol(num.c_str(), &end, 10);
  if (end != num.c_str() + num.size() || v < 0) {
    return false;
  }
  out = static_cast<std::size_t>(v);
  return true;
}

double parse_num(const std::string& s, int line_no) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  MANET_CHECK(end == s.c_str() + s.size(),
              "setdest line " << line_no << ": bad number '" << s << "'");
  return v;
}

std::vector<std::string> tokens_of(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '"') {
      if (!cur.empty()) {
        out.push_back(std::move(cur));
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    out.push_back(std::move(cur));
  }
  return out;
}

}  // namespace

std::vector<PiecewiseLinearTrack> read_setdest(std::istream& is,
                                               double duration) {
  MANET_CHECK(duration > 0.0, "duration=" << duration);
  std::map<std::size_t, NodeScript> scripts;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto t = util::trim(line);
    if (t.empty() || t.front() == '#') {
      continue;
    }
    const auto toks = tokens_of(t);
    if (toks.empty()) {
      continue;
    }
    std::size_t node = 0;
    if (parse_node_index(toks[0], node)) {
      // "$node_(i) set X_ <v>"
      MANET_CHECK(toks.size() == 4 && toks[1] == "set",
                  "setdest line " << line_no << ": expected set X_/Y_/Z_");
      const double v = parse_num(toks[3], line_no);
      auto& ns = scripts[node];
      if (toks[2] == "X_") {
        ns.initial.x = v;
        ns.has_x = true;
      } else if (toks[2] == "Y_") {
        ns.initial.y = v;
        ns.has_y = true;
      } else if (toks[2] == "Z_") {
        // ignored (2-D simulator)
      } else {
        MANET_CHECK(false, "setdest line " << line_no << ": unknown attr '"
                                           << toks[2] << "'");
      }
      continue;
    }
    if (toks[0] == "$ns_") {
      // "$ns_ at <t> $node_(i) setdest <x> <y> <speed>"
      MANET_CHECK(toks.size() == 8 && toks[1] == "at" &&
                      toks[4] == "setdest",
                  "setdest line " << line_no
                                  << ": expected $ns_ at T \"$node_(i) "
                                     "setdest x y s\"");
      MANET_CHECK(parse_node_index(toks[3], node),
                  "setdest line " << line_no << ": bad node ref");
      SetdestEvent e;
      e.t = parse_num(toks[2], line_no);
      e.dest = {parse_num(toks[5], line_no), parse_num(toks[6], line_no)};
      e.speed = parse_num(toks[7], line_no);
      MANET_CHECK(e.t >= 0.0 && e.speed >= 0.0,
                  "setdest line " << line_no << ": negative time/speed");
      scripts[node].events.push_back(e);
      continue;
    }
    MANET_CHECK(false,
                "setdest line " << line_no << ": unrecognized statement");
  }

  MANET_CHECK(!scripts.empty(), "empty setdest script");
  const std::size_t n = scripts.rbegin()->first + 1;
  std::vector<PiecewiseLinearTrack> tracks(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto it = scripts.find(i);
    MANET_CHECK(it != scripts.end(),
                "setdest script skips node " << i << " (indices not dense)");
    NodeScript& ns = it->second;
    MANET_CHECK(ns.has_x && ns.has_y,
                "node " << i << " missing initial X_/Y_");
    std::stable_sort(ns.events.begin(), ns.events.end(),
                     [](const SetdestEvent& a, const SetdestEvent& b) {
                       return a.t < b.t;
                     });

    PiecewiseLinearTrack& track = tracks[i];
    track.append(0.0, ns.initial);
    geom::Vec2 pos = ns.initial;
    double pos_t = 0.0;
    // In-flight leg: toward `target`, arriving at `arrival`.
    bool moving = false;
    geom::Vec2 target;
    double arrival = 0.0;

    const auto position_at = [&](double t) {
      if (!moving || t <= pos_t) {
        return pos;
      }
      if (t >= arrival) {
        return target;
      }
      const double frac = (t - pos_t) / (arrival - pos_t);
      return geom::lerp(pos, target, frac);
    };

    for (const SetdestEvent& e : ns.events) {
      if (e.t >= duration) {
        break;
      }
      // Close out an arrival that happened before this event.
      if (moving && arrival < e.t) {
        if (arrival > pos_t) {
          track.append(arrival, target);
        }
        pos = target;
        pos_t = arrival;
        moving = false;
      }
      // Breakpoint at the redirection instant.
      const geom::Vec2 here = position_at(e.t);
      if (e.t > pos_t) {
        track.append(e.t, here);
      }
      pos = here;
      pos_t = e.t;
      if (e.speed <= 0.0 || geom::distance(pos, e.dest) < 1e-12) {
        moving = false;  // ns-2 treats speed 0 as "stay"
        continue;
      }
      moving = true;
      target = e.dest;
      arrival = e.t + geom::distance(pos, e.dest) / e.speed;
    }
    // Close the final leg within the duration.
    if (moving) {
      if (arrival <= duration) {
        if (arrival > pos_t) {
          track.append(arrival, target);
        }
        pos = target;
        pos_t = arrival;
      } else {
        track.append(duration, position_at(duration));
        pos_t = duration;
      }
    }
    if (pos_t < duration) {
      track.append(duration, pos);
    }
  }
  return tracks;
}

void write_setdest(std::ostream& os,
                   const std::vector<PiecewiseLinearTrack>& tracks) {
  os << "# ns-2 movement scenario exported by mobic-manet\n";
  os.precision(10);
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    MANET_CHECK(!tracks[i].empty(), "empty track for node " << i);
    const auto start = tracks[i].points().front().pos;
    os << "$node_(" << i << ") set X_ " << start.x << '\n'
       << "$node_(" << i << ") set Y_ " << start.y << '\n'
       << "$node_(" << i << ") set Z_ 0.0\n";
  }
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    const auto& pts = tracks[i].points();
    for (std::size_t k = 0; k + 1 < pts.size(); ++k) {
      const auto& a = pts[k];
      const auto& b = pts[k + 1];
      const double dist = geom::distance(a.pos, b.pos);
      if (dist < 1e-12) {
        continue;  // pause segment: no setdest needed
      }
      const double speed = dist / (b.t - a.t);
      os << "$ns_ at " << a.t << " \"$node_(" << i << ") setdest "
         << b.pos.x << " " << b.pos.y << " " << speed << "\"\n";
    }
  }
}

}  // namespace manet::mobility
