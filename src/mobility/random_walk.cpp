#include "mobility/random_walk.h"

#include <cmath>
#include <limits>
#include <numbers>

#include "util/assert.h"

namespace manet::mobility {

namespace {

constexpr double kEps = 1e-9;

// Time until a point moving at velocity v from p exits the field, or +inf
// if it never does.
double time_to_boundary(const geom::Rect& field, geom::Vec2 p, geom::Vec2 v) {
  double t = std::numeric_limits<double>::infinity();
  if (v.x > kEps) {
    t = std::min(t, (field.width - p.x) / v.x);
  } else if (v.x < -kEps) {
    t = std::min(t, -p.x / v.x);
  }
  if (v.y > kEps) {
    t = std::min(t, (field.height - p.y) / v.y);
  } else if (v.y < -kEps) {
    t = std::min(t, -p.y / v.y);
  }
  return std::max(t, 0.0);
}

geom::Vec2 unit_heading(util::Rng& rng) {
  const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
  return {std::cos(theta), std::sin(theta)};
}

// Flips heading components that point out of the field at position p.
geom::Vec2 reflect_heading(const geom::Rect& field, geom::Vec2 p,
                           geom::Vec2 dir) {
  if ((p.x <= kEps && dir.x < 0.0) ||
      (p.x >= field.width - kEps && dir.x > 0.0)) {
    dir.x = -dir.x;
  }
  if ((p.y <= kEps && dir.y < 0.0) ||
      (p.y >= field.height - kEps && dir.y > 0.0)) {
    dir.y = -dir.y;
  }
  return dir;
}

}  // namespace

RandomWalk::RandomWalk(const RandomWalkParams& params, util::Rng rng)
    : params_(params), rng_(std::move(rng)) {
  MANET_CHECK(params_.max_speed > 0.0);
  MANET_CHECK(params_.min_speed > 0.0 &&
              params_.min_speed <= params_.max_speed);
  MANET_CHECK(params_.epoch > 0.0);
  dir_ = unit_heading(rng_);
  speed_ = rng_.uniform(params_.min_speed, params_.max_speed);
  epoch_left_ = params_.epoch;
  set_initial_leg(make_leg(0.0, params_.field.sample(rng_)));
}

LegBasedModel::Leg RandomWalk::make_leg(sim::Time t_begin, geom::Vec2 from) {
  const geom::Vec2 v = dir_ * speed_;
  double span = std::min(epoch_left_, time_to_boundary(params_.field, from, v));
  span = std::max(span, 1e-6);
  epoch_left_ -= span;
  const geom::Vec2 to = params_.field.clamp(from + v * span);
  return Leg{t_begin, t_begin + span, from, to};
}

LegBasedModel::Leg RandomWalk::next_leg(const Leg& prev) {
  if (epoch_left_ <= kEps) {
    // Heading epoch over: redraw heading and speed.
    dir_ = unit_heading(rng_);
    speed_ = rng_.uniform(params_.min_speed, params_.max_speed);
    epoch_left_ = params_.epoch;
  }
  // If the previous leg ended on a wall, bounce.
  dir_ = reflect_heading(params_.field, prev.to, dir_);
  return make_leg(prev.t_end, prev.to);
}

RandomDirection::RandomDirection(const RandomDirectionParams& params,
                                 util::Rng rng)
    : params_(params), rng_(std::move(rng)) {
  MANET_CHECK(params_.max_speed > 0.0);
  MANET_CHECK(params_.min_speed > 0.0 &&
              params_.min_speed <= params_.max_speed);
  MANET_CHECK(params_.pause_time >= 0.0);
  set_initial_leg(travel_to_boundary(0.0, params_.field.sample(rng_)));
  last_was_travel_ = true;
}

LegBasedModel::Leg RandomDirection::travel_to_boundary(sim::Time t_begin,
                                                       geom::Vec2 from) {
  const double speed = rng_.uniform(params_.min_speed, params_.max_speed);
  // Redraw until the heading actually leads into the interior (a heading
  // along/out of a wall yields a ~zero travel time).
  for (int attempt = 0; attempt < 64; ++attempt) {
    const geom::Vec2 dir = unit_heading(rng_);
    const double t_hit =
        time_to_boundary(params_.field, from, dir * speed);
    if (t_hit > 1e-6 && std::isfinite(t_hit)) {
      const geom::Vec2 to = params_.field.clamp(from + dir * speed * t_hit);
      return Leg{t_begin, t_begin + t_hit, from, to};
    }
  }
  // Degenerate geometry (should not happen on a proper Rect): idle briefly.
  return Leg{t_begin, t_begin + 1.0, from, from};
}

LegBasedModel::Leg RandomDirection::next_leg(const Leg& prev) {
  if (last_was_travel_ && params_.pause_time > 0.0) {
    last_was_travel_ = false;
    return Leg{prev.t_end, prev.t_end + params_.pause_time, prev.to, prev.to};
  }
  last_was_travel_ = true;
  return travel_to_boundary(prev.t_end, prev.to);
}

}  // namespace manet::mobility
