// Random Waypoint mobility — the model the paper's evaluation uses (ns-2
// `setdest` semantics): start at a uniform point, repeatedly pick a uniform
// destination, travel at a speed drawn uniformly from (0, MaxSpeed], then
// pause for a fixed pause time.
#pragma once

#include "mobility/mobility_model.h"
#include "util/rng.h"
#include "util/thread_role.h"

namespace manet::mobility {

struct RandomWaypointParams {
  geom::Rect field;
  double max_speed = 20.0;  // m/s; paper uses {1, 20, 30}
  // setdest draws speed uniformly in (0, max]; a small floor avoids the
  // well-known RWP pathology of nodes crawling for the whole run.
  double min_speed = 0.1;   // m/s
  double pause_time = 0.0;  // s; paper uses {0, 30}
};

class RandomWaypoint final : public LegBasedModel {
 public:
  /// `rng` must be a dedicated substream for this node.
  RandomWaypoint(const RandomWaypointParams& params, util::Rng rng);

  /// Initial (uniformly drawn) position, for tests.
  geom::Vec2 initial_position() const { return initial_; }

 protected:
  Leg next_leg(const Leg& prev) MANET_COMMIT_ONLY override;

 private:
  Leg travel_leg(sim::Time t_begin, geom::Vec2 from);

  RandomWaypointParams params_;
  util::Rng rng_;
  geom::Vec2 initial_;
  bool last_was_travel_ = false;
};

}  // namespace manet::mobility
