// Reference Point Group Mobility (RPGM) — Hong et al. [9], cited by the
// paper as the group-mobility model behind "conference hall"-style scenarios
// (§5). Each group has a logical center following a random-waypoint path;
// members hover around the moving center within a bounded offset radius.
//
// Nodes in the same group have low *relative* mobility even when the group
// itself moves fast — exactly the structure MOBIC is designed to exploit.
#pragma once

#include <memory>
#include <vector>

#include "mobility/mobility_model.h"
#include "mobility/track.h"
#include "util/rng.h"
#include "util/thread_role.h"

namespace manet::mobility {

struct RpgmParams {
  geom::Rect field;
  double duration = 900.0;      // s; the center path is materialized eagerly
  double center_max_speed = 10.0;  // group reference-point speed, m/s
  double center_min_speed = 0.1;
  double center_pause = 0.0;    // s
  double offset_radius = 30.0;  // m; members stay within this of the center
  double offset_speed = 1.0;    // m/s; intra-group jitter speed
};

/// The shared state of one group: the reference-point track. Members hold a
/// shared_ptr so group lifetime follows its last member.
class RpgmGroup {
 public:
  /// Builds the center's random-waypoint track covering [0, duration].
  RpgmGroup(const RpgmParams& params, util::Rng rng);

  const RpgmParams& params() const { return params_; }
  geom::Vec2 center(sim::Time t) const { return track_.position(t); }
  geom::Vec2 center_velocity(sim::Time t) const { return track_.velocity(t); }
  const PiecewiseLinearTrack& track() const { return track_; }

 private:
  RpgmParams params_;
  PiecewiseLinearTrack track_;
};

/// One group member: center(t) + a slowly wandering offset, clamped to the
/// field.
class RpgmMember final : public MobilityModel {
 public:
  RpgmMember(std::shared_ptr<const RpgmGroup> group, util::Rng rng);

  geom::Vec2 position(sim::Time t) MANET_COMMIT_ONLY override;
  geom::Vec2 velocity(sim::Time t) MANET_COMMIT_ONLY override;

 private:
  /// Offset relative to the center at time t (advances offset legs lazily).
  geom::Vec2 offset(sim::Time t);
  void next_offset_leg();

  std::shared_ptr<const RpgmGroup> group_;
  util::Rng rng_;
  // Current offset leg: move from `off_from_` to `off_to_` over
  // [off_t0_, off_t1_].
  sim::Time off_t0_ = 0.0;
  sim::Time off_t1_ = 0.0;
  geom::Vec2 off_from_;
  geom::Vec2 off_to_;
};

/// Builds `n_members` member models sharing one freshly generated group.
std::vector<std::unique_ptr<MobilityModel>> make_rpgm_group(
    const RpgmParams& params, std::size_t n_members, util::Rng rng);

}  // namespace manet::mobility
