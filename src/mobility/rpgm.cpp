#include "mobility/rpgm.h"

#include <cmath>
#include <numbers>

#include "util/assert.h"

namespace manet::mobility {

RpgmGroup::RpgmGroup(const RpgmParams& params, util::Rng rng)
    : params_(params) {
  MANET_CHECK(params_.duration > 0.0);
  MANET_CHECK(params_.center_max_speed > 0.0);
  MANET_CHECK(params_.center_min_speed > 0.0 &&
              params_.center_min_speed <= params_.center_max_speed);
  MANET_CHECK(params_.offset_radius >= 0.0);
  MANET_CHECK(params_.offset_speed >= 0.0);

  // Materialize a random-waypoint itinerary for the reference point.
  geom::Vec2 pos = params_.field.sample(rng);
  sim::Time t = 0.0;
  track_.append(t, pos);
  while (t < params_.duration) {
    const geom::Vec2 dest = params_.field.sample(rng);
    const double speed =
        rng.uniform(params_.center_min_speed, params_.center_max_speed);
    const double span =
        std::max(geom::distance(pos, dest) / speed, 1e-6);
    t += span;
    pos = dest;
    track_.append(t, pos);
    if (params_.center_pause > 0.0) {
      t += params_.center_pause;
      track_.append(t, pos);
    }
  }
}

RpgmMember::RpgmMember(std::shared_ptr<const RpgmGroup> group, util::Rng rng)
    : group_(std::move(group)), rng_(std::move(rng)) {
  MANET_CHECK(group_ != nullptr);
  // Initial offset: uniform in the offset disk.
  const double r = group_->params().offset_radius * std::sqrt(rng_.uniform());
  const double theta = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  off_from_ = off_to_ = geom::Vec2{r * std::cos(theta), r * std::sin(theta)};
  off_t0_ = off_t1_ = 0.0;
}

void RpgmMember::next_offset_leg() {
  const auto& p = group_->params();
  const double r = p.offset_radius * std::sqrt(rng_.uniform());
  const double theta = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  const geom::Vec2 target{r * std::cos(theta), r * std::sin(theta)};
  const double dist = geom::distance(off_to_, target);
  const double span =
      p.offset_speed > 0.0 ? std::max(dist / p.offset_speed, 1e-6) : 1.0;
  off_from_ = off_to_;
  off_to_ = target;
  off_t0_ = off_t1_;
  off_t1_ = off_t0_ + span;
}

geom::Vec2 RpgmMember::offset(sim::Time t) {
  MANET_ASSERT(t >= off_t0_ - 1e-9, "non-monotonic RPGM query");
  while (t > off_t1_) {
    next_offset_leg();
  }
  if (off_t1_ <= off_t0_ || t <= off_t0_) {
    return off_from_;
  }
  const double frac = (t - off_t0_) / (off_t1_ - off_t0_);
  return geom::lerp(off_from_, off_to_, std::min(frac, 1.0));
}

geom::Vec2 RpgmMember::position(sim::Time t) {
  return group_->params().field.clamp(group_->center(t) + offset(t));
}

geom::Vec2 RpgmMember::velocity(sim::Time t) {
  // Dominated by the group velocity; offset drift contributes its leg slope.
  geom::Vec2 v = group_->center_velocity(t);
  if (off_t1_ > off_t0_ && t >= off_t0_ && t <= off_t1_) {
    v += (off_to_ - off_from_) / (off_t1_ - off_t0_);
  }
  return v;
}

std::vector<std::unique_ptr<MobilityModel>> make_rpgm_group(
    const RpgmParams& params, std::size_t n_members, util::Rng rng) {
  MANET_CHECK(n_members > 0, "empty RPGM group");
  auto group = std::make_shared<const RpgmGroup>(params, rng.substream("center"));
  std::vector<std::unique_ptr<MobilityModel>> members;
  members.reserve(n_members);
  for (std::size_t i = 0; i < n_members; ++i) {
    members.push_back(
        std::make_unique<RpgmMember>(group, rng.substream("member", i)));
  }
  return members;
}

}  // namespace manet::mobility
