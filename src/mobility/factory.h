// Builds a fleet of per-node mobility models from a scenario description.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mobility/gauss_markov.h"
#include "mobility/highway.h"
#include "mobility/manhattan.h"
#include "mobility/mobility_model.h"
#include "mobility/random_walk.h"
#include "mobility/random_waypoint.h"
#include "mobility/rpgm.h"
#include "util/rng.h"
#include "util/thread_role.h"

namespace manet::mobility {

enum class ModelKind {
  kStatic,
  kRandomWaypoint,
  kRandomWalk,
  kRandomDirection,
  kGaussMarkov,
  kRpgm,
  kHighway,
  kManhattan,
};

std::string_view model_kind_name(ModelKind kind);
/// Parses "static" / "rwp" / "random_waypoint" / "walk" / "direction" /
/// "gauss_markov" / "rpgm" / "highway" / "manhattan". Throws CheckError on
/// unknown names.
ModelKind parse_model_kind(std::string_view name);

/// Everything any of the supported models needs; unused members are ignored
/// by other kinds.
struct FleetParams {
  ModelKind kind = ModelKind::kRandomWaypoint;
  geom::Rect field{670.0, 670.0};
  double duration = 900.0;  // needed by RPGM (center track horizon)
  double max_speed = 20.0;
  double min_speed = 0.1;
  double pause_time = 0.0;
  // Walk / Gauss-Markov specifics.
  double walk_epoch = 10.0;
  double gm_alpha = 0.85;
  double gm_sigma = 3.0;
  // RPGM specifics.
  std::size_t rpgm_group_size = 10;
  double rpgm_offset_radius = 30.0;
  double rpgm_offset_speed = 1.0;
  // Highway specifics.
  HighwayParams highway{};
  // Manhattan specifics (manhattan.field is kept in sync with `field`).
  ManhattanParams manhattan{};
};

/// Creates `n` models. For RPGM the fleet is split into ceil(n/group_size)
/// groups. `rng` should be the run's "mobility" substream.
std::vector<std::unique_ptr<MobilityModel>> make_fleet(
    const FleetParams& params, std::size_t n, const util::Rng& rng)
    MANET_COMMIT_ONLY;

/// Field to use for channel setup: the params' field, except for highway
/// fleets whose geometry is derived from the highway itself.
geom::Rect fleet_field(const FleetParams& params);

}  // namespace manet::mobility
