// Highway mobility — the paper's §5 "cars traveling on a highway" scenario.
//
// A straight multi-lane road along the x axis. Each vehicle keeps its lane
// (fixed y), drives in the lane's direction with a per-vehicle cruise speed
// plus a slowly varying Gauss–Markov perturbation, and on reaching the end
// of the road segment re-enters at the opposite end (modelling a fresh
// vehicle arriving; the segment is much longer than radio range so the jump
// is out of range of its old neighbors).
//
// Vehicles in nearby same-direction lanes have low relative mobility
// (a convoy); opposite-direction lanes have very high relative mobility.
#pragma once

#include "mobility/mobility_model.h"
#include "util/rng.h"
#include "util/thread_role.h"

namespace manet::mobility {

struct HighwayParams {
  double length = 2000.0;      // m; road segment
  double lane_width = 5.0;     // m between lane centers
  int lanes_per_direction = 2; // total lanes = 2 * this
  double mean_speed = 25.0;    // m/s cruise speed (~90 km/h)
  double speed_stddev = 3.0;   // m/s across vehicles
  double jitter_sigma = 1.0;   // m/s within-vehicle speed wander
  double jitter_alpha = 0.9;   // Gauss-Markov memory for the wander
  double update_step = 1.0;    // s between speed updates
};

class HighwayVehicle final : public LegBasedModel {
 public:
  /// `lane` in [0, 2*lanes_per_direction); lanes below lanes_per_direction
  /// drive in +x, the rest in -x.
  HighwayVehicle(const HighwayParams& params, int lane, util::Rng rng);

  int lane() const { return lane_; }
  /// +1 or -1 (direction of travel along x).
  int direction() const { return dir_; }
  double lane_y() const { return lane_y_; }

 protected:
  Leg next_leg(const Leg& prev) MANET_COMMIT_ONLY override;

 private:
  Leg step_leg(sim::Time t_begin, double x);

  HighwayParams params_;
  int lane_;
  int dir_;
  double lane_y_;
  util::Rng rng_;
  double cruise_;   // per-vehicle cruise speed
  double jitter_ = 0.0;  // Gauss-Markov speed perturbation
};

/// Builds `n` vehicles round-robin across lanes.
std::vector<std::unique_ptr<MobilityModel>> make_highway(
    const HighwayParams& params, std::size_t n, util::Rng rng);

/// Field rectangle that encloses the highway (for channel grid sizing).
geom::Rect highway_field(const HighwayParams& params);

}  // namespace manet::mobility
