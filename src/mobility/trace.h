// Trace recording and replay: sample any mobility model onto a
// PiecewiseLinearTrack (ns-2 "movement scenario file" equivalent), persist it
// as CSV, and replay it as a MobilityModel. Makes experiments repeatable
// across algorithms: both clustering protocols can be driven by the *exact*
// same motion.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "mobility/mobility_model.h"
#include "mobility/track.h"
#include "util/thread_role.h"

namespace manet::mobility {

/// Samples `model` every `dt` seconds over [0, duration] (inclusive of both
/// endpoints).
PiecewiseLinearTrack record_track(MobilityModel& model, sim::Time duration,
                                  sim::Time dt);

/// Replays a recorded track.
class TraceModel final : public MobilityModel {
 public:
  explicit TraceModel(std::shared_ptr<const PiecewiseLinearTrack> track);
  explicit TraceModel(PiecewiseLinearTrack track);

  geom::Vec2 position(sim::Time t) MANET_COMMIT_ONLY override {
    return track_->position(t);
  }
  geom::Vec2 velocity(sim::Time t) MANET_COMMIT_ONLY override {
    return track_->velocity(t);
  }

  const PiecewiseLinearTrack& track() const { return *track_; }

 private:
  std::shared_ptr<const PiecewiseLinearTrack> track_;
};

/// Serializes tracks for N nodes as CSV rows "node,t,x,y" (with header).
void write_traces_csv(std::ostream& os,
                      const std::vector<PiecewiseLinearTrack>& tracks);

/// Parses the CSV produced by write_traces_csv. Throws CheckError on
/// malformed input.
std::vector<PiecewiseLinearTrack> read_traces_csv(std::istream& is);

}  // namespace manet::mobility
