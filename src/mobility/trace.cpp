#include "mobility/trace.h"

#include <cstdlib>
#include <istream>
#include <ostream>

#include "util/assert.h"
#include "util/strings.h"

namespace manet::mobility {

PiecewiseLinearTrack record_track(MobilityModel& model, sim::Time duration,
                                  sim::Time dt) {
  MANET_CHECK(duration >= 0.0 && dt > 0.0,
              "duration=" << duration << " dt=" << dt);
  PiecewiseLinearTrack track;
  sim::Time t = 0.0;
  while (t < duration) {
    track.append(t, model.position(t));
    t += dt;
  }
  track.append(duration, model.position(duration));
  return track;
}

TraceModel::TraceModel(std::shared_ptr<const PiecewiseLinearTrack> track)
    : track_(std::move(track)) {
  MANET_CHECK(track_ != nullptr && !track_->empty(),
              "trace model needs a non-empty track");
}

TraceModel::TraceModel(PiecewiseLinearTrack track)
    : TraceModel(std::make_shared<const PiecewiseLinearTrack>(
          std::move(track))) {}

void write_traces_csv(std::ostream& os,
                      const std::vector<PiecewiseLinearTrack>& tracks) {
  os << "node,t,x,y\n";
  os.precision(12);
  for (std::size_t n = 0; n < tracks.size(); ++n) {
    for (const auto& p : tracks[n].points()) {
      os << n << ',' << p.t << ',' << p.pos.x << ',' << p.pos.y << '\n';
    }
  }
}

std::vector<PiecewiseLinearTrack> read_traces_csv(std::istream& is) {
  std::vector<PiecewiseLinearTrack> tracks;
  std::string line;
  bool first = true;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) {
      continue;
    }
    if (first) {
      first = false;
      MANET_CHECK(trimmed == "node,t,x,y",
                  "bad trace header: '" << trimmed << "'");
      continue;
    }
    const auto fields = util::split(trimmed, ',');
    MANET_CHECK(fields.size() == 4,
                "trace line " << line_no << ": expected 4 fields");
    const auto num = [&](const std::string& s) {
      char* end = nullptr;
      const double v = std::strtod(s.c_str(), &end);
      MANET_CHECK(end == s.c_str() + s.size(),
                  "trace line " << line_no << ": bad number '" << s << "'");
      return v;
    };
    const auto node = static_cast<std::size_t>(num(fields[0]));
    if (node >= tracks.size()) {
      tracks.resize(node + 1);
    }
    tracks[node].append(num(fields[1]), {num(fields[2]), num(fields[3])});
  }
  return tracks;
}

}  // namespace manet::mobility
