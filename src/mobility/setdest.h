// ns-2 / CMU movement-scenario interop ("setdest" format) — the file
// format the paper's own scenarios were generated in:
//
//   $node_(0) set X_ 83.36
//   $node_(0) set Y_ 239.44
//   $node_(0) set Z_ 0.0
//   $ns_ at 2.00 "$node_(0) setdest 100.00 200.00 10.00"
//
// Import converts a script into per-node PiecewiseLinearTracks (honoring
// mid-flight redirections exactly as the ns-2 mobile node does); export
// writes our tracks back out as a script ns-2 would accept. This lets the
// repository exchange scenarios with the original ns-2 tooling.
#pragma once

#include <iosfwd>
#include <vector>

#include "mobility/track.h"

namespace manet::mobility {

/// Parses a setdest movement script. `duration` bounds the final leg of
/// nodes still in flight at the end. Throws CheckError (with line numbers)
/// on malformed input. Node indices must be dense from 0.
std::vector<PiecewiseLinearTrack> read_setdest(std::istream& is,
                                               double duration);

/// Writes tracks as a setdest script (initial positions + one setdest per
/// breakpoint, with the speed implied by the segment).
void write_setdest(std::ostream& os,
                   const std::vector<PiecewiseLinearTrack>& tracks);

}  // namespace manet::mobility
