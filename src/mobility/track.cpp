#include "mobility/track.h"

#include <algorithm>

#include "util/assert.h"

namespace manet::mobility {

void PiecewiseLinearTrack::append(sim::Time t, geom::Vec2 pos) {
  MANET_CHECK(points_.empty() || t > points_.back().t,
              "track breakpoints must be strictly increasing: " << t);
  points_.push_back({t, pos});
}

sim::Time PiecewiseLinearTrack::begin_time() const {
  MANET_CHECK(!points_.empty());
  return points_.front().t;
}

sim::Time PiecewiseLinearTrack::end_time() const {
  MANET_CHECK(!points_.empty());
  return points_.back().t;
}

std::size_t PiecewiseLinearTrack::segment_of(sim::Time t) const {
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](sim::Time lhs, const Point& p) { return lhs < p.t; });
  MANET_ASSERT(it != points_.begin());
  return static_cast<std::size_t>(it - points_.begin()) - 1;
}

geom::Vec2 PiecewiseLinearTrack::position(sim::Time t) const {
  MANET_CHECK(!points_.empty(), "position() on empty track");
  if (t <= points_.front().t) {
    return points_.front().pos;
  }
  if (t >= points_.back().t) {
    return points_.back().pos;
  }
  const std::size_t i = segment_of(t);
  const Point& a = points_[i];
  const Point& b = points_[i + 1];
  const double frac = (t - a.t) / (b.t - a.t);
  return geom::lerp(a.pos, b.pos, frac);
}

geom::Vec2 PiecewiseLinearTrack::velocity(sim::Time t) const {
  MANET_CHECK(!points_.empty(), "velocity() on empty track");
  if (points_.size() < 2 || t < points_.front().t || t >= points_.back().t) {
    return {};
  }
  const std::size_t i = segment_of(t);
  const Point& a = points_[i];
  const Point& b = points_[i + 1];
  return (b.pos - a.pos) / (b.t - a.t);
}

}  // namespace manet::mobility
