#include "mobility/random_waypoint.h"

#include <algorithm>

#include "util/assert.h"

namespace manet::mobility {

RandomWaypoint::RandomWaypoint(const RandomWaypointParams& params,
                               util::Rng rng)
    : params_(params), rng_(std::move(rng)) {
  MANET_CHECK(params_.max_speed > 0.0, "max_speed=" << params_.max_speed);
  MANET_CHECK(params_.min_speed > 0.0 && params_.min_speed <= params_.max_speed,
              "min_speed=" << params_.min_speed);
  MANET_CHECK(params_.pause_time >= 0.0);
  initial_ = params_.field.sample(rng_);
  // The itinerary starts with a travel leg from the initial position.
  set_initial_leg(travel_leg(0.0, initial_));
  last_was_travel_ = true;
}

LegBasedModel::Leg RandomWaypoint::travel_leg(sim::Time t_begin,
                                              geom::Vec2 from) {
  const geom::Vec2 dest = params_.field.sample(rng_);
  const double speed = rng_.uniform(params_.min_speed, params_.max_speed);
  const double dist = geom::distance(from, dest);
  // A destination that coincides with the source degenerates to a micro
  // pause; guard the leg span so it stays positive.
  const double span = std::max(dist / speed, 1e-6);
  return Leg{t_begin, t_begin + span, from, dest};
}

LegBasedModel::Leg RandomWaypoint::next_leg(const Leg& prev) {
  if (last_was_travel_ && params_.pause_time > 0.0) {
    last_was_travel_ = false;
    return Leg{prev.t_end, prev.t_end + params_.pause_time, prev.to, prev.to};
  }
  last_was_travel_ = true;
  return travel_leg(prev.t_end, prev.to);
}

}  // namespace manet::mobility
