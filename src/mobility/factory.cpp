#include "mobility/factory.h"

#include "util/assert.h"
#include "util/strings.h"

namespace manet::mobility {

std::string_view model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kStatic:
      return "static";
    case ModelKind::kRandomWaypoint:
      return "random_waypoint";
    case ModelKind::kRandomWalk:
      return "random_walk";
    case ModelKind::kRandomDirection:
      return "random_direction";
    case ModelKind::kGaussMarkov:
      return "gauss_markov";
    case ModelKind::kRpgm:
      return "rpgm";
    case ModelKind::kHighway:
      return "highway";
    case ModelKind::kManhattan:
      return "manhattan";
  }
  return "?";
}

ModelKind parse_model_kind(std::string_view name) {
  const std::string n = util::to_lower(name);
  if (n == "static") return ModelKind::kStatic;
  if (n == "rwp" || n == "random_waypoint" || n == "waypoint")
    return ModelKind::kRandomWaypoint;
  if (n == "walk" || n == "random_walk") return ModelKind::kRandomWalk;
  if (n == "direction" || n == "random_direction")
    return ModelKind::kRandomDirection;
  if (n == "gauss_markov" || n == "gm") return ModelKind::kGaussMarkov;
  if (n == "rpgm" || n == "group") return ModelKind::kRpgm;
  if (n == "highway") return ModelKind::kHighway;
  if (n == "manhattan" || n == "grid") return ModelKind::kManhattan;
  MANET_CHECK(false, "unknown mobility model: " << name);
  return ModelKind::kStatic;  // unreachable
}

std::vector<std::unique_ptr<MobilityModel>> make_fleet(
    const FleetParams& params, std::size_t n, const util::Rng& rng)
    MANET_COMMIT_ONLY {
  MANET_CHECK(n > 0, "empty fleet");
  std::vector<std::unique_ptr<MobilityModel>> fleet;
  fleet.reserve(n);
  switch (params.kind) {
    case ModelKind::kStatic: {
      util::Rng r = rng.substream("static");
      for (std::size_t i = 0; i < n; ++i) {
        fleet.push_back(
            std::make_unique<StaticModel>(params.field.sample(r)));
      }
      break;
    }
    case ModelKind::kRandomWaypoint: {
      const RandomWaypointParams p{params.field, params.max_speed,
                                   params.min_speed, params.pause_time};
      for (std::size_t i = 0; i < n; ++i) {
        fleet.push_back(std::make_unique<RandomWaypoint>(
            p, rng.substream("rwp", i)));
      }
      break;
    }
    case ModelKind::kRandomWalk: {
      const RandomWalkParams p{params.field, params.min_speed,
                               params.max_speed, params.walk_epoch};
      for (std::size_t i = 0; i < n; ++i) {
        fleet.push_back(
            std::make_unique<RandomWalk>(p, rng.substream("walk", i)));
      }
      break;
    }
    case ModelKind::kRandomDirection: {
      const RandomDirectionParams p{params.field, params.min_speed,
                                    params.max_speed, params.pause_time};
      for (std::size_t i = 0; i < n; ++i) {
        fleet.push_back(std::make_unique<RandomDirection>(
            p, rng.substream("dir", i)));
      }
      break;
    }
    case ModelKind::kGaussMarkov: {
      const GaussMarkovParams p{params.field, params.max_speed,
                                params.gm_alpha, params.gm_sigma, 1.0};
      for (std::size_t i = 0; i < n; ++i) {
        fleet.push_back(
            std::make_unique<GaussMarkov>(p, rng.substream("gm", i)));
      }
      break;
    }
    case ModelKind::kRpgm: {
      MANET_CHECK(params.rpgm_group_size > 0);
      RpgmParams p;
      p.field = params.field;
      p.duration = params.duration;
      p.center_max_speed = params.max_speed;
      p.center_min_speed = params.min_speed;
      p.center_pause = params.pause_time;
      p.offset_radius = params.rpgm_offset_radius;
      p.offset_speed = params.rpgm_offset_speed;
      std::size_t remaining = n;
      std::size_t group_idx = 0;
      while (remaining > 0) {
        const std::size_t size = std::min(remaining, params.rpgm_group_size);
        auto members =
            make_rpgm_group(p, size, rng.substream("rpgm", group_idx++));
        for (auto& m : members) {
          fleet.push_back(std::move(m));
        }
        remaining -= size;
      }
      break;
    }
    case ModelKind::kHighway: {
      fleet = make_highway(params.highway, n, rng.substream("highway"));
      break;
    }
    case ModelKind::kManhattan: {
      ManhattanParams p = params.manhattan;
      p.field = params.field;
      p.min_speed = params.min_speed;
      p.max_speed = params.max_speed;
      for (std::size_t i = 0; i < n; ++i) {
        fleet.push_back(
            std::make_unique<Manhattan>(p, rng.substream("manhattan", i)));
      }
      break;
    }
  }
  MANET_ASSERT(fleet.size() == n);
  return fleet;
}

geom::Rect fleet_field(const FleetParams& params) {
  if (params.kind == ModelKind::kHighway) {
    return highway_field(params.highway);
  }
  return params.field;
}

}  // namespace manet::mobility
