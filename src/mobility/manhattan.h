// Manhattan-grid mobility: nodes move along the streets of a regular city
// grid, turning at intersections with configurable probability — the urban
// counterpart of the paper's §5 highway scenario (used by later MANET
// evaluation methodology, e.g. the "Manhattan model" of the IETF/UMTS
// evaluation suites).
#pragma once

#include "mobility/mobility_model.h"
#include "util/rng.h"
#include "util/thread_role.h"

namespace manet::mobility {

struct ManhattanParams {
  geom::Rect field{600.0, 600.0};
  double block_size = 100.0;   // street spacing, meters
  double min_speed = 5.0;      // m/s
  double max_speed = 15.0;
  double turn_probability = 0.5;  // at each intersection: turn vs continue
  double speed_epoch = 10.0;   // seconds between speed redraws
};

class Manhattan final : public LegBasedModel {
 public:
  Manhattan(const ManhattanParams& params, util::Rng rng);

  /// Number of streets in each direction (for tests).
  int streets_x() const { return streets_x_; }
  int streets_y() const { return streets_y_; }

 protected:
  Leg next_leg(const Leg& prev) MANET_COMMIT_ONLY override;

 private:
  /// One leg: from the current position to the next intersection (or the
  /// epoch boundary, whichever is nearer).
  Leg make_leg(sim::Time t_begin, geom::Vec2 from);
  /// Snaps a direction choice at an intersection; u-turns only at field
  /// edges.
  void choose_direction(geom::Vec2 at);

  double street_coord(int index) const;
  bool at_intersection(geom::Vec2 p) const;

  ManhattanParams params_;
  util::Rng rng_;
  int streets_x_;  // vertical streets (constant x)
  int streets_y_;  // horizontal streets (constant y)
  geom::Vec2 dir_;        // axis-aligned unit direction
  double speed_ = 0.0;
  double epoch_left_ = 0.0;
};

}  // namespace manet::mobility
