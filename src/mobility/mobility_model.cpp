#include "mobility/mobility_model.h"

#include "util/assert.h"

namespace manet::mobility {

void MobilityModel::unroll_to(sim::Time) {
  MANET_CHECK(false, "unroll_to() on a model without supports_unroll()");
}

void MobilityModel::copy_legs(sim::Time, sim::Time,
                              std::vector<MotionLeg>&) const {
  MANET_CHECK(false, "copy_legs() on a model without supports_unroll()");
}

void LegBasedModel::set_initial_leg(Leg leg) {
  MANET_CHECK(leg.t_end > leg.t_begin, "initial leg must have positive span");
  window_.clear();
  window_.push_back(leg);
  cur_ = 0;
  initialized_ = true;
}

void LegBasedModel::generate_next() {
  Leg next = next_leg(window_.back());
  MANET_CHECK(next.t_begin == window_.back().t_end,
              "next_leg() must start when the previous leg ends");
  MANET_CHECK(next.t_end > next.t_begin, "zero-length leg");
  window_.push_back(next);
}

const LegBasedModel::Leg& LegBasedModel::locate(sim::Time t) {
  MANET_CHECK(initialized_, "mobility model used before set_initial_leg()");
  // Small tolerance: clustering code may re-query at the "current" time
  // after floating-point round-trips.
  MANET_ASSERT(t >= window_[cur_].t_begin - 1e-9,
               "non-monotonic mobility query: " << t << " < "
                                                << window_[cur_].t_begin);
  while (t > window_[cur_].t_end) {
    if (cur_ + 1 == window_.size()) {
      // Serial fast path: the fresh leg replaces the exhausted one in
      // place, so the window stays at one leg and steady-state queries
      // never touch the allocator (the zero-alloc contract).
      Leg next = next_leg(window_[cur_]);
      MANET_CHECK(next.t_begin == window_[cur_].t_end,
                  "next_leg() must start when the previous leg ends");
      MANET_CHECK(next.t_end > next.t_begin, "zero-length leg");
      window_[cur_] = next;
    } else {
      ++cur_;
    }
  }
  // Trim legs that unroll_to() appended and time has passed (erase shifts
  // in place and keeps capacity), bounding memory as time advances.
  if (cur_ > 0) {
    window_.erase(window_.begin(),
                  window_.begin() + static_cast<std::ptrdiff_t>(cur_));
    cur_ = 0;
  }
  return window_[cur_];
}

geom::Vec2 LegBasedModel::position(sim::Time t) {
  const Leg& leg = locate(t);
  if (t <= leg.t_begin) {
    return leg.from;
  }
  const double frac = (t - leg.t_begin) / (leg.t_end - leg.t_begin);
  return geom::lerp(leg.from, leg.to, std::min(frac, 1.0));
}

geom::Vec2 LegBasedModel::velocity(sim::Time t) {
  const Leg& leg = locate(t);
  const double span = leg.t_end - leg.t_begin;
  if (span <= 0.0) {
    return {};
  }
  return (leg.to - leg.from) / span;
}

void LegBasedModel::unroll_to(sim::Time horizon) {
  MANET_CHECK(initialized_, "unroll_to() before set_initial_leg()");
  while (window_.back().t_end < horizon) {
    generate_next();
  }
}

void LegBasedModel::copy_legs(sim::Time from, sim::Time to,
                              std::vector<MotionLeg>& out) const {
  MANET_CHECK(!window_.empty() && window_.back().t_end >= to,
              "copy_legs(" << from << ", " << to
                           << ") beyond the unrolled horizon");
  for (const Leg& leg : window_) {
    if (leg.t_end < from) {
      continue;
    }
    if (leg.t_begin > to) {
      break;
    }
    out.push_back(leg);
  }
}

}  // namespace manet::mobility
