#include "mobility/mobility_model.h"

#include "util/assert.h"

namespace manet::mobility {

void LegBasedModel::set_initial_leg(Leg leg) {
  MANET_CHECK(leg.t_end > leg.t_begin, "initial leg must have positive span");
  current_ = leg;
  initialized_ = true;
}

void LegBasedModel::advance_to(sim::Time t) {
  MANET_CHECK(initialized_, "mobility model used before set_initial_leg()");
  // Small tolerance: clustering code may re-query at the "current" time
  // after floating-point round-trips.
  MANET_ASSERT(t >= current_.t_begin - 1e-9,
               "non-monotonic mobility query: " << t << " < "
                                                << current_.t_begin);
  while (t > current_.t_end) {
    Leg next = next_leg(current_);
    MANET_CHECK(next.t_begin == current_.t_end,
                "next_leg() must start when the previous leg ends");
    MANET_CHECK(next.t_end > next.t_begin, "zero-length leg");
    current_ = next;
  }
}

geom::Vec2 LegBasedModel::position(sim::Time t) {
  advance_to(t);
  const Leg& leg = current_;
  if (t <= leg.t_begin) {
    return leg.from;
  }
  const double frac = (t - leg.t_begin) / (leg.t_end - leg.t_begin);
  return geom::lerp(leg.from, leg.to, std::min(frac, 1.0));
}

geom::Vec2 LegBasedModel::velocity(sim::Time t) {
  advance_to(t);
  const Leg& leg = current_;
  const double span = leg.t_end - leg.t_begin;
  if (span <= 0.0) {
    return {};
  }
  return (leg.to - leg.from) / span;
}

}  // namespace manet::mobility
