#include "mobility/highway.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace manet::mobility {

HighwayVehicle::HighwayVehicle(const HighwayParams& params, int lane,
                               util::Rng rng)
    : params_(params), lane_(lane), rng_(std::move(rng)) {
  MANET_CHECK(params_.length > 0.0);
  MANET_CHECK(params_.lanes_per_direction > 0);
  MANET_CHECK(lane >= 0 && lane < 2 * params_.lanes_per_direction,
              "lane=" << lane);
  MANET_CHECK(params_.mean_speed > 0.0);
  MANET_CHECK(params_.update_step > 0.0);
  MANET_CHECK(params_.jitter_alpha >= 0.0 && params_.jitter_alpha < 1.0);
  dir_ = lane < params_.lanes_per_direction ? +1 : -1;
  // Lane 0 is the innermost +x lane; opposite-direction lanes sit above.
  lane_y_ = params_.lane_width * (0.5 + static_cast<double>(lane));
  cruise_ = std::max(1.0, rng_.normal(params_.mean_speed,
                                      params_.speed_stddev));
  const double x0 = rng_.uniform(0.0, params_.length);
  set_initial_leg(step_leg(0.0, x0));
}

LegBasedModel::Leg HighwayVehicle::step_leg(sim::Time t_begin, double x) {
  const double a = params_.jitter_alpha;
  jitter_ = a * jitter_ +
            params_.jitter_sigma * std::sqrt(1.0 - a * a) *
                rng_.normal(0.0, 1.0);
  const double speed = std::max(1.0, cruise_ + jitter_);
  double span = params_.update_step;
  double x_end = x + dir_ * speed * span;
  // Truncate at the segment end; the *next* leg re-enters from the other end.
  if (x_end > params_.length) {
    span = std::max((params_.length - x) / speed, 1e-6);
    x_end = params_.length;
  } else if (x_end < 0.0) {
    span = std::max(x / speed, 1e-6);
    x_end = 0.0;
  }
  return Leg{t_begin, t_begin + span, geom::Vec2{x, lane_y_},
             geom::Vec2{x_end, lane_y_}};
}

LegBasedModel::Leg HighwayVehicle::next_leg(const Leg& prev) {
  double x = prev.to.x;
  // Re-entry: a vehicle that left one end appears at the other end (a fresh
  // arrival); legs are continuous in time but may jump in space here.
  if (dir_ > 0 && x >= params_.length) {
    x = 0.0;
  } else if (dir_ < 0 && x <= 0.0) {
    x = params_.length;
  }
  return step_leg(prev.t_end, x);
}

std::vector<std::unique_ptr<MobilityModel>> make_highway(
    const HighwayParams& params, std::size_t n, util::Rng rng) {
  std::vector<std::unique_ptr<MobilityModel>> out;
  out.reserve(n);
  const int lanes = 2 * params.lanes_per_direction;
  for (std::size_t i = 0; i < n; ++i) {
    const int lane = static_cast<int>(i % static_cast<std::size_t>(lanes));
    out.push_back(std::make_unique<HighwayVehicle>(
        params, lane, rng.substream("vehicle", i)));
  }
  return out;
}

geom::Rect highway_field(const HighwayParams& params) {
  return geom::Rect(params.length,
                    params.lane_width * 2.0 * params.lanes_per_direction);
}

}  // namespace manet::mobility
