#include "mobility/gauss_markov.h"

#include <cmath>
#include <numbers>

#include "util/assert.h"

namespace manet::mobility {

GaussMarkov::GaussMarkov(const GaussMarkovParams& params, util::Rng rng)
    : params_(params), rng_(std::move(rng)) {
  MANET_CHECK(params_.alpha >= 0.0 && params_.alpha < 1.0,
              "alpha=" << params_.alpha);
  MANET_CHECK(params_.mean_speed >= 0.0);
  MANET_CHECK(params_.sigma >= 0.0);
  MANET_CHECK(params_.step > 0.0);
  const double theta = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  v_mean_ = geom::Vec2{std::cos(theta), std::sin(theta)} * params_.mean_speed;
  v_ = v_mean_;
  set_initial_leg(step_leg(0.0, params_.field.sample(rng_)));
}

LegBasedModel::Leg GaussMarkov::step_leg(sim::Time t_begin, geom::Vec2 from) {
  const double a = params_.alpha;
  const double noise = params_.sigma * std::sqrt(1.0 - a * a);
  v_.x = a * v_.x + (1.0 - a) * v_mean_.x + noise * rng_.normal(0.0, 1.0);
  v_.y = a * v_.y + (1.0 - a) * v_mean_.y + noise * rng_.normal(0.0, 1.0);

  geom::Vec2 to = from + v_ * params_.step;
  if (!params_.field.contains(to)) {
    // Bounce: reflect position and flip the corresponding velocity and
    // mean-heading components so the process drifts back inside.
    geom::Vec2 dir = v_;
    to = params_.field.reflect(to, dir);
    if ((dir.x > 0.0) != (v_.x > 0.0)) {
      v_mean_.x = -v_mean_.x;
    }
    if ((dir.y > 0.0) != (v_.y > 0.0)) {
      v_mean_.y = -v_mean_.y;
    }
    v_ = dir;
  }
  return Leg{t_begin, t_begin + params_.step, from, to};
}

LegBasedModel::Leg GaussMarkov::next_leg(const Leg& prev) {
  return step_leg(prev.t_end, prev.to);
}

}  // namespace manet::mobility
