// PiecewiseLinearTrack: an explicit itinerary of (time, position) breakpoints
// with linear interpolation. Unlike LegBasedModel it supports queries at
// *any* time within its span, so it can be shared by several consumers whose
// query times interleave (e.g. the RPGM group center) and backs trace replay.
#pragma once

#include <vector>

#include "geom/vec2.h"
#include "sim/event_queue.h"

namespace manet::mobility {

class PiecewiseLinearTrack {
 public:
  /// Appends a breakpoint; times must be strictly increasing.
  void append(sim::Time t, geom::Vec2 pos);

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  sim::Time begin_time() const;
  sim::Time end_time() const;

  /// Position at time t; clamps to the first/last breakpoint outside the
  /// span. Requires a non-empty track.
  geom::Vec2 position(sim::Time t) const;

  /// Velocity of the segment containing t (zero outside the span or on a
  /// single-point track).
  geom::Vec2 velocity(sim::Time t) const;

  struct Point {
    sim::Time t;
    geom::Vec2 pos;
  };
  const std::vector<Point>& points() const { return points_; }

 private:
  /// Index of the last breakpoint with time <= t (requires t >= begin).
  std::size_t segment_of(sim::Time t) const;

  std::vector<Point> points_;
};

}  // namespace manet::mobility
