#include "mobility/manhattan.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/assert.h"

namespace manet::mobility {

Manhattan::Manhattan(const ManhattanParams& params, util::Rng rng)
    : params_(params), rng_(std::move(rng)) {
  MANET_CHECK(params_.block_size > 0.0);
  MANET_CHECK(params_.block_size <= params_.field.width &&
                  params_.block_size <= params_.field.height,
              "block larger than the field");
  MANET_CHECK(params_.min_speed > 0.0 &&
              params_.min_speed <= params_.max_speed);
  MANET_CHECK(params_.turn_probability >= 0.0 &&
              params_.turn_probability <= 1.0);
  MANET_CHECK(params_.speed_epoch > 0.0);
  streets_x_ = static_cast<int>(params_.field.width / params_.block_size) + 1;
  streets_y_ =
      static_cast<int>(params_.field.height / params_.block_size) + 1;

  const geom::Vec2 start{
      street_coord(static_cast<int>(rng_.index(
          static_cast<std::size_t>(streets_x_)))),
      street_coord(static_cast<int>(rng_.index(
          static_cast<std::size_t>(streets_y_))))};
  speed_ = rng_.uniform(params_.min_speed, params_.max_speed);
  epoch_left_ = params_.speed_epoch;
  dir_ = geom::Vec2{1.0, 0.0};  // placeholder; choose a legal one:
  choose_direction(start);
  set_initial_leg(make_leg(0.0, start));
}

double Manhattan::street_coord(int index) const {
  return params_.block_size * static_cast<double>(index);
}

bool Manhattan::at_intersection(geom::Vec2 p) const {
  const auto on_grid = [&](double v) {
    const double r = std::fmod(v, params_.block_size);
    return r < 1e-6 || params_.block_size - r < 1e-6;
  };
  return on_grid(p.x) && on_grid(p.y);
}

void Manhattan::choose_direction(geom::Vec2 at) {
  MANET_ASSERT(at_intersection(at));
  const std::vector<geom::Vec2> all = {
      {1.0, 0.0}, {-1.0, 0.0}, {0.0, 1.0}, {0.0, -1.0}};
  std::vector<geom::Vec2> legal;
  for (const auto d : all) {
    const geom::Vec2 next = at + d * params_.block_size;
    if (next.x >= -1e-6 && next.x <= params_.field.width + 1e-6 &&
        next.y >= -1e-6 && next.y <= params_.field.height + 1e-6) {
      legal.push_back(d);
    }
  }
  MANET_ASSERT(!legal.empty(), "isolated intersection");

  const auto contains = [&legal](geom::Vec2 d) {
    return std::find(legal.begin(), legal.end(), d) != legal.end();
  };
  std::vector<geom::Vec2> perps;
  for (const auto d : legal) {
    if (std::abs(d.dot(dir_)) < 0.5) {
      perps.push_back(d);
    }
  }

  const bool straight_ok = contains(dir_);
  if (straight_ok &&
      (perps.empty() || !rng_.bernoulli(params_.turn_probability))) {
    return;  // keep going straight
  }
  if (!perps.empty()) {
    dir_ = perps[rng_.index(perps.size())];
    return;
  }
  if (straight_ok) {
    return;
  }
  dir_ = dir_ * -1.0;  // dead end: u-turn
  MANET_ASSERT(contains(dir_));
}

LegBasedModel::Leg Manhattan::make_leg(sim::Time t_begin, geom::Vec2 from) {
  if (epoch_left_ <= 0.0) {
    speed_ = rng_.uniform(params_.min_speed, params_.max_speed);
    epoch_left_ = params_.speed_epoch;
  }
  const geom::Vec2 to = from + dir_ * params_.block_size;
  const double span = std::max(params_.block_size / speed_, 1e-6);
  epoch_left_ -= span;
  return Leg{t_begin, t_begin + span, from, to};
}

LegBasedModel::Leg Manhattan::next_leg(const Leg& prev) {
  choose_direction(prev.to);
  return make_leg(prev.t_end, prev.to);
}

}  // namespace manet::mobility
