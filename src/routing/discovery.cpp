#include "routing/discovery.h"

#include <algorithm>
#include <deque>

#include "util/assert.h"

namespace manet::routing {

namespace {

// BFS where only nodes satisfying `forwards` re-broadcast. Any node can
// *receive* (so dst is found through a non-forwarding last hop), but the
// search expands only through forwarders.
template <typename ForwardsFn>
DiscoveryResult restricted_flood(const Adjacency& adj, net::NodeId src,
                                 net::NodeId dst, ForwardsFn forwards) {
  MANET_CHECK(src < adj.size() && dst < adj.size(),
              "src/dst out of range: " << src << ", " << dst);
  MANET_CHECK(src != dst, "src == dst");
  DiscoveryResult result;

  std::vector<net::NodeId> parent(adj.size(), net::kInvalidNode);
  std::vector<char> visited(adj.size(), 0);
  std::deque<net::NodeId> queue;

  visited[src] = 1;
  queue.push_back(src);
  while (!queue.empty() && !result.reached) {
    const net::NodeId u = queue.front();
    queue.pop_front();
    ++result.control_transmissions;  // u broadcasts the RREQ
    for (const net::NodeId v : adj[u]) {
      if (visited[v]) {
        continue;
      }
      visited[v] = 1;
      parent[v] = u;
      if (v == dst) {
        result.reached = true;
        break;
      }
      if (forwards(v)) {
        queue.push_back(v);
      }
    }
  }

  if (result.reached) {
    for (net::NodeId v = dst; v != net::kInvalidNode; v = parent[v]) {
      result.path.push_back(v);
    }
    std::reverse(result.path.begin(), result.path.end());
    MANET_ASSERT(result.path.front() == src && result.path.back() == dst);
    result.route_hops = result.path.size() - 1;
  }
  return result;
}

}  // namespace

DiscoveryResult flood_discovery(const Adjacency& adj, net::NodeId src,
                                net::NodeId dst) {
  return restricted_flood(adj, src, dst, [](net::NodeId) { return true; });
}

DiscoveryResult cluster_discovery(const Adjacency& adj,
                                  const std::vector<NodeClusterState>& state,
                                  net::NodeId src, net::NodeId dst) {
  MANET_CHECK(state.size() == adj.size(), "state/adjacency size mismatch");
  return restricted_flood(adj, src, dst, [&state](net::NodeId v) {
    return state[v].role == cluster::Role::kHead || state[v].gateway;
  });
}

std::size_t shortest_path_hops(const Adjacency& adj, net::NodeId src,
                               net::NodeId dst) {
  if (src == dst) {
    return 0;
  }
  const auto r = flood_discovery(adj, src, dst);
  return r.route_hops;
}

}  // namespace manet::routing
