#include "routing/experiment.h"

#include <algorithm>

#include "mobility/track.h"
#include "routing/discovery.h"
#include "util/assert.h"
#include "util/thread_role.h"
#include "util/stats.h"

namespace manet::routing {

namespace {

struct RecordedRoute {
  sim::Time discovered_at = 0.0;
  std::vector<net::NodeId> path;
};

// First sampled time >= t0 at which some consecutive route pair exceeds the
// range; returns the survival duration (censored at duration).
double route_lifetime(const std::vector<mobility::PiecewiseLinearTrack>& tracks,
                      const RecordedRoute& route, double range_m,
                      double duration, double dt) {
  for (double t = route.discovered_at; t <= duration + 1e-9; t += dt) {
    for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
      const auto a = tracks[route.path[i]].position(t);
      const auto b = tracks[route.path[i + 1]].position(t);
      if (geom::distance(a, b) > range_m) {
        return t - route.discovered_at;
      }
    }
  }
  return duration - route.discovered_at;
}

// Mutable state shared between the scheduled sampler callbacks and the
// post-run aggregation. Bundled in one struct so the discovery-sampler
// lambda captures two pointers instead of a reference per local (event
// callbacks must fit InplaceEvent's 48-byte inline buffer).
struct SamplerState {
  explicit SamplerState(util::Rng rng) : pair_rng(std::move(rng)) {}

  util::Rng pair_rng;
  std::size_t n_nodes = 0;
  int discoveries_per_sample = 0;
  std::size_t attempts = 0;
  std::size_t flood_ok = 0;
  std::size_t cluster_ok = 0;
  util::RunningStats tx_flood, tx_cluster, hops_flood, hops_cluster, stretch;
  util::RunningStats overlay_churn;
  std::vector<char> prev_overlay;
  std::vector<RecordedRoute> flood_routes;
  std::vector<RecordedRoute> cluster_routes;
};

}  // namespace

RoutingResult run_routing_experiment(const RoutingExperimentParams& params,
                                     const scenario::OptionsFactory& factory) {
  MANET_CHECK(params.sample_period > 0.0);
  MANET_CHECK(params.discoveries_per_sample > 0);
  MANET_CHECK(params.track_dt > 0.0);
  const auto& sc = params.scenario;

  SamplerState st(util::Rng(sc.seed).substream("routing-pairs"));
  st.n_nodes = sc.n_nodes;
  st.discoveries_per_sample = params.discoveries_per_sample;

  std::vector<mobility::PiecewiseLinearTrack> tracks(sc.n_nodes);

  const auto on_start = [&](scenario::LiveContext& ctx) {
    // Invoked from inside run_scenario, on the run's commit thread.
    MANET_ASSERT_COMMIT_ROLE();
    // Track recorder.
    const double dt = params.track_dt;
    for (double t = 0.0; t <= sc.sim_time + 1e-9; t += dt) {
      ctx.sim.schedule_at(t, [&ctx, &tracks] {
        MANET_ASSERT_COMMIT_ROLE();
        const sim::Time now = ctx.sim.now();
        for (std::size_t i = 0; i < ctx.network.size(); ++i) {
          tracks[i].append(now, ctx.network.node(
                                    static_cast<net::NodeId>(i)).position(now));
        }
      });
    }
    // Discovery sampler.
    for (double t = sc.warmup; t <= sc.sim_time - 1e-9;
         t += params.sample_period) {
      ctx.sim.schedule_at(t, [&ctx, s = &st] {
        MANET_ASSERT_COMMIT_ROLE();
        const sim::Time now = ctx.sim.now();
        const Adjacency adj = ctx.network.true_adjacency(now);
        std::vector<NodeClusterState> state(ctx.agents.size());
        for (std::size_t i = 0; i < ctx.agents.size(); ++i) {
          state[i] = NodeClusterState{ctx.agents[i]->role(),
                                      ctx.agents[i]->cluster_head(),
                                      ctx.agents[i]->is_gateway()};
        }
        // Overlay membership churn vs the previous sample instant.
        std::vector<char> overlay(state.size(), 0);
        for (std::size_t i = 0; i < state.size(); ++i) {
          overlay[i] =
              (state[i].role == cluster::Role::kHead || state[i].gateway)
                  ? 1
                  : 0;
        }
        if (!s->prev_overlay.empty()) {
          std::size_t flips = 0;
          for (std::size_t i = 0; i < overlay.size(); ++i) {
            flips += overlay[i] != s->prev_overlay[i] ? 1 : 0;
          }
          s->overlay_churn.add(static_cast<double>(flips) /
                               static_cast<double>(overlay.size()));
        }
        s->prev_overlay = std::move(overlay);
        for (int k = 0; k < s->discoveries_per_sample; ++k) {
          const auto src =
              static_cast<net::NodeId>(s->pair_rng.index(s->n_nodes));
          auto dst = static_cast<net::NodeId>(s->pair_rng.index(s->n_nodes));
          while (dst == src) {
            dst = static_cast<net::NodeId>(s->pair_rng.index(s->n_nodes));
          }
          ++s->attempts;
          const auto f = flood_discovery(adj, src, dst);
          const auto c = cluster_discovery(adj, state, src, dst);
          s->tx_flood.add(static_cast<double>(f.control_transmissions));
          s->tx_cluster.add(static_cast<double>(c.control_transmissions));
          if (f.reached) {
            ++s->flood_ok;
            s->hops_flood.add(static_cast<double>(f.route_hops));
            s->flood_routes.push_back({now, f.path});
          }
          if (c.reached) {
            ++s->cluster_ok;
            s->hops_cluster.add(static_cast<double>(c.route_hops));
            s->cluster_routes.push_back({now, c.path});
          }
          if (f.reached && c.reached && f.route_hops > 0) {
            s->stretch.add(static_cast<double>(c.route_hops) /
                           static_cast<double>(f.route_hops));
          }
        }
      });
    }
  };

  const scenario::RunResult run = run_scenario(sc, factory, on_start);

  RoutingResult out;
  out.ch_changes = run.ch_changes;
  out.avg_clusters = run.avg_clusters;
  out.attempts = st.attempts;
  if (st.attempts > 0) {
    out.delivery_flood =
        static_cast<double>(st.flood_ok) / static_cast<double>(st.attempts);
    out.delivery_cluster =
        static_cast<double>(st.cluster_ok) / static_cast<double>(st.attempts);
  }
  out.mean_tx_flood = st.tx_flood.mean();
  out.mean_tx_cluster = st.tx_cluster.mean();
  out.mean_hops_flood = st.hops_flood.mean();
  out.mean_hops_cluster = st.hops_cluster.mean();
  out.mean_stretch = st.stretch.mean();

  util::RunningStats life_flood, life_cluster;
  for (const auto& r : st.flood_routes) {
    life_flood.add(route_lifetime(tracks, r, sc.tx_range, sc.sim_time,
                                  params.track_dt));
  }
  for (const auto& r : st.cluster_routes) {
    life_cluster.add(route_lifetime(tracks, r, sc.tx_range, sc.sim_time,
                                    params.track_dt));
  }
  out.mean_route_lifetime_flood = life_flood.mean();
  out.mean_route_lifetime_cluster = life_cluster.mean();
  out.overlay_churn = st.overlay_churn.mean();
  return out;
}

}  // namespace manet::routing
