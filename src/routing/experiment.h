// The routing experiment driver (ablation A7): runs a clustering scenario
// while periodically sampling route discoveries between random node pairs,
// comparing flat flooding against the cluster overlay, and — after the run —
// measuring how long each discovered route survived node motion (route
// lifetime, from recorded position tracks).
//
// The punchline quantity is control overhead and route lifetime as a
// function of the clustering algorithm: stabler clusterheads (MOBIC) mean a
// stabler forwarding overlay.
#pragma once

#include "scenario/scenario.h"

namespace manet::routing {

struct RoutingExperimentParams {
  scenario::Scenario scenario;
  /// Route discoveries are sampled every `sample_period` seconds starting
  /// after the scenario warm-up.
  double sample_period = 15.0;
  /// Random (src, dst) pairs per sample instant.
  int discoveries_per_sample = 4;
  /// Position-track recording resolution (route-lifetime analysis).
  double track_dt = 1.0;
};

struct RoutingResult {
  // Clustering context.
  std::uint64_t ch_changes = 0;
  double avg_clusters = 0.0;

  // Discovery outcomes (aggregated over all attempts).
  std::size_t attempts = 0;
  double delivery_flood = 0.0;    // fraction of attempts that found dst
  double delivery_cluster = 0.0;
  double mean_tx_flood = 0.0;     // control transmissions per attempt
  double mean_tx_cluster = 0.0;
  double mean_hops_flood = 0.0;   // route length when found
  double mean_hops_cluster = 0.0;
  /// Mean (cluster hops / flood hops) over attempts both schemes delivered.
  double mean_stretch = 0.0;

  // Route survival (seconds until a discovered route's first link broke;
  // censored at simulation end).
  double mean_route_lifetime_flood = 0.0;
  double mean_route_lifetime_cluster = 0.0;

  // Forwarding-overlay stability: fraction of nodes whose membership in
  // the overlay (head or gateway) flipped between consecutive samples.
  // This is the CBRP maintenance cost a stable clustering saves.
  double overlay_churn = 0.0;
};

RoutingResult run_routing_experiment(const RoutingExperimentParams& params,
                                     const scenario::OptionsFactory& factory);

}  // namespace manet::routing
