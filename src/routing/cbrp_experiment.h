// End-to-end CBRP experiment: a fleet of CbrpAgents (clustering underlay +
// packet-level routing) carrying constant-rate application flows between
// random node pairs. Measures what the paper's §5 integration would: data
// delivery ratio, control overhead per delivered packet, discovery latency
// and route length — per clustering algorithm.
#pragma once

#include "routing/cbrp.h"
#include "scenario/scenario.h"

namespace manet::routing {

struct CbrpExperimentParams {
  scenario::Scenario scenario;
  /// Concurrent application flows (random distinct src->dst pairs).
  int flows = 10;
  /// Seconds between packets within each flow.
  double data_interval = 5.0;
  /// Application payload bytes per packet.
  std::size_t payload_bytes = 512;
  CbrpOptions cbrp{};  // clustering is overwritten by `factory` below
};

struct CbrpExperimentResult {
  std::uint64_t ch_changes = 0;
  CbrpStats stats;
  double delivery_ratio = 0.0;
  double control_per_delivery = 0.0;
  double mean_discovery_latency = 0.0;  // s
  double mean_route_hops = 0.0;
};

CbrpExperimentResult run_cbrp_experiment(
    const CbrpExperimentParams& params,
    const scenario::OptionsFactory& factory);

}  // namespace manet::routing
