#include "routing/cbrp_experiment.h"

#include "radio/medium.h"
#include "sim/simulator.h"
#include "util/assert.h"
#include "util/thread_role.h"

namespace manet::routing {

CbrpExperimentResult run_cbrp_experiment(
    const CbrpExperimentParams& params,
    const scenario::OptionsFactory& factory) {
  const auto& sc = params.scenario;
  MANET_CHECK(sc.n_nodes >= 2, "need at least two nodes");
  MANET_CHECK(params.flows > 0 && params.data_interval > 0.0);

  // This thread drives the run's simulator: it is the commit thread.
  util::CommitRoleScope commit_scope;

  sim::Simulator sim;
  util::Rng root(sc.seed);

  radio::Medium medium(
      radio::make_propagation(sc.propagation, sc.pathloss_exponent,
                              sc.shadowing_sigma_db),
      radio::RadioParams{}, sc.tx_range);
  mobility::FleetParams fleet = sc.fleet;
  fleet.duration = sc.sim_time;
  const geom::Rect field = mobility::fleet_field(fleet);
  net::NetworkParams net_params = sc.net;
  net_params.speed_bound =
      std::max(net_params.speed_bound, fleet.max_speed * 2.0);

  net::Network network(sim, std::move(medium), field, net_params,
                       root.substream("network"));
  network.add_fleet(
      mobility::make_fleet(fleet, sc.n_nodes, root.substream("mobility")));

  cluster::ClusterStats cluster_stats(sc.warmup);
  CbrpStats stats;
  std::vector<CbrpAgent*> agents;
  agents.reserve(sc.n_nodes);
  for (auto& node : network.nodes()) {
    CbrpOptions o = params.cbrp;
    o.clustering = factory(&cluster_stats);
    o.stats = &stats;
    auto agent = std::make_unique<CbrpAgent>(o);
    agents.push_back(agent.get());
    node->set_agent(std::move(agent));
  }
  network.start();

  // Application flows: distinct random pairs, constant bit rate from
  // warm-up (clusters need a moment to form) to the end.
  util::Rng traffic = root.substream("traffic");
  for (int f = 0; f < params.flows; ++f) {
    const auto src = static_cast<net::NodeId>(traffic.index(sc.n_nodes));
    auto dst = static_cast<net::NodeId>(traffic.index(sc.n_nodes));
    while (dst == src) {
      dst = static_cast<net::NodeId>(traffic.index(sc.n_nodes));
    }
    // Small phase offset so flows do not all fire simultaneously.
    const double phase = traffic.uniform(0.0, params.data_interval);
    for (double t = sc.warmup + phase; t < sc.sim_time;
         t += params.data_interval) {
      sim.schedule_at(t, [&network, &agents, src, dst, &params] {
        MANET_ASSERT_COMMIT_ROLE();
        agents[src]->send_data(network.node(src), dst,
                               params.payload_bytes);
      });
    }
  }

  sim.run_until(sc.sim_time);
  cluster_stats.finish(sc.sim_time);

  CbrpExperimentResult result;
  result.ch_changes = cluster_stats.clusterhead_changes();
  result.stats = stats;
  result.delivery_ratio = stats.delivery_ratio();
  result.control_per_delivery = stats.control_per_delivery();
  result.mean_discovery_latency = stats.discovery_latency.mean();
  result.mean_route_hops = stats.route_hops.mean();
  return result;
}

}  // namespace manet::routing
