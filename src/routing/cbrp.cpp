#include "routing/cbrp.h"

#include <algorithm>

#include "net/network.h"
#include "util/assert.h"

namespace manet::routing {

namespace {

template <typename T>
net::Message make_message(int kind, net::NodeId dst, T body,
                          std::size_t bytes) {
  net::Message msg;
  msg.dst = dst;
  msg.kind = kind;
  msg.body = std::make_shared<const T>(std::move(body));
  msg.bytes = bytes;
  return msg;
}

template <typename T>
const T& body_of(const net::Message& msg) {
  MANET_ASSERT(msg.body != nullptr);
  return *static_cast<const T*>(msg.body.get());
}

}  // namespace

CbrpAgent::CbrpAgent(const CbrpOptions& options)
    : options_(options), cluster_(options.clustering) {
  MANET_CHECK(options_.max_path_hops >= 2, "max_path_hops too small");
  MANET_CHECK(options_.discovery_timeout > 0.0);
  MANET_CHECK(options_.pending_queue_limit > 0);
}

void CbrpAgent::on_attach(net::Node& node) {
  self_ = node.id();
  cluster_.on_attach(node);
}

void CbrpAgent::on_reset(net::Node& node) {
  cluster_.on_reset(node);
  routes_.clear();
  seen_rreqs_.clear();
  pending_.clear();
  discovering_.clear();
}

void CbrpAgent::on_beacon(net::Node& node, net::HelloPacket& out) {
  cluster_.on_beacon(node, out);
}

void CbrpAgent::on_hello(net::Node& node, const net::HelloPacket& pkt,
                         double rx_power_w) {
  cluster_.on_hello(node, pkt, rx_power_w);
}

std::vector<net::NodeId> CbrpAgent::cached_route(net::NodeId target) const {
  const auto it = routes_.find(target);
  return it == routes_.end() ? std::vector<net::NodeId>{} : it->second;
}

void CbrpAgent::send_data(net::Node& node, net::NodeId target,
                          std::size_t bytes) {
  MANET_CHECK(target != self_, "send_data to self");
  if (options_.stats != nullptr) {
    ++options_.stats->data_sent;
  }
  const auto route = routes_.find(target);
  if (route != routes_.end()) {
    Data data;
    data.path = route->second;
    data.hop_index = 0;
    data.bytes = bytes;
    forward_data(node, data);
    return;
  }
  auto& queue = pending_[target];
  if (queue.size() < options_.pending_queue_limit) {
    queue.push_back(bytes);
  } else if (options_.stats != nullptr) {
    ++options_.stats->data_dropped;  // buffer overflow
  }
  start_discovery(node, target);
}

void CbrpAgent::start_discovery(net::Node& node, net::NodeId target) {
  const sim::Time now = node.simulator().now();
  const auto inflight = discovering_.find(target);
  if (inflight != discovering_.end() &&
      now - inflight->second < options_.discovery_timeout) {
    return;  // a discovery is already pending; don't storm
  }
  discovering_[target] = now;
  if (options_.stats != nullptr) {
    ++options_.stats->discoveries_started;
  }
  Rreq rreq;
  rreq.id = next_rreq_id_++;
  rreq.origin = self_;
  rreq.target = target;
  rreq.started_at = now;
  rreq.path = {self_};
  seen_rreqs_.insert({self_, rreq.id});
  if (options_.stats != nullptr) {
    ++options_.stats->rreq_tx;
  }
  node.network().send(node, make_message(kRreq, net::kInvalidNode, rreq,
                                         control_bytes(1)));
}

void CbrpAgent::on_message(net::Node& node, const net::Message& msg) {
  switch (msg.kind) {
    case kRreq:
      handle_rreq(node, body_of<Rreq>(msg));
      break;
    case kRrep:
      handle_rrep(node, body_of<Rrep>(msg));
      break;
    case kData:
      handle_data(node, body_of<Data>(msg));
      break;
    case kRerr:
      handle_rerr(node, body_of<Rerr>(msg));
      break;
    default:
      MANET_CHECK(false, "unknown CBRP message kind " << msg.kind);
  }
}

void CbrpAgent::handle_rreq(net::Node& node, const Rreq& rreq) {
  if (!seen_rreqs_.insert({rreq.origin, rreq.id}).second) {
    return;  // duplicate
  }
  Rreq mine = rreq;
  mine.path.push_back(self_);

  if (self_ == rreq.target) {
    // Found: answer with a source-routed RREP walking back to the origin.
    Rrep rrep;
    rrep.id = rreq.id;
    rrep.started_at = rreq.started_at;
    rrep.path = mine.path;
    rrep.hop_index = rrep.path.size() - 1;
    handle_rrep(node, rrep);  // treat ourselves as the current holder
    return;
  }
  if (mine.path.size() >= options_.max_path_hops) {
    return;  // TTL exceeded
  }
  // The cluster overlay: only heads and gateways relay RREQs (plus the
  // origin, which already broadcast).
  const auto role = cluster_.role();
  const bool forwards =
      role == cluster::Role::kHead || cluster_.is_gateway();
  if (!forwards) {
    return;
  }
  if (options_.stats != nullptr) {
    ++options_.stats->rreq_tx;
  }
  node.network().send(
      node, make_message(kRreq, net::kInvalidNode, mine,
                         control_bytes(mine.path.size())));
}

void CbrpAgent::handle_rrep(net::Node& node, const Rrep& rrep) {
  MANET_ASSERT(!rrep.path.empty());
  if (rrep.hop_index == 0) {
    MANET_ASSERT(rrep.path.front() == self_);
    // Discovery complete at the origin.
    const net::NodeId target = rrep.path.back();
    routes_[target] = rrep.path;
    discovering_.erase(target);
    if (options_.stats != nullptr) {
      ++options_.stats->discoveries_succeeded;
      options_.stats->discovery_latency.add(node.simulator().now() -
                                            rrep.started_at);
      options_.stats->route_hops.add(
          static_cast<double>(rrep.path.size() - 1));
    }
    flush_pending(node, target);
    return;
  }
  // Forward one hop toward the origin.
  Rrep next = rrep;
  --next.hop_index;
  const net::NodeId next_hop = next.path[next.hop_index];
  if (options_.stats != nullptr) {
    ++options_.stats->rrep_tx;
  }
  node.network().send(node, make_message(kRrep, next_hop, next,
                                         control_bytes(next.path.size())));
  // A lost RREP simply lets the discovery time out; the origin retries on
  // the next application send.
}

void CbrpAgent::flush_pending(net::Node& node, net::NodeId target) {
  const auto it = pending_.find(target);
  if (it == pending_.end()) {
    return;
  }
  const auto route = routes_.find(target);
  MANET_ASSERT(route != routes_.end());
  for (const std::size_t bytes : it->second) {
    Data data;
    data.path = route->second;
    data.hop_index = 0;
    data.bytes = bytes;
    forward_data(node, data);
  }
  pending_.erase(it);
}

void CbrpAgent::forward_data(net::Node& node, const Data& data) {
  MANET_ASSERT(data.hop_index + 1 < data.path.size());
  Data next = data;
  ++next.hop_index;
  const net::NodeId next_hop = next.path[next.hop_index];
  if (options_.stats != nullptr) {
    ++options_.stats->data_tx;
  }
  const std::size_t ok = node.network().send(
      node, make_message(kData, next_hop, next, 24 + data.bytes));
  if (ok > 0) {
    return;
  }
  // Link broke: drop the packet and walk a RERR back to the origin so it
  // re-discovers.
  if (options_.stats != nullptr) {
    ++options_.stats->data_dropped;
  }
  const net::NodeId target = data.path.back();
  if (data.hop_index == 0) {
    // We *are* the origin: invalidate immediately.
    routes_.erase(target);
    return;
  }
  Rerr rerr;
  rerr.path = data.path;
  rerr.hop_index = data.hop_index;
  rerr.target = target;
  handle_rerr(node, rerr);
}

void CbrpAgent::handle_data(net::Node& node, const Data& data) {
  MANET_ASSERT(data.hop_index < data.path.size());
  MANET_ASSERT(data.path[data.hop_index] == self_);
  if (self_ == data.path.back()) {
    if (options_.stats != nullptr) {
      ++options_.stats->data_delivered;
    }
    return;
  }
  forward_data(node, data);
}

void CbrpAgent::handle_rerr(net::Node& node, const Rerr& rerr) {
  MANET_ASSERT(rerr.hop_index < rerr.path.size());
  if (rerr.path[rerr.hop_index] == self_ && rerr.hop_index == 0) {
    routes_.erase(rerr.target);  // origin: drop the stale route
    return;
  }
  Rerr next = rerr;
  --next.hop_index;
  const net::NodeId next_hop = next.path[next.hop_index];
  if (options_.stats != nullptr) {
    ++options_.stats->rerr_tx;
  }
  const std::size_t ok = node.network().send(
      node, make_message(kRerr, next_hop, next, control_bytes(0)));
  if (ok == 0 && options_.stats != nullptr) {
    // The error report itself was lost; the origin will find out when its
    // next data packet dies at the same break.
  }
  (void)ok;
}

}  // namespace manet::routing
