// CBRP-style on-demand source routing over the cluster structure — the
// paper's first future-work item ("integrate the mobility metric with a
// cluster based routing protocol", §5; CBRP [10] is the protocol the paper
// names as the natural host).
//
// Packet-level behaviour on the simulated medium:
//   * RREQ — broadcast flood restricted to the cluster overlay: only
//     clusterheads and gateways rebroadcast (ordinary members receive but
//     stay silent); the traversed path is recorded in the packet.
//   * RREP — unicast hop-by-hop back along the recorded path.
//   * DATA — source-routed unicast forwarding along the cached route.
//   * RERR — on a broken data hop, unicast back to the origin, which
//     invalidates its route cache; the next send re-discovers.
//
// Each node runs a CbrpAgent which *wraps* the clustering agent: Hello
// processing and role decisions are delegated, so the routing overlay is
// exactly the structure MOBIC (or Lowest-ID) maintains underneath.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>

#include "cluster/agent.h"
#include "net/agent.h"
#include "net/node.h"
#include "util/stats.h"

namespace manet::routing {

/// Shared measurement sink for a fleet of CbrpAgents.
struct CbrpStats {
  std::uint64_t rreq_tx = 0;   // RREQ (re)broadcasts
  std::uint64_t rrep_tx = 0;   // RREP unicast hops
  std::uint64_t data_tx = 0;   // DATA unicast hops attempted
  std::uint64_t rerr_tx = 0;   // RERR unicast hops
  std::uint64_t discoveries_started = 0;
  std::uint64_t discoveries_succeeded = 0;
  std::uint64_t data_sent = 0;       // application sends accepted
  std::uint64_t data_delivered = 0;  // reached the final destination
  std::uint64_t data_dropped = 0;    // lost to a broken hop
  util::RunningStats discovery_latency;  // seconds, successful ones
  util::RunningStats route_hops;         // length of discovered routes

  double delivery_ratio() const {
    return data_sent == 0
               ? 0.0
               : static_cast<double>(data_delivered) /
                     static_cast<double>(data_sent);
  }
  /// Control transmissions per delivered data packet.
  double control_per_delivery() const {
    return data_delivered == 0
               ? 0.0
               : static_cast<double>(rreq_tx + rrep_tx + rerr_tx) /
                     static_cast<double>(data_delivered);
  }
};

struct CbrpOptions {
  cluster::ClusterOptions clustering;  // the underlay configuration
  std::uint32_t max_path_hops = 32;    // RREQ TTL
  double discovery_timeout = 3.0;      // s before a discovery may be retried
  std::size_t pending_queue_limit = 16;  // data buffered per destination
  CbrpStats* stats = nullptr;            // shared, not owned (may be null)
};

class CbrpAgent final : public net::Agent {
 public:
  explicit CbrpAgent(const CbrpOptions& options);

  /// The wrapped clustering protocol (read-only access for samplers).
  const cluster::WeightedClusterAgent& clustering() const {
    return cluster_;
  }

  /// Application-level send: source-routes immediately if a cached route
  /// exists, otherwise buffers the payload and starts a discovery.
  void send_data(net::Node& node, net::NodeId target, std::size_t bytes);

  /// Cached route to `target` (empty if none) — src..target inclusive.
  std::vector<net::NodeId> cached_route(net::NodeId target) const;

  // net::Agent interface.
  void on_attach(net::Node& node) MANET_COMMIT_ONLY override;
  void on_reset(net::Node& node) MANET_COMMIT_ONLY override;
  void on_beacon(net::Node& node, net::HelloPacket& out)
      MANET_COMMIT_ONLY override;
  void on_hello(net::Node& node, const net::HelloPacket& pkt,
                double rx_power_w) MANET_COMMIT_ONLY override;
  void on_message(net::Node& node, const net::Message& msg)
      MANET_COMMIT_ONLY override;

 private:
  struct Rreq {
    std::uint32_t id = 0;
    net::NodeId origin = net::kInvalidNode;
    net::NodeId target = net::kInvalidNode;
    sim::Time started_at = 0.0;
    std::vector<net::NodeId> path;  // origin .. current holder
  };
  struct Rrep {
    std::uint32_t id = 0;
    sim::Time started_at = 0.0;
    std::vector<net::NodeId> path;  // origin .. target
    std::size_t hop_index = 0;      // position of the current holder
  };
  struct Data {
    std::vector<net::NodeId> path;
    std::size_t hop_index = 0;
    std::size_t bytes = 0;
  };
  struct Rerr {
    std::vector<net::NodeId> path;  // the broken route
    std::size_t hop_index = 0;      // current holder (walking to origin)
    net::NodeId target = net::kInvalidNode;
  };

  enum MessageKind {
    kRreq = 1,
    kRrep = 2,
    kData = 3,
    kRerr = 4,
  };

  void start_discovery(net::Node& node, net::NodeId target);
  void handle_rreq(net::Node& node, const Rreq& rreq);
  void handle_rrep(net::Node& node, const Rrep& rrep);
  void handle_data(net::Node& node, const Data& data);
  void handle_rerr(net::Node& node, const Rerr& rerr);
  /// Forwards DATA one hop; on link failure emits RERR toward the origin.
  void forward_data(net::Node& node, const Data& data);
  void flush_pending(net::Node& node, net::NodeId target);

  static std::size_t control_bytes(std::size_t path_len) {
    return 16 + 4 * path_len;  // headers + recorded route
  }

  CbrpOptions options_;
  cluster::WeightedClusterAgent cluster_;
  net::NodeId self_ = net::kInvalidNode;
  std::uint32_t next_rreq_id_ = 1;
  /// Routes by destination (paths src..dst).
  std::map<net::NodeId, std::vector<net::NodeId>> routes_;
  /// RREQ dedup: (origin, id) pairs already relayed.
  std::set<std::pair<net::NodeId, std::uint32_t>> seen_rreqs_;
  /// Buffered application payloads per destination.
  std::map<net::NodeId, std::deque<std::size_t>> pending_;
  /// In-flight discovery start times per destination.
  std::map<net::NodeId, sim::Time> discovering_;
};

}  // namespace manet::routing
