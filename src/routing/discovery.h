// Route-discovery cost models (paper §5 future work: "integrate the
// mobility metric with a cluster based routing protocol"; CBRP [10] is the
// protocol the paper names).
//
// Two discovery schemes over a connectivity snapshot:
//   * flood_discovery   — flat AODV/DSR-style flooding: every reachable
//     node rebroadcasts the RREQ once.
//   * cluster_discovery — CBRP-style: only clusterheads and gateways (plus
//     the source) forward the RREQ; ordinary members receive but stay
//     silent. The overlay shrinks the broadcast storm — the scalability
//     argument of §1/§2.
//
// Both return the number of control transmissions and the discovered route
// length; comparing them across clustering algorithms quantifies how
// cluster *stability* translates into routing performance.
#pragma once

#include <vector>

#include "cluster/types.h"
#include "net/types.h"

namespace manet::routing {

/// adjacency[i] = ids of nodes in range of node i (symmetric).
using Adjacency = std::vector<std::vector<net::NodeId>>;

/// Per-node clustering snapshot (from the agents at sample time).
struct NodeClusterState {
  cluster::Role role = cluster::Role::kUndecided;
  net::NodeId head = net::kInvalidNode;
  bool gateway = false;
};

struct DiscoveryResult {
  bool reached = false;
  /// RREQ (re)broadcasts spent, including the source's initial one.
  std::size_t control_transmissions = 0;
  /// Hop count of the discovered route (0 when unreachable).
  std::size_t route_hops = 0;
  /// The discovered route, src..dst (empty when unreachable).
  std::vector<net::NodeId> path;
};

/// Flat flooding: BFS from src; every node that receives forwards once
/// (dst only replies).
DiscoveryResult flood_discovery(const Adjacency& adj, net::NodeId src,
                                net::NodeId dst);

/// Cluster-overlay flooding: only src, clusterheads and gateways forward.
DiscoveryResult cluster_discovery(const Adjacency& adj,
                                  const std::vector<NodeClusterState>& state,
                                  net::NodeId src, net::NodeId dst);

/// Shortest-path hop count (flat), for stretch accounting; 0 if
/// unreachable or src == dst.
std::size_t shortest_path_hops(const Adjacency& adj, net::NodeId src,
                               net::NodeId dst);

}  // namespace manet::routing
