#include <ostream>

#include "geom/rect.h"
#include "geom/vec2.h"

namespace manet::geom {

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << "(" << v.x << ", " << v.y << ")";
}

Vec2 Rect::reflect(Vec2 p, Vec2& dir) const {
  // Fold the coordinate back into [0, extent] mirroring at each wall; flip
  // the direction component once per crossing (parity of the fold count).
  const auto fold = [](double v, double extent, double& d) {
    if (extent <= 0.0) {
      return 0.0;
    }
    const double period = 2.0 * extent;
    double m = std::fmod(v, period);
    if (m < 0.0) {
      m += period;
    }
    if (m > extent) {
      m = period - m;
      d = -d;
    }
    return m;
  };
  Vec2 out;
  out.x = fold(p.x, width, dir.x);
  out.y = fold(p.y, height, dir.y);
  return out;
}

}  // namespace manet::geom
