// Axis-aligned rectangle; models the simulation field (origin at (0,0)).
#pragma once

#include "geom/vec2.h"
#include "util/assert.h"
#include "util/rng.h"

namespace manet::geom {

struct Rect {
  double width = 0.0;   // x extent, meters
  double height = 0.0;  // y extent, meters

  constexpr Rect() = default;
  Rect(double w, double h) : width(w), height(h) {
    MANET_CHECK(w > 0.0 && h > 0.0, "degenerate field " << w << "x" << h);
  }

  double area() const { return width * height; }
  constexpr bool operator==(const Rect&) const = default;

  bool contains(Vec2 p) const {
    return p.x >= 0.0 && p.x <= width && p.y >= 0.0 && p.y <= height;
  }

  /// Clamps a point to the rectangle boundary.
  Vec2 clamp(Vec2 p) const {
    return {std::min(std::max(p.x, 0.0), width),
            std::min(std::max(p.y, 0.0), height)};
  }

  /// Uniformly random point in the rectangle.
  Vec2 sample(util::Rng& rng) const {
    return {rng.uniform(0.0, width), rng.uniform(0.0, height)};
  }

  /// Reflects a point (and its direction) back into the rectangle, billiard
  /// style; used by bounce-mode mobility models. `dir` is updated in place.
  Vec2 reflect(Vec2 p, Vec2& dir) const;
};

}  // namespace manet::geom
