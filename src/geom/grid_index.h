// Uniform spatial hash over the simulation field for O(1)-expected
// radius queries. The network layer rebuilds it from a position snapshot
// whenever node positions may have moved (cheap: one pass over nodes), then
// answers "who can hear this broadcast" queries against it.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/rect.h"
#include "geom/vec2.h"
#include "util/thread_role.h"

namespace manet::geom {

class GridIndex {
 public:
  /// `cell_size` should be on the order of the typical query radius.
  GridIndex(Rect field, double cell_size);

  /// Replaces the indexed point set. Points outside the field are clamped
  /// into it for binning purposes (their true coordinates are kept for the
  /// distance test).
  // Mutators run at commit-thread epoch barriers only; the const query
  // surface below is read by shard-planner workers in between, so it is
  // marked worker-safe.
  void rebuild(std::span<const Vec2> points) MANET_COMMIT_ONLY;

  /// Fast path for a moved-but-not-rebinned point set: when every point
  /// still maps to the cell it is currently indexed under, updates the
  /// stored exact positions in place (the CSR layout stays valid) and
  /// returns true. Returns false — leaving the index untouched — when the
  /// point count or any cell assignment changed; callers then rebuild().
  bool update_positions(std::span<const Vec2> points) MANET_COMMIT_ONLY;

  std::size_t size() const { return points_.size(); }

  /// Number of grid cells; cell ids are row-major in [0, cell_count()).
  std::size_t cell_count() const { return cols_ * rows_; }

  /// Row-major cell id of a position (clamped into the field) — the tile
  /// coordinate shard planners partition the field on.
  std::size_t cell_index(Vec2 p) const { return cell_of(p); }

  /// Appends the indices of all points within `radius` of `center`
  /// (inclusive) to `out`. The queried set may include the querying point
  /// itself if it is in the index; callers filter by index.
  void query_radius(Vec2 center, double radius,
                    std::vector<std::size_t>& out) const MANET_WORKER_SAFE;

  /// Convenience wrapper returning a fresh vector.
  std::vector<std::size_t> query_radius(Vec2 center, double radius) const
      MANET_WORKER_SAFE;

  /// Brute-force reference implementation, used by tests to validate the
  /// grid and by callers with tiny point sets.
  static std::vector<std::size_t> brute_force(std::span<const Vec2> points,
                                              Vec2 center, double radius);

 private:
  std::size_t cell_of(Vec2 p) const;

  Rect field_;
  double cell_size_;
  std::size_t cols_;
  std::size_t rows_;
  std::vector<Vec2> points_;
  // CSR-style layout: cell_start_[c]..cell_start_[c+1] indexes into order_.
  std::vector<std::size_t> cell_start_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> cursor_;  // rebuild scratch (capacity reused)
};

/// Maps a row-major cell id to one of `n_shards` contiguous tile blocks.
/// Row-major contiguity means a shard covers whole grid rows (plus a
/// partial row at each end), so tile-local work stays field-local; shard
/// assignment is a pure function of the cell id, independent of thread
/// count or timing.
inline std::size_t tile_shard(std::size_t cell, std::size_t n_cells,
                              std::size_t n_shards) {
  if (n_shards <= 1 || n_cells == 0) {
    return 0;
  }
  const std::size_t shard = cell * n_shards / n_cells;
  return shard < n_shards ? shard : n_shards - 1;
}

}  // namespace manet::geom
