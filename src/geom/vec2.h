// 2-D vector type used for node positions and velocities (meters / m/s).
#pragma once

#include <cmath>
#include <iosfwd>

namespace manet::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }
  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  constexpr double norm_sq() const { return x * x + y * y; }
  double norm() const { return std::hypot(x, y); }

  /// Unit vector in the same direction; the zero vector maps to itself.
  Vec2 normalized() const {
    const double n = norm();
    if (n == 0.0) {
      return {};
    }
    return {x / n, y / n};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
inline constexpr double distance_sq(Vec2 a, Vec2 b) {
  return (a - b).norm_sq();
}

/// Linear interpolation: t=0 -> a, t=1 -> b.
constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) { return a + (b - a) * t; }

std::ostream& operator<<(std::ostream& os, Vec2 v);

}  // namespace manet::geom
