#include "geom/grid_index.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace manet::geom {

GridIndex::GridIndex(Rect field, double cell_size)
    : field_(field), cell_size_(cell_size) {
  MANET_CHECK(cell_size > 0.0, "cell_size=" << cell_size);
  cols_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(field.width / cell_size)));
  rows_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(field.height / cell_size)));
  cell_start_.assign(cols_ * rows_ + 1, 0);
}

std::size_t GridIndex::cell_of(Vec2 p) const {
  const Vec2 c = field_.clamp(p);
  auto col = static_cast<std::size_t>(c.x / cell_size_);
  auto row = static_cast<std::size_t>(c.y / cell_size_);
  col = std::min(col, cols_ - 1);
  row = std::min(row, rows_ - 1);
  return row * cols_ + col;
}

void GridIndex::rebuild(std::span<const Vec2> points) {
  points_.assign(points.begin(), points.end());
  const std::size_t cells = cols_ * rows_;
  cell_start_.assign(cells + 1, 0);
  // Counting sort of point indices into cells.
  for (const Vec2 p : points_) {
    ++cell_start_[cell_of(p) + 1];
  }
  for (std::size_t c = 0; c < cells; ++c) {
    cell_start_[c + 1] += cell_start_[c];
  }
  order_.resize(points_.size());
  cursor_.assign(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    order_[cursor_[cell_of(points_[i])]++] = i;
  }
}

bool GridIndex::update_positions(std::span<const Vec2> points) {
  if (points.size() != points_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (cell_of(points[i]) != cell_of(points_[i])) {
      return false;
    }
  }
  std::copy(points.begin(), points.end(), points_.begin());
  return true;
}

void GridIndex::query_radius(Vec2 center, double radius,
                             std::vector<std::size_t>& out) const {
  MANET_CHECK(radius >= 0.0, "radius=" << radius);
  const Vec2 c = field_.clamp(center);
  const double r2 = radius * radius;
  const auto col_lo = static_cast<std::size_t>(
      std::max(0.0, std::floor((c.x - radius) / cell_size_)));
  const auto col_hi = std::min(
      cols_ - 1,
      static_cast<std::size_t>(std::max(0.0, (c.x + radius) / cell_size_)));
  const auto row_lo = static_cast<std::size_t>(
      std::max(0.0, std::floor((c.y - radius) / cell_size_)));
  const auto row_hi = std::min(
      rows_ - 1,
      static_cast<std::size_t>(std::max(0.0, (c.y + radius) / cell_size_)));
  for (std::size_t row = row_lo; row <= row_hi; ++row) {
    for (std::size_t col = col_lo; col <= col_hi; ++col) {
      const std::size_t cell = row * cols_ + col;
      for (std::size_t k = cell_start_[cell]; k < cell_start_[cell + 1]; ++k) {
        const std::size_t idx = order_[k];
        if (distance_sq(points_[idx], center) <= r2) {
          out.push_back(idx);
        }
      }
    }
  }
}

std::vector<std::size_t> GridIndex::query_radius(Vec2 center,
                                                 double radius) const {
  std::vector<std::size_t> out;
  query_radius(center, radius, out);
  return out;
}

std::vector<std::size_t> GridIndex::brute_force(std::span<const Vec2> points,
                                                Vec2 center, double radius) {
  std::vector<std::size_t> out;
  const double r2 = radius * radius;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (distance_sq(points[i], center) <= r2) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace manet::geom
