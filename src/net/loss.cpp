#include "net/loss.h"

#include <algorithm>

#include "util/assert.h"

namespace manet::net {

BernoulliLossLayer::BernoulliLossLayer(double p) : p_(p) {
  MANET_CHECK(p >= 0.0 && p <= 1.0, "loss probability " << p);
}

double combined_drop_probability(
    const std::vector<const LossLayer*>& layers, const LinkContext& link) {
  double survive = 1.0;
  for (const LossLayer* layer : layers) {
    const double p = layer->drop_probability(link);
    MANET_ASSERT(p >= 0.0 && p <= 1.0,
                 "layer drop probability " << p << " out of range");
    survive *= 1.0 - p;
    if (survive <= 0.0) {
      return 1.0;
    }
  }
  return std::clamp(1.0 - survive, 0.0, 1.0);
}

}  // namespace manet::net
