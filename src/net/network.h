// The broadcast channel + node container: the piece of ns-2 the paper's
// experiments actually exercise.
//
// Delivery model: on each Hello broadcast the channel computes the exact
// sender/receiver positions, evaluates the propagation model, and delivers
// to every node whose received power clears the calibrated threshold
// (optionally after a fading draw and/or a loss-stack draw — the composable
// failure-injection layers of net/loss.h, with the global packet_loss knob
// as layer zero). A spatial grid over a recent position snapshot bounds the
// candidate set; candidates are then re-checked with exact geometry, so the
// grid is a pure optimization (padding covers node motion since the
// snapshot).
#pragma once

#include <memory>
#include <vector>

#include "geom/grid_index.h"
#include "net/loss.h"
#include "net/node.h"
#include "obs/hooks.h"
#include "obs/metrics.h"
#include "radio/medium.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/thread_role.h"

namespace manet::net {

class EnergyModel;
class ShardPlanner;

struct NetworkParams {
  double broadcast_interval = 2.0;  // BI, seconds (paper: 2.0)
  double neighbor_timeout = 3.0;    // TP, seconds (paper: 3.0)
  /// Beacons are staggered: node k first fires at a uniform phase in
  /// [0, BI) and keeps that phase, plus a small per-beacon jitter below.
  double per_beacon_jitter = 0.01;  // seconds of uniform jitter per beacon
  /// Independent per-reception loss probability (failure injection; 0 = off).
  double packet_loss = 0.0;
  /// Simplified MAC collision model (0 = ideal MAC, the paper's setting):
  /// a Hello arriving at a receiver within this many seconds of the
  /// previous arrival is destroyed by the overlap (first-capture model).
  /// A realistic value is the Hello airtime, ~0.5-2 ms at 1-2 Mb/s.
  double collision_window = 0.0;
  /// Fixed delivery latency (propagation + transmission of a short Hello).
  double delivery_delay = 0.0005;  // seconds
  /// Upper bound on node speed; pads grid queries against snapshot
  /// staleness.
  double speed_bound = 50.0;  // m/s
  /// Snapshot refresh period for the spatial grid.
  double grid_refresh = 0.5;  // seconds
};

struct NetworkStats {
  std::uint64_t beacons_sent = 0;
  std::uint64_t messages_sent = 0;       // protocol Messages (see send())
  std::uint64_t messages_delivered = 0;
  std::uint64_t message_bytes = 0;
  std::uint64_t hellos_delivered = 0;
  std::uint64_t hellos_lost = 0;      // Bernoulli loss or fading below threshold
  std::uint64_t hellos_collided = 0;  // destroyed by the collision window
  std::uint64_t bytes_sent = 0;
  double sum_degree_samples = 0.0;    // accumulated receiver counts
  std::uint64_t degree_samples = 0;

  double mean_degree() const {
    return degree_samples == 0
               ? 0.0
               : sum_degree_samples / static_cast<double>(degree_samples);
  }
};

class Network {
 public:
  Network(sim::Simulator& sim, radio::Medium medium, geom::Rect field,
          NetworkParams params, util::Rng rng);

  // Everything that mutates replay-visible state — node set, beacon
  // scheduling, delivery, stats, the grid snapshot, RNG draws — is
  // commit-only (see util/thread_role.h). Const accessors and the pure
  // loss-stack query stay role-free: workers may read them.

  /// Adds a node (takes ownership). All nodes must be added, and agents
  /// attached, before start().
  Node& add_node(std::unique_ptr<Node> node) MANET_COMMIT_ONLY;

  /// Convenience: builds nodes 0..n-1 from a mobility fleet.
  void add_fleet(std::vector<std::unique_ptr<mobility::MobilityModel>> fleet)
      MANET_COMMIT_ONLY;

  /// Starts every node's beacon loop (staggered phases).
  void start() MANET_COMMIT_ONLY;

  sim::Simulator& simulator() { return sim_; }
  const radio::Medium& medium() const { return medium_; }
  const NetworkParams& params() const { return params_; }
  const geom::Rect& field() const { return field_; }

  std::size_t size() const { return nodes_.size(); }
  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  std::vector<std::unique_ptr<Node>>& nodes() { return nodes_; }

  const NetworkStats& stats() const { return stats_; }

  /// Ground-truth connectivity at time t (positions within nominal range):
  /// used by validators and the routing experiments, not by the protocols.
  std::vector<std::vector<NodeId>> true_adjacency(sim::Time t)
      MANET_COMMIT_ONLY;

  /// Reusable CSR ground-truth adjacency: node i's neighbors occupy
  /// flat[offsets[i] .. offsets[i+1]) after true_adjacency_into(). Owns its
  /// own spatial grid so repeated validation sweeps are O(N·deg) without
  /// touching the network's delivery snapshot (whose refresh timeline is
  /// behavior-affecting). All buffers keep their capacity across calls, so
  /// periodic validation is allocation-free once warmed up.
  struct AdjacencyScratch {
    std::vector<geom::Vec2> pos;
    std::vector<std::size_t> offsets;  // n + 1 entries
    std::vector<NodeId> flat;

    std::span<const NodeId> neighbors(std::size_t i) const {
      return {flat.data() + offsets[i], offsets[i + 1] - offsets[i]};
    }

   private:
    friend class Network;
    std::vector<std::size_t> query;
    std::unique_ptr<geom::GridIndex> grid;
  };
  void true_adjacency_into(sim::Time t, AdjacencyScratch& out)
      MANET_COMMIT_ONLY;

  /// Attaches a shard planner for intra-run parallel candidate scans
  /// (scenario::run_scenario wires one up for --sim-jobs > 1). Must be
  /// called before start(); the planner must outlive the run and detaches
  /// itself in ShardPlanner::shutdown().
  void enable_sharding(ShardPlanner* planner) MANET_COMMIT_ONLY;

  /// Exact current distance between two nodes (ground truth helper).
  double distance(NodeId a, NodeId b, sim::Time t) MANET_COMMIT_ONLY;

  /// Books a collision-model loss (called by receiving nodes).
  void note_collision() MANET_COMMIT_ONLY {
    ++stats_.hellos_collided;
    if (hooks_ != nullptr) {
      hooks_->hello_dropped_collision->inc();
    }
  }

  /// Books neighbor-table expiries (called by nodes after a purge).
  void note_neighbor_timeouts(std::size_t n) MANET_COMMIT_ONLY {
    if (n > 0 && hooks_ != nullptr) {
      hooks_->neighbor_timeout->inc(n);
    }
  }

  /// Observability hooks; may be null (the default — uninstrumented).
  /// When set, *every* field must be resolved to a live counter: call
  /// sites null-check only the bundle, not individual handles. The bundle
  /// and its counters must outlive the network.
  void set_hooks(const obs::NetHooks* hooks) { hooks_ = hooks; }

  /// Attaches the battery model (not owned, must outlive the network; null
  /// = energy-free, the default). Nodes charge Hello/Message TX+RX costs
  /// against it on the commit thread; a drain that empties a battery fails
  /// the node mid-action via the model's on_depleted callback.
  void set_energy(EnergyModel* energy) { energy_ = energy; }
  EnergyModel* energy() { return energy_; }

  /// Registers a reception-loss layer (see net/loss.h). The layer is not
  /// owned and must outlive the network; layers may be added before or
  /// during the run (fault injectors register theirs at arm time). The
  /// legacy params.packet_loss knob is pre-registered as layer zero.
  void add_loss_layer(const LossLayer* layer);

  /// Combined drop probability of the current loss stack for one delivery
  /// attempt (exposed for tests and validators).
  double drop_probability(const LinkContext& link) const {
    return loss_layers_.empty() ? 0.0
                                : combined_drop_probability(loss_layers_, link);
  }

  /// Sends a protocol Message from `sender` (msg.src is overwritten).
  /// Broadcast (msg.dst == kInvalidNode): delivered to every alive node in
  /// range; returns the receiver count. Unicast: delivered to msg.dst iff
  /// in range and not lost; returns 1 on link-layer success, 0 otherwise
  /// (the 802.11 ACK abstraction — the sender knows immediately).
  /// Deliveries invoke the receiver agent's on_message() after the
  /// configured delivery delay.
  std::size_t send(Node& sender, Message msg) MANET_COMMIT_ONLY;

 private:
  friend class Node;
  friend class ShardPlanner;

  /// One scheduled Hello delivery batch: the packet stored once by value
  /// plus every receiver that passed the propagation/loss checks. Batches
  /// are pooled and reused (packet neighbor list and receiver vector keep
  /// their capacity), so steady-state delivery performs no allocations and
  /// schedules a single event per broadcast instead of one per receiver.
  struct DeliveryBatch {
    struct Rx {
      Node* node;
      double rx_power_w;
    };
    HelloPacket pkt;
    std::vector<Rx> receivers;
  };

  /// One scheduled protocol-Message delivery: the payload stored once by
  /// value plus every receiver that passed the propagation/loss checks —
  /// the DeliveryBatch idiom applied to send(). Pooled and reused, so
  /// steady-state sends copy the Message once and schedule a single event
  /// instead of one heap-allocated copy and one event per receiver.
  struct MessageBatch {
    Message msg;
    std::vector<Node*> receivers;
  };

  /// Called by a node when its beacon timer fires.
  void broadcast(Node& sender, const HelloPacket& pkt) MANET_COMMIT_ONLY;

  /// Called by nodes when a jittered broadcast is scheduled / liveness
  /// flips; forwarded to the shard planner (no-ops when serial).
  void note_pending_broadcast(NodeId sender, sim::Time fire_at)
      MANET_COMMIT_ONLY;
  void note_liveness(NodeId id, bool alive) MANET_COMMIT_ONLY;

  /// Pooled HelloPacket for the rare in-flight-beacon fallback in
  /// Node::beacon(): keeps that path off the allocator (the packet's
  /// neighbor capacity is reused across acquisitions).
  HelloPacket* acquire_hello() MANET_COMMIT_ONLY;
  void release_hello(HelloPacket* pkt) MANET_COMMIT_ONLY;

  DeliveryBatch* acquire_batch() MANET_COMMIT_ONLY;
  void release_batch(DeliveryBatch* batch) MANET_COMMIT_ONLY;
  void deliver_batch(DeliveryBatch* batch) MANET_COMMIT_ONLY;

  MessageBatch* acquire_message_batch() MANET_COMMIT_ONLY;
  void release_message_batch(MessageBatch* batch) MANET_COMMIT_ONLY;
  void deliver_message_batch(MessageBatch* batch) MANET_COMMIT_ONLY;

  void refresh_grid_if_stale() MANET_COMMIT_ONLY;

  sim::Simulator& sim_;
  radio::Medium medium_;
  geom::Rect field_;
  NetworkParams params_;
  util::Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  bool started_ = false;

  BernoulliLossLayer base_loss_;  // params.packet_loss as a stack layer
  std::vector<const LossLayer*> loss_layers_;

  geom::GridIndex grid_;
  std::vector<geom::Vec2> snapshot_;
  sim::Time snapshot_time_ = -1.0;
  bool snapshot_valid_ = false;
  std::vector<std::size_t> query_buf_;

  // Delivery-batch pool: batches_ owns (stable addresses for the scheduled
  // closures), free_batches_ recycles. In-flight batches are bounded by
  // senders per delivery-delay window, so the pool stays tiny.
  std::vector<std::unique_ptr<DeliveryBatch>> batches_;
  std::vector<DeliveryBatch*> free_batches_;
  // The same pool for protocol Messages (send()).
  std::vector<std::unique_ptr<MessageBatch>> message_batches_;
  std::vector<MessageBatch*> free_message_batches_;
  // Scratch receiver list for the zero-delay path: deliveries happen after
  // the candidate scan so a receiving agent that transmits cannot clobber
  // query_buf_ mid-iteration.
  std::vector<DeliveryBatch::Rx> immediate_buf_;
  // Fallback-Hello pool (see acquire_hello()).
  std::vector<std::unique_ptr<HelloPacket>> hello_pool_;
  std::vector<HelloPacket*> free_hellos_;

  ShardPlanner* planner_ = nullptr;  // non-owning; null = serial run
  EnergyModel* energy_ = nullptr;    // non-owning; null = energy-free

  NetworkStats stats_;
  const obs::NetHooks* hooks_ = nullptr;
};

}  // namespace manet::net
