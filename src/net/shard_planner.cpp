#include "net/shard_planner.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "net/network.h"
#include "net/node.h"
#include "util/assert.h"

namespace manet::net {

ShardPlanner::ShardPlanner(Network& network, util::ThreadPool& pool)
    : network_(network), pool_(pool) {}

ShardPlanner::~ShardPlanner() { shutdown(); }

bool ShardPlanner::supported(const Network& network) {
  if (network.nodes_.empty()) {
    return false;
  }
  for (const auto& node : network.nodes_) {
    if (!node->mobility().supports_unroll()) {
      return false;
    }
  }
  return true;
}

int ShardPlanner::resolve_sim_jobs(int requested) {
  if (requested > 0) {
    return requested;
  }
  // manet-lint note: $MANET_SIM_JOBS mirrors $MANET_JOBS in
  // scenario::Runner — worker count never changes results, only wall time.
  if (const char* env = std::getenv("MANET_SIM_JOBS")) {
    const int v = std::atoi(env);
    if (v > 0) {
      return v;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ShardPlanner::on_start() {
  const std::size_t n = network_.nodes_.size();
  MANET_CHECK(n > 0, "shard planner on an empty network");
  MANET_CHECK(supported(network_),
              "shard planner over a mobility model without unroll support");
  n_shards_ = std::max<std::size_t>(
      1, std::min(pool_.size() * 2, network_.grid_.cell_count()));
  deterministic_medium_ = !network_.medium_.propagation().stochastic();
  max_range_ = network_.medium_.max_delivery_range_m();
  alive_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    alive_[i] = network_.nodes_[i]->alive() ? 1 : 0;
  }
  jobs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs_.push_back(std::make_unique<ScanJob>());
    jobs_.back()->query.reserve(64);
    jobs_.back()->candidates.reserve(64);
  }
  shard_batches_.resize(n_shards_);
  for (auto& batch : shard_batches_) {
    batch.reserve(2 * kBatchSize);
  }
  leg_begin_.assign(n + 1, 0);
  const sim::Time now = network_.sim_.now();
  refresh_motion(now, now);
}

void ShardPlanner::refresh_motion(sim::Time now, sim::Time need) {
  // Workers read the leg arrays; drain before touching them. Extending the
  // horizon does NOT invalidate outstanding speculations: every pending
  // fire time is >= now, and the re-unrolled arrays carry bit-identical
  // legs over that range.
  pool_.wait_idle();
  const sim::Time target = std::max(now, need) + kHorizonSpan;
  const std::size_t n = network_.nodes_.size();
  leg_t0_.clear();
  leg_t1_.clear();
  leg_x0_.clear();
  leg_y0_.clear();
  leg_x1_.clear();
  leg_y1_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    leg_begin_[i] = static_cast<std::uint32_t>(leg_t0_.size());
    mobility::MobilityModel& model = network_.nodes_[i]->mobility();
    model.unroll_to(target);
    leg_scratch_.clear();
    model.copy_legs(now, target, leg_scratch_);
    for (const mobility::MotionLeg& leg : leg_scratch_) {
      leg_t0_.push_back(leg.t_begin);
      leg_t1_.push_back(leg.t_end);
      leg_x0_.push_back(leg.from.x);
      leg_y0_.push_back(leg.from.y);
      leg_x1_.push_back(leg.to.x);
      leg_y1_.push_back(leg.to.y);
    }
  }
  leg_begin_[n] = static_cast<std::uint32_t>(leg_t0_.size());
  horizon_ = target;
}

geom::Vec2 ShardPlanner::sample_position(std::size_t node, sim::Time t) const {
  // Same leg-selection and interpolation arithmetic as
  // mobility::LegBasedModel::position(): first leg with t <= t_end, exact
  // endpoint below t_begin, clamped lerp above — bit-identical by
  // construction.
  const std::uint32_t begin = leg_begin_[node];
  const std::uint32_t end = leg_begin_[node + 1];
  for (std::uint32_t k = begin; k < end; ++k) {
    if (t <= leg_t1_[k]) {
      const geom::Vec2 from{leg_x0_[k], leg_y0_[k]};
      if (t <= leg_t0_[k]) {
        return from;
      }
      const geom::Vec2 to{leg_x1_[k], leg_y1_[k]};
      const double frac = (t - leg_t0_[k]) / (leg_t1_[k] - leg_t0_[k]);
      return geom::lerp(from, to, std::min(frac, 1.0));
    }
  }
  MANET_CHECK(false, "shard scan sampled node " << node << " at t=" << t
                                                << " beyond the leg horizon");
  return {};
}

void ShardPlanner::run_scan(ScanJob* job) const {
  const sim::Time t = job->fire_time;
  job->sender_pos = sample_position(job->sender, t);
  job->query.clear();
  network_.grid_.query_radius(job->center, job->radius, job->query);
  job->candidates.clear();
  if (job->cache_epoch != job->epoch) {
    // A grid or liveness barrier passed since this sender's last scan:
    // cells may have changed, drop the pair cache.
    for (PairCacheEntry& e : job->pair_cache) {
      e.idx = kInvalidNode;
    }
    job->cache_epoch = job->epoch;
  }
  for (const std::size_t idx : job->query) {
    if (idx == job->sender || alive_[idx] == 0) {
      continue;
    }
    const geom::Vec2 rx_pos = sample_position(idx, t);
    Candidate c;
    c.idx = static_cast<std::uint32_t>(idx);
    c.x = rx_pos.x;
    c.y = rx_pos.y;
    if (deterministic_medium_) {
      PairCacheEntry& e = job->pair_cache[idx % job->pair_cache.size()];
      const bool hit = e.idx == c.idx && e.sx == job->sender_pos.x &&
                       e.sy == job->sender_pos.y && e.rx == rx_pos.x &&
                       e.ry == rx_pos.y;
      if (hit) {
        c.dist = e.dist;
        c.rx_power_w = e.rx_power_w;
      } else {
        c.dist = geom::distance(job->sender_pos, rx_pos);
      }
      if (c.dist > max_range_) {
        continue;
      }
      if (!hit) {
        // Deterministic media ignore the fading RNG, so the median power
        // IS the power the serial try_receive() would compute.
        c.rx_power_w = network_.medium_.median_rx_power_w(c.dist);
        e = {c.idx,    job->sender_pos.x, job->sender_pos.y, rx_pos.x,
             rx_pos.y, c.dist,            c.rx_power_w};
      }
      c.delivered =
          c.rx_power_w >= network_.medium_.rx_threshold_w() ? 1 : 0;
    } else {
      // Stochastic media draw fading from the sender's RNG; the draw (and
      // the verdict) must happen at commit, in serial order. Precompute
      // only the pure geometry.
      c.dist = geom::distance(job->sender_pos, rx_pos);
      if (c.dist > max_range_) {
        continue;
      }
    }
    job->candidates.push_back(c);
  }
}

void ShardPlanner::note_pending_broadcast(NodeId sender, sim::Time fire_at) {
  if (!network_.snapshot_valid_) {
    return;  // before the first grid refresh there is nothing to scan
  }
  if (fire_at > horizon_) {
    refresh_motion(network_.sim_.now(), fire_at);
  }
  ScanJob& job = *jobs_[sender];
  if (job.state.load(std::memory_order_acquire) != kIdle) {
    // A stale speculation (its broadcast never fired — the node died, or a
    // degenerate double beacon) still owns the slot; free it first.
    reclaim(job);
  }
  job.sender = sender;
  job.fire_time = fire_at;
  job.epoch = epoch_;
  // Exactly the serial pad arithmetic, evaluated at the fire time: valid
  // while no grid refresh intervenes — and a refresh bumps the epoch,
  // which discards this job at commit.
  const double staleness = fire_at - network_.snapshot_time_;
  const double pad = 2.0 * network_.params_.speed_bound * staleness + 1.0;
  job.center = network_.snapshot_[sender];
  job.radius = max_range_ + pad;
  job.shard = static_cast<std::uint32_t>(
      geom::tile_shard(network_.grid_.cell_index(job.center),
                       network_.grid_.cell_count(), n_shards_));
  job.state.store(kQueued, std::memory_order_relaxed);
  shard_batches_[job.shard].push_back(&job);
  ++speculated_;
  if (shard_batches_[job.shard].size() >= kBatchSize) {
    flush_shard(job.shard);
  }
}

void ShardPlanner::flush_shard(std::size_t shard) {
  std::vector<ScanJob*>& batch = shard_batches_[shard];
  if (batch.empty()) {
    return;
  }
  for (ScanJob* job : batch) {
    job->state.store(kSubmitted, std::memory_order_release);
  }
  // The closure copies the (small) pointer list: std::function needs a
  // copyable callable, and the batch vector must keep its capacity.
  pool_.submit([this, jobs = batch] {
    for (ScanJob* job : jobs) {
      int expected = kSubmitted;
      if (!job->state.compare_exchange_strong(expected, kRunning,
                                              std::memory_order_acq_rel)) {
        continue;  // claimed inline by the simulation thread
      }
      bool ok = true;
      try {
        run_scan(job);
      } catch (...) {
        ok = false;  // never let a worker exception escape the pool
      }
      job->state.store(ok ? kDone : kFailed, std::memory_order_release);
    }
  });
  batch.clear();
}

void ShardPlanner::flush_all() {
  for (std::size_t shard = 0; shard < shard_batches_.size(); ++shard) {
    flush_shard(shard);
  }
}

const ShardPlanner::ScanJob* ShardPlanner::try_consume(NodeId sender,
                                                       sim::Time now) {
  ScanJob& job = *jobs_[sender];
  if (job.state.load(std::memory_order_acquire) == kIdle) {
    return nullptr;
  }
  if (job.fire_time != now || job.epoch != epoch_) {
    if (job.fire_time <= now) {
      reclaim(job);  // stale: a barrier invalidated it, or it never fired
    }
    return nullptr;
  }
  if (job.state.load(std::memory_order_acquire) == kQueued) {
    // Its cohort fires around now as well: hand every queued batch to the
    // workers before committing this one.
    flush_all();
  }
  int expected = kSubmitted;
  if (job.state.compare_exchange_strong(expected, kClaimed,
                                        std::memory_order_acq_rel)) {
    // No worker picked it up yet — scanning inline beats waiting.
    run_scan(&job);
    ++committed_;
    return &job;
  }
  // A worker owns the scan; yield until it lands.
  for (;;) {
    const int s = job.state.load(std::memory_order_acquire);
    if (s == kDone) {
      break;
    }
    if (s == kFailed) {
      job.state.store(kIdle, std::memory_order_relaxed);
      return nullptr;
    }
    std::this_thread::yield();
  }
  ++committed_;
  return &job;
}

void ShardPlanner::release(const ScanJob* job) {
  jobs_[job->sender]->state.store(kIdle, std::memory_order_relaxed);
}

void ShardPlanner::reclaim(ScanJob& job) {
  for (;;) {
    const int s = job.state.load(std::memory_order_acquire);
    switch (s) {
      case kIdle:
        return;
      case kQueued: {
        std::vector<ScanJob*>& batch = shard_batches_[job.shard];
        batch.erase(std::remove(batch.begin(), batch.end(), &job),
                    batch.end());
        job.state.store(kIdle, std::memory_order_relaxed);
        return;
      }
      case kSubmitted: {
        int expected = kSubmitted;
        if (job.state.compare_exchange_strong(expected, kClaimed,
                                              std::memory_order_acq_rel)) {
          job.state.store(kIdle, std::memory_order_relaxed);
          return;
        }
        break;  // lost the race to a worker; re-read
      }
      case kRunning:
        std::this_thread::yield();
        break;
      default:  // kDone / kFailed / kClaimed
        job.state.store(kIdle, std::memory_order_relaxed);
        return;
    }
  }
}

void ShardPlanner::pre_topology_change() {
  // Drain so no worker reads the grid or snapshot mid-mutation, then bump
  // the epoch: every speculation computed against the old state dies at
  // commit. Jobs still queued are left in their batches — their scans run
  // against consistent (new) state and are discarded the same way.
  pool_.wait_idle();
  ++epoch_;
}

void ShardPlanner::note_liveness(NodeId id, bool alive) {
  if (alive_.empty()) {
    return;  // before on_start(): nothing speculated yet
  }
  pool_.wait_idle();
  ++epoch_;
  alive_[id] = alive ? 1 : 0;
}

void ShardPlanner::shutdown() {
  pool_.wait_idle();
  for (auto& job : jobs_) {
    job->state.store(kIdle, std::memory_order_relaxed);
  }
  for (auto& batch : shard_batches_) {
    batch.clear();
  }
  if (network_.planner_ == this) {
    network_.planner_ = nullptr;
  }
}

}  // namespace manet::net
