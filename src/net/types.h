// Shared network-layer identifiers.
#pragma once

#include <cstdint>
#include <limits>

namespace manet::net {

/// Node identifier; the Lowest-ID algorithm's total order lives on these.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

}  // namespace manet::net
