// A mobile node: identity + mobility + radio state + neighbor table + the
// attached protocol agent. The node owns its beacon timer; the Network owns
// the nodes and the shared medium.
#pragma once

#include <memory>

#include "mobility/mobility_model.h"
#include "net/agent.h"
#include "net/neighbor_table.h"
#include "net/types.h"
#include "sim/timer.h"
#include "util/rng.h"
#include "util/thread_role.h"

namespace manet::net {

class Network;

class Node {
 public:
  Node(NodeId id, std::unique_ptr<mobility::MobilityModel> mobility,
       util::Rng rng);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  // position()/velocity() advance the mobility model's leg window, so
  // they are commit-only; workers read positions from the shard
  // planner's immutable SoA leg tables instead (net/shard_planner.h).
  geom::Vec2 position(sim::Time t) MANET_COMMIT_ONLY {
    return mobility_->position(t);
  }
  geom::Vec2 velocity(sim::Time t) MANET_COMMIT_ONLY {
    return mobility_->velocity(t);
  }

  /// The mobility model itself (shard planners unroll it into leg tables).
  mobility::MobilityModel& mobility() { return *mobility_; }
  const mobility::MobilityModel& mobility() const { return *mobility_; }

  NeighborTable& table() { return table_; }
  const NeighborTable& table() const { return table_; }

  /// The attached protocol; must be set before the network starts.
  void set_agent(std::unique_ptr<Agent> agent);
  Agent* agent() { return agent_.get(); }

  Network& network();
  sim::Simulator& simulator();

  /// Per-node RNG substreams (fading draws, beacon jitter).
  util::Rng& rng() { return rng_; }

  /// Changes the beacon interval from the next beacon on (the §5
  /// mobility-adaptive extension). Must be called after start().
  void set_beacon_period(double period) MANET_COMMIT_ONLY;
  double beacon_period() const;

  std::uint32_t beacons_sent() const { return seq_; }
  std::uint32_t hellos_received() const { return hellos_received_; }

  /// Alive once start() ran; dead nodes neither beacon nor receive
  /// (failure-injection hooks).
  bool alive() const { return alive_; }
  void fail() MANET_COMMIT_ONLY;
  void recover() MANET_COMMIT_ONLY;

 private:
  friend class Network;

  /// Wires the node to its network and starts the beacon timer with the
  /// given initial phase.
  void start(Network& network, sim::Time first_beacon_at) MANET_COMMIT_ONLY;

  void beacon() MANET_COMMIT_ONLY;
  void receive(const HelloPacket& pkt, double rx_power_w) MANET_COMMIT_ONLY;
  void receive_message(const Message& msg) MANET_COMMIT_ONLY;

  NodeId id_;
  std::unique_ptr<mobility::MobilityModel> mobility_;
  util::Rng rng_;
  NeighborTable table_;
  std::unique_ptr<Agent> agent_;
  Network* network_ = nullptr;
  std::unique_ptr<sim::PeriodicTimer> beacon_timer_;
  // Reused outgoing-Hello buffer: the neighbor list keeps its capacity
  // across beacons, so the steady-state beacon path never allocates. The
  // jittered broadcast is scheduled within params.per_beacon_jitter (a few
  // ms) while beacons are at least an interval apart, so one buffer
  // suffices; `beacon_in_flight_` guards the degenerate overlap.
  HelloPacket scratch_pkt_;
  bool beacon_in_flight_ = false;
  std::uint32_t seq_ = 0;
  std::uint32_t hellos_received_ = 0;
  bool alive_ = false;
  // Collision-model state: time of the most recent arrival (captured or
  // not).
  sim::Time last_rx_time_ = 0.0;
  bool seen_rx_ = false;
};

}  // namespace manet::net
