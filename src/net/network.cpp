#include "net/network.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"
#include "util/logging.h"

namespace manet::net {

namespace {

// Grid cell size: coarse enough that rebuilds stay cheap, fine enough that
// query rectangles do not degenerate to full scans at common ranges.
double grid_cell_size(const geom::Rect& field) {
  return std::max(25.0, std::min(field.width, field.height) / 16.0);
}

}  // namespace

Network::Network(sim::Simulator& sim, radio::Medium medium, geom::Rect field,
                 NetworkParams params, util::Rng rng)
    : sim_(sim),
      medium_(std::move(medium)),
      field_(field),
      params_(params),
      rng_(std::move(rng)),
      // Out-of-range packet_loss is rejected by the MANET_CHECK below; the
      // clamp here only keeps the layer constructor from pre-empting it with
      // a less specific message.
      base_loss_(params.packet_loss >= 0.0 && params.packet_loss <= 1.0
                     ? params.packet_loss
                     : 0.0),
      grid_(field, grid_cell_size(field)) {
  MANET_CHECK(params_.broadcast_interval > 0.0);
  MANET_CHECK(params_.neighbor_timeout > 0.0);
  MANET_CHECK(params_.per_beacon_jitter >= 0.0 &&
              params_.per_beacon_jitter < params_.broadcast_interval);
  MANET_CHECK(params_.packet_loss >= 0.0 && params_.packet_loss <= 1.0);
  MANET_CHECK(params_.collision_window >= 0.0);
  MANET_CHECK(params_.delivery_delay >= 0.0);
  MANET_CHECK(params_.speed_bound >= 0.0);
  MANET_CHECK(params_.grid_refresh > 0.0);
  if (params_.packet_loss > 0.0) {
    loss_layers_.push_back(&base_loss_);
  }
}

void Network::add_loss_layer(const LossLayer* layer) {
  MANET_CHECK(layer != nullptr);
  loss_layers_.push_back(layer);
}

Node& Network::add_node(std::unique_ptr<Node> node) {
  MANET_CHECK(!started_, "add_node() after start()");
  MANET_CHECK(node != nullptr);
  MANET_CHECK(node->id() == nodes_.size(),
              "node ids must be dense and in order; got "
                  << node->id() << " at index " << nodes_.size());
  nodes_.push_back(std::move(node));
  return *nodes_.back();
}

void Network::add_fleet(
    std::vector<std::unique_ptr<mobility::MobilityModel>> fleet) {
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto id = static_cast<NodeId>(nodes_.size());
    add_node(std::make_unique<Node>(id, std::move(fleet[i]),
                                    rng_.substream("node", id)));
  }
}

void Network::start() {
  MANET_CHECK(!started_, "network started twice");
  MANET_CHECK(!nodes_.empty(), "network with no nodes");
  started_ = true;
  util::Rng phase_rng = rng_.substream("phase");
  for (auto& node : nodes_) {
    // Stagger initial beacons uniformly across the first interval.
    node->start(*this, phase_rng.uniform(0.0, params_.broadcast_interval));
  }
}

Node& Network::node(NodeId id) {
  MANET_CHECK(id < nodes_.size(), "node id " << id << " out of range");
  return *nodes_[id];
}

const Node& Network::node(NodeId id) const {
  MANET_CHECK(id < nodes_.size(), "node id " << id << " out of range");
  return *nodes_[id];
}

void Network::refresh_grid_if_stale() {
  const sim::Time now = sim_.now();
  if (snapshot_valid_ && now - snapshot_time_ <= params_.grid_refresh) {
    return;
  }
  snapshot_.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    snapshot_[i] = nodes_[i]->position(now);
  }
  grid_.rebuild(snapshot_);
  snapshot_time_ = now;
  snapshot_valid_ = true;
}

void Network::broadcast(Node& sender, const HelloPacket& pkt) {
  const sim::Time now = sim_.now();
  ++stats_.beacons_sent;
  stats_.bytes_sent += pkt.serialized_bytes();

  refresh_grid_if_stale();

  const geom::Vec2 sender_pos = sender.position(now);
  // Pad the query radius: both endpoints may have moved since the snapshot.
  const double staleness = now - snapshot_time_;
  const double pad = 2.0 * params_.speed_bound * staleness + 1.0;
  const double radius = medium_.max_delivery_range_m() + pad;

  query_buf_.clear();
  grid_.query_radius(snapshot_[sender.id()], radius, query_buf_);

  std::uint32_t delivered = 0;
  util::Rng& fading = sender.rng();
  for (const std::size_t idx : query_buf_) {
    Node& receiver = *nodes_[idx];
    if (receiver.id() == sender.id() || !receiver.alive()) {
      continue;
    }
    const geom::Vec2 receiver_pos = receiver.position(now);
    const double dist = geom::distance(sender_pos, receiver_pos);
    if (dist > medium_.max_delivery_range_m()) {
      continue;
    }
    const auto reception = medium_.try_receive(dist, fading);
    if (!reception.delivered) {
      ++stats_.hellos_lost;
      continue;
    }
    const double p_drop = drop_probability(
        {sender.id(), receiver.id(), now, sender_pos, receiver_pos});
    // p >= 1 drops without an RNG draw so that deterministic faults
    // (partitions, full jam) do not perturb the sender's draw sequence.
    if (p_drop >= 1.0 || (p_drop > 0.0 && fading.bernoulli(p_drop))) {
      ++stats_.hellos_lost;
      continue;
    }
    ++delivered;
    ++stats_.hellos_delivered;
    if (params_.delivery_delay > 0.0) {
      auto shared = std::make_shared<HelloPacket>(pkt);
      Node* rx = &receiver;
      const double rx_w = reception.rx_power_w;
      sim_.schedule_in(params_.delivery_delay,
                       [rx, shared, rx_w] { rx->receive(*shared, rx_w); });
    } else {
      receiver.receive(pkt, reception.rx_power_w);
    }
  }
  stats_.sum_degree_samples += delivered;
  ++stats_.degree_samples;
}

std::size_t Network::send(Node& sender, Message msg) {
  const sim::Time now = sim_.now();
  msg.src = sender.id();
  ++stats_.messages_sent;
  stats_.message_bytes += msg.bytes;

  util::Rng& fading = sender.rng();
  const geom::Vec2 sender_pos = sender.position(now);

  const auto try_deliver = [&](Node& receiver) -> bool {
    if (!receiver.alive()) {
      return false;
    }
    const geom::Vec2 receiver_pos = receiver.position(now);
    const double dist = geom::distance(sender_pos, receiver_pos);
    if (dist > medium_.max_delivery_range_m()) {
      return false;
    }
    const auto reception = medium_.try_receive(dist, fading);
    if (!reception.delivered) {
      return false;
    }
    const double p_drop = drop_probability(
        {sender.id(), receiver.id(), now, sender_pos, receiver_pos});
    if (p_drop >= 1.0 || (p_drop > 0.0 && fading.bernoulli(p_drop))) {
      return false;
    }
    ++stats_.messages_delivered;
    Node* rx = &receiver;
    auto shared = std::make_shared<const Message>(msg);
    sim_.schedule_in(params_.delivery_delay,
                     [rx, shared] { rx->receive_message(*shared); });
    return true;
  };

  if (msg.dst != kInvalidNode) {
    MANET_CHECK(msg.dst < nodes_.size(), "unicast to unknown node");
    MANET_CHECK(msg.dst != sender.id(), "unicast to self");
    return try_deliver(*nodes_[msg.dst]) ? 1 : 0;
  }

  refresh_grid_if_stale();
  const double staleness = now - snapshot_time_;
  const double pad = 2.0 * params_.speed_bound * staleness + 1.0;
  query_buf_.clear();
  grid_.query_radius(snapshot_[sender.id()],
                     medium_.max_delivery_range_m() + pad, query_buf_);
  std::size_t delivered = 0;
  for (const std::size_t idx : query_buf_) {
    if (idx == sender.id()) {
      continue;
    }
    delivered += try_deliver(*nodes_[idx]) ? 1 : 0;
  }
  return delivered;
}

std::vector<std::vector<NodeId>> Network::true_adjacency(sim::Time t) {
  std::vector<geom::Vec2> pos(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    pos[i] = nodes_[i]->position(t);
  }
  const double range = medium_.nominal_range_m();
  std::vector<std::vector<NodeId>> adj(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes_.size(); ++j) {
      if (geom::distance(pos[i], pos[j]) <= range) {
        adj[i].push_back(static_cast<NodeId>(j));
        adj[j].push_back(static_cast<NodeId>(i));
      }
    }
  }
  return adj;
}

double Network::distance(NodeId a, NodeId b, sim::Time t) {
  return geom::distance(node(a).position(t), node(b).position(t));
}

}  // namespace manet::net
