#include "net/network.h"

#include <algorithm>
#include <cmath>

#include "net/energy.h"
#include "net/shard_planner.h"
#include "util/assert.h"
#include "util/logging.h"

namespace manet::net {

namespace {

// Grid cell size: coarse enough that rebuilds stay cheap, fine enough that
// query rectangles do not degenerate to full scans at common ranges.
double grid_cell_size(const geom::Rect& field) {
  return std::max(25.0, std::min(field.width, field.height) / 16.0);
}

}  // namespace

Network::Network(sim::Simulator& sim, radio::Medium medium, geom::Rect field,
                 NetworkParams params, util::Rng rng)
    : sim_(sim),
      medium_(std::move(medium)),
      field_(field),
      params_(params),
      rng_(std::move(rng)),
      // Out-of-range packet_loss is rejected by the MANET_CHECK below; the
      // clamp here only keeps the layer constructor from pre-empting it with
      // a less specific message.
      base_loss_(params.packet_loss >= 0.0 && params.packet_loss <= 1.0
                     ? params.packet_loss
                     : 0.0),
      grid_(field, grid_cell_size(field)) {
  MANET_CHECK(params_.broadcast_interval > 0.0);
  MANET_CHECK(params_.neighbor_timeout > 0.0);
  MANET_CHECK(params_.per_beacon_jitter >= 0.0 &&
              params_.per_beacon_jitter < params_.broadcast_interval);
  MANET_CHECK(params_.packet_loss >= 0.0 && params_.packet_loss <= 1.0);
  MANET_CHECK(params_.collision_window >= 0.0);
  MANET_CHECK(params_.delivery_delay >= 0.0);
  MANET_CHECK(params_.speed_bound >= 0.0);
  MANET_CHECK(params_.grid_refresh > 0.0);
  if (params_.packet_loss > 0.0) {
    loss_layers_.push_back(&base_loss_);
  }
}

void Network::add_loss_layer(const LossLayer* layer) {
  MANET_CHECK(layer != nullptr);
  loss_layers_.push_back(layer);
}

Node& Network::add_node(std::unique_ptr<Node> node) {
  MANET_CHECK(!started_, "add_node() after start()");
  MANET_CHECK(node != nullptr);
  MANET_CHECK(node->id() == nodes_.size(),
              "node ids must be dense and in order; got "
                  << node->id() << " at index " << nodes_.size());
  nodes_.push_back(std::move(node));
  return *nodes_.back();
}

void Network::add_fleet(
    std::vector<std::unique_ptr<mobility::MobilityModel>> fleet) {
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto id = static_cast<NodeId>(nodes_.size());
    add_node(std::make_unique<Node>(id, std::move(fleet[i]),
                                    rng_.substream("node", id)));
  }
}

void Network::start() {
  MANET_CHECK(!started_, "network started twice");
  MANET_CHECK(!nodes_.empty(), "network with no nodes");
  started_ = true;
  // Pre-size every per-node and shared buffer to its population bound so
  // the steady-state loop never crosses a new capacity high-water mark
  // (the zero-allocation contract of tests/test_zero_alloc.cpp).
  const std::size_t n = nodes_.size();
  query_buf_.reserve(n);
  immediate_buf_.reserve(n);
  snapshot_.reserve(n);
  // Steady event population: one beacon timer + at most one jittered
  // broadcast + one delivery batch per node, plus slack for protocol
  // timers and fault machinery.
  sim_.reserve_events(4 * n + 64);
  for (auto& node : nodes_) {
    node->table_.reserve(n - 1);
    node->scratch_pkt_.neighbors.reserve(n - 1);
  }
  util::Rng phase_rng = rng_.substream("phase");
  for (auto& node : nodes_) {
    // Stagger initial beacons uniformly across the first interval.
    node->start(*this, phase_rng.uniform(0.0, params_.broadcast_interval));
  }
  if (planner_ != nullptr) {
    planner_->on_start();
  }
}

void Network::enable_sharding(ShardPlanner* planner) {
  MANET_CHECK(!started_, "enable_sharding() after start()");
  MANET_CHECK(planner != nullptr);
  planner_ = planner;
}

void Network::note_pending_broadcast(NodeId sender, sim::Time fire_at) {
  if (planner_ != nullptr) {
    planner_->note_pending_broadcast(sender, fire_at);
  }
}

void Network::note_liveness(NodeId id, bool alive) {
  if (planner_ != nullptr) {
    planner_->note_liveness(id, alive);
  }
}

Node& Network::node(NodeId id) {
  MANET_CHECK(id < nodes_.size(), "node id " << id << " out of range");
  return *nodes_[id];
}

const Node& Network::node(NodeId id) const {
  MANET_CHECK(id < nodes_.size(), "node id " << id << " out of range");
  return *nodes_[id];
}

void Network::refresh_grid_if_stale() {
  const sim::Time now = sim_.now();
  if (snapshot_valid_ && now - snapshot_time_ <= params_.grid_refresh) {
    return;
  }
  // The grid and snapshot are worker-visible inputs of speculative scans:
  // drain and invalidate before mutating them.
  if (planner_ != nullptr) {
    planner_->pre_topology_change();
  }
  snapshot_.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    snapshot_[i] = nodes_[i]->position(now);
  }
  // In-place update when no node changed grid cell (common at short refresh
  // periods); the CSR structure stays valid and only the stored exact
  // positions — which query_radius distance-checks against — move.
  if (!snapshot_valid_ || !grid_.update_positions(snapshot_)) {
    grid_.rebuild(snapshot_);
  }
  snapshot_time_ = now;
  snapshot_valid_ = true;
}

HelloPacket* Network::acquire_hello() {
  if (!free_hellos_.empty()) {
    HelloPacket* pkt = free_hellos_.back();
    free_hellos_.pop_back();
    return pkt;
  }
  hello_pool_.push_back(std::make_unique<HelloPacket>());
  HelloPacket* pkt = hello_pool_.back().get();
  pkt->neighbors.reserve(nodes_.size());
  return pkt;
}

void Network::release_hello(HelloPacket* pkt) {
  pkt->neighbors.clear();
  free_hellos_.push_back(pkt);
}

Network::DeliveryBatch* Network::acquire_batch() {
  if (!free_batches_.empty()) {
    DeliveryBatch* batch = free_batches_.back();
    free_batches_.pop_back();
    return batch;
  }
  batches_.push_back(std::make_unique<DeliveryBatch>());
  DeliveryBatch* batch = batches_.back().get();
  batch->receivers.reserve(nodes_.size());
  batch->pkt.neighbors.reserve(nodes_.size());
  return batch;
}

void Network::release_batch(DeliveryBatch* batch) {
  batch->receivers.clear();
  free_batches_.push_back(batch);
}

Network::MessageBatch* Network::acquire_message_batch() {
  if (!free_message_batches_.empty()) {
    MessageBatch* batch = free_message_batches_.back();
    free_message_batches_.pop_back();
    return batch;
  }
  message_batches_.push_back(std::make_unique<MessageBatch>());
  MessageBatch* batch = message_batches_.back().get();
  batch->receivers.reserve(nodes_.size());
  return batch;
}

void Network::release_message_batch(MessageBatch* batch) {
  batch->receivers.clear();
  // Drop the payload reference so a pooled slot never pins protocol memory
  // between sends.
  batch->msg.body.reset();
  free_message_batches_.push_back(batch);
}

void Network::deliver_message_batch(MessageBatch* batch) {
  // Same receiver order as the send-time scan; all delivery checks already
  // ran at send time, exactly as with the per-receiver events.
  for (Node* rx : batch->receivers) {
    rx->receive_message(batch->msg);
  }
  release_message_batch(batch);
}

void Network::deliver_batch(DeliveryBatch* batch) {
  // Same receiver order as the candidate scan; Node::receive re-checks
  // liveness, so receivers that died during the delivery delay drop out
  // exactly as they did with per-receiver events.
  for (const DeliveryBatch::Rx& rx : batch->receivers) {
    rx.node->receive(batch->pkt, rx.rx_power_w);
  }
  release_batch(batch);
}

void Network::broadcast(Node& sender, const HelloPacket& pkt) {
  const sim::Time now = sim_.now();
  ++stats_.beacons_sent;
  stats_.bytes_sent += pkt.serialized_bytes();
  if (hooks_ != nullptr) {
    hooks_->beacon_sent->inc();
  }

  refresh_grid_if_stale();

  // Sharded runs: commit the speculative scan when a valid one exists —
  // worker threads already computed the candidate list (grid query, exact
  // positions, distances, and for deterministic media the threshold
  // verdict); this thread replays every side effect (counters, hooks, RNG
  // draws, delivery scheduling) in exactly the order of the serial loop
  // below, so the two paths are byte-identical by construction. Keep the
  // loops in lockstep when editing either.
  if (planner_ != nullptr) {
    if (const ShardPlanner::ScanJob* job =
            planner_->try_consume(sender.id(), now)) {
      const geom::Vec2 sender_pos = job->sender_pos;
      std::uint32_t delivered = 0;
      util::Rng& fading = sender.rng();
      DeliveryBatch* batch = nullptr;
      immediate_buf_.clear();
      const bool stochastic = medium_.propagation().stochastic();
      for (const ShardPlanner::Candidate& c : job->candidates) {
        Node& receiver = *nodes_[c.idx];
        if (hooks_ != nullptr) {
          hooks_->hello_sent->inc();
        }
        bool ok = c.delivered != 0;
        double rx_power_w = c.rx_power_w;
        if (stochastic) {
          const auto reception = medium_.try_receive(c.dist, fading);
          ok = reception.delivered;
          rx_power_w = reception.rx_power_w;
        }
        if (!ok) {
          ++stats_.hellos_lost;
          if (hooks_ != nullptr) {
            hooks_->hello_dropped_fading->inc();
          }
          continue;
        }
        const double p_drop = drop_probability(
            {sender.id(), receiver.id(), now, sender_pos, {c.x, c.y}});
        if (p_drop >= 1.0 || (p_drop > 0.0 && fading.bernoulli(p_drop))) {
          ++stats_.hellos_lost;
          if (hooks_ != nullptr) {
            hooks_->hello_dropped_loss->inc();
          }
          continue;
        }
        ++delivered;
        ++stats_.hellos_delivered;
        if (hooks_ != nullptr) {
          hooks_->hello_delivered->inc();
        }
        if (params_.delivery_delay > 0.0) {
          if (batch == nullptr) {
            batch = acquire_batch();
            batch->pkt = pkt;
          }
          batch->receivers.push_back({&receiver, rx_power_w});
        } else {
          immediate_buf_.push_back({&receiver, rx_power_w});
        }
      }
      planner_->release(job);
      if (batch != nullptr) {
        sim_.schedule_in(params_.delivery_delay,
                         [this, batch] {
                         MANET_ASSERT_COMMIT_ROLE();
                         deliver_batch(batch);
                       });
      }
      for (std::size_t i = 0; i < immediate_buf_.size(); ++i) {
        const DeliveryBatch::Rx rx = immediate_buf_[i];
        rx.node->receive(pkt, rx.rx_power_w);
      }
      stats_.sum_degree_samples += delivered;
      ++stats_.degree_samples;
      return;
    }
  }

  const geom::Vec2 sender_pos = sender.position(now);
  // Pad the query radius: both endpoints may have moved since the snapshot.
  const double staleness = now - snapshot_time_;
  const double pad = 2.0 * params_.speed_bound * staleness + 1.0;
  const double radius = medium_.max_delivery_range_m() + pad;

  query_buf_.clear();
  grid_.query_radius(snapshot_[sender.id()], radius, query_buf_);

  std::uint32_t delivered = 0;
  util::Rng& fading = sender.rng();
  DeliveryBatch* batch = nullptr;
  immediate_buf_.clear();
  for (const std::size_t idx : query_buf_) {
    Node& receiver = *nodes_[idx];
    if (receiver.id() == sender.id() || !receiver.alive()) {
      continue;
    }
    const geom::Vec2 receiver_pos = receiver.position(now);
    const double dist = geom::distance(sender_pos, receiver_pos);
    if (dist > medium_.max_delivery_range_m()) {
      continue;
    }
    // From here on this candidate is a delivery attempt: exactly one of
    // hello.delivered / hello.dropped.fading / hello.dropped.loss follows,
    // the identity test_obs_differential.cpp checks against hello.sent.
    if (hooks_ != nullptr) {
      hooks_->hello_sent->inc();
    }
    const auto reception = medium_.try_receive(dist, fading);
    if (!reception.delivered) {
      ++stats_.hellos_lost;
      if (hooks_ != nullptr) {
        hooks_->hello_dropped_fading->inc();
      }
      continue;
    }
    const double p_drop = drop_probability(
        {sender.id(), receiver.id(), now, sender_pos, receiver_pos});
    // p >= 1 drops without an RNG draw so that deterministic faults
    // (partitions, full jam) do not perturb the sender's draw sequence.
    if (p_drop >= 1.0 || (p_drop > 0.0 && fading.bernoulli(p_drop))) {
      ++stats_.hellos_lost;
      if (hooks_ != nullptr) {
        hooks_->hello_dropped_loss->inc();
      }
      continue;
    }
    ++delivered;
    ++stats_.hellos_delivered;
    if (hooks_ != nullptr) {
      hooks_->hello_delivered->inc();
    }
    if (params_.delivery_delay > 0.0) {
      if (batch == nullptr) {
        batch = acquire_batch();
        batch->pkt = pkt;  // one copy per broadcast, capacity reused
      }
      batch->receivers.push_back({&receiver, reception.rx_power_w});
    } else {
      immediate_buf_.push_back({&receiver, reception.rx_power_w});
    }
  }
  // The per-receiver delivery events all carried the identical timestamp
  // and were pushed contiguously, so folding them into one batch event
  // preserves the (time, insertion-seq) FIFO order against every other
  // event in the queue.
  if (batch != nullptr) {
    sim_.schedule_in(params_.delivery_delay,
                     [this, batch] {
                         MANET_ASSERT_COMMIT_ROLE();
                         deliver_batch(batch);
                       });
  }
  // Zero-delay deliveries run after the scan: a receiving agent that
  // transmits in its handler may refresh the grid and reuse query_buf_,
  // which previously mutated the container mid-iteration. Indexed loop: a
  // reentrant broadcast() clears the buffer, which simply ends this pass.
  for (std::size_t i = 0; i < immediate_buf_.size(); ++i) {
    const DeliveryBatch::Rx rx = immediate_buf_[i];
    rx.node->receive(pkt, rx.rx_power_w);
  }
  stats_.sum_degree_samples += delivered;
  ++stats_.degree_samples;
}

std::size_t Network::send(Node& sender, Message msg) {
  const sim::Time now = sim_.now();
  msg.src = sender.id();
  ++stats_.messages_sent;
  stats_.message_bytes += msg.bytes;
  if (hooks_ != nullptr) {
    hooks_->msg_sent->inc();
  }

  // The transmission cost is paid up front; if it empties the battery the
  // depletion fault fails the sender and nothing reaches the air (the frame
  // died in the radio).
  if (energy_ != nullptr) {
    energy_->drain_msg_tx(sender.id(), now);
    if (!sender.alive()) {
      return 0;
    }
  }

  util::Rng& fading = sender.rng();
  const geom::Vec2 sender_pos = sender.position(now);

  // The payload is shared by every receiver of this send: one pooled batch,
  // acquired lazily (only if somebody actually receives), holding the
  // Message once plus the receiver list — no per-send heap allocation.
  MessageBatch* batch = nullptr;

  const auto try_deliver = [&](Node& receiver) -> bool {
    if (!receiver.alive()) {
      return false;
    }
    const geom::Vec2 receiver_pos = receiver.position(now);
    const double dist = geom::distance(sender_pos, receiver_pos);
    if (dist > medium_.max_delivery_range_m()) {
      return false;
    }
    const auto reception = medium_.try_receive(dist, fading);
    if (!reception.delivered) {
      return false;
    }
    const double p_drop = drop_probability(
        {sender.id(), receiver.id(), now, sender_pos, receiver_pos});
    if (p_drop >= 1.0 || (p_drop > 0.0 && fading.bernoulli(p_drop))) {
      return false;
    }
    ++stats_.messages_delivered;
    if (hooks_ != nullptr) {
      hooks_->msg_delivered->inc();
    }
    if (batch == nullptr) {
      batch = acquire_message_batch();
      batch->msg = msg;  // one copy per send, vector capacity reused
    }
    batch->receivers.push_back(&receiver);
    return true;
  };

  // All receivers of one send carry the identical delivery timestamp and
  // were (previously) pushed contiguously, so folding them into one batch
  // event preserves the (time, insertion-seq) FIFO order against every
  // other event in the queue.
  const auto flush = [&]() {
    if (batch != nullptr) {
      sim_.schedule_in(params_.delivery_delay,
                       [this, batch] {
                         MANET_ASSERT_COMMIT_ROLE();
                         deliver_message_batch(batch);
                       });
    }
  };

  if (msg.dst != kInvalidNode) {
    MANET_CHECK(msg.dst < nodes_.size(), "unicast to unknown node");
    MANET_CHECK(msg.dst != sender.id(), "unicast to self");
    const std::size_t delivered = try_deliver(*nodes_[msg.dst]) ? 1 : 0;
    flush();
    return delivered;
  }

  refresh_grid_if_stale();
  const double staleness = now - snapshot_time_;
  const double pad = 2.0 * params_.speed_bound * staleness + 1.0;
  query_buf_.clear();
  grid_.query_radius(snapshot_[sender.id()],
                     medium_.max_delivery_range_m() + pad, query_buf_);
  std::size_t delivered = 0;
  for (const std::size_t idx : query_buf_) {
    if (idx == sender.id()) {
      continue;
    }
    delivered += try_deliver(*nodes_[idx]) ? 1 : 0;
  }
  flush();
  return delivered;
}

std::vector<std::vector<NodeId>> Network::true_adjacency(sim::Time t) {
  std::vector<geom::Vec2> pos(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    pos[i] = nodes_[i]->position(t);
  }
  const double range = medium_.nominal_range_m();
  std::vector<std::vector<NodeId>> adj(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes_.size(); ++j) {
      if (geom::distance(pos[i], pos[j]) <= range) {
        adj[i].push_back(static_cast<NodeId>(j));
        adj[j].push_back(static_cast<NodeId>(i));
      }
    }
  }
  return adj;
}

void Network::true_adjacency_into(sim::Time t, AdjacencyScratch& out) {
  const std::size_t n = nodes_.size();
  out.pos.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.pos[i] = nodes_[i]->position(t);
  }
  if (out.grid == nullptr) {
    out.grid = std::make_unique<geom::GridIndex>(field_,
                                                 grid_cell_size(field_));
  }
  out.grid->rebuild(out.pos);
  const double range = medium_.nominal_range_m();
  out.offsets.resize(n + 1);
  out.flat.clear();
  for (std::size_t i = 0; i < n; ++i) {
    out.offsets[i] = out.flat.size();
    out.query.clear();
    // Tiny slack over the exact range so the squared-distance grid
    // prefilter can never drop a boundary pair the exact distance test
    // below would keep.
    out.grid->query_radius(out.pos[i], range + 1e-6, out.query);
    for (const std::size_t j : out.query) {
      if (j != i && geom::distance(out.pos[i], out.pos[j]) <= range) {
        out.flat.push_back(static_cast<NodeId>(j));
      }
    }
  }
  out.offsets[n] = out.flat.size();
}

double Network::distance(NodeId a, NodeId b, sim::Time t) {
  return geom::distance(node(a).position(t), node(b).position(t));
}

}  // namespace manet::net
