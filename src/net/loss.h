// Composable reception-loss model.
//
// Every reception attempt (Hello broadcast or protocol Message) is evaluated
// against a stack of LossLayers; each layer returns an independent drop
// probability for the concrete link at the concrete time, and the packet
// survives only if it survives every layer. The legacy global
// NetworkParams::packet_loss knob is layer zero of the stack; fault
// injection (per-link loss bursts, jamming zones, geometric partitions)
// registers further layers at run time.
//
// Layers must be deterministic pure functions of the LinkContext — the
// single Bernoulli draw against the combined probability is taken from the
// sender's RNG substream, which keeps runs bit-reproducible and leaves the
// draw sequence untouched whenever every layer reports 0.
#pragma once

#include <vector>

#include "geom/vec2.h"
#include "net/types.h"
#include "sim/event_queue.h"

namespace manet::net {

/// One directed delivery attempt, as seen by loss layers.
struct LinkContext {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  sim::Time time = 0.0;
  geom::Vec2 src_pos{};
  geom::Vec2 dst_pos{};
};

class LossLayer {
 public:
  virtual ~LossLayer() = default;

  /// Probability in [0, 1] that this layer destroys the packet. Must be
  /// deterministic in `link` (no internal randomness, no mutation).
  virtual double drop_probability(const LinkContext& link) const = 0;
};

/// Layer zero: link-independent Bernoulli loss (the legacy packet_loss knob).
class BernoulliLossLayer final : public LossLayer {
 public:
  explicit BernoulliLossLayer(double p);
  double drop_probability(const LinkContext&) const override { return p_; }

 private:
  double p_;
};

/// Survival-product combination of independent layers:
/// p = 1 - prod_i (1 - p_i), clamped to [0, 1].
double combined_drop_probability(
    const std::vector<const LossLayer*>& layers, const LinkContext& link);

}  // namespace manet::net
