// Generic one-hop message facility, used by protocols layered above the
// Hello beaconing (e.g. the CBRP-style routing extension). A Message is
// either a local broadcast (dst == kInvalidNode) or a one-hop unicast; the
// channel applies the same geometry/fading/loss rules as Hello delivery,
// and unicasts report link-layer success (the 802.11 ACK abstraction).
#pragma once

#include <cstdint>
#include <memory>

#include "net/types.h"

namespace manet::net {

struct Message {
  /// Immediate (one-hop) sender.
  NodeId src = kInvalidNode;
  /// One-hop destination; kInvalidNode broadcasts to every node in range.
  NodeId dst = kInvalidNode;
  /// Protocol-defined discriminator (tells the receiver how to interpret
  /// `body`).
  int kind = 0;
  /// Protocol-defined immutable payload; receivers std::static_pointer_cast
  /// it based on `kind`.
  std::shared_ptr<const void> body;
  /// Wire size for overhead accounting.
  std::size_t bytes = 0;
};

}  // namespace manet::net
