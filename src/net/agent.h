// Protocol hook attached to each node. The network layer drives the beacon
// loop and reception plumbing; an Agent implements the behaviour on top
// (clustering, routing experiments, instrumentation).
#pragma once

#include "net/hello.h"
#include "net/message.h"
#include "util/thread_role.h"

namespace manet::net {

class Node;

// Every Agent callback runs from the event loop (beacon timers, delivery
// events), i.e. on the commit thread — the whole interface is commit-only,
// and overrides inherit the obligation.
class Agent {
 public:
  virtual ~Agent() = default;

  /// Called once when the node is wired into the network, before any beacon.
  virtual void on_attach(Node& /*node*/) MANET_COMMIT_ONLY {}

  /// Called when the node crashes (fail()): protocol state must return to
  /// its boot configuration, as a real reboot would lose it.
  virtual void on_reset(Node& /*node*/) MANET_COMMIT_ONLY {}

  /// Called every broadcast interval, after the node purged stale neighbors
  /// and immediately before its Hello goes out: fill in the advertisement
  /// (weight, role, clusterhead). This is where MOBIC computes M and runs
  /// its clustering decision (§3.2 sequencing).
  virtual void on_beacon(Node& node, HelloPacket& out) MANET_COMMIT_ONLY = 0;

  /// Called for every successfully received Hello after the neighbor table
  /// was updated.
  virtual void on_hello(Node& /*node*/, const HelloPacket& /*pkt*/,
                        double /*rx_power_w*/) MANET_COMMIT_ONLY {}

  /// Called for every successfully received protocol Message (broadcast or
  /// unicast addressed to this node).
  virtual void on_message(Node& /*node*/, const Message& /*msg*/)
      MANET_COMMIT_ONLY {}
};

}  // namespace manet::net
