// Per-node neighbor table fed by Hello receptions.
//
// For every neighbor it keeps the two most recent reception powers — the
// raw material of the paper's relative mobility metric — the reception
// times (to enforce the "two *successive* transmissions" rule), and the
// neighbor's advertised clustering state. Entries expire after the timeout
// period TP.
//
// Storage is a flat vector kept sorted by neighbor id. Tables hold a
// handful of entries (the paper's densities top out around 30 neighbors),
// so binary search + shifting inserts beat a hash table on every axis that
// matters here: lookups are cache-friendly, iteration is the deterministic
// ascending-id order the protocols need with no sort or pointer vector,
// and the steady-state hot path (on_hello on a known neighbor, purge with
// nothing to drop) never allocates.
#pragma once

#include <array>
#include <vector>

#include "net/hello.h"
#include "net/types.h"
#include "sim/event_queue.h"
#include "util/thread_role.h"

namespace manet::net {

struct NeighborEntry {
  NodeId id = kInvalidNode;

  // Reception history (newest first).
  sim::Time last_heard = 0.0;
  sim::Time prev_heard = 0.0;
  double last_rx_w = 0.0;
  double prev_rx_w = 0.0;
  bool has_prev = false;
  std::uint32_t last_seq = 0;

  // Advertised clustering state from the latest Hello.
  double weight = 0.0;
  AdvertRole role = AdvertRole::kUndecided;
  NodeId cluster_head = kInvalidNode;
  std::uint16_t degree = 0;  // size of the advertised neighbor list
  // Extra utility components of a composite advertisement (all 0 with
  // count 0 for scalar protocols).
  std::array<double, HelloPacket::kMaxExtraWeights> extra_weights{};
  std::uint8_t extra_weight_count = 0;

  /// True if the two stored receptions are successive beacons: both exist
  /// and their spacing does not exceed `max_gap` (the paper's heuristic
  /// excluding nodes that skipped a beacon in the window).
  bool has_successive_pair(double max_gap) const {
    return has_prev && (last_heard - prev_heard) <= max_gap;
  }
};

class NeighborTable {
 public:
  /// Pre-sizes the entry array (networks reserve the node count, the hard
  /// upper bound on neighbors, so steady-state inserts never reallocate).
  void reserve(std::size_t capacity) { entries_.reserve(capacity); }

  /// Drops every entry but keeps the allocated capacity — outage recovery
  /// wipes state without re-entering the allocator.
  void clear() { entries_.clear(); }

  /// Records a Hello from `pkt.sender` heard at time `t` with power `rx_w`.
  void on_hello(sim::Time t, const HelloPacket& pkt, double rx_w)
      MANET_COMMIT_ONLY;

  /// Drops entries not heard since `t - timeout`. Returns how many were
  /// dropped.
  std::size_t purge(sim::Time t, double timeout) MANET_COMMIT_ONLY;

  /// Removes a single neighbor (used by failure-injection tests).
  bool erase(NodeId id) MANET_COMMIT_ONLY;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  bool contains(NodeId id) const { return find(id) != nullptr; }
  const NeighborEntry* find(NodeId id) const;

  /// The entries themselves, ascending by neighbor id (deterministic
  /// across runs). The reference is invalidated by any mutation.
  const std::vector<NeighborEntry>& entries() const { return entries_; }

  /// Legacy pointer view, ascending id (kept for tests; allocates).
  std::vector<const NeighborEntry*> entries_by_id() const;

  /// Overwrites `out` with the neighbor ids, ascending. Reuses `out`'s
  /// capacity — the allocation-free variant of ids().
  void ids_into(std::vector<NodeId>& out) const;

  /// Neighbor ids, ascending (allocates; prefer ids_into on hot paths).
  std::vector<NodeId> ids() const;

 private:
  NeighborEntry* find_mutable(NodeId id);

  std::vector<NeighborEntry> entries_;  // sorted by id
};

}  // namespace manet::net
