// Per-node neighbor table fed by Hello receptions.
//
// For every neighbor it keeps the two most recent reception powers — the
// raw material of the paper's relative mobility metric — the reception
// times (to enforce the "two *successive* transmissions" rule), and the
// neighbor's advertised clustering state. Entries expire after the timeout
// period TP.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "net/hello.h"
#include "net/types.h"
#include "sim/event_queue.h"

namespace manet::net {

struct NeighborEntry {
  NodeId id = kInvalidNode;

  // Reception history (newest first).
  sim::Time last_heard = 0.0;
  sim::Time prev_heard = 0.0;
  double last_rx_w = 0.0;
  double prev_rx_w = 0.0;
  bool has_prev = false;
  std::uint32_t last_seq = 0;

  // Advertised clustering state from the latest Hello.
  double weight = 0.0;
  AdvertRole role = AdvertRole::kUndecided;
  NodeId cluster_head = kInvalidNode;
  std::uint16_t degree = 0;  // size of the advertised neighbor list

  /// True if the two stored receptions are successive beacons: both exist
  /// and their spacing does not exceed `max_gap` (the paper's heuristic
  /// excluding nodes that skipped a beacon in the window).
  bool has_successive_pair(double max_gap) const {
    return has_prev && (last_heard - prev_heard) <= max_gap;
  }
};

class NeighborTable {
 public:
  /// Records a Hello from `pkt.sender` heard at time `t` with power `rx_w`.
  void on_hello(sim::Time t, const HelloPacket& pkt, double rx_w);

  /// Drops entries not heard since `t - timeout`. Returns how many were
  /// dropped.
  std::size_t purge(sim::Time t, double timeout);

  /// Removes a single neighbor (used by failure-injection tests).
  bool erase(NodeId id);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  bool contains(NodeId id) const { return entries_.count(id) > 0; }
  const NeighborEntry* find(NodeId id) const;

  /// Stable iteration: ascending neighbor id (deterministic across runs).
  std::vector<const NeighborEntry*> entries_by_id() const;

  /// Neighbor ids, ascending.
  std::vector<NodeId> ids() const;

 private:
  std::unordered_map<NodeId, NeighborEntry> entries_;
};

}  // namespace manet::net
