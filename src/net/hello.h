// The periodic "Hello" / "I'm Alive" beacon (paper §3.2). Carries the
// sender's clustering advertisement: its aggregate mobility metric M (the
// 8-byte overhead the paper quantifies), its cluster role, its clusterhead,
// and its neighbor list (the Lowest-ID literature [4, 5] has nodes broadcast
// their neighbor set; Max-Connectivity derives degree from it).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/types.h"

namespace manet::net {

/// Role advertised in a Hello. Mirrors the protocol states of §3.2.
enum class AdvertRole : std::uint8_t {
  kUndecided = 0,
  kHead = 1,
  kMember = 2,
};

struct HelloPacket {
  NodeId sender = kInvalidNode;
  std::uint32_t seq = 0;

  /// Advertised clustering weight. For MOBIC this is the aggregate local
  /// mobility metric M of eq. (2) ("represented by a double precision
  /// floating point number", §3.2); Lowest-ID ignores it.
  double weight = 0.0;

  AdvertRole role = AdvertRole::kUndecided;

  /// The sender's clusterhead (itself if role == kHead); kInvalidNode if
  /// undecided.
  NodeId cluster_head = kInvalidNode;

  /// The sender's current 1-hop neighbor set (excluding itself).
  std::vector<NodeId> neighbors;

  /// Composite-weight protocols (CCI, SD_DWCA) advertise up to this many
  /// extra utility components after the primary weight. Scalar protocols
  /// leave the count at 0 and their wire size unchanged.
  static constexpr std::size_t kMaxExtraWeights = 3;
  std::array<double, kMaxExtraWeights> extra_weights{};
  std::uint8_t extra_weight_count = 0;

  /// Wire size in bytes: 4 (sender) + 4 (seq) + 1 (role) + 4 (clusterhead)
  /// + 2 (neighbor count) + 4 per neighbor, plus the paper's 8-byte mobility
  /// field. Composite advertisements append 1 count byte + 8 per extra
  /// component; scalar protocols pay nothing.
  std::size_t serialized_bytes() const {
    return 4 + 4 + 1 + 4 + 2 + 4 * neighbors.size() + 8 +
           (extra_weight_count > 0 ? 1 + 8 * std::size_t{extra_weight_count}
                                   : 0);
  }
};

}  // namespace manet::net
