// Deterministic intra-run parallelism for the Hello broadcast hot path.
//
// One simulation run is inherently a serial (time, seq)-ordered event loop,
// and every golden hash in the test suite pins that order bit-exactly. The
// planner therefore never parallelizes *mutation*; it parallelizes the pure
// part of a broadcast — the candidate scan — speculatively:
//
//   * When a node schedules its jittered broadcast, the planner snapshots
//     the grid-query parameters (exactly the numbers the serial path would
//     compute at fire time) into a per-sender ScanJob and queues it on a
//     per-shard batch. Shards are contiguous `geom::GridIndex` tile blocks
//     (`geom::tile_shard`), so one batch touches one slice of the field.
//   * Worker threads execute batches on the shared `util::ThreadPool`:
//     grid query, exact positions (sampled from planner-owned
//     structure-of-arrays motion-leg tables — workers never touch mobility
//     models or nodes), distances, and, for deterministic media, the
//     received power and threshold verdict, cached per neighbor pair.
//   * At fire time the simulation thread *commits* the job: it replays
//     stats, hooks, RNG draws (loss, fading for stochastic media), and
//     delivery scheduling over the precomputed candidate list in exactly
//     the serial order. Every observable side effect — counters, RNG
//     streams, event (time, seq) assignment — is byte-identical to the
//     serial run by construction, for any worker count.
//
// Epoch barriers keep speculation sound: before any shared input mutates
// (grid snapshot refresh/rebuild, node liveness flip), the planner drains
// the pool and bumps its epoch; jobs speculated under an older epoch are
// discarded at commit and the broadcast falls back to the serial scan. Leg
// tables are re-unrolled at a drained barrier roughly once per simulated
// second (no epoch bump needed — positions are unchanged by extension).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "geom/grid_index.h"
#include "geom/vec2.h"
#include "mobility/mobility_model.h"
#include "net/types.h"
#include "sim/event_queue.h"
#include "util/thread_pool.h"
#include "util/thread_role.h"

namespace manet::net {

class Network;

class ShardPlanner {
 public:
  /// One precomputed delivery candidate, in the exact order the serial
  /// scan would visit it (grid query order).
  struct Candidate {
    std::uint32_t idx = 0;       // receiver node id
    std::uint8_t delivered = 0;  // threshold verdict (deterministic media)
    double dist = 0.0;           // exact sender-receiver distance
    double rx_power_w = 0.0;     // received power (deterministic media)
    double x = 0.0;              // exact receiver position at fire time
    double y = 0.0;
  };

  /// Cached per-neighbor-pair reception power, keyed by the bit-exact
  /// endpoint positions (hits on paused/static geometry); dropped when the
  /// epoch changes, i.e. at grid-cell-change barriers.
  struct PairCacheEntry {
    std::uint32_t idx = kInvalidNode;
    double sx = 0.0, sy = 0.0;  // sender position
    double rx = 0.0, ry = 0.0;  // receiver position
    double dist = 0.0;
    double rx_power_w = 0.0;
  };

  struct ScanJob {
    NodeId sender = kInvalidNode;
    sim::Time fire_time = -1.0;
    std::uint64_t epoch = 0;
    std::uint32_t shard = 0;
    // Query parameters, frozen at schedule time with the serial pad
    // arithmetic; valid while the epoch holds.
    geom::Vec2 center;
    double radius = 0.0;
    // Scan results (worker-written, commit-read).
    geom::Vec2 sender_pos;
    std::vector<std::size_t> query;
    std::vector<Candidate> candidates;
    std::atomic<int> state{0};
    std::uint64_t cache_epoch = 0;
    std::array<PairCacheEntry, 16> pair_cache;
  };

  ShardPlanner(Network& network, util::ThreadPool& pool);
  ~ShardPlanner() MANET_ROLE_AGNOSTIC;  // post-run serial teardown

  ShardPlanner(const ShardPlanner&) = delete;
  ShardPlanner& operator=(const ShardPlanner&) = delete;

  /// True when every node's mobility model can be unrolled into motion
  /// legs — the precondition for worker-side position sampling.
  static bool supported(const Network& network);

  /// Resolves a --sim-jobs request: 1 = serial, N > 1 = N workers, 0 =
  /// $MANET_SIM_JOBS if set, else the hardware concurrency (at least 1).
  static int resolve_sim_jobs(int requested);

  /// Called at the end of Network::start(): unrolls mobility, builds the
  /// SoA leg tables and alive flags, pre-sizes one job slot per node.
  void on_start() MANET_COMMIT_ONLY;

  /// A jittered broadcast by `sender` was scheduled for `fire_at`:
  /// speculate its candidate scan on the pool.
  void note_pending_broadcast(NodeId sender, sim::Time fire_at)
      MANET_COMMIT_ONLY;

  /// Commit side: the completed (or claimed-and-run-inline) job for
  /// (sender, now), or nullptr when no valid speculation exists and the
  /// caller must run the serial scan. Pair every success with release().
  const ScanJob* try_consume(NodeId sender, sim::Time now) MANET_COMMIT_ONLY;
  void release(const ScanJob* job) MANET_COMMIT_ONLY;

  /// Epoch barrier: drains the pool and invalidates every outstanding
  /// speculation. The network calls it before mutating anything a worker
  /// may read (grid snapshot refresh or rebuild).
  void pre_topology_change() MANET_COMMIT_ONLY;

  /// Liveness barrier: drain, bump the epoch, update the alive flag.
  void note_liveness(NodeId id, bool alive) MANET_COMMIT_ONLY;

  /// End of run: drain the pool and detach from the network (validators
  /// and destructors run strictly serially after this).
  void shutdown() MANET_COMMIT_ONLY;

  std::uint64_t speculated() const { return speculated_; }
  std::uint64_t committed() const { return committed_; }

 private:
  // Job lifecycle. Only the simulation thread moves jobs out of kIdle /
  // kQueued; workers CAS kSubmitted -> kRunning and store kDone / kFailed;
  // the simulation thread may CAS kSubmitted -> kClaimed to run the scan
  // inline instead of waiting.
  static constexpr int kIdle = 0;
  static constexpr int kQueued = 1;
  static constexpr int kSubmitted = 2;
  static constexpr int kRunning = 3;
  static constexpr int kDone = 4;
  static constexpr int kClaimed = 5;
  static constexpr int kFailed = 6;

  static constexpr std::size_t kBatchSize = 8;
  static constexpr sim::Time kHorizonSpan = 1.0;  // unrolled lookahead, sim-s

  // Worker entry points: run on pool threads against the epoch-immutable
  // SoA tables and grid snapshot. MANET_WORKER_SAFE is the root set the
  // manet-lint thread-role rule proves commit-only-free (the commit
  // thread may also call them — the inline-claim path in try_consume).
  void run_scan(ScanJob* job) const MANET_WORKER_SAFE;
  geom::Vec2 sample_position(std::size_t node, sim::Time t) const
      MANET_WORKER_SAFE;
  void refresh_motion(sim::Time now, sim::Time need) MANET_COMMIT_ONLY;
  void flush_shard(std::size_t shard) MANET_COMMIT_ONLY;
  void flush_all() MANET_COMMIT_ONLY;
  void reclaim(ScanJob& job) MANET_COMMIT_ONLY;

  Network& network_;
  util::ThreadPool& pool_;
  std::size_t n_shards_ = 1;
  std::uint64_t epoch_ = 1;
  sim::Time horizon_ = -1.0;
  bool deterministic_medium_ = true;
  double max_range_ = 0.0;

  // Structure-of-arrays motion state, rebuilt at drained barriers and
  // read-only for workers in between: node i's legs occupy
  // [leg_begin_[i], leg_begin_[i + 1]) in the parallel component arrays.
  std::vector<std::uint32_t> leg_begin_;
  std::vector<double> leg_t0_, leg_t1_;
  std::vector<double> leg_x0_, leg_y0_, leg_x1_, leg_y1_;
  std::vector<std::uint8_t> alive_;
  std::vector<mobility::MotionLeg> leg_scratch_;

  std::vector<std::unique_ptr<ScanJob>> jobs_;        // slot per sender
  std::vector<std::vector<ScanJob*>> shard_batches_;  // queued, unsubmitted
  std::uint64_t speculated_ = 0;
  std::uint64_t committed_ = 0;
};

}  // namespace manet::net
