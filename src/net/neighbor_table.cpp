#include "net/neighbor_table.h"

#include <algorithm>

#include "util/assert.h"

namespace manet::net {

namespace {

// First entry with id >= `id` in a vector sorted by id.
std::vector<NeighborEntry>::iterator lower_bound_id(
    std::vector<NeighborEntry>& entries, NodeId id) {
  return std::lower_bound(entries.begin(), entries.end(), id,
                          [](const NeighborEntry& e, NodeId target) {
                            return e.id < target;
                          });
}

}  // namespace

void NeighborTable::on_hello(sim::Time t, const HelloPacket& pkt,
                             double rx_w) {
  MANET_CHECK(pkt.sender != kInvalidNode, "hello without sender");
  MANET_CHECK(rx_w > 0.0, "non-positive rx power");
  auto it = lower_bound_id(entries_, pkt.sender);
  if (it == entries_.end() || it->id != pkt.sender) {
    it = entries_.insert(it, NeighborEntry{});
    it->id = pkt.sender;
  } else {
    MANET_ASSERT(t >= it->last_heard, "hello from the past");
    it->prev_heard = it->last_heard;
    it->prev_rx_w = it->last_rx_w;
    it->has_prev = true;
  }
  it->last_heard = t;
  it->last_rx_w = rx_w;
  it->last_seq = pkt.seq;
  it->weight = pkt.weight;
  it->role = pkt.role;
  it->cluster_head = pkt.cluster_head;
  it->extra_weights = pkt.extra_weights;
  it->extra_weight_count = pkt.extra_weight_count;
  it->degree = static_cast<std::uint16_t>(
      std::min<std::size_t>(pkt.neighbors.size(), 0xFFFF));
}

std::size_t NeighborTable::purge(sim::Time t, double timeout) {
  const auto stale = [t, timeout](const NeighborEntry& e) {
    return e.last_heard < t - timeout;
  };
  const auto first = std::remove_if(entries_.begin(), entries_.end(), stale);
  const auto dropped = static_cast<std::size_t>(entries_.end() - first);
  entries_.erase(first, entries_.end());
  return dropped;
}

bool NeighborTable::erase(NodeId id) {
  const auto it = lower_bound_id(entries_, id);
  if (it == entries_.end() || it->id != id) {
    return false;
  }
  entries_.erase(it);
  return true;
}

const NeighborEntry* NeighborTable::find(NodeId id) const {
  return const_cast<NeighborTable*>(this)->find_mutable(id);
}

NeighborEntry* NeighborTable::find_mutable(NodeId id) {
  const auto it = lower_bound_id(entries_, id);
  return (it == entries_.end() || it->id != id) ? nullptr : &*it;
}

std::vector<const NeighborEntry*> NeighborTable::entries_by_id() const {
  std::vector<const NeighborEntry*> out;
  out.reserve(entries_.size());
  for (const NeighborEntry& e : entries_) {
    out.push_back(&e);
  }
  return out;
}

void NeighborTable::ids_into(std::vector<NodeId>& out) const {
  out.clear();
  for (const NeighborEntry& e : entries_) {
    out.push_back(e.id);
  }
}

std::vector<NodeId> NeighborTable::ids() const {
  std::vector<NodeId> out;
  out.reserve(entries_.size());
  ids_into(out);
  return out;
}

}  // namespace manet::net
