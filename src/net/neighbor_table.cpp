#include "net/neighbor_table.h"

#include <algorithm>

#include "util/assert.h"

namespace manet::net {

void NeighborTable::on_hello(sim::Time t, const HelloPacket& pkt,
                             double rx_w) {
  MANET_CHECK(pkt.sender != kInvalidNode, "hello without sender");
  MANET_CHECK(rx_w > 0.0, "non-positive rx power");
  NeighborEntry& e = entries_[pkt.sender];
  if (e.id == kInvalidNode) {
    e.id = pkt.sender;
  } else {
    MANET_ASSERT(t >= e.last_heard, "hello from the past");
    e.prev_heard = e.last_heard;
    e.prev_rx_w = e.last_rx_w;
    e.has_prev = true;
  }
  e.last_heard = t;
  e.last_rx_w = rx_w;
  e.last_seq = pkt.seq;
  e.weight = pkt.weight;
  e.role = pkt.role;
  e.cluster_head = pkt.cluster_head;
  e.degree = static_cast<std::uint16_t>(
      std::min<std::size_t>(pkt.neighbors.size(), 0xFFFF));
}

std::size_t NeighborTable::purge(sim::Time t, double timeout) {
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.last_heard < t - timeout) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

bool NeighborTable::erase(NodeId id) { return entries_.erase(id) > 0; }

const NeighborEntry* NeighborTable::find(NodeId id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<const NeighborEntry*> NeighborTable::entries_by_id() const {
  std::vector<const NeighborEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [_, e] : entries_) {
    out.push_back(&e);
  }
  std::sort(out.begin(), out.end(),
            [](const NeighborEntry* a, const NeighborEntry* b) {
              return a->id < b->id;
            });
  return out;
}

std::vector<NodeId> NeighborTable::ids() const {
  std::vector<NodeId> out;
  out.reserve(entries_.size());
  for (const auto& [id, _] : entries_) {
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace manet::net
