#include "net/node.h"

#include "net/energy.h"
#include "net/network.h"
#include "util/assert.h"
#include "util/logging.h"

namespace manet::net {

Node::Node(NodeId id, std::unique_ptr<mobility::MobilityModel> mobility,
           util::Rng rng)
    : id_(id), mobility_(std::move(mobility)), rng_(std::move(rng)) {
  MANET_CHECK(id_ != kInvalidNode, "reserved node id");
  MANET_CHECK(mobility_ != nullptr, "node needs a mobility model");
}

void Node::set_agent(std::unique_ptr<Agent> agent) {
  MANET_CHECK(agent != nullptr);
  agent_ = std::move(agent);
}

Network& Node::network() {
  MANET_CHECK(network_ != nullptr, "node not attached to a network");
  return *network_;
}

sim::Simulator& Node::simulator() { return network().simulator(); }

void Node::start(Network& network, sim::Time first_beacon_at) {
  MANET_CHECK(network_ == nullptr, "node started twice");
  MANET_CHECK(agent_ != nullptr, "node " << id_ << " has no agent");
  network_ = &network;
  alive_ = true;
  agent_->on_attach(*this);
  beacon_timer_ = std::make_unique<sim::PeriodicTimer>(
      network.simulator(), [this] { beacon(); });
  beacon_timer_->start(first_beacon_at,
                       network.params().broadcast_interval);
}

void Node::set_beacon_period(double period) {
  MANET_CHECK(beacon_timer_ != nullptr, "set_beacon_period() before start()");
  beacon_timer_->set_period(period);
}

double Node::beacon_period() const {
  MANET_CHECK(beacon_timer_ != nullptr, "beacon_period() before start()");
  return beacon_timer_->period();
}

void Node::fail() {
  alive_ = false;
  if (beacon_timer_ != nullptr) {
    beacon_timer_->stop();
  }
  if (network_ != nullptr) {
    network_->note_liveness(id_, false);
  }
  if (network_ != nullptr && agent_ != nullptr) {
    agent_->on_reset(*this);  // a crash loses protocol state
  }
}

void Node::recover() {
  MANET_CHECK(network_ != nullptr, "recover() before start()");
  if (alive_) {
    return;
  }
  alive_ = true;
  network_->note_liveness(id_, true);
  table_.clear();  // stale state is gone after an outage (capacity kept)
  const double jitter =
      rng_.uniform(0.0, network_->params().broadcast_interval);
  beacon_timer_->start(simulator().now() + jitter,
                       network_->params().broadcast_interval);
}

void Node::beacon() {
  if (!alive_) {
    return;
  }
  util::ScopedSimNode failure_context(id_);
  const sim::Time now = simulator().now();
  network_->note_neighbor_timeouts(
      table_.purge(now, network_->params().neighbor_timeout));

  // Transmitting a Hello costs battery; the drain can empty it, in which
  // case the depletion fault has already failed this node and the beacon
  // never makes it to the air.
  if (EnergyModel* energy = network_->energy(); energy != nullptr) {
    energy->drain_hello_tx(id_, now);
    if (!alive_) {
      return;
    }
  }

  // The previous jittered broadcast still pending means the beacon period
  // has been pushed below the jitter window; fall back to a pooled one-off
  // packet so the in-flight one is not overwritten. Never taken at sane
  // configs, and never speculated on (the sender's scan slot is busy).
  if (beacon_in_flight_) {
    HelloPacket* pkt = network_->acquire_hello();
    pkt->sender = id_;
    pkt->seq = ++seq_;
    pkt->weight = 0.0;
    pkt->role = AdvertRole::kUndecided;
    pkt->cluster_head = kInvalidNode;
    pkt->extra_weight_count = 0;
    table_.ids_into(pkt->neighbors);
    agent_->on_beacon(*this, *pkt);
    simulator().schedule_in(
        rng_.uniform(0.0, network_->params().per_beacon_jitter),
        [this, pkt]() {
          MANET_ASSERT_COMMIT_ROLE();
          if (alive_) {
            network_->broadcast(*this, *pkt);
          }
          network_->release_hello(pkt);
        });
    return;
  }

  // Steady-state path: reuse the scratch packet (same field values a fresh
  // HelloPacket would carry; the agent overwrites its advertisement).
  scratch_pkt_.sender = id_;
  scratch_pkt_.seq = ++seq_;
  scratch_pkt_.weight = 0.0;
  scratch_pkt_.role = AdvertRole::kUndecided;
  scratch_pkt_.cluster_head = kInvalidNode;
  scratch_pkt_.extra_weight_count = 0;
  table_.ids_into(scratch_pkt_.neighbors);
  agent_->on_beacon(*this, scratch_pkt_);

  // Small per-beacon jitter desynchronizes beacons that drifted into phase
  // (the stagger is fixed at start; this models clock wobble).
  const double jitter = network_->params().per_beacon_jitter;
  if (jitter > 0.0) {
    beacon_in_flight_ = true;
    const double delay = rng_.uniform(0.0, jitter);
    // schedule_in resolves to now + delay exactly; the planner speculates
    // the candidate scan for that fire time while other events execute.
    network_->note_pending_broadcast(id_, now + delay);
    simulator().schedule_in(delay, [this]() {
      MANET_ASSERT_COMMIT_ROLE();
      beacon_in_flight_ = false;
      if (alive_) {
        network_->broadcast(*this, scratch_pkt_);
      }
    });
  } else {
    network_->broadcast(*this, scratch_pkt_);
  }
}

void Node::receive(const HelloPacket& pkt, double rx_power_w) {
  if (!alive_) {
    return;
  }
  util::ScopedSimNode failure_context(id_);
  const sim::Time now = simulator().now();
  // Receiving costs battery whether or not the frame survives the collision
  // check below (the radio listened either way). A battery emptied here
  // fails the node before the packet is processed.
  if (EnergyModel* energy = network_->energy(); energy != nullptr) {
    energy->drain_hello_rx(id_, now);
    if (!alive_) {
      return;
    }
  }
  // Simplified MAC collision model: an arrival overlapping the previous
  // one (within the collision window) is destroyed. The first frame is
  // assumed captured; the newcomer is lost but still occupies the medium.
  const double window = network_->params().collision_window;
  if (window > 0.0 && seen_rx_ && now - last_rx_time_ < window) {
    last_rx_time_ = now;
    network_->note_collision();
    return;
  }
  last_rx_time_ = now;
  seen_rx_ = true;
  ++hellos_received_;
  table_.on_hello(now, pkt, rx_power_w);
  agent_->on_hello(*this, pkt, rx_power_w);
}

void Node::receive_message(const Message& msg) {
  if (!alive_) {
    return;
  }
  util::ScopedSimNode failure_context(id_);
  // Messages share the medium with Hellos: the same collision window
  // applies to their arrivals.
  const sim::Time now = simulator().now();
  if (EnergyModel* energy = network_->energy(); energy != nullptr) {
    energy->drain_msg_rx(id_, now);
    if (!alive_) {
      return;
    }
  }
  const double window = network_->params().collision_window;
  if (window > 0.0 && seen_rx_ && now - last_rx_time_ < window) {
    last_rx_time_ = now;
    network_->note_collision();
    return;
  }
  last_rx_time_ = now;
  seen_rx_ = true;
  agent_->on_message(*this, msg);
}

}  // namespace manet::net
