// Node battery model: the scenario axis behind the energy-aware composite
// protocols (SD_DWCA) and the battery-churn ablations. Each node starts
// with a (seed-jittered) capacity in joules and pays
//
//   - a fixed cost per Hello transmitted / received,
//   - a fixed cost per protocol Message transmitted / received,
//   - a continuous idle draw (watts = joules per simulated second),
//
// all charged on the simulator commit thread, so energy state is replayed
// in exact serial order and stays bit-identical under --sim-jobs sharding.
// Idle draw is settled lazily: each discrete drain first integrates the
// idle cost since the node's last settlement, and settle_all() closes the
// books at end of run. A node whose battery reaches zero is depleted
// exactly once (a latch survives fault-injected recoveries): the
// on_depleted callback fires and the scenario driver feeds it to
// fault::Injector::inject_now as a kBatteryDepleted point fault. A node
// idling to zero between beacons is detected at its next discrete drain —
// the model's deterministic granularity.
//
// All storage is sized at construction; the drain paths never allocate
// (pinned by test_zero_alloc).
#pragma once

#include <cstdint>
#include <vector>

#include "net/types.h"
#include "obs/hooks.h"
#include "sim/event_queue.h"
#include "util/rng.h"
#include "util/thread_role.h"

namespace manet::net {

struct EnergyParams {
  /// Master switch; a default-constructed (disabled) EnergyParams leaves
  /// every scenario untouched (and out of the result-cache key).
  bool enabled = false;
  /// Mean initial battery capacity in joules.
  double capacity_j = 100.0;
  /// Per-node capacity spread: initial = capacity_j * (1 - jitter * U[0,1)),
  /// drawn from the scenario's "energy" substream. 0 = identical batteries.
  double capacity_jitter = 0.0;
  /// Continuous idle draw in watts (J per simulated second).
  double idle_drain_w = 0.0;
  /// Discrete costs in joules.
  double hello_tx_cost_j = 0.0;
  double hello_rx_cost_j = 0.0;
  double msg_tx_cost_j = 0.0;
  double msg_rx_cost_j = 0.0;

  bool operator==(const EnergyParams&) const = default;
};

class EnergyModel {
 public:
  // Plain function pointer + context, not std::function: the callback is
  // invoked on the drain path, which must never allocate (the lone caller
  // passes a captureless lambda over a fault::Injector*).
  using DepletedFn = void (*)(void* ctx, NodeId node, sim::Time t);

  /// Draws per-node capacities from `rng` (pass a dedicated substream; the
  /// draw order is node id ascending, so capacities are seed-deterministic).
  EnergyModel(const EnergyParams& params, std::size_t n_nodes, util::Rng rng)
      MANET_COMMIT_ONLY;

  void set_hooks(const obs::EnergyHooks* hooks) { hooks_ = hooks; }
  /// Invoked exactly once per node, at the drain that empties its battery.
  void set_on_depleted(DepletedFn on_depleted, void* ctx) {
    on_depleted_ = on_depleted;
    on_depleted_ctx_ = ctx;
  }

  // The drain surface mutates battery state that the golden hashes
  // observe, so it is commit-only end to end (including the depletion
  // callback it may fire).
  void drain_hello_tx(NodeId node, sim::Time t) MANET_COMMIT_ONLY {
    drain(node, t, params_.hello_tx_cost_j);
  }
  void drain_hello_rx(NodeId node, sim::Time t) MANET_COMMIT_ONLY {
    drain(node, t, params_.hello_rx_cost_j);
  }
  void drain_msg_tx(NodeId node, sim::Time t) MANET_COMMIT_ONLY {
    drain(node, t, params_.msg_tx_cost_j);
  }
  void drain_msg_rx(NodeId node, sim::Time t) MANET_COMMIT_ONLY {
    drain(node, t, params_.msg_rx_cost_j);
  }

  /// Settles idle draw for every node up to `t` (end of run) and records
  /// the residual-ratio histogram. Pure accounting: batteries may clamp to
  /// zero here but no depletion callbacks fire outside the simulation.
  void settle_all(sim::Time t) MANET_COMMIT_ONLY;

  bool depleted(NodeId node) const { return dead_[node] != 0; }
  double initial_j(NodeId node) const { return initial_[node]; }
  double residual_j(NodeId node) const { return residual_[node]; }
  /// Cumulative energy actually drained from `node` (== initial - residual
  /// up to floating-point accumulation order).
  double drained_j(NodeId node) const { return drained_[node]; }
  /// residual / initial in [0, 1]; the SD_DWCA energy term reads this.
  double residual_ratio(NodeId node) const {
    return initial_[node] > 0.0 ? residual_[node] / initial_[node] : 0.0;
  }

  double total_initial_j() const;
  double total_residual_j() const;
  double total_drained_j() const;
  /// Batteries that hit zero during the run (== kBatteryDepleted events).
  std::uint64_t deaths() const { return deaths_; }

  std::size_t size() const { return initial_.size(); }
  const EnergyParams& params() const { return params_; }

 private:
  void drain(NodeId node, sim::Time t, double cost) MANET_COMMIT_ONLY;
  /// Integrates idle draw since the node's last settlement. Depletion
  /// callbacks fire only when `notify` (false from settle_all).
  void settle(NodeId node, sim::Time t, bool notify) MANET_COMMIT_ONLY;
  void take(NodeId node, double amount) MANET_COMMIT_ONLY;
  void deplete(NodeId node, sim::Time t) MANET_COMMIT_ONLY;

  EnergyParams params_;
  std::vector<double> initial_;
  std::vector<double> residual_;
  std::vector<double> drained_;
  std::vector<sim::Time> last_settle_;
  std::vector<std::uint8_t> dead_;  // depletion latch; recovery never resets
  std::uint64_t deaths_ = 0;
  const obs::EnergyHooks* hooks_ = nullptr;
  DepletedFn on_depleted_ = nullptr;
  void* on_depleted_ctx_ = nullptr;
};

}  // namespace manet::net
