#include "net/energy.h"

#include "obs/metrics.h"
#include "util/assert.h"

namespace manet::net {

EnergyModel::EnergyModel(const EnergyParams& params, std::size_t n_nodes,
                         util::Rng rng)
    : params_(params) {
  MANET_CHECK(params_.capacity_j > 0.0,
              "energy capacity_j=" << params_.capacity_j);
  MANET_CHECK(params_.capacity_jitter >= 0.0 && params_.capacity_jitter < 1.0,
              "energy capacity_jitter=" << params_.capacity_jitter);
  MANET_CHECK(params_.idle_drain_w >= 0.0 && params_.hello_tx_cost_j >= 0.0 &&
                  params_.hello_rx_cost_j >= 0.0 &&
                  params_.msg_tx_cost_j >= 0.0 && params_.msg_rx_cost_j >= 0.0,
              "negative energy cost");
  initial_.resize(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const double jitter = params_.capacity_jitter > 0.0
                              ? params_.capacity_jitter * rng.uniform()
                              : 0.0;
    initial_[i] = params_.capacity_j * (1.0 - jitter);
  }
  residual_ = initial_;
  drained_.assign(n_nodes, 0.0);
  last_settle_.assign(n_nodes, 0.0);
  dead_.assign(n_nodes, 0);
}

void EnergyModel::drain(NodeId node, sim::Time t, double cost) {
  if (dead_[node] != 0) {
    return;
  }
  settle(node, t, /*notify=*/true);
  if (dead_[node] != 0 || cost <= 0.0) {
    return;
  }
  take(node, cost);
  if (hooks_ != nullptr && hooks_->drains != nullptr) {
    hooks_->drains->inc();
  }
  if (residual_[node] <= 0.0) {
    deplete(node, t);
  }
}

void EnergyModel::settle(NodeId node, sim::Time t, bool notify) {
  const sim::Time last = last_settle_[node];
  last_settle_[node] = t;
  if (params_.idle_drain_w <= 0.0 || t <= last) {
    return;
  }
  take(node, params_.idle_drain_w * (t - last));
  if (notify && dead_[node] == 0 && residual_[node] <= 0.0) {
    deplete(node, t);
  }
}

void EnergyModel::take(NodeId node, double amount) {
  double& residual = residual_[node];
  if (amount >= residual) {
    drained_[node] += residual;
    residual = 0.0;
  } else {
    drained_[node] += amount;
    residual -= amount;
  }
}

void EnergyModel::deplete(NodeId node, sim::Time t) {
  dead_[node] = 1;
  ++deaths_;
  if (hooks_ != nullptr && hooks_->depleted != nullptr) {
    hooks_->depleted->inc();
  }
  if (on_depleted_ != nullptr) {
    on_depleted_(on_depleted_ctx_, node, t);
  }
}

void EnergyModel::settle_all(sim::Time t) {
  for (std::size_t i = 0; i < residual_.size(); ++i) {
    settle(static_cast<NodeId>(i), t, /*notify=*/false);
    if (hooks_ != nullptr && hooks_->residual_ratio != nullptr) {
      hooks_->residual_ratio->record(residual_ratio(static_cast<NodeId>(i)));
    }
  }
}

double EnergyModel::total_initial_j() const {
  double total = 0.0;
  for (const double j : initial_) {
    total += j;
  }
  return total;
}

double EnergyModel::total_residual_j() const {
  double total = 0.0;
  for (const double j : residual_) {
    total += j;
  }
  return total;
}

double EnergyModel::total_drained_j() const {
  double total = 0.0;
  for (const double j : drained_) {
    total += j;
  }
  return total;
}

}  // namespace manet::net
