#include "util/thread_pool.h"

#include "util/assert.h"

namespace manet::util {

namespace {
// Index of the worker the current thread runs as, or npos for external
// threads. Lets nested submissions target the submitting worker's own deque.
constexpr std::size_t kExternal = static_cast<std::size_t>(-1);
thread_local std::size_t tls_worker_index = kExternal;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? hw : 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  MANET_CHECK(task != nullptr, "null task");
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    MANET_CHECK(!stop_, "submit() after ThreadPool shutdown");
    target = tls_worker_index < workers_.size() ? tls_worker_index
                                                : next_++ % workers_.size();
    ++queued_;
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

bool ThreadPool::try_pop(std::size_t index, std::function<void()>& task) {
  // Own deque first (LIFO: newest task, warm caches for nested submits)...
  {
    Worker& own = *workers_[index];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // ...then steal the oldest task from a sibling (FIFO).
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    Worker& victim = *workers_[(index + k) % workers_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_worker_index = index;
  for (;;) {
    std::function<void()> task;
    if (try_pop(index, task)) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        --queued_;
      }
      task();
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) {
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (queued_ > 0) {
      continue;  // raced with a submit between the scan and the lock
    }
    if (stop_) {
      return;
    }
    work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
  }
}

}  // namespace manet::util
