// Thread-role annotations for the --sim-jobs commit/worker discipline.
//
// The sharded execution model (net/shard_planner.h, DESIGN §4) splits one
// simulation run across two thread roles:
//
//   commit thread   the single thread driving the event loop. Every side
//                   effect that the golden hashes observe — RNG draws,
//                   stats/obs updates, energy charges, event scheduling,
//                   neighbor-table mutation — happens here, in exact serial
//                   order.
//   worker threads  pool threads running speculative candidate scans. They
//                   may only READ state that is immutable for the current
//                   epoch (grid snapshot, planner SoA leg tables, the radio
//                   medium's pure queries).
//
// This header turns that convention into checkable annotations:
//
//   MANET_COMMIT_ONLY    the function mutates replay-visible state (or
//                        calls something that does) and must only run on
//                        the commit thread.
//   MANET_WORKER_SAFE    the function is a worker entry point or a shared
//                        read path: it must be reachable-safe from pool
//                        threads, i.e. no call path from it may reach a
//                        MANET_COMMIT_ONLY function. (The commit thread may
//                        still call it — e.g. the planner's inline-claim
//                        scan — so this is a reachability contract, not an
//                        exclusion.)
//   MANET_ROLE_AGNOSTIC  the function dispatches on its dynamic context
//                        (e.g. the `planner == nullptr` serial fallback)
//                        and takes manual responsibility for only reaching
//                        commit-only effects when running serially. Both
//                        the clang analysis and the manet-lint call-graph
//                        rule trust it as a barrier: annotate sparingly and
//                        say why in a comment.
//
// Two cooperating checkers consume them:
//
//   1. Under clang, MANET_COMMIT_ONLY expands to a thread-safety-analysis
//      capability requirement on the global `commit_role` capability
//      (-Wthread-safety, wired up for src/ in src/CMakeLists.txt). The
//      capability is acquired where a thread *becomes* a run's commit
//      thread (util::CommitRoleScope in scenario::run_scenario and the
//      other simulator-owning drivers) and re-asserted at the top of every
//      event callback with MANET_ASSERT_COMMIT_ROLE() — event lambdas are
//      analyzed as standalone functions, so the assertion is what threads
//      the proof through the type-erased sim::InplaceEvent dispatch.
//      MANET_WORKER_SAFE deliberately adds no clang attribute: a worker
//      function is analyzed without the capability held, so any call into
//      a MANET_COMMIT_ONLY function is already a -Wthread-safety error;
//      the macro exists for readers and for the linter.
//   2. Everywhere (including gcc-only boxes), scripts/lint/manet_lint.py's
//      `thread-role` rule parses the macro names straight out of the
//      source, builds a cross-TU call graph, and reports any path from a
//      MANET_WORKER_SAFE root to a MANET_COMMIT_ONLY sink with the full
//      call chain — covering the indirect-call and template cases the
//      per-TU clang analysis cannot see.
//
// Under non-clang compilers every macro expands to nothing, so the
// annotations are zero-cost markers; MANET_ASSERT_COMMIT_ROLE() always
// expands to a call to an empty inline function and disappears at -O1.
#pragma once

namespace manet::util {

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MANET_TS_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef MANET_TS_ATTR
#define MANET_TS_ATTR(x)  // no-op marker outside clang
#endif

/// The (fictional) capability representing "this thread is the commit
/// thread of the run it is executing". Never locked at runtime; it exists
/// only as an annotation target.
struct MANET_TS_ATTR(capability("manet.commit_role")) CommitRoleCapability {};

/// The global annotation target MANET_COMMIT_ONLY refers to.
inline CommitRoleCapability commit_role;

// The role annotations (see file comment for semantics).
#define MANET_COMMIT_ONLY \
  MANET_TS_ATTR(requires_capability(::manet::util::commit_role))
#define MANET_WORKER_SAFE  // reachability contract; enforced by manet-lint
#define MANET_ROLE_AGNOSTIC MANET_TS_ATTR(no_thread_safety_analysis)

/// Declares that the current scope runs on the commit thread. Place as the
/// first statement of every event callback body (the lambdas handed to
/// sim::Simulator::schedule_* and the timer callbacks): type-erased
/// dispatch hides the caller from clang's analysis, so the callback body
/// re-asserts the role it inherits from the event loop.
inline void assert_commit_role() MANET_TS_ATTR(assert_capability(
    ::manet::util::commit_role)) {}
#define MANET_ASSERT_COMMIT_ROLE() ::manet::util::assert_commit_role()

/// RAII role acquisition for the drivers that *create* a commit thread:
/// anything that owns a sim::Simulator and drives it to completion
/// (scenario::run_scenario, the routing experiment drivers) — and, by the
/// same "serial owner of deterministic state" token, the sweep farm's
/// single-threaded control loop. One scope per run, at the top of the
/// driving function; everything it calls may then be MANET_COMMIT_ONLY.
class MANET_TS_ATTR(scoped_lockable) CommitRoleScope {
 public:
  CommitRoleScope()
      MANET_TS_ATTR(exclusive_lock_function(::manet::util::commit_role)) {}
  ~CommitRoleScope() MANET_TS_ATTR(unlock_function()) {}

  CommitRoleScope(const CommitRoleScope&) = delete;
  CommitRoleScope& operator=(const CommitRoleScope&) = delete;
};

}  // namespace manet::util
