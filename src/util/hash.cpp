#include "util/hash.h"

namespace manet::util {

std::string hex64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace manet::util
