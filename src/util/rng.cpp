#include "util/rng.h"

namespace manet::util {

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer (Steele, Lea, Flood 2014): full-avalanche 64-bit mix.
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_name(std::string_view name) {
  // FNV-1a, 64-bit.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace manet::util
