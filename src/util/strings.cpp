#include "util/strings.h"

#include <cctype>
#include <cstdlib>

#include "util/assert.h"

namespace manet::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += items[i];
  }
  return out;
}

std::vector<double> parse_double_list(std::string_view s) {
  std::vector<double> out;
  for (const auto& part : split(s, ',')) {
    const auto t = trim(part);
    MANET_CHECK(!t.empty(), "empty item in list '" << s << "'");
    const std::string item(t);
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    MANET_CHECK(end == item.c_str() + item.size(),
                "not a number: '" << item << "' in '" << s << "'");
    out.push_back(v);
  }
  return out;
}

}  // namespace manet::util
