// ASCII table printer: right-aligned numeric columns, left-aligned text,
// column separators — used by every bench binary to print paper-style rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace manet::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row. Must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience for mixed string/number rows.
  template <typename... Ts>
  void add(const Ts&... cells) {
    std::vector<std::string> row;
    row.reserve(sizeof...(cells));
    (row.push_back(to_cell(cells)), ...);
    add_row(std::move(row));
  }

  std::size_t rows() const { return rows_.size(); }

  /// Renders the table with a separator line under the header.
  std::string to_string() const;
  void print(std::ostream& os) const;

  /// Formats a double with `digits` decimal places (helper for callers).
  static std::string fmt(double v, int digits = 2);

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v) { return fmt(v); }
  static std::string to_cell(float v) { return fmt(v); }
  template <typename T>
    requires std::is_integral_v<T>
  static std::string to_cell(T v) {
    return std::to_string(v);
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace manet::util
