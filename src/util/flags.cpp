#include "util/flags.h"

#include <charconv>
#include <cstdlib>

#include "util/assert.h"

namespace manet::util {

Flags::Flags(int argc, const char* const* argv) {
  MANET_CHECK(argc >= 1, "argc must include the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" unless the next token is itself a flag (or absent),
    // in which case it is a bare boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::optional<std::string> Flags::raw(const std::string& name) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string Flags::get_string(const std::string& name, const std::string& def) {
  return raw(name).value_or(def);
}

int Flags::get_int(const std::string& name, int def) {
  const auto v = raw(name);
  if (!v) {
    return def;
  }
  int out = 0;
  const auto [ptr, ec] =
      std::from_chars(v->data(), v->data() + v->size(), out);
  MANET_CHECK(ec == std::errc() && ptr == v->data() + v->size(),
              "--" << name << " expects an integer, got '" << *v << "'");
  return out;
}

double Flags::get_double(const std::string& name, double def) {
  const auto v = raw(name);
  if (!v) {
    return def;
  }
  char* end = nullptr;
  const double out = std::strtod(v->c_str(), &end);
  MANET_CHECK(end == v->c_str() + v->size(),
              "--" << name << " expects a number, got '" << *v << "'");
  return out;
}

bool Flags::get_bool(const std::string& name, bool def) {
  const auto v = raw(name);
  if (!v) {
    return def;
  }
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") {
    return true;
  }
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") {
    return false;
  }
  MANET_CHECK(false, "--" << name << " expects a boolean, got '" << *v << "'");
  return def;  // unreachable
}

void Flags::finish() const {
  for (const auto& [name, _] : values_) {
    MANET_CHECK(consumed_.count(name) > 0 && consumed_.at(name),
                "unknown flag: --" << name);
  }
}

}  // namespace manet::util
