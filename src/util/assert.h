// Lightweight assertion / checked-failure macros used across the library.
//
// MANET_CHECK   - always evaluated, throws util::CheckError on failure. Use for
//                 preconditions on public API boundaries and config validation.
// MANET_ASSERT  - internal invariants; compiled out in NDEBUG builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace manet::util {

/// Thrown when a MANET_CHECK fails: a violated precondition or invariant that
/// callers may legitimately want to catch (e.g. bad configuration values).
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void fail_check(const char* expr, const char* file, int line,
                             const std::string& message);
}  // namespace detail

}  // namespace manet::util

// Always-on check. Optional trailing message: MANET_CHECK(x > 0, "x=" << x);
#define MANET_CHECK(expr, ...)                                              \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream manet_check_oss_;                                  \
      manet_check_oss_ << "" __VA_ARGS__;                                   \
      ::manet::util::detail::fail_check(#expr, __FILE__, __LINE__,          \
                                        manet_check_oss_.str());            \
    }                                                                       \
  } while (false)

#ifdef NDEBUG
#define MANET_ASSERT(expr, ...) \
  do {                          \
  } while (false)
#else
#define MANET_ASSERT(expr, ...) MANET_CHECK(expr, __VA_ARGS__)
#endif
