// Lightweight assertion / checked-failure macros used across the library.
//
// MANET_CHECK   - always evaluated, throws util::CheckError on failure. Use for
//                 preconditions on public API boundaries and config validation.
// MANET_ASSERT  - internal invariants; compiled out in NDEBUG builds.
//
// Failures raised while a simulation event is executing throw util::SimError
// (a CheckError subclass) carrying the current simulated time and, when the
// failure happened inside a node's handler, the node id — so a sweep runner
// can report *which run and when* went wrong instead of surfacing a bare
// expression string.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace manet::util {

/// Thrown when a MANET_CHECK fails: a violated precondition or invariant that
/// callers may legitimately want to catch (e.g. bad configuration values).
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

/// A CheckError raised during simulation-event execution, stamped with the
/// simulated time (and node id when known) taken from the thread-local
/// SimContext below.
class SimError : public CheckError {
 public:
  static constexpr std::uint32_t kNoNode = 0xffffffffu;

  SimError(const std::string& what, double sim_time,
           std::uint32_t node = kNoNode)
      : CheckError(what), sim_time_(sim_time), node_(node) {}

  /// Simulated seconds at the moment of failure.
  double sim_time() const { return sim_time_; }
  bool has_node() const { return node_ != kNoNode; }
  /// The node whose handler was executing, or kNoNode.
  std::uint32_t node() const { return node_; }

 private:
  double sim_time_;
  std::uint32_t node_;
};

/// Thread-local failure context. The simulator stamps the time around every
/// event; node handlers additionally stamp the node id. Each worker thread of
/// a parallel sweep runs its own single-threaded simulation, so thread-local
/// state is exactly per-run state.
struct SimContext {
  bool in_event = false;
  double sim_time = 0.0;
  bool has_node = false;
  std::uint32_t node = 0;
};
SimContext& sim_context();

/// RAII: marks this thread as executing a simulation event at time `t`.
class ScopedSimTime {
 public:
  explicit ScopedSimTime(double t) : saved_(sim_context()) {
    SimContext& ctx = sim_context();
    ctx.in_event = true;
    ctx.sim_time = t;
  }
  ~ScopedSimTime() { sim_context() = saved_; }
  ScopedSimTime(const ScopedSimTime&) = delete;
  ScopedSimTime& operator=(const ScopedSimTime&) = delete;

 private:
  SimContext saved_;
};

/// RAII: attributes the current event to a node (nested inside ScopedSimTime).
class ScopedSimNode {
 public:
  explicit ScopedSimNode(std::uint32_t node) : saved_(sim_context()) {
    SimContext& ctx = sim_context();
    ctx.has_node = true;
    ctx.node = node;
  }
  ~ScopedSimNode() { sim_context() = saved_; }
  ScopedSimNode(const ScopedSimNode&) = delete;
  ScopedSimNode& operator=(const ScopedSimNode&) = delete;

 private:
  SimContext saved_;
};

namespace detail {
[[noreturn]] void fail_check(const char* expr, const char* file, int line,
                             const std::string& message);
}  // namespace detail

}  // namespace manet::util

// Always-on check. Optional trailing message: MANET_CHECK(x > 0, "x=" << x);
#define MANET_CHECK(expr, ...)                                              \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream manet_check_oss_;                                  \
      manet_check_oss_ << "" __VA_ARGS__;                                   \
      ::manet::util::detail::fail_check(#expr, __FILE__, __LINE__,          \
                                        manet_check_oss_.str());            \
    }                                                                       \
  } while (false)

#ifdef NDEBUG
#define MANET_ASSERT(expr, ...) \
  do {                          \
  } while (false)
#else
#define MANET_ASSERT(expr, ...) MANET_CHECK(expr, __VA_ARGS__)
#endif
