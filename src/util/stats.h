// Statistics primitives used throughout the simulator and the experiment
// harness: Welford running moments, the paper's variance-about-zero (eq. 2),
// percentiles, time-weighted averages, confidence intervals and histograms.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace manet::util {

/// Numerically stable running mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  /// Mean of the observations; 0 when empty.
  double mean() const { return mean_; }
  /// Population variance (divide by n); 0 when fewer than 1 observation.
  double variance_population() const;
  /// Sample variance (divide by n-1); 0 when fewer than 2 observations.
  double variance_sample() const;
  double stddev_population() const;
  double stddev_sample() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Variance about zero, var0(x) = E[x^2] — the aggregation the paper's eq. (2)
/// applies to the per-neighbor relative-mobility samples. Returns 0 for an
/// empty sample set.
double var0(std::span<const double> samples);

/// Mean of a sample set; 0 when empty.
double mean(std::span<const double> samples);

/// Percentile in [0, 100] with linear interpolation between order statistics.
/// Requires a non-empty sample set (throws CheckError otherwise).
double percentile(std::vector<double> samples, double pct);

/// Mean with a two-sided confidence interval half-width. Uses Student's t
/// critical values for small n and the normal approximation for large n.
struct MeanCI {
  double mean = 0.0;
  double half_width = 0.0;  // mean ± half_width
  std::size_t n = 0;
};

/// 95% confidence interval on the mean of the samples. n == 0 yields {0,0,0};
/// n == 1 yields a zero-width interval.
MeanCI mean_ci95(std::span<const double> samples);

/// Integrates a piecewise-constant signal over time: call set(t, v) at each
/// change; finish(t_end) closes the last segment. average() is the
/// time-weighted mean over [first set, t_end].
class TimeWeightedMean {
 public:
  /// Records that the signal takes value `v` from time `t` onwards.
  /// Times must be non-decreasing.
  void set(double t, double v);
  /// Closes the final segment at `t_end` (>= last set time).
  void finish(double t_end);

  bool started() const { return started_; }
  double average() const;
  /// Total observed span (finish time minus first set time).
  double duration() const { return total_time_; }

 private:
  bool started_ = false;
  bool finished_ = false;
  double last_t_ = 0.0;
  double last_v_ = 0.0;
  double weighted_sum_ = 0.0;
  double total_time_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the edge
/// bins. Used for distributional reporting (cluster sizes, CH lifetimes).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bin_count(std::size_t bin) const;
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Multi-line ASCII rendering, for debug output.
  std::string to_string(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace manet::util
