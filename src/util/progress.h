// Thread-safe progress accounting for long parallel jobs: atomic counters a
// worker thread bumps per finished run, snapshotted by an observer (a live
// progress line, a run log, a test). Wall-clock throughput is measured
// against the meter's start() stamp.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>

namespace manet::util {

/// A consistent view of a ProgressMeter at one instant.
struct ProgressSnapshot {
  std::size_t completed = 0;     // runs finished
  std::size_t total = 0;         // runs planned (0 when open-ended)
  double wall_elapsed_s = 0.0;   // since start()
  double sim_seconds = 0.0;      // simulated seconds completed, summed
  double run_wall_s = 0.0;       // per-run wall seconds, summed

  /// Simulated seconds per wall second (aggregate throughput); 0 early on.
  double sim_rate() const {
    return wall_elapsed_s > 0.0 ? sim_seconds / wall_elapsed_s : 0.0;
  }
  /// Mean wall-clock cost of one run; 0 before the first run finishes.
  double mean_run_wall_s() const {
    return completed > 0 ? run_wall_s / static_cast<double>(completed) : 0.0;
  }
};

class ProgressMeter {
 public:
  /// (Re)arms the meter: sets the planned run count and stamps the clock.
  void start(std::size_t total);

  /// Records one finished run; callable from any thread.
  void record_run(double sim_seconds, double wall_seconds);

  ProgressSnapshot snapshot() const;

 private:
  static void atomic_add(std::atomic<double>& target, double delta);

  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> total_{0};
  std::atomic<double> sim_seconds_{0.0};
  std::atomic<double> run_wall_s_{0.0};
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace manet::util
