// Counting replacements for the global allocation functions. Linked only
// into binaries that want allocation observability (see alloc_hook.h).
//
// The replacements forward to malloc/free, so sanitizers (which intercept
// malloc) keep working; the counters are relaxed atomics, so the hook is
// thread-safe and nearly free.
#include "util/alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? align : size) != 0) {
    return nullptr;
  }
  return p;
}

void counted_free(void* p) {
  if (p != nullptr) {
    g_frees.fetch_add(1, std::memory_order_relaxed);
  }
  std::free(p);
}

}  // namespace

namespace manet::util {

std::uint64_t heap_alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}
std::uint64_t heap_free_count() {
  return g_frees.load(std::memory_order_relaxed);
}
bool alloc_hook_active() { return true; }

}  // namespace manet::util

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
