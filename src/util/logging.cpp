#include "util/logging.h"

#include <algorithm>
#include <cctype>

#include "util/assert.h"

namespace manet::util {

LogLevel Logger::level_ = LogLevel::kWarn;
std::ostream* Logger::stream_ = &std::cerr;

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  MANET_CHECK(false, "unknown log level: " << name);
  return LogLevel::kWarn;  // unreachable
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from the file path for compact output.
  std::string_view path(file);
  const auto slash = path.find_last_of('/');
  if (slash != std::string_view::npos) {
    path.remove_prefix(slash + 1);
  }
  oss_ << "[" << log_level_name(level_) << " " << path << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  Logger::stream() << oss_.str() << '\n';
}

}  // namespace manet::util
