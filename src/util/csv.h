// Tiny CSV writer with RFC-4180-style quoting. Benches use it to dump every
// reproduced figure as machine-readable data next to the console output.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace manet::util {

/// Quotes a CSV field if it contains a comma, quote or newline.
std::string csv_escape(std::string_view field);

class CsvWriter {
 public:
  /// Opens `path` for writing, truncating. Throws CheckError if the file
  /// cannot be opened.
  explicit CsvWriter(const std::string& path);

  /// In-memory writer (for tests); contents retrievable via str().
  CsvWriter();

  /// Writes one row; fields are escaped as needed.
  void row(const std::vector<std::string>& fields);
  void row(std::initializer_list<std::string_view> fields);

  /// Convenience: formats arithmetic values with max round-trip precision.
  template <typename... Ts>
  void row_values(const Ts&... values) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(values));
    (fields.push_back(format_field(values)), ...);
    row(fields);
  }

  /// Formats a double exactly as row_values() would — for callers that mix
  /// numeric and already-formatted fields in one row.
  static std::string number(double v) { return format_field(v); }

  /// Number of rows written so far.
  std::size_t rows_written() const { return rows_; }

  /// Only valid for in-memory writers.
  std::string str() const;

 private:
  static std::string format_field(const std::string& s) { return s; }
  static std::string format_field(const char* s) { return s; }
  static std::string format_field(std::string_view s) { return std::string(s); }
  static std::string format_field(double v);
  static std::string format_field(float v) { return format_field(double{v}); }
  template <typename T>
    requires std::is_integral_v<T>
  static std::string format_field(T v) {
    return std::to_string(v);
  }

  std::ostream& out();

  std::ofstream file_;
  std::string buffer_;  // used when file_ is not open
  bool to_file_ = false;
  std::size_t rows_ = 0;
};

}  // namespace manet::util
