#include "util/assert.h"

namespace manet::util {

SimContext& sim_context() {
  thread_local SimContext ctx;
  return ctx;
}

namespace detail {

void fail_check(const char* expr, const char* file, int line,
                const std::string& message) {
  std::ostringstream oss;
  oss << "check failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  const SimContext& ctx = sim_context();
  if (ctx.in_event) {
    oss << " [sim t=" << ctx.sim_time << " s";
    if (ctx.has_node) {
      oss << ", node " << ctx.node;
    }
    oss << "]";
    throw SimError(oss.str(), ctx.sim_time,
                   ctx.has_node ? ctx.node : SimError::kNoNode);
  }
  throw CheckError(oss.str());
}

}  // namespace detail
}  // namespace manet::util
