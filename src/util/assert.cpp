#include "util/assert.h"

namespace manet::util::detail {

void fail_check(const char* expr, const char* file, int line,
                const std::string& message) {
  std::ostringstream oss;
  oss << "check failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  throw CheckError(oss.str());
}

}  // namespace manet::util::detail
