// Minimal SVG document builder — enough to render cluster-topology frames
// (circles, rectangles, lines, text) without external dependencies.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace manet::util {

class SvgDocument {
 public:
  /// Canvas in user units (1 unit = 1 px).
  SvgDocument(double width, double height);

  void add_circle(double cx, double cy, double r, std::string_view fill,
                  std::string_view stroke = "none", double stroke_width = 0);
  void add_rect(double x, double y, double w, double h,
                std::string_view fill, std::string_view stroke = "none",
                double stroke_width = 0);
  void add_line(double x1, double y1, double x2, double y2,
                std::string_view stroke, double width = 1.0,
                double opacity = 1.0);
  void add_text(double x, double y, std::string_view text, double size,
                std::string_view fill = "black");

  /// Dashed circle outline (cluster coverage disks).
  void add_circle_outline(double cx, double cy, double r,
                          std::string_view stroke, double width = 1.0,
                          bool dashed = true);

  std::size_t elements() const { return body_.size(); }
  std::string to_string() const;
  /// Writes the document; throws CheckError if the file cannot be opened.
  void save(const std::string& path) const;

  /// A qualitative 12-color palette; pick(i) cycles deterministically.
  static std::string palette(std::size_t i);

 private:
  double width_;
  double height_;
  std::vector<std::string> body_;
};

}  // namespace manet::util
