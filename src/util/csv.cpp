#include "util/csv.h"

#include <charconv>
#include <sstream>

#include "util/assert.h"

namespace manet::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) {
    return std::string(field);
  }
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') {
      out.push_back('"');
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : to_file_(true) {
  file_.open(path, std::ios::out | std::ios::trunc);
  MANET_CHECK(file_.is_open(), "cannot open CSV output file: " << path);
}

CsvWriter::CsvWriter() = default;

std::ostream& CsvWriter::out() {
  MANET_ASSERT(to_file_);
  return file_;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      line.push_back(',');
    }
    line += csv_escape(fields[i]);
  }
  line.push_back('\n');
  if (to_file_) {
    out() << line;
  } else {
    buffer_ += line;
  }
  ++rows_;
}

void CsvWriter::row(std::initializer_list<std::string_view> fields) {
  std::vector<std::string> copy;
  copy.reserve(fields.size());
  for (const auto f : fields) {
    copy.emplace_back(f);
  }
  row(copy);
}

std::string CsvWriter::str() const {
  MANET_CHECK(!to_file_, "str() is only available for in-memory writers");
  return buffer_;
}

std::string CsvWriter::format_field(double v) {
  std::ostringstream oss;
  oss.precision(12);
  oss << v;
  return oss.str();
}

}  // namespace manet::util
