// Deterministic random number generation.
//
// A simulation run owns one root Rng seeded from the scenario seed. Components
// derive independent, reproducible substreams by name (e.g. "mobility/node12",
// "channel/jitter") so that adding a new consumer never perturbs the draws
// seen by existing consumers — a property plain shared-engine designs lack.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

#include "util/assert.h"
#include "util/thread_role.h"

namespace manet::util {

/// 64-bit stateless mix (splitmix64 finalizer); used for seed derivation.
std::uint64_t mix64(std::uint64_t x);

/// FNV-1a hash of a string, for naming substreams.
std::uint64_t hash_name(std::string_view name);

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(mix64(seed)), seed_(seed) {}

  /// The seed this stream was constructed with.
  std::uint64_t seed() const { return seed_; }

  /// Derives an independent substream; deterministic in (seed, name).
  Rng substream(std::string_view name) const {
    return Rng(mix64(seed_ ^ hash_name(name)));
  }
  /// Derives an independent substream keyed by an integer (e.g. a node id).
  Rng substream(std::string_view name, std::uint64_t key) const {
    return Rng(mix64(mix64(seed_ ^ hash_name(name)) + key));
  }

  // Every draw advances the engine, and the replay contract fixes the draw
  // order bit-exactly — so draws are commit-only effects (workers speculate
  // with pure geometry and the commit thread replays the draws in serial
  // order; see net/shard_planner.h).

  /// Uniform double in [0, 1).
  double uniform() MANET_COMMIT_ONLY {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }
  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) MANET_COMMIT_ONLY {
    MANET_ASSERT(lo <= hi, "uniform(" << lo << ", " << hi << ")");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) MANET_COMMIT_ONLY {
    MANET_ASSERT(lo <= hi, "uniform_int(" << lo << ", " << hi << ")");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  /// Standard normal draw scaled to (mean, stddev).
  double normal(double mean, double stddev) MANET_COMMIT_ONLY {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  /// Exponential draw with the given mean (not rate). Requires mean > 0.
  double exponential_mean(double mean) MANET_COMMIT_ONLY {
    MANET_ASSERT(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }
  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) MANET_COMMIT_ONLY {
    MANET_ASSERT(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Picks a uniformly random element index for a container of size n > 0.
  std::size_t index(std::size_t n) MANET_COMMIT_ONLY {
    MANET_ASSERT(n > 0);
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) MANET_COMMIT_ONLY {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Direct access for std distributions not wrapped above.
  std::mt19937_64& engine() MANET_COMMIT_ONLY { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace manet::util
