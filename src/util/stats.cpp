#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.h"

namespace manet::util {

void RunningStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-merge form of Welford's update.
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats(); }

double RunningStats::variance_population() const {
  if (count_ < 1) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::variance_sample() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev_population() const {
  return std::sqrt(variance_population());
}

double RunningStats::stddev_sample() const {
  return std::sqrt(variance_sample());
}

double var0(std::span<const double> samples) {
  if (samples.empty()) {
    return 0.0;
  }
  double sum_sq = 0.0;
  for (const double x : samples) {
    sum_sq += x * x;
  }
  return sum_sq / static_cast<double>(samples.size());
}

double mean(std::span<const double> samples) {
  if (samples.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const double x : samples) {
    sum += x;
  }
  return sum / static_cast<double>(samples.size());
}

double percentile(std::vector<double> samples, double pct) {
  MANET_CHECK(!samples.empty(), "percentile of empty sample set");
  MANET_CHECK(pct >= 0.0 && pct <= 100.0, "pct=" << pct);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) {
    return samples.front();
  }
  const double rank = pct / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

namespace {

// Two-sided 95% Student-t critical values for df = 1..30; beyond that the
// normal approximation (1.96) is within ~2%.
double t_crit95(std::size_t df) {
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) {
    return 0.0;
  }
  if (df <= 30) {
    return kTable[df - 1];
  }
  return 1.96;
}

}  // namespace

MeanCI mean_ci95(std::span<const double> samples) {
  MeanCI ci;
  ci.n = samples.size();
  if (samples.empty()) {
    return ci;
  }
  RunningStats rs;
  for (const double x : samples) {
    rs.add(x);
  }
  ci.mean = rs.mean();
  if (samples.size() >= 2) {
    const double se =
        rs.stddev_sample() / std::sqrt(static_cast<double>(samples.size()));
    ci.half_width = t_crit95(samples.size() - 1) * se;
  }
  return ci;
}

void TimeWeightedMean::set(double t, double v) {
  MANET_CHECK(!finished_, "set() after finish()");
  if (started_) {
    MANET_CHECK(t >= last_t_, "non-monotonic time: " << t << " < " << last_t_);
    weighted_sum_ += last_v_ * (t - last_t_);
    total_time_ += t - last_t_;
  }
  started_ = true;
  last_t_ = t;
  last_v_ = v;
}

void TimeWeightedMean::finish(double t_end) {
  MANET_CHECK(started_, "finish() before any set()");
  MANET_CHECK(!finished_, "finish() called twice");
  MANET_CHECK(t_end >= last_t_, "t_end=" << t_end << " < last=" << last_t_);
  weighted_sum_ += last_v_ * (t_end - last_t_);
  total_time_ += t_end - last_t_;
  finished_ = true;
}

double TimeWeightedMean::average() const {
  if (total_time_ <= 0.0) {
    // Degenerate span: report the last (only) level set.
    return started_ ? last_v_ : 0.0;
  }
  return weighted_sum_ / total_time_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  MANET_CHECK(hi > lo, "histogram range [" << lo << ", " << hi << ")");
  MANET_CHECK(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  std::size_t bin;
  if (x < lo_) {
    bin = 0;
  } else if (x >= hi_) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((x - lo_) / width_);
    bin = std::min(bin, counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  MANET_CHECK(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

std::string Histogram::to_string(std::size_t max_width) const {
  std::size_t peak = 1;
  for (const auto c : counts_) {
    peak = std::max(peak, c);
  }
  std::ostringstream oss;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        counts_[i] * max_width / peak;
    oss << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << '\n';
  }
  return oss.str();
}

}  // namespace manet::util
