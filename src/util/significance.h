// Nonparametric significance tools for the experiment harness: the
// Mann-Whitney U rank-sum test (are MOBIC's CS samples stochastically
// smaller than Lowest-ID's?) and bootstrap confidence intervals for
// arbitrary statistics — small-sample-safe, distribution-free, which is
// what 5-seed simulation studies need.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "util/rng.h"

namespace manet::util {

struct MannWhitneyResult {
  double u = 0.0;        // U statistic of sample A
  double z = 0.0;        // normal approximation (tie-corrected)
  double p_two_sided = 0.0;
  double p_a_less = 0.0;  // one-sided: A stochastically smaller than B
  /// Common-language effect size: P(a < b) + 0.5 P(a = b).
  double effect_size = 0.0;
};

/// Mann-Whitney U with normal approximation and tie correction. Requires
/// both samples non-empty; with very small n (< ~4 per side) p-values are
/// approximate — report the effect size alongside.
MannWhitneyResult mann_whitney(std::span<const double> a,
                               std::span<const double> b);

/// Percentile-bootstrap confidence interval for `statistic` of `sample`.
struct BootstrapCI {
  double point = 0.0;  // statistic on the original sample
  double lo = 0.0;
  double hi = 0.0;
};

BootstrapCI bootstrap_ci(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    double confidence = 0.95, int resamples = 2000,
    std::uint64_t seed = 0x9E3779B9);

/// Standard normal CDF (exposed for tests).
double normal_cdf(double z);

}  // namespace manet::util
