// Minimal leveled logger. Single global sink (stderr by default), thread-safe
// enough for this single-threaded simulator (no locking; do not log from
// multiple threads concurrently).
//
// Usage:
//   MANET_LOG(Info) << "node " << id << " became clusterhead";
//   util::Logger::set_level(util::LogLevel::kWarn);   // silence info/debug
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace manet::util {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Returns the canonical short name ("DEBUG", "INFO", ...) for a level.
std::string_view log_level_name(LogLevel level);

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
/// Throws CheckError on unknown names.
LogLevel parse_log_level(std::string_view name);

class Logger {
 public:
  static LogLevel level() { return level_; }
  static void set_level(LogLevel level) { level_ = level; }

  /// Sink for finished log lines; overridable for tests.
  static std::ostream& stream() { return *stream_; }
  static void set_stream(std::ostream& os) { stream_ = &os; }

 private:
  static LogLevel level_;
  static std::ostream* stream_;
};

/// One log statement: buffers the message and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    oss_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};

}  // namespace manet::util

#define MANET_LOG(severity)                                                  \
  if (::manet::util::LogLevel::k##severity < ::manet::util::Logger::level()) \
    ;                                                                        \
  else                                                                       \
    ::manet::util::LogMessage(::manet::util::LogLevel::k##severity,          \
                              __FILE__, __LINE__)
