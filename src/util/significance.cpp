#include "util/significance.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"
#include "util/thread_role.h"

namespace manet::util {

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

MannWhitneyResult mann_whitney(std::span<const double> a,
                               std::span<const double> b) {
  MANET_CHECK(!a.empty() && !b.empty(),
              "mann_whitney needs two non-empty samples");
  const double n1 = static_cast<double>(a.size());
  const double n2 = static_cast<double>(b.size());

  // Rank the pooled sample with midranks for ties.
  struct Tagged {
    double v;
    int group;  // 0 = a, 1 = b
  };
  std::vector<Tagged> pool;
  pool.reserve(a.size() + b.size());
  for (const double v : a) {
    pool.push_back({v, 0});
  }
  for (const double v : b) {
    pool.push_back({v, 1});
  }
  std::sort(pool.begin(), pool.end(),
            [](const Tagged& x, const Tagged& y) { return x.v < y.v; });

  double rank_sum_a = 0.0;
  double tie_term = 0.0;  // sum over tie groups of (t^3 - t)
  std::size_t i = 0;
  while (i < pool.size()) {
    std::size_t j = i;
    while (j < pool.size() && pool[j].v == pool[i].v) {
      ++j;
    }
    // Midrank for positions i..j-1 (1-based ranks).
    const double midrank =
        (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    const double t = static_cast<double>(j - i);
    if (t > 1.0) {
      tie_term += t * t * t - t;
    }
    for (std::size_t k = i; k < j; ++k) {
      if (pool[k].group == 0) {
        rank_sum_a += midrank;
      }
    }
    i = j;
  }

  MannWhitneyResult r;
  r.u = rank_sum_a - n1 * (n1 + 1.0) / 2.0;
  const double mean_u = n1 * n2 / 2.0;
  const double n = n1 + n2;
  const double var_u =
      n1 * n2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (var_u <= 0.0) {
    // All values identical: no evidence either way.
    r.z = 0.0;
    r.p_two_sided = 1.0;
    r.p_a_less = 0.5;
    r.effect_size = 0.5;
    return r;
  }
  // Continuity correction toward the mean.
  const double cc = r.u > mean_u ? -0.5 : (r.u < mean_u ? 0.5 : 0.0);
  r.z = (r.u - mean_u + cc) / std::sqrt(var_u);
  r.p_a_less = normal_cdf(r.z);  // small U -> A tends smaller -> z < 0
  r.p_two_sided = 2.0 * std::min(normal_cdf(r.z), 1.0 - normal_cdf(r.z));
  r.p_two_sided = std::min(r.p_two_sided, 1.0);
  r.effect_size = r.u / (n1 * n2);  // P(a > b) + .5P(=) ... see below
  // u here counts pairs where a outranks b; convert to P(a < b)+.5P(=).
  r.effect_size = 1.0 - r.effect_size;
  return r;
}

BootstrapCI bootstrap_ci(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    double confidence, int resamples, std::uint64_t seed) {
  MANET_CHECK(!sample.empty(), "bootstrap of empty sample");
  MANET_CHECK(confidence > 0.0 && confidence < 1.0,
              "confidence=" << confidence);
  MANET_CHECK(resamples > 1);
  BootstrapCI ci;
  ci.point = statistic(sample);

  // The bootstrap owns its private Rng and runs serially: this scope is
  // the "serial owner of deterministic state" case of CommitRoleScope.
  CommitRoleScope commit_scope;
  Rng rng(seed);
  std::vector<double> resample(sample.size());
  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    for (auto& v : resample) {
      v = sample[rng.index(sample.size())];
    }
    stats.push_back(statistic(resample));
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(stats.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, stats.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return stats[lo] + frac * (stats[hi] - stats[lo]);
  };
  ci.lo = quantile(alpha);
  ci.hi = quantile(1.0 - alpha);
  return ci;
}

}  // namespace manet::util
