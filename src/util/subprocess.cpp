#include "util/subprocess.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <thread>
#include <utility>

#include "util/assert.h"

namespace manet::util {

namespace {

void close_quiet(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Milliseconds until `deadline` clamped to [0, INT_MAX]; -1 for "forever".
int poll_timeout_ms(const IoDeadline* deadline) {
  if (deadline == nullptr) {
    return -1;
  }
  const auto remaining = *deadline - std::chrono::steady_clock::now();
  if (remaining <= std::chrono::milliseconds(0)) {
    return 0;
  }
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
          .count() +
      1;  // round up so we never poll(0) while time remains
  return ms > 60'000 ? 60'000 : static_cast<int>(ms);
}

}  // namespace

IoDeadline deadline_after(double seconds) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(seconds > 0.0 ? seconds : 0.0));
}

bool wait_readable(int fd, const IoDeadline* deadline) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int r = ::poll(&pfd, 1, poll_timeout_ms(deadline));
    if (r > 0) {
      return true;  // readable, HUP, or error — read() will tell which
    }
    if (r < 0 && errno != EINTR) {
      return true;  // let read() surface the real errno
    }
    // r == 0 (poll timeout slice elapsed) or EINTR: recheck the deadline.
    if (deadline != nullptr &&
        std::chrono::steady_clock::now() >= *deadline) {
      return false;
    }
  }
}

IoStatus read_exact(int fd, char* buf, std::size_t n,
                    const IoDeadline* deadline) {
  std::size_t got = 0;
  while (got < n) {
    if (!wait_readable(fd, deadline)) {
      return IoStatus::kTimeout;
    }
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0 && errno == EINTR) {
      continue;
    }
    if (r < 0) {
      return IoStatus::kError;
    }
    if (r == 0) {
      return got == 0 ? IoStatus::kEof : IoStatus::kTorn;
    }
    got += static_cast<std::size_t>(r);
  }
  return IoStatus::kOk;
}

bool write_all(int fd, const char* buf, std::size_t n) {
  std::size_t put = 0;
  while (put < n) {
    const ssize_t w = ::write(fd, buf + put, n - put);
    if (w < 0 && errno == EINTR) {
      continue;
    }
    if (w <= 0) {
      return false;
    }
    put += static_cast<std::size_t>(w);
  }
  return true;
}

Subprocess Subprocess::spawn(const std::vector<std::string>& argv) {
  MANET_CHECK(!argv.empty(), "Subprocess::spawn: empty argv");
  int to_child[2] = {-1, -1};    // parent writes [1] -> child stdin [0]
  int from_child[2] = {-1, -1};  // child stdout [1] -> parent reads [0]
  MANET_CHECK(::pipe(to_child) == 0,
              "pipe() failed: " << ::strerror(errno));
  if (::pipe(from_child) != 0) {
    const int err = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    MANET_CHECK(false, "pipe() failed: " << ::strerror(err));
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1]}) {
      ::close(fd);
    }
    MANET_CHECK(false, "fork() failed: " << ::strerror(err));
  }

  if (pid == 0) {
    // Child: wire the pipes onto stdin/stdout, close everything else we
    // opened, exec. Only async-signal-safe calls between fork and exec.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) {
      cargv.push_back(const_cast<char*>(a.c_str()));
    }
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    _exit(127);  // exec failed; parent sees EOF + exit code 127
  }

  // Parent.
  ::close(to_child[0]);
  ::close(from_child[1]);
  Subprocess p;
  p.pid_ = pid;
  p.stdin_fd_ = to_child[1];
  p.stdout_fd_ = from_child[0];
  return p;
}

Subprocess::~Subprocess() {
  if (valid() && !reaped_) {
    kill_hard();
    wait();
  }
  close_quiet(stdin_fd_);
  close_quiet(stdout_fd_);
}

Subprocess::Subprocess(Subprocess&& other) noexcept {
  *this = std::move(other);
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    if (valid() && !reaped_) {
      kill_hard();
      wait();
    }
    close_quiet(stdin_fd_);
    close_quiet(stdout_fd_);
    pid_ = other.pid_;
    stdin_fd_ = other.stdin_fd_;
    stdout_fd_ = other.stdout_fd_;
    exit_code_ = other.exit_code_;
    reaped_ = other.reaped_;
    other.reset();
  }
  return *this;
}

void Subprocess::reset() noexcept {
  pid_ = -1;
  stdin_fd_ = -1;
  stdout_fd_ = -1;
  exit_code_ = -1;
  reaped_ = false;
}

void Subprocess::close_stdin() {
  close_quiet(stdin_fd_);
}

void Subprocess::terminate() {
  if (valid() && !reaped_) {
    ::kill(pid_, SIGTERM);
  }
}

void Subprocess::kill_hard() {
  if (valid() && !reaped_) {
    ::kill(pid_, SIGKILL);
  }
}

std::optional<int> Subprocess::try_wait() {
  if (!valid()) {
    return -1;
  }
  if (reaped_) {
    return exit_code_;
  }
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid_, &status, WNOHANG);
  } while (r < 0 && errno == EINTR);
  if (r == 0) {
    return std::nullopt;  // still running
  }
  reaped_ = true;
  if (r < 0) {
    exit_code_ = -1;
  } else if (WIFEXITED(status)) {
    exit_code_ = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    exit_code_ = 128 + WTERMSIG(status);
  } else {
    exit_code_ = -1;
  }
  return exit_code_;
}

int Subprocess::terminate_then_kill(double grace_seconds) {
  if (!valid()) {
    return -1;
  }
  if (reaped_) {
    return exit_code_;
  }
  terminate();
  const IoDeadline grace = deadline_after(grace_seconds);
  for (;;) {
    if (const auto code = try_wait()) {
      return *code;
    }
    if (std::chrono::steady_clock::now() >= grace) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  kill_hard();
  return wait();
}

int Subprocess::wait() {
  if (!valid()) {
    return -1;
  }
  if (reaped_) {
    return exit_code_;
  }
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid_, &status, 0);
  } while (r < 0 && errno == EINTR);
  reaped_ = true;
  if (r < 0) {
    exit_code_ = -1;
  } else if (WIFEXITED(status)) {
    exit_code_ = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    exit_code_ = 128 + WTERMSIG(status);
  } else {
    exit_code_ = -1;
  }
  return exit_code_;
}

}  // namespace manet::util
