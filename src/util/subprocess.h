// Minimal POSIX subprocess with piped stdin/stdout, used by the sweep
// farm's multi-process dispatch (scenario/worker.h). stderr is inherited so
// worker diagnostics land on the parent's stderr.
//
// Deliberately tiny: spawn, talk over two pipes, wait or kill. No pty, no
// shell, no async I/O — the worker protocol is strictly request/response,
// so blocking reads from a dedicated client thread are exactly right.
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

namespace manet::util {

class Subprocess {
 public:
  /// An empty handle; valid() is false until assigned from spawn().
  Subprocess() = default;

  /// Forks and execs `argv` (argv[0] resolved via PATH) with a pipe on each
  /// of stdin and stdout. Throws CheckError when the pipes or the fork fail;
  /// an exec failure surfaces as the child exiting 127 (visible as EOF on
  /// stdout_fd and a 127 from wait()).
  static Subprocess spawn(const std::vector<std::string>& argv);

  /// Kills the child (SIGKILL) and reaps it if still running.
  ~Subprocess();

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  bool valid() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }

  /// Write end of the child's stdin; -1 after close_stdin().
  int stdin_fd() const { return stdin_fd_; }
  /// Read end of the child's stdout.
  int stdout_fd() const { return stdout_fd_; }

  /// Closes the child's stdin (EOF on its next read) — the clean-shutdown
  /// signal of the worker protocol.
  void close_stdin();

  /// SIGKILL; safe to call on an already-dead or invalid handle.
  void kill_hard();

  /// Reaps the child (blocking). Returns the exit code, or 128 + signal
  /// when it died on one; -1 for an invalid handle. Idempotent.
  int wait();

 private:
  void reset() noexcept;

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  int exit_code_ = -1;
  bool reaped_ = false;
};

}  // namespace manet::util
