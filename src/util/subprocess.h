// Minimal POSIX subprocess with piped stdin/stdout, used by the sweep
// farm's multi-process dispatch (scenario/worker.h). stderr is inherited so
// worker diagnostics land on the parent's stderr.
//
// Deliberately tiny: spawn, talk over two pipes, wait or kill. No pty, no
// shell, no async I/O — the worker protocol is strictly request/response,
// so blocking reads from a dedicated client thread are exactly right.
//
// The fd I/O helpers below are the farm's robustness substrate: every loop
// retries EINTR (a signal mid-read must never surface as a transport
// failure) and every read can carry a deadline, so a wedged peer — hung
// child, stalled pipe, half-written frame — becomes a kTimeout the caller
// can act on instead of a read() that blocks forever.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace manet::util {

/// Absolute deadline for fd I/O (monotonic clock — farm plumbing, not
/// simulation time). Passed by pointer everywhere; nullptr = wait forever.
using IoDeadline = std::chrono::steady_clock::time_point;

/// Builds a deadline `seconds` from now (seconds <= 0 means "already due").
IoDeadline deadline_after(double seconds);

/// Outcome of a deadline-aware exact read.
enum class IoStatus {
  kOk,       // all n bytes arrived
  kEof,      // peer closed before (or at) the first byte — clean EOF
  kTorn,     // peer closed mid-transfer (some bytes arrived, then EOF)
  kTimeout,  // the deadline expired while waiting for data
  kError,    // read() failed with a non-EINTR errno
};

/// Blocks until `fd` is readable (POLLIN/POLLHUP) or the deadline expires.
/// EINTR-safe: signals shorten neither the wait nor the deadline. Returns
/// false only on timeout.
bool wait_readable(int fd, const IoDeadline* deadline);

/// Reads exactly `n` bytes, looping over short reads and EINTR. With a
/// deadline, every wait for more data is bounded by it.
IoStatus read_exact(int fd, char* buf, std::size_t n,
                    const IoDeadline* deadline = nullptr);

/// Writes all `n` bytes, looping over short writes and EINTR. Returns false
/// when the peer is gone (EPIPE / closed fd) or write() fails otherwise.
bool write_all(int fd, const char* buf, std::size_t n);

class Subprocess {
 public:
  /// An empty handle; valid() is false until assigned from spawn().
  Subprocess() = default;

  /// Forks and execs `argv` (argv[0] resolved via PATH) with a pipe on each
  /// of stdin and stdout. Throws CheckError when the pipes or the fork fail;
  /// an exec failure surfaces as the child exiting 127 (visible as EOF on
  /// stdout_fd and a 127 from wait()).
  static Subprocess spawn(const std::vector<std::string>& argv);

  /// Kills the child (SIGKILL) and reaps it if still running.
  ~Subprocess();

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  bool valid() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }

  /// Write end of the child's stdin; -1 after close_stdin().
  int stdin_fd() const { return stdin_fd_; }
  /// Read end of the child's stdout.
  int stdout_fd() const { return stdout_fd_; }

  /// Closes the child's stdin (EOF on its next read) — the clean-shutdown
  /// signal of the worker protocol.
  void close_stdin();

  /// SIGTERM; safe on an already-dead or invalid handle.
  void terminate();

  /// SIGKILL; safe to call on an already-dead or invalid handle.
  void kill_hard();

  /// Non-blocking reap (WNOHANG). Returns the exit code once the child has
  /// exited, nullopt while it is still running; -1 for an invalid handle.
  std::optional<int> try_wait();

  /// Graceful stop with escalation: SIGTERM, poll up to `grace_seconds` for
  /// the child to exit, then SIGKILL. Always reaps; returns the exit code.
  int terminate_then_kill(double grace_seconds);

  /// Reaps the child (blocking). Returns the exit code, or 128 + signal
  /// when it died on one; -1 for an invalid handle. Idempotent.
  int wait();

 private:
  void reset() noexcept;

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  int exit_code_ = -1;
  bool reaped_ = false;
};

}  // namespace manet::util
