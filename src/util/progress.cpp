#include "util/progress.h"

namespace manet::util {

void ProgressMeter::start(std::size_t total) {
  completed_.store(0, std::memory_order_relaxed);
  total_.store(total, std::memory_order_relaxed);
  sim_seconds_.store(0.0, std::memory_order_relaxed);
  run_wall_s_.store(0.0, std::memory_order_relaxed);
  start_ = std::chrono::steady_clock::now();
}

void ProgressMeter::atomic_add(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void ProgressMeter::record_run(double sim_seconds, double wall_seconds) {
  atomic_add(sim_seconds_, sim_seconds);
  atomic_add(run_wall_s_, wall_seconds);
  completed_.fetch_add(1, std::memory_order_release);
}

ProgressSnapshot ProgressMeter::snapshot() const {
  ProgressSnapshot s;
  s.completed = completed_.load(std::memory_order_acquire);
  s.total = total_.load(std::memory_order_relaxed);
  s.sim_seconds = sim_seconds_.load(std::memory_order_relaxed);
  s.run_wall_s = run_wall_s_.load(std::memory_order_relaxed);
  s.wall_elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  return s;
}

}  // namespace manet::util
