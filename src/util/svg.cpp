#include "util/svg.h"

#include <fstream>
#include <sstream>

#include "util/assert.h"

namespace manet::util {

namespace {

std::string escape_text(std::string_view text) {
  std::string out;
  for (const char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

SvgDocument::SvgDocument(double width, double height)
    : width_(width), height_(height) {
  MANET_CHECK(width > 0.0 && height > 0.0,
              "canvas " << width << "x" << height);
}

void SvgDocument::add_circle(double cx, double cy, double r,
                             std::string_view fill, std::string_view stroke,
                             double stroke_width) {
  std::ostringstream oss;
  oss << "<circle cx=\"" << cx << "\" cy=\"" << cy << "\" r=\"" << r
      << "\" fill=\"" << fill << "\" stroke=\"" << stroke
      << "\" stroke-width=\"" << stroke_width << "\"/>";
  body_.push_back(oss.str());
}

void SvgDocument::add_circle_outline(double cx, double cy, double r,
                                     std::string_view stroke, double width,
                                     bool dashed) {
  std::ostringstream oss;
  oss << "<circle cx=\"" << cx << "\" cy=\"" << cy << "\" r=\"" << r
      << "\" fill=\"none\" stroke=\"" << stroke << "\" stroke-width=\""
      << width << "\"";
  if (dashed) {
    oss << " stroke-dasharray=\"6 4\"";
  }
  oss << "/>";
  body_.push_back(oss.str());
}

void SvgDocument::add_rect(double x, double y, double w, double h,
                           std::string_view fill, std::string_view stroke,
                           double stroke_width) {
  std::ostringstream oss;
  oss << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w
      << "\" height=\"" << h << "\" fill=\"" << fill << "\" stroke=\""
      << stroke << "\" stroke-width=\"" << stroke_width << "\"/>";
  body_.push_back(oss.str());
}

void SvgDocument::add_line(double x1, double y1, double x2, double y2,
                           std::string_view stroke, double width,
                           double opacity) {
  std::ostringstream oss;
  oss << "<line x1=\"" << x1 << "\" y1=\"" << y1 << "\" x2=\"" << x2
      << "\" y2=\"" << y2 << "\" stroke=\"" << stroke
      << "\" stroke-width=\"" << width << "\" stroke-opacity=\"" << opacity
      << "\"/>";
  body_.push_back(oss.str());
}

void SvgDocument::add_text(double x, double y, std::string_view text,
                           double size, std::string_view fill) {
  std::ostringstream oss;
  oss << "<text x=\"" << x << "\" y=\"" << y << "\" font-size=\"" << size
      << "\" font-family=\"sans-serif\" fill=\"" << fill << "\">"
      << escape_text(text) << "</text>";
  body_.push_back(oss.str());
}

std::string SvgDocument::to_string() const {
  std::ostringstream oss;
  oss << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_
      << "\" height=\"" << height_ << "\" viewBox=\"0 0 " << width_ << " "
      << height_ << "\">\n";
  for (const auto& el : body_) {
    oss << "  " << el << '\n';
  }
  oss << "</svg>\n";
  return oss.str();
}

void SvgDocument::save(const std::string& path) const {
  std::ofstream out(path);
  MANET_CHECK(out.is_open(), "cannot open SVG output file: " << path);
  out << to_string();
}

std::string SvgDocument::palette(std::size_t i) {
  static const char* kColors[] = {
      "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948",
      "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac", "#1b9e77", "#7570b3"};
  return kColors[i % (sizeof(kColors) / sizeof(kColors[0]))];
}

}  // namespace manet::util
