// Streaming FNV-1a 64-bit hashing, used for content addressing (the result
// cache keys of scenario/cache.h) and integrity digests of serialized cells.
// Same constants as util::hash_name() (rng.h); this class adds incremental
// updates and a stable lower-case hex rendering.
//
// FNV-1a is not cryptographic: the cache trusts its own directory. The
// digest exists to catch truncation, partial writes and hand edits, not an
// adversary.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace manet::util {

class Fnv64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 1469598103934665603ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  void update(std::string_view bytes) {
    for (const char c : bytes) {
      state_ ^= static_cast<unsigned char>(c);
      state_ *= kPrime;
    }
  }

  std::uint64_t digest() const { return state_; }

  /// One-shot convenience.
  static std::uint64_t hash(std::string_view bytes) {
    Fnv64 h;
    h.update(bytes);
    return h.digest();
  }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

/// 16 lower-case hex characters, zero-padded.
std::string hex64(std::uint64_t v);

}  // namespace manet::util
