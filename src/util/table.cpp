#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.h"

namespace manet::util {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) {
    return false;
  }
  for (const char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == 'e' || c == 'E' || c == '%')) {
      return false;
    }
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MANET_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  MANET_CHECK(row.size() == header_.size(),
              "row width " << row.size() << " != header width "
                           << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int digits) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(digits) << v;
  return oss.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  std::vector<bool> numeric(header_.size(), true);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
      if (!looks_numeric(row[c])) {
        numeric[c] = false;
      }
    }
  }

  std::ostringstream oss;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        oss << "  ";
      }
      if (numeric[c] && !rows_.empty()) {
        oss << std::setw(static_cast<int>(widths[c])) << std::right << row[c];
      } else {
        oss << std::setw(static_cast<int>(widths[c])) << std::left << row[c];
      }
    }
    oss << '\n';
  };

  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  oss << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return oss.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace manet::util
