// Small string helpers shared by config parsing and reporting code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace manet::util {

/// Splits on a delimiter; empty fields are preserved ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char delim);

/// Strips leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Lower-cases ASCII.
std::string to_lower(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Parses a comma-separated list of doubles ("10,25.5,50"). Throws CheckError
/// on malformed input.
std::vector<double> parse_double_list(std::string_view s);

}  // namespace manet::util
