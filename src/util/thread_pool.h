// Work-stealing thread pool for embarrassingly parallel workloads (the MRIP
// experiment runner fans independent simulation runs out here). External
// submissions are distributed round-robin across per-worker deques; a worker
// pops its own deque LIFO (locality for nested submissions) and steals FIFO
// from its siblings when empty.
//
// Determinism note: the pool itself promises nothing about execution order.
// Callers that need deterministic output must reduce results by task index
// (see scenario::Runner), never by completion order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace manet::util {

class ThreadPool {
 public:
  /// Starts `threads` workers; 0 means hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains every task already submitted, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not let exceptions escape — use async() when
  /// a task can throw. Throws CheckError after shutdown began.
  void submit(std::function<void()> task);

  /// Enqueues a callable and returns a future carrying its result; an
  /// exception thrown by the callable is rethrown by future::get().
  template <typename F>
  auto async(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    submit([task] { (*task)(); });
    return future;
  }

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t index);
  bool try_pop(std::size_t index, std::function<void()>& task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;  // guards queued_, pending_, stop_ transitions + both CVs
  std::condition_variable work_cv_;   // workers sleep here
  std::condition_variable idle_cv_;   // wait_idle() sleeps here
  std::size_t queued_ = 0;            // tasks sitting in deques
  std::size_t pending_ = 0;           // tasks submitted but not yet finished
  bool stop_ = false;
  std::size_t next_ = 0;  // round-robin cursor for external submissions
};

}  // namespace manet::util
