// Minimal command-line flag parser for bench/example binaries.
//
//   util::Flags flags(argc, argv);
//   const int seeds = flags.get_int("seeds", 5);
//   const std::string csv = flags.get_string("csv", "");
//   flags.finish();   // rejects unknown flags
//
// Accepted syntaxes: --name value, --name=value, and bare boolean --name.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace manet::util {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string get_string(const std::string& name, const std::string& def);
  int get_int(const std::string& name, int def);
  double get_double(const std::string& name, double def);
  bool get_bool(const std::string& name, bool def);

  /// True if the flag was present on the command line.
  bool has(const std::string& name) const { return values_.count(name) > 0; }

  /// Throws CheckError if any provided flag was never queried — catches typos.
  void finish() const;

 private:
  std::optional<std::string> raw(const std::string& name);

  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace manet::util
