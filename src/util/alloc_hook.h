// Test-only heap-allocation counters.
//
// The counters are fed by replacement global operator new/delete defined in
// alloc_hook.cpp. That translation unit is intentionally NOT part of
// manet_util: only binaries that explicitly compile it in (perf_suite, the
// zero-allocation tests) observe counted allocation; everything else keeps
// the stock allocator. alloc_hook_active() reports which situation a binary
// is in, so shared code can skip alloc assertions when the hook is absent.
#pragma once

#include <cstdint>

namespace manet::util {

/// Number of heap allocations (any global operator new flavor) so far.
/// Always 0 when the hook is not linked in.
std::uint64_t heap_alloc_count();

/// Number of heap deallocations so far. Always 0 without the hook.
std::uint64_t heap_free_count();

/// True when the counting operator new/delete replacement is linked into
/// this binary.
bool alloc_hook_active();

/// Convenience RAII window: how many allocations happened in a scope.
class AllocWindow {
 public:
  AllocWindow() : start_(heap_alloc_count()) {}
  std::uint64_t allocs() const { return heap_alloc_count() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace manet::util
