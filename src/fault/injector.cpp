#include "fault/injector.h"

#include <algorithm>

#include "util/assert.h"

namespace manet::fault {

Injector::Injector(net::Network& network, Schedule schedule)
    : network_(network), schedule_(std::move(schedule)) {
  schedule_.validate(network_.size());
  timeline_.reserve(schedule_.size());
}

void Injector::set_on_fault(std::function<void(const FaultEvent&)> on_fault) {
  on_fault_ = std::move(on_fault);
}

void Injector::arm() {
  MANET_CHECK(!armed_, "injector armed twice");
  armed_ = true;
  network_.add_loss_layer(this);
  sim::Simulator& sim = network_.simulator();
  for (std::size_t i = 0; i < schedule_.events.size(); ++i) {
    const FaultEvent& e = schedule_.events[i];
    sim.schedule_at(e.at, [this, i] { activate(i); });
    if (is_window(e.kind)) {
      sim.schedule_at(e.until, [this, i] { deactivate(i); });
    }
  }
}

void Injector::activate(std::size_t index) {
  const FaultEvent& e = schedule_.events[index];
  bool applied = true;
  switch (e.kind) {
    case FaultKind::kCrash:
    case FaultKind::kChurnLeave: {
      net::Node& node = network_.node(e.node);
      applied = node.alive();
      if (applied) {
        node.fail();
      }
      break;
    }
    case FaultKind::kRecover:
    case FaultKind::kChurnJoin: {
      net::Node& node = network_.node(e.node);
      applied = !node.alive();
      if (applied) {
        node.recover();
      }
      break;
    }
    case FaultKind::kLossBurst:
    case FaultKind::kJam:
    case FaultKind::kPartition:
      active_.push_back(index);
      break;
  }
  timeline_.push_back({e, applied});
  if (on_fault_ != nullptr) {
    on_fault_(e);
  }
}

void Injector::deactivate(std::size_t index) {
  active_.erase(std::remove(active_.begin(), active_.end(), index),
                active_.end());
}

double Injector::drop_probability(const net::LinkContext& link) const {
  if (active_.empty()) {
    return 0.0;
  }
  double survive = 1.0;
  for (const std::size_t index : active_) {
    const FaultEvent& e = schedule_.events[index];
    double p = 0.0;
    switch (e.kind) {
      case FaultKind::kLossBurst: {
        const bool touches_node = e.node == net::kInvalidNode ||
                                  e.node == link.src || e.node == link.dst;
        const bool touches_peer = e.peer == net::kInvalidNode ||
                                  e.peer == link.src || e.peer == link.dst;
        if (touches_node && touches_peer) {
          p = e.probability;
        }
        break;
      }
      case FaultKind::kJam:
        // Receiver-side suppression: a jammed receiver hears nothing.
        if (geom::distance(link.dst_pos, e.center) <= e.radius) {
          p = e.probability;
        }
        break;
      case FaultKind::kPartition: {
        const double a = e.vertical ? link.src_pos.x : link.src_pos.y;
        const double b = e.vertical ? link.dst_pos.x : link.dst_pos.y;
        if ((a < e.boundary) != (b < e.boundary)) {
          p = 1.0;
        }
        break;
      }
      default:
        break;
    }
    survive *= 1.0 - p;
    if (survive <= 0.0) {
      return 1.0;
    }
  }
  return 1.0 - survive;
}

}  // namespace manet::fault
