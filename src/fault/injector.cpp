#include "fault/injector.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/assert.h"

namespace manet::fault {

Injector::Injector(net::Network& network, Schedule schedule)
    : network_(network), schedule_(std::move(schedule)) {
  schedule_.validate(network_.size());
  timeline_.reserve(schedule_.size());
  // Pre-size the active-window set to its worst case (every window fault
  // open at once) so activate() never allocates mid-run — part of the
  // steady-state zero-allocation contract (tests/test_zero_alloc.cpp).
  std::size_t windows = 0;
  for (const FaultEvent& e : schedule_.events) {
    if (is_window(e.kind)) {
      ++windows;
    }
  }
  active_.reserve(windows);
}

void Injector::set_on_fault(std::function<void(const FaultEvent&)> on_fault) {
  on_fault_ = std::move(on_fault);
}

void Injector::arm() {
  MANET_CHECK(!armed_, "injector armed twice");
  armed_ = true;
  network_.add_loss_layer(this);
  sim::Simulator& sim = network_.simulator();
  for (std::size_t i = 0; i < schedule_.events.size(); ++i) {
    const FaultEvent& e = schedule_.events[i];
    sim.schedule_at(e.at, [this, i] {
      MANET_ASSERT_COMMIT_ROLE();
      activate(i);
    });
    if (is_window(e.kind)) {
      sim.schedule_at(e.until, [this, i] {
        MANET_ASSERT_COMMIT_ROLE();
        deactivate(i);
      });
    }
  }
}

void Injector::activate(std::size_t index) {
  const FaultEvent& e = schedule_.events[index];
  bool applied = true;
  switch (e.kind) {
    case FaultKind::kCrash:
    case FaultKind::kChurnLeave:
    case FaultKind::kBatteryDepleted: {
      net::Node& node = network_.node(e.node);
      applied = node.alive();
      if (applied) {
        node.fail();
      }
      break;
    }
    case FaultKind::kRecover:
    case FaultKind::kChurnJoin: {
      net::Node& node = network_.node(e.node);
      applied = !node.alive();
      if (applied) {
        node.recover();
      }
      break;
    }
    case FaultKind::kLossBurst:
    case FaultKind::kJam:
    case FaultKind::kPartition:
      active_.push_back(index);
      break;
  }
  timeline_.push_back({e, applied});
  if (hooks_ != nullptr) {
    (applied ? hooks_->activated : hooks_->moot)->inc();
    if (hooks_->trace != nullptr && applied) {
      if (is_window(e.kind)) {
        // Both endpoints are known up front, so the whole window goes out
        // as one span on the fault track.
        hooks_->trace->complete(obs::TraceSink::kFaultPid,
                                static_cast<int>(index), kind_name(e.kind),
                                e.at, e.until, "node",
                                static_cast<std::int64_t>(e.node));
      } else {
        hooks_->trace->instant(obs::TraceSink::kNodePid,
                               static_cast<int>(e.node), kind_name(e.kind),
                               e.at);
      }
    }
  }
  // Moot activations (e.g. crashing an already-dead node) are recorded on
  // the timeline but not reported: observers such as the convergence
  // monitor would otherwise book a disruption for a fault that changed
  // nothing and could never produce a matching recovery.
  if (applied && on_fault_ != nullptr) {
    on_fault_(e);
  }
}

void Injector::reserve_external(std::size_t n) {
  timeline_.reserve(schedule_.size() + n);
}

void Injector::inject_now(const FaultEvent& e) {
  MANET_CHECK(!is_window(e.kind), "inject_now() takes point faults only");
  MANET_CHECK(e.node < network_.size(),
              "" << kind_name(e.kind) << " targets node " << e.node << " of "
                 << network_.size());
  net::Node& node = network_.node(e.node);
  const bool applied = node.alive();
  if (applied) {
    node.fail();
  }
  timeline_.push_back({e, applied});
  if (hooks_ != nullptr) {
    (applied ? hooks_->activated : hooks_->moot)->inc();
    if (hooks_->trace != nullptr && applied) {
      hooks_->trace->instant(obs::TraceSink::kNodePid,
                             static_cast<int>(e.node), kind_name(e.kind),
                             e.at);
    }
  }
  if (applied && on_fault_ != nullptr) {
    on_fault_(e);
  }
}

void Injector::deactivate(std::size_t index) {
  active_.erase(std::remove(active_.begin(), active_.end(), index),
                active_.end());
  if (hooks_ != nullptr) {
    hooks_->window_expired->inc();
  }
}

double Injector::drop_probability(const net::LinkContext& link) const {
  if (active_.empty()) {
    return 0.0;
  }
  double survive = 1.0;
  for (const std::size_t index : active_) {
    const FaultEvent& e = schedule_.events[index];
    double p = 0.0;
    switch (e.kind) {
      case FaultKind::kLossBurst: {
        const bool touches_node = e.node == net::kInvalidNode ||
                                  e.node == link.src || e.node == link.dst;
        const bool touches_peer = e.peer == net::kInvalidNode ||
                                  e.peer == link.src || e.peer == link.dst;
        if (touches_node && touches_peer) {
          p = e.probability;
        }
        break;
      }
      case FaultKind::kJam:
        // Receiver-side suppression: a jammed receiver hears nothing.
        if (geom::distance(link.dst_pos, e.center) <= e.radius) {
          p = e.probability;
        }
        break;
      case FaultKind::kPartition: {
        const double a = e.vertical ? link.src_pos.x : link.src_pos.y;
        const double b = e.vertical ? link.dst_pos.x : link.dst_pos.y;
        if ((a < e.boundary) != (b < e.boundary)) {
          p = 1.0;
        }
        break;
      }
      default:
        break;
    }
    survive *= 1.0 - p;
    if (survive <= 0.0) {
      return 1.0;
    }
  }
  return 1.0 - survive;
}

}  // namespace manet::fault
