// Declarative, seed-deterministic fault model.
//
// A fault::Schedule is a flat, time-sorted list of FaultEvents — node
// crashes/recoveries, churn (a node leaving and later rejoining), per-link
// or per-node loss-burst windows, circular beacon-suppression ("jamming")
// zones, and geometric bisection partitions. Schedules are either written by
// hand (tests) or generated from a ScheduleSpec by make_schedule(), which
// draws every arrival time and target from one util::Rng substream — the
// same (spec, n_nodes, field, seed) always yields the same schedule, so a
// replayed run produces an identical fault timeline.
//
// Execution lives in fault::Injector (injector.h); this header is pure data.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "geom/rect.h"
#include "geom/vec2.h"
#include "net/types.h"
#include "sim/event_queue.h"
#include "util/rng.h"
#include "util/thread_role.h"

namespace manet::fault {

enum class FaultKind : std::uint8_t {
  kCrash,       // node fails at `at` (protocol state lost)
  kRecover,     // node restarts at `at` (fresh tables)
  kChurnLeave,  // same mechanics as kCrash; tagged as planned churn
  kChurnJoin,   // same mechanics as kRecover
  kLossBurst,   // window [at, until): matching links drop with `probability`
  kJam,         // window: receivers inside the zone drop with `probability`
  kPartition,   // window: packets crossing the bisection line are dropped
  kBatteryDepleted,  // node's battery reached zero (energy model; injected
                     // at drain time via Injector::inject_now, never
                     // scheduled — same mechanics as kCrash, no recovery)
};

/// True for window faults (have a duration); false for point faults.
bool is_window(FaultKind kind);

/// Stable lower-case name ("crash", "loss_burst", ...), used in logs.
const char* kind_name(FaultKind kind);

/// One fault. Point faults use `at`; window faults are active on
/// [at, until). Fields beyond the common ones are kind-specific and ignored
/// elsewhere.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  sim::Time at = 0.0;
  sim::Time until = 0.0;  // window faults only; must be > at

  /// Crash/recover/churn: the target node. Loss burst: endpoint filter —
  /// the burst applies to links touching `node` (and, when `peer` is also
  /// set, only the {node, peer} link in either direction). kInvalidNode
  /// means "any".
  net::NodeId node = net::kInvalidNode;
  net::NodeId peer = net::kInvalidNode;

  /// Drop probability for loss bursts and jam zones (1.0 = total outage).
  double probability = 1.0;

  // Jam zone geometry.
  geom::Vec2 center{};
  double radius = 0.0;

  // Partition geometry: a vertical (x = boundary) or horizontal
  // (y = boundary) bisection line.
  bool vertical = true;
  double boundary = 0.0;

  bool operator==(const FaultEvent&) const = default;
};

/// Compact one-line JSON rendering ({"t":..,"kind":"crash","node":3}),
/// used by the runner's JSONL run log.
std::string to_json(const FaultEvent& event);

struct Schedule {
  std::vector<FaultEvent> events;  // sorted by (at, kind, node)

  bool empty() const { return events.empty(); }
  std::size_t size() const { return events.size(); }

  /// Appends and re-sorts (stable deterministic order).
  void add(FaultEvent event);

  /// Throws CheckError unless every event is well-formed for a network of
  /// `n_nodes` nodes: node ids in range, windows non-empty, probabilities
  /// in [0, 1], non-negative times.
  void validate(std::size_t n_nodes) const;
};

/// Stochastic fault workload description; compiled to a concrete Schedule
/// by make_schedule(). All processes are Poisson with the given rates
/// (events per second, network-wide) over the window [begin, end); a rate
/// of zero disables that fault class.
struct ScheduleSpec {
  double begin = 0.0;  // no faults before this time
  double end = 0.0;    // no new faults at/after this time (end > begin)

  /// Node crashes: a uniformly chosen up node fails; it recovers after an
  /// Exp(mean_downtime) outage (nodes whose recovery would land at/after
  /// `end` stay down).
  double crash_rate = 0.0;
  double mean_downtime = 30.0;

  /// Planned churn: like crashes, but tagged kChurnLeave/kChurnJoin and
  /// with its own absence distribution.
  double churn_rate = 0.0;
  double mean_absence = 20.0;

  /// Loss bursts: a uniformly chosen node's links drop with
  /// `loss_burst_probability` for `loss_burst_duration` seconds (a radio
  /// brown-out). Bursts may overlap; the loss stack composes them.
  double loss_burst_rate = 0.0;
  double loss_burst_duration = 5.0;
  double loss_burst_probability = 0.8;

  /// Jamming: a disc of `jam_radius` meters at a uniform position in the
  /// field suppresses receptions for `jam_duration` seconds.
  double jam_rate = 0.0;
  double jam_duration = 10.0;
  double jam_radius = 150.0;
  double jam_probability = 1.0;

  /// Geometric bisections: `partitions` windows of `partition_duration`
  /// seconds, evenly spaced over [begin, end), alternating
  /// vertical/horizontal, each placed uniformly within the middle half of
  /// the field so both sides stay populated.
  int partitions = 0;
  double partition_duration = 30.0;

  /// Hand-written events merged into the generated schedule (this is how
  /// tests and custom scenarios express exact timelines; a spec whose rates
  /// are all zero with only `extra` set is a fully manual schedule).
  std::vector<FaultEvent> extra;

  bool any_random() const {
    return crash_rate > 0.0 || churn_rate > 0.0 || loss_burst_rate > 0.0 ||
           jam_rate > 0.0 || partitions > 0;
  }
  bool empty() const { return !any_random() && extra.empty(); }
};

/// Compiles a spec into a concrete, validated schedule. Deterministic in
/// (spec, n_nodes, field, rng seed). The generator tracks which nodes are
/// up so crash/churn victims are always currently-up nodes and recoveries
/// pair with their outages.
Schedule make_schedule(const ScheduleSpec& spec, std::size_t n_nodes,
                       const geom::Rect& field, util::Rng rng)
    MANET_COMMIT_ONLY;

}  // namespace manet::fault
