// Executes a fault::Schedule against a live simulation.
//
// The Injector registers one simulator event per fault activation (and one
// per window expiry): crashes and churn call Node::fail()/recover(), while
// window faults (loss bursts, jamming zones, partitions) toggle membership
// of an active set that the Injector — itself a net::LossLayer — consults on
// every delivery attempt. arm() registers the injector on the network's loss
// stack and schedules everything; after that the injector is passive.
//
// The applied timeline (what actually fired, in order, with whether it had
// effect) is recorded for observability; an observer callback lets a
// convergence monitor react to each fault as it lands. Both are fully
// deterministic in (schedule, network seed).
#pragma once

#include <functional>
#include <vector>

#include "fault/fault.h"
#include "net/network.h"
#include "obs/hooks.h"
#include "util/thread_role.h"

namespace manet::fault {

class Injector final : public net::LossLayer {
 public:
  /// One executed fault: `applied` is false when the action was moot (e.g.
  /// crashing an already-dead node).
  struct Applied {
    FaultEvent event;
    bool applied = true;
  };

  /// The schedule must validate against the network's node count. The
  /// network must outlive the injector.
  Injector(net::Network& network, Schedule schedule);

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Called as each fault that *had effect* activates (window expiries and
  /// moot activations — crashing an already-dead node — are not reported;
  /// moot ones still land on the timeline with applied=false). Set before
  /// arm().
  void set_on_fault(std::function<void(const FaultEvent&)> on_fault);

  /// Observability hooks; may be null. When set, all counter fields must
  /// be resolved; `hooks->trace` may still be null.
  void set_hooks(const obs::FaultHooks* hooks) { hooks_ = hooks; }

  /// Registers this injector on the network's loss stack and schedules
  /// every fault on the simulator. Call exactly once, before or right after
  /// network start (all events must lie in the future).
  void arm() MANET_COMMIT_ONLY;

  /// Extends the timeline's capacity by `n` beyond the schedule, for
  /// externally generated faults delivered through inject_now() (the energy
  /// model's battery deaths: at most one per node). Keeps mid-run injection
  /// off the allocator; call before the run starts.
  void reserve_external(std::size_t n) MANET_COMMIT_ONLY;

  /// Applies an externally generated point fault immediately: fails the
  /// target (kill mechanics — the node loses protocol state and its beacon
  /// stops), records the event on the timeline, and reports it to hooks and
  /// the on_fault observer exactly like a scheduled activation. The energy
  /// model feeds battery depletions through this path at drain time, so the
  /// fault lands at the exact deterministic instant the battery empties.
  void inject_now(const FaultEvent& e) MANET_COMMIT_ONLY;

  const Schedule& schedule() const { return schedule_; }
  const std::vector<Applied>& timeline() const { return timeline_; }
  std::size_t active_windows() const { return active_.size(); }

  // net::LossLayer: combined drop probability of the active windows.
  double drop_probability(const net::LinkContext& link) const override;

 private:
  void activate(std::size_t index) MANET_COMMIT_ONLY;
  void deactivate(std::size_t index) MANET_COMMIT_ONLY;

  net::Network& network_;
  Schedule schedule_;
  std::function<void(const FaultEvent&)> on_fault_;
  const obs::FaultHooks* hooks_ = nullptr;
  bool armed_ = false;
  std::vector<std::size_t> active_;  // indices into schedule_.events
  std::vector<Applied> timeline_;
};

}  // namespace manet::fault
