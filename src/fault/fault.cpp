#include "fault/fault.h"

#include <algorithm>
#include <sstream>

#include "util/assert.h"

namespace manet::fault {

bool is_window(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLossBurst:
    case FaultKind::kJam:
    case FaultKind::kPartition:
      return true;
    case FaultKind::kCrash:
    case FaultKind::kRecover:
    case FaultKind::kChurnLeave:
    case FaultKind::kChurnJoin:
    case FaultKind::kBatteryDepleted:
      return false;
  }
  return false;
}

const char* kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kChurnLeave:
      return "churn_leave";
    case FaultKind::kChurnJoin:
      return "churn_join";
    case FaultKind::kLossBurst:
      return "loss_burst";
    case FaultKind::kJam:
      return "jam";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kBatteryDepleted:
      return "battery_depleted";
  }
  return "unknown";
}

std::string to_json(const FaultEvent& event) {
  std::ostringstream oss;
  oss << "{\"t\":" << event.at << ",\"kind\":\"" << kind_name(event.kind)
      << "\"";
  if (is_window(event.kind)) {
    oss << ",\"until\":" << event.until;
  }
  if (event.node != net::kInvalidNode) {
    oss << ",\"node\":" << event.node;
  }
  if (event.peer != net::kInvalidNode) {
    oss << ",\"peer\":" << event.peer;
  }
  switch (event.kind) {
    case FaultKind::kLossBurst:
      oss << ",\"p\":" << event.probability;
      break;
    case FaultKind::kJam:
      oss << ",\"p\":" << event.probability << ",\"x\":" << event.center.x
          << ",\"y\":" << event.center.y << ",\"r\":" << event.radius;
      break;
    case FaultKind::kPartition:
      oss << ",\"axis\":\"" << (event.vertical ? "x" : "y")
          << "\",\"boundary\":" << event.boundary;
      break;
    default:
      break;
  }
  oss << "}";
  return oss.str();
}

namespace {

// Canonical deterministic order: activation time, then kind, then target.
bool event_less(const FaultEvent& a, const FaultEvent& b) {
  if (a.at != b.at) {
    return a.at < b.at;
  }
  if (a.kind != b.kind) {
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  }
  return a.node < b.node;
}

}  // namespace

void Schedule::add(FaultEvent event) {
  events.push_back(event);
  std::stable_sort(events.begin(), events.end(), event_less);
}

void Schedule::validate(std::size_t n_nodes) const {
  for (const FaultEvent& e : events) {
    MANET_CHECK(e.at >= 0.0, "" << kind_name(e.kind) << " at negative time " << e.at);
    if (is_window(e.kind)) {
      MANET_CHECK(e.until > e.at, "" << kind_name(e.kind) << " window [" << e.at
                                                    << ", " << e.until
                                                    << ") is empty");
      MANET_CHECK(e.probability >= 0.0 && e.probability <= 1.0,
                  "" << kind_name(e.kind) << " probability "
                     << e.probability);
    }
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRecover:
      case FaultKind::kChurnLeave:
      case FaultKind::kChurnJoin:
      case FaultKind::kBatteryDepleted:
        MANET_CHECK(e.node < n_nodes,
                    "" << kind_name(e.kind) << " targets node " << e.node
                                      << " of " << n_nodes);
        break;
      case FaultKind::kLossBurst:
        MANET_CHECK(e.node == net::kInvalidNode || e.node < n_nodes,
                    "loss burst endpoint " << e.node << " of " << n_nodes);
        MANET_CHECK(e.peer == net::kInvalidNode || e.peer < n_nodes,
                    "loss burst endpoint " << e.peer << " of " << n_nodes);
        break;
      case FaultKind::kJam:
        MANET_CHECK(e.radius > 0.0, "jam radius " << e.radius);
        break;
      case FaultKind::kPartition:
        break;
    }
  }
  MANET_CHECK(std::is_sorted(events.begin(), events.end(),
                             [](const FaultEvent& a, const FaultEvent& b) {
                               return a.at < b.at;
                             }),
              "schedule not time-sorted");
}

namespace {

// Up/down bookkeeping for crash & churn generation: victims are drawn from
// the currently-up set; each outage pairs with at most one recovery.
class UpSet {
 public:
  explicit UpSet(std::size_t n) : up_(n) {
    for (std::size_t i = 0; i < n; ++i) {
      up_[i] = static_cast<net::NodeId>(i);
    }
  }

  bool any_up() const { return !up_.empty(); }

  net::NodeId take_down(util::Rng& rng) MANET_COMMIT_ONLY {
    const std::size_t idx = rng.index(up_.size());
    const net::NodeId victim = up_[idx];
    up_[idx] = up_.back();
    up_.pop_back();
    return victim;
  }

  void bring_up(net::NodeId node) { up_.push_back(node); }

 private:
  std::vector<net::NodeId> up_;
};

}  // namespace

Schedule make_schedule(const ScheduleSpec& spec, std::size_t n_nodes,
                       const geom::Rect& field, util::Rng rng)
    MANET_COMMIT_ONLY {
  MANET_CHECK(n_nodes > 0, "schedule for empty network");
  if (spec.any_random()) {
    MANET_CHECK(spec.end > spec.begin,
                "fault window [" << spec.begin << ", " << spec.end << ")");
  }

  Schedule schedule;
  schedule.events = spec.extra;

  // One substream per fault class: adding a class never perturbs the
  // arrivals of another.
  UpSet up(n_nodes);

  const auto generate_outages = [&](double rate, double mean_repair,
                                    FaultKind down, FaultKind restore,
                                    util::Rng stream) {
    if (rate <= 0.0) {
      return;
    }
    MANET_CHECK(mean_repair > 0.0, "mean repair time " << mean_repair);
    double t = spec.begin + stream.exponential_mean(1.0 / rate);
    // Recoveries become visible to the victim pool in time order, so the
    // generated sequence stays causal: collect (time, node) pairs first.
    std::vector<std::pair<sim::Time, net::NodeId>> pending_up;
    while (t < spec.end) {
      // Apply recoveries that happened before this arrival.
      std::sort(pending_up.begin(), pending_up.end());
      while (!pending_up.empty() && pending_up.front().first <= t) {
        up.bring_up(pending_up.front().second);
        pending_up.erase(pending_up.begin());
      }
      if (up.any_up()) {
        const net::NodeId victim = up.take_down(stream);
        schedule.events.push_back({.kind = down, .at = t, .node = victim});
        const double t_up = t + stream.exponential_mean(mean_repair);
        if (t_up < spec.end) {
          schedule.events.push_back(
              {.kind = restore, .at = t_up, .node = victim});
          pending_up.emplace_back(t_up, victim);
        }
        // else: the node stays down to the end of the run.
      }
      t += stream.exponential_mean(1.0 / rate);
    }
  };

  generate_outages(spec.crash_rate, spec.mean_downtime, FaultKind::kCrash,
                   FaultKind::kRecover, rng.substream("crash"));
  generate_outages(spec.churn_rate, spec.mean_absence, FaultKind::kChurnLeave,
                   FaultKind::kChurnJoin, rng.substream("churn"));

  if (spec.loss_burst_rate > 0.0) {
    MANET_CHECK(spec.loss_burst_duration > 0.0);
    MANET_CHECK(spec.loss_burst_probability >= 0.0 &&
                spec.loss_burst_probability <= 1.0);
    util::Rng stream = rng.substream("burst");
    double t = spec.begin + stream.exponential_mean(1.0 / spec.loss_burst_rate);
    while (t < spec.end) {
      FaultEvent e;
      e.kind = FaultKind::kLossBurst;
      e.at = t;
      e.until = t + spec.loss_burst_duration;
      e.node = static_cast<net::NodeId>(stream.index(n_nodes));
      e.probability = spec.loss_burst_probability;
      schedule.events.push_back(e);
      t += stream.exponential_mean(1.0 / spec.loss_burst_rate);
    }
  }

  if (spec.jam_rate > 0.0) {
    MANET_CHECK(spec.jam_duration > 0.0);
    MANET_CHECK(spec.jam_radius > 0.0);
    util::Rng stream = rng.substream("jam");
    double t = spec.begin + stream.exponential_mean(1.0 / spec.jam_rate);
    while (t < spec.end) {
      FaultEvent e;
      e.kind = FaultKind::kJam;
      e.at = t;
      e.until = t + spec.jam_duration;
      e.center = field.sample(stream);
      e.radius = spec.jam_radius;
      e.probability = spec.jam_probability;
      schedule.events.push_back(e);
      t += stream.exponential_mean(1.0 / spec.jam_rate);
    }
  }

  if (spec.partitions > 0) {
    MANET_CHECK(spec.partition_duration > 0.0);
    util::Rng stream = rng.substream("partition");
    const double spacing =
        (spec.end - spec.begin) / static_cast<double>(spec.partitions);
    for (int i = 0; i < spec.partitions; ++i) {
      FaultEvent e;
      e.kind = FaultKind::kPartition;
      e.at = spec.begin + spacing * static_cast<double>(i);
      e.until = std::min(e.at + spec.partition_duration, spec.end);
      e.vertical = (i % 2) == 0;
      const double extent = e.vertical ? field.width : field.height;
      e.boundary = stream.uniform(0.25 * extent, 0.75 * extent);
      schedule.events.push_back(e);
    }
  }

  std::stable_sort(schedule.events.begin(), schedule.events.end(), event_less);
  schedule.validate(n_nodes);
  return schedule;
}

}  // namespace manet::fault
