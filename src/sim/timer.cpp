#include "sim/timer.h"

namespace manet::sim {

void PeriodicTimer::start(Time first_at, Time period) {
  MANET_CHECK(period > 0.0, "period=" << period);
  stop();
  period_ = period;
  event_ = sim_.schedule_at(first_at, [this] {
    MANET_ASSERT_COMMIT_ROLE();
    fire();
  });
}

void PeriodicTimer::stop() {
  if (event_ != kNoEvent) {
    sim_.cancel(event_);
    event_ = kNoEvent;
  }
}

void PeriodicTimer::set_period(Time period) {
  MANET_CHECK(period > 0.0, "period=" << period);
  period_ = period;
}

void PeriodicTimer::fire() {
  // Reschedule before invoking the callback so the callback can stop() or
  // set_period() and observe a consistent timer state.
  event_ = sim_.schedule_in(period_, [this] {
    MANET_ASSERT_COMMIT_ROLE();
    fire();
  });
  on_fire_();
}

void OneShotTimer::arm(Time delay) {
  cancel();
  event_ = sim_.schedule_in(delay, [this] {
    MANET_ASSERT_COMMIT_ROLE();
    event_ = kNoEvent;
    on_fire_();
  });
}

void OneShotTimer::cancel() {
  if (event_ != kNoEvent) {
    sim_.cancel(event_);
    event_ = kNoEvent;
  }
}

}  // namespace manet::sim
