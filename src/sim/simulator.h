// The discrete-event simulator: replaces the ns-2 scheduler for this
// reproduction. Single-threaded; event handlers may schedule and cancel
// further events freely.
#pragma once

#include <cstdint>

#include "obs/hooks.h"
#include "sim/event_queue.h"
#include "util/assert.h"
#include "util/thread_role.h"

namespace manet::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time (seconds). 0 before the first event fires.
  Time now() const { return now_; }

  /// Pre-sizes the event queue for `capacity` concurrent events (see
  /// EventQueue::reserve).
  void reserve_events(std::size_t capacity) MANET_COMMIT_ONLY {
    queue_.reserve(capacity);
  }

  /// Schedules `fn` at absolute time `t` (>= now). Returns a handle usable
  /// with cancel().
  EventId schedule_at(Time t, EventFn fn) MANET_COMMIT_ONLY {
    MANET_CHECK(t >= now_, "scheduling into the past: " << t << " < " << now_);
    return queue_.push(t, std::move(fn));
  }

  /// Schedules `fn` after `delay` seconds (>= 0).
  EventId schedule_in(Time delay, EventFn fn) MANET_COMMIT_ONLY {
    MANET_CHECK(delay >= 0.0, "negative delay " << delay);
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event; returns false if it already fired/cancelled.
  bool cancel(EventId id) MANET_COMMIT_ONLY { return queue_.cancel(id); }
  bool pending(EventId id) const { return queue_.pending(id); }

  // The drive loop IS the commit thread: the thread that calls run() /
  // run_until() / step() is the one every MANET_COMMIT_ONLY effect of this
  // run must land on (see util/thread_role.h).

  /// Runs events in order until the queue drains or stop() is called.
  void run() MANET_COMMIT_ONLY;

  /// Runs events with time <= t_end, then advances the clock to exactly
  /// t_end (even if the queue still holds later events).
  void run_until(Time t_end) MANET_COMMIT_ONLY;

  /// Fires the single earliest event. Returns false if the queue is empty.
  bool step() MANET_COMMIT_ONLY;

  /// Makes run()/run_until() return after the current handler completes.
  void stop() { stopped_ = true; }

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t events_scheduled() const { return queue_.total_scheduled(); }

  /// Observability hooks (may be null; must outlive the simulator). The
  /// queue-depth histogram is sampled every SimHooks::kQueueDepthSamplePeriod
  /// executed events.
  void set_hooks(const obs::SimHooks* hooks) { hooks_ = hooks; }

 private:
  void sample_queue_depth();

  EventQueue queue_;
  Time now_ = 0.0;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
  const obs::SimHooks* hooks_ = nullptr;
};

}  // namespace manet::sim
