#include "sim/event_queue.h"

#include <algorithm>

#include "util/assert.h"

namespace manet::sim {

void EventQueue::reserve(std::size_t capacity) {
  slots_.reserve(capacity);
  free_slots_.reserve(capacity);
  heap_.reserve(2 * capacity);  // live records + lazy-deletion residue
}

EventId EventQueue::push(Time t, EventFn fn) {
  MANET_CHECK(fn != nullptr, "scheduling a null event handler");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  heap_.push_back(HeapRecord{t, next_seq_, slot, s.generation});
  sift_up(heap_.size() - 1);
  ++next_seq_;
  ++live_;
  return make_id(s.generation, slot);
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size() ||
      slots_[slot].generation != generation_of(id)) {
    return false;
  }
  // O(1): disarm the slot and recycle it. The heap record stays behind and
  // is skipped when it surfaces (its generation no longer matches).
  Slot& s = slots_[slot];
  s.fn.reset();
  ++s.generation;
  free_slots_.push_back(slot);
  ++cancelled_count_;
  --live_;
  return true;
}

void EventQueue::drop_dead_front() {
  while (!heap_.empty() && !record_live(heap_.front())) {
    remove_root();
  }
}

Time EventQueue::next_time() const {
  auto* self = const_cast<EventQueue*>(this);
  self->drop_dead_front();
  MANET_CHECK(!heap_.empty(), "next_time() on empty queue");
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_dead_front();
  MANET_CHECK(!heap_.empty(), "pop() on empty queue");
  const HeapRecord rec = heap_.front();
  Slot& s = slots_[rec.slot];
  Fired fired{rec.time, make_id(rec.generation, rec.slot), std::move(s.fn)};
  // Disarm and recycle exactly as cancel() does (the moved-from slot fn is
  // already empty).
  ++s.generation;
  free_slots_.push_back(rec.slot);
  --live_;
  remove_root();
  return fired;
}

void EventQueue::sift_up(std::size_t i) {
  const HeapRecord rec = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(rec, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = rec;
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapRecord rec = heap_[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) {
      break;
    }
    const std::size_t last = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!before(heap_[best], rec)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = rec;
}

void EventQueue::remove_root() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    sift_down(0);
  }
}

}  // namespace manet::sim
