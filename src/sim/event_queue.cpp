#include "sim/event_queue.h"

#include "util/assert.h"

namespace manet::sim {

EventId EventQueue::push(Time t, EventFn fn) {
  MANET_CHECK(fn != nullptr, "scheduling a null event handler");
  const EventId id = next_id_++;
  heap_.push(Entry{t, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Cancellation is lazy: the heap entry stays behind and is skipped when it
  // reaches the front. `pending_` is the source of truth for liveness.
  if (pending_.erase(id) == 0) {
    return false;
  }
  ++cancelled_count_;
  return true;
}

void EventQueue::drop_cancelled_front() {
  while (!heap_.empty() && pending_.count(heap_.top().id) == 0) {
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  auto* self = const_cast<EventQueue*>(this);
  self->drop_cancelled_front();
  MANET_CHECK(!heap_.empty(), "next_time() on empty queue");
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_front();
  MANET_CHECK(!heap_.empty(), "pop() on empty queue");
  const Entry& top = heap_.top();
  Fired fired{top.time, top.id, std::move(top.fn)};
  heap_.pop();
  pending_.erase(fired.id);
  return fired;
}

}  // namespace manet::sim
