// Pending-event set for the discrete-event simulator, ordered by
// (time, insertion sequence) — simultaneous events fire in FIFO order,
// which makes runs reproducible.
//
// Storage is a generation-tagged slab: each scheduled callback lives in a
// recycled Slot, and the handle returned to callers packs the slot index
// with the slot's generation counter (EventId = generation << 32 | slot).
// Cancellation is O(1) — bump the generation, drop the callback, return
// the slot to the free list — with no hash table; any heap record or stale
// handle that still carries the old generation is dead by construction
// (this is also what makes recycled handles ABA-safe). Ordering is a 4-ary
// implicit heap of 24-byte POD records {time, seq, slot, generation};
// dead records are skipped lazily when they reach the front.
//
// Together with the small-buffer callbacks (sim::InplaceEvent) this makes
// steady-state push/cancel/pop churn allocation-free once the slab, heap,
// and free-list vectors have reached their high-water capacity (asserted
// by tests/test_zero_alloc.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/inplace_event.h"
#include "util/thread_role.h"

namespace manet::sim {

/// Simulated time in seconds.
using Time = double;

/// Opaque handle to a scheduled event; valid until the event fires or is
/// cancelled. Id 0 is never issued and acts as "no event" (generations
/// start at 1, so every issued id has a nonzero high word).
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

using EventFn = InplaceEvent;

class EventQueue {
 public:
  /// Pre-sizes the slab, free list, and heap for `capacity` concurrently
  /// scheduled events (the heap gets headroom for lazily-deleted records),
  /// so a workload that stays within the bound never reallocates.
  void reserve(std::size_t capacity) MANET_COMMIT_ONLY;

  // Scheduling and cancellation assign / retire (time, seq) order — the
  // replay-visible backbone — so the whole mutating surface is commit-only.

  /// Schedules `fn` at absolute time `t`. Returns a cancellation handle.
  EventId push(Time t, EventFn fn) MANET_COMMIT_ONLY;

  /// Cancels a pending event. Returns false if the handle is unknown,
  /// already fired, or already cancelled — all safe to ignore.
  bool cancel(EventId id) MANET_COMMIT_ONLY;

  /// True if the event is scheduled and not yet fired or cancelled.
  bool pending(EventId id) const {
    const std::uint32_t slot = slot_of(id);
    return slot < slots_.size() &&
           slots_[slot].generation == generation_of(id);
  }

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Time of the earliest live event. Requires !empty().
  Time next_time() const;

  /// Removes and returns the earliest live event. Requires !empty().
  struct Fired {
    Time time;
    EventId id;
    EventFn fn;
  };
  Fired pop() MANET_COMMIT_ONLY;

  /// Lifetime counters, exposed for stats/tests.
  std::uint64_t total_scheduled() const { return next_seq_; }
  std::uint64_t total_cancelled() const { return cancelled_count_; }

 private:
  struct Slot {
    EventFn fn;
    // Arming epoch. Bumped whenever the slot is disarmed (fire or cancel),
    // so a handle or heap record minted under an older generation can
    // never match again. Starts at 1; wraps after 2^32 reuses of one slot,
    // which no simulation approaches.
    std::uint32_t generation = 1;
  };

  // POD ordering record; the callback stays in the slab so heap sifts move
  // 24 bytes, never a callable.
  struct HeapRecord {
    Time time;
    std::uint64_t seq;       // insertion order, FIFO tiebreak
    std::uint32_t slot;
    std::uint32_t generation;
  };

  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static EventId make_id(std::uint32_t generation, std::uint32_t slot) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  static bool before(const HeapRecord& a, const HeapRecord& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.seq < b.seq;
  }

  // A heap record is live iff its generation still matches its slot's.
  bool record_live(const HeapRecord& rec) const {
    return slots_[rec.slot].generation == rec.generation;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void remove_root();
  void drop_dead_front();

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapRecord> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t cancelled_count_ = 0;
  std::size_t live_ = 0;
};

}  // namespace manet::sim
